// Benchmarks regenerating every paper artifact (see DESIGN.md §4 and
// EXPERIMENTS.md): one testing.B target per experiment E1..E13, plus
// micro-benchmarks for the protocol's hot paths (detection rounds, history
// checking, and the Theorem 5 rewriters).
//
// Run with: go test -bench=. -benchmem
package failstop_test

import (
	"testing"

	"failstop"
	"failstop/internal/experiments"
)

// benchExperiment runs one experiment per iteration and fails the benchmark
// if the paper's claim ever stops reproducing.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry()[id]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := runner(); !res.OK {
			b.Fatalf("%s did not reproduce:\n%s", id, res)
		}
	}
}

// BenchmarkE1PerfectDetectorDilemma — Theorem 1: the timeout sweep showing
// no timeout implements FS (false detections below the spike, missed
// detections without one).
func BenchmarkE1PerfectDetectorDilemma(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2ConditionCheck — Figure 1: the sFS conditions hold on 100% of
// adversarial protocol runs; FS2 does not.
func BenchmarkE2ConditionCheck(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3NecessaryConditions — Theorem 2: Conditions 1–3 on §5 runs vs
// the unilateral strawman.
func BenchmarkE3NecessaryConditions(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Theorem3Counterexample — Theorem 3: the 4-process run that
// satisfies Conditions 1–3 yet has no FS witness.
func BenchmarkE4Theorem3Counterexample(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Indistinguishability — Theorem 5: rewriting every sFS run to a
// verified isomorphic FS run, by both algorithms.
func BenchmarkE5Indistinguishability(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6WitnessNecessity — Theorem 6 / App. A.3: witness-free quorums
// admit manufactured failed-before cycles.
func BenchmarkE6WitnessNecessity(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7QuorumBound — Theorem 7: the ⌊n(t-1)/t⌋+1 bound is tight in
// both directions across an (n, t) grid.
func BenchmarkE7QuorumBound(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8ProgressBound — Corollary 8: minimum-quorum progress iff
// n > t².
func BenchmarkE8ProgressBound(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9ProtocolCost — §5 cost: Θ(n²) messages per failure event, one
// round of latency.
func BenchmarkE9ProtocolCost(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Election — §1 election under sFS vs unilateral detection.
func BenchmarkE10Election(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11LastToFail — §6 / Skeen: recovery misled by cyclic detection.
func BenchmarkE11LastToFail(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12CheapModelTradeoff — §6: latency/cycle-rate trade-off between
// sFS and the cheap model.
func BenchmarkE12CheapModelTradeoff(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13ReliableChannels — Figure 1 properties under lossy links,
// with and without the ack/retransmit layer.
func BenchmarkE13ReliableChannels(b *testing.B) { benchExperiment(b, "E13") }

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkDetectionRound measures one full §5 detection round (suspicion
// to cluster-wide detection) at several cluster sizes.
func BenchmarkDetectionRound(b *testing.B) {
	for _, n := range []int{5, 10, 20, 40} {
		b.Run(benchName("n", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := failstop.NewCluster(failstop.Options{N: n, T: 2, Seed: int64(i)})
				c.SuspectAt(5, 2, 1)
				rep := c.Run()
				if !rep.Quiescent {
					b.Fatal("not quiescent")
				}
			}
		})
	}
}

// BenchmarkCheckSFS measures checking the Figure 1 conditions on a recorded
// history.
func BenchmarkCheckSFS(b *testing.B) {
	c := failstop.NewCluster(failstop.Options{N: 20, T: 3, Seed: 1})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(6, 4, 3)
	h := c.Run().Abstract
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range failstop.CheckSFS(h) {
			if !v.Holds {
				b.Fatal(v)
			}
		}
	}
}

// BenchmarkRewriteToFS measures constructing and verifying the Theorem 5
// witness for a run with false detections.
func BenchmarkRewriteToFS(b *testing.B) {
	c := failstop.NewCluster(failstop.Options{N: 20, T: 3, Seed: 1})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(6, 4, 3)
	h := c.Run().Abstract
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := failstop.RewriteToFS(h); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkA1GatingAblation — precise per-sender sFS2d gating vs the §5
// literal rule.
func BenchmarkA1GatingAblation(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2QuorumPolicyAblation — fixed minimum quorums vs
// wait-for-all-unsuspected.
func BenchmarkA2QuorumPolicyAblation(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3TransitivityExploration — §6 future work: transitivity of the
// failed-before relation across protocols.
func BenchmarkA3TransitivityExploration(b *testing.B) { benchExperiment(b, "A3") }
