// Package failstop is a Go implementation of Sabel & Marzullo, "Simulating
// Fail-Stop in Asynchronous Distributed Systems" (TR 94-1413 / PODC 1994):
// the simulated-fail-stop (sFS) failure model, the one-round quorum
// protocol that implements it, the machinery that proves runs
// indistinguishable from fail-stop, and the lower-bound adversaries that
// show the protocol's quorum sizes are optimal.
//
// The package is a facade over the internal packages; it exposes everything
// a library user needs:
//
//   - NewCluster: a deterministic simulated cluster running the §5 protocol
//     (or the paper's baselines), with crash/suspicion injection.
//   - NewLiveCluster: the same stack on a real goroutine runtime.
//   - CheckSFS / CheckFS / CheckAll: property verdicts on recorded runs.
//   - RewriteToFS / Realizable: Theorem 5's explicit indistinguishability
//     witnesses.
//   - MinQuorum / MaxTolerable: the §4 bounds.
//
// A minimal session:
//
//	c := failstop.NewCluster(failstop.Options{N: 5, T: 2, Seed: 1})
//	c.SuspectAt(10, 2, 1) // process 2 (erroneously) suspects process 1
//	rep := c.Run()
//	fmt.Println(rep.Verdicts)       // FS1 + sFS2a-d all hold; FS2 may not
//	fs, _ := failstop.RewriteToFS(rep.Abstract) // an isomorphic FS run
package failstop

import (
	"fmt"
	"io"
	"time"

	"failstop/internal/byz"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/fd"
	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/obshttp"
	"failstop/internal/quorum"
	"failstop/internal/recovery"
	"failstop/internal/reliable"
	"failstop/internal/rewrite"
	"failstop/internal/runtime"
	"failstop/internal/sim"
	"failstop/internal/topo"
)

// Re-exported model vocabulary. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// ProcID identifies a process (1..n).
	ProcID = model.ProcID
	// Event is one event of a history (send/recv/crash/failed/internal).
	Event = model.Event
	// History is a finite run prefix: the unit all checkers operate on.
	History = model.History
	// Verdict is a property-check outcome.
	Verdict = checker.Verdict
	// Detector is the per-process failure-detection layer.
	Detector = core.Detector
	// App is the application interface hosted above a detector.
	App = core.App
	// Context is the capability handed to protocol and application code.
	Context = node.Context
	// Protocol selects the detection protocol.
	Protocol = core.Protocol
	// FaultPlan is a declarative, seed-deterministic network fault timeline:
	// partitions with scheduled heals, per-link loss, duplication, reorder
	// jitter, and message-class targeting (see internal/netadv).
	FaultPlan = netadv.Plan
	// FaultRule is one entry of a FaultPlan's timeline.
	FaultRule = netadv.Rule
	// LinkSet selects the directed links a FaultRule applies to.
	LinkSet = netadv.LinkSet
	// Link is one directed channel between two processes.
	Link = netadv.Link
	// ReliableOptions configures the optional reliable-delivery layer
	// (sequence numbers, cumulative acks, timed retransmission with
	// backoff, receiver dedup and in-order release) interposed between the
	// protocol and the — possibly faulty — network (see internal/reliable).
	ReliableOptions = reliable.Options
	// ByzantineOptions configures the optional Byzantine validation
	// interposer (per-sender MACs, echo/witness broadcast-consistency
	// quorums, a replay watermark) that masks misbehaving senders into
	// crashes via the §5 protocol (see internal/byz).
	ByzantineOptions = byz.Options
	// ByzFaultRule is one Byzantine entry of a FaultPlan: per-victim payload
	// corruption, equivocation, and replay.
	ByzFaultRule = netadv.ByzRule
	// RecoveryMode selects what a process restarted by a fault plan's
	// process rules remembers: RecoveryOff (restarts disabled, crashes are
	// terminal), RecoveryAmnesia (restart blank), or RecoveryDurable
	// (restart from the crash-time snapshot). See internal/recovery.
	RecoveryMode = recovery.Mode
	// RecoveryStore persists crash-time snapshots under durable recovery.
	RecoveryStore = recovery.Store
	// ProcFaultRule is one process-fault entry of a FaultPlan: a crash
	// window (one-shot or periodic) with an optional restart.
	ProcFaultRule = netadv.ProcRule
	// Metric is one named observability reading; Metrics a name-sorted
	// snapshot of them (see internal/obs).
	Metric = obs.Metric
	// Metrics is a name-sorted metric snapshot.
	Metrics = obs.Metrics
	// MetricsRegistry collects instruments by name; pass one in
	// Options.Metrics / LiveOptions.Metrics to observe a run's counters
	// live (they are atomic) rather than only in the final report.
	MetricsRegistry = obs.Registry
	// Span is one message-lifecycle trace span (send, fault fate, enqueue,
	// deliver, drop, retransmit, suspect, crash-confirm) with a causal
	// parent link.
	Span = obs.Span
	// SpanKind names a span's lifecycle stage.
	SpanKind = obs.SpanKind
	// SpanRecorder collects spans with seed-deterministic sampling: both
	// backends sample the same message IDs for a given (seed, rate), so
	// simulated and live runs of one scenario yield comparable span sets.
	SpanRecorder = obs.SpanRecorder
	// Timeline samples per-tick series (in-flight messages, link backlog,
	// suspicion count) into bounded rings.
	Timeline = obs.Timeline
	// TimelineSeries is one named series of a timeline snapshot.
	TimelineSeries = obs.TimelineSeries
	// TopoSpec describes a communication topology (see internal/topo): the
	// paper's complete graph (the zero value), a seed-deterministic gossip
	// graph, or a rack/region hierarchy. Under a partial topology each
	// process broadcasts to its neighborhood only and completes quorums
	// over that neighborhood's pool — the partial-quorum reading that makes
	// clusters of 10⁴–10⁶ processes simulable.
	TopoSpec = topo.Spec
)

// Topology kinds for TopoSpec.Kind.
const (
	// TopoFull is the paper's complete graph (also the zero TopoSpec).
	TopoFull = topo.KindFull
	// TopoGossip samples TopoSpec.Fanout peers per process, symmetrized.
	TopoGossip = topo.KindGossip
	// TopoHier is a rack/region hierarchy: full racks, leader uplinks.
	TopoHier = topo.KindHier
)

// ParseTopo parses the topology CLI grammar: "full", "gossip:F",
// "gossip:F@SEED", or "hier:RxK" (R regions of K racks each).
func ParseTopo(s string) (TopoSpec, error) { return topo.ParseSpec(s) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanRecorder returns a span recorder sampling message lifecycles at
// the given rate (0..1) as a deterministic function of (seed, message), so
// a fixed (spec, seed) always records the same spans.
func NewSpanRecorder(seed int64, rate float64) *SpanRecorder {
	return obs.NewSpanRecorder(seed, rate)
}

// NewTimeline returns a timeline sampling every `every` ticks, keeping the
// most recent `capacity` points per series (0 for the default capacity).
func NewTimeline(every int64, capacity int) *Timeline {
	return obs.NewTimeline(every, capacity)
}

// WritePrometheus renders a metric snapshot in the Prometheus text
// exposition format (what the live /metrics endpoint serves).
func WritePrometheus(w io.Writer, ms Metrics) error { return obs.WritePrometheus(w, ms) }

// Recovery modes for Options.Recovery / LiveOptions.Recovery.
const (
	// RecoveryOff disables restarts: a fault plan's process rules crash
	// their victims terminally at the first window (the fail-stop reading).
	RecoveryOff = recovery.Off
	// RecoveryAmnesia restarts processes with zero state.
	RecoveryAmnesia = recovery.Amnesia
	// RecoveryDurable restarts processes from crash-time snapshots.
	RecoveryDurable = recovery.Durable
)

// ParseRecoveryMode parses "off", "amnesia", or "durable" ("" is off).
func ParseRecoveryMode(s string) (RecoveryMode, error) { return recovery.ParseMode(s) }

// Protocol choices.
const (
	// SFS is the paper's §5 one-round quorum protocol (the default).
	SFS = core.SimulatedFailStop
	// Cheap is the §6 baseline: broadcast, then detect without waiting.
	Cheap = core.Cheap
	// Unilateral is the §4 strawman: detect with no communication.
	Unilateral = core.Unilateral
)

// Options configures a cluster.
type Options struct {
	// N is the number of processes (required, >= 2). T is the maximum
	// number of failures tolerated, including erroneous detections
	// (default 1). For minimum quorums to make progress, keep N > T²
	// (Corollary 8).
	N, T int
	// Protocol selects the detection protocol. Default: SFS.
	Protocol Protocol
	// Seed makes runs reproducible.
	Seed int64
	// MinDelay/MaxDelay bound the simulated message delays (ticks).
	// Defaults: 1 and 10.
	MinDelay, MaxDelay int64
	// MaxTime stops the simulation at a horizon; 0 runs to quiescence.
	// Required (>0) when heartbeats are enabled, which re-arm forever.
	MaxTime int64
	// HeartbeatEvery enables the fd layer: heartbeats every given ticks.
	// 0 disables heartbeats (suspicions are injected explicitly).
	HeartbeatEvery int64
	// HeartbeatTimeout is the suspicion timeout; 0 with heartbeats enabled
	// means "never suspect" (useful to demonstrate FS1 violations).
	HeartbeatTimeout int64
	// Topology, when non-nil and not the full mesh, runs the protocol over
	// a partial communication graph: SUSP broadcasts and heartbeats go to
	// each process's neighborhood only, and quorums complete over the
	// neighborhood pool (see TopoSpec). nil means the paper's complete
	// graph.
	Topology *TopoSpec
	// Faults, when non-nil, subjects the cluster's network to the given
	// fault plan (instantiated with Seed): partitions, loss, duplication,
	// reorder. Use BuiltinFaultPlan for the named built-ins.
	Faults *FaultPlan
	// Reliable, when Enabled, masks the fault plan's loss, duplication, and
	// reorder with per-link acks, retransmission, dedup, and in-order
	// release — healed partitions then recover in-flight detections that
	// the once-only §5 broadcast would lose. Retransmission to a crashed
	// process re-arms forever unless MaxRetries bounds it, so Enabled with
	// MaxRetries 0 requires a MaxTime horizon.
	Reliable ReliableOptions
	// Byzantine, when Enabled, interposes the validation layer under every
	// process: outgoing payloads are sealed with a deterministic per-sender
	// MAC, configured broadcast tags are released only after a witness
	// quorum corroborates a consistent payload, and senders convicted of
	// misbehavior (bad MAC, equivocation, stale replay) are masked — their
	// traffic is discarded and the culprit is suspected through the §5
	// protocol, demoting the Byzantine fault to a crash. Pair it with a
	// FaultPlan carrying Byz rules (e.g. the byzantine-minority builtin).
	Byzantine ByzantineOptions
	// Recovery selects how the fault plan's process rules (FaultPlan.Procs)
	// behave: RecoveryOff makes every plan crash terminal, RecoveryAmnesia
	// restarts the victims blank, RecoveryDurable restarts them from
	// crash-time snapshots (detector and reliable-layer state). Plans with
	// unbounded restart storms require MaxTime when restarts are enabled.
	Recovery RecoveryMode
	// NewApp, when non-nil, builds the application for each process.
	NewApp func(p ProcID) App
	// Metrics, when non-nil, additionally registers the run's counters
	// (and the fault plane's, with Faults set) in the given registry; the
	// same readings always appear in Report.Metrics.
	Metrics *MetricsRegistry
	// Spans, when non-nil, records sampled message-lifecycle spans into
	// Report.Spans. Sampling is a deterministic function of (recorder
	// seed, message), so a fixed (options, seed) records identical spans
	// on every run.
	Spans *SpanRecorder
	// Timeline, when non-nil, samples per-tick series into
	// Report.Timeline.
	Timeline *Timeline
}

// Validate reports the first problem with the options, or nil:
// N must be at least 2; heartbeats re-arm forever, so HeartbeatEvery > 0
// requires a MaxTime horizon; a fault plan must be well-formed for N.
func (o Options) Validate() error {
	if o.N < 2 {
		return fmt.Errorf("failstop: Options.N = %d; need at least 2 processes", o.N)
	}
	if o.T < 0 {
		return fmt.Errorf("failstop: Options.T = %d; the failure bound cannot be negative", o.T)
	}
	if o.HeartbeatEvery > 0 && o.MaxTime <= 0 {
		return fmt.Errorf("failstop: Options.HeartbeatEvery = %d requires MaxTime > 0 (heartbeats re-arm forever, so the run would never drain)", o.HeartbeatEvery)
	}
	if o.Topology != nil {
		if _, err := topo.New(*o.Topology, o.N); err != nil {
			return fmt.Errorf("failstop: Options.Topology: %w", err)
		}
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(o.N); err != nil {
			return fmt.Errorf("failstop: Options.Faults: %w", err)
		}
	}
	if err := o.Reliable.Validate(); err != nil {
		return fmt.Errorf("failstop: Options.Reliable: %w", err)
	}
	if err := o.Byzantine.Validate(); err != nil {
		return fmt.Errorf("failstop: Options.Byzantine: %w", err)
	}
	if o.Reliable.Enabled && o.Reliable.MaxRetries == 0 && o.MaxTime <= 0 {
		return fmt.Errorf("failstop: Options.Reliable retries forever (MaxRetries = 0); set MaxTime so runs with crashed peers terminate")
	}
	if o.Faults != nil && o.Faults.UnboundedProcs() && o.Recovery != RecoveryOff && o.MaxTime <= 0 {
		return fmt.Errorf("failstop: Options.Faults plan %q restarts processes forever; set MaxTime so the run terminates", o.Faults.Name)
	}
	return nil
}

// Cluster is a deterministic simulated cluster.
type Cluster struct {
	inner *cluster.Cluster
	opts  Options
	plane *netadv.Plane // nil without Options.Faults
}

// NewCluster builds a simulated cluster per opts. It panics with the
// Options.Validate error when the options are invalid — call Validate first
// to reject untrusted configuration gracefully.
func NewCluster(opts Options) *Cluster {
	if opts.T == 0 {
		opts.T = 1
	}
	if opts.Protocol == 0 {
		opts.Protocol = SFS
	}
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	var link node.LinkFn
	var plane *netadv.Plane
	if opts.Faults != nil {
		plane = netadv.NewPlane(*opts.Faults, opts.N, opts.Seed)
		plane.Register(opts.Metrics)
		link = plane.Decide
	}
	var lifetimes []recovery.Lifetime
	if opts.Faults != nil {
		lifetimes = opts.Faults.Lifetimes()
	}
	co := cluster.Options{
		Sim: sim.Config{
			N: opts.N, Seed: opts.Seed,
			MinDelay: opts.MinDelay, MaxDelay: opts.MaxDelay,
			MaxTime: opts.MaxTime,
			Link:    link,
			Metrics: opts.Metrics, Spans: opts.Spans, Timeline: opts.Timeline,
			Lifetimes: lifetimes, Recovery: opts.Recovery,
		},
		Det:       core.Config{N: opts.N, T: opts.T, Protocol: opts.Protocol, Topology: resolveTopo(opts.Topology, opts.N)},
		App:       opts.NewApp,
		Reliable:  opts.Reliable,
		Byzantine: opts.Byzantine,
	}
	if opts.HeartbeatEvery > 0 {
		co.FD = func(ProcID) core.Component {
			return &fd.Heartbeat{Interval: opts.HeartbeatEvery, Timeout: opts.HeartbeatTimeout}
		}
	}
	return &Cluster{inner: cluster.New(co), opts: opts, plane: plane}
}

// resolveTopo builds the one shared *topo.Topology every detector in a
// cluster consumes, or nil for the complete graph (validated upstream, so
// MustNew cannot fail here).
func resolveTopo(sp *TopoSpec, n int) *topo.Topology {
	if sp == nil || sp.IsFull() {
		return nil
	}
	return topo.MustNew(*sp, n)
}

// Detector returns process p's detector (for state inspection after Run).
func (c *Cluster) Detector(p ProcID) *Detector { return c.inner.Detectors[p] }

// SuspectAt injects a spontaneous suspicion: at tick t, process i starts
// the detection protocol for j.
func (c *Cluster) SuspectAt(t int64, i, j ProcID) { c.inner.SuspectAt(t, i, j) }

// CrashAt injects a genuine crash of p at tick t.
func (c *Cluster) CrashAt(t int64, p ProcID) { c.inner.CrashAt(t, p) }

// Report is the outcome of a run.
type Report struct {
	// History is the full recorded history, including protocol traffic.
	History History
	// Abstract is the model-level history: protocol SUSP messages and
	// heartbeats removed. The sFS/FS properties are defined over this.
	Abstract History
	// Verdicts holds the Figure 1 checks (FS1, sFS2a-d) plus FS2 and the
	// Witness property, all evaluated on the appropriate history.
	Verdicts []Verdict
	// Quiescent reports whether the run drained completely (liveness
	// verdicts are only meaningful if so, or at a generous MaxTime).
	Quiescent bool
	// Sent and Delivered count message events in the full history.
	Sent, Delivered int
	// Dropped and Duplicated count the messages the fault plan discarded
	// and the extra copies it delivered (0 without Options.Faults).
	Dropped, Duplicated int
	// Retransmits and AckedDuplicates count the reliable-delivery layer's
	// work: frames resent on timer, and received duplicates suppressed
	// after re-acking (both 0 unless Options.Reliable is enabled).
	Retransmits, AckedDuplicates int
	// PlanCrashes, Restarts, and Recovered count the fault plan's process
	// faults: crashes executed, restarts that followed (per
	// Options.Recovery), and restarts that restored a non-empty durable
	// snapshot. All 0 unless the plan has process rules.
	PlanCrashes, Restarts, Recovered int
	// ByzDetected and ByzMasked count the validation interposer's work:
	// misbehavior convictions across all processes, and frames discarded
	// from convicted senders (both 0 unless Options.Byzantine is enabled).
	ByzDetected, ByzMasked int
	// Corrupted, Equivocated, and Replayed count the fault plan's Byzantine
	// fates: payloads mutated, equivocation variants substituted, and ghost
	// frames re-injected (all 0 unless the plan has Byz rules).
	Corrupted, Equivocated, Replayed int
	// EndTime is the virtual time at which the run ended.
	EndTime int64
	// Metrics is the run's full observability snapshot, name-sorted:
	// simulator counters, reliable-layer counters when the layer ran, and
	// — when Options.Faults was set — the fault plane's decision tallies.
	Metrics Metrics
	// Spans holds the recorded message-lifecycle spans, in record order
	// (nil unless Options.Spans was set).
	Spans []Span
	// Timeline holds the sampled per-tick series (nil unless
	// Options.Timeline was set).
	Timeline []TimelineSeries
}

// Run executes the simulation and checks the paper's properties.
func (c *Cluster) Run() Report {
	res := c.inner.Run()
	ab := res.History.DropTags(core.TagSusp, fd.TagHeartbeat, reliable.TagAck, byz.TagEcho)
	verdicts := checker.SFS(ab)
	verdicts = append(verdicts, checker.FS2(ab))
	verdicts = append(verdicts, checker.WitnessProperty(res.History, core.TagSusp, c.opts.T))
	metrics := res.Metrics
	if c.plane != nil {
		metrics = obs.Merge(metrics, c.plane.Metrics())
	}
	var spans []Span
	if c.opts.Spans != nil {
		spans = c.opts.Spans.Spans()
	}
	var corrupted, equivocated, replayed int64
	if c.plane != nil {
		corrupted, equivocated, replayed = c.plane.ByzFates()
	}
	return Report{
		History:         res.History,
		Abstract:        ab,
		Verdicts:        verdicts,
		Quiescent:       res.Quiescent(),
		Sent:            res.Sent,
		Delivered:       res.Delivered,
		Dropped:         res.Dropped,
		Duplicated:      res.Duplicated,
		Retransmits:     res.Retransmits,
		AckedDuplicates: res.AckedDuplicates,
		PlanCrashes:     res.PlanCrashes,
		Restarts:        res.Restarts,
		Recovered:       res.Recovered,
		ByzDetected:     res.ByzDetected,
		ByzMasked:       res.ByzMasked,
		Corrupted:       int(corrupted),
		Equivocated:     int(equivocated),
		Replayed:        int(replayed),
		EndTime:         res.EndTime,
		Metrics:         metrics,
		Spans:           spans,
		Timeline:        res.Timeline,
	}
}

// CheckSFS evaluates the Figure 1 conditions (FS1, sFS2a-d) on a
// model-level history.
func CheckSFS(h History) []Verdict { return checker.SFS(h) }

// CheckFS evaluates the fail-stop conditions (FS1, FS2).
func CheckFS(h History) []Verdict { return checker.FS(h) }

// CheckAll evaluates every property the checker knows, using suspTag to
// reconstruct quorum sets (use DefaultSuspTag for this package's clusters)
// and t as the failure bound for the Witness property.
func CheckAll(h History, suspTag string, t int) []Verdict {
	return checker.All(h, suspTag, t)
}

// DefaultSuspTag is the payload tag of the §5 protocol's "j failed"
// messages in recorded histories.
const DefaultSuspTag = core.TagSusp

// RewriteToFS produces a fail-stop history isomorphic (with respect to
// every process) to the given model-level history — the Theorem 5 witness —
// or an error if none exists (Theorem 3 situations, or detections whose
// target never crashed). The result is verified before being returned.
func RewriteToFS(h History) (History, error) {
	out, _, err := rewrite.Graph(h)
	if err != nil {
		return nil, err
	}
	if err := rewrite.Verify(h, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Realizable reports whether an isomorphic fail-stop history exists.
func Realizable(h History) bool { return rewrite.Realizable(h) }

// MinQuorum returns the minimum quorum size for n processes and up to t
// failures: the smallest integer exceeding n(t-1)/t (Theorem 7).
func MinQuorum(n, t int) int { return quorum.MinSize(n, t) }

// MaxTolerable returns the largest t such that minimum-quorum detection
// makes progress with n processes: the largest t with n > t² (Corollary 8).
func MaxTolerable(n int) int { return quorum.MaxTolerable(n) }

// FaultPlanNames lists the built-in network fault plans: "split-brain",
// "isolated-minority", "one-way-cut", "flaky-quorum", "healing-partition",
// "buffering-partition", "moving-partition", "region-cut",
// "byzantine-minority", "restart-storm".
func FaultPlanNames() []string { return netadv.BuiltinNames() }

// BuiltinFaultPlan instantiates the named built-in fault plan for a
// cluster of n processes with failure bound t.
func BuiltinFaultPlan(name string, n, t int) (FaultPlan, error) {
	g, ok := netadv.Builtin(name)
	if !ok {
		return FaultPlan{}, fmt.Errorf("failstop: unknown fault plan %q (have %v)", name, netadv.BuiltinNames())
	}
	return g.Make(n, t), nil
}

// ReadFaultPlan parses a fault plan from JSON — the plan-file format, which
// is the exact shape trace-v2 headers embed. The decode is strict (unknown
// fields are errors); call FaultPlan.Validate(n) before use, or let
// NewCluster/NewLiveCluster validate via Options.
func ReadFaultPlan(r io.Reader) (FaultPlan, error) { return netadv.ReadPlan(r) }

// LoadFaultPlan reads a fault plan from a JSON file; a plan with no name
// takes the file's base name. See ReadFaultPlan.
func LoadFaultPlan(path string) (FaultPlan, error) { return netadv.ReadPlanFile(path) }

// WriteFaultPlan writes the plan in the plan-file format (indented JSON) —
// the canonical way to turn a builtin into an editable file.
func WriteFaultPlan(w io.Writer, p FaultPlan) error { return netadv.WritePlan(w, p) }

// LiveOptions configures a live (goroutine) cluster.
type LiveOptions struct {
	// N is the number of processes; T the failure bound. As for Options.
	N, T int
	// Protocol selects the detection protocol. Default: SFS.
	Protocol Protocol
	// Seed seeds the delay generator.
	Seed int64
	// MinDelay/MaxDelay bound real message delays.
	// Defaults: 100µs and 2ms.
	MinDelay, MaxDelay time.Duration
	// Tick is the duration of one virtual tick (fault-plan times and timers
	// are expressed in ticks). Default: 1ms.
	Tick time.Duration
	// Topology, when non-nil and not the full mesh, runs the protocol over
	// a partial communication graph — identical semantics to
	// Options.Topology, so topology scenarios cross-validate between the
	// two backends.
	Topology *TopoSpec
	// Faults, when non-nil, subjects the live network to the given fault
	// plan — the identical plan semantics the simulator applies, so a
	// scenario validated deterministically in NewCluster can be replayed
	// against real goroutines.
	Faults *FaultPlan
	// Reliable, when Enabled, interposes the reliable-delivery layer under
	// every process — identical semantics to the simulated backend, with
	// retransmit timers running on real clocks (intervals are in ticks,
	// converted via Tick).
	Reliable ReliableOptions
	// Byzantine, when Enabled, interposes the validation layer under every
	// process — identical semantics to the simulated backend (see
	// Options.Byzantine).
	Byzantine ByzantineOptions
	// Recovery selects how the fault plan's process rules behave, with the
	// same semantics as Options.Recovery. Unbounded restart storms are fine
	// live: the run is bounded by Stop.
	Recovery RecoveryMode
	// RecoveryDir, when non-empty with RecoveryDurable, persists crash-time
	// snapshots as files under the given directory (one per process)
	// instead of the default in-memory store — state then survives restarts
	// of the host program, not just of simulated processes.
	RecoveryDir string
	// NewApp, when non-nil, builds the application for each process.
	NewApp func(p ProcID) App
	// Metrics, when non-nil, additionally registers the live counters in
	// the given registry; the same readings are available from
	// LiveCluster.Metrics either way.
	Metrics *MetricsRegistry
	// Spans, when non-nil, records sampled message-lifecycle spans. The
	// sampling function is the one the simulated backend uses, so a live
	// run and a simulated run of one scenario (same recorder seed and
	// rate) sample the same messages.
	Spans *SpanRecorder
	// MetricsAddr, when non-empty, serves the cluster's live metrics in
	// Prometheus text form at http://<addr>/metrics from Start to Stop.
	// Use "127.0.0.1:0" to bind an ephemeral port and read the actual
	// address from LiveCluster.MetricsAddr.
	MetricsAddr string
}

// LiveCluster runs the same protocol stack on real goroutines.
type LiveCluster struct {
	net   *runtime.Net
	dets  []*core.Detector
	eps   []*reliable.Endpoint // nil entries when the layer is off
	bzs   []*byz.Endpoint      // nil entries when the interposer is off
	plane *netadv.Plane        // nil without LiveOptions.Faults
	opts  LiveOptions
	msrv  *obshttp.Server // nil unless MetricsAddr is set and Start ran
}

// NewLiveCluster builds a live cluster. Call Start, drive it with Suspect
// and Crash, then Stop; History returns the recorded run at any point.
// Like NewCluster, it panics on invalid options (N < 2, ill-formed plan).
func NewLiveCluster(opts LiveOptions) *LiveCluster {
	if opts.T == 0 {
		opts.T = 1
	}
	if opts.Protocol == 0 {
		opts.Protocol = SFS
	}
	if opts.N < 2 {
		panic(fmt.Errorf("failstop: LiveOptions.N = %d; need at least 2 processes", opts.N))
	}
	if opts.Topology != nil {
		if _, err := topo.New(*opts.Topology, opts.N); err != nil {
			panic(fmt.Errorf("failstop: LiveOptions.Topology: %w", err))
		}
	}
	var link node.LinkFn
	var plane *netadv.Plane
	if opts.Faults != nil {
		if err := opts.Faults.Validate(opts.N); err != nil {
			panic(fmt.Errorf("failstop: LiveOptions.Faults: %w", err))
		}
		plane = netadv.NewPlane(*opts.Faults, opts.N, opts.Seed)
		plane.Register(opts.Metrics)
		link = plane.Decide
	}
	if err := opts.Reliable.Validate(); err != nil {
		panic(fmt.Errorf("failstop: LiveOptions.Reliable: %w", err))
	}
	if err := opts.Byzantine.Validate(); err != nil {
		panic(fmt.Errorf("failstop: LiveOptions.Byzantine: %w", err))
	}
	var lifetimes []recovery.Lifetime
	if opts.Faults != nil {
		lifetimes = opts.Faults.Lifetimes()
	}
	var store recovery.Store
	if opts.Recovery == RecoveryDurable && opts.RecoveryDir != "" {
		fs, err := recovery.NewFileStore(opts.RecoveryDir)
		if err != nil {
			panic(fmt.Errorf("failstop: LiveOptions.RecoveryDir: %w", err))
		}
		store = fs
	}
	net := runtime.New(runtime.Config{
		N: opts.N, Seed: opts.Seed,
		MinDelay: opts.MinDelay, MaxDelay: opts.MaxDelay,
		Tick:    opts.Tick,
		Link:    link,
		Metrics: opts.Metrics, Spans: opts.Spans,
		Lifetimes: lifetimes, Recovery: opts.Recovery, Store: store,
	})
	lc := &LiveCluster{
		net:   net,
		dets:  make([]*core.Detector, opts.N+1),
		eps:   make([]*reliable.Endpoint, opts.N+1),
		bzs:   make([]*byz.Endpoint, opts.N+1),
		plane: plane,
		opts:  opts,
	}
	top := resolveTopo(opts.Topology, opts.N)
	for p := 1; p <= opts.N; p++ {
		var app App
		if opts.NewApp != nil {
			app = opts.NewApp(ProcID(p))
		}
		d := core.NewDetector(core.Config{N: opts.N, T: opts.T, Protocol: opts.Protocol, Topology: top}, nil, app)
		lc.dets[p] = d
		var h node.Handler = d
		if opts.Byzantine.Enabled {
			bz := byz.Wrap(d, opts.Byzantine)
			bz.SetSpans(opts.Spans)
			bz.SetConvict(func(ctx node.Context, culprit ProcID) {
				d.Suspect(ctx, culprit)
			})
			lc.bzs[p] = bz
			h = bz
		}
		if opts.Reliable.Enabled {
			ep := reliable.Wrap(h, opts.Reliable)
			ep.SetSpans(opts.Spans)
			lc.eps[p] = ep
			h = ep
		}
		net.SetHandler(ProcID(p), h)
	}
	return lc
}

// Start launches the cluster's goroutines and, with
// LiveOptions.MetricsAddr set, the /metrics endpoint. It panics if the
// endpoint cannot bind — a misconfigured address should fail loudly at
// startup, not silently serve nothing.
func (lc *LiveCluster) Start() {
	lc.net.Start()
	if lc.opts.MetricsAddr != "" && lc.msrv == nil {
		srv, err := obshttp.Start(lc.opts.MetricsAddr, lc.Metrics)
		if err != nil {
			lc.net.Stop()
			panic(fmt.Errorf("failstop: LiveOptions.MetricsAddr: %w", err))
		}
		lc.msrv = srv
	}
}

// Stop shuts the cluster down and waits for its goroutines, closing the
// /metrics endpoint first so no scrape observes a stopped cluster.
func (lc *LiveCluster) Stop() {
	if lc.msrv != nil {
		_ = lc.msrv.Close()
		lc.msrv = nil
	}
	lc.net.Stop()
}

// Suspect makes process i suspect j (serialized with i's other events).
// The injected broadcast flows through i's reliable-delivery endpoint when
// the layer is enabled.
func (lc *LiveCluster) Suspect(i, j ProcID) {
	d := lc.dets[i]
	ep := lc.eps[i]
	bz := lc.bzs[i]
	lc.net.Do(i, func(ctx node.Context) {
		// Mirror the wrap order: the reliable layer is outermost, so its
		// context wraps first and the interposer's sends flow through it.
		if ep != nil {
			ctx = ep.Context(ctx)
		}
		if bz != nil {
			ctx = bz.Context(ctx)
		}
		d.Suspect(ctx, j)
	})
}

// Crash crashes process p.
func (lc *LiveCluster) Crash(p ProcID) {
	lc.net.Do(p, func(ctx node.Context) { ctx.CrashSelf() })
}

// History returns a snapshot of the recorded history.
func (lc *LiveCluster) History() History { return lc.net.History() }

// Stats returns the fault-plan counters: messages dropped and extra copies
// delivered so far.
func (lc *LiveCluster) Stats() (dropped, duplicated int) { return lc.net.Stats() }

// ReliableStats returns the reliable-delivery counters so far: frames
// retransmitted and received duplicates suppressed (both 0 unless
// LiveOptions.Reliable is enabled).
func (lc *LiveCluster) ReliableStats() (retransmits, ackedDuplicates int) {
	return lc.net.ReliableStats()
}

// RecoveryStats returns the process-fault counters so far: plan crashes
// executed, restarts that followed, and restarts that restored a non-empty
// durable snapshot (all 0 unless the fault plan has process rules).
func (lc *LiveCluster) RecoveryStats() (planCrashes, restarts, recovered int) {
	return lc.net.RecoveryStats()
}

// ByzStats returns the validation interposer's counters so far: misbehavior
// convictions and frames discarded from convicted senders (both 0 unless
// LiveOptions.Byzantine is enabled).
func (lc *LiveCluster) ByzStats() (detected, masked int) {
	return lc.net.ByzStats()
}

// Metrics returns a name-sorted live snapshot of the cluster's counters:
// runtime traffic, reliable-layer work, and — with LiveOptions.Faults —
// the fault plane's decision tallies. Safe to call while the cluster
// runs; it is what the /metrics endpoint serves.
func (lc *LiveCluster) Metrics() Metrics {
	ms := lc.net.Metrics()
	if lc.plane != nil {
		ms = obs.Merge(ms, lc.plane.Metrics())
	}
	return ms
}

// Spans returns a snapshot of the recorded message-lifecycle spans (nil
// unless LiveOptions.Spans was set).
func (lc *LiveCluster) Spans() []Span {
	if lc.opts.Spans == nil {
		return nil
	}
	return lc.opts.Spans.Spans()
}

// MetricsAddr returns the bound address of the live /metrics endpoint
// ("" when LiveOptions.MetricsAddr was unset or Start has not run).
func (lc *LiveCluster) MetricsAddr() string { return lc.msrv.Addr() }
