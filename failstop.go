// Package failstop is a Go implementation of Sabel & Marzullo, "Simulating
// Fail-Stop in Asynchronous Distributed Systems" (TR 94-1413 / PODC 1994):
// the simulated-fail-stop (sFS) failure model, the one-round quorum
// protocol that implements it, the machinery that proves runs
// indistinguishable from fail-stop, and the lower-bound adversaries that
// show the protocol's quorum sizes are optimal.
//
// The package is a facade over the internal packages; it exposes everything
// a library user needs:
//
//   - NewCluster: a deterministic simulated cluster running the §5 protocol
//     (or the paper's baselines), with crash/suspicion injection.
//   - NewLiveCluster: the same stack on a real goroutine runtime.
//   - CheckSFS / CheckFS / CheckAll: property verdicts on recorded runs.
//   - RewriteToFS / Realizable: Theorem 5's explicit indistinguishability
//     witnesses.
//   - MinQuorum / MaxTolerable: the §4 bounds.
//
// A minimal session:
//
//	c := failstop.NewCluster(failstop.Options{N: 5, T: 2, Seed: 1})
//	c.SuspectAt(10, 2, 1) // process 2 (erroneously) suspects process 1
//	rep := c.Run()
//	fmt.Println(rep.Verdicts)       // FS1 + sFS2a-d all hold; FS2 may not
//	fs, _ := failstop.RewriteToFS(rep.Abstract) // an isomorphic FS run
package failstop

import (
	"time"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/fd"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/quorum"
	"failstop/internal/rewrite"
	"failstop/internal/runtime"
	"failstop/internal/sim"
)

// Re-exported model vocabulary. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// ProcID identifies a process (1..n).
	ProcID = model.ProcID
	// Event is one event of a history (send/recv/crash/failed/internal).
	Event = model.Event
	// History is a finite run prefix: the unit all checkers operate on.
	History = model.History
	// Verdict is a property-check outcome.
	Verdict = checker.Verdict
	// Detector is the per-process failure-detection layer.
	Detector = core.Detector
	// App is the application interface hosted above a detector.
	App = core.App
	// Context is the capability handed to protocol and application code.
	Context = node.Context
	// Protocol selects the detection protocol.
	Protocol = core.Protocol
)

// Protocol choices.
const (
	// SFS is the paper's §5 one-round quorum protocol (the default).
	SFS = core.SimulatedFailStop
	// Cheap is the §6 baseline: broadcast, then detect without waiting.
	Cheap = core.Cheap
	// Unilateral is the §4 strawman: detect with no communication.
	Unilateral = core.Unilateral
)

// Options configures a cluster.
type Options struct {
	// N is the number of processes (required, >= 2). T is the maximum
	// number of failures tolerated, including erroneous detections
	// (default 1). For minimum quorums to make progress, keep N > T²
	// (Corollary 8).
	N, T int
	// Protocol selects the detection protocol. Default: SFS.
	Protocol Protocol
	// Seed makes runs reproducible.
	Seed int64
	// MinDelay/MaxDelay bound the simulated message delays (ticks).
	// Defaults: 1 and 10.
	MinDelay, MaxDelay int64
	// MaxTime stops the simulation at a horizon; 0 runs to quiescence.
	// Required (>0) when heartbeats are enabled, which re-arm forever.
	MaxTime int64
	// HeartbeatEvery enables the fd layer: heartbeats every given ticks.
	// 0 disables heartbeats (suspicions are injected explicitly).
	HeartbeatEvery int64
	// HeartbeatTimeout is the suspicion timeout; 0 with heartbeats enabled
	// means "never suspect" (useful to demonstrate FS1 violations).
	HeartbeatTimeout int64
	// NewApp, when non-nil, builds the application for each process.
	NewApp func(p ProcID) App
}

// Cluster is a deterministic simulated cluster.
type Cluster struct {
	inner *cluster.Cluster
	opts  Options
}

// NewCluster builds a simulated cluster per opts.
func NewCluster(opts Options) *Cluster {
	if opts.T == 0 {
		opts.T = 1
	}
	if opts.Protocol == 0 {
		opts.Protocol = SFS
	}
	co := cluster.Options{
		Sim: sim.Config{
			N: opts.N, Seed: opts.Seed,
			MinDelay: opts.MinDelay, MaxDelay: opts.MaxDelay,
			MaxTime: opts.MaxTime,
		},
		Det: core.Config{N: opts.N, T: opts.T, Protocol: opts.Protocol},
		App: opts.NewApp,
	}
	if opts.HeartbeatEvery > 0 {
		co.FD = func(ProcID) core.Component {
			return &fd.Heartbeat{Interval: opts.HeartbeatEvery, Timeout: opts.HeartbeatTimeout}
		}
	}
	return &Cluster{inner: cluster.New(co), opts: opts}
}

// Detector returns process p's detector (for state inspection after Run).
func (c *Cluster) Detector(p ProcID) *Detector { return c.inner.Detectors[p] }

// SuspectAt injects a spontaneous suspicion: at tick t, process i starts
// the detection protocol for j.
func (c *Cluster) SuspectAt(t int64, i, j ProcID) { c.inner.SuspectAt(t, i, j) }

// CrashAt injects a genuine crash of p at tick t.
func (c *Cluster) CrashAt(t int64, p ProcID) { c.inner.CrashAt(t, p) }

// Report is the outcome of a run.
type Report struct {
	// History is the full recorded history, including protocol traffic.
	History History
	// Abstract is the model-level history: protocol SUSP messages and
	// heartbeats removed. The sFS/FS properties are defined over this.
	Abstract History
	// Verdicts holds the Figure 1 checks (FS1, sFS2a-d) plus FS2 and the
	// Witness property, all evaluated on the appropriate history.
	Verdicts []Verdict
	// Quiescent reports whether the run drained completely (liveness
	// verdicts are only meaningful if so, or at a generous MaxTime).
	Quiescent bool
	// Sent and Delivered count message events in the full history.
	Sent, Delivered int
	// EndTime is the virtual time at which the run ended.
	EndTime int64
}

// Run executes the simulation and checks the paper's properties.
func (c *Cluster) Run() Report {
	res := c.inner.Run()
	ab := res.History.DropTags(core.TagSusp, fd.TagHeartbeat)
	verdicts := checker.SFS(ab)
	verdicts = append(verdicts, checker.FS2(ab))
	verdicts = append(verdicts, checker.WitnessProperty(res.History, core.TagSusp, c.opts.T))
	return Report{
		History:   res.History,
		Abstract:  ab,
		Verdicts:  verdicts,
		Quiescent: res.Quiescent(),
		Sent:      res.Sent,
		Delivered: res.Delivered,
		EndTime:   res.EndTime,
	}
}

// CheckSFS evaluates the Figure 1 conditions (FS1, sFS2a-d) on a
// model-level history.
func CheckSFS(h History) []Verdict { return checker.SFS(h) }

// CheckFS evaluates the fail-stop conditions (FS1, FS2).
func CheckFS(h History) []Verdict { return checker.FS(h) }

// CheckAll evaluates every property the checker knows, using suspTag to
// reconstruct quorum sets (use DefaultSuspTag for this package's clusters)
// and t as the failure bound for the Witness property.
func CheckAll(h History, suspTag string, t int) []Verdict {
	return checker.All(h, suspTag, t)
}

// DefaultSuspTag is the payload tag of the §5 protocol's "j failed"
// messages in recorded histories.
const DefaultSuspTag = core.TagSusp

// RewriteToFS produces a fail-stop history isomorphic (with respect to
// every process) to the given model-level history — the Theorem 5 witness —
// or an error if none exists (Theorem 3 situations, or detections whose
// target never crashed). The result is verified before being returned.
func RewriteToFS(h History) (History, error) {
	out, _, err := rewrite.Graph(h)
	if err != nil {
		return nil, err
	}
	if err := rewrite.Verify(h, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Realizable reports whether an isomorphic fail-stop history exists.
func Realizable(h History) bool { return rewrite.Realizable(h) }

// MinQuorum returns the minimum quorum size for n processes and up to t
// failures: the smallest integer exceeding n(t-1)/t (Theorem 7).
func MinQuorum(n, t int) int { return quorum.MinSize(n, t) }

// MaxTolerable returns the largest t such that minimum-quorum detection
// makes progress with n processes: the largest t with n > t² (Corollary 8).
func MaxTolerable(n int) int { return quorum.MaxTolerable(n) }

// LiveOptions configures a live (goroutine) cluster.
type LiveOptions struct {
	// N is the number of processes; T the failure bound. As for Options.
	N, T int
	// Protocol selects the detection protocol. Default: SFS.
	Protocol Protocol
	// Seed seeds the delay generator.
	Seed int64
	// MinDelay/MaxDelay bound real message delays.
	// Defaults: 100µs and 2ms.
	MinDelay, MaxDelay time.Duration
	// NewApp, when non-nil, builds the application for each process.
	NewApp func(p ProcID) App
}

// LiveCluster runs the same protocol stack on real goroutines.
type LiveCluster struct {
	net  *runtime.Net
	dets []*core.Detector
}

// NewLiveCluster builds a live cluster. Call Start, drive it with Suspect
// and Crash, then Stop; History returns the recorded run at any point.
func NewLiveCluster(opts LiveOptions) *LiveCluster {
	if opts.T == 0 {
		opts.T = 1
	}
	if opts.Protocol == 0 {
		opts.Protocol = SFS
	}
	net := runtime.New(runtime.Config{
		N: opts.N, Seed: opts.Seed,
		MinDelay: opts.MinDelay, MaxDelay: opts.MaxDelay,
	})
	lc := &LiveCluster{net: net, dets: make([]*core.Detector, opts.N+1)}
	for p := 1; p <= opts.N; p++ {
		var app App
		if opts.NewApp != nil {
			app = opts.NewApp(ProcID(p))
		}
		d := core.NewDetector(core.Config{N: opts.N, T: opts.T, Protocol: opts.Protocol}, nil, app)
		lc.dets[p] = d
		net.SetHandler(ProcID(p), d)
	}
	return lc
}

// Start launches the cluster's goroutines.
func (lc *LiveCluster) Start() { lc.net.Start() }

// Stop shuts the cluster down and waits for its goroutines.
func (lc *LiveCluster) Stop() { lc.net.Stop() }

// Suspect makes process i suspect j (serialized with i's other events).
func (lc *LiveCluster) Suspect(i, j ProcID) {
	d := lc.dets[i]
	lc.net.Do(i, func(ctx node.Context) { d.Suspect(ctx, j) })
}

// Crash crashes process p.
func (lc *LiveCluster) Crash(p ProcID) {
	lc.net.Do(p, func(ctx node.Context) { ctx.CrashSelf() })
}

// History returns a snapshot of the recorded history.
func (lc *LiveCluster) History() History { return lc.net.History() }
