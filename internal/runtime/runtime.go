// Package runtime is the live counterpart of internal/sim: the same
// node.Handler/node.Context contract, executed by real goroutines over
// mutex-guarded FIFO queues with randomized real-time delays, instead of a
// deterministic virtual-time scheduler.
//
// It exists to show that the protocol stack is a real implementation, not a
// simulator artifact: the §5 detector, fd layer, and applications run here
// unchanged. Runs are nondeterministic, so tests against the runtime assert
// only schedule-independent properties (the sFS conditions hold on the
// recorded history of every schedule).
//
// Concurrency design: one worker goroutine per process delivers messages
// and timers serially, so handler callbacks are never concurrent for the
// same process. Senders enqueue onto per-channel FIFO queues with a
// delivery-ready timestamp; the worker picks the earliest ready channel
// head its gate accepts. A global recorder assigns history order by lock
// acquisition, which is consistent with every per-process and per-channel
// order — recorded histories are valid model histories.
package runtime

//sfs:allow detwallclock live backend: real time is this package's whole point — ticks, delays, and timers are wall-clock by design

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/recovery"
)

// Config parameterizes a live network.
type Config struct {
	// N is the number of processes. Required.
	N int
	// Seed seeds the delay generator.
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message delivery delay.
	// Defaults: 100µs and 2ms.
	MinDelay, MaxDelay time.Duration
	// Tick is the duration of one virtual tick for node.Context.Now and
	// SetTimer. Default: 1ms.
	Tick time.Duration
	// Link, when non-nil, is consulted once per send and may drop, park,
	// delay, duplicate, or reorder the message (see node.LinkDecision) —
	// the same transport hook the deterministic simulator honors, so one
	// fault plan drives both backends with identical semantics. Decision
	// times are in ticks; ExtraDelay is converted via Tick.
	Link node.LinkFn
	// Metrics, when non-nil, exposes the runtime's counters through a
	// shared registry — the backing store of the /metrics endpoint. The
	// same readings are available from Net.Metrics either way.
	Metrics *obs.Registry
	// Spans, when non-nil, records message-lifecycle spans with the same
	// kinds and sampling rule as the simulator, so span sequences are
	// comparable across backends.
	Spans *obs.SpanRecorder
	// Lifetimes schedules plan-driven process crashes and restarts with
	// the same semantics as the simulator's Config.Lifetimes; times are in
	// ticks. A down process loses every message that arrives during its
	// downtime and its timers die with it. Unbounded lifetimes are fine
	// here: live runs are bounded by Stop, not by a virtual horizon.
	Lifetimes []recovery.Lifetime
	// Recovery selects what a restarted process remembers: Off disables
	// restarts entirely (every lifetime is terminal at its first crash),
	// Amnesia restarts handlers blank, Durable restores the crash-time
	// snapshot through Store.
	Recovery recovery.Mode
	// Store persists crash-time snapshots under Durable recovery. Nil
	// defaults to a fresh in-memory store; pass a recovery.FileStore to
	// survive whole-process restarts of the host program.
	Store recovery.Store
}

// Net is a live network of processes. Attach handlers, Start, then Stop.
type Net struct {
	cfg      Config
	start    time.Time
	handlers []node.Handler
	procs    []*proc

	recMu   sync.Mutex
	history model.History
	nextMsg model.MsgID

	// Counters are atomic, so they are read live (Stats, Metrics, the
	// /metrics endpoint) without touching the recorder lock.
	cSent        obs.Counter
	cDelivered   obs.Counter
	cDropped     obs.Counter
	cDuplicated  obs.Counter
	cTimersFired obs.Counter
	cPlanCrashes obs.Counter
	cRestarts    obs.Counter
	cRecovered   obs.Counter

	rngMu sync.Mutex
	rng   *rand.Rand

	wg          sync.WaitGroup
	stopCh      chan struct{}
	started     bool
	stopped     bool
	faultTimers []*time.Timer // outstanding lifetime crash/restart timers
	mu          sync.Mutex
}

// New creates a live network.
func New(cfg Config) *Net {
	if cfg.N <= 0 {
		panic("runtime: Config.N must be positive")
	}
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 100*time.Microsecond, 2*time.Millisecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Millisecond
	}
	for i, l := range cfg.Lifetimes {
		if l.Proc < 1 || int(l.Proc) > cfg.N {
			panic(fmt.Sprintf("runtime: lifetime %d names process %d of %d", i, l.Proc, cfg.N))
		}
	}
	if cfg.Recovery == recovery.Durable && cfg.Store == nil {
		cfg.Store = recovery.NewMemStore()
	}
	n := &Net{
		cfg:      cfg,
		handlers: make([]node.Handler, cfg.N+1),
		procs:    make([]*proc, cfg.N+1),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stopCh:   make(chan struct{}),
	}
	for p := 1; p <= cfg.N; p++ {
		n.procs[p] = newProc(n, model.ProcID(p))
	}
	if reg := cfg.Metrics; reg != nil {
		reg.RegisterCounter("net_sent_total", &n.cSent)
		reg.RegisterCounter("net_delivered_total", &n.cDelivered)
		reg.RegisterCounter("net_dropped_total", &n.cDropped)
		reg.RegisterCounter("net_duplicated_total", &n.cDuplicated)
		reg.RegisterCounter("net_timers_fired_total", &n.cTimersFired)
		// Recovery counters only exist when lifetimes do, mirroring the
		// simulator: fault-free registry snapshots stay byte-identical.
		if len(cfg.Lifetimes) > 0 {
			reg.RegisterCounter("net_plan_crashes_total", &n.cPlanCrashes)
			reg.RegisterCounter("net_restarts_total", &n.cRestarts)
			reg.RegisterCounter("net_recovered_total", &n.cRecovered)
		}
	}
	return n
}

// SetHandler attaches the handler for process p. Must be called before
// Start.
func (n *Net) SetHandler(p model.ProcID, h node.Handler) {
	n.handlers[p] = h
}

// Start initializes every handler and launches the worker goroutines.
func (n *Net) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		panic("runtime: Start called twice")
	}
	n.started = true
	n.start = time.Now()
	n.mu.Unlock()
	for p := 1; p <= n.cfg.N; p++ {
		if n.handlers[p] == nil {
			panic(fmt.Sprintf("runtime: no handler for process %d", p))
		}
	}
	for p := 1; p <= n.cfg.N; p++ {
		n.procs[p].ctxDo(func(ctx node.Context) { n.handlers[p].Init(ctx) })
	}
	for p := 1; p <= n.cfg.N; p++ {
		n.wg.Add(1)
		go n.procs[p].loop(&n.wg)
	}
	for i := range n.cfg.Lifetimes {
		idx, l := i, n.cfg.Lifetimes[i]
		n.afterTicks(l.Crash, func() { n.planCrash(idx, l.Crash) })
	}
}

// Stop terminates the workers and waits for them to exit. Idempotent.
func (n *Net) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	timers := n.faultTimers
	n.faultTimers = nil
	n.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	close(n.stopCh)
	for p := 1; p <= n.cfg.N; p++ {
		n.procs[p].wake()
	}
	n.wg.Wait()
}

// Run is a convenience for examples: Start, let the network run for d,
// then Stop and return the recorded history.
func (n *Net) Run(d time.Duration) model.History {
	n.Start()
	time.Sleep(d)
	n.Stop()
	return n.History()
}

// History returns a snapshot of the recorded history.
func (n *Net) History() model.History {
	n.recMu.Lock()
	defer n.recMu.Unlock()
	return n.history.Clone().Normalize()
}

// Do runs fn in the context of process p (serialized with its deliveries),
// e.g. to inject a suspicion: net.Do(2, func(ctx){ det.Suspect(ctx, 1) }).
// It is a no-op if p has crashed.
func (n *Net) Do(p model.ProcID, fn func(node.Context)) {
	n.procs[p].inject(fn)
}

func (n *Net) nowTicks() int64 {
	return int64(time.Since(n.start) / n.cfg.Tick)
}

func (n *Net) record(e model.Event) {
	n.recMu.Lock()
	e.Time = n.nowTicks()
	e.Seq = len(n.history)
	n.history = append(n.history, e)
	n.recMu.Unlock()
}

func (n *Net) delay() time.Duration {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	span := int64(n.cfg.MaxDelay - n.cfg.MinDelay)
	if span <= 0 {
		return n.cfg.MinDelay
	}
	return n.cfg.MinDelay + time.Duration(n.rng.Int63n(span+1))
}

// Stats returns the network-fault counters: messages dropped by Config.Link
// and extra copies it injected.
func (n *Net) Stats() (dropped, duplicated int) {
	return int(n.cDropped.Value()), int(n.cDuplicated.Value())
}

// Metrics returns a name-sorted live snapshot of the runtime's counters,
// including the reliable layer's when any handler carries it. Safe to call
// while the network runs.
func (n *Net) Metrics() obs.Metrics {
	ms := obs.Metrics{
		{Name: "net_delivered_total", Kind: obs.KindCounter, Value: n.cDelivered.Value()},
		{Name: "net_dropped_total", Kind: obs.KindCounter, Value: n.cDropped.Value()},
		{Name: "net_duplicated_total", Kind: obs.KindCounter, Value: n.cDuplicated.Value()},
		{Name: "net_sent_total", Kind: obs.KindCounter, Value: n.cSent.Value()},
		{Name: "net_timers_fired_total", Kind: obs.KindCounter, Value: n.cTimersFired.Value()},
	}
	hasReliable := false
	for p := 1; p <= n.cfg.N; p++ {
		if _, ok := n.handlers[p].(reliableStats); ok {
			hasReliable = true
			break
		}
	}
	if hasReliable {
		r, d := n.ReliableStats()
		ms = append(ms,
			obs.Metric{Name: "reliable_acked_duplicates_total", Kind: obs.KindCounter, Value: int64(d)},
			obs.Metric{Name: "reliable_retransmits_total", Kind: obs.KindCounter, Value: int64(r)},
		)
	}
	hasByz := false
	for p := 1; p <= n.cfg.N; p++ {
		if _, ok := findByzStats(n.handlers[p]); ok {
			hasByz = true
			break
		}
	}
	if hasByz {
		d, m := n.ByzStats()
		ms = append(ms,
			obs.Metric{Name: "byz_detected_total", Kind: obs.KindCounter, Value: int64(d)},
			obs.Metric{Name: "byz_masked_total", Kind: obs.KindCounter, Value: int64(m)},
		)
	}
	// Mirroring the simulator's snapshot: recovery metrics appear only when
	// the run has lifetimes, keeping fault-free snapshots byte-stable.
	if len(n.cfg.Lifetimes) > 0 {
		ms = append(ms,
			obs.Metric{Name: "net_plan_crashes_total", Kind: obs.KindCounter, Value: n.cPlanCrashes.Value()},
			obs.Metric{Name: "net_recovered_total", Kind: obs.KindCounter, Value: n.cRecovered.Value()},
			obs.Metric{Name: "net_restarts_total", Kind: obs.KindCounter, Value: n.cRestarts.Value()},
		)
	}
	if hasReliable || hasByz || len(n.cfg.Lifetimes) > 0 {
		ms.Sort()
	}
	return ms
}

// RecoveryStats returns the process-fault counters: crashes executed from
// Config.Lifetimes, restarts that followed, and restarts that restored a
// non-empty durable snapshot. Safe to call while the network runs.
func (n *Net) RecoveryStats() (planCrashes, restarts, recovered int) {
	return int(n.cPlanCrashes.Value()), int(n.cRestarts.Value()), int(n.cRecovered.Value())
}

// afterTicks schedules fn after d ticks, retaining the timer so Stop can
// cancel the fault plan's outstanding work. No-op once the net stopped.
func (n *Net) afterTicks(d int64, fn func()) {
	if d < 0 {
		d = 0
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	t := time.AfterFunc(time.Duration(d)*n.cfg.Tick, fn)
	n.faultTimers = append(n.faultTimers, t)
	n.mu.Unlock()
}

// planCrash routes one crash window of lifetime idx through the victim's
// injection queue, so the crash serializes with its handler callbacks (a
// durable snapshot must not race a half-applied message). The inject is
// silently dropped if the process crashed terminally first — which also
// stops the periodic chain, matching the simulator.
func (n *Net) planCrash(idx int, at int64) {
	l := n.cfg.Lifetimes[idx]
	p := n.procs[l.Proc]
	p.inject(func(node.Context) { n.executePlanCrash(idx, at, p, l) })
}

// executePlanCrash runs on the victim's worker: snapshot (durable), take
// the process down, kill timers and queued work, record the crash, then
// schedule the restart and the next periodic window.
func (n *Net) executePlanCrash(idx int, at int64, p *proc, l recovery.Lifetime) {
	mode := n.cfg.Recovery
	if mode == recovery.Durable {
		// Snapshot before OnCrash: the crash notification must not be able
		// to perturb what the process will remember.
		if r, ok := n.handlers[p.self].(node.Restarter); ok {
			n.cfg.Store.Save(p.self, r.Snapshot())
		}
	}
	p.mu.Lock()
	p.down = true
	p.revive = false
	p.injects = nil
	p.dueTimer = nil
	for _, lt := range p.timers {
		lt.gen++
		if lt.timer != nil {
			lt.timer.Stop()
		}
	}
	p.mu.Unlock()
	n.cPlanCrashes.Inc()
	n.record(model.Crash(p.self))
	if lis, ok := n.handlers[p.self].(node.CrashListener); ok {
		lis.OnCrash(&liveCtx{p: p})
	}
	if downFor := l.Restart - l.Crash; mode != recovery.Off && downFor > 0 {
		// Downtime is measured from the crash's execution, so a late crash
		// still keeps the process down for the plan's full window.
		n.afterTicks(downFor, func() {
			p.mu.Lock()
			if p.down {
				p.revive = true
			}
			p.mu.Unlock()
			p.wake()
		})
	}
	if l.Period > 0 && mode != recovery.Off {
		if next := at + l.Period; l.Until == 0 || next <= l.Until {
			// The next window stays on the plan's absolute cadence.
			n.afterTicks(next-n.nowTicks(), func() { n.planCrash(idx, next) })
		}
	}
}

// finishRestart runs on the worker once the revive flag is consumed: record
// the restart, then hand the handler its crash-time snapshot (durable) or
// re-initialize it blank.
func (n *Net) finishRestart(p *proc) {
	var st []byte
	if n.cfg.Recovery == recovery.Durable {
		st, _ = n.cfg.Store.Load(p.self)
	}
	n.record(model.Restart(p.self))
	n.cRestarts.Inc()
	if len(st) > 0 {
		n.cRecovered.Inc()
	}
	// Restart spans are detection-grade, never sampled out — same rule as
	// the simulator's.
	if n.cfg.Spans != nil {
		note := "recovery=" + n.cfg.Recovery.String()
		if n.cfg.Recovery == recovery.Durable {
			note = fmt.Sprintf("%s snapshot=%dB", note, len(st))
		}
		n.cfg.Spans.Record(obs.Span{Time: n.nowTicks(), Kind: obs.SpanRestart, Proc: p.self, Note: note})
	}
	ctx := &liveCtx{p: p}
	if r, ok := n.handlers[p.self].(node.Restarter); ok {
		r.OnRestart(ctx, st)
	} else {
		n.handlers[p.self].Init(ctx)
	}
}

// reliableStats is implemented by handlers that wrap a reliable-delivery
// layer (internal/reliable.Endpoint); the runtime discovers it structurally
// to avoid depending on the layer.
type reliableStats interface {
	ReliableStats() (retransmits, ackedDuplicates int)
}

// ReliableStats aggregates the reliable-delivery counters across every
// handler that carries the layer: frames retransmitted, and received
// duplicates suppressed after re-acking. Both are 0 when no handler wraps
// an Endpoint. Safe to call while the network runs — the layer's counters
// are atomic.
func (n *Net) ReliableStats() (retransmits, ackedDuplicates int) {
	for p := 1; p <= n.cfg.N; p++ {
		if rs, ok := n.handlers[p].(reliableStats); ok {
			r, d := rs.ReliableStats()
			retransmits += r
			ackedDuplicates += d
		}
	}
	return retransmits, ackedDuplicates
}

// byzStats is implemented by the Byzantine validation interposer
// (internal/byz.Endpoint), discovered structurally like reliableStats.
type byzStats interface {
	ByzStats() (detected, masked int)
}

// findByzStats walks a handler's wrapper chain outermost-first — the
// interposer sits inside the reliable layer when both are enabled — until
// it finds the validation interposer or runs out of wrappers.
func findByzStats(h node.Handler) (byzStats, bool) {
	for h != nil {
		if bs, ok := h.(byzStats); ok {
			return bs, true
		}
		iw, ok := h.(interface{ Inner() node.Handler })
		if !ok {
			return nil, false
		}
		h = iw.Inner()
	}
	return nil, false
}

// ByzStats aggregates the Byzantine validation interposer's counters
// across every handler that carries the layer: misbehavior convictions,
// and frames discarded from convicted senders. Both are 0 when no handler
// wraps one. Safe to call while the network runs.
func (n *Net) ByzStats() (detected, masked int) {
	for p := 1; p <= n.cfg.N; p++ {
		if bs, ok := findByzStats(n.handlers[p]); ok {
			d, m := bs.ByzStats()
			detected += d
			masked += m
		}
	}
	return detected, masked
}

// liveMsg is a queued message on a live channel.
type liveMsg struct {
	id      model.MsgID
	payload node.Payload
	readyAt time.Time
	parked  bool  // held forever; blocks the channel behind it
	span    int64 // enqueue span id; 0 when the message is unsampled
}

// proc is the per-process worker state.
type proc struct {
	net  *Net
	self model.ProcID

	mu       sync.Mutex
	queues   map[model.ProcID][]liveMsg // per-sender FIFO
	injects  []func(node.Context)
	timers   map[string]*liveTimer
	dueTimer []string              // timer names that have fired, in order
	emitted  map[model.ProcID]bool // failed_self(j) already recorded
	crashed  bool
	down     bool // plan-crashed, restart possibly pending (crash-recovery)
	revive   bool // restart timer elapsed; worker finishes the restart
	wakeCh   chan struct{}

	// curSpan frames the handler callback currently running on this
	// process's worker. Only the worker goroutine touches it (callbacks are
	// serialized per process), so it needs no lock.
	curSpan int64
}

type liveTimer struct {
	gen   int64
	timer *time.Timer
}

func newProc(n *Net, self model.ProcID) *proc {
	return &proc{
		net:     n,
		self:    self,
		queues:  make(map[model.ProcID][]liveMsg),
		timers:  make(map[string]*liveTimer),
		emitted: make(map[model.ProcID]bool),
		wakeCh:  make(chan struct{}, 1),
	}
}

func (p *proc) wake() {
	select {
	case p.wakeCh <- struct{}{}:
	default:
	}
}

// inject schedules fn for serialized execution on p's worker. Injections
// to crashed or down processes are dropped: there is nobody home.
func (p *proc) inject(fn func(node.Context)) {
	p.mu.Lock()
	if p.crashed || p.down {
		p.mu.Unlock()
		return
	}
	p.injects = append(p.injects, fn)
	p.mu.Unlock()
	p.wake()
}

// ctxDo runs fn synchronously in p's context (used for Init before the
// workers start).
func (p *proc) ctxDo(fn func(node.Context)) {
	fn(&liveCtx{p: p})
}

// loop is the worker: deliver injections, due timers, and ready channel
// heads until the network stops or the process crashes.
func (p *proc) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-p.net.stopCh:
			return
		default:
		}
		if !p.step() {
			// Nothing deliverable: wait for a wake-up or shutdown.
			select {
			case <-p.net.stopCh:
				return
			case <-p.wakeCh:
			case <-time.After(p.net.cfg.MaxDelay):
				// Periodic re-check: a head may have become ready.
			}
		}
	}
}

// step delivers at most one pending item; it reports whether it did.
func (p *proc) step() bool {
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return false
	}
	if p.down {
		if p.revive {
			p.revive = false
			p.down = false
			p.mu.Unlock()
			p.net.finishRestart(p)
			return true
		}
		// Arrival at a down process is loss, same rule as the simulator:
		// discard every head that became ready, then go back to sleep.
		now := time.Now()
		for from, q := range p.queues {
			for len(q) > 0 && !q[0].parked && !q[0].readyAt.After(now) {
				if q[0].span != 0 {
					p.net.cfg.Spans.Record(obs.Span{
						Parent: q[0].span, Time: p.net.nowTicks(), Kind: obs.SpanDrop,
						Proc: p.self, Peer: from, Msg: q[0].id, Note: "receiver down",
					})
				}
				q = q[1:]
			}
			p.queues[from] = q
		}
		p.mu.Unlock()
		return false
	}
	// 1. Injections.
	if len(p.injects) > 0 {
		fn := p.injects[0]
		p.injects = p.injects[1:]
		p.mu.Unlock()
		fn(&liveCtx{p: p})
		return true
	}
	// 2. Due timers.
	if len(p.dueTimer) > 0 {
		name := p.dueTimer[0]
		p.dueTimer = p.dueTimer[1:]
		p.mu.Unlock()
		p.net.cTimersFired.Inc()
		p.net.handlers[p.self].OnTimer(&liveCtx{p: p}, name)
		return true
	}
	// 3. Ready channel heads, in sender order for fairness determinism.
	now := time.Now()
	gate, _ := p.net.handlers[p.self].(node.Gate)
	senders := make([]model.ProcID, 0, len(p.queues))
	for from := range p.queues {
		if len(p.queues[from]) > 0 {
			senders = append(senders, from)
		}
	}
	sort.Slice(senders, func(a, b int) bool { return senders[a] < senders[b] })
	for _, from := range senders {
		head := p.queues[from][0]
		if head.parked || head.readyAt.After(now) {
			continue
		}
		if gate != nil && !gate.Accepts(from, head.payload) {
			continue
		}
		p.queues[from] = p.queues[from][1:]
		p.mu.Unlock()
		p.net.record(model.Recv(p.self, from, head.id, head.payload.Tag, head.payload.Subject))
		p.net.cDelivered.Inc()
		if head.span != 0 {
			p.curSpan = p.net.cfg.Spans.Record(obs.Span{
				Parent: head.span, Time: p.net.nowTicks(), Kind: obs.SpanDeliver,
				Proc: p.self, Peer: from, Msg: head.id, Tag: head.payload.Tag,
			})
		} else {
			p.curSpan = 0
		}
		p.net.handlers[p.self].OnMessage(&liveCtx{p: p}, from, head.payload)
		p.curSpan = 0
		return true
	}
	p.mu.Unlock()
	return false
}

// liveCtx implements node.Context for one process of a live network.
type liveCtx struct {
	p *proc
}

var _ node.Context = (*liveCtx)(nil)

func (c *liveCtx) Self() model.ProcID { return c.p.self }
func (c *liveCtx) N() int             { return c.p.net.cfg.N }
func (c *liveCtx) Now() int64         { return c.p.net.nowTicks() }

func (c *liveCtx) Send(to model.ProcID, pl node.Payload) {
	p := c.p
	net := p.net
	p.mu.Lock()
	dead := p.crashed || p.down
	p.mu.Unlock()
	if dead {
		return
	}
	if to == p.self {
		panic("runtime: send to self not supported")
	}
	if to < 1 || int(to) > net.cfg.N {
		panic(fmt.Sprintf("runtime: send to invalid process %d", to))
	}
	net.recMu.Lock()
	net.nextMsg++
	id := net.nextMsg
	e := model.Send(p.self, to, id, pl.Tag, pl.Subject)
	e.Time = net.nowTicks()
	e.Seq = len(net.history)
	net.history = append(net.history, e)
	net.recMu.Unlock()
	net.cSent.Inc()

	var dec node.LinkDecision
	if net.cfg.Link != nil {
		dec = net.cfg.Link(p.self, to, pl, net.nowTicks())
	}
	var parentSpan int64
	if net.cfg.Spans != nil && net.cfg.Spans.Sampled(id) {
		parentSpan = net.cfg.Spans.Record(obs.Span{
			Parent: p.curSpan, Time: net.nowTicks(), Kind: obs.SpanSend,
			Proc: p.self, Peer: to, Msg: id, Tag: pl.Tag, Target: pl.Subject,
		})
		if note := dec.Note(); note != "" {
			parentSpan = net.cfg.Spans.Record(obs.Span{
				Parent: parentSpan, Time: net.nowTicks(), Kind: obs.SpanFate,
				Proc: p.self, Peer: to, Msg: id, Note: note,
			})
		}
	}
	if dec.Drop {
		net.cDropped.Inc()
		if parentSpan != 0 {
			net.cfg.Spans.Record(obs.Span{
				Parent: parentSpan, Time: net.nowTicks(), Kind: obs.SpanDrop,
				Proc: p.self, Peer: to, Msg: id,
			})
		}
		return
	}
	net.cDuplicated.Add(int64(dec.Duplicates))

	// A Byzantine network may substitute what the channel carries; the send
	// event above still records the payload the sender actually passed in.
	wire := pl
	if dec.Replace != nil {
		wire = dec.Replace.Payload
	}

	dst := net.procs[to]
	var maxDelay time.Duration
	dst.mu.Lock()
	enqueue := func(payload node.Payload, extraTicks int64) {
		d := net.delay() + time.Duration(dec.ExtraDelay+extraTicks)*net.cfg.Tick
		if d > maxDelay {
			maxDelay = d
		}
		msg := liveMsg{
			id:      id,
			payload: payload,
			readyAt: time.Now().Add(d),
			parked:  dec.Park,
		}
		if parentSpan != 0 {
			msg.span = net.cfg.Spans.Record(obs.Span{
				Parent: parentSpan, Time: net.nowTicks(), Kind: obs.SpanEnqueue,
				Proc: p.self, Peer: to, Msg: id,
			})
		}
		q := dst.queues[p.self]
		if dec.Reorder && len(q) > 1 {
			// Overtake the current tail: a pairwise FIFO violation.
			tail := len(q) - 1
			q = append(q, q[tail])
			q[tail] = msg
		} else {
			q = append(q, msg)
		}
		dst.queues[p.self] = q
	}
	for c := 0; c < dec.Copies(); c++ {
		enqueue(wire, 0)
	}
	if dec.Replay != nil {
		// A Byzantine replay: a ghost copy of an earlier wire payload rides
		// along, further delayed so it lands stale.
		enqueue(dec.Replay.Payload, dec.Replay.Delay)
	}
	dst.mu.Unlock()
	dst.wake()
	// Ensure a re-check once the delay elapses even if nothing else wakes
	// the destination.
	time.AfterFunc(maxDelay, dst.wake)
}

func (c *liveCtx) SetTimer(name string, delayTicks int64) {
	p := c.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed || p.down {
		return
	}
	lt := p.timers[name]
	if lt == nil {
		lt = &liveTimer{}
		p.timers[name] = lt
	} else if lt.timer != nil {
		lt.timer.Stop()
	}
	lt.gen++
	gen := lt.gen
	d := time.Duration(delayTicks) * p.net.cfg.Tick
	lt.timer = time.AfterFunc(d, func() {
		p.mu.Lock()
		cur := p.timers[name]
		if p.crashed || cur == nil || cur.gen != gen {
			p.mu.Unlock()
			return
		}
		p.dueTimer = append(p.dueTimer, name)
		p.mu.Unlock()
		p.wake()
	})
}

func (c *liveCtx) CancelTimer(name string) {
	p := c.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if lt := p.timers[name]; lt != nil {
		lt.gen++
		if lt.timer != nil {
			lt.timer.Stop()
		}
	}
}

func (c *liveCtx) EmitFailed(j model.ProcID) {
	p := c.p
	p.mu.Lock()
	if p.crashed || p.down || p.emitted[j] {
		p.mu.Unlock()
		return
	}
	p.emitted[j] = true
	p.mu.Unlock()
	p.net.record(model.Failed(p.self, j))
	// Detection spans are recorded unconditionally, like the simulator's.
	if p.net.cfg.Spans != nil {
		p.net.cfg.Spans.Record(obs.Span{
			Parent: p.curSpan, Time: p.net.nowTicks(), Kind: obs.SpanCrashConfirm,
			Proc: p.self, Target: j,
		})
	}
}

func (c *liveCtx) CrashSelf() {
	p := c.p
	p.mu.Lock()
	if p.crashed || p.down {
		p.mu.Unlock()
		return
	}
	p.crashed = true
	for _, lt := range p.timers {
		lt.gen++
		if lt.timer != nil {
			lt.timer.Stop()
		}
	}
	p.mu.Unlock()
	p.net.record(model.Crash(p.self))
	if l, ok := p.net.handlers[p.self].(node.CrashListener); ok {
		l.OnCrash(c)
	}
	p.wake()
}

func (c *liveCtx) EmitInternal(tag string, subject model.ProcID) {
	p := c.p
	p.mu.Lock()
	dead := p.crashed || p.down
	p.mu.Unlock()
	if dead {
		return
	}
	p.net.record(model.Internal(p.self, tag, subject))
	if tag == "suspect" && p.net.cfg.Spans != nil {
		p.net.cfg.Spans.Record(obs.Span{
			Parent: p.curSpan, Time: p.net.nowTicks(), Kind: obs.SpanSuspect,
			Proc: p.self, Target: subject, Tag: tag,
		})
	}
}
