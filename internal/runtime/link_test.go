package runtime_test

import (
	"testing"
	"time"

	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/node"
	"failstop/internal/runtime"
)

// TestLiveLinkDrop verifies the transport hook: a plan that cuts 1->2
// suppresses every delivery on that link while the reverse direction still
// flows, and the drop counter reflects it.
func TestLiveLinkDrop(t *testing.T) {
	cfg := fastCfg(2, 3)
	plane := netadv.NewPlane(netadv.Plan{Name: "cut", Rules: []netadv.Rule{
		{Cut: true, Links: netadv.LinkSet{Pairs: []netadv.Link{{From: 1, To: 2}}}},
	}}, 2, 3)
	cfg.Link = plane.Decide
	net := runtime.New(cfg)
	c1, c2 := &collector{}, &collector{}
	net.SetHandler(1, c1)
	net.SetHandler(2, c2)
	net.Start()
	for i := 0; i < 5; i++ {
		net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "DOOMED"}) })
		net.Do(2, func(ctx node.Context) { ctx.Send(1, node.Payload{Tag: "OK"}) })
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(c1.tags()) < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	net.Stop()
	if got := c2.tags(); len(got) != 0 {
		t.Errorf("process 2 received %v across a cut link", got)
	}
	if got := c1.tags(); len(got) != 5 {
		t.Errorf("process 1 received %d messages, want 5", len(got))
	}
	dropped, duplicated := net.Stats()
	if dropped != 5 || duplicated != 0 {
		t.Errorf("Stats() = (%d, %d), want (5, 0)", dropped, duplicated)
	}
	// The recorded history shows the sends but no receive on the cut link.
	for _, e := range net.History() {
		if e.Kind == model.KindRecv && e.Peer == 1 && e.Proc == 2 {
			t.Errorf("history records a receive across the cut link: %s", e)
		}
	}
}

// TestLiveLinkDuplicate verifies duplication: every copy of a duplicated
// message is delivered and counted.
func TestLiveLinkDuplicate(t *testing.T) {
	cfg := fastCfg(2, 4)
	plane := netadv.NewPlane(netadv.Plan{Name: "dup", Rules: []netadv.Rule{
		{Duplicate: 1}, // every message duplicated once
	}}, 2, 4)
	cfg.Link = plane.Decide
	net := runtime.New(cfg)
	c1, c2 := &collector{}, &collector{}
	net.SetHandler(1, c1)
	net.SetHandler(2, c2)
	net.Start()
	for i := 0; i < 3; i++ {
		net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "D"}) })
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(c2.tags()) < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	net.Stop()
	if got := c2.tags(); len(got) != 6 {
		t.Errorf("process 2 received %d copies, want 6 (3 messages duplicated)", len(got))
	}
	if _, duplicated := net.Stats(); duplicated != 3 {
		t.Errorf("duplicated = %d, want 3", duplicated)
	}
}

// TestLiveLinkPark verifies a parked message blocks its channel without
// stopping the rest of the network.
func TestLiveLinkPark(t *testing.T) {
	cfg := fastCfg(2, 5)
	parkFirst := func(from, to model.ProcID, p node.Payload, at int64) node.LinkDecision {
		if p.Tag == "PARKED" {
			return node.LinkDecision{Park: true}
		}
		return node.LinkDecision{}
	}
	cfg.Link = parkFirst
	net := runtime.New(cfg)
	c1, c2 := &collector{}, &collector{}
	net.SetHandler(1, c1)
	net.SetHandler(2, c2)
	net.Start()
	net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "PARKED"}) })
	net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "BEHIND"}) })
	net.Do(2, func(ctx node.Context) { ctx.Send(1, node.Payload{Tag: "OK"}) })
	deadline := time.Now().Add(500 * time.Millisecond)
	for len(c1.tags()) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // grace: nothing on 1->2 should move
	net.Stop()
	if got := c2.tags(); len(got) != 0 {
		t.Errorf("process 2 received %v behind a parked head", got)
	}
	if got := c1.tags(); len(got) != 1 || got[0] != "OK" {
		t.Errorf("process 1 got %v, want [OK]", got)
	}
}
