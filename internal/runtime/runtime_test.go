package runtime_test

import (
	"sync"
	"testing"
	"time"

	"failstop/internal/checker"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/runtime"
)

// collector records message tags it received, thread-safely for assertions
// after Stop.
type collector struct {
	mu  sync.Mutex
	got []string
}

func (c *collector) Init(node.Context) {}
func (c *collector) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	c.mu.Lock()
	c.got = append(c.got, p.Tag)
	c.mu.Unlock()
	if p.Tag == "PING" {
		ctx.Send(from, node.Payload{Tag: "PONG"})
	}
}
func (c *collector) OnTimer(node.Context, string) {}

func (c *collector) tags() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.got))
	copy(out, c.got)
	return out
}

func fastCfg(n int, seed int64) runtime.Config {
	return runtime.Config{
		N:        n,
		Seed:     seed,
		MinDelay: 50 * time.Microsecond,
		MaxDelay: 500 * time.Microsecond,
		Tick:     100 * time.Microsecond,
	}
}

func TestLivePingPong(t *testing.T) {
	net := runtime.New(fastCfg(2, 1))
	c1, c2 := &collector{}, &collector{}
	net.SetHandler(1, c1)
	net.SetHandler(2, c2)
	net.Start()
	net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "PING"}) })
	deadline := time.Now().Add(2 * time.Second)
	for len(c1.tags()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	net.Stop()
	if got := c2.tags(); len(got) != 1 || got[0] != "PING" {
		t.Errorf("process 2 got %v", got)
	}
	if got := c1.tags(); len(got) != 1 || got[0] != "PONG" {
		t.Errorf("process 1 got %v", got)
	}
	if err := net.History().Validate(); err != nil {
		t.Errorf("invalid history: %v", err)
	}
}

func TestLiveFIFO(t *testing.T) {
	net := runtime.New(fastCfg(2, 2))
	c2 := &collector{}
	net.SetHandler(1, &collector{})
	net.SetHandler(2, c2)
	net.Start()
	net.Do(1, func(ctx node.Context) {
		for _, tag := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			ctx.Send(2, node.Payload{Tag: tag})
		}
	})
	deadline := time.Now().Add(2 * time.Second)
	for len(c2.tags()) < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	net.Stop()
	got := c2.tags()
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO broken: got %v", got)
		}
	}
	if err := net.History().Validate(); err != nil {
		t.Errorf("invalid history: %v", err)
	}
}

// The full sFS stack on the live runtime: a false suspicion must play out
// exactly as in the simulator — target killed, everyone detects, all sFS
// conditions hold on the recorded history.
func TestLiveSFSProtocol(t *testing.T) {
	const n, tFail = 5, 2
	net := runtime.New(fastCfg(n, 3))
	dets := make([]*core.Detector, n+1)
	for p := 1; p <= n; p++ {
		d := core.NewDetector(core.Config{N: n, T: tFail}, nil, nil)
		dets[p] = d
		net.SetHandler(model.ProcID(p), d)
	}
	net.Start()
	net.Do(2, func(ctx node.Context) { dets[2].Suspect(ctx, 1) })

	// Poll via the mutex-guarded history: detectors themselves are
	// single-threaded state owned by their worker goroutine.
	deadline := time.Now().Add(5 * time.Second)
	done := func() bool {
		h := net.History()
		for p := model.ProcID(2); int(p) <= n; p++ {
			if h.FailedIndex(p, 1) < 0 {
				return false
			}
		}
		return h.CrashIndex(1) >= 0
	}
	for !done() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	net.Stop()
	if !done() {
		t.Fatal("protocol did not converge on the live runtime")
	}
	h := net.History()
	if err := h.Validate(); err != nil {
		t.Fatalf("invalid history: %v", err)
	}
	ab := h.DropTags(core.TagSusp)
	for _, v := range checker.SFS(ab) {
		if !v.Holds {
			t.Errorf("%s", v)
		}
	}
	if v := checker.WitnessProperty(h, core.TagSusp, tFail); !v.Holds {
		t.Errorf("%s", v)
	}
}

func TestLiveTimers(t *testing.T) {
	net := runtime.New(fastCfg(1, 4))
	var mu sync.Mutex
	var fired []string
	h := &timerHandler{onTimer: func(name string) {
		mu.Lock()
		fired = append(fired, name)
		mu.Unlock()
	}}
	net.SetHandler(1, h)
	net.Start()
	net.Do(1, func(ctx node.Context) {
		// Generous spacing: under the race scheduler, goroutine wakeups can
		// be delayed by milliseconds, and a cancel must not lose the race
		// against its own timer's firing.
		ctx.SetTimer("a", 200) // 20ms
		ctx.SetTimer("b", 50)  // 5ms
		ctx.SetTimer("c", 400) // 40ms, cancelled immediately below
		ctx.CancelTimer("c")
	})
	time.Sleep(80 * time.Millisecond)
	net.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want [b a]", fired)
	}
	if fired[0] != "b" || fired[1] != "a" {
		t.Errorf("fired = %v, want [b a]", fired)
	}
}

type timerHandler struct {
	onTimer func(string)
}

func (h *timerHandler) Init(node.Context)                                  {}
func (h *timerHandler) OnMessage(node.Context, model.ProcID, node.Payload) {}
func (h *timerHandler) OnTimer(_ node.Context, name string)                { h.onTimer(name) }

func TestLiveCrashStopsProcess(t *testing.T) {
	net := runtime.New(fastCfg(2, 5))
	c2 := &collector{}
	net.SetHandler(1, &collector{})
	net.SetHandler(2, c2)
	net.Start()
	net.Do(2, func(ctx node.Context) { ctx.CrashSelf() })
	time.Sleep(5 * time.Millisecond)
	net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "X"}) })
	time.Sleep(20 * time.Millisecond)
	net.Stop()
	if got := c2.tags(); len(got) != 0 {
		t.Errorf("crashed process received %v", got)
	}
	h := net.History()
	if err := h.Validate(); err != nil {
		t.Errorf("invalid history: %v", err)
	}
	if h.CrashIndex(2) < 0 {
		t.Error("crash not recorded")
	}
}

func TestStopIdempotent(t *testing.T) {
	net := runtime.New(fastCfg(1, 6))
	net.SetHandler(1, &collector{})
	net.Start()
	net.Stop()
	net.Stop() // must not panic or deadlock
}

func TestRunConvenience(t *testing.T) {
	net := runtime.New(fastCfg(2, 7))
	net.SetHandler(1, &collector{})
	net.SetHandler(2, &collector{})
	net.Do(1, func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "X"}) })
	h := net.Run(20 * time.Millisecond)
	if err := h.Validate(); err != nil {
		t.Errorf("invalid history: %v", err)
	}
}
