// Package node defines the interfaces between a protocol/process
// implementation (a Handler) and its host (the deterministic simulator in
// internal/sim or the live goroutine runtime in internal/runtime).
//
// A Handler is a single process of the paper's system: it reacts to message
// deliveries and timer expirations, and acts on the world exclusively
// through its Context (sending messages, setting timers, executing
// failure-detection and crash events). Handlers own no goroutines and do no
// I/O; hosts guarantee that all callbacks of one process are serialized.
package node

import "failstop/internal/model"

// Payload is the content of a message. Tag identifies the protocol layer
// and message type (e.g. "SUSP", "HB", "APP"); Subject optionally names the
// process the message is about (the j of "j failed"); Data carries opaque
// application bytes.
type Payload struct {
	Tag     string
	Subject model.ProcID
	Data    []byte
}

// Context is the capability a host hands to a Handler. All methods must be
// called only from within a Handler callback (hosts serialize callbacks per
// process). After CrashSelf returns, all further calls are no-ops.
type Context interface {
	// Self returns the process id of this handler.
	Self() model.ProcID
	// N returns the number of processes in the system.
	N() int
	// Now returns the current virtual (simulator) or wall-clock-derived
	// (runtime) time in ticks.
	Now() int64
	// Send appends a message to the FIFO channel from Self to to. Sending to
	// self is not supported: the paper's protocol counts the sender in its
	// own quorum directly, which hosts model without a loopback channel.
	Send(to model.ProcID, p Payload)
	// SetTimer schedules OnTimer(name) after delay ticks, replacing any
	// pending timer with the same name.
	SetTimer(name string, delay int64)
	// CancelTimer cancels the pending timer with the given name, if any.
	CancelTimer(name string)
	// EmitFailed executes the event failed_Self(j).
	EmitFailed(j model.ProcID)
	// CrashSelf executes crash_Self. The process executes no further events;
	// pending deliveries and timers are discarded.
	CrashSelf()
	// EmitInternal records an internal event with the given tag and optional
	// subject process, for trace-level assertions by checkers.
	EmitInternal(tag string, subject model.ProcID)
}

// Handler is one process. Implementations must be deterministic functions
// of their inputs for simulator runs to be reproducible.
type Handler interface {
	// Init is called exactly once, before any delivery, at time 0.
	Init(ctx Context)
	// OnMessage delivers the message at the head of the channel from->self.
	// Deliveries from one sender arrive in FIFO order.
	OnMessage(ctx Context, from model.ProcID, p Payload)
	// OnTimer fires a timer previously set via Context.SetTimer.
	OnTimer(ctx Context, name string)
}

// Gate is optionally implemented by Handlers that must defer the receive
// event of certain messages (the paper's sFS2d: a message sent after a
// detection must not be *received* before the receiver also detects).
//
// When the message at the head of a channel is not accepted, the channel
// blocks — FIFO forbids skipping — and the host re-evaluates the gate after
// every subsequent event of the receiving process.
type Gate interface {
	// Accepts reports whether the process is willing to execute the receive
	// event for the message p at the head of channel from->self right now.
	Accepts(from model.ProcID, p Payload) bool
}

// CrashListener is optionally implemented by Handlers that need to observe
// their own crash (e.g. to flush state for recovery experiments that model
// stable storage, as in the §6 last-process-to-fail problem).
type CrashListener interface {
	// OnCrash is called once, after crash_Self has been recorded. The
	// context is already dead: all Context methods are no-ops.
	OnCrash(ctx Context)
}

// Restarter is optionally implemented by Handlers that participate in the
// crash-recovery subsystem (internal/recovery). When an environment fault
// plan crashes a process under durable recovery, the host calls Snapshot
// and persists the result; when the process restarts, the host calls
// OnRestart instead of Init — with the persisted snapshot under durable
// recovery, or with nil state under amnesia. Handlers that do not
// implement Restarter are restarted by calling Init again, which cannot
// clear any crashed-flag the handler keeps for itself.
type Restarter interface {
	// Snapshot serializes the state the handler wants to survive a crash.
	// It must not mutate the handler: hosts call it at crash time, before
	// OnCrash.
	Snapshot() []byte
	// OnRestart re-initializes the handler after a restart. state is the
	// bytes a prior Snapshot returned, or nil when nothing was persisted
	// (amnesia, or a first crash that predates any snapshot). The handler
	// must leave itself runnable: clear any internal crashed-flag, rebuild
	// its state from the snapshot, and re-arm its timers.
	OnRestart(ctx Context, state []byte)
}
