package node

import (
	"testing"

	"failstop/internal/model"
)

func TestLinkDecisionCopies(t *testing.T) {
	cases := []struct {
		name string
		dec  LinkDecision
		want int
	}{
		{"zero value delivers once", LinkDecision{}, 1},
		{"drop delivers nothing", LinkDecision{Drop: true}, 0},
		{"drop wins over duplicates", LinkDecision{Drop: true, Duplicates: 3}, 0},
		{"one duplicate is two copies", LinkDecision{Duplicates: 1}, 2},
		{"park still counts its copies", LinkDecision{Park: true, Duplicates: 2}, 3},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.dec.Copies(); got != tt.want {
				t.Errorf("Copies() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestZeroLinkDecisionIsNormalDelivery(t *testing.T) {
	var dec LinkDecision
	if dec.Drop || dec.Park || dec.Reorder || dec.ExtraDelay != 0 || dec.Duplicates != 0 {
		t.Errorf("zero LinkDecision carries faults: %+v", dec)
	}
}

// fakeHandler exercises the full optional-interface surface a host may
// probe for: Handler, Gate, and CrashListener.
type fakeHandler struct {
	inits, msgs, timers, crashes int
	accepts                      bool
}

func (f *fakeHandler) Init(Context) { f.inits++ }
func (f *fakeHandler) OnMessage(ctx Context, from model.ProcID, p Payload) {
	f.msgs++
}
func (f *fakeHandler) OnTimer(ctx Context, name string) { f.timers++ }
func (f *fakeHandler) Accepts(from model.ProcID, p Payload) bool {
	return f.accepts
}
func (f *fakeHandler) OnCrash(Context) { f.crashes++ }

// TestOptionalInterfaceDiscovery pins down the contract hosts rely on:
// Gate and CrashListener are discovered by type assertion on a Handler.
func TestOptionalInterfaceDiscovery(t *testing.T) {
	var h Handler = &fakeHandler{accepts: true}
	g, ok := h.(Gate)
	if !ok {
		t.Fatal("fakeHandler does not expose Gate via type assertion")
	}
	if !g.Accepts(1, Payload{Tag: "APP"}) {
		t.Error("gate answer lost through the interface")
	}
	if _, ok := h.(CrashListener); !ok {
		t.Error("fakeHandler does not expose CrashListener via type assertion")
	}
	// A bare handler without the optional interfaces must not match them.
	var bare Handler = bareHandler{}
	if _, ok := bare.(Gate); ok {
		t.Error("bare handler unexpectedly matches Gate")
	}
	if _, ok := bare.(CrashListener); ok {
		t.Error("bare handler unexpectedly matches CrashListener")
	}
}

type bareHandler struct{}

func (bareHandler) Init(Context)                             {}
func (bareHandler) OnMessage(Context, model.ProcID, Payload) {}
func (bareHandler) OnTimer(Context, string)                  {}

func TestPayloadValueSemantics(t *testing.T) {
	data := []byte{1, 2, 3}
	p := Payload{Tag: "APP", Subject: 4, Data: data}
	q := p // payloads are copied by value between host layers...
	q.Tag = "OTHER"
	q.Subject = 5
	if p.Tag != "APP" || p.Subject != 4 {
		t.Errorf("payload copy mutated the original: %+v", p)
	}
	// ...but Data is a shared slice: hosts must not mutate it in place.
	q.Data[0] = 9
	if p.Data[0] != 9 {
		t.Error("Data is expected to alias (documented sharing); copy-on-write happened")
	}
}
