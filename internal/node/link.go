package node

import (
	"strconv"

	"failstop/internal/model"
)

// LinkDecision is the fate a (possibly adversarial) network assigns to one
// message at send time. The zero value means normal delivery: one copy,
// host-chosen delay, FIFO position at the channel tail.
//
// LinkDecision generalizes a bare delay choice: the network may discard the
// message, hold it forever, deliver extra copies, or let it overtake the
// message queued immediately ahead of it. Hosts record the send event
// unconditionally — the sender executed it — and then apply the decision to
// what the channel actually carries.
type LinkDecision struct {
	// Drop discards the message: the send event is recorded, but no copy is
	// ever delivered.
	Drop bool
	// Park holds every delivered copy at the head of its channel forever
	// (and, channels being FIFO, everything queued behind it).
	Park bool
	// ExtraDelay adds this many ticks on top of the host's base delay for
	// every delivered copy.
	ExtraDelay int64
	// Duplicates is the number of additional copies the network delivers
	// beyond the original (0 = no duplication). Each copy is enqueued
	// independently with its own host-chosen base delay.
	Duplicates int
	// Reorder enqueues the message (and its copies) immediately before the
	// current channel tail instead of after it — a pairwise FIFO violation.
	// It has no effect when the channel holds at most one message.
	Reorder bool
	// Replace, when non-nil, substitutes the payload every delivered copy
	// carries — a Byzantine wire fault. The send event still records the
	// original payload: the sender executed that send; the network lied.
	Replace *Replacement
	// Replay, when non-nil, additionally injects a ghost copy of an earlier
	// wire payload on the same link, delayed by Replay.Delay beyond the
	// host's base delay — a Byzantine replay. The ghost is enqueued at the
	// channel tail and does not count as a duplicate of the current message.
	Replay *ReplayedCopy
}

// Replacement is the payload the network substitutes for every delivered
// copy of a message, with a short note ("corrupt", "equiv=g1") for fault-
// fate trace spans.
type Replacement struct {
	Payload Payload
	Note    string
}

// ReplayedCopy is a previously transmitted wire payload the network
// re-injects on the link, Delay ticks beyond the host's base delay.
type ReplayedCopy struct {
	Payload Payload
	Delay   int64
}

// Copies returns how many copies of the message the network delivers:
// 0 when dropped, otherwise 1 plus the duplicate count.
func (d LinkDecision) Copies() int {
	if d.Drop {
		return 0
	}
	return 1 + d.Duplicates
}

// WireBodyFn, when non-nil, locates the link-layer framed body inside a
// wire payload's data: it returns the offset at which the original
// (pre-framing) payload bytes begin, and ok=false for data that carries no
// such framing. The reliable delivery layer registers its frame decoder
// here at init, so the fault plane can reach through its header when a
// Byzantine rule must mutate or reseal the inner payload without breaking
// the framing — without the fault plane importing the layer (whose tests
// import the fault plane). Set once at init; never mutated afterwards.
var WireBodyFn func(data []byte) (offset int, ok bool)

// LinkFn decides the fate of each message at send time: it is consulted by
// the host (the deterministic simulator or the live runtime) once per send,
// with the sender, destination, payload, and current time in ticks.
// Implementations must be goroutine-safe for live hosts and must derive any
// randomness deterministically from their own seed and the call inputs, so
// that equal seeds reproduce equal fates.
type LinkFn func(from, to model.ProcID, p Payload, at int64) LinkDecision

// Note summarizes a non-trivial decision as a compact comma-joined string
// ("drop", "park,dup=2", "delay=+3"); the zero decision yields "". Hosts
// use it to label fault-fate trace spans identically on both backends.
func (d LinkDecision) Note() string {
	if !d.Drop && !d.Park && !d.Reorder && d.Duplicates == 0 && d.ExtraDelay == 0 &&
		d.Replace == nil && d.Replay == nil {
		return ""
	}
	var b []byte
	add := func(s string) {
		if len(b) > 0 {
			b = append(b, ',')
		}
		b = append(b, s...)
	}
	if d.Drop {
		add("drop")
	}
	if d.Park {
		add("park")
	}
	if d.Reorder {
		add("reorder")
	}
	if d.Duplicates > 0 {
		add("dup=" + strconv.Itoa(d.Duplicates))
	}
	if d.ExtraDelay != 0 {
		add("delay=+" + strconv.FormatInt(d.ExtraDelay, 10))
	}
	if d.Replace != nil {
		add(d.Replace.Note)
	}
	if d.Replay != nil {
		add("replay=+" + strconv.FormatInt(d.Replay.Delay, 10))
	}
	return string(b)
}
