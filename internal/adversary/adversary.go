// Package adversary builds the adversarial schedules used in the paper's
// proofs, so that the lower bounds can be demonstrated (not just asserted)
// on the real protocol implementation:
//
//   - Theorem3Run: the exact four-process history from the proof of
//     Theorem 3 — satisfies Conditions 1–3 yet is isomorphic to no FS run.
//   - RunCycleScenario: the Appendix A.3 schedule, adapted to the §5
//     echo protocol, that manufactures a k-cycle in the failed-before
//     relation whenever quorums are smaller than Theorem 7's bound, and
//     demonstrably stalls (no cycle) at the bound.
//   - HeartbeatSpike: the Theorem 1 dilemma — a delay spike that makes any
//     finite timeout produce a false suspicion.
//
// The cycle schedule in detail. Processes 1..k form the ring: the run
// should end with failed_1(2), failed_2(3), ..., failed_k(1). Every process
// p is assigned an "exclusion" exc(p) ∈ 1..k (ring members exclude
// themselves; helpers are assigned round-robin, giving the balanced sets
// S_1..S_k of the Theorem 7 proof) and suspects all ring targets in
// descending rotation order starting at exc(p):
//
//	ord(p) = exc, exc-1, ..., 1, k, k-1, ..., exc+1   (minus p itself)
//
// All SUSP messages are delayed uniformly past the last scripted suspicion,
// and every "you failed" message is parked forever — FIFO then parks
// everything queued behind it, which is precisely how the witness argument
// (Lemma 9) is evaded. A process with exclusion e broadcasts "e failed"
// first, so its channel to e is parked from the start and it supports every
// ring detector except e. Detector i therefore hears "i+1 failed" from
// exactly n - |S_{i+1}| processes (itself included, its target excluded):
// with balanced sets that is n - ⌈n/k⌉ = MinSize(n,k) - 1. Quorums of that
// size complete and have empty intersection (no witness) — the cycle forms.
// One more — Theorem 7's minimum — and every detection stalls.
package adversary

import (
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

// Theorem3Run returns the counterexample history from the proof of
// Theorem 3, with the paper's processes x, a, b, y mapped to 1, 2, 3, 4:
//
//	failed_y(x); send_y(a,m); recv_a(y,m); crash_a;
//	failed_b(a); send_b(x,m'); recv_x(b,m'); crash_x
//
// The history satisfies Conditions 1–3 but is isomorphic to no run
// satisfying FS (rewrite.Realizable returns false).
func Theorem3Run() model.History {
	const (
		x = model.ProcID(1)
		a = model.ProcID(2)
		b = model.ProcID(3)
		y = model.ProcID(4)
	)
	return model.History{
		model.Failed(y, x),
		model.Send(y, a, 1, "m", model.None),
		model.Recv(a, y, 1, "m", model.None),
		model.Crash(a),
		model.Failed(b, a),
		model.Send(b, x, 2, "m", model.None),
		model.Recv(x, b, 2, "m", model.None),
		model.Crash(x),
	}.Normalize()
}

// CycleOutcome reports what the Appendix A.3 schedule produced.
type CycleOutcome struct {
	// Result is the full simulation result.
	Result *sim.Result
	// Cycle is a failed-before cycle found in the history, or nil.
	Cycle []model.ProcID
	// RingDetections counts how many of the k ring detections
	// failed_i(i%k+1) completed.
	RingDetections int
	// QuorumSizes are the sizes of the completed ring detections' quorums.
	QuorumSizes []int
	// RingQuorums are the completed ring detections' quorum sets — the
	// family whose (non-)intersection Theorem 6 is about.
	RingQuorums []map[model.ProcID]bool
}

// RunCycleScenario executes the Appendix A.3 schedule on n processes with a
// ring of k suspicions and the given fixed quorum size (pass
// quorum.MinSize(n,k) to see the schedule fail, or one less to see the
// cycle form). It requires 2 <= k <= n.
func RunCycleScenario(n, k, quorumSize int, seed int64) CycleOutcome {
	if k < 2 || k > n {
		panic("adversary: need 2 <= k <= n")
	}
	parkOwn := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if p.Tag == core.TagSusp && p.Subject == to {
			return -1 // the death sentence never arrives: FIFO parks the rest
		}
		return 1000 // uniform: deliveries happen after all scripted suspicions
	}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: n, Seed: seed, Delay: parkOwn},
		Det: core.Config{N: n, T: k, Protocol: core.SimulatedFailStop, QuorumSize: quorumSize},
	})

	for p := 1; p <= n; p++ {
		exc := p
		if p > k {
			exc = (p-k-1)%k + 1
		}
		when := int64(1)
		for _, target := range descendingFrom(exc, k, model.ProcID(p)) {
			c.SuspectAt(when, model.ProcID(p), target)
			when++
		}
	}

	res := c.Run()
	out := CycleOutcome{Result: res}
	fb := model.NewFailedBefore(res.History)
	out.Cycle = fb.Cycle()
	for i := 1; i <= k; i++ {
		target := model.ProcID(i%k + 1)
		if c.Detectors[i].Detected(target) {
			out.RingDetections++
			q := c.Detectors[i].Quorums()[target]
			out.QuorumSizes = append(out.QuorumSizes, len(q))
			set := make(map[model.ProcID]bool, len(q))
			for _, m := range q {
				set[m] = true
			}
			out.RingQuorums = append(out.RingQuorums, set)
		}
	}
	return out
}

// descendingFrom returns the ring targets 1..k in descending rotation order
// starting at exc, skipping self: exc, exc-1, ..., 1, k, ..., exc+1.
func descendingFrom(exc, k int, self model.ProcID) []model.ProcID {
	out := make([]model.ProcID, 0, k)
	for i := 0; i < k; i++ {
		t := model.ProcID((exc-1-i+2*k)%k + 1)
		if t != self {
			out = append(out, t)
		}
	}
	return out
}

// HeartbeatSpike returns a DelayFn for the Theorem 1 dilemma: heartbeats
// from victim are delayed by extra ticks when sent at or after from time
// spikeAt; all other messages get the base delay. Any timeout below
// base+extra then produces a false suspicion of a perfectly healthy
// process, while larger timeouts slow every genuine detection down — and no
// finite timeout can be correct for every run, because extra is unbounded
// in an asynchronous system.
func HeartbeatSpike(victim model.ProcID, hbTag string, spikeAt, base, extra int64) sim.DelayFn {
	return func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if from == victim && p.Tag == hbTag && at >= spikeAt {
			return base + extra
		}
		return base
	}
}
