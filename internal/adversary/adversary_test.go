package adversary

import (
	"testing"

	"failstop/internal/checker"
	"failstop/internal/model"
	"failstop/internal/quorum"
)

func TestTheorem3RunShape(t *testing.T) {
	h := Theorem3Run()
	if err := h.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(h) != 8 {
		t.Fatalf("history has %d events, want 8", len(h))
	}
	// Check the two detections and two crashes are in the proof's order.
	if h.FailedIndex(4, 1) != 0 || h.CrashIndex(2) != 3 ||
		h.FailedIndex(3, 2) != 4 || h.CrashIndex(1) != 7 {
		t.Errorf("event placement wrong:\n%s", h)
	}
	for _, v := range []checker.Verdict{
		checker.Condition1(h), checker.Condition2(h), checker.Condition3(h),
	} {
		if !v.Holds {
			t.Errorf("%s must hold on the counterexample: %s", v.Property, v.Detail)
		}
	}
}

func TestCycleScenarioBelowBound(t *testing.T) {
	// Theorem 7 tightness, negative side: with quorums one below the bound,
	// the Appendix A.3 schedule manufactures the ring cycle.
	cases := []struct{ n, k int }{
		{5, 2}, {7, 2}, {10, 3}, {12, 3}, {17, 4},
	}
	for _, tc := range cases {
		q := quorum.MinSize(tc.n, tc.k) - 1
		out := RunCycleScenario(tc.n, tc.k, q, 1)
		if out.RingDetections != tc.k {
			t.Errorf("n=%d k=%d q=%d: %d/%d ring detections completed",
				tc.n, tc.k, q, out.RingDetections, tc.k)
		}
		if out.Cycle == nil {
			t.Errorf("n=%d k=%d q=%d: no failed-before cycle", tc.n, tc.k, q)
			continue
		}
		// The history must exhibit an sFS2b violation.
		if v := checker.SFS2b(out.Result.History); v.Holds {
			t.Errorf("n=%d k=%d q=%d: checker found no sFS2b violation", tc.n, tc.k, q)
		}
		// Quorums in the cycle must be witness-free (Theorem 6's premise).
		sets := checker.QuorumSets(out.Result.History, "SUSP")
		if quorum.SubfamiliesIntersect(sets, tc.k) {
			t.Errorf("n=%d k=%d q=%d: quorum sets unexpectedly have witnesses", tc.n, tc.k, q)
		}
	}
}

func TestCycleScenarioAtBound(t *testing.T) {
	// Theorem 7 tightness, positive side: at the minimum quorum size, the
	// same adversary cannot complete the ring detections and no cycle forms.
	cases := []struct{ n, k int }{
		{5, 2}, {7, 2}, {10, 3}, {12, 3}, {17, 4},
	}
	for _, tc := range cases {
		q := quorum.MinSize(tc.n, tc.k)
		out := RunCycleScenario(tc.n, tc.k, q, 1)
		if out.Cycle != nil {
			t.Errorf("n=%d k=%d q=%d: cycle %v formed at the Theorem 7 bound",
				tc.n, tc.k, q, out.Cycle)
		}
		if v := checker.SFS2b(out.Result.History); !v.Holds {
			t.Errorf("n=%d k=%d q=%d: %s", tc.n, tc.k, q, v)
		}
	}
}

func TestCycleScenarioQuorumSizesAreExactlyTight(t *testing.T) {
	// The schedule assembles quorums of exactly MinSize-1 members: the
	// largest witness-free family the Theorem 7 proof constructs.
	n, k := 10, 3
	out := RunCycleScenario(n, k, quorum.MinSize(n, k)-1, 1)
	want := n - (n+k-1)/k // n - ceil(n/k) = MinSize - 1
	for _, qs := range out.QuorumSizes {
		if qs < quorum.MinSize(n, k)-1 {
			t.Errorf("ring quorum size %d below the adversary's design %d", qs, want)
		}
	}
}

func TestDescendingFrom(t *testing.T) {
	got := descendingFrom(3, 4, 99) // no self among 1..4
	want := []model.ProcID{3, 2, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("descendingFrom = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descendingFrom = %v, want %v", got, want)
		}
	}
	// Self is skipped.
	got2 := descendingFrom(3, 4, 2)
	want2 := []model.ProcID{3, 1, 4}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("descendingFrom (skip self) = %v, want %v", got2, want2)
		}
	}
}

func TestRunCycleScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k < 2")
		}
	}()
	RunCycleScenario(5, 1, 1, 1)
}
