// Tests for the Topologies axis: cell expansion, the links/fanout report
// columns across all three renderings, the worker-count and shard-merge
// determinism invariants with a topology in the grid, and the Validate
// guards the axis adds (duplicate topologies, topologies infeasible at a
// grid point, and plans referencing processes beyond the grid).
package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/topo"
)

// topoSpec is the grid the topology tests fan out: one (n, t) point with
// the full mesh, a gossip overlay, and a two-region hierarchy side by
// side, under a lossy plan so runs exercise delivery, not just expansion.
func topoSpec() Spec {
	crash, _ := Builtin("crash")
	return Spec{
		Grid:      []NT{{8, 2}},
		Schedules: []Schedule{crash},
		Plans:     builtinPlans("flaky-quorum"),
		Topologies: []topo.Spec{
			{},
			{Kind: topo.KindGossip, Fanout: 3},
			{Kind: topo.KindHier, Regions: 2, Racks: 2},
		},
		Seeds:   SeedRange{Count: 4},
		MaxTime: 3000,
		Check:   true,
	}
}

// TestTopologiesAxisExpandsCells: each topology contributes one cell per
// grid point, the full mesh keeps the empty Topo identity (wire-compatible
// with pre-axis reports), and every cell reports the link count of its
// graph — n(n-1) for the mesh, the materialized graph's for the others.
func TestTopologiesAxisExpandsCells(t *testing.T) {
	rep, err := Run(topoSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("cells = %d, want 3 (one per topology)", len(rep.Cells))
	}
	gossip := topo.MustNew(topo.Spec{Kind: topo.KindGossip, Fanout: 3}, 8)
	hier := topo.MustNew(topo.Spec{Kind: topo.KindHier, Regions: 2, Racks: 2}, 8)
	want := []struct {
		topo   string
		links  int64
		fanout int
	}{
		{"", 8 * 7, 0},
		{"gossip:3", gossip.Links(), 3},
		{"hier:2x2", hier.Links(), 0},
	}
	for i, w := range want {
		c := &rep.Cells[i]
		if c.Cell.Topo != w.topo {
			t.Errorf("cell %d: Topo = %q, want %q", i, c.Cell.Topo, w.topo)
		}
		if c.Links != w.links {
			t.Errorf("cell %d (%s): Links = %d, want %d", i, c.Cell.Topo, c.Links, w.links)
		}
		if c.Fanout != w.fanout {
			t.Errorf("cell %d (%s): Fanout = %d, want %d", i, c.Cell.Topo, c.Fanout, w.fanout)
		}
		if c.Runs == 0 {
			t.Errorf("cell %d (%s): no runs executed", i, c.Cell.Topo)
		}
	}
	// Sparse graphs must actually be sparse: a gossip overlay with fanout 3
	// over 8 processes has strictly fewer directed links than the mesh.
	if g := rep.Cells[1].Links; g <= 0 || g >= 8*7 {
		t.Errorf("gossip links = %d, want in (0, %d)", g, 8*7)
	}
}

// TestTopologyReportColumns: the topology identity and its links/fanout
// columns surface in all three renderings — the cell table, the CSV, and
// the JSON — and stay absent from reports that never set the axis.
func TestTopologyReportColumns(t *testing.T) {
	rep, err := Run(topoSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.String()
	for _, col := range []string{"links", "fanout", "topo=gossip:3", "topo=hier:2x2"} {
		if !strings.Contains(text, col) {
			t.Errorf("cell table missing %q:\n%s", col, text)
		}
	}
	var csv strings.Builder
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	if !strings.Contains(header, ",topo,links,fanout,") {
		t.Errorf("CSV header missing topology columns: %s", header)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"topo":"gossip:3"`, `"links":`, `"fanout":3`} {
		if !strings.Contains(string(raw), frag) {
			t.Errorf("JSON report missing %s", frag)
		}
	}

	// A spec without the axis stays wire-identical to pre-axis reports:
	// no topo key in cell identities, no topo= in the table.
	plain, err := Run(Spec{Grid: []NT{{5, 2}}, Seeds: SeedRange{Count: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rawPlain, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rawPlain), `"topo"`) {
		t.Errorf("axis-less report leaks topo identity: %s", rawPlain)
	}
	if strings.Contains(plain.String(), "topo=") {
		t.Errorf("axis-less cell table leaks topo column:\n%s", plain)
	}
}

// TestTopologyAxisStableAcrossWorkers extends the determinism invariant to
// the topology axis: gossip sampling and partial-quorum scheduling must
// not leak worker-pool size or GOMAXPROCS into the report.
func TestTopologyAxisStableAcrossWorkers(t *testing.T) {
	spec := topoSpec()
	baseText, baseJSON := runAt(t, spec, 1, 1)
	for _, c := range []struct{ procs, workers int }{{1, 4}, {runtime.NumCPU(), 8}} {
		text, raw := runAt(t, spec, c.procs, c.workers)
		if text != baseText {
			t.Errorf("procs=%d workers=%d: text report diverged from serial baseline", c.procs, c.workers)
		}
		if string(raw) != string(baseJSON) {
			t.Errorf("procs=%d workers=%d: JSON report diverged from serial baseline", c.procs, c.workers)
		}
	}
}

// TestTopologyShardMergeEqualsUnsharded: sharded runs of a topology sweep
// recombine to the unsharded report — DeepEqual, byte-identical rendering,
// and the links/fanout columns survive the JSON round trip and merge.
func TestTopologyShardMergeEqualsUnsharded(t *testing.T) {
	spec := topoSpec()
	unsharded, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	unsharded.Workers = 0

	for _, k := range []int{2, 3} {
		var shards []*Report
		for i := 0; i < k; i++ {
			s := spec
			s.Shard = Shard{Index: i, Count: k}
			rep, err := Run(s, Options{Workers: 2})
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, i, err)
			}
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := ReadJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, back)
		}
		merged, err := Merge(shards...)
		if err != nil {
			t.Fatalf("k=%d: Merge: %v", k, err)
		}
		if !reflect.DeepEqual(merged, unsharded) {
			t.Errorf("k=%d: merged topology sweep differs from unsharded", k)
		}
		if merged.String() != unsharded.String() {
			t.Errorf("k=%d: merged report renders differently:\n--- merged\n%s\n--- unsharded\n%s",
				k, merged, unsharded)
		}
		if merged.Cells[1].Links == 0 || merged.Cells[1].Fanout != 3 {
			t.Errorf("k=%d: merge dropped links/fanout: links=%d fanout=%d",
				k, merged.Cells[1].Links, merged.Cells[1].Fanout)
		}
	}
}

// TestValidateTopologies: the axis rejects duplicate topologies and
// topologies infeasible at any grid point, before any run starts.
func TestValidateTopologies(t *testing.T) {
	base := Spec{Grid: []NT{{5, 2}}, Seeds: SeedRange{Count: 1}}

	dup := base
	dup.Topologies = []topo.Spec{
		{Kind: topo.KindGossip, Fanout: 3},
		{Kind: topo.KindGossip, Fanout: 3},
	}
	if err := dup.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted a duplicate topology")
	}

	// Fanout 8 needs 9 processes; the grid tops out at 5.
	wide := base
	wide.Topologies = []topo.Spec{{Kind: topo.KindGossip, Fanout: 8}}
	if err := wide.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted a gossip fanout infeasible at the grid point")
	}

	ok := base
	ok.Topologies = []topo.Spec{{}, {Kind: topo.KindGossip, Fanout: 2}}
	if err := ok.withDefaults().Validate(); err != nil {
		t.Errorf("Validate rejected a feasible topology axis: %v", err)
	}
}

// TestValidateRejectsPlanRefsBeyondGrid: a Plans entry whose process-fault
// or Byzantine rules reference a process the grid's largest N doesn't have
// is a spec error at Validate time, not a panic (or silent no-op) at run
// time. Validate instantiates each generator at every grid point, so a
// reference beyond ANY point — in particular the largest — is caught.
func TestValidateRejectsPlanRefsBeyondGrid(t *testing.T) {
	grid := []NT{{5, 2}, {8, 2}}

	procOOB := Spec{Grid: grid, Plans: []netadv.Generator{netadv.Fixed(netadv.Plan{
		Name:  "proc-oob",
		Procs: []netadv.ProcRule{{Proc: 9, CrashAt: 10}},
	})}}
	if err := procOOB.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted a proc rule referencing process 9 with grid max N = 8")
	}

	byzOOB := Spec{Grid: grid, Plans: []netadv.Generator{netadv.Fixed(netadv.Plan{
		Name: "byz-oob",
		Byz:  []netadv.ByzRule{{Victim: 9, From: 10, Corrupt: 0.5}},
	})}}
	if err := byzOOB.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted a byz rule victimizing process 9 with grid max N = 8")
	}

	groupOOB := Spec{Grid: grid, Plans: []netadv.Generator{netadv.Fixed(netadv.Plan{
		Name: "group-oob",
		Rules: []netadv.Rule{{From: 10, Cut: true,
			Links: netadv.LinkSet{Groups: [][]model.ProcID{{1, 9}}}}},
	})}}
	if err := groupOOB.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted a link group referencing process 9 with grid max N = 8")
	}

	// The same references are fine once the grid is big enough.
	inRange := Spec{Grid: []NT{{9, 2}}, Plans: []netadv.Generator{netadv.Fixed(netadv.Plan{
		Name:  "proc-ok",
		Procs: []netadv.ProcRule{{Proc: 9, CrashAt: 10}},
	})}}
	if err := inRange.withDefaults().Validate(); err != nil {
		t.Errorf("Validate rejected an in-range plan reference: %v", err)
	}
}
