// CSV export of sweep reports, for charting outside the toolchain.
//
// The text report (Report.String) is built for eyeballs; the JSON report
// for lossless recombination. The CSV sits between them: one row per
// cell with the cell identity split into plottable columns (n, t,
// protocol, schedule, plan, ...) and every aggregate a chart might put
// on an axis — run tallies, percentiles, per-metric counts AND rates,
// observability totals, timeline peak summaries. Column order and float
// formatting are deterministic, so the CSV of a merged shard set is
// byte-identical to the unsharded sweep's.

package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"failstop/internal/sim"
)

// csvFloat renders a float the way the JSON encoder would: shortest
// round-trip form, so CSV and JSON artifacts agree on every value.
func csvFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV writes one header row and one row per cell. Custom metrics
// contribute two columns each — the run count on which the metric was
// true and its rate over the cell's runs — because rates (false-suspicion
// probability, starvation probability) are what parameter-sweep charts
// actually plot. Observability counters and timeline-peak percentiles
// contribute one column per name, in sorted name order.
func (r *Report) WriteCSV(w io.Writer) error {
	var allMetrics []map[string]int
	var allObs []map[string]int64
	var allTs []map[string][]float64
	for i := range r.Cells {
		allMetrics = append(allMetrics, r.Cells[i].Metrics)
		allObs = append(allObs, r.Cells[i].Obs)
		allTs = append(allTs, r.Cells[i].TimeseriesSamples)
	}
	metrics := metricNames(allMetrics...)
	obsNames := metricNames(allObs...)
	tsNames := metricNames(allTs...)

	header := []string{
		"n", "t", "protocol", "quorum_delta", "schedule", "plan",
		"topo", "links", "fanout", "reliable", "recovery", "byzantine",
		"runs", "quiescent", "blocked_runs", "checked",
		"stop_drained", "stop_max_time", "stop_max_events",
		"dropped", "duplicated", "retransmits", "acked_duplicates",
		"plan_crashes", "restarts", "recovered",
		"byz_detected", "byz_masked", "corrupted", "equivocated", "replayed",
		"events_p50", "events_p95", "events_p99", "events_p999", "events_max",
		"end_time_p50", "end_time_p95",
	}
	for _, m := range metrics {
		header = append(header, "metric_"+m, "metric_"+m+"_rate")
	}
	for _, o := range obsNames {
		header = append(header, "obs_"+o)
	}
	for _, t := range tsNames {
		header = append(header, "ts_"+t+"_p50", "ts_"+t+"_p95", "ts_"+t+"_max")
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sweep: writing CSV header: %w", err)
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		row := []string{
			strconv.Itoa(c.Cell.NT.N), strconv.Itoa(c.Cell.NT.T),
			fmt.Sprint(c.Cell.Protocol), strconv.Itoa(c.Cell.QuorumDelta),
			c.Cell.Schedule, c.Cell.Plan,
			c.Cell.Topo, strconv.FormatInt(c.Links, 10), strconv.Itoa(c.Fanout),
			strconv.FormatBool(c.Cell.Reliable),
			c.Cell.Recovery.String(), strconv.FormatBool(c.Cell.Byzantine),
			strconv.Itoa(c.Runs), strconv.Itoa(c.Quiescent),
			strconv.Itoa(c.BlockedRuns), strconv.Itoa(c.Checked),
			strconv.Itoa(c.Stops[sim.StopDrained]),
			strconv.Itoa(c.Stops[sim.StopMaxTime]),
			strconv.Itoa(c.Stops[sim.StopMaxEvents]),
			strconv.Itoa(c.Dropped), strconv.Itoa(c.Duplicated),
			strconv.Itoa(c.Retransmits), strconv.Itoa(c.AckedDuplicates),
			strconv.Itoa(c.PlanCrashes), strconv.Itoa(c.Restarts), strconv.Itoa(c.Recovered),
			strconv.Itoa(c.ByzDetected), strconv.Itoa(c.ByzMasked),
			strconv.Itoa(c.Corrupted), strconv.Itoa(c.Equivocated), strconv.Itoa(c.Replayed),
			csvFloat(c.Events.Median), csvFloat(c.Events.P95),
			csvFloat(c.Events.P99), csvFloat(c.Events.P999), csvFloat(c.Events.Max),
			csvFloat(c.EndTimes.Median), csvFloat(c.EndTimes.P95),
		}
		for _, m := range metrics {
			n := c.Metrics[m]
			rate := 0.0
			if c.Runs > 0 {
				rate = float64(n) / float64(c.Runs)
			}
			row = append(row, strconv.Itoa(n), csvFloat(rate))
		}
		for _, o := range obsNames {
			row = append(row, strconv.FormatInt(c.Obs[o], 10))
		}
		for _, t := range tsNames {
			s := c.Timeseries[t]
			row = append(row, csvFloat(s.Median), csvFloat(s.P95), csvFloat(s.Max))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sweep: writing CSV row for cell %v: %w", c.Cell, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: flushing CSV: %w", err)
	}
	return nil
}
