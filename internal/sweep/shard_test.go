package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"failstop/internal/byz"
	"failstop/internal/netadv"
)

// shardSpec is the grid the shard tests fan out: two (n, t) cells × two
// schedules × a Byzantine plan with the interposer off and on × 7 seeds
// (7 deliberately coprime with the shard counts under test, so shards get
// uneven slices). The Byzantine axis keeps the merge path honest about
// the conviction and injection totals it recombines.
func shardSpec() Spec {
	crash, _ := Builtin("crash")
	falseSusp, _ := Builtin("false-suspicion")
	return Spec{
		Grid:      []NT{{5, 2}, {8, 2}},
		Schedules: []Schedule{crash, falseSusp},
		Plans:     builtinPlans("byzantine-minority"),
		Byzantine: []byz.Options{{}, {Enabled: true}},
		Seeds:     SeedRange{Start: 3, Count: 7},
		MaxTime:   3000,
		Check:     true,
	}
}

// builtinPlans resolves built-in plan generators by name, panicking on a
// missing name (test-setup helper).
func builtinPlans(names ...string) []netadv.Generator {
	var out []netadv.Generator
	for _, name := range names {
		g, ok := netadv.Builtin(name)
		if !ok {
			panic("no built-in plan " + name)
		}
		out = append(out, g)
	}
	return out
}

// TestShardPartitionDisjointExhaustive is the property test behind Merge's
// correctness: for several shard counts k, the k shards' job streams are
// pairwise disjoint and their union is exactly the unsharded (cell, seed)
// stream.
func TestShardPartitionDisjointExhaustive(t *testing.T) {
	spec := shardSpec().withDefaults()
	numCells := len(spec.cells())

	type jobKey struct {
		cellIdx int
		seed    int64
	}
	var all []jobKey
	spec.forEachJob(numCells, func(cellIdx int, seed int64) {
		all = append(all, jobKey{cellIdx, seed})
	})
	if want := numCells * spec.Seeds.Count; len(all) != want {
		t.Fatalf("unsharded stream has %d jobs, want %d", len(all), want)
	}

	for _, k := range []int{1, 2, 3, 4, 5, 13, 100} {
		seen := map[jobKey]int{}
		total := 0
		for i := 0; i < k; i++ {
			s := spec
			s.Shard = Shard{Index: i, Count: k}
			count := 0
			s.forEachJob(numCells, func(cellIdx int, seed int64) {
				seen[jobKey{cellIdx, seed}]++
				count++
			})
			if count != s.Runs() {
				t.Errorf("k=%d shard %d: emitted %d jobs, Runs() = %d", k, i, count, s.Runs())
			}
			total += count
		}
		if total != len(all) {
			t.Errorf("k=%d: shards cover %d jobs, want %d", k, total, len(all))
		}
		for _, j := range all {
			if seen[j] != 1 {
				t.Errorf("k=%d: job %+v covered %d times, want exactly once", k, j, seen[j])
			}
		}
	}
}

// TestShardMergeEqualsUnsharded is the acceptance criterion: for several
// k, running every shard separately (JSON-round-tripping each report, as
// the CI artifact hand-off does) and merging reproduces the unsharded
// report — reflect.DeepEqual after zeroing Workers, and byte-identical
// String rendering.
func TestShardMergeEqualsUnsharded(t *testing.T) {
	spec := shardSpec()
	unsharded, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	unsharded.Workers = 0

	for _, k := range []int{2, 3, 5} {
		var shards []*Report
		for i := 0; i < k; i++ {
			s := spec
			s.Shard = Shard{Index: i, Count: k}
			rep, err := Run(s, Options{Workers: 2})
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, i, err)
			}
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatalf("k=%d shard %d: WriteJSON: %v", k, i, err)
			}
			back, err := ReadJSON(&buf)
			if err != nil {
				t.Fatalf("k=%d shard %d: ReadJSON: %v", k, i, err)
			}
			shards = append(shards, back)
		}
		// Merge in reverse order too: shard artifacts arrive in no
		// particular order.
		for _, order := range [][]*Report{shards, reversed(shards)} {
			merged, err := Merge(order...)
			if err != nil {
				t.Fatalf("k=%d: Merge: %v", k, err)
			}
			if !reflect.DeepEqual(merged, unsharded) {
				t.Errorf("k=%d: merged shard reports differ from the unsharded report:\n--- merged\n%+v\n--- unsharded\n%+v",
					k, merged, unsharded)
			}
			if merged.String() != unsharded.String() {
				t.Errorf("k=%d: merged report renders differently:\n--- merged\n%s\n--- unsharded\n%s",
					k, merged, unsharded)
			}
		}
	}
}

func reversed(in []*Report) []*Report {
	out := make([]*Report, len(in))
	for i, r := range in {
		out[len(in)-1-i] = r
	}
	return out
}

// TestShardReportListsEveryCell: a shard whose slice misses a cell still
// reports that cell (with zero runs), so shard reports align positionally.
func TestShardReportListsEveryCell(t *testing.T) {
	spec := Spec{
		Grid:  []NT{{5, 2}, {8, 2}},
		Seeds: SeedRange{Count: 1}, // 2 jobs over 4 shards: 2 shards go idle
		Shard: Shard{Index: 3, Count: 4},
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (idle shards must still list the full grid)", len(rep.Cells))
	}
	if rep.Runs != 0 {
		t.Errorf("runs = %d, want 0", rep.Runs)
	}
}

// TestMergeRejectsMismatchedReports: merging reports from different specs
// — or an incomplete, duplicated, or overlapping shard set — is an error,
// not a silent misalignment.
func TestMergeRejectsMismatchedReports(t *testing.T) {
	shardOf := func(grid []NT, i, k int) *Report {
		rep, err := Run(Spec{Grid: grid, Shard: Shard{Index: i, Count: k}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	grid := []NT{{5, 2}}
	a0, a1 := shardOf(grid, 0, 2), shardOf(grid, 1, 2)

	if _, err := Merge(); err == nil {
		t.Error("Merge accepted zero reports")
	}
	if _, err := Merge(a0); err == nil {
		t.Error("Merge accepted 1 report of a 2-shard stream (missing shard)")
	}
	if _, err := Merge(a0, a0); err == nil {
		t.Error("Merge accepted a duplicated shard report")
	}
	if _, err := Merge(a0, shardOf(grid, 0, 3)); err == nil {
		t.Error("Merge accepted shards of different stream widths")
	}
	if _, err := Merge(a0, shardOf([]NT{{5, 2}, {8, 2}}, 1, 2)); err == nil {
		t.Error("Merge accepted reports with different cell counts")
	}
	if _, err := Merge(a0, shardOf([]NT{{6, 2}}, 1, 2)); err == nil {
		t.Error("Merge accepted reports with different cell identities")
	}
	noIdentity := *a1
	noIdentity.Shard = Shard{}
	if _, err := Merge(&noIdentity, a0); err == nil {
		t.Error("Merge accepted a report without shard identity")
	}

	// The complete, well-formed set still merges.
	if _, err := Merge(a0, a1); err != nil {
		t.Errorf("Merge rejected a complete shard set: %v", err)
	}
}

// TestMergeSingleUnshardedIdentity: a single unsharded report merges to
// itself (shard identity {0, 1}).
func TestMergeSingleUnshardedIdentity(t *testing.T) {
	rep, err := Run(shardSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(rep)
	if err != nil {
		t.Fatal(err)
	}
	rep.Workers = 0
	if !reflect.DeepEqual(merged, rep) {
		t.Errorf("identity merge differs:\n--- merged\n%+v\n--- original\n%+v", merged, rep)
	}
}

// TestShardValidate rejects out-of-range shard indices.
func TestShardValidate(t *testing.T) {
	for _, sh := range []Shard{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -1}} {
		spec := Spec{Grid: []NT{{5, 2}}, Shard: sh}
		if err := spec.withDefaults().Validate(); err == nil {
			t.Errorf("Validate accepted shard %+v", sh)
		}
	}
}

// TestShardRunsSum: the per-shard Runs() counts partition the total.
func TestShardRunsSum(t *testing.T) {
	spec := shardSpec()
	total := spec.Runs()
	for _, k := range []int{2, 3, 4, 9} {
		sum := 0
		for i := 0; i < k; i++ {
			s := spec
			s.Shard = Shard{Index: i, Count: k}
			sum += s.Runs()
		}
		if sum != total {
			t.Errorf("k=%d: shard Runs() sum to %d, want %d", k, sum, total)
		}
	}
}
