// Micro-benchmarks comparing the serial baseline (Workers: 1) against the
// parallel worker pool on a fixed adversarial grid. Each scenario run is an
// independent deterministic simulation, so the sweep parallelizes cleanly;
// on a machine with 4+ cores the parallel sweep should beat the serial one
// by well over 2×.
//
// Run with: go test ./internal/sweep -bench=Sweep -benchmem
package sweep

import (
	"runtime"
	"sync"
	"testing"
)

// benchGrid is the workload both benchmarks run: 4 (n, t) cells × 2
// schedules × 8 seeds = 64 full protocol simulations per iteration, all
// checked.
func benchGrid() Spec {
	falseSusp, _ := Builtin("false-suspicion")
	crash, _ := Builtin("crash")
	return Spec{
		Grid:      []NT{{8, 2}, {10, 3}, {12, 3}, {15, 3}},
		Schedules: []Schedule{falseSusp, crash},
		Seeds:     SeedRange{Count: 8},
		Check:     true,
	}
}

func benchSweep(b *testing.B, workers int) {
	spec := benchGrid()
	runs := spec.Runs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs != runs {
			b.Fatalf("runs = %d, want %d", rep.Runs, runs)
		}
	}
	b.ReportMetric(float64(runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkSweepSerial is the baseline: the same grid on a single worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the grid on a GOMAXPROCS-sized pool.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepThroughput is the headline scale-out number: the bench
// grid through the streaming engine on a full pool, reported as runs/s.
// It is the same measurement as BenchmarkSweepParallel under the name CI
// tracks in BENCH_scale.json.
func BenchmarkSweepThroughput(b *testing.B) { benchSweep(b, 0) }

// runViaChannel executes the spec the way the engine did before streaming
// accumulation: every worker sends each run's record over one channel to a
// single-goroutine accumulator loop. Kept test-only, as the baseline that
// pins the streaming refactor's win in-repo.
func runViaChannel(spec Spec, workers int) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := spec.cells()

	type job struct {
		cellIdx int
		seed    int64
	}
	jobs := make(chan job, workers)
	records := make(chan runRecord, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				records <- execute(spec, cells[j.cellIdx], j.cellIdx, j.seed)
			}
		}()
	}
	go func() {
		spec.forEachJob(len(cells), func(cellIdx int, seed int64) {
			jobs <- job{cellIdx: cellIdx, seed: seed}
		})
		close(jobs)
		wg.Wait()
		close(records)
	}()

	acc := newAccumulators(cells)
	for rec := range records {
		acc[rec.cellIdx].add(rec)
	}
	rep := &Report{Shard: spec.Shard, Workers: workers}
	for _, a := range acc {
		rep.Cells = append(rep.Cells, a.result())
		rep.Runs += a.runs
	}
	return rep, nil
}

func benchAccumulate(b *testing.B, run func(Spec, int) (*Report, error)) {
	spec := benchGrid()
	runs := spec.Runs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := run(spec, 0)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs != runs {
			b.Fatalf("runs = %d, want %d", rep.Runs, runs)
		}
	}
	b.ReportMetric(float64(runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkAccumulateStreaming and BenchmarkAccumulateChannel compare the
// two aggregation strategies on identical grids and pool sizes: per-worker
// accumulator arrays merged at the end (the engine) versus the retired
// one-channel single-consumer loop.
func BenchmarkAccumulateStreaming(b *testing.B) {
	benchAccumulate(b, func(s Spec, w int) (*Report, error) { return Run(s, Options{Workers: w}) })
}

func BenchmarkAccumulateChannel(b *testing.B) {
	benchAccumulate(b, runViaChannel)
}

// TestChannelBaselineMatchesStreaming keeps the benchmark baseline honest:
// both aggregation strategies must produce the identical report, or the
// comparison measures different work.
func TestChannelBaselineMatchesStreaming(b *testing.T) {
	spec := benchGrid()
	spec.Seeds.Count = 3
	streamed, err := Run(spec, Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	channeled, err := runViaChannel(spec, 4)
	if err != nil {
		b.Fatal(err)
	}
	if streamed.String() != channeled.String() {
		b.Errorf("aggregation strategies disagree:\n--- streaming\n%s\n--- channel\n%s", streamed, channeled)
	}
}
