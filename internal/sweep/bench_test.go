// Micro-benchmarks comparing the serial baseline (Workers: 1) against the
// parallel worker pool on a fixed adversarial grid. Each scenario run is an
// independent deterministic simulation, so the sweep parallelizes cleanly;
// on a machine with 4+ cores the parallel sweep should beat the serial one
// by well over 2×.
//
// Run with: go test ./internal/sweep -bench=Sweep -benchmem
package sweep

import (
	"testing"
)

// benchGrid is the workload both benchmarks run: 4 (n, t) cells × 2
// schedules × 8 seeds = 64 full protocol simulations per iteration, all
// checked.
func benchGrid() Spec {
	falseSusp, _ := Builtin("false-suspicion")
	crash, _ := Builtin("crash")
	return Spec{
		Grid:      []NT{{8, 2}, {10, 3}, {12, 3}, {15, 3}},
		Schedules: []Schedule{falseSusp, crash},
		Seeds:     SeedRange{Count: 8},
		Check:     true,
	}
}

func benchSweep(b *testing.B, workers int) {
	spec := benchGrid()
	runs := spec.Runs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs != runs {
			b.Fatalf("runs = %d, want %d", rep.Runs, runs)
		}
	}
	b.ReportMetric(float64(runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkSweepSerial is the baseline: the same grid on a single worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the grid on a GOMAXPROCS-sized pool.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }
