package sweep

import (
	"fmt"
	"sort"
	"strings"

	"failstop/internal/recovery"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// Properties lists the checker's properties in presentation order, as
// produced by checker.All.
var Properties = []string{
	"FS1", "FS2",
	"sFS2a", "sFS2b", "sFS2c", "sFS2d",
	"Condition1", "Condition2", "Condition3",
	"W",
}

// CellResult aggregates every run of one cell. The serialized form is the
// shard report format cmd/sfs-sweep emits with -json and recombines with
// -merge; every field carries an explicit tag so the wire format cannot
// drift when fields are added or renamed.
//
//sfs:wire
type CellResult struct {
	Cell Cell `json:"cell"`
	// Links is the directed link count of the cell's topology — the
	// footprint a fully-exercised network would lazily materialize:
	// n(n-1) for the complete graph, the adjacency size for partial
	// topologies. Fanout is the gossip sample fanout (0 for the other
	// kinds). Both are static properties of (topology, n), recorded so
	// large-N reports carry their own scale columns.
	Links  int64 `json:"links,omitempty"`
	Fanout int   `json:"fanout,omitempty"`
	// Runs is the number of runs executed for the cell.
	Runs int `json:"runs"`
	// Stops tallies runs by stop reason.
	Stops map[sim.StopReason]int `json:"stops"`
	// Quiescent counts fully drained runs (no horizon, nothing stuck in
	// gated or parked channels).
	Quiescent int `json:"quiescent"`
	// BlockedRuns counts runs that ended with messages stuck in gated or
	// parked channels (undelivered traffic to live processes).
	BlockedRuns int `json:"blocked_runs"`
	// Checked counts runs whose history went through the checker (the
	// quiescent runs, when Spec.Check is set).
	Checked int `json:"checked"`
	// Dropped and Duplicated total the messages the network fault plan
	// discarded and the extra copies it injected, over all runs of the cell.
	Dropped    int `json:"dropped"`
	Duplicated int `json:"duplicated"`
	// Retransmits and AckedDuplicates total the reliable-delivery layer's
	// counters over all runs of the cell (0 for cells without the layer).
	Retransmits     int `json:"retransmits"`
	AckedDuplicates int `json:"acked_duplicates"`
	// PlanCrashes, Restarts, and Recovered total the crash-recovery
	// subsystem's counters over all runs of the cell: plan-scheduled
	// crashes executed, restarts executed, and restarts that restored a
	// non-empty durable snapshot (0 for cells without process faults).
	PlanCrashes int `json:"plan_crashes"`
	Restarts    int `json:"restarts"`
	Recovered   int `json:"recovered"`
	// ByzDetected and ByzMasked total the validation interposer's counters
	// over all runs of the cell: convictions issued and forged/duplicate/
	// masked-sender frames discarded (0 for cells without the interposer).
	// Corrupted, Equivocated, and Replayed total the fault plane's
	// Byzantine injection counters (0 for plans without Byzantine rules).
	ByzDetected int `json:"byz_detected"`
	ByzMasked   int `json:"byz_masked"`
	Corrupted   int `json:"corrupted"`
	Equivocated int `json:"equivocated"`
	Replayed    int `json:"replayed"`
	// Holds counts, per property, the checked runs on which it held.
	Holds map[string]int `json:"holds"`
	// Metrics counts, per custom metric, the runs on which it was true.
	Metrics map[string]int `json:"metrics"`
	// Obs totals the runs' observability counters (the simulator's
	// snapshot merged, under a fault plan, with the fault plane's) over
	// all runs of the cell, keyed by metric name. Histogram-kind metrics
	// carry no total and are not aggregated here.
	Obs map[string]int64 `json:"obs"`
	// Events and EndTimes summarize run length in events and virtual time.
	Events   stats.Summary `json:"events"`
	EndTimes stats.Summary `json:"end_times"`
	// EventSamples and EndTimeSamples are the raw per-run samples behind
	// Events and EndTimes, sorted ascending. Retaining them is what lets
	// Merge recombine shard reports into exact percentiles: summaries
	// cannot be merged, sample sets can.
	EventSamples   []float64 `json:"event_samples"`
	EndTimeSamples []float64 `json:"end_time_samples"`
	// Timeseries summarizes, per timeline series name, the distribution
	// of per-run peak values over the cell's runs (populated when
	// Spec.Timeline is set). TimeseriesSamples retains the raw sorted
	// peaks behind each summary, for the same reason EventSamples exists:
	// sample sets merge across shards, summaries do not.
	Timeseries        map[string]stats.Summary `json:"timeseries"`
	TimeseriesSamples map[string][]float64     `json:"timeseries_samples"`
}

// HoldsAll reports whether prop held on every checked run of the cell.
func (c *CellResult) HoldsAll(prop string) bool {
	return c.Checked > 0 && c.Holds[prop] == c.Checked
}

// MetricAll reports whether the named metric was true on every run.
func (c *CellResult) MetricAll(name string) bool {
	return c.Runs > 0 && c.Metrics[name] == c.Runs
}

// MetricNone reports whether the named metric was false on every run.
func (c *CellResult) MetricNone(name string) bool {
	return c.Runs > 0 && c.Metrics[name] == 0
}

// Report is the aggregated outcome of a sweep.
//
//sfs:wire
type Report struct {
	// Cells holds one aggregate per cell, in Spec.Cells order.
	Cells []CellResult `json:"cells"`
	// Runs is the total number of runs executed.
	Runs int `json:"runs"`
	// Shard records which slice of the job stream this report covers
	// ({0, 1} for an unsharded sweep, and for a merged set of shards).
	// Merge uses it to refuse duplicated, overlapping, or missing shards.
	Shard Shard `json:"shard"`
	// Workers is the worker-pool size that executed the sweep.
	Workers int `json:"workers"`
}

// Cell returns the aggregate for the given cell identity, or nil.
func (r *Report) Cell(c Cell) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Cell == c {
			return &r.Cells[i]
		}
	}
	return nil
}

// TotalHolds sums per-property verdict counts and checked-run counts over
// every cell — the sweep-wide Figure 1 style tally.
func (r *Report) TotalHolds() (holds map[string]int, checked int) {
	holds = map[string]int{}
	for i := range r.Cells {
		//sfs:allow detmaprange commutative sum into a map; callers render via the sorted Properties list
		for p, n := range r.Cells[i].Holds {
			holds[p] += n
		}
		checked += r.Cells[i].Checked
	}
	return holds, checked
}

// PropertyTable renders the sweep-wide verdict tally: one row per checked
// property with the count and percentage of checked runs on which it held.
func (r *Report) PropertyTable() string {
	holds, checked := r.TotalHolds()
	tbl := stats.NewTable("property", "runs holding", "checked runs", "pct")
	for _, prop := range Properties {
		n, present := holds[prop]
		if !present && checked == 0 {
			continue
		}
		pct := 0.0
		if checked > 0 {
			pct = 100 * float64(n) / float64(checked)
		}
		tbl.Row(prop, n, checked, pct)
	}
	return tbl.String()
}

// CellTable renders one row per cell: outcome tallies, event-count
// percentiles, network-fault tallies (when any cell ran under a fault
// plan), and any custom metrics.
func (r *Report) CellTable() string {
	var allMetrics []map[string]int
	faulty, topos, rel, rec, byz := false, false, false, false, false
	for i := range r.Cells {
		allMetrics = append(allMetrics, r.Cells[i].Metrics)
		if r.Cells[i].Cell.Plan != "" {
			faulty = true
		}
		if r.Cells[i].Cell.Topo != "" {
			topos = true
		}
		if r.Cells[i].Cell.Reliable {
			rel = true
		}
		if r.Cells[i].Cell.Recovery != recovery.Off {
			rec = true
		}
		if r.Cells[i].Cell.Byzantine || r.Cells[i].Corrupted > 0 ||
			r.Cells[i].Equivocated > 0 || r.Cells[i].Replayed > 0 {
			byz = true
		}
	}
	names := metricNames(allMetrics...)
	headers := []string{"cell", "runs", "quiescent", "blocked", "max-time", "max-events", "events p50", "events p95"}
	if topos {
		headers = append(headers, "links", "fanout")
	}
	if faulty {
		headers = append(headers, "dropped", "duplicated")
	}
	if rel {
		headers = append(headers, "retransmits", "acked-dup")
	}
	if rec {
		headers = append(headers, "crashes", "restarts", "recovered")
	}
	if byz {
		headers = append(headers, "byz-detected", "byz-masked", "corrupted", "equivocated", "replayed")
	}
	headers = append(headers, names...)
	tbl := stats.NewTable(headers...)
	for i := range r.Cells {
		c := &r.Cells[i]
		row := []any{
			c.Cell.String(), c.Runs, c.Quiescent, c.BlockedRuns,
			c.Stops[sim.StopMaxTime], c.Stops[sim.StopMaxEvents],
			c.Events.Median, c.Events.P95,
		}
		if topos {
			row = append(row, c.Links, c.Fanout)
		}
		if faulty {
			row = append(row, c.Dropped, c.Duplicated)
		}
		if rel {
			row = append(row, c.Retransmits, c.AckedDuplicates)
		}
		if rec {
			row = append(row, c.PlanCrashes, c.Restarts, c.Recovered)
		}
		if byz {
			row = append(row, c.ByzDetected, c.ByzMasked, c.Corrupted, c.Equivocated, c.Replayed)
		}
		for _, m := range names {
			row = append(row, fmt.Sprintf("%d/%d", c.Metrics[m], c.Runs))
		}
		tbl.Row(row...)
	}
	return tbl.String()
}

// String renders the full report: header, per-cell table, and — when any
// run was checked — the sweep-wide property tally.
func (r *Report) String() string {
	var b strings.Builder
	// Workers is deliberately not rendered: the text report of a merged
	// set of shard reports must be byte-identical to the unsharded one,
	// and worker counts are execution bookkeeping, not results.
	fmt.Fprintf(&b, "sweep: %d runs over %d cells\n", r.Runs, len(r.Cells))
	b.WriteString(r.CellTable())
	if _, checked := r.TotalHolds(); checked > 0 {
		b.WriteString("\nproperty verdicts over quiescent runs:\n")
		b.WriteString(r.PropertyTable())
	}
	return b.String()
}

// accumulator builds one CellResult incrementally. Each worker owns a
// private set of accumulators (no locking on the add path); sets combine
// with merge, which is commutative and associative over everything result
// reports, so the final CellResult is independent of which worker ran
// which job.
type accumulator struct {
	cell        Cell
	links       int64
	fanout      int
	runs        int
	stops       map[sim.StopReason]int
	quiet       int
	blocked     int
	checked     int
	dropped     int
	duplicated  int
	retransmits int
	ackedDups   int
	planCrashes int
	restarts    int
	recovered   int
	byzDetected int
	byzMasked   int
	corrupted   int
	equivocated int
	replayed    int
	holds       map[string]int
	metrics     map[string]int
	obsTotals   map[string]int64
	tseries     map[string][]float64
	events      []float64
	ends        []float64
}

// newAccumulator creates one empty accumulator; sampleHint presizes the
// run-length sample slices (the former per-run record traffic, now
// buffered in place).
func newAccumulator(cell Cell, links int64, fanout, sampleHint int) *accumulator {
	return &accumulator{
		cell:      cell,
		links:     links,
		fanout:    fanout,
		stops:     make(map[sim.StopReason]int, 3),
		holds:     make(map[string]int, len(Properties)),
		metrics:   map[string]int{},
		obsTotals: map[string]int64{},
		tseries:   map[string][]float64{},
		events:    make([]float64, 0, sampleHint),
		ends:      make([]float64, 0, sampleHint),
	}
}

func newAccumulators(cells []cellSpec) []*accumulator {
	out := make([]*accumulator, len(cells))
	for i, cs := range cells {
		out[i] = newAccumulator(cs.cell, cs.links, cs.fanout, 0)
	}
	return out
}

func (a *accumulator) add(rec runRecord) {
	a.runs++
	a.stops[rec.stop]++
	if rec.quiescent {
		a.quiet++
	}
	if rec.blocked {
		a.blocked++
	}
	a.dropped += rec.dropped
	a.duplicated += rec.duplicated
	a.retransmits += rec.retransmits
	a.ackedDups += rec.ackedDups
	a.planCrashes += rec.planCrashes
	a.restarts += rec.restarts
	a.recovered += rec.recovered
	a.byzDetected += rec.byzDetected
	a.byzMasked += rec.byzMasked
	a.corrupted += rec.corrupted
	a.equivocated += rec.equivocated
	a.replayed += rec.replayed
	if rec.verdicts != nil {
		a.checked++
		for _, v := range rec.verdicts {
			if v.Holds {
				a.holds[v.Property]++
			}
		}
	}
	//sfs:allow detmaprange commutative tally into a map; rendering sorts via metricNames
	for name, val := range rec.metrics {
		if val {
			a.metrics[name]++
		} else {
			a.metrics[name] += 0 // record the name so 0-counts render
		}
	}
	// rec.obs is a sorted slice, rec.peaks a name-sorted snapshot: both
	// iterate deterministically. Histogram metrics carry no summable value.
	for _, m := range rec.obs {
		if m.Summary == nil {
			a.obsTotals[m.Name] += m.Value
		}
	}
	for _, s := range rec.peaks {
		a.tseries[s.Name] = append(a.tseries[s.Name], s.Max())
	}
	a.events = append(a.events, rec.events)
	a.ends = append(a.ends, rec.endTime)
}

// merge folds b into a. All aggregates are commutative sums (map keys
// union; samples concatenate and are sorted by result), so merging the
// per-worker accumulators in any order produces the same CellResult.
func (a *accumulator) merge(b *accumulator) {
	a.runs += b.runs
	//sfs:allow detmaprange commutative sum into a map; emission renders by keyed lookup
	for k, v := range b.stops {
		a.stops[k] += v
	}
	a.quiet += b.quiet
	a.blocked += b.blocked
	a.checked += b.checked
	a.dropped += b.dropped
	a.duplicated += b.duplicated
	a.retransmits += b.retransmits
	a.ackedDups += b.ackedDups
	a.planCrashes += b.planCrashes
	a.restarts += b.restarts
	a.recovered += b.recovered
	a.byzDetected += b.byzDetected
	a.byzMasked += b.byzMasked
	a.corrupted += b.corrupted
	a.equivocated += b.equivocated
	a.replayed += b.replayed
	//sfs:allow detmaprange commutative sum into a map; emission renders via the sorted Properties list
	for k, v := range b.holds {
		a.holds[k] += v
	}
	//sfs:allow detmaprange commutative sum into a map; rendering sorts via metricNames
	for k, v := range b.metrics {
		a.metrics[k] += v
	}
	//sfs:allow detmaprange commutative sum into a map; rendering sorts via metricNames
	for k, v := range b.obsTotals {
		a.obsTotals[k] += v
	}
	//sfs:allow detmaprange keyed sample-set concatenation; result sorts every set before publishing
	for k, v := range b.tseries {
		a.tseries[k] = append(a.tseries[k], v...)
	}
	a.events = append(a.events, b.events...)
	a.ends = append(a.ends, b.ends...)
}

// result finalizes the accumulator. Samples are sorted here — not in
// arrival order — so the published CellResult (and anything derived from
// it, like a shard report on disk) is identical no matter how jobs were
// scheduled across workers.
func (a *accumulator) result() CellResult {
	sort.Float64s(a.events)
	sort.Float64s(a.ends)
	ts := make(map[string]stats.Summary, len(a.tseries))
	//sfs:allow detmaprange per-key sort and summarize; keyed output is independent of visit order
	for name, samples := range a.tseries {
		sort.Float64s(samples)
		ts[name] = stats.Summarize(samples)
	}
	return CellResult{
		Cell:              a.cell,
		Links:             a.links,
		Fanout:            a.fanout,
		Runs:              a.runs,
		Stops:             a.stops,
		Quiescent:         a.quiet,
		BlockedRuns:       a.blocked,
		Checked:           a.checked,
		Dropped:           a.dropped,
		Duplicated:        a.duplicated,
		Retransmits:       a.retransmits,
		AckedDuplicates:   a.ackedDups,
		PlanCrashes:       a.planCrashes,
		Restarts:          a.restarts,
		Recovered:         a.recovered,
		ByzDetected:       a.byzDetected,
		ByzMasked:         a.byzMasked,
		Corrupted:         a.corrupted,
		Equivocated:       a.equivocated,
		Replayed:          a.replayed,
		Holds:             a.holds,
		Metrics:           a.metrics,
		Obs:               a.obsTotals,
		Events:            stats.Summarize(a.events),
		EndTimes:          stats.Summarize(a.ends),
		EventSamples:      a.events,
		EndTimeSamples:    a.ends,
		Timeseries:        ts,
		TimeseriesSamples: a.tseries,
	}
}
