package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"failstop/internal/recovery"
)

// recoverySpec is the acceptance-criteria sweep: the restart-storm plan
// gridded over every recovery mode, with timelines and checking on, so a
// single spec exercises restart execution, the recovery report columns,
// and the obs/timeline aggregation paths together.
func recoverySpec() Spec {
	return Spec{
		Grid:     []NT{{5, 2}},
		Seeds:    SeedRange{Count: 6},
		MaxTime:  3000,
		Recovery: []recovery.Mode{recovery.Off, recovery.Amnesia, recovery.Durable},
		Timeline: true, TimelineEvery: 10,
		Check: true,
	}
}

// TestRecoveryAxisExpansion: the recovery axis is innermost and defaults
// to {Off}, and the mode shows up in the cell identity string.
func TestRecoveryAxisExpansion(t *testing.T) {
	spec := Spec{
		Grid:     []NT{{5, 2}},
		Plans:    plansByName(t, "restart-storm"),
		Recovery: []recovery.Mode{recovery.Off, recovery.Durable},
		MaxTime:  1000,
	}
	cells := spec.Cells()
	if len(cells) != 2 {
		t.Fatalf("expanded to %d cells, want 2", len(cells))
	}
	if cells[0].Recovery != recovery.Off || cells[1].Recovery != recovery.Durable {
		t.Errorf("recovery axis order: %v, %v", cells[0].Recovery, cells[1].Recovery)
	}
	if got := cells[1].String(); !strings.Contains(got, "rec=durable") {
		t.Errorf("cell string %q does not name the recovery mode", got)
	}
	if got := cells[0].String(); strings.Contains(got, "rec=") {
		t.Errorf("cell string %q names recovery mode off", got)
	}
}

// TestRecoveryValidateUnboundedPlan: an unbounded restart plan with a
// recovering mode and no horizon is a spec error, not a worker panic.
func TestRecoveryValidateUnboundedPlan(t *testing.T) {
	spec := Spec{
		Grid:     []NT{{5, 2}},
		Plans:    plansByName(t, "restart-storm"),
		Recovery: []recovery.Mode{recovery.Amnesia},
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "forever") {
		t.Errorf("Validate() = %v, want unbounded-plan error", err)
	}
	// Off-only is fine: the first storm window is terminal.
	spec.Recovery = []recovery.Mode{recovery.Off}
	if err := spec.Validate(); err != nil {
		t.Errorf("Validate() with Off = %v, want nil", err)
	}
}

// TestRecoverySweepStableAcrossWorkersAndShards is the acceptance
// criterion: a restart-storm sweep over all three recovery modes, with
// metrics and timelines on, renders byte-identically no matter the worker
// count, and its shard reports merge back to exactly the unsharded report.
func TestRecoverySweepStableAcrossWorkersAndShards(t *testing.T) {
	spec := recoverySpec()
	spec.Plans = plansByName(t, "restart-storm")

	render := func(rep *Report) (string, string) {
		rep.Workers = 0
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String(), string(raw)
	}

	base, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseText, baseJSON := render(base)
	if !strings.Contains(baseText, "restarts") || !strings.Contains(baseText, "recovered") {
		t.Fatalf("report lacks recovery columns:\n%s", baseText)
	}

	// The storm must actually execute, and durable restarts must recover.
	for _, c := range base.Cells {
		if c.Cell.Recovery == recovery.Off {
			if c.Restarts != 0 {
				t.Errorf("off cell restarted %d times", c.Restarts)
			}
			continue
		}
		if c.PlanCrashes == 0 || c.Restarts == 0 {
			t.Errorf("%v: PlanCrashes=%d Restarts=%d, want both > 0", c.Cell, c.PlanCrashes, c.Restarts)
		}
		wantRecovered := 0
		if c.Cell.Recovery == recovery.Durable {
			wantRecovered = c.Restarts
		}
		if c.Recovered != wantRecovered {
			t.Errorf("%v: Recovered=%d, want %d", c.Cell, c.Recovered, wantRecovered)
		}
	}

	for _, workers := range []int{2, 8} {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		text, raw := render(rep)
		if text != baseText {
			t.Errorf("workers=%d: rendered report diverged:\n--- baseline\n%s\n--- got\n%s", workers, baseText, text)
		}
		if raw != baseJSON {
			t.Errorf("workers=%d: JSON report diverged", workers)
		}
	}

	const k = 3
	var shards []*Report
	for i := 0; i < k; i++ {
		s := spec
		s.Shard = Shard{Index: i, Count: k}
		rep, err := Run(s, Options{Workers: 2})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("shard %d: WriteJSON: %v", i, err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("shard %d: ReadJSON: %v", i, err)
		}
		shards = append(shards, back)
	}
	merged, err := Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	mergedText, mergedJSON := render(merged)
	if mergedText != baseText || mergedJSON != baseJSON {
		t.Errorf("merged shard reports diverged from the unsharded report:\n--- baseline\n%s\n--- merged\n%s", baseText, mergedText)
	}
	if !reflect.DeepEqual(merged, base) {
		t.Error("merged report structurally differs from the unsharded report")
	}
}
