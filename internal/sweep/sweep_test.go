package sweep

import (
	"reflect"
	"strings"
	"testing"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

func TestSpecExpansion(t *testing.T) {
	spec := Spec{
		Grid:         []NT{{5, 2}, {10, 3}},
		Protocols:    []core.Protocol{core.SimulatedFailStop, core.Cheap},
		QuorumDeltas: []int{-1, 0},
		Schedules:    []Schedule{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Seeds:        SeedRange{Start: 7, Count: 4},
	}
	if got, want := len(spec.Cells()), 2*2*2*3; got != want {
		t.Errorf("cells = %d, want %d", got, want)
	}
	if got, want := spec.Runs(), 2*2*2*3*4; got != want {
		t.Errorf("runs = %d, want %d", got, want)
	}
	first := spec.Cells()[0]
	want := Cell{NT: NT{5, 2}, Protocol: core.SimulatedFailStop, QuorumDelta: -1, Schedule: "a"}
	if first != want {
		t.Errorf("first cell = %+v, want %+v", first, want)
	}
}

func TestSpecDefaults(t *testing.T) {
	spec := Spec{Grid: []NT{{5, 2}}}
	if got := len(spec.Cells()); got != 1 {
		t.Fatalf("cells = %d, want 1", got)
	}
	if got := spec.Runs(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
	c := spec.Cells()[0]
	if c.Protocol != core.SimulatedFailStop || c.QuorumDelta != 0 || c.Schedule != "quiet" {
		t.Errorf("default cell = %+v", c)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{},
		{Grid: []NT{{1, 1}}},
		{Grid: []NT{{5, 0}}},
		{Grid: []NT{{5, 2}}, Schedules: []Schedule{{Name: "x"}, {Name: "x"}}},
	}
	for i, spec := range cases {
		if err := spec.withDefaults().Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, spec)
		}
	}
}

// TestSweepChecksProperties runs a small adversarial grid and verifies the
// aggregate matches the paper's Figure 1 shape: all sFS conditions hold on
// every quiescent run, FS2 fails on the false-suspicion runs.
func TestSweepChecksProperties(t *testing.T) {
	falseSusp, _ := Builtin("false-suspicion")
	spec := Spec{
		Grid:      []NT{{10, 3}},
		Schedules: []Schedule{falseSusp},
		Seeds:     SeedRange{Count: 8},
		Check:     true,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 8 || len(rep.Cells) != 1 {
		t.Fatalf("runs=%d cells=%d", rep.Runs, len(rep.Cells))
	}
	c := &rep.Cells[0]
	if c.Checked == 0 {
		t.Fatal("no run was checked (none quiescent?)")
	}
	for _, prop := range []string{"FS1", "sFS2a", "sFS2b", "sFS2c", "sFS2d", "W"} {
		if !c.HoldsAll(prop) {
			t.Errorf("%s held on %d/%d checked runs", prop, c.Holds[prop], c.Checked)
		}
	}
	if c.Holds["FS2"] == c.Checked {
		t.Error("FS2 held on every run despite false suspicions with slowed kill paths")
	}
}

// TestSweepDeterministicAcrossWorkerCounts verifies the report is identical
// no matter how many workers execute the sweep.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	mixed, _ := Builtin("mixed")
	crash, _ := Builtin("crash")
	spec := Spec{
		Grid:      []NT{{5, 2}, {10, 3}},
		Schedules: []Schedule{mixed, crash},
		Seeds:     SeedRange{Count: 6},
		Check:     true,
	}
	serial, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial.Workers, parallel.Workers = 0, 0
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel reports differ:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
}

// TestSweepStopReasons verifies horizon-truncated runs are tallied under
// their distinct stop reasons.
func TestSweepStopReasons(t *testing.T) {
	crash, _ := Builtin("crash")
	spec := Spec{
		Grid:      []NT{{6, 2}},
		Schedules: []Schedule{crash},
		Seeds:     SeedRange{Count: 3},
		MaxTime:   4, // cut every run off mid-protocol
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &rep.Cells[0]
	if c.Stops[sim.StopMaxTime] != 3 {
		t.Errorf("max-time stops = %d, want 3 (stops: %v)", c.Stops[sim.StopMaxTime], c.Stops)
	}
	if c.Quiescent != 0 {
		t.Errorf("quiescent = %d, want 0", c.Quiescent)
	}

	spec.MaxTime = 0
	spec.MaxEvents = 10
	rep, err = Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c = &rep.Cells[0]
	if c.Stops[sim.StopMaxEvents] != 3 {
		t.Errorf("max-events stops = %d, want 3 (stops: %v)", c.Stops[sim.StopMaxEvents], c.Stops)
	}
}

// TestSweepCustomRunnerAndObserve exercises the Runner and Observe hooks.
func TestSweepCustomRunnerAndObserve(t *testing.T) {
	spec := Spec{
		Grid:  []NT{{5, 2}},
		Seeds: SeedRange{Count: 4},
		Runner: func(cell Cell, seed int64) RunOutput {
			s := sim.New(sim.Config{N: cell.NT.N, Seed: seed})
			for p := 1; p <= cell.NT.N; p++ {
				s.SetHandler(model.ProcID(p), nopHandler{})
			}
			return RunOutput{
				Result:  s.Run(),
				Metrics: map[string]bool{"even-seed": seed%2 == 0},
			}
		},
		Observe: func(cell Cell, seed int64, out RunOutput) map[string]bool {
			return map[string]bool{"observed": true}
		},
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &rep.Cells[0]
	if c.Metrics["even-seed"] != 2 {
		t.Errorf("even-seed = %d, want 2", c.Metrics["even-seed"])
	}
	if !c.MetricAll("observed") {
		t.Errorf("observed = %d/%d", c.Metrics["observed"], c.Runs)
	}
	if c.Quiescent != 4 {
		t.Errorf("quiescent = %d, want 4", c.Quiescent)
	}
}

func TestBuiltinSchedulesRunClean(t *testing.T) {
	spec := Spec{
		Grid:      []NT{{5, 2}, {10, 3}},
		Schedules: Builtins(),
		Seeds:     SeedRange{Count: 3},
		MaxEvents: 1 << 16,
		Check:     true,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != spec.Runs() {
		t.Errorf("runs = %d, want %d", rep.Runs, spec.Runs())
	}
	// sFS2c (no self-detection) is safety, checked on quiescent runs; no
	// built-in schedule may violate it under the §5 protocol.
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Checked > 0 && !c.HoldsAll("sFS2c") {
			t.Errorf("%v: sFS2c %d/%d", c.Cell, c.Holds["sFS2c"], c.Checked)
		}
	}
	out := rep.String()
	for _, want := range []string{"sweep:", "cell", "quiescent"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBuiltinLookup(t *testing.T) {
	for _, name := range BuiltinNames() {
		if _, ok := Builtin(name); !ok {
			t.Errorf("Builtin(%q) not found", name)
		}
	}
	if _, ok := Builtin("no-such-schedule"); ok {
		t.Error("Builtin accepted an unknown name")
	}
}

// nopHandler is an inert node handler for custom-runner tests.
type nopHandler struct{}

func (nopHandler) Init(node.Context)                                  {}
func (nopHandler) OnMessage(node.Context, model.ProcID, node.Payload) {}
func (nopHandler) OnTimer(node.Context, string)                       {}

// TestMixedScheduleSmallClusters is a regression test: mixedFaults used to
// draw a crash-noticing accuser from {1, 2, 3} regardless of n, which
// panicked sweeps over 2- and 3-process grids.
func TestMixedScheduleSmallClusters(t *testing.T) {
	mixed, _ := Builtin("mixed")
	spec := Spec{
		Grid:      []NT{{2, 2}, {3, 2}, {3, 3}},
		Schedules: []Schedule{mixed},
		Seeds:     SeedRange{Count: 30},
		MaxEvents: 1 << 16,
	}
	rep, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != spec.Runs() {
		t.Errorf("runs = %d, want %d", rep.Runs, spec.Runs())
	}
	for _, sched := range Builtins() {
		if sched.Faults == nil {
			continue
		}
		for _, nt := range spec.Grid {
			for seed := int64(0); seed < 30; seed++ {
				for _, f := range sched.Faults(nt, seed) {
					if int(f.Proc) < 1 || int(f.Proc) > nt.N {
						t.Fatalf("%s(%v, %d): fault proc %d out of range", sched.Name, nt, seed, f.Proc)
					}
					if f.Kind == FaultSuspect && (int(f.Target) < 1 || int(f.Target) > nt.N) {
						t.Fatalf("%s(%v, %d): fault target %d out of range", sched.Name, nt, seed, f.Target)
					}
				}
			}
		}
	}
}
