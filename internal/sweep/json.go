// Machine-readable sweep reports and shard recombination.
//
// A Report serializes losslessly to JSON: every aggregate a cell carries —
// including the sorted raw run-length samples behind its percentile
// summaries — round-trips, so a report written by one process (a CI shard
// job, a remote machine) can be merged by another into exactly the report
// a single unsharded sweep would have produced. Byte-identity of the
// merged text report against the unsharded one is asserted in tests and in
// the CI shard job; it is the determinism proof for the scale-out path.

package sweep

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON deserializes a report written by WriteJSON.
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("sweep: decoding report: %w", err)
	}
	return &rep, nil
}

// Merge recombines reports produced by runs of the same Spec differing
// only in Shard — the shards of one grid, in any order — into the report
// the unsharded sweep produces: identical cells, counters, percentiles,
// and String rendering. Only Workers is not reconstructed (it is
// execution bookkeeping with no unsharded equivalent) and is left 0.
//
// Merge rejects mismatches rather than guessing: reports must agree
// cell-for-cell on identity and order, and their Shard identities must
// cover a k-shard stream exactly — every index 0..k-1 once, no duplicated
// artifact, no missing shard — so a doubled or dropped shard file fails
// loudly instead of silently skewing every count.
func Merge(reports ...*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("sweep: Merge needs at least one report")
	}
	k := reports[0].Shard.Count
	if k < 1 {
		return nil, fmt.Errorf("sweep: report 0 carries no shard identity (shard count %d); was it written by sfs-sweep -json?", k)
	}
	if len(reports) != k {
		return nil, fmt.Errorf("sweep: got %d reports for a %d-shard stream (missing or extra shard files?)", len(reports), k)
	}
	seen := make([]bool, k)
	for i, r := range reports {
		sh := r.Shard
		if sh.Count != k {
			return nil, fmt.Errorf("sweep: report %d is shard %d/%d, report 0 is of a %d-shard stream", i, sh.Index, sh.Count, k)
		}
		if sh.Index < 0 || sh.Index >= k {
			return nil, fmt.Errorf("sweep: report %d has shard index %d out of range [0, %d)", i, sh.Index, k)
		}
		if seen[sh.Index] {
			return nil, fmt.Errorf("sweep: shard %d/%d appears twice (duplicated report file?)", sh.Index, k)
		}
		seen[sh.Index] = true
	}
	base := reports[0]
	for i, r := range reports[1:] {
		if len(r.Cells) != len(base.Cells) {
			return nil, fmt.Errorf("sweep: report %d has %d cells, report 0 has %d (different specs?)",
				i+1, len(r.Cells), len(base.Cells))
		}
		for j := range r.Cells {
			if r.Cells[j].Cell != base.Cells[j].Cell {
				return nil, fmt.Errorf("sweep: report %d cell %d is %v, report 0 has %v (different specs?)",
					i+1, j, r.Cells[j].Cell, base.Cells[j].Cell)
			}
		}
	}
	// The merged report covers the whole stream: its shard identity is the
	// unsharded one, which is also what makes it merge-equal (and
	// DeepEqual) to a sweep run without sharding.
	out := &Report{Shard: Shard{Index: 0, Count: 1}, Cells: make([]CellResult, 0, len(base.Cells))}
	for j := range base.Cells {
		a := newAccumulator(base.Cells[j].Cell, base.Cells[j].Links, base.Cells[j].Fanout, 0)
		for _, r := range reports {
			a.merge(cellAccumulator(&r.Cells[j]))
		}
		out.Cells = append(out.Cells, a.result())
		out.Runs += a.runs
	}
	return out, nil
}

// cellAccumulator reopens a finalized CellResult as an accumulator, the
// inverse of accumulator.result — possible because CellResult retains its
// raw sample sets. The returned accumulator aliases the cell's maps and
// slices; it must only be read (merged from), never added to.
func cellAccumulator(c *CellResult) *accumulator {
	return &accumulator{
		cell:        c.Cell,
		links:       c.Links,
		fanout:      c.Fanout,
		runs:        c.Runs,
		stops:       c.Stops,
		quiet:       c.Quiescent,
		blocked:     c.BlockedRuns,
		checked:     c.Checked,
		dropped:     c.Dropped,
		duplicated:  c.Duplicated,
		retransmits: c.Retransmits,
		ackedDups:   c.AckedDuplicates,
		planCrashes: c.PlanCrashes,
		restarts:    c.Restarts,
		recovered:   c.Recovered,
		byzDetected: c.ByzDetected,
		byzMasked:   c.ByzMasked,
		corrupted:   c.Corrupted,
		equivocated: c.Equivocated,
		replayed:    c.Replayed,
		holds:       c.Holds,
		metrics:     c.Metrics,
		obsTotals:   c.Obs,
		tseries:     c.TimeseriesSamples,
		events:      c.EventSamples,
		ends:        c.EndTimeSamples,
	}
}
