// Regression tests for the determinism contract sfs-lint enforces
// statically: the same spec and seeds must produce byte-identical reports
// no matter how the host schedules the work — worker-pool size and
// GOMAXPROCS are execution knobs, not inputs.
package sweep

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// runAt executes the spec with the given GOMAXPROCS and worker count and
// returns the rendered report and its canonical JSON (Workers zeroed: it
// records execution bookkeeping, not results).
func runAt(t *testing.T, spec Spec, procs, workers int) (string, []byte) {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	rep, err := Run(spec, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	rep.Workers = 0
	text := rep.String()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return text, raw
}

// TestReportStableAcrossGOMAXPROCS pins the tentpole invariant end to end:
// a checked sweep with crashes, a fault plan, and the reliable layer in the
// grid produces identical text and JSON under serial, oversubscribed, and
// fully parallel scheduling.
func TestReportStableAcrossGOMAXPROCS(t *testing.T) {
	crash, ok := Builtin("crash")
	if !ok {
		t.Fatal("builtin crash schedule missing")
	}
	spec := Spec{
		Grid:      []NT{{5, 2}},
		Schedules: []Schedule{crash},
		Plans:     plansByName(t, "flaky-quorum"),
		Seeds:     SeedRange{Count: 6},
		MaxTime:   3000,
		Check:     true,
	}
	baseText, baseJSON := runAt(t, spec, 1, 1)
	cases := []struct {
		name           string
		procs, workers int
	}{
		{"procs=1 workers=4 (oversubscribed)", 1, 4},
		{"procs=2 workers=2", 2, 2},
		{"procs=max workers=8", runtime.NumCPU(), 8},
	}
	for _, c := range cases {
		text, raw := runAt(t, spec, c.procs, c.workers)
		if text != baseText {
			t.Errorf("%s: rendered report diverged from serial baseline:\n--- baseline\n%s\n--- got\n%s", c.name, baseText, text)
		}
		if string(raw) != string(baseJSON) {
			t.Errorf("%s: JSON report diverged from serial baseline", c.name)
		}
	}
}

// TestObsTimelineStableAcrossWorkers extends the invariant to the
// observability plane: obs metric totals, per-cell timeline aggregates,
// and the CSV rendering must not depend on the worker count. The spec
// deliberately combines heartbeats with a lossy plan — the configuration
// whose simultaneous-timeout suspicions once leaked map order into the
// report (see fd.Heartbeat.OnTimer).
func TestObsTimelineStableAcrossWorkers(t *testing.T) {
	crash, ok := Builtin("crash")
	if !ok {
		t.Fatal("builtin crash schedule missing")
	}
	spec := Spec{
		Grid:             []NT{{5, 2}},
		Schedules:        []Schedule{crash},
		Plans:            plansByName(t, "flaky-quorum"),
		Seeds:            SeedRange{Count: 8},
		MaxTime:          2000,
		HeartbeatEvery:   25,
		HeartbeatTimeout: 80,
		Timeline:         true,
		TimelineEvery:    5,
		Check:            true,
	}
	render := func(workers int) (string, string) {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep.Workers = 0
		var csv strings.Builder
		if err := rep.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw), csv.String()
	}
	baseJSON, baseCSV := render(1)
	if !strings.Contains(baseJSON, `"obs"`) || !strings.Contains(baseJSON, `"timeseries"`) {
		t.Fatalf("report carries no obs/timeline data: %s", baseJSON[:200])
	}
	for _, workers := range []int{2, 8} {
		gotJSON, gotCSV := render(workers)
		if gotJSON != baseJSON {
			t.Errorf("workers=%d: JSON (incl. obs totals and timeline aggregates) diverged from serial", workers)
		}
		if gotCSV != baseCSV {
			t.Errorf("workers=%d: CSV diverged from serial", workers)
		}
	}
}

// TestShardJSONStableAcrossGOMAXPROCS extends the invariant to the on-disk
// shard format: the bytes a shard writes must not depend on scheduling,
// or CI's byte-identity merge checks would flake.
func TestShardJSONStableAcrossGOMAXPROCS(t *testing.T) {
	spec := Spec{
		Grid:    []NT{{5, 2}, {7, 3}},
		Seeds:   SeedRange{Count: 4},
		MaxTime: 2000,
		Check:   true,
		Shard:   Shard{Index: 1, Count: 2},
	}
	_, baseJSON := runAt(t, spec, 1, 1)
	_, parJSON := runAt(t, spec, runtime.NumCPU(), 8)
	if string(baseJSON) != string(parJSON) {
		t.Error("shard report JSON depends on GOMAXPROCS/worker count")
	}
}
