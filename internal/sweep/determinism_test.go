// Regression tests for the determinism contract sfs-lint enforces
// statically: the same spec and seeds must produce byte-identical reports
// no matter how the host schedules the work — worker-pool size and
// GOMAXPROCS are execution knobs, not inputs.
package sweep

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"failstop/internal/byz"
)

// runAt executes the spec with the given GOMAXPROCS and worker count and
// returns the rendered report and its canonical JSON (Workers zeroed: it
// records execution bookkeeping, not results).
func runAt(t *testing.T, spec Spec, procs, workers int) (string, []byte) {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	rep, err := Run(spec, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	rep.Workers = 0
	text := rep.String()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return text, raw
}

// TestReportStableAcrossGOMAXPROCS pins the tentpole invariant end to end:
// a checked sweep with crashes, a fault plan, and the reliable layer in the
// grid produces identical text and JSON under serial, oversubscribed, and
// fully parallel scheduling.
func TestReportStableAcrossGOMAXPROCS(t *testing.T) {
	crash, ok := Builtin("crash")
	if !ok {
		t.Fatal("builtin crash schedule missing")
	}
	spec := Spec{
		Grid:      []NT{{5, 2}},
		Schedules: []Schedule{crash},
		Plans:     plansByName(t, "flaky-quorum"),
		Seeds:     SeedRange{Count: 6},
		MaxTime:   3000,
		Check:     true,
	}
	baseText, baseJSON := runAt(t, spec, 1, 1)
	cases := []struct {
		name           string
		procs, workers int
	}{
		{"procs=1 workers=4 (oversubscribed)", 1, 4},
		{"procs=2 workers=2", 2, 2},
		{"procs=max workers=8", runtime.NumCPU(), 8},
	}
	for _, c := range cases {
		text, raw := runAt(t, spec, c.procs, c.workers)
		if text != baseText {
			t.Errorf("%s: rendered report diverged from serial baseline:\n--- baseline\n%s\n--- got\n%s", c.name, baseText, text)
		}
		if string(raw) != string(baseJSON) {
			t.Errorf("%s: JSON report diverged from serial baseline", c.name)
		}
	}
}

// TestObsTimelineStableAcrossWorkers extends the invariant to the
// observability plane: obs metric totals, per-cell timeline aggregates,
// and the CSV rendering must not depend on the worker count. The spec
// deliberately combines heartbeats with a lossy plan — the configuration
// whose simultaneous-timeout suspicions once leaked map order into the
// report (see fd.Heartbeat.OnTimer).
func TestObsTimelineStableAcrossWorkers(t *testing.T) {
	crash, ok := Builtin("crash")
	if !ok {
		t.Fatal("builtin crash schedule missing")
	}
	spec := Spec{
		Grid:             []NT{{5, 2}},
		Schedules:        []Schedule{crash},
		Plans:            plansByName(t, "flaky-quorum"),
		Seeds:            SeedRange{Count: 8},
		MaxTime:          2000,
		HeartbeatEvery:   25,
		HeartbeatTimeout: 80,
		Timeline:         true,
		TimelineEvery:    5,
		Check:            true,
	}
	render := func(workers int) (string, string) {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep.Workers = 0
		var csv strings.Builder
		if err := rep.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw), csv.String()
	}
	baseJSON, baseCSV := render(1)
	if !strings.Contains(baseJSON, `"obs"`) || !strings.Contains(baseJSON, `"timeseries"`) {
		t.Fatalf("report carries no obs/timeline data: %s", baseJSON[:200])
	}
	for _, workers := range []int{2, 8} {
		gotJSON, gotCSV := render(workers)
		if gotJSON != baseJSON {
			t.Errorf("workers=%d: JSON (incl. obs totals and timeline aggregates) diverged from serial", workers)
		}
		if gotCSV != baseCSV {
			t.Errorf("workers=%d: CSV diverged from serial", workers)
		}
	}
}

// TestByzantineAxisStableAcrossWorkers extends the invariant to the
// Byzantine axis: a sweep gridding the validation interposer off and on
// over a plan with Byzantine rules must render identical text, JSON, and
// CSV — including the byz_detected/byz_masked conviction totals and the
// fault plane's corrupted/equivocated/replayed injection totals — no
// matter the worker count.
func TestByzantineAxisStableAcrossWorkers(t *testing.T) {
	// false-suspicion keeps the plan's victims (the two highest-numbered
	// processes) alive and talking; the crash schedule would kill them
	// before their first SUSP.
	sched, ok := Builtin("false-suspicion")
	if !ok {
		t.Fatal("builtin false-suspicion schedule missing")
	}
	spec := Spec{
		Grid:      []NT{{5, 2}},
		Schedules: []Schedule{sched},
		Plans:     plansByName(t, "byzantine-minority"),
		Byzantine: []byz.Options{{}, {Enabled: true}},
		Seeds:     SeedRange{Count: 6},
		MaxTime:   3000,
		Check:     true,
	}
	render := func(procs, workers int) (string, string, string) {
		text, raw := runAt(t, spec, procs, workers)
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep.Workers = 0
		var csv strings.Builder
		if err := rep.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return text, string(raw), csv.String()
	}
	baseText, baseJSON, baseCSV := render(1, 1)
	if !strings.Contains(baseText, " byz") {
		t.Fatalf("cell table carries no byz cells:\n%s", baseText)
	}
	for _, col := range []string{"byz-detected", "corrupted", "equivocated", "replayed"} {
		if !strings.Contains(baseText, col) {
			t.Errorf("cell table missing %q column:\n%s", col, baseText)
		}
	}
	if !strings.Contains(baseCSV, ",byzantine,") || !strings.Contains(baseCSV, ",byz_detected,") {
		t.Errorf("CSV header missing Byzantine columns:\n%s", strings.SplitN(baseCSV, "\n", 2)[0])
	}
	if !strings.Contains(baseJSON, `"byzantine":true`) {
		t.Errorf("JSON report missing interposer-on cell identity")
	}
	// The schedule's SUSP broadcasts flow through the plan's Byzantine
	// rules: both cells must record injections, and the interposer-on
	// cell must convict.
	rep, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Corrupted == 0 && c.Equivocated == 0 {
			t.Errorf("cell %q: plan injected no Byzantine faults", c.Cell.String())
		}
		if c.Cell.Byzantine && c.ByzDetected == 0 {
			t.Errorf("cell %q: interposer on but no convictions", c.Cell.String())
		}
		if !c.Cell.Byzantine && (c.ByzDetected != 0 || c.ByzMasked != 0) {
			t.Errorf("cell %q: interposer off but det=%d masked=%d", c.Cell.String(), c.ByzDetected, c.ByzMasked)
		}
	}
	for _, c := range []struct{ procs, workers int }{{1, 4}, {runtime.NumCPU(), 8}} {
		text, raw, csv := render(c.procs, c.workers)
		if text != baseText {
			t.Errorf("procs=%d workers=%d: text report diverged from serial baseline", c.procs, c.workers)
		}
		if raw != baseJSON {
			t.Errorf("procs=%d workers=%d: JSON report diverged from serial baseline", c.procs, c.workers)
		}
		if csv != baseCSV {
			t.Errorf("procs=%d workers=%d: CSV diverged from serial baseline", c.procs, c.workers)
		}
	}
}

// TestShardJSONStableAcrossGOMAXPROCS extends the invariant to the on-disk
// shard format: the bytes a shard writes must not depend on scheduling,
// or CI's byte-identity merge checks would flake.
func TestShardJSONStableAcrossGOMAXPROCS(t *testing.T) {
	spec := Spec{
		Grid:    []NT{{5, 2}, {7, 3}},
		Seeds:   SeedRange{Count: 4},
		MaxTime: 2000,
		Check:   true,
		Shard:   Shard{Index: 1, Count: 2},
	}
	_, baseJSON := runAt(t, spec, 1, 1)
	_, parJSON := runAt(t, spec, runtime.NumCPU(), 8)
	if string(baseJSON) != string(parJSON) {
		t.Error("shard report JSON depends on GOMAXPROCS/worker count")
	}
}
