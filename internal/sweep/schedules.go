package sweep

import (
	"math/rand"
	"sort"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

// SlowKillDelay returns a schedule delay in the style of the paper's
// adversarial runs: messages get a deterministic pseudo-random delay in
// [1, 15] derived from (sender, receiver, send time, seed), except that
// death sentences ("j failed" addressed to j itself) for the listed
// victims are slowed to 150 ticks — long enough for a false detection to
// complete while its victim is still alive, which is what surfaces FS2
// violations.
func SlowKillDelay(seed int64, victims ...model.ProcID) sim.DelayFn {
	slow := make(map[model.ProcID]bool, len(victims))
	for _, p := range victims {
		slow[p] = true
	}
	return func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if p.Tag == core.TagSusp && p.Subject == to && slow[to] {
			return 150
		}
		return 1 + (at*7+int64(from)*13+int64(to)*5+seed)%15
	}
}

// ParkedHeadDelay returns the Appendix A.3 adversary's delay: every "you
// failed" message is parked forever (FIFO then parks everything queued
// behind it), and all other messages are delayed uniformly past the
// scripted suspicions.
func ParkedHeadDelay() sim.DelayFn {
	return func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if p.Tag == core.TagSusp && p.Subject == to {
			return -1
		}
		return 1000
	}
}

// Builtin returns the named built-in schedule. The built-ins parameterize
// themselves by the grid cell's (n, t) and by the seed, so one name spans
// the whole grid:
//
//   - "quiet": no injected faults.
//   - "false-suspicion": one erroneous suspicion of process 1, with the
//     kill path slowed so the detection visibly completes first.
//   - "crash": t genuine crashes of the highest-numbered processes,
//     each then suspected by process 1.
//   - "mutual": processes 1 and 2 suspect each other concurrently.
//   - "mixed": a seed-derived mixture of genuine crashes and false
//     suspicions (with slowed kill paths), a distinct scenario per seed.
//   - "park-ring": ring suspicions among the first t+1 processes with
//     every death sentence parked forever — the Appendix A.3 flavor.
func Builtin(name string) (Schedule, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}

// BuiltinNames lists the built-in schedule names.
func BuiltinNames() []string {
	var out []string
	for _, s := range Builtins() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Builtins returns every built-in schedule.
func Builtins() []Schedule {
	return []Schedule{
		{Name: "quiet"},
		{
			Name: "false-suspicion",
			Faults: func(nt NT, seed int64) []Fault {
				return []Fault{{Kind: FaultSuspect, At: 20, Proc: 2, Target: 1}}
			},
			Delay: func(nt NT, seed int64) sim.DelayFn {
				return SlowKillDelay(seed, 1)
			},
		},
		{
			Name: "crash",
			Faults: func(nt NT, seed int64) []Fault {
				var fs []Fault
				for i := 0; i < nt.T && i < nt.N-1; i++ {
					victim := model.ProcID(nt.N - i)
					fs = append(fs,
						Fault{Kind: FaultCrash, At: int64(2 + i), Proc: victim},
						Fault{Kind: FaultSuspect, At: int64(50 + 3*i), Proc: 1, Target: victim})
				}
				return fs
			},
		},
		{
			Name: "mutual",
			Faults: func(nt NT, seed int64) []Fault {
				return []Fault{
					{Kind: FaultSuspect, At: 20, Proc: 1, Target: 2},
					{Kind: FaultSuspect, At: 23, Proc: 2, Target: 1},
				}
			},
			Delay: func(nt NT, seed int64) sim.DelayFn {
				return SlowKillDelay(seed)
			},
		},
		{
			Name:   "mixed",
			Faults: mixedFaults,
			Delay: func(nt NT, seed int64) sim.DelayFn {
				// Slow every victim's kill path: mixedFaults picks its false
				// suspicions among 1..3.
				return SlowKillDelay(seed, 1, 2, 3)
			},
		},
		{
			Name: "park-ring",
			Faults: func(nt NT, seed int64) []Fault {
				k := nt.T + 1
				if k > nt.N {
					k = nt.N
				}
				var fs []Fault
				for i := 1; i <= k; i++ {
					target := model.ProcID(i%k + 1)
					fs = append(fs, Fault{Kind: FaultSuspect, At: int64(i), Proc: model.ProcID(i), Target: target})
				}
				return fs
			},
			Delay: func(nt NT, seed int64) sim.DelayFn {
				return ParkedHeadDelay()
			},
		},
	}
}

// mixedFaults derives a per-seed mixture: up to t total faults, split
// between genuine crashes of high-numbered processes and false suspicions
// of low-numbered ones. All randomness flows from the seed, so the
// schedule is deterministic per (nt, seed).
func mixedFaults(nt NT, seed int64) []Fault {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(nt.N)*31 + int64(nt.T)))
	budget := nt.T
	if budget < 1 {
		budget = 1
	}
	crashes := rng.Intn(budget)
	susps := budget - crashes
	var fs []Fault
	for i := 0; i < crashes && i < nt.N-1; i++ {
		victim := model.ProcID(nt.N - i)
		fs = append(fs, Fault{Kind: FaultCrash, At: int64(2 + i), Proc: victim})
		// A random low-numbered survivor notices the crash.
		accuser := model.ProcID(1 + rng.Intn(3))
		if int(accuser) > nt.N {
			accuser = 1
		}
		if accuser != victim {
			fs = append(fs, Fault{Kind: FaultSuspect, At: int64(40 + 5*i), Proc: accuser, Target: victim})
		}
	}
	for i := 0; i < susps; i++ {
		victim := model.ProcID(1 + i%3)
		var accuser model.ProcID
		if nt.N >= 5 {
			accuser = model.ProcID(4 + rng.Intn(nt.N-3))
		} else {
			accuser = model.ProcID(int(victim)%nt.N + 1)
		}
		if int(victim) > nt.N || int(accuser) > nt.N || victim == accuser {
			continue
		}
		fs = append(fs, Fault{Kind: FaultSuspect, At: int64(60 + 7*i), Proc: accuser, Target: victim})
	}
	return fs
}
