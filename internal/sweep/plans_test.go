package sweep

import (
	"reflect"
	"strings"
	"testing"

	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/reliable"
)

func plansByName(t *testing.T, names ...string) []netadv.Generator {
	t.Helper()
	var out []netadv.Generator
	for _, name := range names {
		g, ok := netadv.Builtin(name)
		if !ok {
			t.Fatalf("no built-in plan %q", name)
		}
		out = append(out, g)
	}
	return out
}

func TestPlansAxisExpansion(t *testing.T) {
	spec := Spec{
		Grid:      []NT{{5, 2}},
		Schedules: []Schedule{{Name: "a"}, {Name: "b"}},
		Plans:     plansByName(t, "split-brain", "flaky-quorum"),
	}
	cells := spec.Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	want := Cell{NT: NT{5, 2}, Protocol: 1, QuorumDelta: 0, Schedule: "a", Plan: "split-brain"}
	if cells[0] != want {
		t.Errorf("first cell = %+v, want %+v", cells[0], want)
	}
	if got := cells[0].String(); got != "n=5 t=2 proto=sfs sched=a plan=split-brain" {
		t.Errorf("cell string = %q", got)
	}
}

func TestValidateRejectsDuplicatePlans(t *testing.T) {
	spec := Spec{
		Grid:  []NT{{5, 2}},
		Plans: plansByName(t, "split-brain", "split-brain"),
	}
	if err := spec.withDefaults().Validate(); err == nil {
		t.Error("duplicate plan names accepted")
	}
	spec = Spec{
		Grid:  []NT{{5, 2}},
		Plans: []netadv.Generator{{Name: "half-built"}},
	}
	if err := spec.withDefaults().Validate(); err == nil {
		t.Error("named plan without Make accepted")
	}
	spec = Spec{
		Grid:  []NT{{5, 2}},
		Plans: []netadv.Generator{{Make: func(n, t int) netadv.Plan { return netadv.Plan{} }}},
	}
	if err := spec.withDefaults().Validate(); err == nil {
		t.Error("anonymous plan with Make accepted; its faults would run invisibly")
	}
}

// TestValidateRejectsPlanInvalidForGrid: a fixed (file-loaded) plan naming
// process ids outside some grid point must fail Spec.Validate with one
// clear error instead of panicking a worker goroutine mid-sweep.
func TestValidateRejectsPlanInvalidForGrid(t *testing.T) {
	plan := netadv.Plan{Name: "big-cluster-only", Rules: []netadv.Rule{
		{Cut: true, Links: netadv.LinkSet{Groups: [][]model.ProcID{{1, 2}, {7, 8}}}},
	}}
	spec := Spec{
		Grid:  []NT{{10, 3}, {5, 2}}, // valid for n=10, not for n=5
		Plans: []netadv.Generator{netadv.Fixed(plan)},
	}
	err := spec.withDefaults().Validate()
	if err == nil {
		t.Fatal("plan invalid at n=5 accepted")
	}
	if !strings.Contains(err.Error(), "big-cluster-only") || !strings.Contains(err.Error(), "n=5") {
		t.Errorf("error %q does not name the plan and the offending grid point", err)
	}
	// The same plan on the n=10 grid alone is fine.
	spec.Grid = []NT{{10, 3}}
	if _, err := Run(spec, Options{}); err != nil {
		t.Errorf("plan rejected on a grid it fits: %v", err)
	}
}

// TestSplitBrainStarvesMinorityQuorum runs the acceptance scenario: under a
// permanent split-brain partition, a suspicion raised on the minority side
// cannot assemble its quorum — the runs are flagged quorum-starved and the
// cut traffic shows up in the dropped tally.
func TestSplitBrainStarvesMinorityQuorum(t *testing.T) {
	spec := Spec{
		Grid: []NT{{5, 2}},
		Schedules: []Schedule{{
			Name: "minority-suspects",
			Faults: func(nt NT, seed int64) []Fault {
				// Process n (minority half) suspects process 1 after the cut.
				return []Fault{{Kind: FaultSuspect, At: 20, Proc: 5, Target: 1}}
			},
		}},
		Plans:   plansByName(t, "split-brain"),
		Seeds:   SeedRange{Count: 5},
		MaxTime: 2000,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &rep.Cells[0]
	if !c.MetricAll("quorum-starved") {
		t.Errorf("quorum-starved on %d/%d runs, want all: minimum quorum is 3 but the minority half has 2",
			c.Metrics["quorum-starved"], c.Runs)
	}
	if c.Dropped == 0 {
		t.Error("no dropped messages despite a permanent partition")
	}
	if c.Duplicated != 0 {
		t.Errorf("split-brain duplicated %d messages", c.Duplicated)
	}
}

// TestHealingPartitionUnstarves is the counterpart: the healing partition
// is lossy, so the once-only §5 broadcast starves even after the heal —
// unless the reliable-delivery layer retransmits it across the heal. The
// same suspicion is gridded with the layer off and on to show the contrast.
func TestHealingPartitionUnstarves(t *testing.T) {
	spec := Spec{
		Grid: []NT{{5, 2}},
		Schedules: []Schedule{{
			Name: "minority-suspects",
			Faults: func(nt NT, seed int64) []Fault {
				return []Fault{{Kind: FaultSuspect, At: 20, Proc: 5, Target: 1}}
			},
		}},
		Plans:    plansByName(t, "healing-partition"),
		Reliable: []reliable.Options{{}, {Enabled: true}},
		Seeds:    SeedRange{Count: 5},
		MaxTime:  2000,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bare, rel := &rep.Cells[0], &rep.Cells[1]
	if bare.Cell.Reliable || !rel.Cell.Reliable {
		t.Fatalf("cell order: got %v / %v, want bare then reliable", bare.Cell, rel.Cell)
	}
	if !bare.MetricAll("quorum-starved") {
		t.Errorf("without reliable delivery: quorum-starved on %d/%d runs, want all (the heal is lossy)",
			bare.Metrics["quorum-starved"], bare.Runs)
	}
	if !rel.MetricNone("quorum-starved") {
		t.Errorf("with reliable delivery: quorum-starved on %d/%d runs after the heal, want none",
			rel.Metrics["quorum-starved"], rel.Runs)
	}
	if rel.Retransmits == 0 {
		t.Error("reliable cell recovered the detection without retransmitting anything")
	}
	if bare.Retransmits != 0 {
		t.Errorf("bare cell reported %d retransmits", bare.Retransmits)
	}
}

// TestBufferingPartitionUnstarvesWithoutRetransmission: the buffering
// variant holds cross-half traffic instead of dropping it, so even the
// once-only broadcast completes after the heal with no reliable layer.
func TestBufferingPartitionUnstarvesWithoutRetransmission(t *testing.T) {
	spec := Spec{
		Grid: []NT{{5, 2}},
		Schedules: []Schedule{{
			Name: "minority-suspects",
			Faults: func(nt NT, seed int64) []Fault {
				return []Fault{{Kind: FaultSuspect, At: 20, Proc: 5, Target: 1}}
			},
		}},
		Plans:   plansByName(t, "buffering-partition"),
		Seeds:   SeedRange{Count: 5},
		MaxTime: 2000,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &rep.Cells[0]
	if !c.MetricNone("quorum-starved") {
		t.Errorf("quorum-starved on %d/%d runs under the buffering partition, want none",
			c.Metrics["quorum-starved"], c.Runs)
	}
}

// TestFlakyQuorumDropsAndStillCounts verifies probabilistic loss shows up
// in the dropped tally.
func TestFlakyQuorumDropsAndStillCounts(t *testing.T) {
	falseSusp, _ := Builtin("false-suspicion")
	spec := Spec{
		Grid:      []NT{{10, 3}},
		Schedules: []Schedule{falseSusp},
		Plans:     plansByName(t, "flaky-quorum"),
		Seeds:     SeedRange{Count: 6},
		MaxTime:   5000,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &rep.Cells[0]
	if c.Dropped == 0 {
		t.Error("flaky-quorum dropped nothing")
	}
	if _, ok := c.Metrics["quorum-starved"]; !ok {
		t.Error("quorum-starved diagnostic missing from a plan cell")
	}
}

// TestPlanSweepDeterministic verifies the acceptance requirement: identical
// seeds produce identical reports — including dropped/duplicated counts and
// the starvation diagnostic — independent of worker count.
func TestPlanSweepDeterministic(t *testing.T) {
	crash, _ := Builtin("crash")
	mutual, _ := Builtin("mutual")
	spec := Spec{
		Grid:      []NT{{5, 2}, {10, 3}},
		Schedules: []Schedule{crash, mutual},
		Plans:     plansByName(t, "split-brain", "flaky-quorum", "healing-partition", "isolated-minority"),
		Seeds:     SeedRange{Count: 4},
		MaxTime:   2000,
		Check:     true,
	}
	serial, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial.Workers, parallel.Workers = 0, 0
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("plan sweeps diverged across worker counts:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
	if serial.Runs != 2*2*4*4 {
		t.Errorf("runs = %d, want %d", serial.Runs, 2*2*4*4)
	}
	// The rendered report (what sfs-sweep prints) must also be byte-stable.
	if a, b := serial.String(), parallel.String(); a != b {
		t.Error("rendered reports differ")
	}
}
