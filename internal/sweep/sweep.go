// Package sweep is a parallel scenario-sweep engine: it expands a
// declarative grid of simulation scenarios — ranges over cluster size n,
// failure bound t, protocol variant, quorum sizing, fault-injection
// schedule, network fault plan, delay distribution, and seeds — into
// concrete deterministic runs, executes them on a worker pool, pipes every
// recorded history through the property checker, and aggregates per-cell
// results: verdict counts per property (FS1/FS2, sFS2a–d, Conditions 1–3,
// the Witness property), stop-reason and quiescence tallies, network-fault
// tallies (dropped/duplicated messages, quorum starvation), and run-length
// percentiles.
//
// Each simulated run is deterministic and self-contained (its own
// simulator, RNG, and handlers), so runs parallelize with no shared state;
// aggregation is order-independent, making a sweep's results (Report.Cells
// and Report.Runs — everything except the Workers bookkeeping field)
// identical no matter how many workers execute it.
//
// The unit of aggregation is the Cell: every combination of grid axes
// except the seed. A sweep of 4 (n,t) cells × 250 seeds is 1000 runs
// aggregated into 4 cells.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"failstop/internal/byz"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/fd"
	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/quorum"
	"failstop/internal/recovery"
	"failstop/internal/reliable"
	"failstop/internal/sim"
	"failstop/internal/topo"
)

// NT is one (cluster size, failure bound) grid point.
//
//sfs:wire
type NT struct {
	N int `json:"n"`
	T int `json:"t"`
}

func (nt NT) String() string { return fmt.Sprintf("n=%d t=%d", nt.N, nt.T) }

// SeedRange is the seed axis: Count consecutive seeds starting at Start.
type SeedRange struct {
	Start int64
	Count int
}

// Shard selects one deterministic slice of the (cell, seed) job stream, so
// one grid can fan out across processes or machines: run the same Spec
// with Shard{i, k} for every i in 0..k-1 — anywhere, in any order — and
// recombine the per-shard reports with Merge into exactly the report the
// unsharded sweep produces. The global job stream is interleaved
// round-robin (global job index mod Count), so shards stay balanced within
// every cell. The zero value runs everything.
//
//sfs:wire
type Shard struct {
	// Index is this shard's number, 0 <= Index < Count.
	Index int `json:"index"`
	// Count is the total number of shards; 0 or 1 means unsharded.
	Count int `json:"count"`
}

// FaultKind distinguishes the two injectable faults.
type FaultKind int

const (
	// FaultCrash: Proc crashes genuinely at At.
	FaultCrash FaultKind = iota + 1
	// FaultSuspect: Proc begins the detection protocol for Target at At
	// (a spontaneous — possibly erroneous — suspicion).
	FaultSuspect
)

// Fault is one scripted injection.
type Fault struct {
	Kind   FaultKind
	At     int64
	Proc   model.ProcID
	Target model.ProcID // FaultSuspect only
}

// Schedule is one named fault-injection schedule, instantiated per grid
// cell and seed. Faults may be nil (a quiet run). Delay, when non-nil,
// overrides the spec-level delay distribution — schedules that need an
// adversarial delay coupled to their injections (parked kill paths, delay
// spikes) supply it here.
//
// Faults and Delay (like RunnerFn and ObserveFn) are called concurrently
// from worker goroutines and must be goroutine-safe: derive any randomness
// from the passed seed (a fresh rand.Rand per call), never from shared
// mutable state.
type Schedule struct {
	Name   string
	Faults func(nt NT, seed int64) []Fault
	Delay  func(nt NT, seed int64) sim.DelayFn
}

// Cell identifies one aggregation cell: every grid axis except the seed.
//
//sfs:wire
type Cell struct {
	NT       NT            `json:"nt"`
	Protocol core.Protocol `json:"protocol"`
	// QuorumDelta offsets the detector quorum size from the Theorem 7
	// minimum quorum.MinSize(N, T); 0 is the protocol default.
	QuorumDelta int `json:"quorum_delta"`
	// Schedule is the fault schedule's name.
	Schedule string `json:"schedule"`
	// Plan is the network fault plan's name; "" means a fault-free network.
	Plan string `json:"plan"`
	// Topo is the communication topology's compact name (topo.Spec.Name:
	// "gossip:8", "hier:4x8"); "" means the paper's complete graph.
	Topo string `json:"topo,omitempty"`
	// Reliable reports whether the cell runs with the reliable-delivery
	// layer (ack + retransmission) interposed under the protocol.
	Reliable bool `json:"reliable"`
	// Recovery is the crash-recovery mode the cell's process-fault rules
	// run under (off: environment crashes are terminal; amnesia/durable:
	// crashed processes restart per the plan). Off for cells without
	// process faults.
	Recovery recovery.Mode `json:"recovery,omitempty"`
	// Byzantine reports whether the cell runs with the validation
	// interposer (per-sender MACs, echo quorums, replay watermark) under
	// the protocol, masking misbehavior into crashes.
	Byzantine bool `json:"byzantine,omitempty"`
}

// String renders the cell identity compactly.
func (c Cell) String() string {
	s := fmt.Sprintf("%s proto=%v", c.NT, c.Protocol)
	if c.QuorumDelta != 0 {
		s += fmt.Sprintf(" q%+d", c.QuorumDelta)
	}
	if c.Schedule != "" {
		s += " sched=" + c.Schedule
	}
	if c.Plan != "" {
		s += " plan=" + c.Plan
	}
	if c.Topo != "" {
		s += " topo=" + c.Topo
	}
	if c.Reliable {
		s += " rel"
	}
	if c.Recovery != recovery.Off {
		s += " rec=" + c.Recovery.String()
	}
	if c.Byzantine {
		s += " byz"
	}
	return s
}

// RunOutput is what one scenario run produced. Custom runners may leave
// Cluster nil; Metrics carries named boolean outcomes to aggregate beyond
// the checker's verdicts; Obs carries the run's observability counters
// (the default runner merges the simulator's snapshot with the fault
// plane's, when one was active) to total per cell.
type RunOutput struct {
	Result  *sim.Result
	Cluster *cluster.Cluster
	Metrics map[string]bool
	Obs     obs.Metrics
}

// RunnerFn executes one scenario, replacing the default cluster
// construction entirely (for sweeps over pre-packaged adversaries).
// Called concurrently from worker goroutines; must be goroutine-safe.
type RunnerFn func(cell Cell, seed int64) RunOutput

// ObserveFn inspects a finished run (including its Cluster, when the
// default runner produced one) and returns named boolean outcomes to
// aggregate into CellResult.Metrics. Called concurrently from worker
// goroutines; must be goroutine-safe.
type ObserveFn func(cell Cell, seed int64, out RunOutput) map[string]bool

// Spec is the declarative scenario grid. Cells are the cross product
// Grid × Protocols × QuorumDeltas × Schedules; each cell runs once per
// seed in Seeds.
type Spec struct {
	// Grid lists the (n, t) points. Required.
	Grid []NT
	// Protocols lists the protocol variants. Default: SimulatedFailStop.
	Protocols []core.Protocol
	// QuorumDeltas lists offsets from the minimum quorum size. Default: {0}.
	QuorumDeltas []int
	// Schedules lists the fault schedules. Default: one quiet schedule.
	Schedules []Schedule
	// Plans lists the network fault plans (netadv generators, instantiated
	// per grid cell and seed). Default: one fault-free network. Runs with a
	// non-empty plan additionally aggregate dropped/duplicated counts and a
	// quorum-starvation diagnostic (a live process left with a detection it
	// began but could not complete).
	Plans []netadv.Generator
	// Topologies lists the communication topologies to grid over (see
	// internal/topo): the complete graph (the zero topo.Spec), gossip
	// fan-out graphs, rack/region hierarchies. Default: one complete-graph
	// entry. Under a partial topology every process broadcasts to its
	// neighborhood only and completes quorums over that neighborhood's
	// pool, which is what keeps N in the 10⁴–10⁶ range simulable.
	Topologies []topo.Spec
	// Reliable lists the reliable-delivery configurations to grid over —
	// typically a disabled zero value next to an enabled one, so every
	// other cell runs with and without retransmission. Default: one
	// disabled entry.
	Reliable []reliable.Options
	// Recovery lists the crash-recovery modes to grid over; meaningful
	// only alongside plans with process-fault rules (which drive crashes
	// and restarts). Default: {recovery.Off}. Plans whose process faults
	// recur forever require MaxTime when any listed mode is not Off.
	Recovery []recovery.Mode
	// Byzantine lists the validation-interposer configurations to grid
	// over — typically a disabled zero value next to an enabled one, so
	// every other cell runs with and without misbehavior masking.
	// Default: one disabled entry. Cells with the interposer additionally
	// aggregate conviction and masked-frame counts.
	Byzantine []byz.Options
	// Seeds is the seed range. Default: {Start: 0, Count: 1}.
	Seeds SeedRange
	// Shard restricts execution to one deterministic 1/Count slice of the
	// (cell, seed) job stream (see Shard). The report still lists every
	// cell — cells whose jobs all fall on other shards aggregate zero runs
	// — so shard reports merge positionally.
	Shard Shard

	// MinDelay/MaxDelay bound the default uniform message delay, as in
	// sim.Config. A Schedule.Delay overrides both.
	MinDelay, MaxDelay int64
	// MaxTime and MaxEvents bound each run, as in sim.Config.
	MaxTime   int64
	MaxEvents int

	// HeartbeatEvery, when positive, attaches the fd heartbeat layer to
	// every process (interval in ticks); HeartbeatTimeout is its suspicion
	// timeout. Heartbeats re-arm forever, so MaxTime must be set. Runs with
	// heartbeats additionally aggregate a false-suspicion metric: a run in
	// which some process suspected a target that had not crashed (yet) —
	// the Theorem 1 timeout dilemma made countable under real loss.
	HeartbeatEvery   int64
	HeartbeatTimeout int64

	// Timeline, when true, attaches a per-tick timeseries sampler to every
	// run (in-flight messages, link backlog, suspicion count) and
	// aggregates each series' per-run peak into the cell's Timeseries
	// summaries. TimelineEvery is the sampling cadence in virtual-time
	// ticks; 0 means every tick.
	Timeline      bool
	TimelineEvery int64

	// Check pipes every quiescent run's history through checker.All and
	// aggregates per-property verdict counts. Only quiescent runs are
	// checked: the checker's liveness verdicts (FS1, sFS2a, Condition 1)
	// are sound only at quiescence.
	Check bool
	// Runner replaces the default cluster construction when non-nil.
	Runner RunnerFn
	// Observe adds custom named outcomes to each run when non-nil.
	Observe ObserveFn
}

// Options controls execution, not scenario content.
type Options struct {
	// Workers sizes the worker pool. 0 means GOMAXPROCS; 1 is the serial
	// baseline.
	Workers int
	// Progress, when non-nil, receives periodic per-worker progress and
	// throughput lines while the sweep runs (cmd/sfs-sweep points it at
	// stderr under -progress). Progress output is execution bookkeeping —
	// wall-clock pacing, worker attribution — and never reaches the
	// report, so enabling it cannot perturb results.
	Progress io.Writer
	// ProgressEvery is the reporting interval; 0 means one second.
	ProgressEvery time.Duration
}

func (s Spec) withDefaults() Spec {
	if len(s.Protocols) == 0 {
		s.Protocols = []core.Protocol{core.SimulatedFailStop}
	}
	if len(s.QuorumDeltas) == 0 {
		s.QuorumDeltas = []int{0}
	}
	if len(s.Schedules) == 0 {
		s.Schedules = []Schedule{{Name: "quiet"}}
	}
	if len(s.Plans) == 0 {
		s.Plans = []netadv.Generator{{}}
	}
	if len(s.Topologies) == 0 {
		s.Topologies = []topo.Spec{{}}
	}
	if len(s.Reliable) == 0 {
		s.Reliable = []reliable.Options{{}}
	}
	if len(s.Recovery) == 0 {
		s.Recovery = []recovery.Mode{recovery.Off}
	}
	if len(s.Byzantine) == 0 {
		s.Byzantine = []byz.Options{{}}
	}
	if s.Seeds.Count == 0 {
		s.Seeds.Count = 1
	}
	if s.Shard.Count == 0 {
		s.Shard.Count = 1
	}
	return s
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	if len(s.Grid) == 0 {
		return fmt.Errorf("sweep: Spec.Grid is empty")
	}
	for _, nt := range s.Grid {
		if nt.N < 2 || nt.T < 1 {
			return fmt.Errorf("sweep: invalid grid point %v (need n >= 2, t >= 1)", nt)
		}
	}
	if s.Seeds.Count < 0 {
		return fmt.Errorf("sweep: negative seed count %d", s.Seeds.Count)
	}
	if s.Shard.Count < 0 {
		return fmt.Errorf("sweep: negative shard count %d", s.Shard.Count)
	}
	if s.Shard.Count > 0 && (s.Shard.Index < 0 || s.Shard.Index >= s.Shard.Count) {
		return fmt.Errorf("sweep: shard index %d out of range [0, %d)", s.Shard.Index, s.Shard.Count)
	}
	seen := map[string]bool{}
	for _, sc := range s.Schedules {
		if seen[sc.Name] {
			return fmt.Errorf("sweep: duplicate schedule name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	seenPlan := map[string]bool{}
	for _, pg := range s.Plans {
		if seenPlan[pg.Name] {
			return fmt.Errorf("sweep: duplicate plan name %q", pg.Name)
		}
		seenPlan[pg.Name] = true
		if pg.Name != "" && pg.Make == nil {
			return fmt.Errorf("sweep: plan %q has no Make function", pg.Name)
		}
		if pg.Name == "" && pg.Make != nil {
			// Plan names key cell identity and the report's fault columns;
			// an anonymous plan would run its faults invisibly.
			return fmt.Errorf("sweep: plan with a Make function needs a name")
		}
		if pg.Make == nil {
			continue
		}
		// Instantiate the plan at every grid point up front: a plan that
		// does not fit some cell (file-loaded plans name concrete process
		// ids) must fail the sweep with one clear error, not panic a worker
		// goroutine mid-run.
		for _, nt := range s.Grid {
			p := pg.Make(nt.N, nt.T)
			if err := p.Validate(nt.N); err != nil {
				return fmt.Errorf("sweep: plan %q at %v: %w", pg.Name, nt, err)
			}
			if p.UnboundedProcs() && s.MaxTime == 0 {
				for _, m := range s.Recovery {
					if m != recovery.Off {
						// Under Off the first crash window is terminal, so the
						// run still quiesces; a recovering mode restarts the
						// process forever.
						return fmt.Errorf("sweep: plan %q restarts processes forever under recovery mode %v; set Spec.MaxTime so runs terminate", pg.Name, m)
					}
				}
			}
		}
	}
	seenTopo := map[string]bool{}
	for _, tp := range s.Topologies {
		name := tp.Name()
		if seenTopo[name] {
			return fmt.Errorf("sweep: duplicate topology %q", name)
		}
		seenTopo[name] = true
		// Resolve the topology at every grid point up front: a gossip
		// fanout or hierarchy shape that cannot fit some cell's n must
		// fail the sweep with one clear error, not panic a worker.
		for _, nt := range s.Grid {
			if _, err := topo.New(tp, nt.N); err != nil {
				return fmt.Errorf("sweep: topology %q at %v: %w", name, nt, err)
			}
		}
	}
	for i, bo := range s.Byzantine {
		if err := bo.Validate(); err != nil {
			return fmt.Errorf("sweep: Byzantine[%d]: %w", i, err)
		}
	}
	for i, ro := range s.Reliable {
		if err := ro.Validate(); err != nil {
			return fmt.Errorf("sweep: Reliable[%d]: %w", i, err)
		}
		if ro.Enabled && ro.MaxRetries == 0 && s.MaxTime == 0 {
			// A stubborn link to a crashed peer retransmits forever.
			return fmt.Errorf("sweep: Reliable[%d] retries forever (MaxRetries=0); set Spec.MaxTime so runs terminate", i)
		}
	}
	if s.HeartbeatEvery > 0 && s.MaxTime == 0 {
		return fmt.Errorf("sweep: HeartbeatEvery = %d requires MaxTime > 0 (heartbeats re-arm forever)", s.HeartbeatEvery)
	}
	if s.HeartbeatEvery > 0 && s.HeartbeatTimeout <= 0 {
		// fd.Heartbeat with Timeout 0 is a pure sender that never suspects:
		// the false-suspicion column would read 0/N no matter the loss.
		return fmt.Errorf("sweep: HeartbeatEvery = %d requires HeartbeatTimeout > 0 (a timeout-less detector never suspects, so the false-suspicion metric would be vacuous)", s.HeartbeatEvery)
	}
	return nil
}

// cellSpec pairs a Cell with its resolved schedule, plan generator,
// topology, and reliable-delivery configuration.
type cellSpec struct {
	cell   Cell
	sched  Schedule
	plan   netadv.Generator
	top    *topo.Topology // nil for the complete graph
	links  int64          // directed link count of the cell's topology
	fanout int            // gossip sample fanout; 0 for the other kinds
	rel    reliable.Options
	byz    byz.Options
}

// Cells expands the grid axes (everything but the seed) in deterministic
// order: grid point, then protocol, then quorum delta, then schedule.
func (s Spec) Cells() []Cell {
	var out []Cell
	for _, cs := range s.withDefaults().cells() {
		out = append(out, cs.cell)
	}
	return out
}

func (s Spec) cells() []cellSpec {
	var out []cellSpec
	for _, nt := range s.Grid {
		// Resolve each topology once per grid point and share the instance
		// across the point's cells and all their runs (a Topology is
		// immutable): gossip adjacency is O(N·Fanout) to materialize, which
		// must not be paid per seed.
		tops := make([]*topo.Topology, len(s.Topologies))
		for i, tp := range s.Topologies {
			if !tp.IsFull() {
				tops[i] = topo.MustNew(tp, nt.N) // Validate resolved it already
			}
		}
		for _, proto := range s.Protocols {
			for _, qd := range s.QuorumDeltas {
				for _, sched := range s.Schedules {
					for _, pg := range s.Plans {
						for ti, tp := range s.Topologies {
							topName := ""
							links := int64(nt.N) * int64(nt.N-1)
							if tops[ti] != nil {
								topName = tp.Name()
								links = tops[ti].Links()
							}
							fanout := tp.Fanout
							for _, ro := range s.Reliable {
								for _, rm := range s.Recovery {
									for _, bo := range s.Byzantine {
										out = append(out, cellSpec{
											cell: Cell{
												NT: nt, Protocol: proto, QuorumDelta: qd,
												Schedule: sched.Name, Plan: pg.Name,
												Topo:      topName,
												Reliable:  ro.Enabled,
												Recovery:  rm,
												Byzantine: bo.Enabled,
											},
											sched:  sched,
											plan:   pg,
											top:    tops[ti],
											links:  links,
											fanout: fanout,
											rel:    ro,
											byz:    bo,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Runs returns the number of scenario runs the spec expands to. When the
// spec is sharded, that is this shard's slice of the stream, not the whole
// grid.
func (s Spec) Runs() int {
	s = s.withDefaults()
	total := len(s.cells()) * s.Seeds.Count
	if s.Shard.Count <= 1 {
		return total
	}
	n := total / s.Shard.Count
	if s.Shard.Index < total%s.Shard.Count {
		n++
	}
	return n
}

// forEachJob walks this shard's slice of the (cell, seed) job stream in
// deterministic order: cells in cells() order, seeds ascending within each
// cell, keeping every job whose global stream index is congruent to
// Shard.Index mod Shard.Count. Disjointness and exhaustiveness across the
// k shards of a stream follow directly from the residue classes mod k.
// The spec must already have defaults applied.
func (s Spec) forEachJob(numCells int, emit func(cellIdx int, seed int64)) {
	g := 0
	for idx := 0; idx < numCells; idx++ {
		for i := 0; i < s.Seeds.Count; i++ {
			if g%s.Shard.Count == s.Shard.Index {
				emit(idx, s.Seeds.Start+int64(i))
			}
			g++
		}
	}
}

// defaultRun builds and runs one scenario with the standard cluster stack.
func defaultRun(spec Spec, cs cellSpec, seed int64) RunOutput {
	cell := cs.cell
	var delay sim.DelayFn
	if cs.sched.Delay != nil {
		delay = cs.sched.Delay(cell.NT, seed)
	}
	var link node.LinkFn
	var plane *netadv.Plane
	var lifetimes []recovery.Lifetime
	if cs.plan.Make != nil {
		pl := cs.plan.Make(cell.NT.N, cell.NT.T)
		plane = netadv.NewPlane(pl, cell.NT.N, seed)
		link = plane.Decide
		lifetimes = pl.Lifetimes()
	}
	qsize := 0
	if cell.QuorumDelta != 0 {
		qsize = quorum.MinSize(cell.NT.N, cell.NT.T) + cell.QuorumDelta
		if qsize < 1 {
			qsize = 1
		}
	}
	var timeline *obs.Timeline
	if spec.Timeline {
		timeline = obs.NewTimeline(spec.TimelineEvery, 0)
	}
	co := cluster.Options{
		Sim: sim.Config{
			N: cell.NT.N, Seed: seed,
			MinDelay: spec.MinDelay, MaxDelay: spec.MaxDelay,
			Delay: delay, Link: link,
			MaxTime: spec.MaxTime, MaxEvents: spec.MaxEvents,
			Timeline:  timeline,
			Lifetimes: lifetimes, Recovery: cell.Recovery,
		},
		Det: core.Config{
			N: cell.NT.N, T: cell.NT.T,
			Protocol: cell.Protocol, QuorumSize: qsize,
			Topology: cs.top,
		},
		Reliable:  cs.rel,
		Byzantine: cs.byz,
	}
	if spec.HeartbeatEvery > 0 {
		co.FD = func(model.ProcID) core.Component {
			return &fd.Heartbeat{Interval: spec.HeartbeatEvery, Timeout: spec.HeartbeatTimeout}
		}
	}
	c := cluster.New(co)
	if cs.sched.Faults != nil {
		for _, f := range cs.sched.Faults(cell.NT, seed) {
			switch f.Kind {
			case FaultCrash:
				c.CrashAt(f.At, f.Proc)
			case FaultSuspect:
				c.SuspectAt(f.At, f.Proc, f.Target)
			}
		}
	}
	out := RunOutput{Result: c.Run(), Cluster: c}
	out.Obs = out.Result.Metrics
	if plane != nil {
		out.Obs = obs.Merge(out.Obs, plane.Metrics())
	}
	if cs.plan.Make != nil || spec.HeartbeatEvery > 0 {
		out.Metrics = map[string]bool{}
	}
	if cs.plan.Make != nil {
		// Quorum-starvation diagnostic: a live process began a detection the
		// (faulty) network never let it complete — the liveness failure mode
		// partitions and lossy links induce in the §5 protocol.
		out.Metrics["quorum-starved"] = quorumStarved(c)
	}
	if spec.HeartbeatEvery > 0 {
		// False-suspicion diagnostic: a timeout fired on a process that had
		// not crashed (Theorem 1's dilemma — under loss, every finite
		// timeout eventually accuses the living).
		out.Metrics["false-suspicion"] = falseSuspicion(out.Result.History)
	}
	return out
}

// falseSuspicion reports whether the history contains a suspicion of a
// process that had not crashed when the suspicion was raised: the target
// either never crashes, or its crash appears later in the history (a
// genuine post-crash timeout suspicion orders the other way).
func falseSuspicion(h model.History) bool {
	for idx, e := range h {
		if e.Kind == model.KindInternal && e.Tag == "suspect" {
			if ci := h.CrashIndex(e.Target); ci < 0 || ci > idx {
				return true
			}
		}
	}
	return false
}

// quorumStarved reports whether any live process of the finished cluster is
// stuck mid-detection: it suspected some target (broadcast sent) but the
// quorum condition never let failed_i(j) execute. Detecting walks the
// process's suspicion set, not 1..N, so the scan is O(N + suspicions) —
// what keeps the diagnostic affordable at N=10⁴ and beyond.
func quorumStarved(c *cluster.Cluster) bool {
	for p := 1; p <= c.N(); p++ {
		d := c.Detectors[p]
		if !d.Crashed() && d.Detecting() {
			return true
		}
	}
	return false
}

// runRecord is one run's contribution to its cell's aggregate.
type runRecord struct {
	cellIdx     int
	stop        sim.StopReason
	quiescent   bool
	blocked     bool
	dropped     int
	duplicated  int
	retransmits int
	ackedDups   int
	planCrashes int
	restarts    int
	recovered   int
	byzDetected int
	byzMasked   int
	corrupted   int
	equivocated int
	replayed    int
	events      float64
	endTime     float64
	verdicts    []checker.Verdict // nil when unchecked
	metrics     map[string]bool
	obs         obs.Metrics
	peaks       []obs.TimelineSeries // run timeline, reduced per-series to peaks by the accumulator
}

// Run expands the spec and executes every scenario (this shard's slice,
// when Spec.Shard is set) on a pool of opts.Workers workers, returning the
// aggregated report. The report is independent of worker count and
// scheduling order.
//
// Aggregation streams: each worker folds every run it executes straight
// into its own accumulator array, with no cross-goroutine record traffic;
// the per-worker arrays merge after the pool drains. Merging is
// order-independent — counters add commutatively and run-length samples
// are sorted at finalization — which is what keeps the report identical
// across worker counts.
func Run(spec Spec, opts Options) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := spec.cells()

	type job struct {
		cellIdx int
		seed    int64
	}
	jobs := make(chan job, workers)

	// Per-cell sample slices are sized for an even split of the seed axis
	// over the pool; lazy creation keeps a worker from allocating
	// accumulators for cells the scheduler (or the shard filter) never
	// hands it.
	sampleHint := spec.Seeds.Count/workers + 1
	perWorker := make([][]*accumulator, workers)
	// done[w] counts worker w's completed runs; the progress reporter (when
	// enabled) reads them concurrently, so they are atomic counters. The
	// counts feed stderr only, never the report.
	done := make([]obs.Counter, workers)
	stopProgress := startProgress(opts, spec.Runs(), done)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mine := make([]*accumulator, len(cells))
		perWorker[w] = mine
		mydone := &done[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				rec := execute(spec, cells[j.cellIdx], j.cellIdx, j.seed)
				a := mine[j.cellIdx]
				if a == nil {
					cs := cells[j.cellIdx]
					a = newAccumulator(cs.cell, cs.links, cs.fanout, sampleHint)
					mine[j.cellIdx] = a
				}
				a.add(rec)
				mydone.Inc()
			}
		}()
	}
	spec.forEachJob(len(cells), func(cellIdx int, seed int64) {
		jobs <- job{cellIdx: cellIdx, seed: seed}
	})
	close(jobs)
	wg.Wait()
	stopProgress()

	// Merge worker arrays in worker order. Any fixed order yields the same
	// report; fixing one anyway keeps the merge itself deterministic.
	acc := newAccumulators(cells)
	for _, mine := range perWorker {
		for i, a := range mine {
			if a != nil {
				acc[i].merge(a)
			}
		}
	}
	rep := &Report{Shard: spec.Shard, Workers: workers}
	rep.Cells = make([]CellResult, 0, len(acc))
	for _, a := range acc {
		rep.Cells = append(rep.Cells, a.result())
		rep.Runs += a.runs
	}
	return rep, nil
}

// startProgress launches the progress reporter when opts.Progress is set
// and returns a function that stops it (after one final line). The
// reporter is the one wall-clock consumer in this package: it paces and
// timestamps stderr lines, and nothing it reads or writes can reach the
// report, so the determinism contract is untouched.
func startProgress(opts Options, total int, done []obs.Counter) (stop func()) {
	if opts.Progress == nil {
		return func() {}
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = time.Second
	}
	//sfs:allow detwallclock progress throughput needs a wall-clock epoch; output is stderr bookkeeping, never the report
	start := time.Now()
	report := func() {
		var sum int64
		var b []byte
		for w := range done {
			n := done[w].Value()
			sum += n
			b = fmt.Appendf(b, " w%d=%d", w, n)
		}
		//sfs:allow detwallclock progress throughput divides by wall-clock elapsed; output is stderr bookkeeping, never the report
		elapsed := time.Since(start).Seconds()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(sum) / elapsed
		}
		fmt.Fprintf(opts.Progress, "sweep: %d/%d runs, %.1f runs/s,%s\n", sum, total, rate, b)
	}
	//sfs:allow detwallclock progress pacing runs on real time; output is stderr bookkeeping, never the report
	tick := time.NewTicker(every)
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				report()
			}
		}
	}()
	return func() {
		tick.Stop()
		close(quit)
		<-finished
		report()
	}
}

// execute runs one scenario and reduces it to its aggregate contribution.
func execute(spec Spec, cs cellSpec, cellIdx int, seed int64) runRecord {
	var out RunOutput
	if spec.Runner != nil {
		out = spec.Runner(cs.cell, seed)
	} else {
		out = defaultRun(spec, cs, seed)
	}
	res := out.Result
	rec := runRecord{
		cellIdx:     cellIdx,
		stop:        res.Stop,
		quiescent:   res.Quiescent(),
		dropped:     res.Dropped,
		duplicated:  res.Duplicated,
		retransmits: res.Retransmits,
		ackedDups:   res.AckedDuplicates,
		planCrashes: res.PlanCrashes,
		restarts:    res.Restarts,
		recovered:   res.Recovered,
		byzDetected: res.ByzDetected,
		byzMasked:   res.ByzMasked,
		corrupted:   obsCounter(out.Obs, "plane_byz_corrupted_total"),
		equivocated: obsCounter(out.Obs, "plane_byz_equivocated_total"),
		replayed:    obsCounter(out.Obs, "plane_byz_replayed_total"),
		events:      float64(len(res.History)),
		endTime:     float64(res.EndTime),
		metrics:     out.Metrics,
		obs:         out.Obs,
		peaks:       res.Timeline,
	}
	rec.blocked = res.BlockedLive()
	if spec.Check && rec.quiescent {
		rec.verdicts = checker.All(res.History, core.TagSusp, cs.cell.NT.T)
	}
	if spec.Observe != nil {
		extra := spec.Observe(cs.cell, seed, out)
		if rec.metrics == nil {
			rec.metrics = extra
		} else {
			merged := make(map[string]bool, len(rec.metrics)+len(extra))
			//sfs:allow detmaprange map-to-map copy; insertion order is invisible
			for k, v := range rec.metrics {
				merged[k] = v
			}
			//sfs:allow detmaprange map-to-map copy; Observe overrides defaults regardless of order
			for k, v := range extra {
				merged[k] = v
			}
			rec.metrics = merged
		}
	}
	return rec
}

// obsCounter returns the value of the named counter in ms, or 0 when the
// run's registry never registered it (e.g. plans without Byzantine rules).
func obsCounter(ms obs.Metrics, name string) int {
	for _, m := range ms {
		if m.Name == name {
			return int(m.Value)
		}
	}
	return 0
}

// metricNames returns the sorted union of metric names in ms.
func metricNames[V any](ms ...map[string]V) []string {
	set := map[string]bool{}
	for _, m := range ms {
		//sfs:allow detmaprange set union; the set is drained into a sorted slice below
		for k := range m {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
