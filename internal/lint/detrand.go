package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDetRand enforces the two randomness rules. First, math/rand (and
// math/rand/v2) package-level functions draw from the process-global,
// auto-seeded source — nondeterministic across runs — and are forbidden in
// every package, wall-clock ones included (the live runtime must reproduce
// fates from its seed too). Second, in deterministic packages a constructed
// source must actually derive from the spec/plan seed: rand.NewSource(42)
// pins every "random" sweep to one schedule, and seeding from the clock is
// the global source with extra steps. Both patterns are flagged; the seed
// must mention at least one non-constant value and must not call the clock.
var AnalyzerDetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand global-state functions everywhere and non-seed-derived rand sources in deterministic packages",
	Run:  runDetRand,
}

// randConstructors are the math/rand package-level functions that build
// explicit sources/generators rather than touching the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on *rand.Rand are seed-scoped
			}
			if !randConstructors[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"rand.%s uses the process-global random source; thread a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead", fn.Name())
			}
			return true
		})
		if pass.Profile == Deterministic {
			checkSourceCalls(pass, file)
		}
	}
}

// checkSourceCalls inspects rand.NewSource/NewPCG call arguments in
// deterministic packages: a constant seed or a clock-derived seed defeats
// the spec/plan seed threading.
func checkSourceCalls(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if (path != "math/rand" && path != "math/rand/v2") || (fn.Name() != "NewSource" && fn.Name() != "NewPCG") {
			return true
		}
		constant := len(call.Args) > 0
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; !ok || tv.Value == nil {
				constant = false
			}
		}
		if constant {
			pass.Reportf(call.Pos(),
				"rand source seeded with a constant; derive the seed from the spec/plan seed so runs stay a function of (spec, seed)")
			return true
		}
		for _, arg := range call.Args {
			if clockCall := findWallClockCall(pass, arg); clockCall != nil {
				pass.Reportf(clockCall.Pos(),
					"rand source seeded from the wall clock; derive the seed from the spec/plan seed instead")
			}
		}
		return true
	})
}

// findWallClockCall returns a call to a wall-clock time function inside
// expr, or nil.
func findWallClockCall(pass *Pass, expr ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "time" && (wallClockFuncs[fn.Name()] || fn.Name() == "UnixNano" || fn.Name() == "Unix") {
			if found == nil {
				found = sel
			}
			return false
		}
		return true
	})
	return found
}
