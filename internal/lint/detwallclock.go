package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDetWallClock forbids reading or waiting on the wall clock. In a
// deterministic package a single time.Now() makes the run a function of the
// host scheduler instead of (spec, seed); every finding there needs a
// per-site `//sfs:allow detwallclock <reason>`. Wall-clock packages (the
// live runtime, examples, commands) legitimately run on real time, but must
// say so: one file-level allow in the file header covers the file.
var AnalyzerDetWallClock = &Analyzer{
	Name: "detwallclock",
	Doc:  "forbid time.Now/Since/Sleep/After and friends outside annotated wall-clock files",
	Run:  runDetWallClock,
}

// wallClockFuncs are the package-level functions of time that read the
// clock or block on it. Pure data constructors (time.Duration arithmetic,
// time.Date, time.Unix) are untouched.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

func runDetWallClock(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; %s", fn.Name(), wallClockHint(pass.Profile))
			return true
		})
	}
}

func wallClockHint(p Profile) string {
	if p == Deterministic {
		return "deterministic packages must take time from the simulator — derive it from the spec, or annotate this site with //sfs:allow detwallclock <reason>"
	}
	return "declare this file wall-clock with a file-level //sfs:allow detwallclock <reason> in the file header"
}
