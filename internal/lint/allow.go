package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// An allow annotation suppresses findings, and is itself validated:
//
//	//sfs:allow <analyzer> <reason>
//
// Placed at the end of a line or on its own line directly above the
// offending statement, it suppresses that analyzer's findings on its own
// line and the next. Placed in the file header — between the package
// clause and the first declaration — it is file-scoped, permitted only for
// detwallclock in wall-clock packages, where a file legitimately built on
// real time would otherwise need one annotation per call site.
//
// The driver checks every annotation: the analyzer name must exist, the
// reason must be non-empty, and the allow must actually suppress at least
// one finding — a stale allow is a finding of its own, so suppressions
// cannot outlive the hazard they excuse.
const allowPrefix = "//sfs:allow"

type allow struct {
	pos      token.Pos
	line     int
	analyzer string
	reason   string
	fileWide bool // in the file header: applies to the whole file
	used     bool
}

// parseAllows extracts the allow annotations of one file. An annotation in
// the file header (before the first declaration) is file-scoped.
func parseAllows(file *ast.File) []*allow {
	var out []*allow
	firstDecl := int(^uint(0) >> 1) // max int: a file with no decls is all header
	if len(file.Decls) > 0 {
		firstDecl = fset.Position(file.Decls[0].Pos()).Line
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			a := &allow{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			a.fileWide = a.line < firstDecl
			fields := strings.Fields(text)
			if len(fields) > 0 {
				a.analyzer = fields[0]
				a.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, a)
		}
	}
	return out
}

// applyAllows filters the package's diagnostics through its allow
// annotations and appends the annotation-validation findings (reported
// under the pseudo-analyzer name "sfs-allow").
func applyAllows(pkg *Package, profile Profile, diags []Diagnostic, known map[string]bool) []Diagnostic {
	type fileAllows struct {
		allows []*allow
	}
	byFile := map[*token.File]*fileAllows{}
	var order []*token.File // deterministic validation order
	for _, f := range pkg.Files {
		tf := fset.File(f.Pos())
		byFile[tf] = &fileAllows{allows: parseAllows(f)}
		order = append(order, tf)
	}

	var kept []Diagnostic
	for _, d := range diags {
		tf := fset.File(d.Pos)
		fa := byFile[tf]
		if fa == nil {
			kept = append(kept, d)
			continue
		}
		line := fset.Position(d.Pos).Line
		suppressed := false
		for _, a := range fa.allows {
			if a.analyzer != d.Analyzer || !validAllow(a, known) {
				continue
			}
			if a.fileWide && allowsFileWide(a, profile) {
				a.used = true
				suppressed = true
			} else if !a.fileWide && (a.line == line || a.line == line-1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	for _, tf := range order {
		for _, a := range byFile[tf].allows {
			switch {
			case a.analyzer == "":
				kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "sfs-allow",
					Message: "malformed allow: want //sfs:allow <analyzer> <reason>"})
			case !known[a.analyzer]:
				kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "sfs-allow",
					Message: "allow names unknown analyzer " + quote(a.analyzer)})
			case a.reason == "":
				kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "sfs-allow",
					Message: "allow for " + quote(a.analyzer) + " has no reason; justify the suppression"})
			case a.fileWide && !allowsFileWide(a, profile):
				kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "sfs-allow",
					Message: "file-level allow for " + quote(a.analyzer) + " is only permitted for detwallclock in wall-clock packages; annotate each site"})
			case !a.used:
				kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: "sfs-allow",
					Message: "stale allow: no " + quote(a.analyzer) + " finding here to suppress; remove it"})
			}
		}
	}
	return kept
}

// validAllow reports whether the annotation is well-formed enough to
// suppress anything (malformed allows are reported, never honored).
func validAllow(a *allow, known map[string]bool) bool {
	return a.analyzer != "" && known[a.analyzer] && a.reason != ""
}

// allowsFileWide reports whether a file-scoped allow is legitimate: only
// detwallclock, and only in wall-clock packages. Deterministic packages
// must justify every site individually.
func allowsFileWide(a *allow, profile Profile) bool {
	return a.analyzer == "detwallclock" && profile == WallClock
}

func quote(s string) string { return `"` + s + `"` }
