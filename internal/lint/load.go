// Package loading and type-checking for the determinism linters.
//
// sfs-lint cannot assume network access (the module has no external
// dependencies by design), so instead of golang.org/x/tools/go/packages it
// carries a small loader built on the standard library: files are parsed
// with go/parser, packages are type-checked with go/types, module-local
// imports resolve by path inside the module tree, and standard-library
// imports resolve through go/importer's source importer (which reads
// GOROOT/src and needs no compiled export data).
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// fset is the process-wide file set. Sharing one between the module loader
// and the stdlib source importer keeps every position resolvable, and lets
// the expensive from-source stdlib type-checking be cached across Run calls
// (the fixture harness loads many small modules in one test binary).
var (
	fset = token.NewFileSet()

	stdOnce     sync.Once
	stdImporter types.Importer
	stdMu       sync.Mutex
)

func stdlibImporter() types.Importer {
	stdOnce.Do(func() {
		stdImporter = importer.ForCompiler(fset, "source", nil)
	})
	return stdImporter
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; Dir the directory holding its files.
	Path string
	Dir  string
	// Files are the parsed non-test Go files, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	prog *Program
}

// Fset returns the file set all positions in the package resolve against.
func (p *Package) Fset() *token.FileSet { return fset }

// Program loads and caches the packages of one module. It implements
// types.Importer for module-local and standard-library paths.
type Program struct {
	// ModulePath and ModuleDir identify the module being linted.
	ModulePath string
	ModuleDir  string

	pkgs    map[string]*Package // by import path; nil entry = in progress
	loading []string            // import stack, for cycle reporting
}

// NewProgram prepares a loader rooted at the module containing dir (the
// nearest parent with a go.mod).
func NewProgram(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Program{
		ModulePath: modPath,
		ModuleDir:  root,
		pkgs:       map[string]*Package{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}

// local reports whether path names a package inside the module.
func (pr *Program) local(path string) bool {
	return path == pr.ModulePath || strings.HasPrefix(path, pr.ModulePath+"/")
}

// dirFor maps a module-local import path to its directory.
func (pr *Program) dirFor(path string) string {
	if path == pr.ModulePath {
		return pr.ModuleDir
	}
	rel := strings.TrimPrefix(path, pr.ModulePath+"/")
	return filepath.Join(pr.ModuleDir, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (pr *Program) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(pr.ModuleDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return pr.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, pr.ModuleDir)
	}
	return pr.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer.
func (pr *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pr.local(path) {
		pkg, err := pr.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdlibImporter().Import(path)
}

// Load parses and type-checks the module-local package at the given import
// path (cached). Test files are excluded: the determinism contract governs
// shipped code, while test-order effects are exercised dynamically by
// `go test -shuffle=on` in CI.
func (pr *Program) Load(path string) (*Package, error) {
	if pkg, ok := pr.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle: %s", strings.Join(append(pr.loading, path), " -> "))
		}
		return pkg, nil
	}
	pr.pkgs[path] = nil // mark in progress
	pr.loading = append(pr.loading, path)
	pkg, err := pr.loadUncached(path)
	pr.loading = pr.loading[:len(pr.loading)-1]
	if err != nil {
		delete(pr.pkgs, path)
		return nil, err
	}
	pr.pkgs[path] = pkg
	return pkg, nil
}

func (pr *Program) loadUncached(path string) (*Package, error) {
	dir := pr.dirFor(path)
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: pr}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		prog:  pr,
	}, nil
}

// goFiles lists the buildable non-test Go files of dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		// Honor build constraints (//go:build and GOOS/GOARCH suffixes).
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// ExpandPatterns resolves package patterns ("./...", "./internal/sim", an
// import path, or a directory) into the sorted import paths of matching
// packages. Directories named testdata, and hidden directories, are skipped,
// matching the go tool.
func (pr *Program) ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		var dir string
		switch {
		case pat == ".", strings.HasPrefix(pat, "./"), strings.HasPrefix(pat, "/"), strings.HasPrefix(pat, ".."):
			dir = pat
		case pr.local(pat):
			dir = pr.dirFor(pat)
		default:
			dir = pat
		}
		if !recursive {
			path, err := pr.pathFor(dir)
			if err != nil {
				return nil, err
			}
			add(path)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFiles(p)
			if err != nil {
				return err
			}
			if len(names) == 0 {
				return nil
			}
			path, err := pr.pathFor(p)
			if err != nil {
				return err
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
