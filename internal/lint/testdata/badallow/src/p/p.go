// Package p holds allow annotations too malformed to carry a same-line
// want comment: the harness asserts on these findings directly.
package p

import "time"

// Tick stacks a bare allow (no analyzer) and a reasonless allow above a
// clock read; neither suppresses, and both are findings of their own.
func Tick() time.Time {
	//sfs:allow
	//sfs:allow detwallclock
	return time.Now()
}
