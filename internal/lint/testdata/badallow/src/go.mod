module badfix

go 1.22
