// Package randglob shows detrand's global-source ban applies in wall-clock
// packages too, while the seeded-source rule does not.
package randglob

import "math/rand"

// Roll uses the global source: flagged even here.
func Roll() int {
	return rand.Intn(6) // want `rand\.Intn uses the process-global random source`
}

// Replay seeds a constant: permitted in wall-clock packages (the profile
// only enforces seed derivation in deterministic code).
func Replay() *rand.Rand {
	return rand.New(rand.NewSource(7))
}
