// Package noallow shows that wall-clock-profile packages still need the
// declaration: clock use without any allow is flagged.
package noallow

import "time"

// Now reads the clock with no allow anywhere: flagged.
func Now() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
