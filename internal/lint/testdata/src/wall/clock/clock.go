// Package clock exercises the legitimate file-level detwallclock allow: a
// wall-clock-profile file declared wall-clock in its header is clean.
package clock

//sfs:allow detwallclock fixture file paces itself on real time by design

import "time"

// Uptime reads the clock under the file-level allow: suppressed.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Nap sleeps under the same allow: suppressed.
func Nap() {
	time.Sleep(time.Millisecond)
}
