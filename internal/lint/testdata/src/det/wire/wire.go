// Package wire exercises jsontagcomplete.
package wire

import (
	"encoding/json"

	"fix/det/wiredep"
)

// Header is a declared wire struct with one defect per field class.
//
//sfs:wire
type Header struct {
	Version int            // want `exported field Header\.Version of wire struct has no json tag`
	Name    string         `json:"Name"`       // want `json tag "Name" on Header\.Name is not lowercase`
	Opts    int            `json:",omitempty"` // want `exported field Header\.Opts has a json tag with no name`
	Count   int            `json:"count"`
	Skip    string         `json:"-"`
	Dep     wiredep.Meta   `json:"dep"` // want `field Dep serializes wiredep\.Meta, which is not declared //sfs:wire in its package`
	OK      wiredep.Marked `json:"ok"`
	hidden  int
}

// Payload is unmarked but reaches json.Marshal below, so it is a seed.
type Payload struct {
	Body string // want `exported field Payload\.Body of wire struct has no json tag`
}

// Emit seeds Payload via the marshal call.
func Emit(p Payload) ([]byte, error) {
	return json.Marshal(p)
}

// Clean and its reachable nested struct are fully tagged: not flagged.
//
//sfs:wire
type Clean struct {
	ID   int       `json:"id"`
	Meta CleanMeta `json:"meta"`
}

// CleanMeta is reached from Clean inside the package.
type CleanMeta struct {
	Note string `json:"note"`
}

// Loose never reaches json and carries no marker: not flagged.
type Loose struct {
	Anything int
}
