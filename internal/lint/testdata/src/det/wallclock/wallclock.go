// Package wallclock exercises detwallclock under the deterministic profile.
package wallclock

import "time"

// Stamp reads the clock in a deterministic package: flagged.
func Stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// Wait blocks on the clock: flagged.
func Wait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// Pause carries a per-site allow: suppressed.
func Pause() {
	//sfs:allow detwallclock fixture exercising a justified per-site suppression
	time.Sleep(time.Millisecond)
}

// Epoch only constructs time values without reading the clock: not flagged.
func Epoch() time.Time {
	return time.Unix(0, 0)
}
