package wallclock

//sfs:allow detwallclock file-level allows are not honored in deterministic packages // want `file-level allow for "detwallclock" is only permitted for detwallclock in wall-clock packages`

import "time"

// Lap is not suppressed by the (illegitimate) file-level allow above.
func Lap(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}
