// Package randsrc exercises detrand under the deterministic profile.
package randsrc

import (
	"math/rand"
	"time"
)

// Global draws from the process-global source: flagged.
func Global() int {
	return rand.Intn(10) // want `rand\.Intn uses the process-global random source`
}

// Pinned seeds with a constant: flagged (every "random" run is one schedule).
func Pinned() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand source seeded with a constant`
}

// Clocked seeds from the wall clock: flagged by detrand, and the clock read
// itself is flagged by detwallclock.
func Clocked() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand source seeded from the wall clock` `time\.Now reads the wall clock`
}

// Seeded threads a caller-provided seed: not flagged.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derived mixes the seed arithmetically: still seed-derived, not flagged.
func Derived(seed int64, shard int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(shard)*1009))
}
