// Package wiredep holds types referenced across packages by det/wire.
package wiredep

// Meta is NOT marked //sfs:wire: referencing it from a wire struct in
// another package is a finding there, and its untagged field is not checked
// here (no seeds in this package).
type Meta struct {
	When string
}

// Marked is declared wire, so cross-package references are fine and its
// tags are checked by this package's pass.
//
//sfs:wire
type Marked struct {
	ID int `json:"id"`
}
