// Package exhaustive exercises exhaustiveswitch.
package exhaustive

// Color is a module-local enum.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// Crimson aliases Red; covering Red covers Crimson too.
const Crimson = Red

// Name misses Blue and has no default: flagged.
func Name(c Color) string {
	switch c { // want `switch over exhaustive\.Color is missing Blue`
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// Hot covers one value but declares a default: not flagged.
func Hot(c Color) bool {
	switch c {
	case Red:
		return true
	default:
		return false
	}
}

// Index covers every value (Crimson via Red's value): not flagged.
func Index(c Color) int {
	switch c {
	case Red, Green:
		return int(c)
	case Blue:
		return -int(c)
	}
	return 0
}

// External switches over a non-enum local type (one constant): not flagged.
type level int

const only level = 0

func External(l level) bool {
	switch l {
	case only:
		return true
	}
	return false
}
