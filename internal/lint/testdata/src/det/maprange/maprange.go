// Package maprange exercises detmaprange under the deterministic profile.
package maprange

import "sort"

// Sum folds map values in iteration order: flagged.
func Sum(m map[string]int) int {
	s := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

// Keys is the collect-and-sort idiom: not flagged.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Evens collects conditionally and sorts later in the same block: not flagged.
func Evens(m map[int]string) []int {
	var out []int
	for k := range m {
		if k%2 == 0 {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// Count carries a line allow: suppressed.
func Count(m map[string]int) int {
	n := 0
	//sfs:allow detmaprange pure cardinality; visit order cannot affect an integer count
	for range m {
		n++
	}
	return n
}
