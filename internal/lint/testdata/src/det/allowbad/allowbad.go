// Package allowbad exercises the allow-annotation validation findings.
package allowbad

// Noop hangs defective annotations on harmless statements.
func Noop() int {
	//sfs:allow detmaprange nothing here to excuse // want `stale allow: no "detmaprange" finding here to suppress`
	x := 1
	//sfs:allow detmprange misspelled analyzer name // want `allow names unknown analyzer "detmprange"`
	return x
}
