package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerExhaustiveSwitch requires switches over module-local enums —
// named integer types with two or more package-level constants, like
// sim.StopReason or sweep.FaultKind — to either cover every declared value
// or carry a default case. Adding StopMaxMemory to sim must break the
// build of every switch that silently treated it as StopDrained.
//
// Unlike go vet (which has no exhaustiveness check at all), this analyzer
// resolves the constant values, so aliases of the same value count as
// covering each other.
var AnalyzerExhaustiveSwitch = &Analyzer{
	Name: "exhaustiveswitch",
	Doc:  "require switches over module-local enums to cover every value or carry a default",
	Run:  runExhaustiveSwitch,
}

func runExhaustiveSwitch(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.Info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			named, ok := tagType.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !pass.Prog.local(obj.Pkg().Path()) {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				return true
			}
			members := enumMembers(obj.Pkg(), named)
			if len(members) < 2 {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default case: non-exhaustive coverage is deliberate
				}
				for _, e := range cc.List {
					if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			var missing []string
			seen := map[string]bool{}
			for _, m := range members {
				key := m.val
				if covered[key] || seen[key] {
					continue
				}
				seen[key] = true
				missing = append(missing, m.name)
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch over %s.%s is missing %s; cover every value or add a default case",
					obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

type enumMember struct {
	name string
	val  string
}

// enumMembers lists the package-level constants declared with exactly the
// named type, in declaration-name order (Scope.Names is sorted, which keeps
// missing-value reports deterministic).
func enumMembers(pkg *types.Package, named *types.Named) []enumMember {
	var out []enumMember
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, enumMember{name: name, val: c.Val().ExactString()})
	}
	return out
}
