package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDetMapRange flags `range` over a map in deterministic packages.
// Go randomizes map iteration order per run, so any map-range whose body
// has an order-dependent effect breaks the pure-function-of-(spec, seed)
// contract — exactly the hazard class behind non-reproducing sweep reports.
//
// Two escapes exist. The collect-and-sort idiom is recognized structurally:
// a loop whose body only appends to a single slice, with that slice sorted
// later in the same block, is order-insensitive by construction. Everything
// else (commutative accumulations, order-free side effects) must carry an
// explicit `//sfs:allow detmaprange <reason>` annotation.
var AnalyzerDetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration in deterministic packages unless collected-and-sorted or annotated order-insensitive",
	Run:  runDetMapRange,
}

func runDetMapRange(pass *Pass) {
	if pass.Profile != Deterministic {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Every statement lives in one of these list forms; checking
			// list-by-list keeps the trailing statements visible for the
			// collect-and-sort idiom.
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.Info.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if collectAndSorted(pass, rng, list[i+1:]) {
					continue
				}
				pass.Reportf(rng.Pos(),
					"map iteration order is nondeterministic; collect and sort the keys, or annotate //sfs:allow detmaprange <reason> if the body is order-insensitive")
			}
			return true
		})
	}
}

// collectAndSorted reports whether rng is the collect-then-sort idiom:
// every leaf statement of the body is `X = append(X, ...)` for one slice
// variable X (conditionals guarding the append are fine — reads decide
// nothing order-dependent), and a later statement in the enclosing block
// sorts X (sort.Slice/Sort/Strings/Ints/Float64s/Stable or slices.Sort*).
func collectAndSorted(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	target := appendTarget(pass, rng.Body.List)
	if target == nil {
		return false
	}
	for _, stmt := range rest {
		call, ok := exprCall(stmt)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgIdent, ok := fn.X.(*ast.Ident)
		if !ok {
			continue
		}
		pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			continue
		}
		path := pkgName.Imported().Path()
		if path != "sort" && path != "slices" {
			continue
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == target {
				return true
			}
		}
	}
	return false
}

// appendTarget returns the single slice variable every leaf statement of
// body appends to, or nil if the body does anything else.
func appendTarget(pass *Pass, body []ast.Stmt) *types.Var {
	var target *types.Var
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.IfStmt:
				if s.Init != nil {
					return false
				}
				if !walk(s.Body.List) {
					return false
				}
				if s.Else != nil {
					eb, ok := s.Else.(*ast.BlockStmt)
					if !ok || !walk(eb.List) {
						return false
					}
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return false
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					return false
				}
				if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
					return false
				}
				if len(call.Args) < 1 {
					return false
				}
				first, ok := call.Args[0].(*ast.Ident)
				if !ok || first.Name != lhs.Name {
					return false
				}
				v, ok := pass.Info.Uses[lhs].(*types.Var)
				if !ok {
					v, ok = pass.Info.Defs[lhs].(*types.Var)
					if !ok {
						return false
					}
				}
				if target == nil {
					target = v
				} else if target != v {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(body) || target == nil {
		return nil
	}
	return target
}

// exprCall unwraps an expression statement holding a call.
func exprCall(stmt ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	return call, ok
}
