package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureClassify maps the fixture module: fix/det/... is deterministic,
// everything else (fix/wall/...) is wall-clock.
func fixtureClassify(path string) Profile {
	if path == "fix/det" || strings.HasPrefix(path, "fix/det/") {
		return Deterministic
	}
	return WallClock
}

// wantRe extracts the backquoted expectation regexps from a `// want`
// comment. Expectations apply to findings on the same line.
var wantRe = regexp.MustCompile("`([^`]*)`")

type wantKey struct {
	file string // module-relative, slash-separated
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the fixture tree for `// want` comments.
func collectWants(t *testing.T, root string) map[wantKey][]*want {
	t.Helper()
	wants := map[wantKey][]*want{}
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			_, spec, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			key := wantKey{file: filepath.ToSlash(rel), line: line}
			for _, m := range wantRe.FindAllStringSubmatch(spec, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %w", p, line, m[1], err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
			if len(wantRe.FindAllStringSubmatch(spec, -1)) == 0 {
				return fmt.Errorf("%s:%d: want comment with no backquoted expectation", p, line)
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in fixtures")
	}
	return wants
}

// TestFixtures runs the full suite over the fixture module and checks every
// finding against the `// want` comments: each finding must be expected on
// its line, and each expectation must be hit.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	findings, err := Run(Options{
		Dir:      root,
		Patterns: []string{"./..."},
		Classify: fixtureClassify,
	})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)

	for _, f := range findings {
		key := wantKey{file: f.File, line: f.Line}
		text := f.Analyzer + ": " + f.Message
		hit := false
		for _, w := range wants[key] {
			if w.re.MatchString(text) {
				w.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

// TestFixtureAllowMalformed covers the annotation defects that cannot carry
// a same-line want comment (a bare or reasonless allow would absorb it).
func TestFixtureAllowMalformed(t *testing.T) {
	findings, err := Run(Options{
		Dir:      filepath.Join("testdata", "badallow", "src"),
		Patterns: []string{"./..."},
		Classify: func(string) Profile { return WallClock },
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%d %s %s", f.Line, f.Analyzer, f.Message))
	}
	expect := []string{
		`malformed allow: want //sfs:allow <analyzer> <reason>`,
		`allow for "detwallclock" has no reason`,
		`time.Now reads the wall clock`,
	}
	if len(findings) != len(expect) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(expect), strings.Join(got, "\n"))
	}
	for i, sub := range expect {
		if !strings.Contains(findings[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i].Message, sub)
		}
	}
}

// TestSubsetAnalyzers checks that Options.Analyzers restricts the suite: a
// detrand-only run over the fixtures reports no wall-clock findings.
func TestSubsetAnalyzers(t *testing.T) {
	findings, err := Run(Options{
		Dir:       filepath.Join("testdata", "src"),
		Patterns:  []string{"./det/randsrc"},
		Analyzers: []*Analyzer{AnalyzerDetRand},
		Classify:  fixtureClassify,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer != "detrand" && f.Analyzer != "sfs-allow" {
			t.Errorf("analyzer subset leaked a %s finding: %s", f.Analyzer, f)
		}
	}
	if len(findings) == 0 {
		t.Fatal("detrand-only run found nothing; expected the randsrc fixtures to fire")
	}
}

// TestDefaultClassify pins the module's package classification.
func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		path string
		want Profile
	}{
		{"failstop/internal/sim", Deterministic},
		{"failstop/internal/sweep", Deterministic},
		{"failstop/internal/model", Deterministic},
		{"failstop/internal/recovery", Deterministic},
		{"failstop/internal/runtime", WallClock},
		{"failstop/examples/livenet", WallClock},
		{"failstop/cmd/sfs-sweep", WallClock},
		{"failstop", WallClock},
		{"failstop/internal/simulator", WallClock}, // prefix, not subtree
	}
	for _, c := range cases {
		if got := DefaultClassify(c.path); got != c.want {
			t.Errorf("DefaultClassify(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
