package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// AnalyzerJSONTagComplete guards the wire formats. A struct that reaches
// encoding/json relies on field names for its serialized shape: an
// exported field added without a tag serializes in PascalCase, diverging
// from the rest of the file format, and a rename silently changes it — the
// class of bug that dropped shard-report fields in earlier PRs.
//
// Wire structs are declared, not guessed: a type whose declaration carries
// an `//sfs:wire` marker comment, plus any struct passed directly to an
// encoding/json marshal/unmarshal entry point in the analyzed package.
// From those seeds the analyzer walks the reachable struct graph. Structs
// defined in the analyzed package must tag every exported field with an
// explicit lowercase json name (or "-"); reachable structs defined in
// another module package must themselves be marked //sfs:wire — the marker
// is what makes the closure checkable package by package.
var AnalyzerJSONTagComplete = &Analyzer{
	Name: "jsontagcomplete",
	Doc:  "require explicit lowercase json tags on every exported field of wire/file structs",
	Run:  runJSONTagComplete,
}

const wireMarker = "//sfs:wire"

func runJSONTagComplete(pass *Pass) {
	seeds := map[*types.Named]bool{}
	for _, name := range markedWireNames(pass.Files) {
		obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if named, ok := obj.Type().(*types.Named); ok {
			seeds[named] = true
		}
	}
	for _, named := range jsonCallSeeds(pass) {
		seeds[named] = true
	}
	if len(seeds) == 0 {
		return
	}

	// Walk the reachable struct graph. Work-list order does not matter:
	// reports anchor to source positions and the driver sorts findings.
	visited := map[*types.Named]bool{}
	var visit func(named *types.Named, fromField *types.Var)
	visit = func(named *types.Named, fromField *types.Var) {
		if visited[named] {
			return
		}
		visited[named] = true
		obj := named.Obj()
		if obj.Pkg() == nil || !pass.Prog.local(obj.Pkg().Path()) {
			return // stdlib and external types manage their own formats
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		if obj.Pkg().Path() != pass.Pkg.Path() {
			// Cross-package reference: the type is checked by its own
			// package's pass, but only if it is marked there.
			if fromField != nil && !typeIsMarkedWire(pass.Prog, obj.Pkg().Path(), obj.Name()) {
				pass.Reportf(fromField.Pos(),
					"field %s serializes %s.%s, which is not declared //sfs:wire in its package; mark it so its json tags are checked",
					fromField.Name(), obj.Pkg().Name(), obj.Name())
			}
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			name, _, _ := strings.Cut(tag, ",")
			switch {
			case tag == "":
				pass.Reportf(f.Pos(),
					"exported field %s.%s of wire struct has no json tag; tag it explicitly (lowercase) so the wire format cannot drift", obj.Name(), f.Name())
			case name == "":
				pass.Reportf(f.Pos(),
					"exported field %s.%s has a json tag with no name; name it explicitly or use json:\"-\"", obj.Name(), f.Name())
			case name != "-" && name != strings.ToLower(name):
				pass.Reportf(f.Pos(),
					"json tag %q on %s.%s is not lowercase; wire field names are lowercase by convention", name, obj.Name(), f.Name())
			}
			if name == "-" {
				continue
			}
			for _, inner := range namedStructsIn(f.Type()) {
				visit(inner, f)
			}
		}
	}
	for named := range seeds {
		visit(named, nil)
	}
}

// jsonCallSeeds finds struct types passed directly to encoding/json entry
// points (including Encoder.Encode/Decoder.Decode) within the package.
func jsonCallSeeds(pass *Pass) []*types.Named {
	var out []*types.Named
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
				return true
			}
			switch fn.Name() {
			case "Marshal", "MarshalIndent", "Unmarshal", "Encode", "Decode":
			default:
				return true
			}
			for _, arg := range call.Args {
				out = append(out, namedStructsIn(pass.Info.TypeOf(arg))...)
			}
			return true
		})
	}
	return out
}

// namedStructsIn collects the named struct types inside t, looking through
// pointers, slices, arrays, and map keys/values.
func namedStructsIn(t types.Type) []*types.Named {
	var out []*types.Named
	seen := map[types.Type]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Named:
			if _, ok := t.Underlying().(*types.Struct); ok {
				out = append(out, t)
			}
		case *types.Pointer:
			walk(t.Elem())
		case *types.Slice:
			walk(t.Elem())
		case *types.Array:
			walk(t.Elem())
		case *types.Map:
			walk(t.Key())
			walk(t.Elem())
		}
	}
	walk(t)
	return out
}

// typeIsMarkedWire reports whether the named type declaration in the given
// module package carries the //sfs:wire marker.
func typeIsMarkedWire(prog *Program, path, typeName string) bool {
	pkg, err := prog.Load(path)
	if err != nil {
		return false
	}
	for _, n := range markedWireNames(pkg.Files) {
		if n == typeName {
			return true
		}
	}
	return false
}

// markedWireNames scans type declarations for the //sfs:wire marker in the
// doc comment of the GenDecl, the TypeSpec, or a trailing line comment.
func markedWireNames(files []*ast.File) []string {
	var out []string
	hasMarker := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), wireMarker) {
				return true
			}
		}
		return false
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := hasMarker(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declMarked || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
					out = append(out, ts.Name.Name)
				}
			}
		}
	}
	return out
}
