// Package lint is the determinism static-analysis suite behind cmd/sfs-lint.
//
// Everything this reproduction guarantees — cross-backend sim/live agreement
// on fail-stop fates, byte-identical -shard/-merge recombination, plan-file
// round-trips reproducing reports byte for byte — rests on one invariant:
// the simulation path is a pure function of (spec, seed). The analyzers in
// this package make that invariant machine-checked instead of conventional:
//
//   - detmaprange: map iteration order must not reach output in
//     deterministic packages (collect-and-sort, or annotate).
//   - detwallclock: no wall-clock reads or sleeps outside the wall-clock
//     packages, and even there only with a declared reason.
//   - detrand: no math/rand global-state functions anywhere; seeded
//     sources in deterministic packages must not be seeded by constants
//     or by the clock.
//   - exhaustiveswitch: switches over module-local enums (sim.StopReason,
//     sweep.FaultKind, ...) must cover every value or carry a default.
//   - jsontagcomplete: wire/file structs (//sfs:wire) must tag every
//     exported field explicitly, so adding a field cannot silently change
//     or drop serialized output.
//
// Findings are suppressible only through `//sfs:allow <analyzer> <reason>`
// annotations, which the driver itself validates: unknown analyzer names,
// missing reasons, and stale allows (suppressing nothing) are findings too.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Profile is a package's determinism classification.
type Profile int

const (
	// Deterministic packages implement the pure-function-of-(spec, seed)
	// contract; every analyzer applies at full strictness.
	Deterministic Profile = iota
	// WallClock packages (the live runtime, examples, commands) touch real
	// time and real scheduling. detmaprange and the seeded-source rule do
	// not apply, and wall-clock use is permitted under a file-level allow.
	WallClock
)

func (p Profile) String() string {
	if p == Deterministic {
		return "deterministic"
	}
	return "wall-clock"
}

// DeterministicPackages lists the import paths (and subtree roots) holding
// the deterministic profile. Everything else in the module is wall-clock.
var DeterministicPackages = []string{
	"failstop/internal/sim",
	"failstop/internal/netadv",
	"failstop/internal/sweep",
	"failstop/internal/model",
	"failstop/internal/reliable",
	"failstop/internal/byz",
	"failstop/internal/recovery",
	"failstop/internal/checker",
	"failstop/internal/adversary",
	"failstop/internal/obs",
	"failstop/internal/topo",
	"failstop/internal/quorum",
}

// DefaultClassify is the module's package classification.
func DefaultClassify(importPath string) Profile {
	for _, p := range DeterministicPackages {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return Deterministic
		}
	}
	return WallClock
}

// Diagnostic is one raw analyzer report, before allow-annotation filtering.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Profile  Profile
	// Prog gives analyzers cross-package access (e.g. jsontagcomplete
	// checking that a referenced type is declared //sfs:wire in its own
	// package).
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one determinism check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full suite, in reporting order. The slice is fresh
// on every call so callers may subset it freely.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetMapRange,
		AnalyzerDetWallClock,
		AnalyzerDetRand,
		AnalyzerExhaustiveSwitch,
		AnalyzerJSONTagComplete,
	}
}

// Finding is one confirmed (post-allow-filtering) lint result.
type Finding struct {
	// File is the path relative to the module root; Line and Col are
	// 1-based.
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Options configures a lint run.
type Options struct {
	// Dir is a directory inside the module to lint; "" means ".".
	Dir string
	// Patterns are package patterns ("./...", directories, import paths).
	// Empty means "./...".
	Patterns []string
	// Analyzers subsets the suite; nil means all of Analyzers().
	Analyzers []*Analyzer
	// Classify overrides the package classification; nil means
	// DefaultClassify.
	Classify func(importPath string) Profile
}

// Run loads the matched packages, applies every analyzer under the package
// classification, filters and validates //sfs:allow annotations, and
// returns the surviving findings sorted by position.
func Run(opts Options) ([]Finding, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	prog, err := NewProgram(dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Patterns that are relative directories resolve against opts.Dir.
	resolved := make([]string, len(patterns))
	for i, p := range patterns {
		if p == "." || p == "..." || strings.HasPrefix(p, "./") || strings.HasPrefix(p, "../") {
			resolved[i] = filepath.Join(dir, strings.TrimPrefix(p, "./"))
			if strings.HasSuffix(p, "...") && !strings.HasSuffix(resolved[i], "...") {
				resolved[i] = filepath.Join(resolved[i], "...")
			}
		} else {
			resolved[i] = p
		}
	}
	paths, err := prog.ExpandPatterns(resolved)
	if err != nil {
		return nil, err
	}
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	classify := opts.Classify
	if classify == nil {
		classify = DefaultClassify
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var findings []Finding
	for _, path := range paths {
		pkg, err := prog.Load(path)
		if err != nil {
			return nil, err
		}
		profile := classify(path)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Profile:  profile,
				Prog:     prog,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = applyAllows(pkg, profile, diags, known)
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(prog.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			findings = append(findings, Finding{
				File:     file,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
