package rewrite_test

import (
	"errors"
	"testing"

	"failstop/internal/adversary"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/rewrite"
	"failstop/internal/sim"
)

// falseSuspicionHistory runs the §5 protocol with erroneous suspicions and
// returns the abstract (model-level) history, which satisfies sFS but
// usually violates FS2.
func falseSuspicionHistory(t *testing.T, n int, seed int64, suspicions [][2]model.ProcID) model.History {
	t.Helper()
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 15},
		Det: core.Config{N: n, T: 3, Protocol: core.SimulatedFailStop},
	})
	for i, s := range suspicions {
		c.SuspectAt(int64(5+i), s[0], s[1])
	}
	res := c.Run()
	if !res.Quiescent() {
		t.Fatalf("run not quiescent: %+v", res.Blocked)
	}
	return res.History.DropTags(core.TagSusp)
}

func TestGraphRewriteSimple(t *testing.T) {
	// failed_2(1) before crash_1: one bad pair, independent events.
	h := model.History{
		model.Failed(2, 1),
		model.Crash(1),
	}.Normalize()
	out, st, err := rewrite.Graph(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.BadPairs != 1 {
		t.Errorf("BadPairs = %d, want 1", st.BadPairs)
	}
	if err := rewrite.Verify(h, out); err != nil {
		t.Fatal(err)
	}
	if !out[0].IsCrash() {
		t.Errorf("crash must come first, got %s", out[0])
	}
}

func TestSwapsRewriteSimple(t *testing.T) {
	h := model.History{
		model.Failed(2, 1),
		model.Internal(3, "noise", model.None),
		model.Crash(1),
	}.Normalize()
	out, st, err := rewrite.Swaps(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := rewrite.Verify(h, out); err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 || st.Passes == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

func TestRewriteAlreadyFS(t *testing.T) {
	h := model.History{
		model.Crash(1),
		model.Failed(2, 1),
	}.Normalize()
	for name, fn := range map[string]func(model.History) (model.History, rewrite.Stats, error){
		"graph": rewrite.Graph,
		"swaps": rewrite.Swaps,
	} {
		out, st, err := fn(h.Clone())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.BadPairs != 0 {
			t.Errorf("%s: BadPairs = %d, want 0", name, st.BadPairs)
		}
		if err := rewrite.Verify(h, out); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRewriteRefusesMissingCrash(t *testing.T) {
	h := model.History{model.Failed(2, 1)}.Normalize()
	if _, _, err := rewrite.Graph(h); !errors.Is(err, rewrite.ErrNoCrash) {
		t.Errorf("Graph err = %v, want ErrNoCrash", err)
	}
	if _, _, err := rewrite.Swaps(h); !errors.Is(err, rewrite.ErrNoCrash) {
		t.Errorf("Swaps err = %v, want ErrNoCrash", err)
	}
	if rewrite.Realizable(h) {
		t.Error("history with undetonated detection must not be realizable")
	}
}

// Theorem 3: the exact counterexample run satisfies Conditions 1-3 yet is
// not isomorphic to any FS run; both rewriters must refuse it.
func TestTheorem3CounterexampleNotRealizable(t *testing.T) {
	h := adversary.Theorem3Run()
	if err := h.Validate(); err != nil {
		t.Fatalf("counterexample must be a valid history: %v", err)
	}
	// It satisfies Conditions 1-3 ...
	for _, v := range []checker.Verdict{
		checker.Condition1(h), checker.Condition2(h), checker.Condition3(h),
	} {
		if !v.Holds {
			t.Errorf("counterexample must satisfy %s: %s", v.Property, v.Detail)
		}
	}
	// ... but not sFS2d (which is why sFS excludes it) ...
	if v := checker.SFS2d(h); v.Holds {
		t.Error("the Theorem 3 run satisfies sFS2d?! it should not")
	}
	// ... and it is not FS-realizable.
	if rewrite.Realizable(h) {
		t.Fatal("Theorem 3 counterexample must not be realizable")
	}
	if _, _, err := rewrite.Graph(h); !errors.Is(err, rewrite.ErrNotRealizable) {
		t.Errorf("Graph err = %v, want ErrNotRealizable", err)
	}
	if _, _, err := rewrite.Swaps(h); !errors.Is(err, rewrite.ErrNotRealizable) {
		t.Errorf("Swaps err = %v, want ErrNotRealizable", err)
	}
}

// Condition 3 violation: failed_i(j) happens-before an event of j. The
// swap algorithm hits the Lemma 4 guard; the graph finds the cycle.
func TestChainedDetectionNotRealizable(t *testing.T) {
	h := model.History{
		model.Failed(1, 3),
		model.Send(1, 3, 1, "m", model.None),
		model.Recv(3, 1, 1, "m", model.None),
		model.Crash(3),
	}.Normalize()
	if rewrite.Realizable(h) {
		t.Fatal("chain into the detected process must not be realizable")
	}
	if _, _, err := rewrite.Swaps(h); !errors.Is(err, rewrite.ErrNotRealizable) {
		t.Errorf("Swaps err = %v, want ErrNotRealizable", err)
	}
}

// Theorem 5, experimentally: every sFS protocol run with erroneous
// suspicions rewrites to an isomorphic FS history, under both algorithms,
// and the two agree that a witness exists.
func TestTheorem5OnProtocolRuns(t *testing.T) {
	scenarios := [][][2]model.ProcID{
		{{2, 1}},
		{{2, 1}, {4, 3}},
		{{1, 2}, {2, 1}},
		{{5, 1}, {6, 2}, {7, 3}},
		{{1, 10}, {2, 10}},
	}
	for si, susp := range scenarios {
		for seed := int64(0); seed < 12; seed++ {
			h := falseSuspicionHistory(t, 10, seed, susp)
			// Protocol runs satisfy sFS on the abstract history...
			if v, allOK := checker.AllHold(checker.SFS(h)); !allOK {
				t.Fatalf("scenario %d seed %d: %s", si, seed, v)
			}
			// ...and must therefore be realizable, per Theorem 5.
			gout, gst, gerr := rewrite.Graph(h)
			if gerr != nil {
				t.Fatalf("scenario %d seed %d: Graph: %v", si, seed, gerr)
			}
			if err := rewrite.Verify(h, gout); err != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, err)
			}
			sout, _, serr := rewrite.Swaps(h)
			if serr != nil {
				t.Fatalf("scenario %d seed %d: Swaps: %v", si, seed, serr)
			}
			if err := rewrite.Verify(h, sout); err != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, err)
			}
			// The rewritten histories satisfy full FS.
			for _, out := range []model.History{gout, sout} {
				if v, allOK := checker.AllHold(checker.FS(out)); !allOK {
					t.Fatalf("scenario %d seed %d: rewritten history: %s", si, seed, v)
				}
			}
			// Bad-pair counts agree between the algorithms.
			_, sst, _ := rewrite.Swaps(h)
			if gst.BadPairs != sst.BadPairs {
				t.Errorf("scenario %d seed %d: BadPairs graph=%d swaps=%d",
					si, seed, gst.BadPairs, sst.BadPairs)
			}
		}
	}
}

// The rewriters also succeed on histories where detections were genuine
// (crash already first): a genuine-crash FS run is its own witness.
func TestRewriteGenuineCrashRun(t *testing.T) {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 6, Seed: 5, MinDelay: 1, MaxDelay: 10},
		Det: core.Config{N: 6, T: 2, Protocol: core.SimulatedFailStop},
	})
	c.CrashAt(2, 6)
	c.SuspectAt(10, 1, 6)
	res := c.Run()
	h := res.History.DropTags(core.TagSusp)
	out, st, err := rewrite.Graph(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.BadPairs != 0 {
		t.Errorf("genuine crash: BadPairs = %d, want 0", st.BadPairs)
	}
	if err := rewrite.Verify(h, out); err != nil {
		t.Fatal(err)
	}
}

// The cheap protocol's cyclic runs must be refused: a failed-before cycle
// is a constraint cycle.
func TestCheapCycleNotRealizable(t *testing.T) {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 2, Seed: 1, MinDelay: 5, MaxDelay: 5},
		Det: core.Config{N: 2, T: 2, Protocol: core.Cheap},
	})
	c.SuspectAt(1, 1, 2)
	c.SuspectAt(1, 2, 1)
	res := c.Run()
	h := res.History.DropTags(core.TagSusp)
	if v := checker.SFS2b(h); v.Holds {
		t.Skip("schedule did not produce the cycle")
	}
	if rewrite.Realizable(h) {
		t.Error("cyclic history must not be realizable")
	}
}

func TestVerifyCatchesBrokenWitnesses(t *testing.T) {
	orig := model.History{
		model.Failed(2, 1),
		model.Crash(1),
	}.Normalize()
	// Wrong order (FS2 still violated).
	if err := rewrite.Verify(orig, orig.Clone()); err == nil {
		t.Error("Verify must reject a non-FS2 result")
	}
	// Event set mutilated.
	short := model.History{model.Crash(1)}.Normalize()
	if err := rewrite.Verify(orig, short); err == nil {
		t.Error("Verify must reject a truncated result")
	}
	// Non-isomorphic permutation (same length, same-process order changed).
	perm := model.History{
		model.Crash(1),
		model.Failed(2, 3), // different event entirely
	}.Normalize()
	if err := rewrite.Verify(orig, perm); err == nil {
		t.Error("Verify must reject a non-isomorphic result")
	}
}

// Property: the graph rewrite is idempotent — rewriting an already-FS
// history returns it unchanged.
func TestGraphRewriteStable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h := falseSuspicionHistory(t, 10, seed, [][2]model.ProcID{{2, 1}})
		out1, _, err := rewrite.Graph(h)
		if err != nil {
			t.Fatal(err)
		}
		out2, _, err := rewrite.Graph(out1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out1 {
			if !out1[i].Same(out2[i]) {
				t.Fatalf("seed %d: rewrite not stable at %d: %s vs %s",
					seed, i, out1[i], out2[i])
			}
		}
	}
}

func BenchmarkGraphRewrite(b *testing.B) {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 10, Seed: 3, MinDelay: 1, MaxDelay: 15},
		Det: core.Config{N: 10, T: 3, Protocol: core.SimulatedFailStop},
	})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(6, 4, 3)
	h := c.Run().History.DropTags(core.TagSusp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rewrite.Graph(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwapsRewrite(b *testing.B) {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 10, Seed: 3, MinDelay: 1, MaxDelay: 15},
		Det: core.Config{N: 10, T: 3, Protocol: core.SimulatedFailStop},
	})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(6, 4, 3)
	h := c.Run().History.DropTags(core.TagSusp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rewrite.Swaps(h); err != nil {
			b.Fatal(err)
		}
	}
}

// Property on arbitrary valid histories (not only sFS ones): the two
// rewriters are consistent — whenever the swap algorithm produces a
// witness, the graph algorithm does too (a witness exists), and whenever
// the graph proves no witness exists, the swap algorithm must not produce
// one. Successful outputs always verify.
func TestQuickRewritersConsistentOnArbitraryHistories(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := model.NewGen(seed)
		h := g.History(5, 80)
		gout, _, gerr := rewrite.Graph(h)
		sout, _, serr := rewrite.Swaps(h)
		if gerr == nil {
			if err := rewrite.Verify(h, gout); err != nil {
				t.Fatalf("seed %d: graph witness invalid: %v", seed, err)
			}
		}
		if serr == nil {
			if err := rewrite.Verify(h, sout); err != nil {
				t.Fatalf("seed %d: swap witness invalid: %v", seed, err)
			}
			if gerr != nil {
				t.Fatalf("seed %d: swaps found a witness but graph proved none exists", seed)
			}
		}
	}
}

// Property: realizability is invariant under valid reorderings — rewriting
// and re-checking gives the same answer.
func TestQuickRealizabilityStableUnderRewrite(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		h := model.NewGen(seed).History(4, 60)
		out, _, err := rewrite.Graph(h)
		if err != nil {
			continue
		}
		if !rewrite.Realizable(out) {
			t.Fatalf("seed %d: rewritten FS history not realizable", seed)
		}
	}
}
