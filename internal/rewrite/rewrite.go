// Package rewrite implements the constructive content of Theorem 5: every
// history satisfying the simulated-fail-stop conditions is isomorphic (with
// respect to every process) to a history satisfying fail-stop. Given a
// model-level history, the package produces the witnessing FS history — an
// explicit certificate of indistinguishability — or reports that none
// exists (as for the Theorem 3 counterexample).
//
// Two independent algorithms are provided and cross-checked in tests:
//
//   - Graph: build the constraint graph over events — program-order edges,
//     send→receive edges, and one edge crash_i → failed_j(i) per detection
//     (the FS2 obligation) — and topologically sort it, preferring the
//     original order. A topological order restricted to the first two edge
//     kinds is exactly an isomorphic valid history; the extra edges force
//     FS2. A cycle proves no isomorphic FS run exists.
//
//   - Swaps: the paper's Appendix A.2 procedure. Pick a "bad pair" (i, j)
//     with failed_j(i) preceding crash_i; repeatedly move the first event
//     in the window between them that is not happens-after failed_j(i) to
//     just before failed_j(i), until crash_i itself moves; repeat across
//     bad pairs. The paper's case analysis shows this terminates on sFS
//     histories.
//
// FS-realizability (the graph acyclicity test) is also exposed directly:
// it is the operational form of "∃r' ∈ FS: r' =_P r".
package rewrite

import (
	"container/heap"
	"errors"
	"fmt"

	"failstop/internal/model"
)

// ErrNotRealizable reports that no isomorphic fail-stop history exists.
var ErrNotRealizable = errors.New("rewrite: history is not isomorphic to any fail-stop history")

// ErrNoCrash reports a detection whose target never crashes in the history:
// FS2 can then never be satisfied by reordering (sFS2a must hold, and the
// history must include the crash — run the system to quiescence first).
var ErrNoCrash = errors.New("rewrite: detected process never crashes in the history")

// Stats describes the work a rewrite performed.
type Stats struct {
	// BadPairs is the number of (detected, detector) pairs that initially
	// violated FS2 order.
	BadPairs int
	// Moves counts single-event moves (swap algorithm) or total events
	// re-emitted (graph algorithm).
	Moves int
	// Passes counts bad-pair fixing rounds (swap algorithm only).
	Passes int
}

// Graph rewrites h into an isomorphic history satisfying FS2, using the
// constraint-graph topological sort. The input must be a valid history
// (model.History.Validate) whose detections all have a crash event
// (checker.SFS2a); otherwise an error is returned. On success the result
// is valid, isomorphic to h w.r.t. every process, and satisfies FS2.
func Graph(h model.History) (model.History, Stats, error) {
	var st Stats
	n := len(h)
	adj := make([][]int, n) // adj[a] = successors of a
	indeg := make([]int, n)

	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		indeg[b]++
	}

	// Program-order edges.
	lastOf := make(map[model.ProcID]int)
	for k, e := range h {
		if prev, okP := lastOf[e.Proc]; okP {
			addEdge(prev, k)
		}
		lastOf[e.Proc] = k
	}
	// Message edges.
	sendAt := make(map[model.MsgID]int)
	for k, e := range h {
		if e.Kind == model.KindSend {
			sendAt[e.Msg] = k
		}
	}
	for k, e := range h {
		if e.Kind == model.KindRecv {
			s, okS := sendAt[e.Msg]
			if !okS {
				return nil, st, fmt.Errorf("rewrite: receive of m%d without send (invalid history)", e.Msg)
			}
			addEdge(s, k)
		}
	}
	// FS2 edges: crash_i before failed_j(i).
	for _, d := range h.Detections() {
		ci := h.CrashIndex(d.Detected)
		if ci < 0 {
			return nil, st, fmt.Errorf("%w: failed_%d(%d)", ErrNoCrash, d.Detector, d.Detected)
		}
		if ci > d.Index {
			st.BadPairs++
		}
		addEdge(ci, d.Index)
	}

	// Kahn's algorithm with a min-heap on original index: the output is the
	// lexicographically earliest topological order, i.e. as close to the
	// original interleaving as the constraints allow.
	pq := &intHeap{}
	for k := 0; k < n; k++ {
		if indeg[k] == 0 {
			heap.Push(pq, k)
		}
	}
	out := make(model.History, 0, n)
	for pq.Len() > 0 {
		k := heap.Pop(pq).(int)
		out = append(out, h[k])
		for _, succ := range adj[k] {
			indeg[succ]--
			if indeg[succ] == 0 {
				heap.Push(pq, succ)
			}
		}
	}
	if len(out) != n {
		return nil, st, fmt.Errorf("%w: constraint cycle among %d events", ErrNotRealizable, n-len(out))
	}
	st.Moves = n
	return out.Normalize(), st, nil
}

// Realizable reports whether an isomorphic fail-stop history exists for h:
// the constraint graph of Graph is acyclic and every detection's target
// crashes. This is the decision procedure behind Theorem 3's negative
// example and Theorem 5's positive guarantee.
func Realizable(h model.History) bool {
	_, _, err := Graph(h)
	return err == nil
}

// maxSwapPasses bounds the outer bad-pair loop of Swaps. Theorem 5's proof
// bounds the number of re-badded pairs by n per fix; n^2 * detections is a
// generous ceiling that only an un-rewritable (non-sFS) input can hit.
func maxSwapPasses(h model.History) int {
	n := h.Processes()
	d := len(h.Detections())
	if d == 0 {
		return 1
	}
	return (n*n + 1) * d
}

// Swaps rewrites h using the paper's Appendix A.2 swap construction. The
// input requirements and output guarantees match Graph. Inputs that satisfy
// the sFS conditions always succeed (Theorem 5); other inputs may exhaust
// the pass budget and return ErrNotRealizable.
func Swaps(h model.History) (model.History, Stats, error) {
	var st Stats
	cur := h.Clone().Normalize()

	// Precondition shared with Graph: every detected process crashes.
	for _, d := range cur.Detections() {
		if cur.CrashIndex(d.Detected) < 0 {
			return nil, st, fmt.Errorf("%w: failed_%d(%d)", ErrNoCrash, d.Detector, d.Detected)
		}
	}
	st.BadPairs = len(badPairs(cur))

	budget := maxSwapPasses(cur)
	for pass := 0; ; pass++ {
		if pass > budget {
			return nil, st, fmt.Errorf("%w: swap construction did not converge", ErrNotRealizable)
		}
		bps := badPairs(cur)
		if len(bps) == 0 {
			break
		}
		st.Passes++
		var err error
		cur, err = fixPair(cur, bps[0], &st)
		if err != nil {
			return nil, st, err
		}
	}
	return cur.Normalize(), st, nil
}

// badPair identifies failed_j(i) at index fi preceding crash_i at index ci.
type badPair struct {
	i, j   model.ProcID
	fi, ci int
}

func badPairs(h model.History) []badPair {
	var out []badPair
	for _, d := range h.Detections() {
		ci := h.CrashIndex(d.Detected)
		if ci > d.Index {
			out = append(out, badPair{i: d.Detected, j: d.Detector, fi: d.Index, ci: ci})
		}
	}
	return out
}

// fixPair applies the inner induction of the Appendix A.2 base case: move
// events of the window (failed_j(i) .. crash_i] that are not happens-after
// failed_j(i) to just before failed_j(i), first such event first, until
// crash_i has been moved.
func fixPair(h model.History, bp badPair, st *Stats) (model.History, error) {
	for {
		hb := model.NewHB(h)
		fi := h.FailedIndex(bp.j, bp.i)
		ci := h.CrashIndex(bp.i)
		if ci < fi {
			return h, nil // pair fixed
		}
		if hb.Before(fi, ci) {
			// Lemma 4 rules this out for sFS histories; a non-sFS input can
			// trigger it.
			return nil, fmt.Errorf("%w: failed_%d(%d) happens-before crash_%d",
				ErrNotRealizable, bp.j, bp.i, bp.i)
		}
		// First event in (fi, ci] not happens-after failed_j(i).
		moved := false
		for k := fi + 1; k <= ci; k++ {
			if hb.Before(fi, k) {
				continue
			}
			// Move h[k] to position fi (just before the failed event),
			// shifting fi..k-1 right by one.
			e := h[k]
			copy(h[fi+1:k+1], h[fi:k])
			h[fi] = e
			h.Normalize()
			st.Moves++
			moved = true
			break
		}
		if !moved {
			return nil, fmt.Errorf("%w: window of failed_%d(%d) fully happens-after it",
				ErrNotRealizable, bp.j, bp.i)
		}
	}
}

// Verify checks that rewritten is a correct Theorem 5 witness for original:
// valid, isomorphic to original with respect to every process, and
// satisfying FS2 (every detection after its target's crash). It returns nil
// on success.
func Verify(original, rewritten model.History) error {
	if err := rewritten.Validate(); err != nil {
		return fmt.Errorf("rewrite: result invalid: %w", err)
	}
	if len(original) != len(rewritten) {
		return fmt.Errorf("rewrite: result has %d events, original %d", len(rewritten), len(original))
	}
	if !original.IsomorphicTo(rewritten) {
		return errors.New("rewrite: result not isomorphic to original")
	}
	for _, d := range rewritten.Detections() {
		ci := rewritten.CrashIndex(d.Detected)
		if ci < 0 || ci > d.Index {
			return fmt.Errorf("rewrite: FS2 violated in result: failed_%d(%d) at %d, crash at %d",
				d.Detector, d.Detected, d.Index, ci)
		}
	}
	return nil
}

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
