package core_test

import (
	"testing"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/quorum"
	"failstop/internal/sim"
)

// sfsCluster builds an n-process simulated-fail-stop cluster with max t
// failures and the given seed.
func sfsCluster(n, t int, seed int64) *cluster.Cluster {
	return cluster.New(cluster.Options{
		Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 10},
		Det: core.Config{N: n, T: t, Protocol: core.SimulatedFailStop},
	})
}

// assertSFS checks the Figure 1 properties on the model-level (abstract)
// history: the detector's own SUSP traffic implements the failed events and
// is below the model (see model.History.DropTags).
func assertSFS(t *testing.T, h model.History) {
	t.Helper()
	if err := h.Validate(); err != nil {
		t.Errorf("invalid history: %v", err)
	}
	abstract := h.DropTags(core.TagSusp)
	if err := abstract.Validate(); err != nil {
		t.Errorf("invalid abstract history: %v", err)
	}
	for _, v := range checker.SFS(abstract) {
		if !v.Holds {
			t.Errorf("%s", v)
		}
	}
}

func TestGenuineCrashDetectedByAll(t *testing.T) {
	c := sfsCluster(5, 2, 1)
	c.CrashAt(5, 1)
	// Process 2 times out on 1 and starts the protocol; others join.
	c.SuspectAt(20, 2, 1)
	res := c.Run()
	if !res.Quiescent() {
		t.Fatalf("not quiescent: %+v", res.Blocked)
	}
	assertSFS(t, res.History)
	for p := model.ProcID(2); p <= 5; p++ {
		if !c.Detectors[p].Detected(1) {
			t.Errorf("process %d did not detect 1", p)
		}
	}
	// FS2 also holds here: the crash was genuine and preceded detection.
	if v := checker.FS2(res.History); !v.Holds {
		t.Errorf("%s", v)
	}
}

func TestFalseSuspicionKillsTarget(t *testing.T) {
	c := sfsCluster(5, 2, 7)
	// Nobody crashed, but 2 suspects 1 anyway (erroneous timeout).
	c.SuspectAt(10, 2, 1)
	res := c.Run()
	if !res.Quiescent() {
		t.Fatalf("not quiescent: %+v", res.Blocked)
	}
	assertSFS(t, res.History)
	// sFS2a in action: the falsely suspected process must end up crashed.
	if res.History.CrashIndex(1) < 0 {
		t.Error("falsely suspected process 1 never crashed")
	}
	for p := model.ProcID(2); p <= 5; p++ {
		if !c.Detectors[p].Detected(1) {
			t.Errorf("process %d did not detect 1", p)
		}
	}
}

func TestQuorumSizeMatchesTheorem7(t *testing.T) {
	c := sfsCluster(9, 3, 3)
	c.CrashAt(1, 9)
	c.SuspectAt(5, 1, 9)
	res := c.Run()
	assertSFS(t, res.History)
	want := quorum.MinSize(9, 3) // 7
	for p := model.ProcID(1); p <= 8; p++ {
		qs := c.Detectors[p].Quorums()
		q, okq := qs[9]
		if !okq {
			t.Fatalf("process %d has no quorum snapshot for 9", p)
		}
		if len(q) < want {
			t.Errorf("process %d quorum size %d < %d", p, len(q), want)
		}
	}
	// The trace-reconstructed quorum sets must match the detector snapshots.
	fromTrace := checker.QuorumSets(res.History, core.TagSusp)
	if len(fromTrace) != 8 {
		t.Fatalf("trace yields %d quorum sets, want 8", len(fromTrace))
	}
	for _, q := range fromTrace {
		if len(q) < want {
			t.Errorf("trace quorum size %d < %d", len(q), want)
		}
	}
}

func TestNoSelfDetectionEver(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := sfsCluster(6, 2, seed)
		c.SuspectAt(5, 2, 1)
		c.SuspectAt(5+seed%7, 4, 3)
		res := c.Run()
		if v := checker.SFS2c(res.History); !v.Holds {
			t.Fatalf("seed %d: %s", seed, v)
		}
	}
}

func TestConcurrentSuspicionsNoCycle(t *testing.T) {
	// Two processes suspect each other simultaneously: under sFS the quorum
	// round must resolve it with at most one surviving detection direction.
	for seed := int64(0); seed < 25; seed++ {
		c := sfsCluster(5, 2, seed)
		c.SuspectAt(10, 1, 2)
		c.SuspectAt(10, 2, 1)
		res := c.Run()
		assertSFS(t, res.History)
		if v := checker.WitnessProperty(res.History, core.TagSusp, 2); !v.Holds {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

func TestManyConcurrentSuspicionsStillSFS(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := sfsCluster(10, 3, seed)
		c.SuspectAt(5, 1, 2)
		c.SuspectAt(5, 2, 3)
		c.SuspectAt(5, 3, 1)
		res := c.Run()
		assertSFS(t, res.History)
	}
}

func TestCheapProtocolViolatesOnlySFS2b(t *testing.T) {
	// §6: force the 2-cycle. 1 suspects 2 while 2 suspects 1; with the
	// cheap protocol both detect immediately, then both crash on receiving
	// the other's "you failed".
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 2, Seed: 1, MinDelay: 5, MaxDelay: 5},
		Det: core.Config{N: 2, T: 2, Protocol: core.Cheap},
	})
	c.SuspectAt(1, 1, 2)
	c.SuspectAt(1, 2, 1)
	res := c.Run()
	if err := res.History.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if v := checker.SFS2b(res.History); v.Holds {
		t.Error("expected an sFS2b violation (failed-before cycle) under the cheap protocol")
	}
	// The other sFS properties still hold (on the abstract history).
	abstract := res.History.DropTags(core.TagSusp)
	for _, v := range []checker.Verdict{
		checker.SFS2a(abstract),
		checker.SFS2c(abstract),
		checker.SFS2d(abstract),
	} {
		if !v.Holds {
			t.Errorf("%s", v)
		}
	}
}

func TestUnilateralViolatesSFS2a(t *testing.T) {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 3, Seed: 1},
		Det: core.Config{N: 3, T: 1, Protocol: core.Unilateral},
	})
	c.SuspectAt(1, 1, 2)
	res := c.Run()
	// Unilateral detection sends nothing: 2 never crashes.
	if v := checker.SFS2a(res.History); v.Holds {
		t.Error("expected sFS2a violation under unilateral protocol")
	}
	if res.Sent != 0 {
		t.Errorf("unilateral protocol sent %d messages, want 0", res.Sent)
	}
}

func TestProgressRequiresCorollary8(t *testing.T) {
	// n=4, t=2: n <= t^2, so with 2 genuine crashes the survivors cannot
	// assemble a quorum (need 3, only 2 alive) and detection blocks.
	c := sfsCluster(4, 2, 1)
	c.CrashAt(1, 1)
	c.CrashAt(1, 2)
	c.SuspectAt(10, 3, 1)
	res := c.Run()
	if c.Detectors[3].Detected(1) || c.Detectors[4].Detected(1) {
		t.Error("detection completed despite unreachable quorum (violates Theorem 7 analysis)")
	}
	// n=5, t=2: n > t^2, the same scenario completes.
	c2 := sfsCluster(5, 2, 1)
	c2.CrashAt(1, 1)
	c2.CrashAt(1, 2)
	c2.SuspectAt(10, 3, 1)
	c2.SuspectAt(10, 3, 2)
	res2 := c2.Run()
	if !c2.Detectors[3].Detected(1) || !c2.Detectors[4].Detected(1) || !c2.Detectors[5].Detected(1) {
		t.Error("detection did not complete despite n > t^2")
	}
	assertSFS(t, res2.History)
	_ = res
}

func TestAllButSuspectedPolicy(t *testing.T) {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 6, Seed: 2, MinDelay: 1, MaxDelay: 8},
		Det: core.Config{N: 6, T: 5, Protocol: core.SimulatedFailStop, Policy: core.AllButSuspected},
	})
	c.CrashAt(1, 6)
	c.SuspectAt(5, 1, 6)
	res := c.Run()
	assertSFS(t, res.History)
	for p := model.ProcID(1); p <= 5; p++ {
		if !c.Detectors[p].Detected(6) {
			t.Errorf("process %d did not detect 6 under AllButSuspected", p)
		}
	}
	// Quorums under AllButSuspected contain every unsuspected process.
	for p := model.ProcID(1); p <= 5; p++ {
		q := c.Detectors[p].Quorums()[6]
		if len(q) != 5 { // everyone but the crashed target
			t.Errorf("process %d quorum = %v, want all 5 live processes", p, q)
		}
	}
}

func TestSFS2dGatingOnAppTraffic(t *testing.T) {
	// An app on process 1 that sends an APP message to 3 right after
	// detecting 2. Process 3's receive must be deferred until 3 detects 2.
	app := &notifyApp{sendOnFailed: map[model.ProcID]model.ProcID{2: 3}}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 5, Seed: 11, MinDelay: 1, MaxDelay: 20},
		Det: core.Config{N: 5, T: 2, Protocol: core.SimulatedFailStop},
		App: func(p model.ProcID) core.App {
			if p == 1 {
				return app
			}
			return &notifyApp{}
		},
	})
	c.SuspectAt(5, 1, 2)
	res := c.Run()
	assertSFS(t, res.History) // includes the sFS2d check
	if !res.Quiescent() {
		t.Fatalf("not quiescent: %+v", res.Blocked)
	}
}

// notifyApp sends one APP message to sendOnFailed[j] when failed(j) fires.
type notifyApp struct {
	sendOnFailed map[model.ProcID]model.ProcID
	gotApp       []model.ProcID
	failures     []model.ProcID
}

func (a *notifyApp) Init(ctx node.Context, d *core.Detector) {}
func (a *notifyApp) OnAppMessage(ctx node.Context, d *core.Detector, from model.ProcID, data []byte) {
	a.gotApp = append(a.gotApp, from)
}
func (a *notifyApp) OnFailed(ctx node.Context, d *core.Detector, j model.ProcID) {
	a.failures = append(a.failures, j)
	if to, okTo := a.sendOnFailed[j]; okTo {
		d.SendApp(ctx, to, []byte("post-detection"))
	}
}
func (a *notifyApp) OnTimer(ctx node.Context, d *core.Detector, name string) {}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() model.History {
		c := sfsCluster(7, 2, 99)
		c.CrashAt(3, 7)
		c.SuspectAt(9, 1, 7)
		c.SuspectAt(9, 2, 6)
		return c.Run().History
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Same(b[i]) || a[i].Time != b[i].Time {
			t.Fatalf("histories diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSuspectSelfAndDuplicatesIgnored(t *testing.T) {
	c := sfsCluster(5, 2, 4)
	c.SuspectAt(5, 1, 1) // self-suspicion: ignored
	c.SuspectAt(6, 2, 3)
	c.SuspectAt(7, 2, 3) // duplicate: ignored
	res := c.Run()
	assertSFS(t, res.History)
	if c.Detectors[1].Suspects(1) {
		t.Error("self-suspicion must be ignored")
	}
	// Exactly one "suspect 3" internal event from process 2.
	count := 0
	for _, e := range res.History {
		if e.Kind == model.KindInternal && e.Tag == "suspect" && e.Proc == 2 && e.Target == 3 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("suspicion recorded %d times, want 1", count)
	}
}

func TestDetectorStateAccessors(t *testing.T) {
	c := sfsCluster(5, 2, 5)
	c.SuspectAt(5, 2, 1)
	c.Run()
	d := c.Detectors[2]
	if !d.Detected(1) || d.Detected(3) {
		t.Error("Detected() wrong")
	}
	if got := d.DetectedSet(); len(got) != 1 || got[0] != 1 {
		t.Errorf("DetectedSet() = %v", got)
	}
	if !d.Suspects(1) {
		t.Error("Suspects(1) = false")
	}
	if d.Crashed() {
		t.Error("process 2 should be alive")
	}
	if !c.Detectors[1].Crashed() {
		t.Error("process 1 should have crashed (false suspicion)")
	}
	if d.Config().QuorumSize != quorum.MinSize(5, 2) {
		t.Errorf("default quorum size = %d", d.Config().QuorumSize)
	}
	// Quorums returns copies.
	q1 := d.Quorums()
	q1[1][0] = 99
	if d.Quorums()[1][0] == 99 {
		t.Error("Quorums must return copies")
	}
}

func TestProtocolString(t *testing.T) {
	if core.SimulatedFailStop.String() != "sfs" ||
		core.Cheap.String() != "cheap" ||
		core.Unilateral.String() != "unilateral" {
		t.Error("Protocol.String names wrong")
	}
}

func TestNewDetectorPanics(t *testing.T) {
	for _, cfg := range []core.Config{
		{N: 1, T: 1},
		{N: 5, T: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDetector(%+v) did not panic", cfg)
				}
			}()
			core.NewDetector(cfg, nil, nil)
		}()
	}
}

func TestWitnessHoldsAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		// n=10, t=3: the smallest grid point with n > t^2 (Corollary 8), so
		// three concurrent erroneous detections still make progress.
		c := sfsCluster(10, 3, seed)
		c.SuspectAt(3, 1, 9)
		c.SuspectAt(4, 2, 8)
		c.SuspectAt(5, 3, 7)
		res := c.Run()
		assertSFS(t, res.History)
		if v := checker.WitnessProperty(res.History, core.TagSusp, 3); !v.Holds {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}
