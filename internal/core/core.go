// Package core implements the paper's primary contribution: the one-round
// simulated-fail-stop failure-detection protocol of §5, together with the
// two reference points the paper discusses — the "cheap" model of §6
// (broadcast, then detect unilaterally: every sFS property except sFS2b)
// and the unilateral strawman of §4 (detect with no communication at all).
//
// Protocol recap (§5). When process i suspects the failure of process j
// (spontaneously, e.g. via a timeout at the fd layer):
//
//   - i sends the message "j failed" to all processes. SUSP and ACK.SUSP are
//     the same message, so one broadcast per (process, target) pair suffices;
//     every process counts distinct senders of "j failed".
//   - When i has heard "j failed" from more than n(t-1)/t processes
//     (including itself), i executes failed_i(j).
//   - When any process x receives "x failed", x executes crash_x.
//   - When a process receives "y failed" for another y, it suspects y and
//     joins the protocol (broadcasting its own "y failed").
//
// sFS2d is obtained at the receive level: a Detector implements node.Gate
// and defers the receive event of an application message from sender s
// while there exists a target x such that "x failed" has been heard from s
// but failed_self(x) has not yet executed. Because channels are FIFO, any
// message s sent after executing failed_s(x) necessarily sits behind s's
// "x failed" broadcast, so the deferral implements exactly the sFS2d
// condition. (§5 states the blunter rule "take no other action until the
// protocol completes"; Config.StrictGating selects that literal variant,
// which is also correct but can block application traffic longer.)
package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/quorum"
	"failstop/internal/topo"
)

// Message tags used by the detector layer.
const (
	// TagSusp marks "j failed" protocol messages; Subject carries j.
	// SUSP and ACK.SUSP coincide in the §5 protocol.
	TagSusp = "SUSP"
	// TagApp marks application messages routed through Detector.SendApp.
	TagApp = "APP"
)

// Protocol selects the failure-detection protocol a Detector runs.
type Protocol int

// Protocols. SimulatedFailStop is the paper's §5 protocol; Cheap and
// Unilateral are the baselines the paper compares against in §4 and §6.
const (
	// SimulatedFailStop: one-round quorum protocol satisfying FS1+sFS2a-d.
	SimulatedFailStop Protocol = iota + 1
	// Cheap (§6): broadcast "j failed", then execute failed_i(j) immediately
	// without waiting. Satisfies sFS2a, sFS2c, sFS2d but not sFS2b: cyclic
	// failure detections are possible.
	Cheap
	// Unilateral (§4 strawman): execute failed_i(j) with no communication.
	// Violates sFS2a and sFS2d; exists to demonstrate why Conditions 1-3
	// force at least a broadcast.
	Unilateral
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case SimulatedFailStop:
		return "sfs"
	case Cheap:
		return "cheap"
	case Unilateral:
		return "unilateral"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// QuorumPolicy selects how the §5 protocol decides a quorum is complete.
type QuorumPolicy int

// Quorum policies (§4 discusses both implementations of the Witness
// property).
const (
	// FixedQuorum waits for a fixed number of "j failed" senders: more than
	// n(t-1)/t of them (Theorem 7's minimum) unless Config.QuorumSize
	// overrides it.
	FixedQuorum QuorumPolicy = iota + 1
	// AllButSuspected waits for "j failed" from every process that the
	// detector does not itself suspect of having failed. Requires only
	// t < n but waits for up to n-1 messages (§4's first implementation).
	AllButSuspected
)

// Config parameterizes a Detector.
type Config struct {
	// N is the number of processes; T the maximum number of failures in any
	// run, including those caused by erroneous suspicions.
	N, T int
	// Protocol selects the detection protocol. Default: SimulatedFailStop.
	Protocol Protocol
	// Policy selects quorum completion for SimulatedFailStop.
	// Default: FixedQuorum.
	Policy QuorumPolicy
	// QuorumSize overrides the fixed quorum size (counting the detector
	// itself). 0 means quorum.MinSize(N, T). Used by the lower-bound
	// experiments to run deliberately undersized quorums.
	QuorumSize int
	// StrictGating, when true, defers application receives whenever any
	// detection is in progress (§5's literal "takes no other action"), not
	// only those from senders with outstanding detections. Both settings
	// satisfy sFS2d; the strict one blocks more.
	StrictGating bool
	// DeferAppSends, when true, queues outgoing application messages while
	// any detection is in progress and flushes them on completion — the
	// sending half of §5's "takes no other action".
	DeferAppSends bool
	// Topology, when non-nil and not the complete graph, scopes the §5
	// protocol to each process's neighborhood: SUSP broadcasts go to
	// topology peers only, and quorums complete over the process's pool
	// (its neighborhood plus itself, internal/quorum.PoolOf) rather than
	// all N processes. nil means the paper's complete graph. The same
	// *topo.Topology value must be shared by every detector in a cluster —
	// it is immutable after construction, so sharing is safe.
	Topology *topo.Topology
	// Piggyback explores the paper's §6 future work ("stronger versions of
	// fail-stop", specifically a transitive failed-before relation): SUSP
	// messages carry the sender's completed detections, and a receiver does
	// not count a "j failed" toward j's quorum until it has itself detected
	// everything the sender had detected when it sent the message. This
	// strengthens the ordering of detections — a process can then only
	// detect y after detecting what y's supporters knew — at the price of
	// additional blocking (experiment A3 measures both effects). Process
	// ids are encoded one byte each, so Piggyback requires N <= 255.
	Piggyback bool
}

func (c Config) withDefaults() Config {
	if c.Protocol == 0 {
		c.Protocol = SimulatedFailStop
	}
	if c.Policy == 0 {
		c.Policy = FixedQuorum
	}
	if c.QuorumSize == 0 && c.Protocol == SimulatedFailStop && c.Policy == FixedQuorum {
		// Under a partial topology the minimum is per-process (it depends
		// on each process's degree), so it is resolved at Init time from
		// the pool instead of being fixed here.
		if c.Topology == nil || c.Topology.IsFull() {
			c.QuorumSize = quorum.MinSize(c.N, c.T)
		}
	}
	return c
}

// Component is a protocol layer co-hosted with the detector on the same
// process (the fd heartbeat layer). It receives messages whose tags the
// detector does not own and timers prefixed "fd/".
type Component interface {
	Init(ctx node.Context, d *Detector)
	OnMessage(ctx node.Context, d *Detector, from model.ProcID, p node.Payload)
	OnTimer(ctx node.Context, d *Detector, name string)
}

// App is the application hosted above the detector. It is the paper's
// "process within the system": it sees failure notifications and
// application messages, never raw protocol traffic.
type App interface {
	Init(ctx node.Context, d *Detector)
	// OnAppMessage delivers an application payload. Under the §5 protocol
	// the receive event has already been gated per sFS2d.
	OnAppMessage(ctx node.Context, d *Detector, from model.ProcID, data []byte)
	// OnFailed notifies the app that failed_self(j) has just executed.
	OnFailed(ctx node.Context, d *Detector, j model.ProcID)
	// OnTimer fires application timers (names without the "fd/" prefix).
	OnTimer(ctx node.Context, d *Detector, name string)
}

// AppCrashListener is optionally implemented by Apps that must observe the
// crash of their own process — e.g. the §6 last-process-to-fail application,
// which models stable storage surviving the crash.
type AppCrashListener interface {
	OnCrash(ctx node.Context, d *Detector)
}

// Detector is one process's failure-detection layer: a node.Handler that
// runs the configured protocol and hosts an optional fd Component and an
// optional App.
type Detector struct {
	cfg Config
	fd  Component
	app App

	self      model.ProcID
	pool      quorum.Pool // quorum membership under cfg.Topology (set at Init)
	threshold int         // FixedQuorum completion size for this process's pool
	crashed   bool
	suspected map[model.ProcID]bool                  // broadcast sent for target
	counts    map[model.ProcID]map[model.ProcID]bool // target -> senders of "target failed" (incl. self)
	detected  map[model.ProcID]bool                  // failed_self(target) executed
	quorums   map[model.ProcID][]model.ProcID        // target -> quorum snapshot at detection
	deferred  []deferredSend                         // app sends queued during detection
	pending   []pendingCount                         // piggybacked counts awaiting dependencies
}

// pendingCount is a "j failed" from sender whose piggybacked dependencies
// (the sender's detections at send time) the receiver has not yet matched.
type pendingCount struct {
	sender, target model.ProcID
	deps           []model.ProcID
}

type deferredSend struct {
	to   model.ProcID
	data []byte
}

// Interface conformance.
var (
	_ node.Handler       = (*Detector)(nil)
	_ node.Gate          = (*Detector)(nil)
	_ node.CrashListener = (*Detector)(nil)
	_ node.Restarter     = (*Detector)(nil)
)

// OnCrash implements node.CrashListener: it marks the detector dead (both
// genuine crashes injected by the environment and protocol-induced crashes
// flow through here) and forwards to the App if it listens.
func (d *Detector) OnCrash(ctx node.Context) {
	d.crashed = true
	if l, ok := d.app.(AppCrashListener); ok {
		l.OnCrash(ctx, d)
	}
}

// detectorSnapshot is the durable-state wire form of a Detector
// (internal/recovery): what the §5 layer remembers across a crash-restart
// cycle under durable recovery. Everything is in sorted-slice form so equal
// detector states encode to byte-identical snapshots. Two things are
// deliberately transient and absent: deferred application sends and pending
// piggybacked counts — both are in-flight work whose messages crash-time
// semantics say are lost, not remembered.
//
//sfs:wire
type detectorSnapshot struct {
	Suspected []model.ProcID  `json:"suspected,omitempty"`
	Detected  []model.ProcID  `json:"detected,omitempty"`
	Counts    []countSnapshot `json:"counts,omitempty"`
	Quorums   []countSnapshot `json:"quorums,omitempty"`
}

// countSnapshot is one target's sender set (for Counts) or quorum snapshot
// (for Quorums), senders sorted.
//
//sfs:wire
type countSnapshot struct {
	Target  model.ProcID   `json:"target"`
	Senders []model.ProcID `json:"senders"`
}

// Snapshot implements node.Restarter: it encodes the detector's protocol
// state (suspicions, quorum counts, completed detections with their quorum
// snapshots) at crash time. It does not mutate the detector.
func (d *Detector) Snapshot() []byte {
	snap := detectorSnapshot{
		Suspected: sortedTrueKeys(d.suspected),
		Detected:  d.DetectedSet(),
	}
	for _, target := range sortedMapKeys(d.counts) {
		snap.Counts = append(snap.Counts, countSnapshot{
			Target: target, Senders: sortedTrueKeys(d.counts[target]),
		})
	}
	for _, target := range sortedMapKeys(d.quorums) {
		members := make([]model.ProcID, len(d.quorums[target]))
		copy(members, d.quorums[target])
		snap.Quorums = append(snap.Quorums, countSnapshot{Target: target, Senders: members})
	}
	b, err := json.Marshal(snap)
	if err != nil {
		panic(fmt.Sprintf("core: encoding detector snapshot: %v", err))
	}
	return b
}

// OnRestart implements node.Restarter: the process comes back — blank under
// amnesia (nil state), or remembering its snapshot under durable recovery.
// Either way the crashed flag clears and Init re-runs the fd component and
// app, which is what plain Init cannot do for a crashed detector. Restored
// suspicions are NOT rebroadcast here: re-announcing them is the job of a
// stubborn message layer (internal/reliable with durable state), which is
// exactly the amnesia-vs-durable contrast experiment E15 measures. An
// undecodable snapshot degrades to amnesia rather than wedging the restart.
func (d *Detector) OnRestart(ctx node.Context, state []byte) {
	d.crashed = false
	d.suspected = make(map[model.ProcID]bool)
	d.counts = make(map[model.ProcID]map[model.ProcID]bool)
	d.detected = make(map[model.ProcID]bool)
	d.quorums = make(map[model.ProcID][]model.ProcID)
	d.deferred = nil
	d.pending = nil
	if len(state) > 0 {
		var snap detectorSnapshot
		if err := json.Unmarshal(state, &snap); err == nil {
			for _, j := range snap.Suspected {
				d.suspected[j] = true
			}
			for _, j := range snap.Detected {
				d.detected[j] = true
			}
			for _, c := range snap.Counts {
				set := make(map[model.ProcID]bool, len(c.Senders))
				for _, s := range c.Senders {
					set[s] = true
				}
				d.counts[c.Target] = set
			}
			for _, q := range snap.Quorums {
				members := make([]model.ProcID, len(q.Senders))
				copy(members, q.Senders)
				d.quorums[q.Target] = members
			}
		}
	}
	d.Init(ctx)
}

// sortedTrueKeys returns the keys mapped to true, sorted.
func sortedTrueKeys(m map[model.ProcID]bool) []model.ProcID {
	var out []model.ProcID
	for j, ok := range m {
		if ok {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// sortedMapKeys returns m's keys, sorted.
func sortedMapKeys[V any](m map[model.ProcID]V) []model.ProcID {
	out := make([]model.ProcID, 0, len(m))
	for j := range m {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// NewDetector builds a detector with the given configuration, optional fd
// component, and optional application.
func NewDetector(cfg Config, fd Component, app App) *Detector {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		panic("core: need at least 2 processes")
	}
	if cfg.T < 1 {
		panic("core: T must be at least 1")
	}
	return &Detector{
		cfg:       cfg,
		fd:        fd,
		app:       app,
		suspected: make(map[model.ProcID]bool),
		counts:    make(map[model.ProcID]map[model.ProcID]bool),
		detected:  make(map[model.ProcID]bool),
		quorums:   make(map[model.ProcID][]model.ProcID),
	}
}

// Config returns the detector's effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// Init implements node.Handler.
func (d *Detector) Init(ctx node.Context) {
	d.self = ctx.Self()
	d.pool = quorum.PoolOf(d.cfg.Topology, d.self, d.cfg.N, d.cfg.T)
	d.threshold = d.cfg.QuorumSize
	if d.threshold == 0 {
		d.threshold = d.pool.MinSize()
	}
	if d.fd != nil {
		d.fd.Init(ctx, d)
	}
	if d.app != nil {
		d.app.Init(ctx, d)
	}
}

// OnMessage implements node.Handler: protocol messages are handled here;
// application payloads go to the App; anything else goes to the fd
// Component.
func (d *Detector) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	if d.crashed {
		return
	}
	switch p.Tag {
	case TagSusp:
		d.onSusp(ctx, from, p.Subject, p.Data)
	case TagApp:
		if d.app != nil {
			d.app.OnAppMessage(ctx, d, from, p.Data)
		}
	default:
		if d.fd != nil {
			d.fd.OnMessage(ctx, d, from, p)
		}
	}
}

// OnTimer implements node.Handler: timers named "fd/..." belong to the fd
// component, the rest to the app.
func (d *Detector) OnTimer(ctx node.Context, name string) {
	if d.crashed {
		return
	}
	if len(name) >= 3 && name[:3] == "fd/" {
		if d.fd != nil {
			d.fd.OnTimer(ctx, d, name)
		}
		return
	}
	if d.app != nil {
		d.app.OnTimer(ctx, d, name)
	}
}

// Accepts implements node.Gate: the sFS2d receive deferral. Protocol and fd
// messages are always received; application messages are deferred while the
// receiver owes a detection that the sender has already announced (precise
// rule) or while any detection is in progress (StrictGating).
func (d *Detector) Accepts(from model.ProcID, p node.Payload) bool {
	if d.crashed || p.Tag != TagApp || d.cfg.Protocol == Unilateral {
		return true
	}
	if d.cfg.StrictGating {
		return !d.detecting()
	}
	for target, senders := range d.counts {
		if senders[from] && !d.detected[target] {
			return false
		}
	}
	return true
}

// Suspect initiates the failure-detection protocol for target j, e.g. on a
// timeout (the paper's "process i suspects the failure of process j").
// Suspecting oneself or an already-detected process is a no-op.
func (d *Detector) Suspect(ctx node.Context, j model.ProcID) {
	if d.crashed || j == d.self || j == model.None || d.suspected[j] || d.detected[j] {
		return
	}
	d.suspected[j] = true
	ctx.EmitInternal("suspect", j)
	switch d.cfg.Protocol {
	case Unilateral:
		// §4 strawman: no communication at all.
		d.complete(ctx, j, []model.ProcID{d.self})
		return
	case SimulatedFailStop, Cheap:
		d.broadcastSusp(ctx, j)
	}
	switch d.cfg.Protocol {
	case Unilateral:
		// Unreachable: the Unilateral arm above returned.
	case Cheap:
		// §6: detect immediately after the broadcast; no quorum wait.
		d.complete(ctx, j, []model.ProcID{d.self})
	case SimulatedFailStop:
		d.countSusp(ctx, j, d.self)
		// A new suspicion shrinks the AllButSuspected requirement for every
		// in-flight detection: re-evaluate them all.
		if d.cfg.Policy == AllButSuspected {
			d.reevaluateAll(ctx)
		}
	}
}

func (d *Detector) broadcastSusp(ctx node.Context, j model.ProcID) {
	var data []byte
	if d.cfg.Piggyback {
		data = encodeProcIDs(d.DetectedSet())
	}
	d.ForEachPeer(func(q model.ProcID) {
		ctx.Send(q, node.Payload{Tag: TagSusp, Subject: j, Data: data})
	})
}

// ForEachPeer calls fn for every process this detector broadcasts to, in
// ascending id order: the topology neighborhood under a partial topology,
// everyone but self under the complete graph. Co-hosted components (the fd
// heartbeat layer) use it so their fan-out follows the topology too.
func (d *Detector) ForEachPeer(fn func(q model.ProcID)) {
	if top := d.cfg.Topology; top != nil && !top.IsFull() {
		top.ForEachPeer(d.self, fn)
		return
	}
	for q := model.ProcID(1); int(q) <= d.cfg.N; q++ {
		if q != d.self {
			fn(q)
		}
	}
}

// PoolSize returns the number of processes (self included) whose testimony
// counts toward this detector's quorums — N under the complete graph, the
// neighborhood size plus one under a partial topology. Valid after Init.
func (d *Detector) PoolSize() int { return d.pool.Size() }

// QuorumThreshold returns the effective FixedQuorum completion size for
// this process: Config.QuorumSize if set, else the Theorem 7 minimum over
// the process's pool. Valid after Init.
func (d *Detector) QuorumThreshold() int { return d.threshold }

// encodeProcIDs packs process ids one byte each (ids are <= 255).
func encodeProcIDs(ps []model.ProcID) []byte {
	if len(ps) == 0 {
		return nil
	}
	out := make([]byte, len(ps))
	for i, p := range ps {
		out[i] = byte(p)
	}
	return out
}

// decodeProcIDs unpacks encodeProcIDs.
func decodeProcIDs(data []byte) []model.ProcID {
	out := make([]model.ProcID, len(data))
	for i, b := range data {
		out[i] = model.ProcID(b)
	}
	return out
}

// onSusp processes a "x failed" message from sender.
func (d *Detector) onSusp(ctx node.Context, sender, x model.ProcID, data []byte) {
	if x == d.self {
		// "When process x receives a message of the form 'x failed', x
		// executes crash_x."
		ctx.CrashSelf()
		d.crashed = true
		return
	}
	switch d.cfg.Protocol {
	case SimulatedFailStop:
		// "When process x receives a message of the form 'y failed', x
		// suspects the failure of y" — join the round, then count the sender.
		d.Suspect(ctx, x)
		if d.crashed {
			return
		}
		if d.cfg.Piggyback {
			if deps := d.unmetDeps(data); len(deps) > 0 {
				// The sender knew of detections we have not matched yet:
				// hold this count until we do (§6 exploration).
				d.pending = append(d.pending, pendingCount{sender: sender, target: x, deps: deps})
				return
			}
		}
		d.countSusp(ctx, x, sender)
	case Cheap:
		d.Suspect(ctx, x)
	case Unilateral:
		// Unilateral detectors send no SUSP messages, but crash-on-self-failed
		// above still applies if some other protocol's message arrives in a
		// mixed experiment; other targets are ignored.
	}
}

// countSusp records that sender has announced "j failed" and completes the
// detection if the quorum condition is met. Under a partial topology only
// pool members' testimony counts: a SUSP relayed from outside the
// neighborhood still triggers the join (Suspect) but cannot contribute to
// this process's quorum, which is what keeps the intersection guarantee
// scoped to the pool.
func (d *Detector) countSusp(ctx node.Context, j, sender model.ProcID) {
	if d.detected[j] || !d.pool.Counts(sender) {
		return
	}
	set := d.counts[j]
	if set == nil {
		set = make(map[model.ProcID]bool, d.pool.Size())
		d.counts[j] = set
	}
	set[sender] = true
	d.maybeComplete(ctx, j)
}

func (d *Detector) maybeComplete(ctx node.Context, j model.ProcID) {
	if d.crashed || d.detected[j] || !d.suspected[j] {
		return
	}
	set := d.counts[j]
	switch d.cfg.Policy {
	case FixedQuorum:
		if len(set) < d.threshold {
			return
		}
	case AllButSuspected:
		// Wait for "j failed" from every pool member not suspected by self.
		complete := true
		d.ForEachPeer(func(q model.ProcID) {
			if complete && !d.suspected[q] && !set[q] {
				complete = false
			}
		})
		if !complete {
			return
		}
	}
	members := make([]model.ProcID, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	d.complete(ctx, j, members)
}

func (d *Detector) reevaluateAll(ctx node.Context) {
	// Walk the suspected set in id order (not 1..N): O(open detections)
	// per call, and deterministic despite the map.
	for _, j := range sortedTrueKeys(d.suspected) {
		if d.crashed {
			return
		}
		if !d.detected[j] {
			d.maybeComplete(ctx, j)
		}
	}
}

// complete executes failed_self(j) with the given quorum snapshot.
func (d *Detector) complete(ctx node.Context, j model.ProcID, quorumSet []model.ProcID) {
	d.detected[j] = true
	d.quorums[j] = quorumSet
	ctx.EmitFailed(j)
	if d.app != nil {
		d.app.OnFailed(ctx, d, j)
	}
	if d.cfg.Piggyback {
		d.drainPending(ctx)
	}
	if !d.detecting() {
		d.flushDeferred(ctx)
	}
}

// unmetDeps returns the piggybacked detections (if any) that this process
// has not yet matched.
func (d *Detector) unmetDeps(data []byte) []model.ProcID {
	if len(data) == 0 {
		return nil
	}
	var out []model.ProcID
	for _, dep := range decodeProcIDs(data) {
		if !d.detected[dep] && dep != d.self {
			out = append(out, dep)
		}
	}
	return out
}

// drainPending re-evaluates piggybacked counts whose dependencies may have
// just been satisfied. Completing one count can complete a detection that
// unblocks others, so iterate to a fixpoint.
func (d *Detector) drainPending(ctx node.Context) {
	for {
		progressed := false
		rest := d.pending[:0]
		for _, pc := range d.pending {
			if d.crashed {
				return
			}
			met := true
			for _, dep := range pc.deps {
				if !d.detected[dep] {
					met = false
					break
				}
			}
			if met {
				d.countSusp(ctx, pc.target, pc.sender)
				progressed = true
			} else {
				rest = append(rest, pc)
			}
		}
		d.pending = rest
		if !progressed {
			return
		}
	}
}

// Detecting reports whether any detection is in progress: some target is
// suspected (broadcast sent) but failed_self(target) has not executed. It
// walks only the suspicion set, so callers can poll it per process without
// an O(N) scan over candidate targets.
func (d *Detector) Detecting() bool { return d.detecting() }

// detecting reports whether any detection is in progress.
func (d *Detector) detecting() bool {
	for j, susp := range d.suspected {
		if susp && !d.detected[j] {
			return true
		}
	}
	return false
}

func (d *Detector) flushDeferred(ctx node.Context) {
	pending := d.deferred
	d.deferred = nil
	for _, s := range pending {
		ctx.Send(s.to, node.Payload{Tag: TagApp, Data: s.data})
	}
}

// SendApp sends an application payload to another process through the
// detector layer. With Config.DeferAppSends, sends issued while a detection
// is in progress are queued and flushed when the protocol completes.
func (d *Detector) SendApp(ctx node.Context, to model.ProcID, data []byte) {
	if d.crashed {
		return
	}
	if d.cfg.DeferAppSends && d.detecting() {
		buf := make([]byte, len(data))
		copy(buf, data)
		d.deferred = append(d.deferred, deferredSend{to: to, data: buf})
		return
	}
	ctx.Send(to, node.Payload{Tag: TagApp, Data: data})
}

// Detected reports whether failed_self(j) has executed.
func (d *Detector) Detected(j model.ProcID) bool { return d.detected[j] }

// Suspects reports whether self has suspected j (broadcast issued).
func (d *Detector) Suspects(j model.ProcID) bool { return d.suspected[j] }

// Crashed reports whether the process crashed.
func (d *Detector) Crashed() bool { return d.crashed }

// DetectedSet returns the sorted set of processes detected so far.
func (d *Detector) DetectedSet() []model.ProcID {
	out := make([]model.ProcID, 0, len(d.detected))
	for j, ok := range d.detected {
		if ok {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Quorums returns a copy of the quorum snapshot for each completed
// detection: the set Q_{self,j} of Definition 5 (senders of "j failed"
// heard before failed_self(j), including self).
func (d *Detector) Quorums() map[model.ProcID][]model.ProcID {
	out := make(map[model.ProcID][]model.ProcID, len(d.quorums))
	for j, q := range d.quorums {
		cp := make([]model.ProcID, len(q))
		copy(cp, q)
		out[j] = cp
	}
	return out
}
