package core_test

import (
	"testing"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

// echoApp records received app payloads and can send on command.
type echoApp struct {
	got [][]byte
}

func (a *echoApp) Init(node.Context, *core.Detector) {}
func (a *echoApp) OnAppMessage(_ node.Context, _ *core.Detector, _ model.ProcID, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	a.got = append(a.got, cp)
}
func (a *echoApp) OnFailed(node.Context, *core.Detector, model.ProcID) {}
func (a *echoApp) OnTimer(node.Context, *core.Detector, string)        {}

func TestStrictGatingStillSFS(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		apps := make([]*echoApp, 11)
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: 10, Seed: seed, MinDelay: 1, MaxDelay: 15},
			Det: core.Config{N: 10, T: 3, StrictGating: true},
			App: func(p model.ProcID) core.App {
				a := &echoApp{}
				apps[p] = a
				return a
			},
		})
		c.SuspectAt(5, 2, 1)
		c.SuspectAt(6, 4, 3)
		// App traffic racing the detections.
		d5 := c.Detectors[5]
		c.Sim.At(7, 5, func(ctx node.Context) {
			for q := model.ProcID(1); q <= 10; q++ {
				if q != 5 {
					d5.SendApp(ctx, q, []byte{0xAB})
				}
			}
		})
		res := c.Run()
		if !res.Quiescent() {
			t.Fatalf("seed %d: strict gating deadlocked: %+v", seed, res.Blocked)
		}
		ab := res.History.DropTags(core.TagSusp)
		if v, allOK := checker.AllHold(checker.SFS(ab)); !allOK {
			t.Errorf("seed %d: %s", seed, v)
		}
		// App messages reached live processes despite the gating.
		delivered := 0
		for p := 1; p <= 10; p++ {
			if apps[p] != nil {
				delivered += len(apps[p].got)
			}
		}
		if delivered == 0 {
			t.Errorf("seed %d: no app traffic delivered under strict gating", seed)
		}
	}
}

func TestDeferAppSendsQueuedAndFlushed(t *testing.T) {
	apps := make([]*echoApp, 6)
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 5, Seed: 3, MinDelay: 2, MaxDelay: 4},
		Det: core.Config{N: 5, T: 2, DeferAppSends: true},
		App: func(p model.ProcID) core.App {
			a := &echoApp{}
			apps[p] = a
			return a
		},
	})
	d2 := c.Detectors[2]
	// Suspect, then immediately try to send app traffic from the same
	// process: the send must be deferred until the detection completes, and
	// then flushed.
	c.Sim.At(5, 2, func(ctx node.Context) {
		d2.Suspect(ctx, 1)
		d2.SendApp(ctx, 3, []byte{0x01})
		d2.SendApp(ctx, 4, []byte{0x02})
	})
	res := c.Run()
	if !res.Quiescent() {
		t.Fatalf("not quiescent: %+v", res.Blocked)
	}
	if len(apps[3].got) != 1 || apps[3].got[0][0] != 0x01 {
		t.Errorf("process 3 got %v", apps[3].got)
	}
	if len(apps[4].got) != 1 || apps[4].got[0][0] != 0x02 {
		t.Errorf("process 4 got %v", apps[4].got)
	}
	// The APP sends must appear in the history AFTER failed_2(1).
	fi := res.History.FailedIndex(2, 1)
	for _, e := range res.History {
		if e.Kind == model.KindSend && e.Tag == core.TagApp && e.Proc == 2 {
			if e.Seq < fi {
				t.Errorf("deferred app send at %d precedes detection at %d", e.Seq, fi)
			}
		}
	}
	assertSFS(t, res.History)
}

func TestPiggybackPreservesSFS(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: 10, Seed: seed, MinDelay: 1, MaxDelay: 15},
			Det: core.Config{N: 10, T: 3, Piggyback: true},
		})
		c.SuspectAt(5, 2, 1)
		c.SuspectAt(40, 3, 2) // second round: supporters have detections to piggyback
		res := c.Run()
		if !res.Quiescent() {
			t.Fatalf("seed %d: piggyback stalled: %+v", seed, res.Blocked)
		}
		assertSFS(t, res.History)
		// Both targets detected by all survivors.
		for p := model.ProcID(3); p <= 10; p++ {
			if !c.Detectors[p].Detected(1) || !c.Detectors[p].Detected(2) {
				t.Errorf("seed %d: process %d detections incomplete", seed, p)
			}
		}
	}
}

// Transitivity of failed-before (§6 discussion, and the future work the
// Piggyback option explores). A structural consequence of minimum quorums
// under FIFO channels: the senders a detector counts for target y delivered
// their channel prefixes, so any of them that had broadcast "x failed"
// earlier has already delivered it too; since any two quorums overlap in
// more than 2q-n > 0 processes, knowledge of earlier targets always travels
// with the quorum. The CHEAP model (quorum of one) has no such overlap:
// this scenario makes failed-before intransitive under cheap and shows the
// §5 protocol refusing the out-of-order detection.
func TestFailedBeforeTransitivityByProtocol(t *testing.T) {
	// Park "1 failed" toward 10 and toward 4, so 4 never learns of round 1
	// and 10 can never detect 1. Round 2 (target 2) is initiated by 4, so
	// 4's channel to 10 carries "2 failed" with no "1 failed" before it.
	park := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if (to == 10 || to == 4) && p.Tag == core.TagSusp && p.Subject == 1 {
			return -1
		}
		return 2
	}
	run := func(proto core.Protocol, piggyback bool) (model.History, *cluster.Cluster) {
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: 10, Seed: 1, Delay: park},
			Det: core.Config{N: 10, T: 2, Protocol: proto, Piggyback: piggyback},
		})
		c.SuspectAt(5, 2, 1)   // round 1: failed_2(1) among {1..9}\{4}
		c.SuspectAt(100, 4, 2) // round 2: initiated by the isolated 4
		res := c.Run()
		return res.History, c
	}

	// Cheap: 10 detects 2 on 4's lone message without ever detecting 1 —
	// 1 fb 2 and 2 fb 10 but not 1 fb 10.
	hCheap, cCheap := run(core.Cheap, false)
	if !cCheap.Detectors[2].Detected(1) || !cCheap.Detectors[10].Detected(2) ||
		cCheap.Detectors[10].Detected(1) {
		t.Fatal("cheap scenario did not produce the intransitive pattern")
	}
	if model.NewFailedBefore(hCheap).Transitive() {
		t.Error("cheap model should yield an intransitive relation here")
	}

	// §5 protocol (with or without piggyback): 10 cannot assemble a quorum
	// for 2 that dodges knowledge of 1; it stalls instead of detecting out
	// of order, and the relation stays transitive.
	for _, piggyback := range []bool{false, true} {
		h, c := run(core.SimulatedFailStop, piggyback)
		if c.Detectors[10].Detected(2) && !c.Detectors[10].Detected(1) {
			t.Errorf("piggyback=%v: 10 detected 2 without 1 under §5 quorums", piggyback)
		}
		if !model.NewFailedBefore(h).Transitive() {
			t.Errorf("piggyback=%v: §5 relation intransitive", piggyback)
		}
	}
}

// The Piggyback pending path: a "2 failed" carrying piggybacked detections
// is held until the receiver matches them, then drained and counted — the
// receiver's own detections stay ordered.
func TestPiggybackPendingDrained(t *testing.T) {
	// "1 failed" toward 5 crawls (500 ticks); round 2 starts at 100, so 5
	// receives second-round SUSPs with piggyback {1} long before it can
	// detect 1.
	slow := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if to == 5 && p.Tag == core.TagSusp && p.Subject == 1 {
			return 500
		}
		return 2
	}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 5, Seed: 1, Delay: slow},
		Det: core.Config{N: 5, T: 2, Piggyback: true},
	})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(100, 3, 2)
	res := c.Run()
	d5 := c.Detectors[5]
	if !d5.Detected(1) || !d5.Detected(2) {
		t.Fatalf("process 5 detections incomplete: %v", d5.DetectedSet())
	}
	// Process 5 detected 1 strictly before 2.
	f1, f2 := res.History.FailedIndex(5, 1), res.History.FailedIndex(5, 2)
	if f1 < 0 || f2 < 0 || f1 > f2 {
		t.Errorf("detection order at 5 wrong: failed_5(1)@%d failed_5(2)@%d", f1, f2)
	}
	assertSFS(t, res.History)
}

func TestPiggybackEncodingRoundTrip(t *testing.T) {
	// Exercised indirectly above; here check the Data bytes appear on the
	// wire with the detector's set.
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 5, Seed: 2, MinDelay: 1, MaxDelay: 3},
		Det: core.Config{N: 5, T: 2, Piggyback: true},
	})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(50, 3, 2)
	res := c.Run()
	sawPiggyback := false
	for _, e := range res.History {
		if e.Kind == model.KindSend && e.Tag == core.TagSusp && e.Target == 2 && e.Time >= 50 {
			sawPiggyback = true
		}
	}
	if !sawPiggyback {
		t.Error("no second-round SUSP traffic recorded")
	}
	assertSFS(t, res.History)
}

// Chained pending piggybacks: the drainPending fixpoint — completing one
// detection unblocks a pending count whose completion unblocks another.
func TestPiggybackChainedPending(t *testing.T) {
	// Deliveries of "1 failed" to 10 crawl the most, "2 failed" less, so 10
	// accumulates pending counts for targets 2 and 3 (whose piggybacks
	// reference 1 and {1,2}) before it can detect 1. n=10 with T=3 keeps
	// Corollary 8 satisfied across the three failures.
	slow := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if to == 10 && p.Tag == core.TagSusp {
			switch p.Subject {
			case 1:
				return 900
			case 2:
				return 500
			}
		}
		return 2
	}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 10, Seed: 2, Delay: slow},
		Det: core.Config{N: 10, T: 3, Piggyback: true},
	})
	c.SuspectAt(5, 2, 1)
	c.SuspectAt(100, 3, 2)
	c.SuspectAt(200, 4, 3)
	res := c.Run()
	d10 := c.Detectors[10]
	for _, j := range []model.ProcID{1, 2, 3} {
		if !d10.Detected(j) {
			t.Fatalf("process 10 did not detect %d: %v", j, d10.DetectedSet())
		}
	}
	// Detection order at 10 must respect the dependency chain 1 < 2 < 3.
	f1 := res.History.FailedIndex(10, 1)
	f2 := res.History.FailedIndex(10, 2)
	f3 := res.History.FailedIndex(10, 3)
	if !(f1 < f2 && f2 < f3) {
		t.Errorf("detection order at 10: failed(1)@%d failed(2)@%d failed(3)@%d", f1, f2, f3)
	}
	assertSFS(t, res.History)
}

// Detector.OnTimer routing: fd/ names go to the component, others to the
// app; both are exercised here directly.
func TestDetectorTimerRouting(t *testing.T) {
	fdGot, appGot := []string{}, []string{}
	comp := &timerComponent{got: &fdGot}
	app := &timerApp{got: &appGot}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 2, Seed: 1, MaxTime: 100},
		Det: core.Config{N: 2, T: 1},
		FD:  func(model.ProcID) core.Component { return comp },
		App: func(model.ProcID) core.App { return app },
	})
	c.Run()
	foundFD, foundApp := false, false
	for _, name := range fdGot {
		if name == "fd/ping" {
			foundFD = true
		}
	}
	for _, name := range appGot {
		if name == "app-ping" {
			foundApp = true
		}
	}
	if !foundFD || !foundApp {
		t.Errorf("timer routing wrong: fd=%v app=%v", fdGot, appGot)
	}
}

type timerComponent struct{ got *[]string }

func (c *timerComponent) Init(ctx node.Context, d *core.Detector)                            { ctx.SetTimer("fd/ping", 5) }
func (c *timerComponent) OnMessage(node.Context, *core.Detector, model.ProcID, node.Payload) {}
func (c *timerComponent) OnTimer(_ node.Context, _ *core.Detector, name string) {
	*c.got = append(*c.got, name)
}

type timerApp struct{ got *[]string }

func (a *timerApp) Init(ctx node.Context, d *core.Detector)                         { ctx.SetTimer("app-ping", 5) }
func (a *timerApp) OnAppMessage(node.Context, *core.Detector, model.ProcID, []byte) {}
func (a *timerApp) OnFailed(node.Context, *core.Detector, model.ProcID)             {}
func (a *timerApp) OnTimer(_ node.Context, _ *core.Detector, name string) {
	*a.got = append(*a.got, name)
}
