package core_test

import (
	"testing"
	"testing/quick"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/quorum"
	"failstop/internal/rewrite"
	"failstop/internal/sim"
)

// Property: for ANY pattern of up to t suspicions (random suspectors,
// random targets, random times) and any seed, a quiescent §5-protocol run
// satisfies the full sFS specification, the t-subfamily witness property,
// and is isomorphic to some fail-stop run.
func TestQuickRandomScenariosSatisfySFS(t *testing.T) {
	const n, tFail = 10, 3
	prop := func(seed int64, raw [3]uint16) bool {
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 20},
			Det: core.Config{N: n, T: tFail},
		})
		targets := map[model.ProcID]bool{}
		for _, r := range raw {
			i := model.ProcID(int(r%uint16(n)) + 1)
			j := model.ProcID(int((r>>4)%uint16(n)) + 1)
			at := int64(r%97) + 1
			if i == j {
				continue
			}
			// Respect the paper's bound: at most t distinct failure targets.
			if !targets[j] && len(targets) >= tFail {
				continue
			}
			targets[j] = true
			c.SuspectAt(at, i, j)
		}
		res := c.Run()
		if !res.Quiescent() {
			// With <= t targets and n > t² this must not happen.
			t.Logf("seed %d: not quiescent: %+v", seed, res.Blocked)
			return false
		}
		if err := res.History.Validate(); err != nil {
			t.Logf("seed %d: invalid history: %v", seed, err)
			return false
		}
		ab := res.History.DropTags(core.TagSusp)
		if v, allOK := checker.AllHold(checker.SFS(ab)); !allOK {
			t.Logf("seed %d: %s", seed, v)
			return false
		}
		if !checker.WitnessProperty(res.History, core.TagSusp, tFail).Holds {
			t.Logf("seed %d: witness property violated", seed)
			return false
		}
		out, _, err := rewrite.Graph(ab)
		if err != nil {
			t.Logf("seed %d: not realizable: %v", seed, err)
			return false
		}
		return rewrite.Verify(ab, out) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: quorum snapshots recorded by detectors match the quorum sets
// reconstructed from the trace alone, for random single-target scenarios.
func TestQuickQuorumSnapshotsMatchTrace(t *testing.T) {
	prop := func(seed int64, who uint8) bool {
		n := 8
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 12},
			Det: core.Config{N: n, T: 2},
		})
		suspector := model.ProcID(int(who)%(n-1) + 2) // 2..8
		c.SuspectAt(5, suspector, 1)
		res := c.Run()
		fromTrace := checker.QuorumSets(res.History, core.TagSusp)
		fromDetectors := c.QuorumSets()
		if len(fromTrace) != len(fromDetectors) {
			return false
		}
		// Compare as multisets of sorted memberships.
		count := func(sets []map[model.ProcID]bool) map[string]int {
			out := map[string]int{}
			for _, s := range sets {
				key := ""
				for p := model.ProcID(1); int(p) <= n; p++ {
					if s[p] {
						key += p.String() + ","
					}
				}
				out[key]++
			}
			return out
		}
		a, b := count(fromTrace), count(fromDetectors)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the minimum quorum size is exactly what the detector defaults
// to, for all (n, t) with t >= 1, n >= 2.
func TestQuickDefaultQuorum(t *testing.T) {
	prop := func(nRaw, tRaw uint8) bool {
		n := int(nRaw%30) + 2
		tt := int(tRaw%5) + 1
		d := core.NewDetector(core.Config{N: n, T: tt}, nil, nil)
		return d.Config().QuorumSize == quorum.MinSize(n, tt)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
