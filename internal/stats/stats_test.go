package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {150, 40},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestInts(t *testing.T) {
	xs := Ints([]int{1, 2})
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Errorf("Ints = %v", xs)
	}
}

// Property: Min <= Median <= P95 <= P99 <= P999 <= Max and Mean within
// [Min, Max] — the full quantile ladder the observability plane exposes.
func TestSummaryOrdering(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.P95+1e-9 &&
			s.P95 <= s.P99+1e-9 && s.P99 <= s.P999+1e-9 &&
			s.P999 <= s.Max+1e-9 && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeTailQuantiles(t *testing.T) {
	// 1..1000: the tail quantiles interpolate over the top of the range.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	for _, tt := range []struct {
		name      string
		got, want float64
	}{
		{"P99", s.P99, 990.01},
		{"P999", s.P999, 999.001},
		{"Min", s.Min, 1},
		{"Max", s.Max, 1000},
	} {
		if math.Abs(tt.got-tt.want) > 1e-6 {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
	// Degenerate sets collapse every quantile to the sample.
	s = Summarize([]float64{5})
	if s.P99 != 5 || s.P999 != 5 {
		t.Errorf("single-sample tail quantiles = %v / %v, want 5", s.P99, s.P999)
	}
}

// TestSummaryJSONRoundTrip: Summary is a wire struct (sweep shard reports,
// obs histogram snapshots); every field — including the tail quantiles —
// must survive encoding.
func TestSummaryJSONRoundTrip(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 100})
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"p95"`, `"p99"`, `"p999"`, `"min"`, `"max"`} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("encoded summary missing %s: %s", field, raw)
		}
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip = %+v, want %+v", back, s)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("n", "t", "result").
		Row(5, 2, "ok").
		Row(100, 10, 3.14159)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "result") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "3.14") {
		t.Errorf("float not formatted: %q", lines[3])
	}
	// Columns align: every line same width or longer header separator.
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}
