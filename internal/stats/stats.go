// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses: summaries of sample sets (mean, stddev,
// percentiles) and fixed-width text tables matching the EXPERIMENTS.md
// layout.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample set. It is part of the sweep shard-report
// wire format (sweep.CellResult embeds it), so fields carry explicit tags.
//
//sfs:wire
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	s.P999 = Percentile(sorted, 99.9)
	return s
}

// Percentile returns the p-th percentile (0..100) of sorted samples using
// nearest-rank interpolation. The input must already be sorted.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts integer samples for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Table renders fixed-width text tables.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
