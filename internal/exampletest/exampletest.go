// Package exampletest holds the one helper the examples' smoke tests
// share: running a main-style function with os.Stdout captured.
package exampletest

import (
	"io"
	"os"
	"testing"
)

// CaptureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything fn wrote. The previous stdout is restored before returning,
// including on test failure via t.Cleanup.
func CaptureStdout(t testing.TB, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	t.Cleanup(func() { os.Stdout = orig })
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	w.Close()
	os.Stdout = orig
	return <-done
}
