package model

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindSend, "send"},
		{KindRecv, "recv"},
		{KindCrash, "crash"},
		{KindFailed, "failed"},
		{KindInternal, "internal"},
		{Kind(0), "invalid(0)"},
		{Kind(99), "invalid(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		name string
		ev   Event
		want string
	}{
		{"send", Send(1, 2, 5, "SUSP", 4), "send_1(2, m5[SUSP j=4])"},
		{"send no subject", Send(1, 2, 5, "APP", None), "send_1(2, m5[APP])"},
		{"recv", Recv(2, 1, 5, "SUSP", 4), "recv_2(1, m5[SUSP j=4])"},
		{"crash", Crash(3), "crash_3"},
		{"failed", Failed(3, 7), "failed_3(7)"},
		{"internal", Internal(2, "leader", None), "internal_2[leader]"},
		{"internal subject", Internal(2, "suspect", 9), "internal_2[suspect j=9]"},
		{"invalid", Event{Proc: 4, Kind: Kind(42)}, "invalid_4(kind=42)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.ev.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestEventSame(t *testing.T) {
	a := Send(1, 2, 5, "APP", None)
	b := a
	b.Seq = 99
	b.Time = 1234
	if !a.Same(b) {
		t.Error("Same must ignore Seq and Time")
	}
	c := a
	c.Tag = "HB"
	if a.Same(c) {
		t.Error("Same must compare payload tags")
	}
	d := a
	d.Msg = 6
	if a.Same(d) {
		t.Error("Same must compare message ids")
	}
}

func TestEventPredicates(t *testing.T) {
	if !Send(1, 2, 1, "x", None).IsSend() || Send(1, 2, 1, "x", None).IsRecv() {
		t.Error("IsSend/IsRecv misclassify send")
	}
	if !Recv(1, 2, 1, "x", None).IsRecv() {
		t.Error("IsRecv misclassifies recv")
	}
	if !Crash(1).IsCrash() || !Failed(1, 2).IsFailed() {
		t.Error("IsCrash/IsFailed misclassify")
	}
}

func TestHistoryString(t *testing.T) {
	h := History{Failed(2, 1), Crash(1)}
	s := h.String()
	if !strings.Contains(s, "failed_2(1)") || !strings.Contains(s, "crash_1") {
		t.Errorf("History.String missing events: %q", s)
	}
}

func TestProcIDString(t *testing.T) {
	if ProcID(17).String() != "17" {
		t.Errorf("ProcID(17).String() = %q", ProcID(17).String())
	}
}
