// Package model defines the formal event model of Sabel & Marzullo,
// "Simulating Fail-Stop in Asynchronous Distributed Systems" (TR 94-1413).
//
// A system is a set of n processes {1..n} communicating over reliable,
// unidirectional FIFO channels. An execution is described by a History: a
// finite sequence of events, each of which belongs to exactly one process.
// The four event kinds of the paper — send, receive, crash, and failure
// detection — are represented directly, plus an "internal" kind used to
// record application-visible local steps (leader changes, suspicion onsets)
// that the paper folds into unnamed state transitions.
//
// All higher layers of this repository (simulator, protocol, checkers,
// rewriters) produce and consume values of this package; properties such as
// FS1/FS2 and sFS2a-d are defined over Histories, never over live state.
package model

import (
	"fmt"
	"strconv"
)

// ProcID identifies a process. Valid process ids are 1..n; 0 is reserved as
// "no process" for event fields that do not apply.
type ProcID int

// None is the zero ProcID, used when an event field carries no process.
const None ProcID = 0

// String returns the decimal form of the process id.
func (p ProcID) String() string { return strconv.Itoa(int(p)) }

// MsgID uniquely identifies a message within a history. The paper assumes
// all messages are unique ("they can easily be made so by including in m its
// source and a sequence number"); we realize that assumption with a
// history-wide counter. 0 means "no message".
type MsgID int64

// Kind enumerates the event kinds of the paper's formal model.
type Kind int

// Event kinds. Values start at 1 so that the zero Kind is invalid and
// accidental zero-valued events are caught by validation.
const (
	// KindSend is send_i(j, m): process i appends message m to channel C_{i,j}.
	KindSend Kind = iota + 1
	// KindRecv is recv_i(j, m): process i removes message m from the head of
	// channel C_{j,i}.
	KindRecv
	// KindCrash is crash_i: the local variable crash_i becomes true. The
	// process executes no further events.
	KindCrash
	// KindFailed is failed_i(j): process i detects the crash of process j;
	// the local variable failed_i(j) becomes true and stays true.
	KindFailed
	// KindInternal is a local computation step with no channel effect. The
	// paper's model permits such events (an event need not touch a channel);
	// we use them to record application-level observations.
	KindInternal
)

// String returns the paper's name for the event kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindCrash:
		return "crash"
	case KindFailed:
		return "failed"
	case KindInternal:
		return "internal"
	default:
		return "invalid(" + strconv.Itoa(int(k)) + ")"
	}
}

// Event is a single event of a history. The meaning of the auxiliary fields
// depends on Kind:
//
//   - KindSend:   Proc sends message Msg with payload tag Tag to Peer.
//     Target optionally names the subject process of a protocol
//     message (e.g. the j in "j failed").
//   - KindRecv:   Proc receives message Msg with payload tag Tag from Peer.
//     Target mirrors the send's Target.
//   - KindCrash:  Proc crashes. Peer, Target, Msg are unused.
//   - KindFailed: Proc detects the crash of Target. Peer, Msg are unused.
//   - KindInternal: Proc performs a local step described by Tag; Target may
//     name a subject process.
//
// Seq is the event's index within its history (assigned by Normalize or by
// the trace recorder). Time is the virtual time at which the simulator
// executed the event; it is informational only and plays no role in the
// formal model or in any property checker.
type Event struct {
	Seq    int    `json:"seq"`
	Proc   ProcID `json:"proc"`
	Kind   Kind   `json:"kind"`
	Peer   ProcID `json:"peer,omitempty"`
	Target ProcID `json:"target,omitempty"`
	Msg    MsgID  `json:"msg,omitempty"`
	Tag    string `json:"tag,omitempty"`
	Time   int64  `json:"time,omitempty"`
}

// Send constructs a send event: from sends message id to to, carrying tag
// and an optional subject process.
func Send(from, to ProcID, id MsgID, tag string, subject ProcID) Event {
	return Event{Proc: from, Kind: KindSend, Peer: to, Msg: id, Tag: tag, Target: subject}
}

// Recv constructs a receive event: by receives message id from from.
func Recv(by, from ProcID, id MsgID, tag string, subject ProcID) Event {
	return Event{Proc: by, Kind: KindRecv, Peer: from, Msg: id, Tag: tag, Target: subject}
}

// Crash constructs a crash event of p.
func Crash(p ProcID) Event { return Event{Proc: p, Kind: KindCrash} }

// Failed constructs a failure-detection event: i executes failed_i(j).
func Failed(i, j ProcID) Event { return Event{Proc: i, Kind: KindFailed, Target: j} }

// Internal constructs an internal event of p described by tag with an
// optional subject process.
func Internal(p ProcID, tag string, subject ProcID) Event {
	return Event{Proc: p, Kind: KindInternal, Tag: tag, Target: subject}
}

// TagRestart is the internal-event tag recording that a crashed process
// restarted (the crash-recovery deviation from the paper's model; see
// internal/recovery). A restart event clears the process's crashed status
// for history validation and for down-at-end accounting: the process
// executes events again afterwards.
const TagRestart = "restart"

// Restart constructs the internal event recording that p restarted after a
// crash. It is deliberately an internal event, not a new Kind: the paper's
// four-kind model is untouched, and only recovery-aware consumers (history
// validation, the FS1 checker's liveness accounting) interpret the tag.
func Restart(p ProcID) Event { return Internal(p, TagRestart, None) }

// String renders the event in the paper's notation, e.g. "failed_3(7)",
// "send_1(2, m5[SUSP j=4])".
func (e Event) String() string {
	switch e.Kind {
	case KindSend:
		return fmt.Sprintf("send_%d(%d, m%d[%s])", e.Proc, e.Peer, e.Msg, e.payload())
	case KindRecv:
		return fmt.Sprintf("recv_%d(%d, m%d[%s])", e.Proc, e.Peer, e.Msg, e.payload())
	case KindCrash:
		return fmt.Sprintf("crash_%d", e.Proc)
	case KindFailed:
		return fmt.Sprintf("failed_%d(%d)", e.Proc, e.Target)
	case KindInternal:
		if e.Target != None {
			return fmt.Sprintf("internal_%d[%s j=%d]", e.Proc, e.Tag, e.Target)
		}
		return fmt.Sprintf("internal_%d[%s]", e.Proc, e.Tag)
	default:
		return fmt.Sprintf("invalid_%d(kind=%d)", e.Proc, e.Kind)
	}
}

func (e Event) payload() string {
	if e.Target != None {
		return e.Tag + " j=" + e.Target.String()
	}
	return e.Tag
}

// Same reports whether two events are the same event up to position: all
// fields except Seq and Time are equal. Isomorphism of runs with respect to
// a process is defined over Same-equality of that process's events.
func (e Event) Same(o Event) bool {
	return e.Proc == o.Proc && e.Kind == o.Kind && e.Peer == o.Peer &&
		e.Target == o.Target && e.Msg == o.Msg && e.Tag == o.Tag
}

// IsSend reports whether the event is a send event.
func (e Event) IsSend() bool { return e.Kind == KindSend }

// IsRecv reports whether the event is a receive event.
func (e Event) IsRecv() bool { return e.Kind == KindRecv }

// IsCrash reports whether the event is a crash event.
func (e Event) IsCrash() bool { return e.Kind == KindCrash }

// IsFailed reports whether the event is a failure-detection event.
func (e Event) IsFailed() bool { return e.Kind == KindFailed }
