package model

// VClock is a vector clock over the process id space 1..n. Index 0 is
// unused so that VClock[p] is the component of process p directly.
type VClock []int64

// NewVClock returns a zeroed vector clock for n processes.
func NewVClock(n int) VClock { return make(VClock, n+1) }

// Clone returns a copy of the clock.
func (v VClock) Clone() VClock {
	c := make(VClock, len(v))
	copy(c, v)
	return c
}

// Join sets v to the componentwise maximum of v and o.
func (v VClock) Join(o VClock) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// LessEq reports whether v ≤ o componentwise.
func (v VClock) LessEq(o VClock) bool {
	for i := range v {
		var ov int64
		if i < len(o) {
			ov = o[i]
		}
		if v[i] > ov {
			return false
		}
	}
	return true
}

// HB computes happens-before over a history. It is built once per history
// and answers queries in O(1) via vector clocks. The relation follows the
// paper's Definition (§2): program order, send-before-matching-receive, and
// transitive closure — and, like the paper's, it is reflexive.
type HB struct {
	h      History
	clocks []VClock // clocks[k] is the vector clock of event k
}

// NewHB computes vector clocks for every event of h in a single pass.
// h must be a valid history (receives matched to earlier sends); NewHB does
// not re-validate.
func NewHB(h History) *HB {
	n := h.Processes()
	clocks := make([]VClock, len(h))
	last := make([]VClock, n+1) // last[p]: clock of p's most recent event
	sendClock := make(map[MsgID]VClock, len(h)/2)

	for k, e := range h {
		c := NewVClock(n)
		if prev := last[e.Proc]; prev != nil {
			copy(c, prev)
		}
		if e.Kind == KindRecv {
			if sc := sendClock[e.Msg]; sc != nil {
				c.Join(sc)
			}
		}
		c[e.Proc]++
		clocks[k] = c
		last[e.Proc] = c
		if e.Kind == KindSend {
			sendClock[e.Msg] = c
		}
	}
	return &HB{h: h, clocks: clocks}
}

// Before reports whether event at index a happens-before the event at index
// b (reflexively: Before(a, a) is true). Indexes are history positions.
func (hb *HB) Before(a, b int) bool {
	if a == b {
		return true
	}
	ea := hb.h[a]
	// Standard vector-clock test: a -> b iff VC(a)[proc(a)] <= VC(b)[proc(a)].
	pa := int(ea.Proc)
	cb := hb.clocks[b]
	if pa >= len(cb) {
		return false
	}
	return hb.clocks[a][pa] <= cb[pa]
}

// Concurrent reports whether the events at indexes a and b are unordered by
// happens-before.
func (hb *HB) Concurrent(a, b int) bool {
	return a != b && !hb.Before(a, b) && !hb.Before(b, a)
}

// Clock returns the vector clock of the event at index k (shared, not a copy).
func (hb *HB) Clock(k int) VClock { return hb.clocks[k] }

// BeforeBFS is a reference implementation of happens-before that walks the
// event DAG (program-order edges plus send→receive edges) instead of using
// vector clocks. It is exponentially slower and exists only as an oracle for
// property tests cross-checking HB.
func BeforeBFS(h History, a, b int) bool {
	if a == b {
		return true
	}
	if a > b {
		// happens-before implies history order (paper §2): a later event can
		// never happen-before an earlier one.
		return false
	}
	// Precompute edges: program-order successor and send->recv matching.
	next := make([]int, len(h)) // next[k]: index of the next event of h[k].Proc, or -1
	lastOf := make(map[ProcID]int)
	for k := range h {
		next[k] = -1
	}
	for k, e := range h {
		if prev, ok := lastOf[e.Proc]; ok {
			next[prev] = k
		}
		lastOf[e.Proc] = k
	}
	recvOf := make(map[MsgID]int)
	for k, e := range h {
		if e.Kind == KindRecv {
			recvOf[e.Msg] = k
		}
	}
	// BFS over indexes reachable from a via the relation.
	seen := make([]bool, len(h))
	queue := []int{a}
	seen[a] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			return true
		}
		if nk := next[cur]; nk >= 0 && !seen[nk] {
			seen[nk] = true
			queue = append(queue, nk)
		}
		if e := h[cur]; e.Kind == KindSend {
			if rk, ok := recvOf[e.Msg]; ok && !seen[rk] {
				seen[rk] = true
				queue = append(queue, rk)
			}
		}
	}
	return false
}
