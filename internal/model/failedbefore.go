package model

import (
	"fmt"
	"sort"
)

// FailedBefore is the paper's failed-before relation (Definition 3)
// restricted to a finite history: i failed-before j iff failed_j(i) occurs
// in the history. It is a directed graph over process ids.
type FailedBefore struct {
	n     int
	edges map[ProcID][]ProcID // i -> processes j such that failed_j(i) occurs
}

// NewFailedBefore extracts the failed-before relation from a history.
func NewFailedBefore(h History) *FailedBefore {
	fb := &FailedBefore{n: h.Processes(), edges: make(map[ProcID][]ProcID)}
	seen := make(map[[2]ProcID]bool)
	for _, e := range h {
		if e.Kind != KindFailed {
			continue
		}
		key := [2]ProcID{e.Target, e.Proc}
		if seen[key] {
			continue
		}
		seen[key] = true
		fb.edges[e.Target] = append(fb.edges[e.Target], e.Proc)
	}
	//sfs:allow detmaprange each value slice is sorted independently; visit order has no effect
	for _, succ := range fb.edges {
		sort.Slice(succ, func(a, b int) bool { return succ[a] < succ[b] })
	}
	return fb
}

// Holds reports whether i failed-before j (failed_j(i) occurred).
func (fb *FailedBefore) Holds(i, j ProcID) bool {
	for _, s := range fb.edges[i] {
		if s == j {
			return true
		}
	}
	return false
}

// Pairs returns all (i, j) pairs with i failed-before j, ordered.
func (fb *FailedBefore) Pairs() [][2]ProcID {
	var out [][2]ProcID
	var keys []ProcID
	for i := range fb.edges {
		keys = append(keys, i)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, i := range keys {
		for _, j := range fb.edges[i] {
			out = append(out, [2]ProcID{i, j})
		}
	}
	return out
}

// Cycle returns a cycle in the failed-before relation as a sequence of
// process ids (x1, x2, ..., xk) such that x1 failed-before x2, ...,
// xk failed-before x1 — i.e. a violation of sFS2b / Condition 2 — or nil if
// the relation is acyclic.
func (fb *FailedBefore) Cycle() []ProcID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ProcID]int, fb.n)
	parent := make(map[ProcID]ProcID, fb.n)

	var cycle []ProcID
	var dfs func(u ProcID) bool
	dfs = func(u ProcID) bool {
		color[u] = gray
		for _, v := range fb.edges[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u -> v: reconstruct v ... u.
				cycle = []ProcID{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// reverse to get v, ..., u in edge order
				for a, b := 0, len(cycle)-1; a < b; a, b = a+1, b-1 {
					cycle[a], cycle[b] = cycle[b], cycle[a]
				}
				return true
			}
		}
		color[u] = black
		return false
	}

	var roots []ProcID
	for i := range fb.edges {
		roots = append(roots, i)
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a] < roots[b] })
	for _, r := range roots {
		if color[r] == white && dfs(r) {
			return cycle
		}
	}
	return nil
}

// Acyclic reports whether the failed-before relation has no cycle
// (Condition 2 / sFS2b).
func (fb *FailedBefore) Acyclic() bool { return fb.Cycle() == nil }

// Transitive reports whether the relation is transitive: whenever i
// failed-before j and j failed-before k, also i failed-before k. §6 notes
// that sFS's failed-before relation is *not* transitive in general, and that
// transitivity enables faster last-process-to-fail recovery.
func (fb *FailedBefore) Transitive() bool {
	//sfs:allow detmaprange pure universally-quantified predicate; the boolean is visit-order-free
	for i, js := range fb.edges {
		for _, j := range js {
			for _, k := range fb.edges[j] {
				if k != i && !fb.Holds(i, k) {
					return false
				}
			}
		}
	}
	return true
}

// String renders the relation as "i -> j" lines.
func (fb *FailedBefore) String() string {
	pairs := fb.Pairs()
	out := make([]byte, 0, len(pairs)*8)
	for _, p := range pairs {
		out = append(out, fmt.Sprintf("%d failed-before %d\n", p[0], p[1])...)
	}
	return string(out)
}
