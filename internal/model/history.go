package model

import (
	"errors"
	"fmt"
)

// History is a finite prefix of a run's history: the sequence of events
// (e_0, e_1, e_2, ...) that transforms the initial global state into the
// final one. The paper's runs are infinite; this repository works with
// finite executions run to quiescence, and each property checker documents
// how it treats the finite horizon (see internal/checker).
type History []Event

// Normalize assigns each event's Seq field to its index and returns h.
func (h History) Normalize() History {
	for i := range h {
		h[i].Seq = i
	}
	return h
}

// Clone returns a deep copy of the history.
func (h History) Clone() History {
	c := make(History, len(h))
	copy(c, h)
	return c
}

// Processes returns the largest process id that appears anywhere in the
// history (as actor, peer, or target). Histories produced by the simulator
// use the contiguous id space 1..n, so this is n.
func (h History) Processes() int {
	max := ProcID(0)
	for _, e := range h {
		for _, p := range [...]ProcID{e.Proc, e.Peer, e.Target} {
			if p > max {
				max = p
			}
		}
	}
	return int(max)
}

// Projection returns the subsequence of events executed by process p,
// in history order. This is the operational form of the paper's r_i (the
// state sequence of i with stutters removed): two histories are isomorphic
// with respect to i exactly when their projections onto i are Same-equal
// event for event.
func (h History) Projection(p ProcID) []Event {
	var out []Event
	for _, e := range h {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// IsomorphicTo reports whether h =_P h': every process executes the same
// events in the same order in both histories (Definition 4's r =_P r').
func (h History) IsomorphicTo(o History) bool {
	n := h.Processes()
	if on := o.Processes(); on > n {
		n = on
	}
	for p := ProcID(1); p <= ProcID(n); p++ {
		a, b := h.Projection(p), o.Projection(p)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Same(b[i]) {
				return false
			}
		}
	}
	return true
}

// DropTags returns the subsequence of h without send/receive events whose
// payload tag is in tags. Crash, failed, and internal events are always
// kept.
//
// This is the abstraction step between a protocol implementation and the
// paper's model: the §5 protocol exchanges SUSP messages (and the fd layer
// exchanges heartbeats) in order to IMPLEMENT the failed/crash events, and
// the sFS properties of §3 constrain the model-level history — application
// messages plus crash and failed events — not the detector's own machinery.
// (§4 makes this explicit: a one-round protocol "exchanges one round of
// messages ... before executing failed_i(j)"; those messages realize the
// event, they are not events the model reasons about.) Dropping a tag
// removes both the send and the matching receive, so the result is again a
// valid history.
func (h History) DropTags(tags ...string) History {
	drop := make(map[string]bool, len(tags))
	for _, t := range tags {
		drop[t] = true
	}
	out := make(History, 0, len(h))
	for _, e := range h {
		if (e.Kind == KindSend || e.Kind == KindRecv) && drop[e.Tag] {
			continue
		}
		out = append(out, e)
	}
	return out.Normalize()
}

// CrashIndex returns the index of crash_p in h, or -1 if p never crashes.
func (h History) CrashIndex(p ProcID) int {
	for i, e := range h {
		if e.Kind == KindCrash && e.Proc == p {
			return i
		}
	}
	return -1
}

// FailedIndex returns the index of failed_i(j) in h, or -1 if i never
// detects the failure of j.
func (h History) FailedIndex(i, j ProcID) int {
	for k, e := range h {
		if e.Kind == KindFailed && e.Proc == i && e.Target == j {
			return k
		}
	}
	return -1
}

// SendIndex returns the index of the send event for message id, or -1.
func (h History) SendIndex(id MsgID) int {
	for i, e := range h {
		if e.Kind == KindSend && e.Msg == id {
			return i
		}
	}
	return -1
}

// RecvIndex returns the index of the receive event for message id, or -1.
func (h History) RecvIndex(id MsgID) int {
	for i, e := range h {
		if e.Kind == KindRecv && e.Msg == id {
			return i
		}
	}
	return -1
}

// Crashed returns the set of processes that crash in h at least once —
// including processes that later restart. For the set still down when the
// history ends, use DownAtEnd.
func (h History) Crashed() map[ProcID]bool {
	out := make(map[ProcID]bool)
	for _, e := range h {
		if e.Kind == KindCrash {
			out[e.Proc] = true
		}
	}
	return out
}

// DownAtEnd returns the set of processes that are crashed when the history
// ends: a crash puts a process in the set, a restart (internal TagRestart
// event) takes it out again. For histories without restarts this equals
// Crashed. FS1-style completeness accounting uses this set on both sides:
// a process that crashed but restarted is live again, so it neither needs
// detecting nor is excused from detecting others.
func (h History) DownAtEnd() map[ProcID]bool {
	out := make(map[ProcID]bool)
	for _, e := range h {
		switch {
		case e.Kind == KindCrash:
			out[e.Proc] = true
		case e.Kind == KindInternal && e.Tag == TagRestart:
			delete(out, e.Proc)
		}
	}
	return out
}

// Detections returns every (detector, detected) pair realized in h, in
// history order: one entry per failed_i(j) event.
func (h History) Detections() []Detection {
	var out []Detection
	for i, e := range h {
		if e.Kind == KindFailed {
			out = append(out, Detection{Detector: e.Proc, Detected: e.Target, Index: i})
		}
	}
	return out
}

// Detection is one failure-detection event: Detector executed
// failed_Detector(Detected) at history index Index.
type Detection struct {
	Detector ProcID
	Detected ProcID
	Index    int
}

// ValidationError describes a way in which a sequence of events fails to be
// a history of any run of the paper's system model.
type ValidationError struct {
	Index int    // offending event index, or -1 for history-wide violations
	Rule  string // short rule name, e.g. "fifo", "crash-finality"
	Desc  string
}

// Error implements the error interface.
func (v *ValidationError) Error() string {
	if v.Index >= 0 {
		return fmt.Sprintf("invalid history at event %d: %s: %s", v.Index, v.Rule, v.Desc)
	}
	return fmt.Sprintf("invalid history: %s: %s", v.Rule, v.Desc)
}

// ErrInvalidHistory is the sentinel wrapped by all validation errors.
var ErrInvalidHistory = errors.New("invalid history")

func violation(idx int, rule, format string, args ...any) error {
	return fmt.Errorf("%w: %w", ErrInvalidHistory,
		&ValidationError{Index: idx, Rule: rule, Desc: fmt.Sprintf(format, args...)})
}

// Validate checks that h could be the history of a run of the system model
// of §2 / Appendix A.1:
//
//   - every event has a valid kind and an actor process;
//   - each message id is sent at most once and received at most once;
//   - every receive matches an earlier send with the same message id over
//     the same channel (recv_i(j,m) requires an earlier send_j(i,m)), and
//     the payload tag and subject agree;
//   - channels are FIFO: receives on channel C_{j,i} occur in the order of
//     their matching sends. Sent-but-never-received messages are permitted
//     (the receiver may have crashed, or a network adversary may have
//     dropped the message — loss does not leave the model); receiving a
//     message the channel cursor has already passed does (reorder);
//   - crash is final: a crashed process executes no further events, and
//     crash_p occurs at most once per lifetime. The single deviation from
//     the paper's model is the crash-recovery restart event (an internal
//     event tagged TagRestart): it may follow a crash and clears the
//     process's crashed status, after which the process executes events —
//     including another crash — again. A restart by a process that is not
//     crashed is a violation;
//   - detection is stable and single-shot: failed_i(j) occurs at most once
//     per ordered pair (i, j).
//
// Validate returns nil for a valid history, or an error wrapping both
// ErrInvalidHistory and a *ValidationError describing the first violation.
func (h History) Validate() error {
	_, err := h.validate(nil)
	return err
}

// ValidateUnderByz validates h as Validate does, except that the three
// wire-level violations a scripted Byzantine sender produces — a payload
// that differs between send and receive (garble), a ghost re-receive of
// an already-received message (replay), and the FIFO overtake a delayed
// ghost causes — are tolerated when the message's sender is one of the
// fault plan's Byzantine victims. Every other rule, and every rule for
// honest senders, is enforced unchanged. It returns how many receive
// events were tolerated as scripted tampering.
func (h History) ValidateUnderByz(victims map[ProcID]bool) (tampered int, err error) {
	return h.validate(victims)
}

func (h History) validate(byzSenders map[ProcID]bool) (tampered int, err error) {
	type chanKey struct{ from, to ProcID }
	sendIdx := make(map[MsgID]int)         // message id -> send event index
	recvSeen := make(map[MsgID]bool)       // message id -> received already
	sendOrder := make(map[chanKey][]MsgID) // per-channel send order
	recvCursor := make(map[chanKey]int)    // per-channel next expected send position
	crashed := make(map[ProcID]bool)       // processes that have crashed
	detected := make(map[[2]ProcID]bool)   // (i,j) -> failed_i(j) seen

	for idx, e := range h {
		if e.Proc == None {
			return tampered, violation(idx, "actor", "event %s has no actor process", e)
		}
		switch e.Kind {
		case KindSend, KindRecv, KindCrash, KindFailed, KindInternal:
		default:
			return tampered, violation(idx, "kind", "event has invalid kind %d", int(e.Kind))
		}
		if restart := e.Kind == KindInternal && e.Tag == TagRestart; crashed[e.Proc] {
			if !restart {
				return tampered, violation(idx, "crash-finality", "process %d executes %s after crashing", e.Proc, e)
			}
			crashed[e.Proc] = false
		} else if restart {
			return tampered, violation(idx, "restart-without-crash", "process %d restarts without a prior crash", e.Proc)
		}
		switch e.Kind {
		case KindInternal:
			// Internal events carry no structural constraints beyond the
			// actor/finality checks above.
		case KindSend:
			if e.Peer == None || e.Msg == 0 {
				return tampered, violation(idx, "send", "send event %s lacks destination or message id", e)
			}
			if prev, dup := sendIdx[e.Msg]; dup {
				return tampered, violation(idx, "unique-msg", "message m%d sent twice (first at %d)", e.Msg, prev)
			}
			sendIdx[e.Msg] = idx
			k := chanKey{from: e.Proc, to: e.Peer}
			sendOrder[k] = append(sendOrder[k], e.Msg)
		case KindRecv:
			if e.Peer == None || e.Msg == 0 {
				return tampered, violation(idx, "recv", "receive event %s lacks source or message id", e)
			}
			si, ok := sendIdx[e.Msg]
			if !ok {
				return tampered, violation(idx, "recv-before-send", "message m%d received but never sent earlier", e.Msg)
			}
			fromByz := byzSenders[e.Peer]
			if recvSeen[e.Msg] {
				if fromByz {
					// A replay ghost: the plan re-injected an already
					// delivered wire payload on the victim's link.
					tampered++
					continue
				}
				return tampered, violation(idx, "unique-recv", "message m%d received twice", e.Msg)
			}
			s := h[si]
			if s.Proc != e.Peer || s.Peer != e.Proc {
				return tampered, violation(idx, "channel", "message m%d sent on C_{%d,%d} but received as if on C_{%d,%d}",
					e.Msg, s.Proc, s.Peer, e.Peer, e.Proc)
			}
			if s.Tag != e.Tag || s.Target != e.Target {
				if !fromByz {
					return tampered, violation(idx, "garble", "message m%d payload differs between send (%s) and receive (%s)",
						e.Msg, s.payload(), e.payload())
				}
				// Scripted corruption or equivocation on the victim's link:
				// the send records what the victim passed in, the receive
				// what the plan put on the wire.
				tampered++
			}
			k := chanKey{from: e.Peer, to: e.Proc}
			cur := recvCursor[k]
			order := sendOrder[k]
			// Scan forward from the cursor: sends skipped over are lost
			// messages (allowed); a message behind the cursor was overtaken
			// by a later one — a FIFO violation.
			pos := -1
			for i := cur; i < len(order); i++ {
				if order[i] == e.Msg {
					pos = i
					break
				}
			}
			if pos < 0 {
				if fromByz {
					// A delayed replay ghost of a never-delivered original
					// lands behind the channel cursor.
					tampered++
					recvSeen[e.Msg] = true
					continue
				}
				return tampered, violation(idx, "fifo", "message m%d received out of FIFO order on C_{%d,%d}", e.Msg, e.Peer, e.Proc)
			}
			recvCursor[k] = pos + 1
			recvSeen[e.Msg] = true
		case KindCrash:
			crashed[e.Proc] = true
		case KindFailed:
			if e.Target == None {
				return tampered, violation(idx, "failed", "failed event of %d lacks a target", e.Proc)
			}
			key := [2]ProcID{e.Proc, e.Target}
			if detected[key] {
				return tampered, violation(idx, "failed-once", "failed_%d(%d) executed twice", e.Proc, e.Target)
			}
			detected[key] = true
		}
	}
	return tampered, nil
}

// String renders the history one event per line, in the paper's notation.
func (h History) String() string {
	out := make([]byte, 0, len(h)*24)
	for i, e := range h {
		out = append(out, fmt.Sprintf("%4d  %s\n", i, e)...)
	}
	return string(out)
}
