package model

import (
	"testing"
	"testing/quick"
)

func TestVClockBasics(t *testing.T) {
	v := NewVClock(3)
	if len(v) != 4 {
		t.Fatalf("NewVClock(3) len = %d, want 4", len(v))
	}
	v[1], v[2] = 5, 1
	o := NewVClock(3)
	o[1], o[3] = 2, 7
	j := v.Clone()
	j.Join(o)
	if j[1] != 5 || j[2] != 1 || j[3] != 7 {
		t.Errorf("Join = %v", j)
	}
	if !v.LessEq(j) || !o.LessEq(j) {
		t.Error("join must dominate both operands")
	}
	if j.LessEq(v) {
		t.Error("j must not be <= v")
	}
	// Clone independence.
	c := v.Clone()
	c[1] = 100
	if v[1] == 100 {
		t.Error("Clone shares storage")
	}
	// LessEq with shorter other: missing components are zero.
	long := VClock{0, 1, 0}
	short := VClock{0}
	if long.LessEq(short) {
		t.Error("nonzero clock must not be <= zero clock")
	}
	if !short.LessEq(long) {
		t.Error("zero clock must be <= any clock")
	}
}

// The causal chain of Lemma 4: failed_i(j) -> send_i -> recv_k -> send_k -> recv_j.
func chainHistory() History {
	return History{
		Failed(1, 3),              // 0
		Send(1, 2, 1, "m1", None), // 1
		Recv(2, 1, 1, "m1", None), // 2
		Send(2, 3, 2, "m2", None), // 3
		Recv(3, 2, 2, "m2", None), // 4
		Internal(3, "e", None),    // 5
	}.Normalize()
}

func TestHappensBeforeChain(t *testing.T) {
	h := chainHistory()
	hb := NewHB(h)
	// Every event on the chain happens-before all later chain events.
	for a := 0; a < len(h); a++ {
		for b := a; b < len(h); b++ {
			if !hb.Before(a, b) {
				t.Errorf("expected %s -> %s", h[a], h[b])
			}
		}
	}
	// And the relation is antisymmetric apart from reflexivity.
	for a := 0; a < len(h); a++ {
		for b := a + 1; b < len(h); b++ {
			if hb.Before(b, a) {
				t.Errorf("unexpected %s -> %s", h[b], h[a])
			}
		}
	}
}

func TestHappensBeforeConcurrency(t *testing.T) {
	h := History{
		Send(1, 2, 1, "a", None), // 0
		Internal(3, "x", None),   // 1: concurrent with everything of 1 and 2
		Recv(2, 1, 1, "a", None), // 2
	}.Normalize()
	hb := NewHB(h)
	if !hb.Concurrent(0, 1) || !hb.Concurrent(1, 2) {
		t.Error("events of isolated process must be concurrent with others")
	}
	if hb.Concurrent(0, 2) {
		t.Error("send and matching recv are ordered")
	}
	if hb.Concurrent(0, 0) {
		t.Error("an event is not concurrent with itself")
	}
	if !hb.Before(0, 0) {
		t.Error("happens-before is reflexive (paper convention)")
	}
}

func TestHappensBeforeReflexive(t *testing.T) {
	h := chainHistory()
	hb := NewHB(h)
	for i := range h {
		if !hb.Before(i, i) {
			t.Errorf("Before(%d,%d) = false, want reflexive true", i, i)
		}
		if !BeforeBFS(h, i, i) {
			t.Errorf("BeforeBFS(%d,%d) = false, want reflexive true", i, i)
		}
	}
}

func TestClockExposed(t *testing.T) {
	h := chainHistory()
	hb := NewHB(h)
	c := hb.Clock(5)
	// Event 5 is causally after one event of 1, two of 2, and two of 3.
	if c[1] != 2 || c[2] != 2 || c[3] != 2 {
		t.Errorf("Clock(5) = %v, want [_, 2, 2, 2]", c)
	}
}

// Property: vector-clock happens-before agrees with the BFS oracle on
// random valid histories.
func TestHappensBeforeMatchesBFSOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		h := NewGen(seed).History(4, 60)
		hb := NewHB(h)
		for a := 0; a < len(h); a++ {
			for b := 0; b < len(h); b++ {
				if hb.Before(a, b) != BeforeBFS(h, a, b) {
					t.Logf("seed %d: disagreement at (%d, %d):\n%s", seed, a, b, h)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: happens-before implies history order for distinct events.
func TestHappensBeforeImpliesHistoryOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := NewGen(seed).History(5, 80)
		hb := NewHB(h)
		for a := 0; a < len(h); a++ {
			for b := 0; b < a; b++ {
				if hb.Before(a, b) {
					t.Fatalf("seed %d: later event %d happens-before earlier %d", seed, a, b)
				}
			}
		}
	}
}

// Property: happens-before is transitive.
func TestHappensBeforeTransitive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h := NewGen(seed).History(4, 40)
		hb := NewHB(h)
		for a := 0; a < len(h); a++ {
			for b := a; b < len(h); b++ {
				if !hb.Before(a, b) {
					continue
				}
				for c := b; c < len(h); c++ {
					if hb.Before(b, c) && !hb.Before(a, c) {
						t.Fatalf("seed %d: transitivity broken %d->%d->%d", seed, a, b, c)
					}
				}
			}
		}
	}
}

func BenchmarkNewHB(b *testing.B) {
	h := NewGen(1).History(10, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewHB(h)
	}
}

func BenchmarkHBQuery(b *testing.B) {
	h := NewGen(1).History(10, 2000)
	hb := NewHB(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.Before(i%len(h), (i*7)%len(h))
	}
}
