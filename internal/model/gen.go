package model

import "math/rand"

// Gen produces pseudo-random valid histories. It is used by property-based
// tests throughout the repository (happens-before oracles, validator
// invariants, rewriter stress tests) and by workload generators that need
// syntactically valid but semantically unconstrained executions.
//
// Histories produced by Gen always pass History.Validate: sends precede
// matching receives, channels are FIFO, crashed processes stop, and
// failed/crash events are single-shot. No sFS property is guaranteed —
// detections are placed arbitrarily, which is exactly what negative tests
// need.
type Gen struct {
	rng *rand.Rand
	// CrashWeight, FailedWeight, SendWeight, RecvWeight control the relative
	// frequency of generated event kinds. Zero values fall back to defaults.
	CrashWeight, FailedWeight, SendWeight, RecvWeight int
}

// NewGen returns a generator seeded deterministically.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) weights() (crash, failed, send, recv int) {
	crash, failed, send, recv = g.CrashWeight, g.FailedWeight, g.SendWeight, g.RecvWeight
	if crash == 0 {
		crash = 2
	}
	if failed == 0 {
		failed = 5
	}
	if send == 0 {
		send = 45
	}
	if recv == 0 {
		recv = 48
	}
	return crash, failed, send, recv
}

// History generates a valid history over n processes with approximately
// steps events. Tags are drawn from a small alphabet so that payload
// comparisons are exercised.
func (g *Gen) History(n, steps int) History {
	type chanKey struct{ from, to ProcID }
	inflight := make(map[chanKey][]Event) // queued sends not yet received
	var nonempty []chanKey                // channels with in-flight messages (may be stale)
	crashed := make(map[ProcID]bool, n)
	detected := make(map[[2]ProcID]bool)
	tags := [...]string{"APP", "SUSP", "HB", "DATA"}

	var h History
	var nextMsg MsgID
	alive := func() []ProcID {
		out := make([]ProcID, 0, n)
		for p := ProcID(1); p <= ProcID(n); p++ {
			if !crashed[p] {
				out = append(out, p)
			}
		}
		return out
	}

	wCrash, wFailed, wSend, wRecv := g.weights()
	total := wCrash + wFailed + wSend + wRecv

	for len(h) < steps {
		live := alive()
		if len(live) == 0 {
			break
		}
		roll := g.rng.Intn(total)
		switch {
		case roll < wSend: // send
			from := live[g.rng.Intn(len(live))]
			to := ProcID(g.rng.Intn(n) + 1)
			if to == from {
				continue
			}
			nextMsg++
			subject := ProcID(0)
			tag := tags[g.rng.Intn(len(tags))]
			if tag == "SUSP" {
				subject = ProcID(g.rng.Intn(n) + 1)
			}
			ev := Send(from, to, nextMsg, tag, subject)
			h = append(h, ev)
			k := chanKey{from, to}
			if len(inflight[k]) == 0 {
				nonempty = append(nonempty, k)
			}
			inflight[k] = append(inflight[k], ev)
		case roll < wSend+wRecv: // receive
			if len(nonempty) == 0 {
				continue
			}
			ki := g.rng.Intn(len(nonempty))
			k := nonempty[ki]
			q := inflight[k]
			if len(q) == 0 || crashed[k.to] {
				// stale entry or dead receiver: drop from candidates
				nonempty[ki] = nonempty[len(nonempty)-1]
				nonempty = nonempty[:len(nonempty)-1]
				continue
			}
			s := q[0]
			inflight[k] = q[1:]
			h = append(h, Recv(k.to, k.from, s.Msg, s.Tag, s.Target))
		case roll < wSend+wRecv+wFailed: // failure detection
			i := live[g.rng.Intn(len(live))]
			j := ProcID(g.rng.Intn(n) + 1)
			if i == j {
				continue
			}
			key := [2]ProcID{i, j}
			if detected[key] {
				continue
			}
			detected[key] = true
			h = append(h, Failed(i, j))
		default: // crash
			if len(live) == 1 {
				continue
			}
			p := live[g.rng.Intn(len(live))]
			crashed[p] = true
			h = append(h, Crash(p))
		}
	}
	return h.Normalize()
}
