package model

import (
	"errors"
	"testing"
	"testing/quick"
)

// twoProcExchange is a small valid history used by several tests:
// 1 sends m1 to 2, 2 receives it, 2 detects 1, 1 crashes.
func twoProcExchange() History {
	return History{
		Send(1, 2, 1, "APP", None),
		Recv(2, 1, 1, "APP", None),
		Failed(2, 1),
		Crash(1),
	}.Normalize()
}

func TestValidateAcceptsValidHistories(t *testing.T) {
	tests := []struct {
		name string
		h    History
	}{
		{"empty", History{}},
		{"exchange", twoProcExchange()},
		{"fifo pair", History{
			Send(1, 2, 1, "a", None),
			Send(1, 2, 2, "b", None),
			Recv(2, 1, 1, "a", None),
			Recv(2, 1, 2, "b", None),
		}},
		{"unreceived send", History{Send(1, 2, 1, "a", None)}},
		{"lost message skipped in FIFO order", History{
			Send(1, 2, 1, "a", None),
			Send(1, 2, 2, "b", None),
			Send(1, 2, 3, "c", None),
			Recv(2, 1, 2, "b", None), // m1 lost; later sends still in order
			Recv(2, 1, 3, "c", None),
		}},
		{"interleaved channels", History{
			Send(1, 2, 1, "a", None),
			Send(2, 1, 2, "b", None),
			Recv(1, 2, 2, "b", None),
			Recv(2, 1, 1, "a", None),
		}},
		{"crash then others continue", History{
			Crash(1),
			Send(2, 3, 1, "a", None),
			Recv(3, 2, 1, "a", None),
			Failed(2, 1),
			Failed(3, 1),
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.h.Validate(); err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
		})
	}
}

func TestValidateRejectsInvalidHistories(t *testing.T) {
	tests := []struct {
		name string
		h    History
		rule string
	}{
		{"no actor", History{{Kind: KindCrash}}, "actor"},
		{"bad kind", History{{Proc: 1}}, "kind"},
		{"recv before send", History{Recv(2, 1, 1, "a", None)}, "recv-before-send"},
		{"duplicate send", History{
			Send(1, 2, 1, "a", None),
			Send(1, 3, 1, "a", None),
		}, "unique-msg"},
		{"duplicate recv", History{
			Send(1, 2, 1, "a", None),
			Recv(2, 1, 1, "a", None),
			Recv(2, 1, 1, "a", None),
		}, "unique-recv"},
		{"wrong channel", History{
			Send(1, 2, 1, "a", None),
			Recv(3, 1, 1, "a", None),
		}, "channel"},
		{"garbled payload", History{
			Send(1, 2, 1, "a", None),
			Recv(2, 1, 1, "b", None),
		}, "garble"},
		{"fifo violation", History{
			Send(1, 2, 1, "a", None),
			Send(1, 2, 2, "b", None),
			Recv(2, 1, 2, "b", None),
			Recv(2, 1, 1, "a", None), // m1 overtaken by m2: reorder
		}, "fifo"},
		{"event after crash", History{
			Crash(1),
			Send(1, 2, 1, "a", None),
		}, "crash-finality"},
		{"double crash", History{
			Crash(1),
			Crash(1),
		}, "crash-finality"},
		{"double detection", History{
			Failed(1, 2),
			Failed(1, 2),
		}, "failed-once"},
		{"failed without target", History{{Proc: 1, Kind: KindFailed}}, "failed"},
		{"send without dest", History{{Proc: 1, Kind: KindSend, Msg: 1}}, "send"},
		{"send without msg", History{{Proc: 1, Kind: KindSend, Peer: 2}}, "send"},
		{"recv without msg", History{{Proc: 1, Kind: KindRecv, Peer: 2}}, "recv"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.h.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !errors.Is(err, ErrInvalidHistory) {
				t.Errorf("error %v does not wrap ErrInvalidHistory", err)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error %v does not wrap *ValidationError", err)
			}
			if verr.Rule != tt.rule {
				t.Errorf("rule = %q, want %q (err: %v)", verr.Rule, tt.rule, err)
			}
		})
	}
}

// TestValidateUnderByz: the three wire-level deviations a scripted
// Byzantine sender produces are tolerated (and counted) for victims, and
// still rejected for everyone else.
func TestValidateUnderByz(t *testing.T) {
	victims := map[ProcID]bool{3: true}
	tests := []struct {
		name     string
		h        History
		tampered int    // want, when valid
		rule     string // want rejection, when not
	}{
		{name: "garble from victim", h: History{
			Send(3, 2, 1, "a", None),
			Recv(2, 3, 1, "b", None),
		}, tampered: 1},
		{name: "garble from honest sender", h: History{
			Send(1, 2, 1, "a", None),
			Recv(2, 1, 1, "b", None),
		}, rule: "garble"},
		{name: "replay ghost from victim", h: History{
			Send(3, 2, 1, "a", None),
			Recv(2, 3, 1, "a", None),
			Recv(2, 3, 1, "a", None),
		}, tampered: 1},
		{name: "replay ghost from honest sender", h: History{
			Send(1, 2, 1, "a", None),
			Recv(2, 1, 1, "a", None),
			Recv(2, 1, 1, "a", None),
		}, rule: "unique-recv"},
		{name: "stale ghost behind the cursor", h: History{
			Send(3, 2, 1, "a", None),
			Send(3, 2, 2, "b", None),
			Recv(2, 3, 2, "b", None), // m1's original lost; cursor passes it
			Recv(2, 3, 1, "a", None), // ghost of m1 lands late
		}, tampered: 1},
		{name: "fifo violation from honest sender", h: History{
			Send(1, 2, 1, "a", None),
			Send(1, 2, 2, "b", None),
			Recv(2, 1, 2, "b", None),
			Recv(2, 1, 1, "a", None),
		}, rule: "fifo"},
		{name: "clean history counts zero", h: twoProcExchange(), tampered: 0},
		{name: "non-wire rules still enforced for victims", h: History{
			Crash(3),
			Send(3, 2, 1, "a", None),
		}, rule: "crash-finality"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tampered, err := tt.h.Normalize().ValidateUnderByz(victims)
			if tt.rule == "" {
				if err != nil {
					t.Fatalf("ValidateUnderByz() = %v, want nil", err)
				}
				if tampered != tt.tampered {
					t.Errorf("tampered = %d, want %d", tampered, tt.tampered)
				}
				return
			}
			var verr *ValidationError
			if !errors.As(err, &verr) || verr.Rule != tt.rule {
				t.Errorf("err = %v, want rule %q", err, tt.rule)
			}
		})
	}
}

func TestValidationErrorFormat(t *testing.T) {
	e := &ValidationError{Index: 3, Rule: "fifo", Desc: "boom"}
	if got := e.Error(); got != "invalid history at event 3: fifo: boom" {
		t.Errorf("Error() = %q", got)
	}
	e2 := &ValidationError{Index: -1, Rule: "global", Desc: "boom"}
	if got := e2.Error(); got != "invalid history: global: boom" {
		t.Errorf("Error() = %q", got)
	}
}

func TestProjectionAndIsomorphism(t *testing.T) {
	h := twoProcExchange()
	p1 := h.Projection(1)
	if len(p1) != 2 || !p1[0].IsSend() || !p1[1].IsCrash() {
		t.Fatalf("projection of 1 wrong: %v", p1)
	}
	p2 := h.Projection(2)
	if len(p2) != 2 || !p2[0].IsRecv() || !p2[1].IsFailed() {
		t.Fatalf("projection of 2 wrong: %v", p2)
	}

	// Swapping the two adjacent events of different processes preserves =_P.
	swapped := History{
		Send(1, 2, 1, "APP", None),
		Recv(2, 1, 1, "APP", None),
		Crash(1),
		Failed(2, 1),
	}.Normalize()
	if !h.IsomorphicTo(swapped) {
		t.Error("histories differing only in interleaving must be isomorphic")
	}
	if !swapped.IsomorphicTo(h) {
		t.Error("isomorphism must be symmetric")
	}

	// Dropping an event breaks isomorphism.
	if h.IsomorphicTo(h[:3]) {
		t.Error("prefix must not be isomorphic to full history")
	}

	// Reordering events of the *same* process breaks isomorphism.
	reordered := History{
		Recv(2, 1, 1, "APP", None), // invalid as a run, but IsomorphicTo is order-only
		Failed(2, 1),
		Send(1, 2, 1, "APP", None),
		Crash(1),
	}
	if !h.IsomorphicTo(reordered) {
		t.Error("per-process order preserved: still isomorphic")
	}
	sameProcSwap := History{
		Failed(2, 1),
		Recv(2, 1, 1, "APP", None),
		Send(1, 2, 1, "APP", None),
		Crash(1),
	}
	if h.IsomorphicTo(sameProcSwap) {
		t.Error("swapping same-process events must break isomorphism")
	}
}

func TestIndexHelpers(t *testing.T) {
	h := twoProcExchange()
	if got := h.CrashIndex(1); got != 3 {
		t.Errorf("CrashIndex(1) = %d, want 3", got)
	}
	if got := h.CrashIndex(2); got != -1 {
		t.Errorf("CrashIndex(2) = %d, want -1", got)
	}
	if got := h.FailedIndex(2, 1); got != 2 {
		t.Errorf("FailedIndex(2,1) = %d, want 2", got)
	}
	if got := h.FailedIndex(1, 2); got != -1 {
		t.Errorf("FailedIndex(1,2) = %d, want -1", got)
	}
	if got := h.SendIndex(1); got != 0 {
		t.Errorf("SendIndex(m1) = %d, want 0", got)
	}
	if got := h.RecvIndex(1); got != 1 {
		t.Errorf("RecvIndex(m1) = %d, want 1", got)
	}
	if got := h.SendIndex(42); got != -1 {
		t.Errorf("SendIndex(m42) = %d, want -1", got)
	}
	if got := h.RecvIndex(42); got != -1 {
		t.Errorf("RecvIndex(m42) = %d, want -1", got)
	}
}

func TestCrashedAndDetections(t *testing.T) {
	h := History{
		Failed(2, 1),
		Crash(1),
		Failed(3, 1),
		Crash(3),
	}.Normalize()
	crashed := h.Crashed()
	if !crashed[1] || !crashed[3] || crashed[2] {
		t.Errorf("Crashed() = %v", crashed)
	}
	dets := h.Detections()
	if len(dets) != 2 {
		t.Fatalf("Detections() len = %d, want 2", len(dets))
	}
	if dets[0] != (Detection{Detector: 2, Detected: 1, Index: 0}) {
		t.Errorf("dets[0] = %+v", dets[0])
	}
	if dets[1] != (Detection{Detector: 3, Detected: 1, Index: 2}) {
		t.Errorf("dets[1] = %+v", dets[1])
	}
}

func TestProcessesAndClone(t *testing.T) {
	h := History{Send(1, 7, 1, "a", None)}
	if got := h.Processes(); got != 7 {
		t.Errorf("Processes() = %d, want 7", got)
	}
	h2 := History{Failed(2, 9)}
	if got := h2.Processes(); got != 9 {
		t.Errorf("Processes() = %d, want 9", got)
	}
	c := h.Clone()
	c[0].Tag = "mutated"
	if h[0].Tag == "mutated" {
		t.Error("Clone must not share backing storage")
	}
}

func TestNormalizeAssignsSeq(t *testing.T) {
	h := History{Crash(1), Crash(2), Crash(3)}
	h.Normalize()
	for i, e := range h {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
	}
}

// Property: every history produced by Gen validates.
func TestGeneratedHistoriesAreValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64, nRaw, stepsRaw uint8) bool {
		n := int(nRaw%8) + 2
		steps := int(stepsRaw%200) + 1
		h := NewGen(seed).History(n, steps)
		return h.Validate() == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: generated histories are isomorphic to themselves and to clones.
func TestGeneratedHistoriesSelfIsomorphic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		h := NewGen(seed).History(5, 120)
		if !h.IsomorphicTo(h.Clone()) {
			t.Fatalf("seed %d: history not isomorphic to its clone", seed)
		}
	}
}
