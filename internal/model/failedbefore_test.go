package model

import (
	"testing"
)

func TestFailedBeforeBasics(t *testing.T) {
	h := History{
		Failed(2, 1), // 1 failed-before 2
		Crash(1),
		Failed(3, 1), // 1 failed-before 3
		Failed(3, 2), // 2 failed-before 3
	}.Normalize()
	fb := NewFailedBefore(h)
	if !fb.Holds(1, 2) || !fb.Holds(1, 3) || !fb.Holds(2, 3) {
		t.Error("missing failed-before pairs")
	}
	if fb.Holds(2, 1) || fb.Holds(3, 1) || fb.Holds(1, 1) {
		t.Error("spurious failed-before pairs")
	}
	pairs := fb.Pairs()
	want := [][2]ProcID{{1, 2}, {1, 3}, {2, 3}}
	if len(pairs) != len(want) {
		t.Fatalf("Pairs() = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("Pairs()[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
	if !fb.Acyclic() {
		t.Error("relation is acyclic")
	}
	if fb.Cycle() != nil {
		t.Error("Cycle() must be nil for acyclic relation")
	}
}

func TestFailedBeforeTwoCycle(t *testing.T) {
	// The §6 anomaly: 1 detects 2, 2 detects 1.
	h := History{
		Failed(1, 2),
		Failed(2, 1),
	}.Normalize()
	fb := NewFailedBefore(h)
	cyc := fb.Cycle()
	if cyc == nil {
		t.Fatal("expected a cycle")
	}
	if len(cyc) != 2 {
		t.Fatalf("cycle length = %d, want 2 (%v)", len(cyc), cyc)
	}
	assertIsCycle(t, fb, cyc)
	if fb.Acyclic() {
		t.Error("Acyclic() must be false")
	}
}

func TestFailedBeforeLongCycle(t *testing.T) {
	// k-cycle: failed_1(2), failed_2(3), ..., failed_k(1)
	const k = 5
	var h History
	for i := 1; i <= k; i++ {
		j := i%k + 1
		h = append(h, Failed(ProcID(i), ProcID(j))) // j failed-before i
	}
	fb := NewFailedBefore(h.Normalize())
	cyc := fb.Cycle()
	if cyc == nil {
		t.Fatal("expected a cycle")
	}
	if len(cyc) != k {
		t.Fatalf("cycle length = %d, want %d (%v)", len(cyc), k, cyc)
	}
	assertIsCycle(t, fb, cyc)
}

func TestFailedBeforeCycleAmongAcyclicNoise(t *testing.T) {
	h := History{
		Failed(2, 1),
		Failed(5, 4),
		Failed(6, 5),
		Failed(3, 7), // 7 -> 3
		Failed(7, 3), // 3 -> 7: 2-cycle among noise
	}.Normalize()
	fb := NewFailedBefore(h)
	cyc := fb.Cycle()
	if cyc == nil {
		t.Fatal("expected cycle")
	}
	assertIsCycle(t, fb, cyc)
}

// assertIsCycle verifies that cyc is a genuine cycle in fb.
func assertIsCycle(t *testing.T, fb *FailedBefore, cyc []ProcID) {
	t.Helper()
	for i := range cyc {
		from, to := cyc[i], cyc[(i+1)%len(cyc)]
		if !fb.Holds(from, to) {
			t.Errorf("claimed cycle edge %d failed-before %d does not hold", from, to)
		}
	}
}

func TestFailedBeforeDedup(t *testing.T) {
	// The same detection pair recorded once even if the relation is queried
	// from a history where an application layer logs duplicates (Validate
	// would reject them, but NewFailedBefore should still be robust).
	h := History{Failed(2, 1), Failed(2, 1)}
	fb := NewFailedBefore(h)
	if got := len(fb.Pairs()); got != 1 {
		t.Errorf("Pairs() len = %d, want 1", got)
	}
}

func TestFailedBeforeTransitivity(t *testing.T) {
	transitive := History{
		Failed(2, 1),
		Failed(3, 2),
		Failed(3, 1),
	}
	if !NewFailedBefore(transitive).Transitive() {
		t.Error("relation {1->2, 2->3, 1->3} is transitive")
	}
	intransitive := History{
		Failed(2, 1),
		Failed(3, 2),
	}
	if NewFailedBefore(intransitive).Transitive() {
		t.Error("relation {1->2, 2->3} is not transitive")
	}
	empty := NewFailedBefore(History{})
	if !empty.Transitive() || !empty.Acyclic() {
		t.Error("empty relation is transitive and acyclic")
	}
}

func TestFailedBeforeString(t *testing.T) {
	h := History{Failed(2, 1)}
	s := NewFailedBefore(h).String()
	if s != "1 failed-before 2\n" {
		t.Errorf("String() = %q", s)
	}
}

func TestFailedBeforeSelfLoop(t *testing.T) {
	// failed_i(i) violates sFS2c but the relation must still represent it
	// (as a 1-cycle) so checkers can report it.
	h := History{Failed(1, 1)}
	fb := NewFailedBefore(h)
	cyc := fb.Cycle()
	if cyc == nil || len(cyc) != 1 || cyc[0] != 1 {
		t.Errorf("Cycle() = %v, want [1]", cyc)
	}
}
