package reliable

import (
	"fmt"
	"testing"

	"failstop/internal/netadv"
	"failstop/internal/node"
	"failstop/internal/recovery"
	"failstop/internal/sim"
)

// runRestartLink wires sender(1) -> receiver(2) endpoints over a lossy sim
// network, crashes the sender mid-stream per the given one-shot lifetime,
// and injects one send every 10 ticks. Sends that land in the downtime
// window are dropped by the sim (a down process accepts no injections), so
// the caller knows exactly which payloads entered the link.
func runRestartLink(t *testing.T, seed int64, k int, mode recovery.Mode, lt recovery.Lifetime, rules ...netadv.Rule) (*recorder, *sim.Result) {
	t.Helper()
	plan := netadv.Plan{Name: "lossy", Rules: rules}
	if err := plan.Validate(2); err != nil {
		t.Fatal(err)
	}
	plane := netadv.NewPlane(plan, 2, seed)
	s := sim.New(sim.Config{
		N: 2, Seed: seed, MaxTime: 500000, Link: plane.Decide,
		Lifetimes: []recovery.Lifetime{lt},
		Recovery:  mode,
	})
	opts := Options{Enabled: true, RetryInterval: 25}
	sender := Wrap(idle{}, opts)
	rec := &recorder{}
	s.SetHandler(1, sender)
	s.SetHandler(2, Wrap(rec, opts))
	for i := 1; i <= k; i++ {
		payload := node.Payload{Tag: "APP", Data: []byte(fmt.Sprintf("m%03d", i))}
		s.At(int64(i*10), 1, func(ctx node.Context) {
			sender.Context(ctx).Send(2, payload)
		})
	}
	return rec, s.Run()
}

// TestDurableRestartNoSeqRegression is the crash-recovery property test: a
// durable sender restart never regresses the sequence numbers of the
// stubborn link. Across seeds and a lossy network, the receiver releases
// exactly the payloads that were accepted for sending (everything outside
// the downtime window), each exactly once, in FIFO order — frames unacked
// at the crash are restored from the snapshot and retransmitted, and
// post-restart sends continue from the persisted next sequence number
// instead of colliding with delivered ones.
func TestDurableRestartNoSeqRegression(t *testing.T) {
	const k = 40
	// Sender is down for ticks [157, 203): injections at 160..200 (i=16..20)
	// are lost, everything else must be released.
	lt := recovery.Lifetime{Proc: 1, Crash: 157, Restart: 203}
	rule := netadv.Rule{Drop: 0.3, JitterMax: 15}
	for seed := int64(0); seed < 12; seed++ {
		rec, res := runRestartLink(t, seed, k, recovery.Durable, lt, rule)
		if res.Stop != sim.StopDrained {
			t.Fatalf("seed %d: run hit the horizon (%v)", seed, res.Stop)
		}
		if res.Restarts != 1 || res.Recovered != 1 {
			t.Fatalf("seed %d: Restarts=%d Recovered=%d, want 1/1", seed, res.Restarts, res.Recovered)
		}
		var want []string
		for i := 1; i <= k; i++ {
			if at := int64(i * 10); at < lt.Crash || at >= lt.Restart {
				want = append(want, fmt.Sprintf("m%03d", i))
			}
		}
		if len(rec.released) != len(want) {
			t.Fatalf("seed %d: released %d payloads, want %d", seed, len(rec.released), len(want))
		}
		for i, p := range rec.released {
			if string(p.Data) != want[i] {
				t.Fatalf("seed %d: release %d = %q, want %q (duplicate or out-of-order after recovery)",
					seed, i, p.Data, want[i])
			}
		}
	}
}

// TestAmnesiaRestartLosesPostRestartSends documents the pathology durable
// recovery exists to prevent: an amnesiac sender restarts with a fresh
// sequence space, so its post-restart frames reuse sequence numbers the
// receiver has already released and die as duplicates — until the reused
// counter catches back up to the receiver's expectation. The sender
// silently loses exactly as many new payloads as it had delivered before
// the crash.
func TestAmnesiaRestartLosesPostRestartSends(t *testing.T) {
	lt := recovery.Lifetime{Proc: 1, Crash: 157, Restart: 203}
	rec, res := runRestartLink(t, 3, 40, recovery.Amnesia, lt)
	if res.Stop != sim.StopDrained {
		t.Fatalf("run hit the horizon (%v)", res.Stop)
	}
	// Pre-crash sends i=1..15 (ticks 10..150) are released, then the first
	// 15 post-restart sends (m021..m035, reused seqs 1..15) die as
	// duplicates; delivery resumes at m036 (reused seq 16 = nextExpected).
	var want []string
	for i := 1; i <= 15; i++ {
		want = append(want, fmt.Sprintf("m%03d", i))
	}
	for i := 36; i <= 40; i++ {
		want = append(want, fmt.Sprintf("m%03d", i))
	}
	if len(rec.released) != len(want) {
		t.Fatalf("amnesiac sender released %d payloads, want %d", len(rec.released), len(want))
	}
	for i, p := range rec.released {
		if string(p.Data) != want[i] {
			t.Fatalf("release %d = %q, want %q", i, p.Data, want[i])
		}
	}
	if res.AckedDuplicates == 0 {
		t.Error("no suppressed duplicates: the amnesia pathology did not manifest")
	}
}
