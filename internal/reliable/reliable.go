// Package reliable is an optional per-link reliable-delivery layer between
// a protocol handler and its host: sequence-numbered sends, cumulative
// acknowledgements, timer-driven retransmission with exponential backoff,
// and receiver-side dedup plus in-order (go-back-N) release: out-of-order
// frames are discarded, not buffered, so every frame the inner handler
// sees arrived in sequence through the host's receive gate.
//
// The paper's §5 protocol broadcasts each "j failed" message exactly once,
// which is sound on the reliable FIFO channels the model assumes but
// starves under the internal/netadv fault plane: a Cut partition (even one
// with a scheduled heal) permanently swallows the broadcast, and sustained
// probabilistic loss can leave quorums forever one sender short. An
// Endpoint restores the model's channel guarantees on top of a faulty
// network — the stubborn-link construction crash-recovery literature layers
// beneath crash-stop algorithms — so that healed partitions recover every
// in-flight detection instead of starving, and duplicated or reordered
// wire messages are masked before the protocol sees them.
//
// Layering. An Endpoint wraps a node.Handler and is itself a node.Handler:
// the host (internal/sim or internal/runtime) calls the Endpoint, the
// Endpoint frames and unframes wire messages, and the wrapped handler runs
// unmodified above it. Sends issued by the inner handler flow through the
// Endpoint because every callback hands the inner handler a wrapping
// node.Context whose Send assigns the next per-link sequence number. The
// netadv fault plane keeps operating on the wire below: data frames retain
// their original payload tag (so tag-targeted fault rules still match), and
// acknowledgement frames travel as TagAck messages.
//
// Timers use the reserved "rel/" name prefix, which the Endpoint consumes
// before the inner handler sees it (the fd layer similarly owns "fd/").
// Retransmission intervals are expressed in host ticks, so the identical
// Options drive the deterministic simulator (retransmit timers as scheduled
// virtual-time events) and the live runtime (real timers via Config.Tick)
// with the same semantics.
package reliable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
)

// TagAck marks pure acknowledgement frames. Acks carry a cumulative
// sequence number and are themselves unsequenced and unacknowledged — a
// lost ack only costs a retransmission, which is re-acknowledged.
const TagAck = "REL.ACK"

// Defaults for Options.
const (
	// DefaultRetryInterval is the initial retransmit interval in ticks:
	// comfortably above a default-delay round trip, so a fault-free link
	// sees zero retransmissions.
	DefaultRetryInterval = 40
	// DefaultBackoff doubles the retry interval after every round.
	DefaultBackoff = 2.0
)

// Options configures the reliable-delivery layer.
type Options struct {
	// Enabled turns the layer on. The zero Options leave the network bare.
	Enabled bool
	// RetryInterval is the initial retransmission interval in ticks.
	// Default: DefaultRetryInterval.
	RetryInterval int64
	// Backoff multiplies the retry interval after each retransmission round
	// on a link (exponential backoff). Default: DefaultBackoff.
	Backoff float64
	// MaxInterval caps the backed-off retry interval. Default:
	// 16 * RetryInterval.
	MaxInterval int64
	// MaxRetries bounds how many times one frame is retransmitted before
	// the link gives it up. 0 retries forever (a stubborn link): runs with
	// a crashed or permanently cut peer then never quiesce on their own, so
	// pair MaxRetries=0 with a simulation horizon.
	MaxRetries int
}

func (o Options) withDefaults() Options {
	if o.RetryInterval == 0 {
		o.RetryInterval = DefaultRetryInterval
	}
	if o.Backoff == 0 {
		o.Backoff = DefaultBackoff
	}
	if o.MaxInterval == 0 {
		o.MaxInterval = 16 * o.RetryInterval
	}
	return o
}

// Validate reports the first problem with the options, or nil.
func (o Options) Validate() error {
	if o.RetryInterval < 0 {
		return fmt.Errorf("reliable: negative RetryInterval %d", o.RetryInterval)
	}
	if o.Backoff != 0 && o.Backoff < 1 {
		return fmt.Errorf("reliable: Backoff %v < 1 would shrink the retry interval", o.Backoff)
	}
	if o.MaxInterval < 0 {
		return fmt.Errorf("reliable: negative MaxInterval %d", o.MaxInterval)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("reliable: negative MaxRetries %d", o.MaxRetries)
	}
	if o.MaxInterval != 0 && o.RetryInterval != 0 && o.MaxInterval < o.RetryInterval {
		return fmt.Errorf("reliable: MaxInterval %d below RetryInterval %d", o.MaxInterval, o.RetryInterval)
	}
	return nil
}

// Wire frame layout: a 25-byte header, followed (for data frames) by the
// original payload bytes. Data frames keep the original Tag and Subject so
// tag-targeted fault rules and trace-level tooling still see the protocol
// message they apply to. base is the lowest sequence number the sender
// still promises to deliver: everything below it is either already acked
// or abandoned (retry budget exhausted), so the receiver may skip the gap
// instead of waiting forever on a frame that will never come.
const (
	kindData  byte = 1
	kindAck   byte = 2
	headerLen      = 25 // kind(1) + seq(8) + cumulative ack(8) + base(8)
)

const timerPrefix = "rel/"

// frame is one unacknowledged send.
type frame struct {
	seq     uint64
	payload node.Payload // the original, unframed payload
	retries int
	sentAt  int64 // host time of the last transmission
}

// peerState is the per-directed-link state of one Endpoint.
type peerState struct {
	// Sender side: sequence counter, unacked frames (ascending seq), and
	// the current backed-off retry interval.
	nextSeq  uint64
	unacked  []frame
	interval int64
	armed    bool // a "rel/<peer>" timer is pending

	// Receiver side: the next in-order sequence to release. Out-of-order
	// frames are not buffered (go-back-N): retransmission redelivers them
	// in sequence, each through the host's receive gate.
	nextExpected uint64
}

// base returns the lowest sequence number this sender still promises on the
// link: everything below it is acked or abandoned.
func (ps *peerState) base() uint64 {
	if len(ps.unacked) > 0 {
		return ps.unacked[0].seq
	}
	return ps.nextSeq + 1
}

// Endpoint wraps a node.Handler with reliable delivery on every link it
// speaks. It implements node.Handler, node.Gate, and node.CrashListener;
// hosts treat it exactly like the handler it wraps.
//
// All mutable state is touched only inside host callbacks, which hosts
// serialize per process; the counters are atomic so live-backend stats can
// be read concurrently.
type Endpoint struct {
	inner node.Handler
	opts  Options
	peers map[model.ProcID]*peerState
	spans *obs.SpanRecorder

	retransmits obs.Counter
	ackedDups   obs.Counter
}

var (
	_ node.Handler       = (*Endpoint)(nil)
	_ node.Gate          = (*Endpoint)(nil)
	_ node.CrashListener = (*Endpoint)(nil)
	_ node.Restarter     = (*Endpoint)(nil)
)

// Wrap builds an Endpoint around inner. It panics on invalid options —
// configurations are authored, not computed.
func Wrap(inner node.Handler, opts Options) *Endpoint {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Endpoint{
		inner: inner,
		opts:  opts.withDefaults(),
		peers: make(map[model.ProcID]*peerState),
	}
}

// Inner returns the wrapped handler.
func (e *Endpoint) Inner() node.Handler { return e.inner }

// ReliableStats returns the layer's counters: frames retransmitted and
// received duplicates that were re-acknowledged and suppressed. Hosts
// discover this method structurally to surface the counters in their stats.
func (e *Endpoint) ReliableStats() (retransmits, ackedDuplicates int) {
	return int(e.retransmits.Value()), int(e.ackedDups.Value())
}

// SetSpans attaches a span recorder: every retransmitted frame records a
// retransmit span (detection-grade, not sampled — retransmissions are rare
// and each one is a fault-plane interaction worth seeing). Call before the
// host starts delivering.
func (e *Endpoint) SetSpans(rec *obs.SpanRecorder) { e.spans = rec }

// Context wraps a host context so that Send flows through the reliable
// layer. Injected actions (SuspectAt and friends) must wrap the context
// they are handed, or their sends would bypass sequencing.
func (e *Endpoint) Context(host node.Context) node.Context {
	return &relCtx{Context: host, e: e}
}

// relCtx is the context the inner handler sees: everything forwards to the
// host except Send.
type relCtx struct {
	node.Context
	e *Endpoint
}

func (c *relCtx) Send(to model.ProcID, p node.Payload) {
	c.e.send(c.Context, to, p)
}

func (e *Endpoint) peer(p model.ProcID) *peerState {
	ps := e.peers[p]
	if ps == nil {
		ps = &peerState{
			interval:     e.opts.RetryInterval,
			nextExpected: 1,
		}
		e.peers[p] = ps
	}
	return ps
}

// Init implements node.Handler.
func (e *Endpoint) Init(ctx node.Context) {
	e.inner.Init(e.Context(ctx))
}

// OnCrash implements node.CrashListener.
func (e *Endpoint) OnCrash(ctx node.Context) {
	if l, ok := e.inner.(node.CrashListener); ok {
		l.OnCrash(e.Context(ctx))
	}
}

// endpointSnapshot is the durable-state wire form of an Endpoint
// (internal/recovery): sequence counters and unacked frames per peer,
// sorted by peer id so equal states encode byte-identically, plus the
// wrapped handler's own snapshot. The backed-off retry interval and timer
// arming are transient and rebuilt on restart.
//
//sfs:wire
type endpointSnapshot struct {
	Peers []peerSnapshot `json:"peers,omitempty"`
	Inner []byte         `json:"inner,omitempty"`
}

// peerSnapshot is one directed link's durable state.
//
//sfs:wire
type peerSnapshot struct {
	Peer         model.ProcID    `json:"peer"`
	NextSeq      uint64          `json:"next_seq"`
	NextExpected uint64          `json:"next_expected"`
	Unacked      []frameSnapshot `json:"unacked,omitempty"`
}

// frameSnapshot is one unacked frame: the original payload plus its link
// sequence number and spent retry budget.
//
//sfs:wire
type frameSnapshot struct {
	Seq     uint64       `json:"seq"`
	Tag     string       `json:"tag,omitempty"`
	Subject model.ProcID `json:"subject,omitempty"`
	Data    []byte       `json:"data,omitempty"`
	Retries int          `json:"retries,omitempty"`
}

// Snapshot implements node.Restarter: it encodes the per-peer sequence
// state, every unacked frame, and the wrapped handler's snapshot. This is
// what completes the stubborn-link construction for crash-recovery: a
// durable restart resumes retransmitting exactly the frames the crash
// interrupted, with the sequence counters it crashed with, so restarts
// neither regress sequence numbers nor re-release delivered frames. It
// does not mutate the endpoint.
func (e *Endpoint) Snapshot() []byte {
	var snap endpointSnapshot
	ids := make([]model.ProcID, 0, len(e.peers))
	for id := range e.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		ps := e.peers[id]
		p := peerSnapshot{Peer: id, NextSeq: ps.nextSeq, NextExpected: ps.nextExpected}
		for _, f := range ps.unacked {
			p.Unacked = append(p.Unacked, frameSnapshot{
				Seq: f.seq, Tag: f.payload.Tag, Subject: f.payload.Subject,
				Data: f.payload.Data, Retries: f.retries,
			})
		}
		snap.Peers = append(snap.Peers, p)
	}
	if r, ok := e.inner.(node.Restarter); ok {
		snap.Inner = r.Snapshot()
	}
	b, err := json.Marshal(snap)
	if err != nil {
		panic(fmt.Sprintf("reliable: encoding endpoint snapshot: %v", err))
	}
	return b
}

// OnRestart implements node.Restarter. The link state is restored before
// the inner handler restarts, so sends the inner handler issues while
// recovering consume the restored sequence counters instead of reusing
// spent ones. Restored unacked frames are stamped due immediately: the
// first retry round after the restart re-announces everything the crash
// interrupted. A nil or undecodable state (amnesia) resets every link —
// which also means a restarted amnesiac sender reuses sequence numbers its
// peers have already seen, and its new frames die as duplicates until its
// counters catch up: the classic argument for persistence-mediated
// recovery, observable in experiment E15.
func (e *Endpoint) OnRestart(ctx node.Context, state []byte) {
	e.peers = make(map[model.ProcID]*peerState)
	var innerState []byte
	if len(state) > 0 {
		var snap endpointSnapshot
		if err := json.Unmarshal(state, &snap); err == nil {
			for _, p := range snap.Peers {
				ps := &peerState{
					nextSeq:      p.NextSeq,
					nextExpected: p.NextExpected,
					interval:     e.opts.RetryInterval,
				}
				for _, f := range p.Unacked {
					ps.unacked = append(ps.unacked, frame{
						seq:     f.Seq,
						payload: node.Payload{Tag: f.Tag, Subject: f.Subject, Data: f.Data},
						retries: f.Retries,
						sentAt:  ctx.Now() - e.opts.RetryInterval, // due now
					})
				}
				e.peers[p.Peer] = ps
				if len(ps.unacked) > 0 {
					e.arm(ctx, p.Peer, ps, 1)
				}
			}
			innerState = snap.Inner
		}
	}
	if r, ok := e.inner.(node.Restarter); ok {
		r.OnRestart(e.Context(ctx), innerState)
	} else {
		e.inner.Init(e.Context(ctx))
	}
}

// send sequences, buffers, and transmits one payload from the inner
// handler, arming the link's retransmit timer.
func (e *Endpoint) send(host node.Context, to model.ProcID, p node.Payload) {
	ps := e.peer(to)
	ps.nextSeq++
	f := frame{seq: ps.nextSeq, payload: p, sentAt: host.Now()}
	ps.unacked = append(ps.unacked, f)
	host.Send(to, e.frameData(ps, f))
	e.arm(host, to, ps, ps.interval)
}

// frameData encodes a data frame, piggybacking the cumulative ack for the
// reverse direction of the link and the sender's current base.
func (e *Endpoint) frameData(ps *peerState, f frame) node.Payload {
	hdr := make([]byte, headerLen, headerLen+len(f.payload.Data))
	hdr[0] = kindData
	binary.BigEndian.PutUint64(hdr[1:9], f.seq)
	binary.BigEndian.PutUint64(hdr[9:17], ps.nextExpected-1)
	binary.BigEndian.PutUint64(hdr[17:25], ps.base())
	return node.Payload{Tag: f.payload.Tag, Subject: f.payload.Subject, Data: append(hdr, f.payload.Data...)}
}

func (e *Endpoint) arm(host node.Context, to model.ProcID, ps *peerState, delay int64) {
	if ps.armed {
		return
	}
	if delay < 1 {
		delay = 1
	}
	ps.armed = true
	host.SetTimer(timerPrefix+strconv.Itoa(int(to)), delay)
}

// OnTimer implements node.Handler: "rel/" timers drive retransmission,
// everything else forwards to the inner handler.
func (e *Endpoint) OnTimer(ctx node.Context, name string) {
	if peerStr, ok := strings.CutPrefix(name, timerPrefix); ok {
		if id, err := strconv.Atoi(peerStr); err == nil {
			e.onRetry(ctx, model.ProcID(id))
		}
		return
	}
	e.inner.OnTimer(e.Context(ctx), name)
}

// onRetry retransmits the unacked frames that have gone a full retry
// interval without an ack (cumulative acks make this go-back-N), backs the
// interval off when anything was actually resent, and re-arms for the
// earliest outstanding deadline while work remains. Frames transmitted
// after the timer was armed are not due yet and ride to the next round —
// a fault-free link therefore never retransmits.
func (e *Endpoint) onRetry(host node.Context, to model.ProcID) {
	ps := e.peer(to)
	ps.armed = false
	if len(ps.unacked) == 0 {
		ps.interval = e.opts.RetryInterval
		return
	}
	now := host.Now()
	kept := ps.unacked[:0]
	var resend []frame
	for _, f := range ps.unacked {
		if now-f.sentAt < ps.interval {
			kept = append(kept, f) // not due yet
			continue
		}
		if e.opts.MaxRetries > 0 && f.retries >= e.opts.MaxRetries {
			continue // retry budget exhausted: abandon the frame
		}
		f.retries++
		f.sentAt = now
		kept = append(kept, f)
		resend = append(resend, f)
	}
	ps.unacked = kept
	// Transmit after the rebuild so each frame carries the post-abandonment
	// base — the receiver learns which gaps will never fill.
	for _, f := range resend {
		e.retransmits.Add(1)
		if e.spans != nil {
			e.spans.Record(obs.Span{
				Time: now, Kind: obs.SpanRetransmit,
				Proc: host.Self(), Peer: to, Tag: f.payload.Tag,
				Note: "seq=" + strconv.FormatUint(f.seq, 10) + " try=" + strconv.Itoa(f.retries),
			})
		}
		host.Send(to, e.frameData(ps, f))
	}
	if len(resend) > 0 {
		next := int64(float64(ps.interval) * e.opts.Backoff)
		if next > e.opts.MaxInterval {
			next = e.opts.MaxInterval
		}
		if next < ps.interval {
			next = ps.interval
		}
		ps.interval = next
	}
	if len(ps.unacked) == 0 {
		ps.interval = e.opts.RetryInterval
		return
	}
	due := ps.unacked[0].sentAt
	for _, f := range ps.unacked[1:] {
		if f.sentAt < due {
			due = f.sentAt
		}
	}
	e.arm(host, to, ps, due+ps.interval-now)
}

// OnMessage implements node.Handler: acks retire unacked frames; data
// frames are deduplicated and released to the inner handler in sequence
// order, each receipt answered with a cumulative ack. Out-of-order frames
// are discarded (go-back-N): the cumulative ack tells the sender where to
// resume, and retransmission redelivers them in order — so every released
// frame is one the host's receive gate approved.
func (e *Endpoint) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	if p.Tag == TagAck {
		if wf, ok := decodeFrame(p.Data); ok && wf.kind == kindAck {
			e.processAck(from, wf.ack)
		}
		return
	}
	wf, ok := decodeFrame(p.Data)
	if !ok || wf.kind != kindData {
		// Unframed traffic (a sender without the layer): pass through.
		e.inner.OnMessage(e.Context(ctx), from, p)
		return
	}
	e.processAck(from, wf.ack)
	ps := e.peer(from)
	// Nothing below base is still coming (acked or abandoned): skip the
	// gap so a bounded-retry link cannot wedge its receiver.
	if wf.base > ps.nextExpected {
		ps.nextExpected = wf.base
	}
	switch {
	case wf.seq < ps.nextExpected:
		// Already released (a retransmission crossed our ack) or abandoned.
		// Count it and let the ack below re-cover it.
		e.ackedDups.Add(1)
	case wf.seq == ps.nextExpected:
		ps.nextExpected++
		e.inner.OnMessage(e.Context(ctx), from, node.Payload{Tag: p.Tag, Subject: p.Subject, Data: wf.data})
	default:
		// Out of order: discard. The sender's retry timer redelivers it
		// once the gap frame has been released.
	}
	e.sendAck(ctx, from, ps)
}

func (e *Endpoint) sendAck(host node.Context, to model.ProcID, ps *peerState) {
	hdr := make([]byte, headerLen)
	hdr[0] = kindAck
	binary.BigEndian.PutUint64(hdr[9:17], ps.nextExpected-1)
	host.Send(to, node.Payload{Tag: TagAck, Data: hdr})
}

// processAck retires every frame the cumulative ack covers and resets the
// backoff once the link is clean.
func (e *Endpoint) processAck(from model.ProcID, ack uint64) {
	ps := e.peer(from)
	kept := ps.unacked[:0]
	for _, f := range ps.unacked {
		if f.seq > ack {
			kept = append(kept, f)
		}
	}
	ps.unacked = kept
	if len(ps.unacked) == 0 {
		ps.interval = e.opts.RetryInterval
	}
}

// Accepts implements node.Gate. Frames the Endpoint consumes itself (acks,
// duplicates, out-of-order data) are always accepted; the one frame that
// would be released to the inner handler right now — the next in sequence,
// after accounting for gaps the frame's base says will never fill — is
// subject to the inner gate, so the §5 sFS2d receive deferral keeps
// working through the layer. Since out-of-order frames are discarded
// rather than buffered, this is the only path into the inner handler.
// Accepts must not mutate state: hosts call it speculatively.
func (e *Endpoint) Accepts(from model.ProcID, p node.Payload) bool {
	if p.Tag == TagAck {
		return true
	}
	wf, ok := decodeFrame(p.Data)
	if !ok || wf.kind != kindData {
		if g, gok := e.inner.(node.Gate); gok {
			return g.Accepts(from, p)
		}
		return true
	}
	expected := uint64(1)
	if ps := e.peers[from]; ps != nil {
		expected = ps.nextExpected
	}
	if wf.base > expected {
		expected = wf.base // OnMessage will skip the abandoned gap
	}
	if wf.seq != expected {
		return true // duplicate or out-of-order: consumed internally
	}
	if g, gok := e.inner.(node.Gate); gok {
		return g.Accepts(from, node.Payload{Tag: p.Tag, Subject: p.Subject, Data: wf.data})
	}
	return true
}

// WireBody locates the framed payload bytes inside a data frame's wire
// data: it returns the offset at which the original (pre-framing) payload
// begins, and ok=false for data that is not a reliable-layer data frame
// (acks, or traffic from a sender without the layer). The netadv fault
// plane uses it — via node.WireBodyFn, to keep the fault plane from
// importing this package — to reach through the reliable header when a
// Byzantine rule must mutate or reseal the inner payload without breaking
// the framing.
func WireBody(data []byte) (offset int, ok bool) {
	wf, ok := decodeFrame(data)
	if !ok || wf.kind != kindData {
		return 0, false
	}
	return headerLen, true
}

func init() { node.WireBodyFn = WireBody }

// wireFrame is a decoded frame header plus the original payload bytes.
type wireFrame struct {
	kind           byte
	seq, ack, base uint64
	data           []byte
}

// decodeFrame splits a wire payload's data into the frame header and the
// original payload bytes. ok is false for data that does not carry a valid
// frame header.
func decodeFrame(data []byte) (wireFrame, bool) {
	if len(data) < headerLen {
		return wireFrame{}, false
	}
	kind := data[0]
	if kind != kindData && kind != kindAck {
		return wireFrame{}, false
	}
	wf := wireFrame{
		kind: kind,
		seq:  binary.BigEndian.Uint64(data[1:9]),
		ack:  binary.BigEndian.Uint64(data[9:17]),
		base: binary.BigEndian.Uint64(data[17:25]),
		data: data[headerLen:],
	}
	if len(wf.data) == 0 {
		wf.data = nil
	}
	return wf, true
}
