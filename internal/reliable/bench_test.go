package reliable

// Benchmarks for the reliable-delivery layer's fast path: a fault-free
// (drop = 0) link where every frame is acked on first delivery and nothing
// is ever retransmitted. BenchmarkLinkBare is the baseline without the
// layer; BenchmarkLinkReliableDrop0 adds framing + acks + timer churn.
// CI emits both as BENCH_reliable.json — the disabled configuration is the
// baseline itself, so its overhead is zero by construction, and the
// enabled-at-drop-0 delta is the number to watch.

import (
	"testing"

	"failstop/internal/node"
	"failstop/internal/sim"
)

const benchSends = 200

func benchLink(b *testing.B, opts Options) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{N: 2, Seed: 1, MaxTime: 100000})
		rec := &recorder{}
		send := func(ctx node.Context, p node.Payload) { ctx.Send(2, p) }
		if opts.Enabled {
			sender := Wrap(idle{}, opts)
			s.SetHandler(1, sender)
			s.SetHandler(2, Wrap(rec, opts))
			send = func(ctx node.Context, p node.Payload) { sender.Context(ctx).Send(2, p) }
		} else {
			s.SetHandler(1, idle{})
			s.SetHandler(2, rec)
		}
		payload := node.Payload{Tag: "APP", Data: []byte("payload")}
		for k := 1; k <= benchSends; k++ {
			s.At(int64(k), 1, func(ctx node.Context) { send(ctx, payload) })
		}
		res := s.Run()
		if len(rec.released) != benchSends {
			b.Fatalf("released %d, want %d", len(rec.released), benchSends)
		}
		if res.Retransmits != 0 {
			b.Fatalf("fault-free link retransmitted %d frames", res.Retransmits)
		}
	}
}

// BenchmarkLinkBare: the baseline — no reliable layer at all.
func BenchmarkLinkBare(b *testing.B) { benchLink(b, Options{}) }

// BenchmarkLinkReliableDrop0: the layer enabled on a fault-free link.
func BenchmarkLinkReliableDrop0(b *testing.B) { benchLink(b, Options{Enabled: true}) }
