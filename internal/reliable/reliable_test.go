package reliable

import (
	"fmt"
	"testing"

	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/node"
	"failstop/internal/sim"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"enabled defaults", Options{Enabled: true}, true},
		{"negative interval", Options{RetryInterval: -1}, false},
		{"shrinking backoff", Options{Backoff: 0.5}, false},
		{"negative max interval", Options{MaxInterval: -1}, false},
		{"negative max retries", Options{MaxRetries: -1}, false},
		{"cap below interval", Options{RetryInterval: 100, MaxInterval: 50}, false},
		{"explicit sane", Options{Enabled: true, RetryInterval: 20, Backoff: 1.5, MaxInterval: 200, MaxRetries: 4}, true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.opts.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestWrapPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wrap accepted invalid options")
		}
	}()
	Wrap(&recorder{}, Options{RetryInterval: -1})
}

// recorder is an inner handler that records every release in order.
type recorder struct {
	released []node.Payload
	from     []model.ProcID
}

func (r *recorder) Init(node.Context) {}
func (r *recorder) OnMessage(_ node.Context, from model.ProcID, p node.Payload) {
	r.released = append(r.released, p)
	r.from = append(r.from, from)
}
func (r *recorder) OnTimer(node.Context, string) {}

// idle is an inner handler that does nothing: the test drives its endpoint
// through injected actions.
type idle struct{}

func (idle) Init(node.Context)                                  {}
func (idle) OnMessage(node.Context, model.ProcID, node.Payload) {}
func (idle) OnTimer(node.Context, string)                       {}

// runLossyLink wires sender(1) -> receiver(2) endpoints over a sim whose
// network drops/duplicates/reorders per the given rules (none: a fault-free
// network), injects k sends, and returns the receiver's recorder plus the
// sim result.
func runLossyLink(t *testing.T, seed int64, k int, opts Options, rules ...netadv.Rule) (*recorder, *sim.Result) {
	t.Helper()
	plan := netadv.Plan{Name: "lossy", Rules: rules}
	if err := plan.Validate(2); err != nil {
		t.Fatal(err)
	}
	plane := netadv.NewPlane(plan, 2, seed)
	s := sim.New(sim.Config{N: 2, Seed: seed, MaxTime: 500000, Link: plane.Decide})
	sender := Wrap(idle{}, opts)
	rec := &recorder{}
	recv := Wrap(rec, opts)
	s.SetHandler(1, sender)
	s.SetHandler(2, recv)
	for i := 1; i <= k; i++ {
		payload := node.Payload{Tag: "APP", Data: []byte(fmt.Sprintf("m%03d", i))}
		s.At(int64(i*3), 1, func(ctx node.Context) {
			sender.Context(ctx).Send(2, payload)
		})
	}
	return rec, s.Run()
}

// TestFIFOReleaseUnderRandomFaults is the PR's property test: whatever the
// network does — drop, duplicate, reorder, jitter — the receiving endpoint
// releases exactly the sent payloads, each once, in send (FIFO) order.
func TestFIFOReleaseUnderRandomFaults(t *testing.T) {
	const k = 40
	rule := netadv.Rule{Drop: 0.3, Duplicate: 0.3, Reorder: 0.3, JitterMax: 15}
	sawRetransmit, sawDup := false, false
	for seed := int64(0); seed < 12; seed++ {
		rec, res := runLossyLink(t, seed, k, Options{Enabled: true, RetryInterval: 25}, rule)
		if res.Stop != sim.StopDrained {
			t.Fatalf("seed %d: run hit the horizon (%v); the stubborn link never converged", seed, res.Stop)
		}
		if len(rec.released) != k {
			t.Fatalf("seed %d: released %d payloads, want %d", seed, len(rec.released), k)
		}
		for i, p := range rec.released {
			want := fmt.Sprintf("m%03d", i+1)
			if string(p.Data) != want {
				t.Fatalf("seed %d: release %d = %q, want %q (FIFO violated)", seed, i, p.Data, want)
			}
			if p.Tag != "APP" {
				t.Fatalf("seed %d: release %d tag = %q, want APP", seed, i, p.Tag)
			}
		}
		if res.Retransmits > 0 {
			sawRetransmit = true
		}
		if res.AckedDuplicates > 0 {
			sawDup = true
		}
	}
	if !sawRetransmit {
		t.Error("0.3 drop over 12 seeds never forced a retransmission")
	}
	if !sawDup {
		t.Error("0.3 duplication over 12 seeds never produced a suppressed duplicate")
	}
}

// TestFaultFreeLinkNeverRetransmits: at drop=0 the layer is pure framing —
// no retransmissions, no suppressed duplicates, and identical releases.
func TestFaultFreeLinkNeverRetransmits(t *testing.T) {
	rec, res := runLossyLink(t, 1, 20, Options{Enabled: true})
	if res.Retransmits != 0 || res.AckedDuplicates != 0 {
		t.Errorf("fault-free link did work: retransmits=%d ackedDups=%d", res.Retransmits, res.AckedDuplicates)
	}
	if len(rec.released) != 20 {
		t.Errorf("released %d payloads, want 20", len(rec.released))
	}
	if res.Stop != sim.StopDrained {
		t.Errorf("fault-free run did not drain: %v", res.Stop)
	}
}

// TestMaxRetriesAbandonsIntoPermanentCut: a bounded stubborn link gives up
// after MaxRetries rounds, so the run quiesces instead of retransmitting
// into a permanent cut forever.
func TestMaxRetriesAbandonsIntoPermanentCut(t *testing.T) {
	cut := netadv.Rule{Cut: true, Links: netadv.LinkSet{Pairs: []netadv.Link{{From: 1, To: 2}}}}
	rec, res := runLossyLink(t, 1, 2, Options{Enabled: true, MaxRetries: 3}, cut)
	if res.Stop != sim.StopDrained {
		t.Fatalf("run did not drain: %v; MaxRetries must bound the stubbornness", res.Stop)
	}
	if len(rec.released) != 0 {
		t.Errorf("%d payloads crossed a permanent cut", len(rec.released))
	}
	// Both frames ride the same timer: each is retransmitted exactly
	// MaxRetries times, then abandoned.
	if res.Retransmits != 2*3 {
		t.Errorf("retransmits = %d, want 6 (2 frames x 3 retries)", res.Retransmits)
	}
}

// fakeCtx is a minimal host context for unit-level endpoint tests.
type fakeCtx struct {
	self  model.ProcID
	sends []struct {
		to model.ProcID
		p  node.Payload
	}
	timers map[string]int64
}

func newFakeCtx(self model.ProcID) *fakeCtx {
	return &fakeCtx{self: self, timers: map[string]int64{}}
}

func (c *fakeCtx) Self() model.ProcID { return c.self }
func (c *fakeCtx) N() int             { return 3 }
func (c *fakeCtx) Now() int64         { return 0 }
func (c *fakeCtx) Send(to model.ProcID, p node.Payload) {
	c.sends = append(c.sends, struct {
		to model.ProcID
		p  node.Payload
	}{to, p})
}
func (c *fakeCtx) SetTimer(name string, delay int64) { c.timers[name] = delay }
func (c *fakeCtx) CancelTimer(name string)           { delete(c.timers, name) }
func (c *fakeCtx) EmitFailed(model.ProcID)           {}
func (c *fakeCtx) CrashSelf()                        {}
func (c *fakeCtx) EmitInternal(string, model.ProcID) {}

// TestUnframedTrafficPassesThrough: a message from a sender running without
// the layer is handed to the inner handler unchanged and not acknowledged,
// so mixed deployments interoperate.
func TestUnframedTrafficPassesThrough(t *testing.T) {
	rec := &recorder{}
	e := Wrap(rec, Options{Enabled: true})
	ctx := newFakeCtx(2)
	raw := node.Payload{Tag: "APP", Data: []byte("bare")}
	e.OnMessage(ctx, 3, raw)
	if len(rec.released) != 1 || string(rec.released[0].Data) != "bare" {
		t.Fatalf("releases = %v, want the bare payload", rec.released)
	}
	if len(ctx.sends) != 0 {
		t.Errorf("endpoint acknowledged unframed traffic: %v", ctx.sends)
	}
	if r, d := e.ReliableStats(); r != 0 || d != 0 {
		t.Errorf("passthrough counted work: %d/%d", r, d)
	}
}

// TestDataFrameKeepsTagAndAck: wire frames preserve the payload's tag (so
// tag-targeted fault rules still match) and each release is answered with a
// cumulative TagAck frame.
func TestDataFrameKeepsTagAndAck(t *testing.T) {
	sender := Wrap(idle{}, Options{Enabled: true})
	sctx := newFakeCtx(1)
	sender.Context(sctx).Send(2, node.Payload{Tag: "SUSP", Subject: 3, Data: []byte("x")})
	if len(sctx.sends) != 1 {
		t.Fatalf("sends = %d, want 1", len(sctx.sends))
	}
	wire := sctx.sends[0].p
	if wire.Tag != "SUSP" || wire.Subject != 3 {
		t.Errorf("wire frame tag/subject = %q/%d, want SUSP/3", wire.Tag, wire.Subject)
	}
	if _, ok := sctx.timers[timerPrefix+"2"]; !ok {
		t.Error("send did not arm the link's retransmit timer")
	}

	rec := &recorder{}
	receiver := Wrap(rec, Options{Enabled: true})
	rctx := newFakeCtx(2)
	receiver.OnMessage(rctx, 1, wire)
	if len(rec.released) != 1 || string(rec.released[0].Data) != "x" || rec.released[0].Tag != "SUSP" {
		t.Fatalf("releases = %+v, want the unframed SUSP payload", rec.released)
	}
	if len(rctx.sends) != 1 || rctx.sends[0].p.Tag != TagAck {
		t.Fatalf("receiver sends = %+v, want one %s frame", rctx.sends, TagAck)
	}

	// Redelivering the same frame is suppressed and re-acked.
	receiver.OnMessage(rctx, 1, wire)
	if len(rec.released) != 1 {
		t.Error("duplicate frame released twice")
	}
	if _, d := receiver.ReliableStats(); d != 1 {
		t.Errorf("ackedDuplicates = %d, want 1", d)
	}
	if len(rctx.sends) != 2 || rctx.sends[1].p.Tag != TagAck {
		t.Error("duplicate frame was not re-acked")
	}

	// The ack retires the sender's frame: the next retry round finds
	// nothing to do and does not re-arm.
	sender.OnMessage(sctx, 2, rctx.sends[0].p)
	sctx.timers = map[string]int64{}
	sender.OnTimer(sctx, timerPrefix+"2")
	if len(sctx.sends) != 1 {
		t.Errorf("acked frame was retransmitted: %d sends", len(sctx.sends))
	}
	if len(sctx.timers) != 0 {
		t.Errorf("clean link re-armed: %v", sctx.timers)
	}
	if r, _ := sender.ReliableStats(); r != 0 {
		t.Errorf("retransmits = %d, want 0", r)
	}
}

// TestAcceptsGate: acks and non-head frames are always accepted (the
// endpoint consumes them internally); only the frame that would be released
// right now consults the inner gate.
func TestAcceptsGate(t *testing.T) {
	sender := Wrap(idle{}, Options{Enabled: true})
	sctx := newFakeCtx(1)
	relctx := sender.Context(sctx)
	relctx.Send(2, node.Payload{Tag: "APP", Data: []byte("a")})
	relctx.Send(2, node.Payload{Tag: "APP", Data: []byte("b")})
	first, second := sctx.sends[0].p, sctx.sends[1].p

	gate := &gatedInner{recorder: &recorder{}, accept: false}
	receiver := Wrap(gate, Options{Enabled: true})
	if !receiver.Accepts(1, node.Payload{Tag: TagAck, Data: make([]byte, headerLen)}) {
		t.Error("ack frame not accepted")
	}
	if !receiver.Accepts(1, second) {
		t.Error("out-of-order frame not accepted; the endpoint discards it internally")
	}
	if receiver.Accepts(1, first) {
		t.Error("head frame accepted although the inner gate defers it")
	}
	gate.accept = true
	if !receiver.Accepts(1, first) {
		t.Error("head frame rejected although the inner gate accepts it")
	}
}

type gatedInner struct {
	*recorder
	accept bool
}

func (g *gatedInner) Accepts(model.ProcID, node.Payload) bool { return g.accept }

// TestOutOfOrderDiscardedNotBuffered: go-back-N receiver semantics — an
// out-of-order frame is discarded (never released behind the inner gate's
// back) and redelivered by retransmission in sequence order.
func TestOutOfOrderDiscardedNotBuffered(t *testing.T) {
	sender := Wrap(idle{}, Options{Enabled: true})
	sctx := newFakeCtx(1)
	relctx := sender.Context(sctx)
	relctx.Send(2, node.Payload{Tag: "APP", Data: []byte("a")})
	relctx.Send(2, node.Payload{Tag: "APP", Data: []byte("b")})
	first, second := sctx.sends[0].p, sctx.sends[1].p

	rec := &recorder{}
	receiver := Wrap(rec, Options{Enabled: true})
	rctx := newFakeCtx(2)
	receiver.OnMessage(rctx, 1, second) // arrives first: must not be released
	if len(rec.released) != 0 {
		t.Fatalf("out-of-order frame released: %v", rec.released)
	}
	receiver.OnMessage(rctx, 1, first)
	receiver.OnMessage(rctx, 1, second) // retransmission redelivers in order
	if len(rec.released) != 2 || string(rec.released[0].Data) != "a" || string(rec.released[1].Data) != "b" {
		t.Fatalf("releases = %v, want a then b", rec.released)
	}
}

// TestAbandonedFrameDoesNotWedgeLink: when the retry budget exhausts
// inside a cut, the abandoned frame is lost — but later frames carry the
// sender's advanced base, so the receiver skips the gap instead of
// discarding everything after it forever.
func TestAbandonedFrameDoesNotWedgeLink(t *testing.T) {
	// Cut 1->2 during [10, 100): the t=20 send and its retries all die
	// inside the window and the retry budget (1) exhausts before the heal.
	cut := netadv.Rule{From: 10, Until: 100, Cut: true,
		Links: netadv.LinkSet{Pairs: []netadv.Link{{From: 1, To: 2}}}}
	plan := netadv.Plan{Name: "window-cut", Rules: []netadv.Rule{cut}}
	if err := plan.Validate(2); err != nil {
		t.Fatal(err)
	}
	plane := netadv.NewPlane(plan, 2, 1)
	s := sim.New(sim.Config{N: 2, Seed: 1, MaxTime: 10000, Link: plane.Decide})
	opts := Options{Enabled: true, RetryInterval: 20, MaxRetries: 1}
	sender := Wrap(idle{}, opts)
	rec := &recorder{}
	s.SetHandler(1, sender)
	s.SetHandler(2, Wrap(rec, opts))
	doomed := node.Payload{Tag: "APP", Data: []byte("doomed")}
	late := node.Payload{Tag: "APP", Data: []byte("late")}
	s.At(20, 1, func(ctx node.Context) { sender.Context(ctx).Send(2, doomed) })
	s.At(150, 1, func(ctx node.Context) { sender.Context(ctx).Send(2, late) })
	res := s.Run()
	if res.Stop != sim.StopDrained {
		t.Fatalf("run did not drain: %v", res.Stop)
	}
	if len(rec.released) != 1 || string(rec.released[0].Data) != "late" {
		t.Fatalf("releases = %v, want just the post-heal send (the abandoned gap must not wedge the link)", rec.released)
	}
}
