package sim

import (
	"fmt"
	"reflect"
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/recovery"
)

// counterHandler counts deliveries into a single integer and persists it as
// its snapshot, so tests can tell a durable restart (count survives) from an
// amnesiac one (count resets to zero).
type counterHandler struct {
	count    int
	restarts int
	inits    int
}

func (h *counterHandler) Init(node.Context) { h.inits++ }
func (h *counterHandler) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	h.count++
}
func (h *counterHandler) OnTimer(node.Context, string) {}
func (h *counterHandler) Snapshot() []byte {
	return []byte(fmt.Sprintf("%d", h.count))
}
func (h *counterHandler) OnRestart(ctx node.Context, state []byte) {
	h.restarts++
	h.count = 0
	if len(state) > 0 {
		fmt.Sscanf(string(state), "%d", &h.count)
	}
}

var _ node.Restarter = (*counterHandler)(nil)

// TestRestartOneShot: a single crash/restart cycle records crash then
// restart, and the process is not down at the end.
func TestRestartOneShot(t *testing.T) {
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 100,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 10, Restart: 30}},
		Recovery:  recovery.Amnesia,
	})
	h := &counterHandler{}
	s.SetHandler(1, idle())
	s.SetHandler(2, h)
	res := s.Run()
	if err := res.History.Validate(); err != nil {
		t.Fatalf("invalid history: %v\n%s", err, res.History)
	}
	if res.PlanCrashes != 1 || res.Restarts != 1 || res.Recovered != 0 {
		t.Errorf("PlanCrashes=%d Restarts=%d Recovered=%d, want 1/1/0",
			res.PlanCrashes, res.Restarts, res.Recovered)
	}
	if h.restarts != 1 {
		t.Errorf("handler saw %d restarts, want 1", h.restarts)
	}
	if down := res.History.DownAtEnd(); len(down) != 0 {
		t.Errorf("DownAtEnd() = %v, want empty", down)
	}
	if ci := res.History.CrashIndex(2); ci < 0 {
		t.Error("no crash event recorded for process 2")
	}
}

// TestRestartPeriodicStorm: a periodic lifetime crashes on the plan cadence
// until the horizon; every crash is followed by a restart.
func TestRestartPeriodicStorm(t *testing.T) {
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 1000,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 100, Restart: 150, Period: 200}},
		Recovery:  recovery.Amnesia,
	})
	h := &counterHandler{}
	s.SetHandler(1, idle())
	s.SetHandler(2, h)
	res := s.Run()
	// Crashes at 100, 300, 500, 700, 900; restarts 50 ticks later each time.
	if res.PlanCrashes != 5 || res.Restarts != 5 {
		t.Errorf("PlanCrashes=%d Restarts=%d, want 5/5", res.PlanCrashes, res.Restarts)
	}
	if h.restarts != 5 {
		t.Errorf("handler saw %d restarts, want 5", h.restarts)
	}
}

// TestRestartUntilBound: Until stops the periodic chain even before MaxTime.
func TestRestartUntilBound(t *testing.T) {
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 2000,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 100, Restart: 150, Period: 200, Until: 500}},
		Recovery:  recovery.Amnesia,
	})
	s.SetHandler(1, idle())
	s.SetHandler(2, &counterHandler{})
	res := s.Run()
	// Crashes at 100, 300, 500; 700 > Until.
	if res.PlanCrashes != 3 || res.Restarts != 3 {
		t.Errorf("PlanCrashes=%d Restarts=%d, want 3/3", res.PlanCrashes, res.Restarts)
	}
}

// TestRestartOffIsTerminal: under Recovery=Off the first plan crash is
// terminal — no restart, no periodic rescheduling, process down at end.
func TestRestartOffIsTerminal(t *testing.T) {
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 1000,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 100, Restart: 150, Period: 200}},
		Recovery:  recovery.Off,
	})
	h := &counterHandler{}
	s.SetHandler(1, idle())
	s.SetHandler(2, h)
	res := s.Run()
	if res.PlanCrashes != 1 || res.Restarts != 0 {
		t.Errorf("PlanCrashes=%d Restarts=%d, want 1/0", res.PlanCrashes, res.Restarts)
	}
	if h.restarts != 0 {
		t.Errorf("handler saw %d restarts, want 0", h.restarts)
	}
	if down := res.History.DownAtEnd(); !down[2] {
		t.Errorf("DownAtEnd() = %v, want {2}", down)
	}
}

// TestRestartDurableVsAmnesia: the same lifetime run under Durable restores
// the snapshot taken at crash time; under Amnesia the handler restarts
// empty.
func TestRestartDurableVsAmnesia(t *testing.T) {
	run := func(mode recovery.Mode) (*counterHandler, *Result) {
		s := New(Config{
			N: 2, Seed: 1, MaxTime: 200,
			Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 50, Restart: 60}},
			Recovery:  mode,
		})
		h := &counterHandler{}
		s.SetHandler(1, &scriptHandler{init: func(ctx node.Context) {
			for i := 0; i < 3; i++ {
				ctx.Send(2, node.Payload{Tag: "PING"})
			}
		}})
		s.SetHandler(2, h)
		return h, s.Run()
	}

	hd, resD := run(recovery.Durable)
	if hd.count != 3 {
		t.Errorf("durable: count=%d after restart, want 3 (snapshot restored)", hd.count)
	}
	if resD.Recovered != 1 {
		t.Errorf("durable: Recovered=%d, want 1", resD.Recovered)
	}

	ha, resA := run(recovery.Amnesia)
	if ha.count != 0 {
		t.Errorf("amnesia: count=%d after restart, want 0", ha.count)
	}
	if resA.Recovered != 0 {
		t.Errorf("amnesia: Recovered=%d, want 0", resA.Recovered)
	}
}

// TestRestartDownArrivalLoss: messages that arrive while the receiver is
// down are discarded (with a drop span), not queued for after the restart.
func TestRestartDownArrivalLoss(t *testing.T) {
	rec := obs.NewSpanRecorder(10, 1)
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 200, MinDelay: 1, MaxDelay: 1, Spans: rec,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 10, Restart: 100}},
		Recovery:  recovery.Amnesia,
	})
	h := &counterHandler{}
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.SetTimer("mid", 20) },
		onTimer: func(ctx node.Context, name string) {
			ctx.Send(2, node.Payload{Tag: "LOST"})
		},
	})
	s.SetHandler(2, h)
	s.Run()
	if h.count != 0 {
		t.Errorf("count=%d, want 0: message sent into downtime must be lost", h.count)
	}
	var downDrops int
	for _, sp := range rec.Spans() {
		if sp.Kind == obs.SpanDrop && sp.Note == "receiver down" {
			downDrops++
		}
	}
	if downDrops != 1 {
		t.Errorf("recorded %d 'receiver down' drop spans, want 1", downDrops)
	}
}

// TestRestartSpanRecorded: each restart emits a SpanRestart with the
// recovery mode in the note.
func TestRestartSpanRecorded(t *testing.T) {
	rec := obs.NewSpanRecorder(10, 1)
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 100, Spans: rec,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 10, Restart: 30}},
		Recovery:  recovery.Durable,
	})
	s.SetHandler(1, idle())
	s.SetHandler(2, &counterHandler{})
	s.Run()
	var got []obs.Span
	for _, sp := range rec.Spans() {
		if sp.Kind == obs.SpanRestart {
			got = append(got, sp)
		}
	}
	if len(got) != 1 {
		t.Fatalf("recorded %d restart spans, want 1", len(got))
	}
	if got[0].Proc != 2 || got[0].Time != 30 {
		t.Errorf("restart span = %+v, want proc 2 at t=30", got[0])
	}
	if got[0].Note != "recovery=durable snapshot=1B" {
		t.Errorf("restart span note = %q", got[0].Note)
	}
}

// TestRestartDeterminism: the same seeded config with a restart storm yields
// an identical history and metrics on every run.
func TestRestartDeterminism(t *testing.T) {
	run := func() *Result {
		s := New(Config{
			N: 3, Seed: 7, MaxTime: 2000, MinDelay: 5, MaxDelay: 40,
			Lifetimes: []recovery.Lifetime{
				{Proc: 2, Crash: 100, Restart: 180, Period: 400},
				{Proc: 3, Crash: 300, Restart: 350},
			},
			Recovery: recovery.Durable,
		})
		for p := 1; p <= 3; p++ {
			p := model.ProcID(p)
			s.SetHandler(p, &scriptHandler{
				init: func(ctx node.Context) { ctx.SetTimer("tick", 50) },
				onTimer: func(ctx node.Context, name string) {
					for q := model.ProcID(1); q <= 3; q++ {
						if q != p {
							ctx.Send(q, node.Payload{Tag: "HB"})
						}
					}
					ctx.SetTimer("tick", 50)
				},
			})
		}
		return s.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.History, b.History) {
		t.Error("histories differ between identically-seeded restart runs")
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ:\n%v\n%v", a.Metrics, b.Metrics)
	}
	if a.Restarts == 0 {
		t.Error("storm produced no restarts; test is vacuous")
	}
}

// TestRestartUnboundedNeedsHorizon: an unbounded periodic lifetime with
// recovery enabled and no MaxTime must be rejected at construction.
func TestRestartUnboundedNeedsHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an unbounded lifetime without MaxTime")
		}
	}()
	New(Config{
		N: 2, Seed: 1,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 10, Restart: 20, Period: 100}},
		Recovery:  recovery.Amnesia,
	})
}

// TestRestartTimersCancelled: timers armed before a crash do not fire after
// the restart (their generation is bumped), matching live-runtime semantics.
func TestRestartTimersCancelled(t *testing.T) {
	var fired int
	s := New(Config{
		N: 2, Seed: 1, MaxTime: 500,
		Lifetimes: []recovery.Lifetime{{Proc: 2, Crash: 10, Restart: 20}},
		Recovery:  recovery.Amnesia,
	})
	s.SetHandler(1, idle())
	s.SetHandler(2, &scriptHandler{
		init:    func(ctx node.Context) { ctx.SetTimer("stale", 100) },
		onTimer: func(ctx node.Context, name string) { fired++ },
	})
	s.Run()
	// Init runs twice (t=0 and the amnesiac restart at t=20, which re-arms
	// for t=120); only the second timer may fire.
	if fired != 1 {
		t.Errorf("timer fired %d times, want 1 (pre-crash timer cancelled)", fired)
	}
}
