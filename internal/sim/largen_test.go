// Large-N scaling benchmarks: the simulator's cost at cluster sizes where
// the full mesh is off the table (10⁴ processes and up). The workload
// floods along a sparse gossip overlay, so the lazy per-link state and
// the batched delivery path — not the handlers — set the bill. CI exports
// BenchmarkSimLargeN10k as BENCH_topo.json and gates its allocs/op.
//
// Run with: go test ./internal/sim -bench=SimLargeN -benchmem
package sim

import (
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/topo"
)

// topoFloodHandler is floodHandler restricted to a topology: each round it
// broadcasts to its overlay neighbors only, so the set of directed links
// ever touched is the overlay's edge set, not the n² mesh.
type topoFloodHandler struct {
	top    *topo.Topology
	rounds int
	got    int
}

func (h *topoFloodHandler) Init(ctx node.Context) { ctx.SetTimer("tick", 1) }

func (h *topoFloodHandler) OnTimer(ctx node.Context, name string) {
	self := ctx.Self()
	h.top.ForEachPeer(self, func(p model.ProcID) {
		ctx.Send(p, node.Payload{Tag: "flood", Subject: self})
	})
	h.rounds--
	if h.rounds > 0 {
		ctx.SetTimer("tick", 1)
	}
}

func (h *topoFloodHandler) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	h.got++
}

// runTopoFlood executes one n-process gossip flood over fanout-f overlay
// edges for the given rounds and returns the result plus the overlay.
func runTopoFlood(n, fanout, rounds int, seed int64, reg *obs.Registry) (*Result, *topo.Topology) {
	top := topo.MustNew(topo.Spec{Kind: topo.KindGossip, Fanout: fanout}, n)
	s := New(Config{N: n, Seed: seed, Metrics: reg})
	for p := 1; p <= n; p++ {
		s.SetHandler(model.ProcID(p), &topoFloodHandler{top: top, rounds: rounds})
	}
	return s.Run(), top
}

// BenchmarkSimLargeN10k is the large-N headline: 10,000 processes flooding
// over a fanout-8 gossip overlay for two rounds. With lazy link state the
// simulator allocates per touched link (≈ n·fanout·2 directed edges) and
// per occurrence batch — never per potential link, which at this n would
// be a hundred million channel structs before the first send.
func BenchmarkSimLargeN10k(b *testing.B) {
	const n, fanout, rounds = 10000, 8, 2
	want, top := runTopoFlood(n, fanout, rounds, 1, nil)
	if want.Stop != StopDrained {
		b.Fatalf("stop = %v", want.Stop)
	}
	if want.Sent != int(top.Links())*rounds || want.Delivered != want.Sent {
		b.Fatalf("flood sent %d delivered %d, want %d", want.Sent, want.Delivered, int(top.Links())*rounds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := runTopoFlood(n, fanout, rounds, int64(i), nil)
		if res.Stop != StopDrained {
			b.Fatalf("stop = %v", res.Stop)
		}
	}
	b.ReportMetric(float64(want.Sent)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// TestSimLargeNAllocBudget pins the scaling law behind the benchmark:
// quadrupling n at fixed fanout may grow the per-run allocation count
// roughly linearly (the overlay has 4× the links), never quadratically
// (16×). The threshold sits at 8× — halfway between the two laws — so a
// reintroduced per-pair allocation fails loudly while noise does not.
func TestSimLargeNAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const fanout, rounds = 8, 2
	allocs := func(n int) float64 {
		return testing.AllocsPerRun(3, func() { runTopoFlood(n, fanout, rounds, 1, nil) })
	}
	small, large := allocs(1000), allocs(4000)
	if small == 0 {
		t.Fatal("alloc measurement returned zero for the small run")
	}
	if ratio := large / small; ratio > 8 {
		t.Errorf("allocs grew %.1f× for 4× the processes (%.0f -> %.0f): super-linear in n, links are no longer lazy",
			ratio, small, large)
	}
}

// TestSimLargeNLiveLinksGauge ties the scaling law to the observability
// plane: after a gossip flood the sim_links_live gauge reads exactly the
// overlay's directed edge count — the mesh's n(n-1) channels were never
// materialized.
func TestSimLargeNLiveLinksGauge(t *testing.T) {
	const n, fanout, rounds = 2000, 8, 2
	reg := obs.NewRegistry()
	res, top := runTopoFlood(n, fanout, rounds, 1, reg)
	if res.Stop != StopDrained {
		t.Fatalf("stop = %v", res.Stop)
	}
	live := reg.Gauge("sim_links_live").Value()
	if live != top.Links() {
		t.Errorf("sim_links_live = %d, want the overlay's %d directed links", live, top.Links())
	}
	if mesh := int64(n) * int64(n-1); live >= mesh/10 {
		t.Errorf("live links %d not sparse against the %d-link mesh", live, mesh)
	}
}
