package sim

import (
	"reflect"
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

// echoHandler replies "PONG" to every "PING" and records deliveries.
type echoHandler struct {
	got []string
}

func (h *echoHandler) Init(node.Context) {}
func (h *echoHandler) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	h.got = append(h.got, p.Tag)
	if p.Tag == "PING" {
		ctx.Send(from, node.Payload{Tag: "PONG"})
	}
}
func (h *echoHandler) OnTimer(node.Context, string) {}

// scriptHandler performs scripted actions on Init/timers.
type scriptHandler struct {
	init    func(ctx node.Context)
	onTimer func(ctx node.Context, name string)
	onMsg   func(ctx node.Context, from model.ProcID, p node.Payload)
}

func (h *scriptHandler) Init(ctx node.Context) {
	if h.init != nil {
		h.init(ctx)
	}
}
func (h *scriptHandler) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	if h.onMsg != nil {
		h.onMsg(ctx, from, p)
	}
}
func (h *scriptHandler) OnTimer(ctx node.Context, name string) {
	if h.onTimer != nil {
		h.onTimer(ctx, name)
	}
}

func idle() node.Handler { return &scriptHandler{} }

func newSim(t *testing.T, n int, seed int64) *Sim {
	t.Helper()
	s := New(Config{N: n, Seed: seed})
	for p := 1; p <= n; p++ {
		s.SetHandler(model.ProcID(p), idle())
	}
	return s
}

func TestPingPong(t *testing.T) {
	s := New(Config{N: 2, Seed: 1})
	e1, e2 := &echoHandler{}, &echoHandler{}
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "PING"}) },
		onMsg: func(ctx node.Context, from model.ProcID, p node.Payload) {
			e1.OnMessage(ctx, from, p)
		},
	})
	s.SetHandler(2, e2)
	res := s.Run()
	if err := res.History.Validate(); err != nil {
		t.Fatalf("invalid history: %v\n%s", err, res.History)
	}
	if !res.Quiescent() {
		t.Errorf("run not quiescent: %+v", res.Blocked)
	}
	if res.Sent != 2 || res.Delivered != 2 {
		t.Errorf("Sent=%d Delivered=%d, want 2/2", res.Sent, res.Delivered)
	}
	if len(e2.got) != 1 || e2.got[0] != "PING" {
		t.Errorf("process 2 got %v", e2.got)
	}
	if len(e1.got) != 1 || e1.got[0] != "PONG" {
		t.Errorf("process 1 got %v", e1.got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() model.History {
		s := New(Config{N: 4, Seed: 42})
		for p := 1; p <= 4; p++ {
			p := model.ProcID(p)
			s.SetHandler(p, &scriptHandler{
				init: func(ctx node.Context) {
					for q := model.ProcID(1); q <= 4; q++ {
						if q != p {
							ctx.Send(q, node.Payload{Tag: "X"})
						}
					}
				},
				onMsg: func(ctx node.Context, from model.ProcID, pl node.Payload) {
					if pl.Tag == "X" && from < p {
						ctx.Send(from, node.Payload{Tag: "Y"})
					}
				},
			})
		}
		return s.Run().History
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with same seed differ:\n%s\nvs\n%s", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) model.History {
		s := New(Config{N: 3, Seed: seed})
		for p := 1; p <= 3; p++ {
			p := model.ProcID(p)
			s.SetHandler(p, &scriptHandler{
				init: func(ctx node.Context) {
					for q := model.ProcID(1); q <= 3; q++ {
						if q != p {
							ctx.Send(q, node.Payload{Tag: "X"})
						}
					}
				},
			})
		}
		return s.Run().History
	}
	a, b := run(1), run(2)
	if reflect.DeepEqual(a, b) {
		t.Skip("seeds happened to coincide; extremely unlikely but not an error")
	}
}

func TestFIFOPreservedUnderRandomDelays(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s := New(Config{N: 2, Seed: seed, MinDelay: 1, MaxDelay: 50})
		var got []string
		s.SetHandler(1, &scriptHandler{
			init: func(ctx node.Context) {
				for _, tag := range []string{"a", "b", "c", "d", "e"} {
					ctx.Send(2, node.Payload{Tag: tag})
				}
			},
		})
		s.SetHandler(2, &scriptHandler{
			onMsg: func(_ node.Context, _ model.ProcID, p node.Payload) {
				got = append(got, p.Tag)
			},
		})
		res := s.Run()
		if err := res.History.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := []string{"a", "b", "c", "d", "e"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: delivery order %v, want %v", seed, got, want)
		}
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	s := New(Config{N: 2, Seed: 1, MinDelay: 5, MaxDelay: 5})
	delivered := 0
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "X"}) },
	})
	s.SetHandler(2, &scriptHandler{
		onMsg: func(node.Context, model.ProcID, node.Payload) { delivered++ },
	})
	s.CrashAt(1, 2) // crash before the message (delay 5) arrives
	res := s.Run()
	if delivered != 0 {
		t.Errorf("delivered %d messages to crashed process", delivered)
	}
	if res.History.CrashIndex(2) < 0 {
		t.Error("crash_2 not recorded")
	}
	if err := res.History.Validate(); err != nil {
		t.Errorf("invalid history: %v", err)
	}
	if len(res.Blocked) != 1 || res.Blocked[0].Reason != "receiver-crashed" {
		t.Errorf("Blocked = %+v, want one receiver-crashed entry", res.Blocked)
	}
	if !res.Quiescent() {
		t.Error("messages to crashed processes must not prevent quiescence")
	}
}

func TestCrashedProcessActsNoMore(t *testing.T) {
	s := New(Config{N: 2, Seed: 1})
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) {
			ctx.SetTimer("tick", 10)
			ctx.CrashSelf()
			// All of these must be silently ignored after the crash.
			ctx.Send(2, node.Payload{Tag: "X"})
			ctx.EmitFailed(2)
			ctx.EmitInternal("zombie", model.None)
			ctx.SetTimer("tock", 1)
			ctx.CrashSelf()
		},
	})
	s.SetHandler(2, idle())
	res := s.Run()
	if err := res.History.Validate(); err != nil {
		t.Fatalf("invalid history: %v\n%s", err, res.History)
	}
	if len(res.History) != 1 || !res.History[0].IsCrash() {
		t.Errorf("history = %s, want exactly crash_1", res.History)
	}
}

func TestTimersFireReplaceAndCancel(t *testing.T) {
	s := New(Config{N: 1, Seed: 1})
	var fired []string
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) {
			ctx.SetTimer("a", 10)
			ctx.SetTimer("b", 5)
			ctx.SetTimer("c", 7)
			ctx.CancelTimer("c")
			ctx.SetTimer("a", 20) // replaces the 10-tick "a"
		},
		onTimer: func(ctx node.Context, name string) {
			fired = append(fired, name)
		},
	})
	res := s.Run()
	if want := []string{"b", "a"}; !reflect.DeepEqual(fired, want) {
		t.Errorf("timers fired %v, want %v", fired, want)
	}
	if res.EndTime != 20 {
		t.Errorf("EndTime = %d, want 20 (replaced timer)", res.EndTime)
	}
}

func TestInjectionSkippedAfterCrash(t *testing.T) {
	s := newSim(t, 2, 1)
	ran := false
	s.CrashAt(5, 1)
	s.At(10, 1, func(ctx node.Context) { ran = true })
	s.Run()
	if ran {
		t.Error("injection ran on crashed process")
	}
}

func TestParkedMessageBlocksChannel(t *testing.T) {
	parkAll := func(from, to model.ProcID, p node.Payload, at int64) int64 { return -1 }
	s := New(Config{N: 2, Seed: 1, Delay: parkAll})
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) {
			ctx.Send(2, node.Payload{Tag: "X"})
			ctx.Send(2, node.Payload{Tag: "Y"})
		},
	})
	s.SetHandler(2, idle())
	res := s.Run()
	if res.Delivered != 0 {
		t.Errorf("Delivered = %d, want 0", res.Delivered)
	}
	if len(res.Blocked) != 1 {
		t.Fatalf("Blocked = %+v, want one entry", res.Blocked)
	}
	b := res.Blocked[0]
	if b.Reason != "parked" || b.Queued != 2 || b.From != 1 || b.To != 2 {
		t.Errorf("Blocked[0] = %+v", b)
	}
	if res.Quiescent() {
		t.Error("parked channels must not count as quiescent")
	}
}

// gatedHandler refuses APP messages until open is set.
type gatedHandler struct {
	open bool
	got  []string
}

func (h *gatedHandler) Init(node.Context) {}
func (h *gatedHandler) OnMessage(_ node.Context, _ model.ProcID, p node.Payload) {
	if p.Tag == "OPEN" {
		h.open = true
	}
	h.got = append(h.got, p.Tag)
}
func (h *gatedHandler) OnTimer(node.Context, string) {}
func (h *gatedHandler) Accepts(_ model.ProcID, p node.Payload) bool {
	return h.open || p.Tag != "APP"
}

func TestGateDefersReceiveUntilStateChanges(t *testing.T) {
	s := New(Config{N: 3, Seed: 1, MinDelay: 1, MaxDelay: 1})
	g := &gatedHandler{}
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.Send(3, node.Payload{Tag: "APP"}) },
	})
	// Process 2 opens the gate later; the gated APP must then be delivered.
	s.SetHandler(2, &scriptHandler{
		init: func(ctx node.Context) { ctx.SetTimer("later", 50) },
		onTimer: func(ctx node.Context, _ string) {
			ctx.Send(3, node.Payload{Tag: "OPEN"})
		},
	})
	s.SetHandler(3, g)
	res := s.Run()
	if want := []string{"OPEN", "APP"}; !reflect.DeepEqual(g.got, want) {
		t.Fatalf("delivery order %v, want %v", g.got, want)
	}
	if !res.Quiescent() {
		t.Errorf("expected quiescent run, blocked: %+v", res.Blocked)
	}
	// The receive event of APP must come after the receive of OPEN in the
	// recorded history, even though APP was sent first.
	appIdx, openIdx := -1, -1
	for i, e := range res.History {
		if e.IsRecv() && e.Tag == "APP" {
			appIdx = i
		}
		if e.IsRecv() && e.Tag == "OPEN" {
			openIdx = i
		}
	}
	if appIdx < openIdx {
		t.Error("gated APP receive must be recorded after the gate opened")
	}
}

func TestGateBlockedForeverReported(t *testing.T) {
	s := New(Config{N: 2, Seed: 1})
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "APP"}) },
	})
	s.SetHandler(2, &gatedHandler{}) // never opened
	res := s.Run()
	if res.Quiescent() {
		t.Error("run with gated leftovers must not be quiescent")
	}
	if len(res.Blocked) != 1 || res.Blocked[0].Reason != "gated" {
		t.Errorf("Blocked = %+v", res.Blocked)
	}
}

func TestMaxTimeHorizon(t *testing.T) {
	s := New(Config{N: 1, Seed: 1, MaxTime: 100})
	ticks := 0
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.SetTimer("t", 10) },
		onTimer: func(ctx node.Context, _ string) {
			ticks++
			ctx.SetTimer("t", 10) // re-arm forever
		},
	})
	res := s.Run()
	if !res.HitHorizon() {
		t.Error("expected horizon hit")
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
	if res.Quiescent() {
		t.Error("horizon-terminated run is not quiescent")
	}
}

func TestMaxEventsCap(t *testing.T) {
	s := New(Config{N: 2, Seed: 1, MaxEvents: 50})
	// Infinite ping-pong.
	bounce := func(ctx node.Context, from model.ProcID, p node.Payload) {
		ctx.Send(from, p)
	}
	s.SetHandler(1, &scriptHandler{
		init:  func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "B"}) },
		onMsg: bounce,
	})
	s.SetHandler(2, &scriptHandler{onMsg: bounce})
	res := s.Run()
	if !res.HitHorizon() {
		t.Error("expected MaxEvents horizon")
	}
	if len(res.History) > 51 {
		t.Errorf("history len %d exceeds cap", len(res.History))
	}
}

func TestEmitFailedSingleShotAndRecorded(t *testing.T) {
	s := newSim(t, 3, 1)
	s.At(1, 1, func(ctx node.Context) {
		ctx.EmitFailed(2)
		ctx.EmitFailed(2) // duplicate ignored
		ctx.EmitFailed(3)
		ctx.EmitInternal("note", 2)
	})
	res := s.Run()
	if err := res.History.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := len(res.History.Detections()); got != 2 {
		t.Errorf("detections = %d, want 2", got)
	}
}

func TestHistoryTimesMonotone(t *testing.T) {
	s := New(Config{N: 3, Seed: 7, MinDelay: 1, MaxDelay: 30})
	for p := 1; p <= 3; p++ {
		p := model.ProcID(p)
		s.SetHandler(p, &scriptHandler{
			init: func(ctx node.Context) {
				for q := model.ProcID(1); q <= 3; q++ {
					if q != p {
						ctx.Send(q, node.Payload{Tag: "X"})
						ctx.Send(q, node.Payload{Tag: "Y"})
					}
				}
			},
		})
	}
	res := s.Run()
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Time < res.History[i-1].Time {
			t.Fatalf("history times not monotone at %d", i)
		}
	}
}

func TestSendToSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self-send")
		}
	}()
	s := newSim(t, 2, 1)
	s.At(1, 1, func(ctx node.Context) { ctx.Send(1, node.Payload{Tag: "X"}) })
	s.Run()
}

func TestRunTwicePanics(t *testing.T) {
	s := newSim(t, 1, 1)
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on second Run")
		}
	}()
	s.Run()
}

type crashWitness struct {
	scriptHandler
	sawCrash bool
}

func (c *crashWitness) OnCrash(node.Context) { c.sawCrash = true }

func TestCrashListenerInvoked(t *testing.T) {
	s := New(Config{N: 1, Seed: 1})
	w := &crashWitness{}
	s.SetHandler(1, w)
	s.CrashAt(3, 1)
	s.Run()
	if !w.sawCrash {
		t.Error("OnCrash not invoked")
	}
}

// Property: random mesh traffic always yields valid histories.
func TestRandomTrafficYieldsValidHistories(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 3 + int(seed%4)
		s := New(Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 25})
		for p := 1; p <= n; p++ {
			p := model.ProcID(p)
			s.SetHandler(p, &scriptHandler{
				init: func(ctx node.Context) {
					for q := model.ProcID(1); int(q) <= n; q++ {
						if q != p {
							ctx.Send(q, node.Payload{Tag: "M", Subject: p})
						}
					}
				},
				onMsg: func(ctx node.Context, from model.ProcID, pl node.Payload) {
					if pl.Subject == ctx.Self() {
						return
					}
					if from > ctx.Self() {
						ctx.Send(from, node.Payload{Tag: "R", Subject: ctx.Self()})
					}
				},
			})
		}
		if n > 2 {
			s.CrashAt(int64(seed%13)+1, model.ProcID(n))
		}
		res := s.Run()
		if err := res.History.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, res.History)
		}
	}
}

// pingForever builds a two-process simulation that bounces a message back
// and forth without ever quiescing — the workload for the horizon tests.
func pingForever(cfg Config) *Sim {
	cfg.N = 2
	s := New(cfg)
	bounce := func(ctx node.Context, from model.ProcID, p node.Payload) {
		ctx.Send(from, p)
	}
	s.SetHandler(1, &scriptHandler{
		init:  func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "PING"}) },
		onMsg: bounce,
	})
	s.SetHandler(2, &scriptHandler{onMsg: bounce})
	return s
}

func TestStopReasonDrained(t *testing.T) {
	s := New(Config{N: 2, Seed: 1})
	s.SetHandler(1, &scriptHandler{
		init: func(ctx node.Context) { ctx.Send(2, node.Payload{Tag: "M"}) },
	})
	s.SetHandler(2, idle())
	res := s.Run()
	if res.Stop != StopDrained {
		t.Errorf("Stop = %v, want %v", res.Stop, StopDrained)
	}
	if res.HitHorizon() {
		t.Error("HitHorizon = true on a drained run")
	}
	if !res.Quiescent() {
		t.Errorf("run not quiescent: %+v", res.Blocked)
	}
}

func TestStopReasonMaxTime(t *testing.T) {
	res := pingForever(Config{Seed: 1, MaxTime: 200}).Run()
	if res.Stop != StopMaxTime {
		t.Errorf("Stop = %v, want %v", res.Stop, StopMaxTime)
	}
	if !res.HitHorizon() {
		t.Error("HitHorizon = false after a max-time stop")
	}
	if res.Quiescent() {
		t.Error("Quiescent() = true after a max-time stop")
	}
	if res.EndTime > 200 {
		t.Errorf("EndTime = %d, beyond MaxTime", res.EndTime)
	}
}

func TestStopReasonMaxEvents(t *testing.T) {
	res := pingForever(Config{Seed: 1, MaxEvents: 64}).Run()
	if res.Stop != StopMaxEvents {
		t.Errorf("Stop = %v, want %v", res.Stop, StopMaxEvents)
	}
	if !res.HitHorizon() {
		t.Error("HitHorizon = false after a max-events stop")
	}
	if res.Quiescent() {
		t.Error("Quiescent() = true after a max-events stop")
	}
	// The cap is checked between occurrences, so the final occurrence may
	// record a couple of events past it — but no further occurrence runs.
	if len(res.History) < 64 || len(res.History) > 66 {
		t.Errorf("history length = %d, want within one occurrence of MaxEvents (64)", len(res.History))
	}
}

func TestStopReasonStrings(t *testing.T) {
	for want, r := range map[string]StopReason{
		"drained": StopDrained, "max-time": StopMaxTime, "max-events": StopMaxEvents,
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}
