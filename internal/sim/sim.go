// Package sim is a deterministic discrete-event simulator of the paper's
// asynchronous system model: n processes, reliable unidirectional FIFO
// channels, unbounded message delay, no global clock visible to processes.
//
// Determinism: given the same Config (including Seed), handlers, and
// injected actions, Run produces the identical history every time. The
// scheduler orders occurrences by (virtual time, insertion sequence), and
// all randomness flows from the seeded generator.
//
// Adversaries: message delays are chosen per message by Config.Delay
// (default: uniform in [MinDelay, MaxDelay]). A negative delay parks the
// message — and, because channels are FIFO, everything behind it — for the
// rest of the run; this is how the Theorem 6 / Appendix A.3 schedules
// "delay messages indefinitely".
//
// Network faults: Config.Link generalizes the delay choice into a full
// link decision (node.LinkDecision): each send may additionally be dropped,
// duplicated, parked, or reordered past the channel tail. Send events are
// recorded unconditionally; dropped messages are simply never received, and
// each delivered copy records its own receive event. Histories from runs
// with loss remain model-valid (lost messages are sent-but-unreceived);
// duplication and reorder genuinely leave the reliable-FIFO-channel model
// and are flagged by model.History.Validate — which is the point of the
// lossy-links experiment family.
//
// Process faults: Config.Lifetimes schedules plan-driven crashes (and,
// under Config.Recovery, restarts) of whole processes. A down process
// loses every message that arrives during its downtime — links are
// datagrams to a dead socket, not buffers — and its timers die with it.
// A restart re-initializes the handler: blank under amnesia, from the
// crash-time snapshot (node.Restarter) under durable recovery. Under
// recovery mode Off every lifetime is terminal at its first crash, which
// is the fail-stop reading of the same plan.
//
// Receive gating: handlers implementing node.Gate can refuse the message at
// the head of a channel; the channel blocks until a later event of the
// receiver changes the gate's answer. This is the mechanism by which the
// §5 protocol defers receive events to satisfy sFS2d. A run that ends with
// gated channels still holding messages is reported as blocked, which is
// itself a measurable outcome (Corollary 8 experiments).
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/recovery"
)

// DelayFn chooses the delivery delay in ticks for a message sent at time at
// from from to to. Returning a negative value parks the message (and the
// channel behind it) for the remainder of the run.
type DelayFn func(from, to model.ProcID, p node.Payload, at int64) int64

// Config parameterizes a simulation.
type Config struct {
	// N is the number of processes (ids 1..N). Required.
	N int
	// Seed seeds the delay generator. Runs with equal seeds are identical.
	Seed int64
	// MinDelay and MaxDelay bound the default uniform message delay.
	// Defaults: 1 and 10.
	MinDelay, MaxDelay int64
	// Delay overrides the default delay distribution when non-nil.
	Delay DelayFn
	// Link, when non-nil, is consulted once per send and may drop, park,
	// delay, duplicate, or reorder the message (see node.LinkDecision).
	// Delay (or the default distribution) still chooses the base delay of
	// each delivered copy.
	Link node.LinkFn
	// MaxTime stops the simulation once the next occurrence would be later
	// than this horizon. 0 means no horizon (run to quiescence).
	MaxTime int64
	// MaxEvents caps the history length as a runaway-protocol safeguard.
	// Default: 1 << 20.
	MaxEvents int
	// Metrics, when non-nil, exposes the simulator's counters (and those of
	// attached layers) through a shared registry for live snapshots. The
	// same readings always appear in Result.Metrics, registry or not.
	Metrics *obs.Registry
	// Spans, when non-nil, records message-lifecycle spans
	// (send → fate → enqueue → deliver/drop, plus suspect and crash-confirm)
	// with causal parents and the recorder's seed-deterministic sampling.
	Spans *obs.SpanRecorder
	// Timeline, when non-nil, is sampled at its cadence with the in-flight
	// message count, the largest link backlog, and the cumulative suspicion
	// count as virtual time advances.
	Timeline *obs.Timeline
	// Lifetimes schedules plan-driven process crashes and restarts
	// (typically netadv.Plan.Lifetimes()). Each lifetime crashes its
	// process at Crash — and, when Period > 0, every Period ticks after
	// that, with Until bounding the crash times — and restarts it
	// Restart-Crash ticks after each crash when Recovery is not Off.
	// A lifetime with Restart == 0, or any lifetime under Recovery Off,
	// is terminal at its first crash. Unbounded lifetimes (Period > 0,
	// Until == 0) require a MaxTime horizon; New panics otherwise.
	Lifetimes []recovery.Lifetime
	// Recovery selects what a restarted process remembers: Off disables
	// restarts entirely, Amnesia restarts handlers blank (Init, or
	// OnRestart with nil state), Durable restores the snapshot taken at
	// crash time through Store.
	Recovery recovery.Mode
	// Store persists crash-time snapshots under Durable recovery. Nil
	// defaults to a fresh in-memory store private to this run.
	Store recovery.Store
}

type chanKey struct{ from, to model.ProcID }

type pendingMsg struct {
	id      model.MsgID
	payload node.Payload
	readyAt int64 // delivery-ready time; -1 if parked forever
	span    int64 // enqueue span id; 0 when the message is unsampled
}

type channel struct {
	queue     []pendingMsg
	scheduled bool // a head-delivery occurrence is in the event queue
	gated     bool // head was refused by the receiver's gate
}

type occKind int

const (
	occDeliver occKind = iota + 1
	occTimer
	occInject
	occPlanCrash
	occRestart
)

type occurrence struct {
	time int64
	seq  int64 // insertion order; total tie-break
	kind occKind

	proc model.ProcID       // occDeliver (batch receiver), occTimer, occInject, occPlanCrash, occRestart
	name string             // occTimer
	gen  int64              // occTimer: generation, stale timers are skipped
	fn   func(node.Context) // occInject
	lt   int                // occPlanCrash, occRestart: Config.Lifetimes index
}

// dueKey identifies one batched-delivery occurrence: every channel head due
// at the same (time, receiver) coalesces into a single heap entry, so the
// event queue holds O(active receivers) delivery occurrences per tick
// instead of O(in-flight messages).
type dueKey struct {
	at int64
	to model.ProcID
}

// occHeap is a binary min-heap of occurrences ordered by (time, seq). It
// stores values, not pointers, and implements push/pop directly instead of
// through container/heap: the interface-based API boxes every occurrence
// into an allocation per push, which on the sweep hot path (one push per
// send, timer, and rescheduled delivery) dominated the per-run allocation
// budget.
type occHeap []occurrence

func (h occHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *occHeap) pushOcc(o occurrence) {
	q := append(*h, o)
	*h = q
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *occHeap) popOcc() occurrence {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = occurrence{} // clear the vacated slot so name/fn don't pin memory
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q.less(r, l) {
			j = r
		}
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return top
}

// StopReason states why a run ended. The zero value, StopDrained, means the
// event queue emptied; the horizon reasons distinguish a run truncated by
// the MaxTime clock from one truncated by the MaxEvents runaway-protocol
// cap — aggregation over large scenario sweeps needs to tell a genuinely
// bounded run from a runaway one.
type StopReason int

const (
	// StopDrained: the event queue emptied (messages may still sit in
	// gated or parked channels; see Result.Blocked and Result.Quiescent).
	StopDrained StopReason = iota
	// StopMaxTime: the next occurrence would have been later than
	// Config.MaxTime.
	StopMaxTime
	// StopMaxEvents: the history reached Config.MaxEvents.
	StopMaxEvents
)

// String renders the reason ("drained", "max-time", "max-events").
func (r StopReason) String() string {
	switch r {
	case StopDrained:
		return "drained"
	case StopMaxTime:
		return "max-time"
	case StopMaxEvents:
		return "max-events"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// MarshalText renders the reason name, so StopReason-keyed maps serialize
// as readable JSON objects in machine-readable sweep reports.
func (r StopReason) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText parses a reason name produced by MarshalText.
func (r *StopReason) UnmarshalText(text []byte) error {
	switch string(text) {
	case "drained":
		*r = StopDrained
	case "max-time":
		*r = StopMaxTime
	case "max-events":
		*r = StopMaxEvents
	default:
		return fmt.Errorf("sim: unknown stop reason %q", text)
	}
	return nil
}

// Reasons for BlockedChannel.Reason.
const (
	// ReasonGated: the receiver's gate refused the channel head.
	ReasonGated = "gated"
	// ReasonParked: the adversary held the channel head forever.
	ReasonParked = "parked"
	// ReasonReceiverCrashed: the receiver crashed; leftovers are expected.
	ReasonReceiverCrashed = "receiver-crashed"
)

// BlockedChannel describes a channel that still held undelivered messages
// when the run ended, and why.
type BlockedChannel struct {
	From, To model.ProcID
	Queued   int
	// Reason is ReasonGated, ReasonParked, or ReasonReceiverCrashed.
	Reason string
}

// Result is the outcome of a run.
type Result struct {
	// History is the recorded event history, validated by construction.
	History model.History
	// EndTime is the virtual time of the last executed occurrence.
	EndTime int64
	// Sent and Delivered count send and receive events.
	Sent, Delivered int
	// Dropped counts messages discarded by Config.Link; Duplicated counts
	// extra copies it injected.
	Dropped, Duplicated int
	// Retransmits and AckedDuplicates aggregate the reliable-delivery layer
	// across all processes, when handlers carry one (frames retransmitted,
	// and received duplicates suppressed after re-acking). Both are 0 when
	// the layer is disabled.
	Retransmits, AckedDuplicates int
	// PlanCrashes counts crashes executed from Config.Lifetimes; Restarts
	// counts the restarts that followed; Recovered counts restarts that
	// restored a non-empty durable snapshot. All are 0 without lifetimes.
	PlanCrashes, Restarts, Recovered int
	// ByzDetected and ByzMasked aggregate the Byzantine validation layer
	// across all processes, when handlers carry one (misbehavior convictions,
	// and frames discarded from convicted senders). Both are 0 when the
	// layer is disabled.
	ByzDetected, ByzMasked int
	// Blocked lists channels holding undelivered messages to live processes
	// at the end of the run (gated or parked) plus channels into crashed
	// processes. A run with gated entries did not reach protocol quiescence.
	Blocked []BlockedChannel
	// Stop states why the run ended: drained, max-time, or max-events.
	Stop StopReason
	// Metrics is the name-sorted snapshot of the run's instruments
	// (sim_* counters plus reliable_* when the layer is attached). It is
	// always populated, independent of Config.Metrics.
	Metrics obs.Metrics
	// Timeline holds the sampled per-tick series when Config.Timeline was
	// set; nil otherwise.
	Timeline []obs.TimelineSeries
}

// HitHorizon reports that the run stopped at MaxTime or MaxEvents rather
// than by draining the event queue.
func (r *Result) HitHorizon() bool { return r.Stop != StopDrained }

// BlockedLive reports whether the run ended with messages stuck in gated
// or parked channels to live processes (messages to crashed processes are
// expected leftovers and do not count).
func (r *Result) BlockedLive() bool {
	for _, b := range r.Blocked {
		if b.Reason != ReasonReceiverCrashed {
			return true
		}
	}
	return false
}

// Quiescent reports whether the run drained completely: no horizon hit and
// nothing stuck in gated or parked channels.
func (r *Result) Quiescent() bool {
	return !r.HitHorizon() && !r.BlockedLive()
}

// Sim is a single-use simulator instance: configure, attach handlers,
// inject actions, then call Run exactly once.
type Sim struct {
	cfg      Config
	rng      *rand.Rand
	handlers []node.Handler // index 1..N
	ctxs     []*procCtx
	chans    map[chanKey]*channel
	queue    occHeap
	now      int64
	seq      int64
	nextMsg  model.MsgID
	history  model.History
	crashed  []bool
	down     []bool // plan-crashed, restart possibly pending (crash-recovery)
	failed   map[[2]model.ProcID]bool
	timerGen map[timerID]int64
	ran      bool

	due       map[dueKey][]model.ProcID // senders whose channel heads are due at (time, receiver)
	batchFree [][]model.ProcID          // recycled sender slices for due batches
	gatedFrom [][]model.ProcID          // per-receiver senders of gated channels

	// Instruments live inline as values: zero-cost when no registry or
	// recorder is attached, registered by pointer into Config.Metrics
	// otherwise.
	cSent        obs.Counter
	cDelivered   obs.Counter
	cDropped     obs.Counter
	cDuplicated  obs.Counter
	cTimersFired obs.Counter
	cPlanCrashes obs.Counter
	cRestarts    obs.Counter
	cRecovered   obs.Counter
	gLinks       obs.Gauge // live (materialized) channel count

	curSpan    int64 // span framing the handler callback now running, or 0
	inflight   int   // enqueued-but-undelivered message copies
	suspects   int64 // cumulative suspect internal events
	lastSample int64 // last timeline boundary sampled
}

// New creates a simulator for cfg.N processes. Handlers must be attached
// with SetHandler before Run.
func New(cfg Config) *Sim {
	if cfg.N <= 0 {
		panic("sim: Config.N must be positive")
	}
	if cfg.MinDelay == 0 && cfg.MaxDelay == 0 {
		cfg.MinDelay, cfg.MaxDelay = 1, 10
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 1 << 20
	}
	for i, l := range cfg.Lifetimes {
		if l.Proc < 1 || int(l.Proc) > cfg.N {
			panic(fmt.Sprintf("sim: lifetime %d names process %d of %d", i, l.Proc, cfg.N))
		}
		if l.Unbounded() && cfg.Recovery != recovery.Off && cfg.MaxTime <= 0 {
			panic(fmt.Sprintf("sim: lifetime %d is unbounded (period %d, no until); set MaxTime", i, l.Period))
		}
	}
	if cfg.Recovery == recovery.Durable && cfg.Store == nil {
		cfg.Store = recovery.NewMemStore()
	}
	s := &Sim{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		// Per-link state is lazy: a channel materializes on first traffic,
		// so a sparse topology over a large N allocates O(active links), not
		// the O(N²) a full-mesh presize would.
		chans:     make(map[chanKey]*channel),
		handlers:  make([]node.Handler, cfg.N+1),
		ctxs:      make([]*procCtx, cfg.N+1),
		queue:     make(occHeap, 0, 64),
		history:   make(model.History, 0, historyHint(cfg)),
		crashed:   make([]bool, cfg.N+1),
		down:      make([]bool, cfg.N+1),
		failed:    make(map[[2]model.ProcID]bool),
		timerGen:  make(map[timerID]int64, 16),
		due:       make(map[dueKey][]model.ProcID),
		gatedFrom: make([][]model.ProcID, cfg.N+1),
	}
	for p := 1; p <= cfg.N; p++ {
		s.ctxs[p] = &procCtx{s: s, p: model.ProcID(p)}
	}
	if reg := cfg.Metrics; reg != nil {
		reg.RegisterGauge("sim_links_live", &s.gLinks)
		reg.RegisterCounter("sim_sent_total", &s.cSent)
		reg.RegisterCounter("sim_delivered_total", &s.cDelivered)
		reg.RegisterCounter("sim_dropped_total", &s.cDropped)
		reg.RegisterCounter("sim_duplicated_total", &s.cDuplicated)
		reg.RegisterCounter("sim_timers_fired_total", &s.cTimersFired)
		// Recovery counters only exist when lifetimes do: runs without
		// process faults keep their registry snapshots byte-identical to
		// pre-recovery builds.
		if len(cfg.Lifetimes) > 0 {
			reg.RegisterCounter("sim_plan_crashes_total", &s.cPlanCrashes)
			reg.RegisterCounter("sim_restarts_total", &s.cRestarts)
			reg.RegisterCounter("sim_recovered_total", &s.cRecovered)
		}
	}
	return s
}

// historyHint sizes the history buffer up front. Protocol runs record on
// the order of a few broadcast rounds per detection — O(n²) events — so
// 8n² covers the common sweep scenario without reallocation; the cap keeps
// a single short run from reserving a MaxEvents-sized arena.
func historyHint(cfg Config) int {
	hint := 8 * cfg.N * cfg.N
	if hint > cfg.MaxEvents {
		hint = cfg.MaxEvents
	}
	if hint > 1<<13 {
		hint = 1 << 13
	}
	return hint
}

// SetHandler attaches the handler for process p (1..N).
func (s *Sim) SetHandler(p model.ProcID, h node.Handler) {
	s.handlers[p] = h
}

// Handler returns the handler attached to p.
func (s *Sim) Handler(p model.ProcID) node.Handler { return s.handlers[p] }

// At schedules fn to run in the context of process p at virtual time t.
// If p has crashed by then, fn is skipped. Injections at equal times run in
// the order they were registered.
func (s *Sim) At(t int64, p model.ProcID, fn func(node.Context)) {
	s.push(occurrence{time: t, kind: occInject, proc: p, fn: fn})
}

// CrashAt injects a genuine (spontaneous) crash of p at time t.
func (s *Sim) CrashAt(t int64, p model.ProcID) {
	s.At(t, p, func(ctx node.Context) { ctx.CrashSelf() })
}

func (s *Sim) push(o occurrence) {
	o.seq = s.seq
	s.seq++
	s.queue.pushOcc(o)
}

// Run executes the simulation to quiescence or horizon and returns the
// result. Run may be called only once.
func (s *Sim) Run() *Result {
	if s.ran {
		panic("sim: Run called twice")
	}
	s.ran = true
	for p := 1; p <= s.cfg.N; p++ {
		if s.handlers[p] == nil {
			panic(fmt.Sprintf("sim: no handler for process %d", p))
		}
	}

	res := &Result{}
	for i, l := range s.cfg.Lifetimes {
		s.push(occurrence{time: l.Crash, kind: occPlanCrash, proc: l.Proc, lt: i})
	}
	for p := model.ProcID(1); int(p) <= s.cfg.N; p++ {
		s.handlers[p].Init(s.ctxs[p])
		s.afterEvent(p)
	}

	for len(s.queue) > 0 {
		if len(s.history) >= s.cfg.MaxEvents {
			res.Stop = StopMaxEvents
			break
		}
		o := s.queue.popOcc()
		if s.cfg.MaxTime > 0 && o.time > s.cfg.MaxTime {
			res.Stop = StopMaxTime
			break
		}
		if o.time > s.now {
			if s.cfg.Timeline != nil {
				s.sampleTimeline(o.time)
			}
			s.now = o.time
		}
		switch o.kind {
		case occDeliver:
			s.deliverBatch(o.proc)
		case occTimer:
			s.fireTimer(o)
		case occInject:
			if !s.crashed[o.proc] && !s.down[o.proc] {
				o.fn(s.ctxs[o.proc])
				s.afterEvent(o.proc)
			}
		case occPlanCrash:
			s.planCrash(o)
		case occRestart:
			s.restart(o)
		}
	}

	res.History = s.history.Normalize()
	res.EndTime = s.now
	res.Sent = int(s.cSent.Value())
	res.Delivered = int(s.cDelivered.Value())
	res.Dropped = int(s.cDropped.Value())
	res.Duplicated = int(s.cDuplicated.Value())
	res.PlanCrashes = int(s.cPlanCrashes.Value())
	res.Restarts = int(s.cRestarts.Value())
	res.Recovered = int(s.cRecovered.Value())
	res.Blocked = s.blockedChannels()
	hasReliable := false
	hasByz := false
	for p := 1; p <= s.cfg.N; p++ {
		if rs, ok := s.handlers[p].(reliableStats); ok {
			hasReliable = true
			r, d := rs.ReliableStats()
			res.Retransmits += r
			res.AckedDuplicates += d
		}
		if bs, ok := findByzStats(s.handlers[p]); ok {
			hasByz = true
			d, m := bs.ByzStats()
			res.ByzDetected += d
			res.ByzMasked += m
		}
	}
	res.Metrics = s.snapshotMetrics(res, hasReliable, hasByz)
	if s.cfg.Timeline != nil {
		res.Timeline = s.cfg.Timeline.Snapshot()
	}
	return res
}

// snapshotMetrics builds the run's metric snapshot directly from the
// inline counters — already name-sorted, so no sort pass is needed.
func (s *Sim) snapshotMetrics(res *Result, hasReliable, hasByz bool) obs.Metrics {
	ms := obs.Metrics{
		{Name: "sim_delivered_total", Kind: obs.KindCounter, Value: s.cDelivered.Value()},
		{Name: "sim_dropped_total", Kind: obs.KindCounter, Value: s.cDropped.Value()},
		{Name: "sim_duplicated_total", Kind: obs.KindCounter, Value: s.cDuplicated.Value()},
		{Name: "sim_links_live", Kind: obs.KindGauge, Value: s.gLinks.Value()},
		{Name: "sim_sent_total", Kind: obs.KindCounter, Value: s.cSent.Value()},
		{Name: "sim_timers_fired_total", Kind: obs.KindCounter, Value: s.cTimersFired.Value()},
	}
	if hasReliable {
		ms = append(ms,
			obs.Metric{Name: "reliable_acked_duplicates_total", Kind: obs.KindCounter, Value: int64(res.AckedDuplicates)},
			obs.Metric{Name: "reliable_retransmits_total", Kind: obs.KindCounter, Value: int64(res.Retransmits)},
		)
	}
	if hasByz {
		ms = append(ms,
			obs.Metric{Name: "byz_detected_total", Kind: obs.KindCounter, Value: int64(res.ByzDetected)},
			obs.Metric{Name: "byz_masked_total", Kind: obs.KindCounter, Value: int64(res.ByzMasked)},
		)
	}
	// Like the registry, the snapshot grows recovery metrics only when the
	// run actually had lifetimes, keeping fault-free snapshots byte-stable.
	if len(s.cfg.Lifetimes) > 0 {
		ms = append(ms,
			obs.Metric{Name: "sim_plan_crashes_total", Kind: obs.KindCounter, Value: s.cPlanCrashes.Value()},
			obs.Metric{Name: "sim_recovered_total", Kind: obs.KindCounter, Value: s.cRecovered.Value()},
			obs.Metric{Name: "sim_restarts_total", Kind: obs.KindCounter, Value: s.cRestarts.Value()},
		)
	}
	if hasReliable || hasByz || len(s.cfg.Lifetimes) > 0 {
		ms.Sort()
	}
	return ms
}

// sampleTimeline emits one point per series at every sampling boundary
// crossed by the jump from s.now to next.
func (s *Sim) sampleTimeline(next int64) {
	tl := s.cfg.Timeline
	every := tl.Every()
	for t := s.lastSample + every; t <= next; t += every {
		tl.Observe("inflight", t, float64(s.inflight))
		tl.Observe("link_backlog_max", t, float64(s.maxBacklog()))
		tl.Observe("suspects_total", t, float64(s.suspects))
		s.lastSample = t
	}
}

// maxBacklog returns the deepest link queue. A maximum is order-free, so
// ranging the channel map directly is deterministic.
func (s *Sim) maxBacklog() int {
	mx := 0
	//sfs:allow detmaprange a maximum over queue depths is order-insensitive
	for _, c := range s.chans {
		if len(c.queue) > mx {
			mx = len(c.queue)
		}
	}
	return mx
}

// reliableStats is implemented by handlers that wrap a reliable-delivery
// layer (internal/reliable.Endpoint); the simulator discovers it
// structurally to avoid depending on the layer.
type reliableStats interface {
	ReliableStats() (retransmits, ackedDuplicates int)
}

// byzStats is implemented by the Byzantine validation interposer
// (internal/byz.Endpoint), discovered structurally like reliableStats.
type byzStats interface {
	ByzStats() (detected, masked int)
}

// findByzStats walks a handler's wrapper chain outermost-first — the
// interposer sits inside the reliable layer when both are enabled — until
// it finds the validation interposer or runs out of wrappers.
func findByzStats(h node.Handler) (byzStats, bool) {
	for h != nil {
		if bs, ok := h.(byzStats); ok {
			return bs, true
		}
		iw, ok := h.(interface{ Inner() node.Handler })
		if !ok {
			return nil, false
		}
		h = iw.Inner()
	}
	return nil, false
}

func (s *Sim) blockedChannels() []BlockedChannel {
	var out []BlockedChannel
	var keys []chanKey
	for k, c := range s.chans {
		if len(c.queue) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].from != keys[b].from {
			return keys[a].from < keys[b].from
		}
		return keys[a].to < keys[b].to
	})
	for _, k := range keys {
		c := s.chans[k]
		reason := ReasonGated
		switch {
		// A process that is down at the end of the run is as gone as a
		// crashed one: its leftovers are expected, not a liveness failure.
		case s.crashed[k.to] || s.down[k.to]:
			reason = ReasonReceiverCrashed
		case c.queue[0].readyAt < 0:
			reason = ReasonParked
		}
		out = append(out, BlockedChannel{From: k.from, To: k.to, Queued: len(c.queue), Reason: reason})
	}
	return out
}

// scheduleDelivery enqueues channel k's head delivery at time at.
// Deliveries sharing a (time, receiver) coalesce into one occurrence and
// drain in ascending sender order — deterministic, and independent of the
// order the batch was assembled in.
func (s *Sim) scheduleDelivery(k chanKey, at int64) {
	key := dueKey{at: at, to: k.to}
	senders, ok := s.due[key]
	if !ok {
		if n := len(s.batchFree); n > 0 {
			senders = s.batchFree[n-1][:0]
			s.batchFree = s.batchFree[:n-1]
		}
		s.push(occurrence{time: at, kind: occDeliver, proc: k.to})
	}
	s.due[key] = append(senders, k.from)
}

// deliverBatch drains every channel head due for receiver to at the current
// time. A head rescheduled to the same tick during the drain (the next
// message of a channel whose head just delivered, or a channel un-gated by
// one of these deliveries) opens a fresh batch behind this one.
func (s *Sim) deliverBatch(to model.ProcID) {
	key := dueKey{at: s.now, to: to}
	senders := s.due[key]
	delete(s.due, key)
	sort.Slice(senders, func(a, b int) bool { return senders[a] < senders[b] })
	for _, from := range senders {
		s.deliver(chanKey{from: from, to: to})
	}
	if senders != nil {
		s.batchFree = append(s.batchFree, senders[:0])
	}
}

// deliver attempts to deliver the head of channel k.
func (s *Sim) deliver(k chanKey) {
	c := s.chans[k]
	if c == nil {
		return
	}
	c.scheduled = false
	if len(c.queue) == 0 || s.crashed[k.to] {
		return
	}
	head := c.queue[0]
	// A reordered enqueue can put a not-yet-ready (or parked) message in
	// front of the one this occurrence was scheduled for: re-anchor on the
	// current head's ready time instead of delivering early.
	if head.readyAt < 0 {
		return // parked head; channel blocks
	}
	if head.readyAt > s.now {
		c.scheduled = true
		s.scheduleDelivery(k, head.readyAt)
		return
	}
	if s.down[k.to] {
		// The message arrives while the receiver is down: it is lost, the
		// way a datagram to a dead socket is. Messages still in flight may
		// yet land after a restart, so loss is decided per arrival, here.
		c.queue = c.queue[1:]
		s.inflight--
		if head.span != 0 {
			s.cfg.Spans.Record(obs.Span{
				Parent: head.span, Time: s.now, Kind: obs.SpanDrop,
				Proc: k.to, Peer: k.from, Msg: head.id, Note: "receiver down",
			})
		}
		s.scheduleHead(k)
		return
	}
	h := s.handlers[k.to]
	if g, ok := h.(node.Gate); ok && !g.Accepts(k.from, head.payload) {
		c.gated = true
		s.gatedFrom[k.to] = append(s.gatedFrom[k.to], k.from)
		return
	}
	c.gated = false
	c.queue = c.queue[1:]
	s.record(model.Recv(k.to, k.from, head.id, head.payload.Tag, head.payload.Subject))
	s.cDelivered.Inc()
	s.inflight--
	prevSpan := s.curSpan
	if head.span != 0 {
		s.curSpan = s.cfg.Spans.Record(obs.Span{
			Parent: head.span, Time: s.now, Kind: obs.SpanDeliver,
			Proc: k.to, Peer: k.from, Msg: head.id, Tag: head.payload.Tag,
		})
	} else {
		s.curSpan = 0
	}
	s.scheduleHead(k)
	h.OnMessage(s.ctxs[k.to], k.from, head.payload)
	s.afterEvent(k.to)
	s.curSpan = prevSpan
}

// afterEvent re-evaluates gated channels into p after any event of p: the
// gate's answer may have changed (e.g. a detection completed). Gated
// channels are tracked per receiver, so the pass costs O(channels gated
// into p), not a scan of every live link in the run.
func (s *Sim) afterEvent(p model.ProcID) {
	if s.crashed[p] || s.down[p] {
		return
	}
	pending := s.gatedFrom[p]
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a] < pending[b] })
	g, isGate := s.handlers[p].(node.Gate)
	still := pending[:0]
	for _, from := range pending {
		k := chanKey{from: from, to: p}
		c := s.chans[k]
		if c == nil || !c.gated || len(c.queue) == 0 {
			continue // stale entry; the channel was un-gated or drained
		}
		if isGate && !g.Accepts(from, c.queue[0].payload) {
			still = append(still, from)
			continue
		}
		c.gated = false
		if !c.scheduled {
			c.scheduled = true
			s.scheduleDelivery(k, s.now)
		}
	}
	s.gatedFrom[p] = still
}

// scheduleHead queues a delivery occurrence for the head of channel k, if
// any and not parked.
func (s *Sim) scheduleHead(k chanKey) {
	c := s.chans[k]
	if c == nil || c.scheduled || c.gated || len(c.queue) == 0 || s.crashed[k.to] {
		return
	}
	head := c.queue[0]
	if head.readyAt < 0 {
		return // parked forever
	}
	at := head.readyAt
	if at < s.now {
		at = s.now
	}
	c.scheduled = true
	s.scheduleDelivery(k, at)
}

func (s *Sim) fireTimer(o occurrence) {
	if s.crashed[o.proc] || s.down[o.proc] {
		return
	}
	key := timerID{proc: o.proc, name: o.name}
	if s.timerGen[key] != o.gen {
		return // cancelled or replaced
	}
	delete(s.timerGen, key)
	s.cTimersFired.Inc()
	s.handlers[o.proc].OnTimer(s.ctxs[o.proc], o.name)
	s.afterEvent(o.proc)
}

// timerID keys the per-process timer generation table. A struct key avoids
// the string concatenation the old "proc/name" key allocated on every
// SetTimer, CancelTimer, and timer fire.
type timerID struct {
	proc model.ProcID
	name string
}

// planCrash executes one crash window of a lifetime: snapshot (durable),
// take the process down, kill its timers, record the crash, and schedule
// the matching restart and — for periodic lifetimes — the next window.
// A process that already crashed terminally (CrashSelf) or is still down
// from an earlier window skips the whole window, restart included.
func (s *Sim) planCrash(o occurrence) {
	l := s.cfg.Lifetimes[o.lt]
	p := l.Proc
	if s.crashed[p] || s.down[p] {
		return
	}
	mode := s.cfg.Recovery
	if l.Period > 0 && mode != recovery.Off {
		if next := o.time + l.Period; l.Until == 0 || next <= l.Until {
			s.push(occurrence{time: next, kind: occPlanCrash, proc: p, lt: o.lt})
		}
	}
	if mode == recovery.Durable {
		// Snapshot before OnCrash: the crash notification must not be able
		// to perturb what the process will remember.
		if r, ok := s.handlers[p].(node.Restarter); ok {
			s.cfg.Store.Save(p, r.Snapshot())
		}
	}
	if downFor := l.Restart - l.Crash; mode != recovery.Off && downFor > 0 {
		s.push(occurrence{time: o.time + downFor, kind: occRestart, proc: p, lt: o.lt})
	}
	s.down[p] = true
	s.cPlanCrashes.Inc()
	//sfs:allow detmaprange each timer generation is bumped independently
	for k := range s.timerGen {
		if k.proc == p {
			s.timerGen[k]++ // outstanding timer occurrences become stale
		}
	}
	s.record(model.Crash(p))
	if lis, ok := s.handlers[p].(node.CrashListener); ok {
		lis.OnCrash(s.ctxs[p])
	}
}

// restart brings a down process back: record the restart event, then hand
// the handler its crash-time snapshot (node.Restarter, durable) or
// re-initialize it blank (amnesia, or a handler with no restart support).
func (s *Sim) restart(o occurrence) {
	p := o.proc
	if s.crashed[p] || !s.down[p] {
		return
	}
	s.down[p] = false
	var st []byte
	if s.cfg.Recovery == recovery.Durable {
		st, _ = s.cfg.Store.Load(p)
	}
	s.record(model.Restart(p))
	s.cRestarts.Inc()
	if len(st) > 0 {
		s.cRecovered.Inc()
	}
	// Restart spans are detection-grade: rare, and exactly what recovery
	// experiments grep for — never sampled out.
	if s.cfg.Spans != nil {
		note := "recovery=" + s.cfg.Recovery.String()
		if s.cfg.Recovery == recovery.Durable {
			note = fmt.Sprintf("%s snapshot=%dB", note, len(st))
		}
		s.cfg.Spans.Record(obs.Span{Time: s.now, Kind: obs.SpanRestart, Proc: p, Note: note})
	}
	if r, ok := s.handlers[p].(node.Restarter); ok {
		r.OnRestart(s.ctxs[p], st)
	} else {
		s.handlers[p].Init(s.ctxs[p])
	}
	s.afterEvent(p)
}

func (s *Sim) record(e model.Event) {
	e.Time = s.now
	e.Seq = len(s.history)
	s.history = append(s.history, e)
	switch {
	case e.Kind == model.KindInternal && e.Tag == "suspect":
		s.suspects++
		// Detection spans are recorded unconditionally: they are rare and
		// are the events the paper's properties are about.
		if s.cfg.Spans != nil {
			s.cfg.Spans.Record(obs.Span{
				Parent: s.curSpan, Time: s.now, Kind: obs.SpanSuspect,
				Proc: e.Proc, Target: e.Target, Tag: e.Tag,
			})
		}
	case e.Kind == model.KindFailed:
		if s.cfg.Spans != nil {
			s.cfg.Spans.Record(obs.Span{
				Parent: s.curSpan, Time: s.now, Kind: obs.SpanCrashConfirm,
				Proc: e.Proc, Target: e.Target,
			})
		}
	}
}

// procCtx implements node.Context for one process.
type procCtx struct {
	s *Sim
	p model.ProcID
}

var _ node.Context = (*procCtx)(nil)

func (c *procCtx) Self() model.ProcID { return c.p }
func (c *procCtx) N() int             { return c.s.cfg.N }
func (c *procCtx) Now() int64         { return c.s.now }

func (c *procCtx) Send(to model.ProcID, p node.Payload) {
	s := c.s
	if s.crashed[c.p] || s.down[c.p] {
		return
	}
	if to == c.p {
		panic("sim: send to self not supported (count self-quorum locally)")
	}
	if to < 1 || int(to) > s.cfg.N {
		panic(fmt.Sprintf("sim: send to invalid process %d", to))
	}
	s.nextMsg++
	id := s.nextMsg
	s.record(model.Send(c.p, to, id, p.Tag, p.Subject))
	s.cSent.Inc()

	var dec node.LinkDecision
	if s.cfg.Link != nil {
		dec = s.cfg.Link(c.p, to, p, s.now)
	}
	var parentSpan int64
	if s.cfg.Spans != nil && s.cfg.Spans.Sampled(id) {
		parentSpan = s.cfg.Spans.Record(obs.Span{
			Parent: s.curSpan, Time: s.now, Kind: obs.SpanSend,
			Proc: c.p, Peer: to, Msg: id, Tag: p.Tag, Target: p.Subject,
		})
		if note := dec.Note(); note != "" {
			parentSpan = s.cfg.Spans.Record(obs.Span{
				Parent: parentSpan, Time: s.now, Kind: obs.SpanFate,
				Proc: c.p, Peer: to, Msg: id, Note: note,
			})
		}
	}
	if dec.Drop {
		s.cDropped.Inc()
		if parentSpan != 0 {
			s.cfg.Spans.Record(obs.Span{
				Parent: parentSpan, Time: s.now, Kind: obs.SpanDrop,
				Proc: c.p, Peer: to, Msg: id,
			})
		}
		return
	}
	s.cDuplicated.Add(int64(dec.Duplicates))

	// A Byzantine network may substitute what the channel carries; the send
	// event above still records the payload the sender actually passed in.
	wire := p
	if dec.Replace != nil {
		wire = dec.Replace.Payload
	}

	k := chanKey{from: c.p, to: to}
	ch := s.chans[k]
	if ch == nil {
		// A fresh channel rarely holds more than a few in-flight messages;
		// seeding capacity avoids the first few append growth steps on
		// every (sender, receiver) pair of every run.
		ch = &channel{queue: make([]pendingMsg, 0, 8)}
		s.chans[k] = ch
		s.gLinks.Set(int64(len(s.chans)))
	}
	headChanged := false
	enqueue := func(payload node.Payload, extra int64) {
		var delay int64
		if s.cfg.Delay != nil {
			delay = s.cfg.Delay(c.p, to, p, s.now)
		} else {
			delay = s.cfg.MinDelay + s.rng.Int63n(s.cfg.MaxDelay-s.cfg.MinDelay+1)
		}
		ready := int64(-1)
		if delay >= 0 && !dec.Park {
			ready = s.now + delay + dec.ExtraDelay + extra
		}
		msg := pendingMsg{id: id, payload: payload, readyAt: ready}
		s.inflight++
		if parentSpan != 0 {
			msg.span = s.cfg.Spans.Record(obs.Span{
				Parent: parentSpan, Time: s.now, Kind: obs.SpanEnqueue,
				Proc: c.p, Peer: to, Msg: id,
			})
		}
		if dec.Reorder && len(ch.queue) > 1 {
			// Overtake the current tail: a pairwise FIFO violation.
			tail := len(ch.queue) - 1
			ch.queue = append(ch.queue, ch.queue[tail])
			ch.queue[tail] = msg
		} else {
			ch.queue = append(ch.queue, msg)
			if len(ch.queue) == 1 {
				headChanged = true
			}
		}
	}
	for n := 0; n < dec.Copies(); n++ {
		enqueue(wire, 0)
	}
	if dec.Replay != nil {
		// A Byzantine replay: a ghost copy of an earlier wire payload rides
		// along, further delayed so it lands stale.
		enqueue(dec.Replay.Payload, dec.Replay.Delay)
	}
	if headChanged {
		s.scheduleHead(k)
	}
}

func (c *procCtx) SetTimer(name string, delay int64) {
	s := c.s
	if s.crashed[c.p] || s.down[c.p] {
		return
	}
	key := timerID{proc: c.p, name: name}
	gen := s.timerGen[key] + 1
	s.timerGen[key] = gen
	s.push(occurrence{time: s.now + delay, kind: occTimer, proc: c.p, name: name, gen: gen})
}

func (c *procCtx) CancelTimer(name string) {
	key := timerID{proc: c.p, name: name}
	if _, ok := c.s.timerGen[key]; ok {
		c.s.timerGen[key]++ // outstanding occurrence becomes stale
	}
}

func (c *procCtx) EmitFailed(j model.ProcID) {
	s := c.s
	if s.crashed[c.p] || s.down[c.p] {
		return
	}
	key := [2]model.ProcID{c.p, j}
	if s.failed[key] {
		return // failed_i(j) is single-shot
	}
	s.failed[key] = true
	s.record(model.Failed(c.p, j))
}

func (c *procCtx) CrashSelf() {
	s := c.s
	if s.crashed[c.p] || s.down[c.p] {
		return
	}
	s.record(model.Crash(c.p))
	s.crashed[c.p] = true
	if l, ok := s.handlers[c.p].(node.CrashListener); ok {
		l.OnCrash(c)
	}
}

func (c *procCtx) EmitInternal(tag string, subject model.ProcID) {
	s := c.s
	if s.crashed[c.p] || s.down[c.p] {
		return
	}
	s.record(model.Internal(c.p, tag, subject))
}
