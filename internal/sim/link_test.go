package sim

import (
	"errors"
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

// sender returns a handler that sends the given payloads to `to` at Init.
func sender(to model.ProcID, tags ...string) node.Handler {
	return &scriptHandler{init: func(ctx node.Context) {
		for _, tag := range tags {
			ctx.Send(to, node.Payload{Tag: tag})
		}
	}}
}

// linkAll applies one decision to every send.
func linkAll(dec node.LinkDecision) node.LinkFn {
	return func(model.ProcID, model.ProcID, node.Payload, int64) node.LinkDecision {
		return dec
	}
}

func TestLinkDropSuppressesDelivery(t *testing.T) {
	s := New(Config{N: 2, Seed: 1, Link: linkAll(node.LinkDecision{Drop: true})})
	s.SetHandler(1, sender(2, "A", "B", "C"))
	rcv := &echoHandler{}
	s.SetHandler(2, rcv)
	res := s.Run()
	if len(rcv.got) != 0 {
		t.Errorf("receiver got %v across a dropping link", rcv.got)
	}
	if res.Sent != 3 || res.Delivered != 0 || res.Dropped != 3 {
		t.Errorf("sent=%d delivered=%d dropped=%d, want 3/0/3", res.Sent, res.Delivered, res.Dropped)
	}
	// Lost messages keep the history model-valid: sent but never received.
	if err := res.History.Validate(); err != nil {
		t.Errorf("lossy history invalid: %v", err)
	}
	if res.BlockedLive() {
		t.Error("dropped messages left a blocked channel")
	}
}

func TestLinkSelectiveDropKeepsFIFOValid(t *testing.T) {
	// Drop only "B": the receiver sees A then C, in send order.
	link := func(from, to model.ProcID, p node.Payload, at int64) node.LinkDecision {
		return node.LinkDecision{Drop: p.Tag == "B"}
	}
	s := New(Config{N: 2, Seed: 1, Link: link})
	s.SetHandler(1, sender(2, "A", "B", "C"))
	rcv := &echoHandler{}
	s.SetHandler(2, rcv)
	res := s.Run()
	if want := []string{"A", "C"}; len(rcv.got) != 2 || rcv.got[0] != "A" || rcv.got[1] != "C" {
		t.Errorf("receiver got %v, want %v", rcv.got, want)
	}
	if res.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", res.Dropped)
	}
	if err := res.History.Validate(); err != nil {
		t.Errorf("history with one lost message invalid: %v", err)
	}
}

func TestLinkDuplicateDeliversCopies(t *testing.T) {
	s := New(Config{N: 2, Seed: 1, Link: linkAll(node.LinkDecision{Duplicates: 1})})
	s.SetHandler(1, sender(2, "A", "B"))
	rcv := &echoHandler{}
	s.SetHandler(2, rcv)
	res := s.Run()
	if len(rcv.got) != 4 {
		t.Errorf("receiver got %d deliveries, want 4 (2 messages × 2 copies)", len(rcv.got))
	}
	if res.Duplicated != 2 || res.Delivered != 4 {
		t.Errorf("duplicated=%d delivered=%d, want 2/4", res.Duplicated, res.Delivered)
	}
	// Duplicate delivery leaves the reliable-channel model; Validate says so.
	if err := res.History.Validate(); !errors.Is(err, model.ErrInvalidHistory) {
		t.Errorf("duplicated history validated: %v", err)
	}
}

func TestLinkParkBlocksChannel(t *testing.T) {
	s := New(Config{N: 2, Seed: 1, Link: linkAll(node.LinkDecision{Park: true})})
	s.SetHandler(1, sender(2, "A", "B"))
	s.SetHandler(2, idle())
	res := s.Run()
	if res.Delivered != 0 {
		t.Errorf("delivered = %d through a parked channel", res.Delivered)
	}
	if len(res.Blocked) != 1 || res.Blocked[0].Reason != ReasonParked || res.Blocked[0].Queued != 2 {
		t.Errorf("blocked = %+v, want one parked channel with 2 queued", res.Blocked)
	}
	if res.Quiescent() {
		t.Error("run with parked messages reported quiescent")
	}
}

func TestLinkExtraDelayShiftsDelivery(t *testing.T) {
	run := func(extra int64) int64 {
		s := New(Config{N: 2, Seed: 1, MinDelay: 1, MaxDelay: 1,
			Link: linkAll(node.LinkDecision{ExtraDelay: extra})})
		s.SetHandler(1, sender(2, "A"))
		s.SetHandler(2, idle())
		return s.Run().EndTime
	}
	if base, delayed := run(0), run(50); delayed != base+50 {
		t.Errorf("EndTime base=%d extra50=%d, want +50", base, delayed)
	}
}

func TestLinkReorderOvertakesTail(t *testing.T) {
	// Only the third message reorders: with everything else FIFO it lands
	// ahead of "B", so the receiver sees A, C, B.
	link := func(from, to model.ProcID, p node.Payload, at int64) node.LinkDecision {
		return node.LinkDecision{Reorder: p.Tag == "C"}
	}
	s := New(Config{N: 2, Seed: 1, MinDelay: 5, MaxDelay: 5, Link: link})
	s.SetHandler(1, sender(2, "A", "B", "C"))
	rcv := &echoHandler{}
	s.SetHandler(2, rcv)
	res := s.Run()
	if len(rcv.got) != 3 || rcv.got[0] != "A" || rcv.got[1] != "C" || rcv.got[2] != "B" {
		t.Errorf("receiver got %v, want [A C B]", rcv.got)
	}
	// Reorder is a genuine FIFO violation; Validate flags it.
	if err := res.History.Validate(); !errors.Is(err, model.ErrInvalidHistory) {
		t.Errorf("reordered history validated: %v", err)
	}
}

// TestLinkDeterminism: the link path preserves the simulator's determinism
// guarantee — identical configs produce identical histories.
func TestLinkDeterminism(t *testing.T) {
	run := func() model.History {
		link := func(from, to model.ProcID, p node.Payload, at int64) node.LinkDecision {
			// A deterministic mix of fates keyed on time parity.
			return node.LinkDecision{
				Drop:       at%3 == 2,
				Duplicates: int(at % 2),
				ExtraDelay: at % 5,
			}
		}
		s := New(Config{N: 3, Seed: 9, Link: link})
		s.SetHandler(1, sender(2, "A", "B"))
		s.SetHandler(2, &scriptHandler{onMsg: func(ctx node.Context, from model.ProcID, p node.Payload) {
			ctx.Send(3, node.Payload{Tag: "FWD"})
		}})
		s.SetHandler(3, idle())
		return s.Run().History
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Same(b[i]) || a[i].Time != b[i].Time {
			t.Fatalf("event %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
