// Micro-benchmarks of the simulator hot path: the send → schedule →
// deliver → timer loop that every scenario run in a sweep turns around
// millions of times. The flood workload is pure harness — inert protocol
// logic — so ns/op and allocs/op measure the simulator itself, not the
// handlers.
//
// Run with: go test ./internal/sim -bench=SimHotPath -benchmem
package sim

import (
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/recovery"
)

// floodHandler broadcasts to every peer on each of its first rounds timer
// ticks and counts deliveries. It exercises sends, channel scheduling,
// deliveries, and timer set/fire — the four occurrence paths — with no
// protocol logic on top.
type floodHandler struct {
	rounds int
	got    int
}

func (h *floodHandler) Init(ctx node.Context) { ctx.SetTimer("tick", 1) }

func (h *floodHandler) OnTimer(ctx node.Context, name string) {
	for p := 1; p <= ctx.N(); p++ {
		if model.ProcID(p) != ctx.Self() {
			ctx.Send(model.ProcID(p), node.Payload{Tag: "flood", Subject: ctx.Self()})
		}
	}
	h.rounds--
	if h.rounds > 0 {
		ctx.SetTimer("tick", 1)
	}
}

func (h *floodHandler) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	h.got++
}

// runFlood executes one n-process, rounds-round flood and returns its
// result (for sanity checks outside the timed loop).
func runFlood(n, rounds int, seed int64) *Result {
	return runFloodObs(n, rounds, seed, nil)
}

// runFloodObs is runFlood with a metrics registry attached.
func runFloodObs(n, rounds int, seed int64, reg *obs.Registry) *Result {
	s := New(Config{N: n, Seed: seed, Metrics: reg})
	for p := 1; p <= n; p++ {
		s.SetHandler(model.ProcID(p), &floodHandler{rounds: rounds})
	}
	return s.Run()
}

// BenchmarkSimHotPath is the headline simulator micro-benchmark: one full
// flood run per iteration (n=10, 20 rounds: 1800 sends and deliveries plus
// 200 timers). allocs/op here is the per-run allocation budget the sweep
// engine pays for every (cell, seed) scenario.
func BenchmarkSimHotPath(b *testing.B) {
	const n, rounds = 10, 20
	want := runFlood(n, rounds, 1)
	if want.Sent != n*(n-1)*rounds || want.Delivered != want.Sent {
		b.Fatalf("flood sent %d delivered %d, want %d", want.Sent, want.Delivered, n*(n-1)*rounds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runFlood(n, rounds, int64(i))
		if res.Stop != StopDrained {
			b.Fatalf("stop = %v", res.Stop)
		}
	}
	b.ReportMetric(float64(n*(n-1)*rounds)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkSimHotPathObs is BenchmarkSimHotPath with a metrics registry
// attached: the observability plane's overhead on the hottest path. The
// instruments are embedded zero-value atomics, so attaching a registry
// costs registration (a handful of map inserts per run) and nothing per
// message; CI gates this benchmark's allocs/op at ≤5% over the bare one.
func BenchmarkSimHotPathObs(b *testing.B) {
	const n, rounds = 10, 20
	want := runFloodObs(n, rounds, 1, obs.NewRegistry())
	if want.Sent != n*(n-1)*rounds || want.Delivered != want.Sent {
		b.Fatalf("flood sent %d delivered %d, want %d", want.Sent, want.Delivered, n*(n-1)*rounds)
	}
	if want.Metrics.Value("sim_sent_total") != int64(want.Sent) {
		b.Fatalf("metrics disagree with result: %s", want.Metrics)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runFloodObs(n, rounds, int64(i), obs.NewRegistry())
		if res.Stop != StopDrained {
			b.Fatalf("stop = %v", res.Stop)
		}
	}
	b.ReportMetric(float64(n*(n-1)*rounds)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// TestObsAllocBudget is the in-tree version of the CI gate: attaching a
// registry to the hot path may add at most 5% allocs/op over running bare.
func TestObsAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const n, rounds = 10, 20
	bare := testing.AllocsPerRun(20, func() { runFlood(n, rounds, 1) })
	withObs := testing.AllocsPerRun(20, func() { runFloodObs(n, rounds, 1, obs.NewRegistry()) })
	if withObs > bare*1.05 {
		t.Errorf("metrics-on hot path allocates %.0f/run, bare %.0f/run: over the 5%% budget", withObs, bare)
	}
}

// BenchmarkSimRestartStorm prices the crash-recovery machinery: a flood
// workload in which two processes cycle crash/restart on periodic
// lifetimes under durable recovery, so each iteration pays for the down
// transitions, snapshot save/restore round trips, in-flight delivery
// drops, and timer-generation sweeps on top of the ordinary hot path.
// CI exports this as BENCH_recovery.json.
func BenchmarkSimRestartStorm(b *testing.B) {
	const n, rounds = 10, 30
	run := func(seed int64) *Result {
		s := New(Config{
			N: n, Seed: seed, MaxTime: 300,
			Lifetimes: []recovery.Lifetime{
				{Proc: n, Crash: 5, Restart: 15, Period: 20},
				{Proc: n - 1, Crash: 10, Restart: 20, Period: 20},
			},
			Recovery: recovery.Durable,
		})
		for p := 1; p <= n-2; p++ {
			s.SetHandler(model.ProcID(p), &floodHandler{rounds: rounds})
		}
		s.SetHandler(n-1, &counterHandler{})
		s.SetHandler(n, &counterHandler{})
		return s.Run()
	}
	want := run(1)
	if want.Restarts == 0 || want.Recovered != want.Restarts {
		b.Fatalf("Restarts=%d Recovered=%d, want equal and > 0", want.Restarts, want.Recovered)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := run(int64(i))
		if res.Restarts == 0 {
			b.Fatalf("seed %d: storm never restarted", i)
		}
	}
	b.ReportMetric(float64(want.Restarts)*float64(b.N)/b.Elapsed().Seconds(), "restarts/s")
}

// BenchmarkSimTimerChurn isolates the timer path: one process re-arming
// (and cancelling) named timers with no messages at all — the heartbeat
// layer's dominant simulator load.
func BenchmarkSimTimerChurn(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{N: 2, Seed: int64(i)})
		s.SetHandler(1, &timerChurnHandler{left: 1000})
		s.SetHandler(2, &floodHandler{})
		res := s.Run()
		if res.Stop != StopDrained {
			b.Fatalf("stop = %v", res.Stop)
		}
	}
}

// timerChurnHandler re-arms two timers left times, cancelling one each
// tick so both the fire and the stale-generation paths run.
type timerChurnHandler struct {
	left int
}

func (h *timerChurnHandler) Init(ctx node.Context) {
	ctx.SetTimer("beat", 1)
}

func (h *timerChurnHandler) OnTimer(ctx node.Context, name string) {
	h.left--
	if h.left <= 0 {
		return
	}
	ctx.SetTimer("beat", 1)
	ctx.SetTimer("probe", 2)
	ctx.CancelTimer("probe")
}

func (h *timerChurnHandler) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {}
