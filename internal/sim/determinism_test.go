// Regression test for the simulator's side of the determinism contract:
// virtual-time runs are a pure function of (spec, seed), so the recorded
// history cannot depend on GOMAXPROCS or on anything else the host
// scheduler controls.
package sim

import (
	"reflect"
	"runtime"
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

// chatterSim builds an all-to-all messaging scenario with timers and a
// mid-run crash — enough machinery to surface any accidental dependence on
// goroutine scheduling.
func chatterSim(n int, seed int64) *Sim {
	s := New(Config{N: n, Seed: seed, MaxTime: 500})
	for p := 1; p <= n; p++ {
		p := model.ProcID(p)
		s.SetHandler(p, &scriptHandler{
			init: func(ctx node.Context) {
				ctx.SetTimer("beat", 7)
				for q := model.ProcID(1); q <= model.ProcID(n); q++ {
					if q != p {
						ctx.Send(q, node.Payload{Tag: "HELLO"})
					}
				}
			},
			onMsg: func(ctx node.Context, from model.ProcID, pl node.Payload) {
				if pl.Tag == "HELLO" && from < p {
					ctx.Send(from, node.Payload{Tag: "ACK"})
				}
			},
			onTimer: func(ctx node.Context, name string) {
				ctx.Send(1+p%model.ProcID(n), node.Payload{Tag: "BEAT"})
				ctx.SetTimer("beat", 11)
			},
		})
	}
	s.CrashAt(40, model.ProcID(2))
	return s
}

// TestHistoryStableAcrossGOMAXPROCS runs the same seeded scenario under
// serial and fully parallel runtimes and requires identical results.
func TestHistoryStableAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *Result {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		return chatterSim(5, 99).Run()
	}
	base := run(1)
	if len(base.History) == 0 {
		t.Fatal("scenario recorded no events")
	}
	for _, procs := range []int{2, runtime.NumCPU()} {
		got := run(procs)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("GOMAXPROCS=%d result diverged from serial baseline:\n--- baseline\n%s\n--- got\n%s",
				procs, base.History, got.History)
		}
	}
}
