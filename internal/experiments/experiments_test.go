package experiments

import (
	"strings"
	"testing"
)

// Every experiment must reproduce its paper claim. These tests ARE the
// reproduction gate: a regression in any protocol, checker, or bound shows
// up here as a FAILED experiment.
func TestAllExperimentsReproduce(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res := Registry()[id]()
			if !res.OK {
				t.Errorf("%s did not reproduce:\n%s", id, res)
			}
			if res.ID != id {
				t.Errorf("result ID %q, want %q", res.ID, id)
			}
			if res.Title == "" || res.Table == "" {
				t.Error("experiment must render a title and table")
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(ids))
	}
	if ids[0] != "E1" || ids[15] != "E16" || ids[16] != "A1" || ids[18] != "A3" {
		t.Errorf("ordering wrong: %v", ids)
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "E0", Title: "x", Table: "tbl\n", OK: true, Notes: []string{"n"}}
	s := r.String()
	for _, want := range []string{"E0", "REPRODUCED", "tbl", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	r.OK = false
	if !strings.Contains(r.String(), "FAILED") {
		t.Error("failed result must say FAILED")
	}
}

// All is exercised one experiment at a time by TestAllExperimentsReproduce;
// here we only check the registry ordering contract: E-experiments by
// number, then A-ablations by number.
func TestAllOrder(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "A1", "A2", "A3"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s (%v)", i, ids[i], want[i], ids)
		}
	}
}
