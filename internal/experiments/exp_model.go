package experiments

import (
	"fmt"

	"failstop/internal/adversary"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/rewrite"
	"failstop/internal/sim"
	"failstop/internal/stats"
	"failstop/internal/sweep"
)

// scenario is one adversarial setup: genuine crashes, (possibly false)
// suspicions, and an optional set of victims whose death sentences (SUSP
// messages addressed to them) are slowed. Slowing the kill path is what
// surfaces FS2 violations: the false detection completes while its victim
// is still alive.
type scenario struct {
	name     string
	crashes  []model.ProcID
	susp     [][2]model.ProcID
	slowKill []model.ProcID
}

// faults converts the scenario into sweep faults: crashes at ticks 2, 3,
// ..., then suspicions at ticks 20, 23, ... — the single source of the
// injection times both protoRun and the E2 sweep schedules use.
func (sc scenario) faults() []sweep.Fault {
	var out []sweep.Fault
	for i, p := range sc.crashes {
		out = append(out, sweep.Fault{Kind: sweep.FaultCrash, At: int64(2 + i), Proc: p})
	}
	for i, s := range sc.susp {
		out = append(out, sweep.Fault{Kind: sweep.FaultSuspect, At: int64(20 + 3*i), Proc: s[0], Target: s[1]})
	}
	return out
}

// protoRun executes one seeded scenario of the given protocol and returns
// the full simulation result. The delay distribution is the shared
// slowed-kill adversary, so these runs are event-for-event identical to
// the same scenario fanned out through the sweep engine.
func protoRun(proto core.Protocol, n, t int, seed int64, sc scenario) *sim.Result {
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: n, Seed: seed, Delay: sweep.SlowKillDelay(seed, sc.slowKill...)},
		Det: core.Config{N: n, T: t, Protocol: proto},
	})
	for _, f := range sc.faults() {
		switch f.Kind {
		case sweep.FaultCrash:
			c.CrashAt(f.At, f.Proc)
		case sweep.FaultSuspect:
			c.SuspectAt(f.At, f.Proc, f.Target)
		}
	}
	return c.Run()
}

// e2Scenarios is the standard scenario mix used by E2/E3/E5: erroneous
// suspicions (with slowed kill paths so the detections are visibly false),
// genuine crashes, and concurrent mutual suspicion.
func e2Scenarios() []scenario {
	return []scenario{
		{name: "false", susp: [][2]model.ProcID{{2, 1}}, slowKill: []model.ProcID{1}},                                     // one false suspicion
		{name: "genuine", crashes: []model.ProcID{10}, susp: [][2]model.ProcID{{1, 10}}},                                  // one genuine crash
		{name: "mutual", susp: [][2]model.ProcID{{1, 2}, {2, 1}}},                                                         // mutual suspicion
		{name: "concurrent", susp: [][2]model.ProcID{{4, 1}, {5, 2}, {6, 3}}, slowKill: []model.ProcID{1}},                // three concurrent
		{name: "mixed", crashes: []model.ProcID{9}, susp: [][2]model.ProcID{{1, 9}, {2, 8}}, slowKill: []model.ProcID{8}}, // mixed
	}
}

// e2Schedules converts the scenario mix into sweep fault schedules sharing
// protoRun's injection times (scenario.faults) and delay distribution, so
// the engine's runs are event-for-event identical to protoRun's.
func e2Schedules() []sweep.Schedule {
	var out []sweep.Schedule
	for _, sc := range e2Scenarios() {
		sc := sc
		out = append(out, sweep.Schedule{
			Name:   sc.name,
			Faults: func(sweep.NT, int64) []sweep.Fault { return sc.faults() },
			Delay: func(nt sweep.NT, seed int64) sim.DelayFn {
				return sweep.SlowKillDelay(seed, sc.slowKill...)
			},
		})
	}
	return out
}

// E2 verifies Figure 1: across seeded adversarial runs of the §5 protocol,
// every sFS condition (FS1, sFS2a–d) holds in 100% of runs, while FS2 —
// the condition sFS deliberately weakens — fails whenever a false suspicion
// completes before its victim dies. The runs fan out through the sweep
// engine: one cell per scenario family, aggregated sweep-wide.
func E2() Result {
	const n, t, seeds = 10, 3, 15
	rep, err := sweep.Run(sweep.Spec{
		Grid:      []sweep.NT{{N: n, T: t}},
		Schedules: e2Schedules(),
		Seeds:     sweep.SeedRange{Count: seeds},
		Check:     true,
	}, sweep.Options{})
	if err != nil {
		return Result{ID: "E2", Title: "Figure 1 condition check", OK: false, Notes: []string{err.Error()}}
	}
	counts, total := rep.TotalHolds()
	tbl := stats.NewTable("property", "runs holding", "total runs", "pct")
	ok := total > 0
	for _, prop := range []string{"FS1", "sFS2a", "sFS2b", "sFS2c", "sFS2d", "W", "FS2"} {
		pct := 100 * float64(counts[prop]) / float64(total)
		tbl.Row(prop, counts[prop], total, pct)
		mustBeTotal := prop != "FS2"
		if mustBeTotal && counts[prop] != total {
			ok = false
		}
		if prop == "FS2" && counts[prop] == total {
			ok = false // with false suspicions in the mix, FS2 must fail somewhere
		}
	}
	return Result{
		ID:    "E2",
		Title: "Figure 1: the sFS conditions hold on every §5-protocol run; FS2 (strong accuracy) does not",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			fmt.Sprintf("n=%d, t=%d, %d quiescent runs over 5 scenario families (false, genuine, mutual, concurrent, mixed), swept on %d workers", n, t, total, rep.Workers),
		},
	}
}

// E3 verifies Theorem 2: Conditions 1–3 are necessary for
// indistinguishability — they hold on every §5 run, and the unilateral
// strawman (which is distinguishable) breaks Condition 1.
func E3() Result {
	const n, seeds = 10, 10
	tbl := stats.NewTable("protocol", "Condition1", "Condition2", "Condition3", "FS-realizable")
	ok := true
	for _, proto := range []core.Protocol{core.SimulatedFailStop, core.Unilateral} {
		c1, c2, c3, rl, total := 0, 0, 0, 0, 0
		for seed := int64(0); seed < seeds; seed++ {
			res := protoRun(proto, n, 3, seed, scenario{susp: [][2]model.ProcID{{2, 1}, {4, 3}}, slowKill: []model.ProcID{1, 3}})
			total++
			ab := res.History.DropTags(core.TagSusp)
			if checker.Condition1(ab).Holds {
				c1++
			}
			if checker.Condition2(ab).Holds {
				c2++
			}
			if checker.Condition3(ab).Holds {
				c3++
			}
			if rewrite.Realizable(ab) {
				rl++
			}
		}
		tbl.Row(proto.String(),
			fmt.Sprintf("%d/%d", c1, total), fmt.Sprintf("%d/%d", c2, total),
			fmt.Sprintf("%d/%d", c3, total), fmt.Sprintf("%d/%d", rl, total))
		switch proto {
		case core.SimulatedFailStop:
			if c1 != total || c2 != total || c3 != total || rl != total {
				ok = false
			}
		case core.Unilateral:
			if c1 != 0 || rl != 0 {
				ok = false // every unilateral run breaks Condition 1 here
			}
		default:
			// E3 states no expectation for other protocols (Cheap is E11's).
		}
	}
	return Result{
		ID:    "E3",
		Title: "Theorem 2: Conditions 1–3 are necessary — §5 satisfies them, the unilateral strawman breaks Condition 1",
		Table: tbl.String(),
		OK:    ok,
	}
}

// E4 verifies Theorem 3: the exact counterexample history satisfies
// Conditions 1–3 yet no isomorphic FS run exists; both rewrite algorithms
// refuse it.
func E4() Result {
	h := adversary.Theorem3Run()
	tbl := stats.NewTable("check", "outcome")
	c1 := checker.Condition1(h).Holds
	c2 := checker.Condition2(h).Holds
	c3 := checker.Condition3(h).Holds
	realizable := rewrite.Realizable(h)
	_, _, gerr := rewrite.Graph(h)
	_, _, serr := rewrite.Swaps(h)
	sfs2d := checker.SFS2d(h).Holds
	tbl.Row("Condition 1 (detected ⇒ crashes)", c1)
	tbl.Row("Condition 2 (failed-before acyclic)", c2)
	tbl.Row("Condition 3 (no event after detection)", c3)
	tbl.Row("sFS2d (the condition it lacks)", sfs2d)
	tbl.Row("isomorphic FS run exists", realizable)
	tbl.Row("graph rewriter refuses", gerr != nil)
	tbl.Row("swap rewriter refuses", serr != nil)
	ok := c1 && c2 && c3 && !sfs2d && !realizable && gerr != nil && serr != nil
	return Result{
		ID:    "E4",
		Title: "Theorem 3: Conditions 1–3 are not sufficient — the 4-process counterexample",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{"history: failed_y(x); send_y(a); recv_a; crash_a; failed_b(a); send_b(x); recv_x; crash_x (x,a,b,y = 1,2,3,4)"},
	}
}

// E5 verifies Theorem 5 constructively: every sFS run rewrites to an
// isomorphic FS run, under both the graph and the paper's swap algorithm.
func E5() Result {
	const n, t, seeds = 10, 3, 12
	var badPairs, moves []float64
	runs, successes := 0, 0
	agree := true
	for _, sc := range e2Scenarios() {
		for seed := int64(0); seed < seeds; seed++ {
			res := protoRun(core.SimulatedFailStop, n, t, seed, sc)
			if !res.Quiescent() {
				continue
			}
			ab := res.History.DropTags(core.TagSusp)
			runs++
			gout, gst, gerr := rewrite.Graph(ab)
			sout, sst, serr := rewrite.Swaps(ab)
			if gerr != nil || serr != nil {
				continue
			}
			if rewrite.Verify(ab, gout) != nil || rewrite.Verify(ab, sout) != nil {
				continue
			}
			if v, allOK := checker.AllHold(checker.FS(gout)); !allOK {
				_ = v
				continue
			}
			successes++
			badPairs = append(badPairs, float64(gst.BadPairs))
			moves = append(moves, float64(sst.Moves))
			if gst.BadPairs != sst.BadPairs {
				agree = false
			}
		}
	}
	bp := stats.Summarize(badPairs)
	mv := stats.Summarize(moves)
	tbl := stats.NewTable("metric", "value")
	tbl.Row("sFS runs examined", runs)
	tbl.Row("isomorphic FS witness found+verified", successes)
	tbl.Row("success rate", fmt.Sprintf("%.1f%%", 100*float64(successes)/float64(runs)))
	tbl.Row("bad pairs per run (mean)", bp.Mean)
	tbl.Row("bad pairs per run (max)", bp.Max)
	tbl.Row("swap moves per run (mean)", mv.Mean)
	tbl.Row("swap moves per run (max)", mv.Max)
	tbl.Row("algorithms agree on bad pairs", agree)
	return Result{
		ID:    "E5",
		Title: "Theorem 5: sFS is indistinguishable from FS — explicit witnesses for every run",
		Table: tbl.String(),
		OK:    runs > 0 && successes == runs && agree,
		Notes: []string{"each witness is checked for validity, per-process isomorphism, FS1 and FS2"},
	}
}
