package experiments

import (
	"fmt"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/reliable"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// E13 measures which of Figure 1's properties survive lossy asynchrony and
// which require reliable channels. The paper's model assumes reliable FIFO
// links; E13 drops that assumption — a drop-probability ladder, a healing
// partition, and a permanent split-brain — and runs the same crash scenario
// with and without the internal/reliable ack/retransmit layer.
//
// Expected split: the safety properties (FS2, sFS2a–d) are loss-immune —
// losing messages only removes events, and none of them quantifies
// existentially over message arrivals. The liveness property FS1 (strong
// completeness: every crash is eventually detected by every correct
// process) is exactly the property lossy links break, and retransmission
// restores it wherever connectivity eventually exists: on the drop ladder
// and across the healing partition, but NOT across a permanent partition —
// no amount of retransmission outruns a cut that never heals.
func E13() Result {
	const (
		n, t  = 5, 2
		seeds = 12
	)
	type scenario struct {
		name string
		plan netadv.Plan
		// wantFS1Bare / wantFS1Rel: must FS1 hold on every seed without /
		// with reliable channels ("all"), fail on every seed ("none"), or
		// fail at least once ("some-fail")?
		wantFS1Bare, wantFS1Rel string
	}
	dropPlan := func(p float64) netadv.Plan {
		plan := netadv.Plan{Name: fmt.Sprintf("drop-%.2f", p)}
		if p > 0 {
			// Drop 0 is the fault-free baseline: an empty plan, since a rule
			// with no effect no longer validates.
			plan.Rules = []netadv.Rule{{Drop: p}}
		}
		return plan
	}
	healing, _ := netadv.Builtin("healing-partition")
	splitBrain, _ := netadv.Builtin("split-brain")
	scenarios := []scenario{
		{"drop 0.00", dropPlan(0), "all", "all"},
		{"drop 0.15", dropPlan(0.15), "some-fail", "all"},
		{"drop 0.35", dropPlan(0.35), "some-fail", "all"},
		{"healing-partition", healing.Make(n, t), "none", "all"},
		{"split-brain", splitBrain.Make(n, t), "none", "none"},
	}

	type cellStats struct {
		complete, fs1, safety int // runs on which each held
		retransmits, sent     int
	}
	run := func(plan netadv.Plan, rel bool) cellStats {
		var cs cellStats
		for seed := int64(1); seed <= seeds; seed++ {
			plane := netadv.NewPlane(plan, n, seed)
			opts := cluster.Options{
				Sim: sim.Config{N: n, Seed: seed, Link: plane.Decide},
				Det: core.Config{N: n, T: t},
			}
			if rel {
				// Bounded stubbornness: 8 rounds with the default 40-tick
				// interval and 2x backoff span >3000 ticks, far past the
				// healing partition's tick-200 heal, while letting every
				// run drain (an unbounded link to the crashed process
				// would retransmit forever).
				opts.Reliable = reliable.Options{Enabled: true, MaxRetries: 8}
			}
			c := cluster.New(opts)
			c.CrashAt(15, 1)
			c.SuspectAt(20, 5, 1)
			res := c.Run()
			cs.retransmits += res.Retransmits
			cs.sent += res.Sent

			complete := true
			for p := model.ProcID(2); p <= n; p++ {
				if res.History.FailedIndex(p, 1) < 0 {
					complete = false
				}
			}
			if complete {
				cs.complete++
			}
			ab := res.History.DropTags(core.TagSusp, reliable.TagAck)
			if checker.FS1(ab).Holds {
				cs.fs1++
			}
			safe := checker.FS2(ab).Holds
			for _, v := range []checker.Verdict{
				checker.SFS2a(ab), checker.SFS2b(ab), checker.SFS2c(ab), checker.SFS2d(ab),
			} {
				safe = safe && v.Holds
			}
			if safe {
				cs.safety++
			}
		}
		return cs
	}

	frac := func(k int) string { return fmt.Sprintf("%d/%d", k, seeds) }
	overhead := func(cs cellStats) string {
		if cs.sent == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(cs.retransmits)/float64(cs.sent))
	}
	meets := func(want string, held int) bool {
		switch want {
		case "all":
			return held == seeds
		case "none":
			return held == 0
		case "some-fail":
			return held < seeds
		}
		return false
	}

	tbl := stats.NewTable("scenario", "reliable", "crash detected by all", "FS1", "FS2+sFS2a-d", "retransmits", "overhead")
	ok := true
	for _, sc := range scenarios {
		bare := run(sc.plan, false)
		rel := run(sc.plan, true)
		tbl.Row(sc.name, "off", frac(bare.complete), frac(bare.fs1), frac(bare.safety), bare.retransmits, overhead(bare))
		tbl.Row(sc.name, "on", frac(rel.complete), frac(rel.fs1), frac(rel.safety), rel.retransmits, overhead(rel))
		ok = ok &&
			bare.safety == seeds && rel.safety == seeds && // safety is loss-immune
			meets(sc.wantFS1Bare, bare.fs1) &&
			meets(sc.wantFS1Rel, rel.fs1) &&
			bare.fs1 == bare.complete && rel.fs1 == rel.complete && // FS1 == completeness here: 1 crash, 0 false suspicions
			bare.retransmits == 0 // the disabled layer must do no work
	}

	return Result{
		ID:    "E13",
		Title: "Figure 1 properties under lossy links, with and without reliable channels (ack/retransmit layer)",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"crash_1@15, suspicion by minority process 5@20; n=5 t=2, quorum 3; 12 seeds per cell",
			"safety (FS2, sFS2a-d) holds unconditionally: losing messages only removes events",
			"FS1 (strong completeness) requires reliable channels under loss, and heals with the partition",
			"no retransmission regime recovers a permanent split-brain: FS1 needs eventual connectivity",
			"overhead = retransmitted frames / total sends; nonzero even at drop 0 because the layer keeps re-offering frames to the crashed process until MaxRetries",
		},
	}
}
