package experiments

import (
	"fmt"

	"failstop/internal/adversary"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/fd"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/quorum"
	"failstop/internal/sim"
	"failstop/internal/stats"
	"failstop/internal/sweep"
)

// E1 reproduces Theorem 1 operationally: no timeout implements the Perfect
// Failure Detector. Two scenarios per timeout value:
//
//   - spike: the victim is healthy but its heartbeats suffer an adversarial
//     delay spike. A finite timeout below the spike produces a false
//     detection (an FS2 violation at the FS level — the sFS machinery then
//     kills the victim to stay internally consistent).
//   - crash: the victim genuinely crashes. A detector with no timeout
//     (∞) never detects it — an FS1 violation.
func E1() Result {
	const (
		n, t      = 5, 2
		hbEvery   = 10
		spikeSize = 400
		horizon   = 6000
	)
	timeouts := []int64{20, 40, 80, 160, 320, 0} // 0 = no timeout (∞)

	run := func(timeout int64, spike bool) (falseDet, missed bool) {
		var delay sim.DelayFn
		spikeFn := adversary.HeartbeatSpike(1, fd.TagHeartbeat, 100, 2, spikeSize)
		delay = func(from, to model.ProcID, p node.Payload, at int64) int64 {
			if to == 1 && p.Tag == core.TagSusp {
				return 60 // let quorums complete before the kill lands
			}
			if spike {
				return spikeFn(from, to, p, at)
			}
			return 2
		}
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: n, Seed: 7, Delay: delay, MaxTime: horizon},
			Det: core.Config{N: n, T: t},
			FD: func(model.ProcID) core.Component {
				return &fd.Heartbeat{Interval: hbEvery, Timeout: timeout}
			},
		})
		if !spike {
			c.CrashAt(100, 1)
		}
		res := c.Run()
		if spike {
			// The victim was healthy: any detection of it was false.
			for p := model.ProcID(2); int(p) <= n; p++ {
				if res.History.FailedIndex(p, 1) >= 0 {
					falseDet = true
				}
			}
		} else {
			// FS1 on the full history: every live process must have
			// detected the genuine crash by the horizon.
			missed = !checker.FS1(res.History).Holds
		}
		return falseDet, missed
	}

	tbl := stats.NewTable("timeout", "false detection (healthy victim, spike)", "missed detection (real crash)")
	ok := true
	for _, to := range timeouts {
		label := fmt.Sprintf("%d", to)
		if to == 0 {
			label = "∞ (none)"
		}
		falseDet, _ := run(to, true)
		_, missed := run(to, false)
		tbl.Row(label, falseDet, missed)
		finite := to != 0
		switch {
		case finite && to <= spikeSize && !falseDet:
			ok = false // a small timeout must be fooled by the spike
		case finite && missed:
			ok = false // a finite timeout must catch genuine crashes
		case !finite && !missed:
			ok = false // no timeout means no completeness
		case !finite && falseDet:
			ok = false
		}
	}
	return Result{
		ID:    "E1",
		Title: "Theorem 1: FS (a Perfect Failure Detector) is unimplementable — the timeout dilemma",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			fmt.Sprintf("n=%d, heartbeat every %d ticks, adversarial spike of %d ticks on the victim's heartbeats", n, hbEvery, spikeSize),
			"every finite timeout below the spike yields a false detection (FS2 broken); no timeout yields a missed detection (FS1 broken)",
		},
	}
}

// E6 reproduces Theorem 6 / Appendix A.3: when quorums are too small to
// guarantee the Witness property, the adversarial schedule manufactures a
// k-cycle in the failed-before relation; with W restored (Theorem 7
// quorums) the same adversary produces no cycle.
func E6() Result {
	cases := []struct{ n, k int }{{5, 2}, {7, 2}, {10, 3}, {13, 3}, {17, 4}, {26, 5}}
	tbl := stats.NewTable("n", "k (cycle len)", "quorum", "witness-free", "cycle formed")
	ok := true
	for _, tc := range cases {
		for _, q := range []int{quorum.MinSize(tc.n, tc.k) - 1, quorum.MinSize(tc.n, tc.k)} {
			out := adversary.RunCycleScenario(tc.n, tc.k, q, 1)
			// Theorem 6 is about the quorum family of the would-be cycle's
			// detections: below the bound all k complete with an empty
			// intersection; at the bound they stall, so the (partial)
			// family trivially keeps a witness.
			_, hasWitness := quorum.Witness(out.RingQuorums)
			gotCycle := out.Cycle != nil
			under := q < quorum.MinSize(tc.n, tc.k)
			witnessFree := len(out.RingQuorums) == tc.k && !hasWitness
			tbl.Row(tc.n, tc.k, q, witnessFree, gotCycle)
			if under && (!gotCycle || !witnessFree) {
				ok = false
			}
			if !under && (gotCycle || witnessFree) {
				ok = false
			}
		}
	}
	return Result{
		ID:    "E6",
		Title: "Theorem 6 / App. A.3: the Witness property is necessary — witness-free quorums admit failed-before cycles",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"schedule: every process suspects the k ring targets in descending rotation order; 'you failed' messages parked (FIFO parks everything behind them)",
			"below the bound the quorum family has empty intersection and the k-cycle completes; at the bound every quorum stalls one short",
		},
	}
}

// E7 reproduces Theorem 7's tightness on a grid: at q = ⌊n(t-1)/t⌋ (one
// below the bound) the cycle adversary wins; at q = ⌊n(t-1)/t⌋+1 it loses.
// The (n, t) × {q-1, q} grid fans out through the sweep engine with a
// custom runner wrapping the Appendix A.3 cycle adversary.
func E7() Result {
	grid := []sweep.NT{
		{N: 4, T: 2}, {N: 5, T: 2}, {N: 6, T: 2}, {N: 9, T: 2}, {N: 10, T: 3},
		{N: 12, T: 3}, {N: 15, T: 3}, {N: 17, T: 4}, {N: 20, T: 4}, {N: 26, T: 5},
	}
	const schedName = "a3-ring"
	rep, err := sweep.Run(sweep.Spec{
		Grid:         grid,
		QuorumDeltas: []int{-1, 0},
		Schedules:    []sweep.Schedule{{Name: schedName}},
		Seeds:        sweep.SeedRange{Start: 1, Count: 1},
		Runner: func(cell sweep.Cell, seed int64) sweep.RunOutput {
			q := quorum.MinSize(cell.NT.N, cell.NT.T) + cell.QuorumDelta
			out := adversary.RunCycleScenario(cell.NT.N, cell.NT.T, q, seed)
			return sweep.RunOutput{
				Result:  out.Result,
				Metrics: map[string]bool{"cycle": out.Cycle != nil},
			}
		},
	}, sweep.Options{})
	if err != nil {
		return Result{ID: "E7", Title: "Theorem 7 quorum bound", OK: false, Notes: []string{err.Error()}}
	}
	tbl := stats.NewTable("n", "t", "min quorum ⌊n(t-1)/t⌋+1", "cycle at q-1", "cycle at q")
	ok := true
	for _, g := range grid {
		cellAt := func(delta int) *sweep.CellResult {
			return rep.Cell(sweep.Cell{NT: g, Protocol: core.SimulatedFailStop, QuorumDelta: delta, Schedule: schedName})
		}
		below := cellAt(-1).MetricAll("cycle")
		at := !cellAt(0).MetricNone("cycle")
		tbl.Row(g.N, g.T, quorum.MinSize(g.N, g.T), below, at)
		if !below || at {
			ok = false
		}
	}
	return Result{
		ID:    "E7",
		Title: "Theorem 7: fixed quorums must exceed n(t-1)/t — tight in both directions",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{"'cycle at q-1' must be true (bound is necessary), 'cycle at q' false (bound is sufficient)"},
	}
}

// E8 reproduces Corollary 8: with minimum quorums, the protocol makes
// progress (all live processes complete all detections) iff n > t². The
// (n, t) grid fans out through the sweep engine: a declarative t-crash
// schedule plus an Observe hook that reads detector state per run.
func E8() Result {
	grid := []sweep.NT{
		{N: 3, T: 2}, {N: 4, T: 2}, {N: 5, T: 2}, {N: 8, T: 2}, {N: 9, T: 3},
		{N: 10, T: 3}, {N: 14, T: 3}, {N: 16, T: 4}, {N: 17, T: 4}, {N: 20, T: 4},
	}
	const schedName = "t-crashes"
	rep, err := sweep.Run(sweep.Spec{
		Grid: grid,
		Schedules: []sweep.Schedule{{
			Name: schedName,
			// t genuine crashes, then a survivor suspects each victim.
			Faults: func(nt sweep.NT, seed int64) []sweep.Fault {
				var fs []sweep.Fault
				for i := 0; i < nt.T; i++ {
					victim := model.ProcID(nt.N - i)
					fs = append(fs,
						sweep.Fault{Kind: sweep.FaultCrash, At: int64(1 + i), Proc: victim},
						sweep.Fault{Kind: sweep.FaultSuspect, At: int64(50 + i), Proc: 1, Target: victim})
				}
				return fs
			},
		}},
		Seeds:    sweep.SeedRange{Start: 3, Count: 1},
		MinDelay: 1, MaxDelay: 5,
		Observe: func(cell sweep.Cell, seed int64, out sweep.RunOutput) map[string]bool {
			progress := true
			for p := 1; p <= cell.NT.N-cell.NT.T; p++ {
				for i := 0; i < cell.NT.T; i++ {
					if !out.Cluster.Detectors[p].Detected(model.ProcID(cell.NT.N - i)) {
						progress = false
					}
				}
			}
			return map[string]bool{"progress": progress}
		},
	}, sweep.Options{})
	if err != nil {
		return Result{ID: "E8", Title: "Corollary 8 progress bound", OK: false, Notes: []string{err.Error()}}
	}
	tbl := stats.NewTable("n", "t", "n > t²", "progress (all detections complete)")
	ok := true
	for _, g := range grid {
		c := rep.Cell(sweep.Cell{NT: g, Protocol: core.SimulatedFailStop, Schedule: schedName})
		progress := c.MetricAll("progress")
		predicted := g.N > g.T*g.T
		tbl.Row(g.N, g.T, predicted, progress)
		if progress != predicted {
			ok = false
		}
	}
	return Result{
		ID:    "E8",
		Title: "Corollary 8: minimum-quorum progress requires n > t²",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{"t genuine crashes leave n-t live processes; the quorum ⌊n(t-1)/t⌋+1 is reachable iff n > t²"},
	}
}
