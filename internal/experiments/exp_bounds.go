package experiments

import (
	"fmt"

	"failstop/internal/adversary"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/fd"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/quorum"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// E1 reproduces Theorem 1 operationally: no timeout implements the Perfect
// Failure Detector. Two scenarios per timeout value:
//
//   - spike: the victim is healthy but its heartbeats suffer an adversarial
//     delay spike. A finite timeout below the spike produces a false
//     detection (an FS2 violation at the FS level — the sFS machinery then
//     kills the victim to stay internally consistent).
//   - crash: the victim genuinely crashes. A detector with no timeout
//     (∞) never detects it — an FS1 violation.
func E1() Result {
	const (
		n, t      = 5, 2
		hbEvery   = 10
		spikeSize = 400
		horizon   = 6000
	)
	timeouts := []int64{20, 40, 80, 160, 320, 0} // 0 = no timeout (∞)

	run := func(timeout int64, spike bool) (falseDet, missed bool) {
		var delay sim.DelayFn
		spikeFn := adversary.HeartbeatSpike(1, fd.TagHeartbeat, 100, 2, spikeSize)
		delay = func(from, to model.ProcID, p node.Payload, at int64) int64 {
			if to == 1 && p.Tag == core.TagSusp {
				return 60 // let quorums complete before the kill lands
			}
			if spike {
				return spikeFn(from, to, p, at)
			}
			return 2
		}
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: n, Seed: 7, Delay: delay, MaxTime: horizon},
			Det: core.Config{N: n, T: t},
			FD: func(model.ProcID) core.Component {
				return &fd.Heartbeat{Interval: hbEvery, Timeout: timeout}
			},
		})
		if !spike {
			c.CrashAt(100, 1)
		}
		res := c.Run()
		if spike {
			// The victim was healthy: any detection of it was false.
			for p := model.ProcID(2); int(p) <= n; p++ {
				if res.History.FailedIndex(p, 1) >= 0 {
					falseDet = true
				}
			}
		} else {
			// FS1 on the full history: every live process must have
			// detected the genuine crash by the horizon.
			missed = !checker.FS1(res.History).Holds
		}
		return falseDet, missed
	}

	tbl := stats.NewTable("timeout", "false detection (healthy victim, spike)", "missed detection (real crash)")
	ok := true
	for _, to := range timeouts {
		label := fmt.Sprintf("%d", to)
		if to == 0 {
			label = "∞ (none)"
		}
		falseDet, _ := run(to, true)
		_, missed := run(to, false)
		tbl.Row(label, falseDet, missed)
		finite := to != 0
		switch {
		case finite && to <= spikeSize && !falseDet:
			ok = false // a small timeout must be fooled by the spike
		case finite && missed:
			ok = false // a finite timeout must catch genuine crashes
		case !finite && !missed:
			ok = false // no timeout means no completeness
		case !finite && falseDet:
			ok = false
		}
	}
	return Result{
		ID:    "E1",
		Title: "Theorem 1: FS (a Perfect Failure Detector) is unimplementable — the timeout dilemma",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			fmt.Sprintf("n=%d, heartbeat every %d ticks, adversarial spike of %d ticks on the victim's heartbeats", n, hbEvery, spikeSize),
			"every finite timeout below the spike yields a false detection (FS2 broken); no timeout yields a missed detection (FS1 broken)",
		},
	}
}

// E6 reproduces Theorem 6 / Appendix A.3: when quorums are too small to
// guarantee the Witness property, the adversarial schedule manufactures a
// k-cycle in the failed-before relation; with W restored (Theorem 7
// quorums) the same adversary produces no cycle.
func E6() Result {
	cases := []struct{ n, k int }{{5, 2}, {7, 2}, {10, 3}, {13, 3}, {17, 4}, {26, 5}}
	tbl := stats.NewTable("n", "k (cycle len)", "quorum", "witness-free", "cycle formed")
	ok := true
	for _, tc := range cases {
		for _, q := range []int{quorum.MinSize(tc.n, tc.k) - 1, quorum.MinSize(tc.n, tc.k)} {
			out := adversary.RunCycleScenario(tc.n, tc.k, q, 1)
			// Theorem 6 is about the quorum family of the would-be cycle's
			// detections: below the bound all k complete with an empty
			// intersection; at the bound they stall, so the (partial)
			// family trivially keeps a witness.
			_, hasWitness := quorum.Witness(out.RingQuorums)
			gotCycle := out.Cycle != nil
			under := q < quorum.MinSize(tc.n, tc.k)
			witnessFree := len(out.RingQuorums) == tc.k && !hasWitness
			tbl.Row(tc.n, tc.k, q, witnessFree, gotCycle)
			if under && (!gotCycle || !witnessFree) {
				ok = false
			}
			if !under && (gotCycle || witnessFree) {
				ok = false
			}
		}
	}
	return Result{
		ID:    "E6",
		Title: "Theorem 6 / App. A.3: the Witness property is necessary — witness-free quorums admit failed-before cycles",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"schedule: every process suspects the k ring targets in descending rotation order; 'you failed' messages parked (FIFO parks everything behind them)",
			"below the bound the quorum family has empty intersection and the k-cycle completes; at the bound every quorum stalls one short",
		},
	}
}

// E7 reproduces Theorem 7's tightness on a grid: at q = ⌊n(t-1)/t⌋ (one
// below the bound) the cycle adversary wins; at q = ⌊n(t-1)/t⌋+1 it loses.
func E7() Result {
	grid := []struct{ n, t int }{
		{4, 2}, {5, 2}, {6, 2}, {9, 2}, {10, 3}, {12, 3}, {15, 3}, {17, 4}, {20, 4}, {26, 5},
	}
	tbl := stats.NewTable("n", "t", "min quorum ⌊n(t-1)/t⌋+1", "cycle at q-1", "cycle at q")
	ok := true
	for _, g := range grid {
		q := quorum.MinSize(g.n, g.t)
		below := adversary.RunCycleScenario(g.n, g.t, q-1, 1).Cycle != nil
		at := adversary.RunCycleScenario(g.n, g.t, q, 1).Cycle != nil
		tbl.Row(g.n, g.t, q, below, at)
		if !below || at {
			ok = false
		}
	}
	return Result{
		ID:    "E7",
		Title: "Theorem 7: fixed quorums must exceed n(t-1)/t — tight in both directions",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{"'cycle at q-1' must be true (bound is necessary), 'cycle at q' false (bound is sufficient)"},
	}
}

// E8 reproduces Corollary 8: with minimum quorums, the protocol makes
// progress (all live processes complete all detections) iff n > t².
func E8() Result {
	grid := []struct{ n, t int }{
		{3, 2}, {4, 2}, {5, 2}, {8, 2}, {9, 3}, {10, 3}, {14, 3}, {16, 4}, {17, 4}, {20, 4},
	}
	tbl := stats.NewTable("n", "t", "n > t²", "progress (all detections complete)")
	ok := true
	for _, g := range grid {
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: g.n, Seed: 3, MinDelay: 1, MaxDelay: 5},
			Det: core.Config{N: g.n, T: g.t},
		})
		// t genuine crashes, then a survivor suspects each victim.
		for i := 0; i < g.t; i++ {
			victim := model.ProcID(g.n - i)
			c.CrashAt(int64(1+i), victim)
			c.SuspectAt(int64(50+i), 1, victim)
		}
		c.Run()
		progress := true
		for p := 1; p <= g.n-g.t; p++ {
			for i := 0; i < g.t; i++ {
				if !c.Detectors[p].Detected(model.ProcID(g.n - i)) {
					progress = false
				}
			}
		}
		predicted := g.n > g.t*g.t
		tbl.Row(g.n, g.t, predicted, progress)
		if progress != predicted {
			ok = false
		}
	}
	return Result{
		ID:    "E8",
		Title: "Corollary 8: minimum-quorum progress requires n > t²",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{"t genuine crashes leave n-t live processes; the quorum ⌊n(t-1)/t⌋+1 is reachable iff n > t²"},
	}
}
