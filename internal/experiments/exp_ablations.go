package experiments

import (
	"fmt"

	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/membership"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// A1 ablates the sFS2d gating rule: the precise per-sender rule (defer an
// application receive from s only while owing a detection s announced)
// versus §5's literal "take no other action" (defer all application
// receives while any detection is in progress). Both satisfy sFS2d; the
// ablation measures what the literal rule costs in application latency.
func A1() Result {
	const n, seeds = 10, 8
	measure := func(strict bool) (appLat []float64, violations int) {
		for seed := int64(0); seed < seeds; seed++ {
			c := cluster.New(cluster.Options{
				Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 10, MaxTime: 2500},
				Det: core.Config{N: n, T: 3, StrictGating: strict},
				App: func(p model.ProcID) core.App {
					return &membership.Service{GossipInterval: 30}
				},
			})
			c.SuspectAt(100, 1, 2)
			c.SuspectAt(140, 3, 4)
			res := c.Run()
			sendTimes := map[model.MsgID]int64{}
			for _, e := range res.History {
				switch {
				case e.Kind == model.KindSend && e.Tag == core.TagApp:
					sendTimes[e.Msg] = e.Time
				case e.Kind == model.KindRecv && e.Tag == core.TagApp:
					if st, okT := sendTimes[e.Msg]; okT {
						appLat = append(appLat, float64(e.Time-st))
					}
				}
			}
			violations += membership.ObservedViolations(res.History)
		}
		return appLat, violations
	}
	preciseLat, pv := measure(false)
	strictLat, sv := measure(true)
	p, s := stats.Summarize(preciseLat), stats.Summarize(strictLat)
	tbl := stats.NewTable("gating", "app msgs delivered", "app latency mean", "app latency p95", "sFS2d violations")
	tbl.Row("precise (per-sender)", p.N, fmt.Sprintf("%.1f", p.Mean), fmt.Sprintf("%.1f", p.P95), pv)
	tbl.Row("strict (§5 literal)", s.N, fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.1f", s.P95), sv)
	ok := pv == 0 && sv == 0 && p.N > 0 && s.N > 0 && s.Mean >= p.Mean
	return Result{
		ID:    "A1",
		Title: "Ablation: sFS2d receive gating — precise per-sender rule vs §5's literal 'no other action'",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"both rules preserve sFS2d (zero view-monotonicity violations); the literal rule only adds latency",
			"gossiping membership traffic during two overlapping detection rounds",
		},
	}
}

// A2 ablates the quorum policy (§4 describes both): FixedQuorum waits for
// ⌊n(t-1)/t⌋+1 senders and requires n > t²; AllButSuspected waits for every
// unsuspected process and requires only t < n but must hear from everyone.
func A2() Result {
	const n = 12
	type row struct {
		detections int
		latency    stats.Summary
		quorumMean float64
	}
	measure := func(policy core.QuorumPolicy, t int) row {
		var lats []float64
		var qsizes []float64
		detections := 0
		for seed := int64(0); seed < 8; seed++ {
			c := cluster.New(cluster.Options{
				Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 10},
				Det: core.Config{N: n, T: t, Policy: policy},
			})
			c.SuspectAt(10, 2, 1)
			res := c.Run()
			var suspTime int64 = -1
			for _, e := range res.History {
				switch {
				case e.Kind == model.KindInternal && e.Tag == "suspect" && suspTime < 0:
					suspTime = e.Time
				case e.Kind == model.KindFailed:
					detections++
					lats = append(lats, float64(e.Time-suspTime))
				}
			}
			for p := 1; p <= n; p++ {
				for _, q := range c.Detectors[p].Quorums() {
					qsizes = append(qsizes, float64(len(q)))
				}
			}
		}
		return row{detections: detections, latency: stats.Summarize(lats), quorumMean: stats.Summarize(qsizes).Mean}
	}
	fixed := measure(core.FixedQuorum, 3)
	all := measure(core.AllButSuspected, 3)
	tbl := stats.NewTable("policy", "detections (8 runs)", "quorum size mean", "latency mean", "latency p95")
	tbl.Row("FixedQuorum  (needs n>t²)", fixed.detections, fmt.Sprintf("%.1f", fixed.quorumMean),
		fmt.Sprintf("%.1f", fixed.latency.Mean), fmt.Sprintf("%.1f", fixed.latency.P95))
	tbl.Row("AllButSuspected (needs t<n)", all.detections, fmt.Sprintf("%.1f", all.quorumMean),
		fmt.Sprintf("%.1f", all.latency.Mean), fmt.Sprintf("%.1f", all.latency.P95))
	ok := fixed.detections > 0 && all.detections > 0 &&
		all.quorumMean > fixed.quorumMean && // waits for strictly more processes
		all.latency.Mean >= fixed.latency.Mean
	return Result{
		ID:    "A2",
		Title: "Ablation: quorum policy — fixed minimum quorum vs wait-for-all-unsuspected (§4's two implementations)",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"AllButSuspected buys a weaker replication requirement (t < n instead of n > t²) by waiting for more acknowledgements",
		},
	}
}

// A3 explores the §6 future work ("stronger versions of fail-stop"): the
// transitivity of the failed-before relation. The model allows intransitive
// runs, and the cheap protocol produces them; the §5 protocol's minimum
// quorums turn out to forbid them structurally (any two quorums overlap in
// more than 2q-n processes, and FIFO delivers what the overlap knew), with
// or without the explicit Piggyback ordering.
func A3() Result {
	// The scenario of TestFailedBeforeTransitivityByProtocol: round 1
	// (target 1) isolated from processes 4 and 10; round 2 (target 2)
	// initiated by 4, so only cheap's quorum-of-one lets 10 detect 2
	// without knowing of 1.
	park := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if (to == 10 || to == 4) && p.Tag == core.TagSusp && p.Subject == 1 {
			return -1
		}
		return 2
	}
	type row struct {
		transitive     bool
		outOfOrderDet  bool
		detectionsAt10 int
	}
	measure := func(proto core.Protocol, piggyback bool) row {
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: 10, Seed: 1, Delay: park},
			Det: core.Config{N: 10, T: 2, Protocol: proto, Piggyback: piggyback},
		})
		c.SuspectAt(5, 2, 1)
		c.SuspectAt(100, 4, 2)
		res := c.Run()
		d10 := c.Detectors[10]
		return row{
			transitive:     model.NewFailedBefore(res.History).Transitive(),
			outOfOrderDet:  d10.Detected(2) && !d10.Detected(1),
			detectionsAt10: len(d10.DetectedSet()),
		}
	}
	cheap := measure(core.Cheap, false)
	plain := measure(core.SimulatedFailStop, false)
	pig := measure(core.SimulatedFailStop, true)
	tbl := stats.NewTable("protocol", "failed-before transitive", "out-of-order detection at 10", "detections at 10")
	tbl.Row("cheap", cheap.transitive, cheap.outOfOrderDet, cheap.detectionsAt10)
	tbl.Row("sfs (min quorums)", plain.transitive, plain.outOfOrderDet, plain.detectionsAt10)
	tbl.Row("sfs + piggyback", pig.transitive, pig.outOfOrderDet, pig.detectionsAt10)
	ok := !cheap.transitive && cheap.outOfOrderDet &&
		plain.transitive && !plain.outOfOrderDet &&
		pig.transitive && !pig.outOfOrderDet
	return Result{
		ID:    "A3",
		Title: "Exploration (§6 future work): transitive failed-before — the §5 quorums already provide it; the cheap model does not",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"§6 notes that a transitive relation enables immediate last-to-fail recovery and that the sFS MODEL is not transitive",
			"finding: the §5 protocol with minimum quorums never generated an intransitive relation — quorum overlap (2q > n) plus FIFO carries knowledge of earlier detections with every quorum",
			"the Piggyback option makes that ordering explicit (and provable locally) at the cost of extra blocking",
		},
	}
}
