package experiments

import (
	"fmt"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/netadv"
	"failstop/internal/recovery"
	"failstop/internal/reliable"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// E15 measures which of Figure 1's properties survive crash-recovery, and
// what a restarted process must remember for them to survive. The paper's
// model is fail-stop — crash_p is final — so every property is stated
// against processes that stay down. E15 deviates: the environment crashes
// and restarts the witness process mid-detection, under all three recovery
// modes (internal/recovery), across a restart-frequency x drop ladder.
//
// The scenario traps the only evidence of a crash inside the witness:
// process 1 genuinely crashes, process 2 suspects it and broadcasts SUSP —
// but a transient cut isolates 2 from everyone until after 2 itself is
// crashed by the environment. The SUSP frames sit unacked in 2's reliable
// endpoint; 2's suspicion lives only in its detector state. What happens
// next is pure recovery policy:
//
//   - off: 2 never returns; the evidence dies with it. FS1 fails.
//   - amnesia: 2 returns blank — no suspicion, no unacked frames, and the
//     stubborn link's resend path has nothing to resend. FS1 fails.
//   - durable: 2 returns with its snapshot; the restored endpoint re-arms
//     its unacked SUSP frames and the stubborn retransmission completes
//     the detection after the cut heals. FS1 holds.
//
// Safety (FS2, sFS2a-d) holds in every cell: restarts only remove or
// replay evidence, they cannot forge a detection. That split — liveness
// needs persistence, safety does not — is the YOLMT observation this
// experiment pins down.
func E15() Result {
	const (
		n, t  = 5, 2
		seeds = 10
	)
	type scenario struct {
		name string
		// storm: 0 is the one-shot crash/restart; otherwise process 2
		// crashes every storm ticks (bounded by Until) for 50 ticks.
		storm int64
		drop  float64
	}
	scenarios := []scenario{
		{"one-shot", 0, 0},
		{"one-shot drop 0.20", 0, 0.20},
		{"storm /300", 300, 0},
		{"storm /300 drop 0.20", 300, 0.20},
		{"storm /150 drop 0.20", 150, 0.20},
	}

	type cellStats struct {
		fs1, safety         int // runs on which each held
		restarts, recovered int
	}
	run := func(sc scenario, mode recovery.Mode) cellStats {
		var cs cellStats
		for seed := int64(1); seed <= seeds; seed++ {
			// The witness trap: cut 2 -> {3,4,5} from before the suspicion
			// until after the environment crash, so the SUSP broadcast is
			// still unacked when 2 goes down at tick 30.
			plan := netadv.Plan{Name: "witness-trap"}
			pairs := []netadv.Link{{From: 2, To: 3}, {From: 2, To: 4}, {From: 2, To: 5}}
			plan.Rules = []netadv.Rule{{From: 15, Until: 60, Cut: true, Links: netadv.LinkSet{Pairs: pairs}}}
			if sc.drop > 0 {
				plan.Rules = append(plan.Rules, netadv.Rule{Drop: sc.drop})
			}
			if sc.storm > 0 {
				plan.Procs = []netadv.ProcRule{{Proc: 2, CrashAt: 30, Period: sc.storm, ActiveFor: 50, Until: 1500}}
			} else {
				plan.Procs = []netadv.ProcRule{{Proc: 2, CrashAt: 30, RestartAt: 80}}
			}
			plane := netadv.NewPlane(plan, n, seed)
			c := cluster.New(cluster.Options{
				Sim: sim.Config{
					N: n, Seed: seed, Link: plane.Decide,
					Lifetimes: plan.Lifetimes(), Recovery: mode,
				},
				Det: core.Config{N: n, T: t},
				// Bounded stubbornness, as in E13: enough rounds to outlive
				// the tick-60 heal and every storm window, while letting
				// runs drain.
				Reliable: reliable.Options{Enabled: true, MaxRetries: 8},
			})
			c.CrashAt(15, 1)
			c.SuspectAt(20, 2, 1)
			res := c.Run()
			cs.restarts += res.Restarts
			cs.recovered += res.Recovered

			ab := res.History.DropTags(core.TagSusp, reliable.TagAck)
			// FS1At, not FS1: under off/amnesia the bystanders {3,4,5} are
			// entirely silent, so inferring n from the history would drop
			// them and pass FS1 vacuously.
			if checker.FS1At(ab, n).Holds {
				cs.fs1++
			}
			safe := checker.FS2(ab).Holds
			for _, v := range []checker.Verdict{
				checker.SFS2a(ab), checker.SFS2b(ab), checker.SFS2c(ab), checker.SFS2d(ab),
			} {
				safe = safe && v.Holds
			}
			if safe {
				cs.safety++
			}
		}
		return cs
	}

	frac := func(k int) string { return fmt.Sprintf("%d/%d", k, seeds) }
	tbl := stats.NewTable("scenario", "recovery", "FS1", "FS2+sFS2a-d", "restarts", "recovered")
	ok := true
	for _, sc := range scenarios {
		for _, mode := range []recovery.Mode{recovery.Off, recovery.Amnesia, recovery.Durable} {
			cs := run(sc, mode)
			tbl.Row(sc.name, mode.String(), frac(cs.fs1), frac(cs.safety), cs.restarts, cs.recovered)
			// Safety survives every mode; FS1 survives exactly durable.
			ok = ok && cs.safety == seeds
			switch mode {
			case recovery.Durable:
				ok = ok && cs.fs1 == seeds && cs.recovered == cs.restarts && cs.restarts > 0
			case recovery.Amnesia:
				ok = ok && cs.fs1 == 0 && cs.recovered == 0 && cs.restarts > 0
			case recovery.Off:
				ok = ok && cs.fs1 == 0 && cs.restarts == 0
			}
		}
	}

	// The registry-level claim: at least one Figure 1 property (FS1) holds
	// under durable recovery and fails under amnesia, in every cell.
	return Result{
		ID:    "E15",
		Title: "Figure 1 properties under crash-recovery: amnesia vs. durable state across a restart-frequency x drop ladder",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"crash_1@15; witness 2 suspects at 20 behind a 2->{3,4,5} cut (ticks 15..60); environment crashes 2 at 30; n=5 t=2; 10 seeds per cell",
			"off: the witness never returns — FS1 fails (crash_1 undetected by the live majority)",
			"amnesia: the witness returns blank; nothing resends the trapped SUSP frames — FS1 fails on every seed",
			"durable: the restored endpoint re-arms its unacked frames and the stubborn link completes the detection — FS1 holds on every seed, across every storm frequency and drop rate",
			"safety (FS2, sFS2a-d) holds in every cell: restarts remove or replay evidence, they cannot forge a detection",
		},
	}
}
