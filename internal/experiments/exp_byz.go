package experiments

import (
	"fmt"

	"failstop/internal/byz"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// E16 measures the Byzantine-to-crash demotion the validation interposer
// implements: under a fault plane that corrupts, equivocates, and replays
// the traffic of a Byzantine minority, does the quorum protocol stay
// accurate — nobody innocent ever detected — and does every misbehaving
// process get demoted to an honest crash?
//
// The paper's protocols assume fail-stop processes; a Byzantine sender
// breaks them silently. E16 runs each corruption/equivocation mix twice,
// with the interposer off and on:
//
//   - off: forged SUSP subjects feed the detectors directly. The honest
//     majority adopts fabricated suspicions and completes detections of
//     processes that neither crashed nor misbehaved — accuracy fails.
//   - on: every mutated frame dies at the MAC or echo-consistency check,
//     the origin is convicted, and the §5 masking path crashes it out of
//     the membership. Accuracy holds on every seed, and each Byzantine
//     victim is detected as a crashed process by the honest majority.
//
// Accuracy (checker.Accuracy) replaces FS2 here: conviction races the
// recorded crash order, so crash-precedes-detection is unachievable even
// when every conviction is correct. What must survive is that detections
// only ever target the plan's crash victims and its Byzantine victims.
func E16() Result {
	const (
		n, t  = 5, 2
		seeds = 10
	)
	// Each mix spends the failure budget t on Byzantine victims alone:
	// every demotion removes an echo witness from the quorum of
	// (n-1)/2+1, so a ladder that also crashed an honest process would
	// leave too few live echoers to release held SUSP frames and stall
	// the detections it is trying to measure. All mutation probabilities
	// are 1: a Byzantine process that sends a well-formed lie ("I
	// suspect 3") is indistinguishable from an honest false suspicion,
	// so only always-mutated traffic is fully maskable.
	type mix struct {
		name    string
		rules   []netadv.ByzRule
		victims []model.ProcID
	}
	halves5 := [][]model.ProcID{{1, 2}, {3, 4}}
	halves4 := [][]model.ProcID{{1, 2}, {3, 5}}
	mixes := []mix{
		{
			name:    "f=1 corrupt",
			rules:   []netadv.ByzRule{{Victim: 5, From: 10, Tags: []string{core.TagSusp}, Corrupt: 1}},
			victims: []model.ProcID{5},
		},
		{
			name:    "f=1 equivocate",
			rules:   []netadv.ByzRule{{Victim: 5, From: 10, Tags: []string{core.TagSusp}, Equivocate: halves5}},
			victims: []model.ProcID{5},
		},
		{
			name: "f=1 corrupt+replay",
			rules: []netadv.ByzRule{{
				Victim: 5, From: 10, Tags: []string{core.TagSusp},
				Corrupt: 1, Replay: 1, ReplayDelay: 400,
			}},
			victims: []model.ProcID{5},
		},
		{
			name: "f=2 corrupt+equivocate",
			rules: []netadv.ByzRule{
				{Victim: 4, From: 10, Tags: []string{core.TagSusp}, Equivocate: halves4},
				{Victim: 5, From: 10, Tags: []string{core.TagSusp}, Corrupt: 1},
			},
			victims: []model.ProcID{4, 5},
		},
	}

	type cellStats struct {
		accuracy, safety, demoted int // runs on which each held
		detected, masked          int // interposer counter totals
	}
	run := func(m mix, interpose bool) cellStats {
		var cs cellStats
		for seed := int64(1); seed <= seeds; seed++ {
			plan := netadv.Plan{Name: "e16-" + m.name, Byz: m.rules}
			plane := netadv.NewPlane(plan, n, seed)
			c := cluster.New(cluster.Options{
				Sim:       sim.Config{N: n, Seed: seed, MaxTime: 5000, Link: plane.Decide},
				Det:       core.Config{N: n, T: t},
				Byzantine: byz.Options{Enabled: interpose},
			})
			allowed := map[model.ProcID]bool{}
			for _, v := range m.victims {
				allowed[v] = true
			}
			// The Byzantine victims lie: false suspicions of honest
			// processes, mutated in flight by the plan.
			c.SuspectAt(20, 5, 3)
			if len(m.victims) > 1 {
				c.SuspectAt(24, 4, 2)
			}
			res := c.Run()
			cs.detected += res.ByzDetected
			cs.masked += res.ByzMasked

			// Check on the application-visible history, as the facade
			// does: the protocol's SUSP traffic and the interposer's echo
			// broadcasts are transport, not observable behavior.
			h := res.History.DropTags(core.TagSusp, byz.TagEcho)
			if checker.Accuracy(h, allowed).Holds {
				cs.accuracy++
			}
			safe := true
			for _, v := range []checker.Verdict{
				checker.SFS2b(h), checker.SFS2c(h), checker.SFS2d(h),
			} {
				safe = safe && v.Holds
			}
			if safe {
				cs.safety++
			}
			// Demotion: every Byzantine victim ends up detected as a
			// crashed process by some honest survivor.
			demoted := true
			for _, v := range m.victims {
				found := false
				for honest := model.ProcID(1); honest <= n; honest++ {
					if honest != v && !allowed[honest] && h.FailedIndex(honest, v) >= 0 {
						found = true
						break
					}
				}
				demoted = demoted && found
			}
			if interpose && demoted {
				cs.demoted++
			}
		}
		return cs
	}

	frac := func(k int) string { return fmt.Sprintf("%d/%d", k, seeds) }
	tbl := stats.NewTable("mix", "interposer", "accuracy", "sFS2b-d", "demoted", "byz detected", "byz masked")
	ok := true
	for _, m := range mixes {
		for _, interpose := range []bool{false, true} {
			cs := run(m, interpose)
			mode := "off"
			if interpose {
				mode = "on"
			}
			tbl.Row(m.name, mode, frac(cs.accuracy), frac(cs.safety), frac(cs.demoted), cs.detected, cs.masked)
			if interpose {
				// Masking restores accuracy and safety on every seed,
				// convicts in every cell, and demotes every victim to a
				// detected crash.
				ok = ok && cs.accuracy == seeds && cs.safety == seeds &&
					cs.demoted == seeds && cs.detected > 0
			} else {
				// Bare detectors adopt forged suspicions: accuracy is
				// violated on at least one seed of every mix, and the
				// interposer counters stay silent.
				ok = ok && cs.accuracy < seeds && cs.detected == 0 && cs.masked == 0
			}
		}
	}

	return Result{
		ID:    "E16",
		Title: "Byzantine demotion: accuracy under a corruption/equivocation/replay ladder, interposer off vs. on",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"n=5 t=2, 10 seeds per cell; the failure budget is spent on Byzantine victims (f=1: process 5, f=2: processes 4 and 5) whose false suspicions the plan mutates in flight",
			"off: forged SUSP subjects reach the detectors; the honest majority adopts them and detects innocent processes — accuracy fails",
			"on: every mutated frame dies at the MAC or echo-consistency check; the origin is convicted and crashed via the §5 masking path — accuracy holds on every seed",
			"demotion: with the interposer on, every Byzantine victim is eventually detected as a crashed process by an honest survivor",
			"only always-mutated traffic is maskable: a Byzantine process sending well-formed lies is indistinguishable from an honest false suspicion",
		},
	}
}
