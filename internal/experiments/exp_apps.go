package experiments

import (
	"fmt"

	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/election"
	"failstop/internal/lastfail"
	"failstop/internal/membership"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/rewrite"
	"failstop/internal/sim"
	"failstop/internal/stats"
)

// E9 measures the §5 protocol's cost: total protocol messages, messages per
// detection, and detection latency as n grows — against the analytic shape
// Θ(n²) messages per failure event (every live process broadcasts once) and
// one round of latency.
func E9() Result {
	tbl := stats.NewTable("n", "t", "quorum", "SUSP msgs", "msgs per detection", "detections", "latency mean", "latency p95")
	ok := true
	for _, n := range []int{4, 8, 16, 32} {
		t := 2
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: n, Seed: 9, MinDelay: 1, MaxDelay: 10},
			Det: core.Config{N: n, T: t},
		})
		c.SuspectAt(10, 2, 1)
		res := c.Run()
		suspMsgs := 0
		var suspTime int64 = -1
		var latencies []float64
		detections := 0
		for _, e := range res.History {
			switch {
			case e.Kind == model.KindSend && e.Tag == core.TagSusp:
				suspMsgs++
			case e.Kind == model.KindInternal && e.Tag == "suspect" && suspTime < 0:
				suspTime = e.Time
			case e.Kind == model.KindFailed:
				detections++
				latencies = append(latencies, float64(e.Time-suspTime))
			}
		}
		lat := stats.Summarize(latencies)
		perDet := float64(suspMsgs) / float64(detections)
		tbl.Row(n, t, c.Detectors[2].Config().QuorumSize, suspMsgs,
			fmt.Sprintf("%.1f", perDet), detections,
			fmt.Sprintf("%.1f", lat.Mean), fmt.Sprintf("%.1f", lat.P95))
		// Shape: each live process broadcasts once -> (n-1) broadcasts of
		// (n-1) messages each, within a factor accounting for the victim's
		// own echoes having been cut short by its crash.
		lo, hi := (n-2)*(n-1), n*(n-1)
		if suspMsgs < lo || suspMsgs > hi {
			ok = false
		}
		// One-round latency: bounded by ~2 max delays (suspicion broadcast +
		// echo), far below any multi-round scheme.
		if lat.Max > 4*10 {
			ok = false
		}
	}
	return Result{
		ID:    "E9",
		Title: "§5 protocol cost: Θ(n²) messages per failure event, one round of latency",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"one false suspicion; every live process echoes the broadcast once (SUSP ≡ ACK.SUSP merges the round's two halves)",
			"latency in ticks from the first suspicion; message delays uniform in [1,10], so one round ≤ ~2×10 ticks",
		},
	}
}

// E10 reproduces the §1 election discussion: under sFS, transient
// dual-leader global states occur but every run remains isomorphic to an
// FS run (internally unobservable); under the unilateral strawman, dual
// leadership is persistent and runs stop being FS-realizable.
func E10() Result {
	const seeds = 12
	type row struct {
		dualStates  int
		realizable  int
		staleClaims int
		undeadEnd   int // runs ending with >=2 self-believed live leaders
	}
	runProto := func(proto core.Protocol, t int) row {
		var r row
		for seed := int64(0); seed < seeds; seed++ {
			apps := make([]*election.Election, 8+1)
			c := cluster.New(cluster.Options{
				Sim: sim.Config{N: 8, Seed: seed, MinDelay: 1, MaxDelay: 10, MaxTime: 3000},
				Det: core.Config{N: 8, T: t, Protocol: proto},
				App: func(p model.ProcID) core.App {
					a := &election.Election{ClaimInterval: 25}
					apps[p] = a
					return a
				},
			})
			c.SuspectAt(50, 2, 1) // (possibly false) suspicion of the leader
			res := c.Run()
			if election.MaxSimultaneousLeaders(res.History) >= 2 {
				r.dualStates++
			}
			if rewrite.Realizable(res.History.DropTags(core.TagSusp)) {
				r.realizable++
			}
			r.staleClaims += election.StaleClaims(res.History)
			liveLeaders := 0
			for p := 1; p <= 8; p++ {
				if apps[p] != nil && apps[p].Leader() && !c.Detectors[p].Crashed() {
					liveLeaders++
				}
			}
			if liveLeaders >= 2 {
				r.undeadEnd++
			}
		}
		return r
	}
	sfs := runProto(core.SimulatedFailStop, 2)
	uni := runProto(core.Unilateral, 1)
	tbl := stats.NewTable("protocol", "dual-leader states (transient)", "FS-realizable runs", "runs ending with 2 live leaders", "stale claims")
	tbl.Row("sfs", fmt.Sprintf("%d/%d", sfs.dualStates, seeds), fmt.Sprintf("%d/%d", sfs.realizable, seeds),
		fmt.Sprintf("%d/%d", sfs.undeadEnd, seeds), sfs.staleClaims)
	tbl.Row("unilateral", fmt.Sprintf("%d/%d", uni.dualStates, seeds), fmt.Sprintf("%d/%d", uni.realizable, seeds),
		fmt.Sprintf("%d/%d", uni.undeadEnd, seeds), uni.staleClaims)
	ok := sfs.realizable == seeds && sfs.undeadEnd == 0 &&
		uni.realizable == 0 && uni.undeadEnd == seeds
	return Result{
		ID:    "E10",
		Title: "§1 election: dual leadership is transient and internally unobservable under sFS; persistent and distinguishable under unilateral detection",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"under sFS the deposed leader is guaranteed to crash (sFS2a): no run ends with two live leaders and every run has an FS witness",
			"stale claims (old leadership claims delivered late) occur under both and are FS-consistent — they are not evidence",
		},
	}
}

// E11 reproduces §6's last-process-to-fail discussion: the cheap model
// admits the two-process anomaly (recovery misled), sFS never does.
func E11() Result {
	tbl := stats.NewTable("protocol", "scenario", "candidates", "actual last", "misleading")
	// Cheap: the exact §6 story.
	apps, stores := lastfailApps(2)
	delay := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if from == 1 && to == 2 {
			return 100
		}
		return 10
	}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 2, Seed: 1, Delay: delay},
		Det: core.Config{N: 2, T: 2, Protocol: core.Cheap},
		App: apps,
	})
	c.SuspectAt(1, 1, 2)
	c.SuspectAt(5, 2, 1)
	res := c.Run()
	actual, _ := lastfail.ActualLast(res.History)
	v := lastfail.Recover(stores[1:])
	cheapMisleading := lastfail.Misleading(v, actual)
	tbl.Row("cheap", "§6 two-process anomaly", fmt.Sprintf("%v", v.Candidates), actual, cheapMisleading)

	// sFS: mutual suspicion across seeds; survivors then fail without
	// further detections (total failure) — recovery must never mislead.
	misleadingSFS := 0
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		apps, stores := lastfailApps(5)
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: 5, Seed: seed, MinDelay: 1, MaxDelay: 20},
			Det: core.Config{N: 5, T: 2, Protocol: core.SimulatedFailStop},
			App: apps,
		})
		c.SuspectAt(1, 1, 2)
		c.SuspectAt(1, 2, 1)
		res := c.Run()
		// Everyone eventually goes down; the in-run victims crashed first,
		// so the actual last process to fail is one of the survivors.
		for _, s := range stores[1:] {
			s.Crashed = true
		}
		v := lastfail.Recover(stores[1:])
		for _, cand := range v.Candidates {
			if res.History.CrashIndex(cand) >= 0 {
				misleadingSFS++ // an in-run victim claims to have died last
			}
		}
	}
	tbl.Row("sfs", fmt.Sprintf("mutual suspicion × %d seeds", seeds), "victims never qualify", "-", misleadingSFS > 0)
	return Result{
		ID:    "E11",
		Title: "§6 / Skeen: last-process-to-fail is misled by cyclic detection (cheap) and safe under sFS",
		Table: tbl.String(),
		OK:    cheapMisleading && misleadingSFS == 0,
		Notes: []string{
			"cheap anomaly: both processes' stable stores qualify as 'detected everyone else' — recovering process 1 wrongly concludes it failed last",
			"under sFS the failed-before relation is acyclic, so a victim can never have detected its own detector",
		},
	}
}

func lastfailApps(n int) (func(model.ProcID) core.App, []*lastfail.Store) {
	stores := make([]*lastfail.Store, n+1)
	return func(p model.ProcID) core.App {
		s := lastfail.NewStore(p)
		stores[p] = s
		return &lastfail.Recorder{Stable: s}
	}, stores
}

// E12 quantifies §6's cost trade-off: sFS pays a quorum round and app-level
// gating for acyclicity; the cheap model detects instantly but admits
// cycles. Measured with gossiping membership traffic in the background.
func E12() Result {
	const n, seeds = 10, 8
	type row struct {
		suspMsgs   int
		detLatency []float64
		appLatency []float64
		cycles     int
		violations int
		detections int
	}
	measure := func(proto core.Protocol) row {
		var r row
		for seed := int64(0); seed < seeds; seed++ {
			c := cluster.New(cluster.Options{
				Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 10, MaxTime: 2500},
				Det: core.Config{N: n, T: 3, Protocol: proto},
				App: func(p model.ProcID) core.App {
					return &membership.Service{GossipInterval: 40}
				},
			})
			c.SuspectAt(100, 1, 2)
			c.SuspectAt(100, 2, 1)
			res := c.Run()
			var firstSuspect int64 = -1
			sendTimes := map[model.MsgID]int64{}
			for _, e := range res.History {
				switch {
				case e.Kind == model.KindInternal && e.Tag == "suspect" && firstSuspect < 0:
					firstSuspect = e.Time
				case e.Kind == model.KindSend && e.Tag == core.TagSusp:
					r.suspMsgs++
				case e.Kind == model.KindSend && e.Tag == core.TagApp:
					sendTimes[e.Msg] = e.Time
				case e.Kind == model.KindRecv && e.Tag == core.TagApp:
					if st, okT := sendTimes[e.Msg]; okT {
						r.appLatency = append(r.appLatency, float64(e.Time-st))
					}
				case e.Kind == model.KindFailed:
					r.detections++
					r.detLatency = append(r.detLatency, float64(e.Time-firstSuspect))
				}
			}
			if !model.NewFailedBefore(res.History).Acyclic() {
				r.cycles++
			}
			r.violations += membership.ObservedViolations(res.History)
		}
		return r
	}
	tbl := stats.NewTable("protocol", "SUSP msgs/run", "detect latency mean", "app msg latency mean", "cyclic runs", "view violations")
	var rows = map[string]row{}
	for _, proto := range []core.Protocol{core.SimulatedFailStop, core.Cheap} {
		r := measure(proto)
		rows[proto.String()] = r
		tbl.Row(proto.String(),
			r.suspMsgs/seeds,
			fmt.Sprintf("%.1f", stats.Summarize(r.detLatency).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(r.appLatency).Mean),
			fmt.Sprintf("%d/%d", r.cycles, seeds),
			r.violations)
	}
	sfs, cheap := rows["sfs"], rows["cheap"]
	sfsLat := stats.Summarize(sfs.detLatency).Mean
	cheapLat := stats.Summarize(cheap.detLatency).Mean
	ok := sfs.cycles == 0 && cheap.cycles > 0 &&
		cheapLat < sfsLat && // cheap detects strictly faster (no quorum wait)
		sfs.violations == 0 && cheap.violations == 0 // both keep sFS2d
	return Result{
		ID:    "E12",
		Title: "§6 trade-off: the cheap model is faster but admits failed-before cycles; sFS pays one quorum round for acyclicity",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			"mutual suspicion under gossip traffic; 'cyclic runs' is the §6 price — any protocol sensitive to cyclic detection (e.g. last-to-fail) is broken by it",
			"view violations stay zero for both: sFS2d survives the cheap weakening (only sFS2b is lost)",
		},
	}
}
