// Package experiments reproduces every theorem, figure, and worked example
// of the paper as a runnable experiment (the index lives in DESIGN.md §4
// and the outcomes in EXPERIMENTS.md). Each generator returns a Result
// with a rendered table and an OK flag stating whether the paper's claim
// held in this reproduction; cmd/sfs-bench prints them and the test suite
// asserts every OK.
package experiments

import (
	"fmt"
	"sort"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (E1..E15).
	ID string
	// Title names the paper artifact being reproduced.
	Title string
	// Table is the rendered measurement table.
	Table string
	// OK reports whether the paper's claim held.
	OK bool
	// Notes carries commentary: what was expected, what was measured.
	Notes []string
}

// String renders the result for terminal output.
func (r Result) String() string {
	status := "REPRODUCED"
	if !r.OK {
		status = "FAILED"
	}
	out := fmt.Sprintf("== %s: %s [%s]\n%s", r.ID, r.Title, status, r.Table)
	for _, n := range r.Notes {
		out += "   note: " + n + "\n"
	}
	return out
}

// Runner produces a Result.
type Runner func() Result

// Registry maps experiment ids to their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  E1,
		"E2":  E2,
		"E3":  E3,
		"E4":  E4,
		"E5":  E5,
		"E6":  E6,
		"E7":  E7,
		"E8":  E8,
		"E9":  E9,
		"E10": E10,
		"E11": E11,
		"E12": E12,
		"E13": E13,
		"E14": E14,
		"E15": E15,
		"E16": E16,
		"A1":  A1,
		"A2":  A2,
		"A3":  A3,
	}
}

// IDs returns the experiment ids in order: the paper artifacts E1..E12 and
// the post-paper measurements E13..E16 first, then the ablations A1..A3.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	rank := func(id string) (int, int) {
		class := 0
		if id[0] == 'A' {
			class = 1
		}
		num := 0
		for _, ch := range id[1:] {
			num = num*10 + int(ch-'0')
		}
		return class, num
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, na := rank(ids[a])
		cb, nb := rank(ids[b])
		if ca != cb {
			return ca < cb
		}
		return na < nb
	})
	return ids
}

// All runs every experiment in order.
func All() []Result {
	out := make([]Result, 0, len(Registry()))
	reg := Registry()
	for _, id := range IDs() {
		out = append(out, reg[id]())
	}
	return out
}
