package experiments

import (
	"fmt"

	"failstop/internal/netadv"
	"failstop/internal/stats"
	"failstop/internal/sweep"
)

// E14 quantifies Theorem 1's dilemma as a surface rather than a single
// point: the false-suspicion rate of a fixed-timeout heartbeat detector as
// a function of (drop probability, timeout). Every finite timeout
// eventually accuses the living under loss — E14 measures how fast. Each
// (timeout, drop) cell runs the sweep engine's quiet schedule (no crashes,
// so *every* suspicion is false) over a seed batch; the observability
// plane's false-suspicion metric counts accusing runs.
//
// Expected shape: at drop 0 delays are bounded well under every timeout,
// so no false suspicions at all; for a fixed timeout the rate climbs with
// the drop probability (more lost heartbeats, longer apparent silences);
// for a fixed drop it falls as the timeout grows (more consecutive losses
// needed to look dead). The same grid is what examples/e14 renders as a
// chart from sfs-sweep's CSV export.
func E14() Result {
	const (
		n, t  = 5, 2
		seeds = 12
	)
	timeouts := []int64{40, 80, 160}
	drops := []float64{0, 0.15, 0.35}

	dropGen := func(p float64) netadv.Generator {
		name := fmt.Sprintf("drop-%.2f", p)
		return netadv.Generator{Name: name, Make: func(n, t int) netadv.Plan {
			plan := netadv.Plan{Name: name}
			if p > 0 {
				// Drop 0 is the fault-free baseline: an empty plan, since a
				// rule with no effect does not validate.
				plan.Rules = []netadv.Rule{{Drop: p}}
			}
			return plan
		}}
	}
	quiet, _ := sweep.Builtin("quiet")

	// rate[timeout][drop] = accusing runs / runs.
	rates := map[int64]map[float64]int{}
	tbl := stats.NewTable("hb timeout", "drop", "false-suspicion", "heartbeats dropped")
	for _, to := range timeouts {
		rates[to] = map[float64]int{}
		gens := make([]netadv.Generator, 0, len(drops))
		for _, p := range drops {
			gens = append(gens, dropGen(p))
		}
		rep, err := sweep.Run(sweep.Spec{
			Grid:             []sweep.NT{{N: n, T: t}},
			Schedules:        []sweep.Schedule{quiet},
			Plans:            gens,
			Seeds:            sweep.SeedRange{Start: 1, Count: seeds},
			MinDelay:         1,
			MaxDelay:         3,
			MaxTime:          2000,
			HeartbeatEvery:   25,
			HeartbeatTimeout: to,
		}, sweep.Options{})
		if err != nil {
			return Result{ID: "E14", Title: "false-suspicion surface", OK: false,
				Notes: []string{"sweep failed: " + err.Error()}}
		}
		for i, cell := range rep.Cells {
			p := drops[i%len(drops)]
			fs := cell.Metrics["false-suspicion"]
			rates[to][p] = fs
			tbl.Row(to, fmt.Sprintf("%.2f", p), fmt.Sprintf("%d/%d", fs, cell.Runs), cell.Dropped)
		}
	}

	ok := true
	for _, to := range timeouts {
		// Loss-free networks with delays far under the timeout never accuse.
		ok = ok && rates[to][0] == 0
		// The rate climbs (weakly) with the drop probability.
		ok = ok && rates[to][0] <= rates[to][0.15] && rates[to][0.15] <= rates[to][0.35]
	}
	// The rate falls (weakly) as the timeout grows, at every lossy drop.
	for _, p := range []float64{0.15, 0.35} {
		ok = ok && rates[40][p] >= rates[80][p] && rates[80][p] >= rates[160][p]
	}
	// The dilemma has teeth: the tightest timeout under the heaviest loss
	// accuses on every seed.
	ok = ok && rates[40][0.35] == seeds

	return Result{
		ID:    "E14",
		Title: "Theorem 1 as a surface: false-suspicion rate vs. drop probability vs. heartbeat timeout",
		Table: tbl.String(),
		OK:    ok,
		Notes: []string{
			fmt.Sprintf("quiet schedule (no crashes), so every suspicion is false; n=%d t=%d, heartbeat interval 25, %d seeds per cell", n, t, seeds),
			"drop 0 never accuses: delays are bounded (1..3 ticks) far under every timeout",
			"rate climbs with drop probability and falls with timeout — no finite timeout is safe under loss, only slower to err",
			"examples/e14 exports this surface as CSV (committed artifact + ASCII chart); sfs-sweep -csv does the same for ad-hoc grids",
		},
	}
}
