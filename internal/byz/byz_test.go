package byz

import (
	"strings"
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error; "" means valid
	}{
		{"zero value", Options{}, ""},
		{"enabled defaults", Options{Enabled: true}, ""},
		{"explicit sane", Options{Enabled: true, EchoTags: []string{"SUSP", "APP"}, Witnesses: 2, ReplayHorizon: 50}, ""},
		{"hold nothing", Options{Enabled: true, EchoTags: []string{}}, ""},
		{"negative witnesses", Options{Witnesses: -1}, "negative Witnesses"},
		{"negative horizon", Options{ReplayHorizon: -5}, "negative ReplayHorizon"},
		{"empty echo tag", Options{EchoTags: []string{""}}, "empty tag"},
		{"echoing echoes", Options{EchoTags: []string{TagEcho}}, "recurse"},
		{"duplicate echo tag", Options{EchoTags: []string{"SUSP", "SUSP"}}, "duplicate tag"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.opts.Validate()
			if tt.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

func TestWrapPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wrap accepted invalid options")
		}
	}()
	Wrap(sink{}, Options{Witnesses: -1})
}

// sink is an inner handler that does nothing.
type sink struct{}

func (sink) Init(node.Context)                                  {}
func (sink) OnMessage(node.Context, model.ProcID, node.Payload) {}
func (sink) OnTimer(node.Context, string)                       {}

func TestSealOpenRoundTrip(t *testing.T) {
	p := node.Payload{Tag: "SUSP", Subject: 3, Data: []byte(`{"x":1}`)}
	body := sealBody(2, 7, 4, p)
	if !Sealed(body) {
		t.Fatal("sealed body not recognized as sealed")
	}
	seq, bid, data, ok := openBody(2, p.Tag, p.Subject, body)
	if !ok {
		t.Fatal("authentic frame rejected")
	}
	if seq != 7 || bid != 4 || string(data) != `{"x":1}` {
		t.Errorf("openBody = (%d, %d, %q), want (7, 4, %q)", seq, bid, data, p.Data)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	p := node.Payload{Tag: "SUSP", Subject: 3, Data: []byte(`{"x":1}`)}
	body := sealBody(2, 7, 4, p)
	cases := []struct {
		name    string
		sender  model.ProcID
		tag     string
		subject model.ProcID
		mutate  func([]byte) []byte
	}{
		{"flipped data byte", 2, "SUSP", 3, func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0x01
			return out
		}},
		{"rotated subject", 2, "SUSP", 4, nil},
		{"changed tag", 2, "HB", 3, nil},
		{"claimed by another sender", 1, "SUSP", 3, nil},
		{"flipped seq", 2, "SUSP", 3, func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[8] ^= 0x01
			return out
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			b := body
			if tt.mutate != nil {
				b = tt.mutate(body)
			}
			if _, _, _, ok := openBody(tt.sender, tt.tag, tt.subject, b); ok {
				t.Error("tampered frame authenticated")
			}
		})
	}
}

// TestResealSignsTheLie: a resealed variant authenticates under the new
// subject — the equivocation primitive the MAC cannot catch.
func TestResealSignsTheLie(t *testing.T) {
	p := node.Payload{Tag: "SUSP", Subject: 3, Data: []byte(`{"x":1}`)}
	body := sealBody(2, 7, 4, p)
	forged, ok := Reseal(body, 2, "SUSP", 4)
	if !ok {
		t.Fatal("Reseal rejected a sealed body")
	}
	if _, _, _, ok := openBody(2, "SUSP", 4, forged); !ok {
		t.Error("resealed variant failed authentication; the sender must be able to sign its own lies")
	}
	if _, _, _, ok := openBody(2, "SUSP", 3, forged); ok {
		t.Error("resealed variant still authenticates under the original subject")
	}
	if _, ok := Reseal([]byte("unsealed"), 2, "SUSP", 4); ok {
		t.Error("Reseal accepted unsealed data")
	}
}

// byzFakeCtx is a minimal host context for endpoint-level tests.
type byzFakeCtx struct {
	self  model.ProcID
	n     int
	sends []struct {
		to model.ProcID
		p  node.Payload
	}
}

func (c *byzFakeCtx) Self() model.ProcID { return c.self }
func (c *byzFakeCtx) N() int             { return c.n }
func (c *byzFakeCtx) Now() int64         { return 0 }
func (c *byzFakeCtx) Send(to model.ProcID, p node.Payload) {
	c.sends = append(c.sends, struct {
		to model.ProcID
		p  node.Payload
	}{to, p})
}
func (c *byzFakeCtx) SetTimer(string, int64)            {}
func (c *byzFakeCtx) CancelTimer(string)                {}
func (c *byzFakeCtx) EmitFailed(model.ProcID)           {}
func (c *byzFakeCtx) CrashSelf()                        {}
func (c *byzFakeCtx) EmitInternal(string, model.ProcID) {}

// TestSnapshotRestartRoundTrip: a durable restart restores the masked set
// and the counters, so the reincarnation neither trusts a convicted process
// nor reuses sequence numbers.
func TestSnapshotRestartRoundTrip(t *testing.T) {
	ctx := &byzFakeCtx{self: 1, n: 3}
	e := Wrap(sink{}, Options{Enabled: true})
	e.Init(ctx)
	// Spend some sequence numbers and broadcast ids.
	e.Context(ctx).Send(2, node.Payload{Tag: "APP", Data: []byte("a")})
	e.Context(ctx).Send(3, node.Payload{Tag: "APP", Data: []byte("a")})
	e.Context(ctx).Send(2, node.Payload{Tag: "APP", Data: []byte("b")})
	e.convictWith(ctx, 3, "bad-mac")

	snap := e.Snapshot()
	fresh := Wrap(sink{}, Options{Enabled: true})
	fresh.OnRestart(ctx, snap)
	if !fresh.Masked(3) {
		t.Error("restart forgot the masked set")
	}
	sent := len(ctx.sends)
	fresh.Context(ctx).Send(2, node.Payload{Tag: "APP", Data: []byte("c")})
	body := ctx.sends[sent].p.Data
	seq, bid, _, ok := openBody(1, "APP", model.None, body)
	if !ok {
		t.Fatal("restarted endpoint sent an unauthenticatable frame")
	}
	if seq != 3 {
		t.Errorf("post-restart seq to peer 2 = %d, want 3 (counters must not regress)", seq)
	}
	if bid != 3 {
		t.Errorf("post-restart bid = %d, want 3 (new content, counter restored at 2)", bid)
	}

	// Amnesia: nil state resets everything.
	amnesiac := Wrap(sink{}, Options{Enabled: true})
	amnesiac.OnRestart(ctx, nil)
	if amnesiac.Masked(3) {
		t.Error("amnesiac restart kept the masked set")
	}
}
