// Package byz is an optional Byzantine-fault validation layer between a
// protocol handler and its host: per-sender frame authentication, echo
// quorums that cross-check broadcast consistency, and a replay watermark.
// On detecting misbehavior — a bad MAC, equivocating payloads for one
// broadcast, or a stale replayed frame — an Endpoint masks the faulty
// process into a crash: it discards the culprit's traffic locally and
// feeds the suspicion into the fail-stop detector, whose own-SUSP rule
// ("when x receives 'x failed', x executes crash_x") then demotes the
// Byzantine process to exactly the crash failure the paper's model
// simulates. This is the Imbs–Raynal–Stainer reduction from Byzantine to
// crash failures, realized as an interposer under the §5 protocol.
//
// Layering. An Endpoint wraps a node.Handler and is itself a node.Handler,
// exactly like internal/reliable — and when both layers run, the reliable
// endpoint is the outer one: reliable retransmission then resends the
// already-sealed frame byte for byte, so retransmits carry the original
// sequence number, broadcast id, and MAC, and echo quorums accumulate
// across retries instead of seeing each retry as a fresh frame. The fault
// plane reaches the sealed body through reliable.WireBody when it must
// mutate or reseal a framed payload.
//
// Authentication. Every send the inner handler issues is sealed: a 25-byte
// header (kind, per-link sequence number, per-sender broadcast id, MAC)
// prepended to the payload data, with the outer Tag and Subject preserved
// so tag-targeted fault rules and trace tooling still see the protocol
// message. The MAC is a deterministic splitmix64 fold keyed per sender;
// keys are public and derivable — the layer models integrity (a third
// party cannot alter a frame undetected), not secrecy. In particular a
// Byzantine sender can sign its own lies, which is exactly why
// equivocation cannot be caught by the MAC alone and needs the echo
// quorum below.
//
// Broadcast ids and witness-hold. Consecutive sends with identical
// (tag, subject, data) share one broadcast id — a broadcast loop seals n-1
// frames under a single bid. Frames whose tag is in Options.EchoTags
// (by default the detector's "SUSP" class, whose forgery is what breaks
// fail-stop safety) are not released on arrival: the receiver holds the
// frame, broadcasts a sealed echo naming (origin, bid, content digest) to
// every other process, and releases the held frame only once at least
// Options.Witnesses distinct processes — itself included — have vouched
// for the digest it saw. Two conflicting digests for one (origin, bid)
// convict the origin of equivocation. With the default majority witness
// threshold, an equivocation split in which no variant reaches a majority
// of the receivers is convicted deterministically, before any variant can
// be released; a variant that does reach a live majority is released
// consistently everywhere — indistinguishable from an erroneous-but-
// consistent suspicion, which the §5 protocol already tolerates by design.
//
// Replay. Receivers remember each sender's delivered sequence numbers. A
// frame re-arriving within Options.ReplayHorizon ticks of its first
// delivery is a benign network duplicate and is discarded silently; beyond
// the horizon it is a replay attack and convicts the sender. (Under the
// reliable layer, receiver-side dedup retires duplicates before this
// check — replay conviction is the bare-network defense.)
//
// Limitations, by design: a lying witness — a process whose echoes
// themselves are forged — can frame an honest origin, since conviction
// trusts digest conflicts; the fault plane's rule grammar only mutates the
// victim's own traffic, so the scenarios this package ships with never
// exercise that. Echoes from masked processes still count as testimony:
// an echo can only corroborate a digest the receiver computed itself or
// create a conflict that convicts the origin, and counting it keeps
// witness quorums live when masked processes sit among the receivers.
// Restarting a process with amnesia (internal/recovery) resets its
// sequence counters, so its reused sequence numbers look like stale
// replays to peers that remember the first incarnation — persist the
// counters (durable recovery) to restart cleanly. Held frames and echo
// records are transient and die with a crash, like the reliable layer's
// pending acks.
package byz

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
)

// TagEcho marks witness echoes: sealed frames whose Subject names the
// origin whose broadcast is being vouched for, and whose data carries the
// (broadcast id, digest) pair. Echoes are never themselves held.
const TagEcho = "BYZ.ECHO"

// DefaultReplayHorizon is the replay watermark in ticks: a sequence number
// seen again within the horizon is a network duplicate, beyond it a
// replay attack. Comfortably above any plausible duplicate's extra delay
// under the default fault plans.
const DefaultReplayHorizon = 100

// Wire layout: a 25-byte header followed by the original payload bytes.
// kindSealed is distinct from the reliable layer's frame kinds (1, 2) and
// from '{' (0x7B), the first byte of every JSON payload in the module, so
// unsealed traffic is never misparsed as a frame.
const (
	kindSealed byte = 0xB1
	headerLen       = 25 // kind(1) + seq(8) + bid(8) + mac(8)
)

// Options configures the validation layer.
type Options struct {
	// Enabled turns the layer on. The zero Options leave traffic unsealed.
	Enabled bool
	// EchoTags lists the payload tags whose frames are held for witness
	// quorums before release (the broadcast classes whose forgery matters).
	// nil means the detector's "SUSP" class; an explicit empty slice holds
	// nothing (authentication and replay checks still apply).
	EchoTags []string
	// Witnesses is how many distinct processes (the receiver included)
	// must vouch for a held frame's digest before it is released. 0 means
	// a majority of the n-1 potential receivers, (n-1)/2+1, resolved when
	// the host initializes the endpoint.
	Witnesses int
	// ReplayHorizon is the replay watermark in ticks.
	// Default: DefaultReplayHorizon.
	ReplayHorizon int64
}

func (o Options) withDefaults() Options {
	if o.EchoTags == nil {
		// The detector's TagSusp, kept literal so the layer stays
		// protocol-agnostic (no import of internal/core).
		o.EchoTags = []string{"SUSP"}
	}
	if o.ReplayHorizon == 0 {
		o.ReplayHorizon = DefaultReplayHorizon
	}
	return o
}

// Validate reports the first problem with the options, or nil.
func (o Options) Validate() error {
	if o.Witnesses < 0 {
		return fmt.Errorf("byz: negative Witnesses %d", o.Witnesses)
	}
	if o.ReplayHorizon < 0 {
		return fmt.Errorf("byz: negative ReplayHorizon %d", o.ReplayHorizon)
	}
	seen := map[string]bool{}
	for _, tag := range o.EchoTags {
		if tag == "" {
			return fmt.Errorf("byz: empty tag in EchoTags")
		}
		if tag == TagEcho {
			return fmt.Errorf("byz: EchoTags must not contain %q: echoing echoes would recurse", TagEcho)
		}
		if seen[tag] {
			return fmt.Errorf("byz: duplicate tag %q in EchoTags", tag)
		}
		seen[tag] = true
	}
	return nil
}

// round is the witness state of one (origin, broadcast id): which digests
// have been vouched for by whom, and the frames held pending release.
type round struct {
	digests  map[uint64]map[model.ProcID]bool // digest -> vouchers (incl. self)
	held     []node.Payload                   // unsealed frames, arrival order
	myDigest uint64
	haveMine bool // we received the frame itself (not just echoes)
	echoed   bool // our echo broadcast went out
	released bool
}

// Endpoint wraps a node.Handler with the validation layer on every link it
// speaks. It implements node.Handler, node.Gate, node.CrashListener, and
// node.Restarter; hosts treat it exactly like the handler it wraps.
//
// All mutable state is touched only inside host callbacks, which hosts
// serialize per process; the counters are atomic so live-backend stats can
// be read concurrently.
type Endpoint struct {
	inner node.Handler
	opts  Options
	spans *obs.SpanRecorder
	// convict is invoked once per conviction with the wrapped context, so
	// the suspicion it feeds into the detector broadcasts through this
	// layer's sealing (and the reliable layer above, when enabled).
	convict func(ctx node.Context, culprit model.ProcID)

	witnesses int
	heldTags  map[string]bool

	// Sender side: per-destination sequence counters and the broadcast-id
	// content-equality state.
	nextSeq     map[model.ProcID]uint64
	bid         uint64
	lastTag     string
	lastSubject model.ProcID
	lastData    []byte
	haveLast    bool

	// Receiver side.
	seen   map[model.ProcID]map[uint64]int64 // sender -> seq -> first arrival
	masked map[model.ProcID]bool
	rounds map[model.ProcID]map[uint64]*round // origin -> bid -> round

	detected    obs.Counter // convictions
	maskedCount obs.Counter // frames discarded from masked senders
}

var (
	_ node.Handler       = (*Endpoint)(nil)
	_ node.Gate          = (*Endpoint)(nil)
	_ node.CrashListener = (*Endpoint)(nil)
	_ node.Restarter     = (*Endpoint)(nil)
)

// Wrap builds an Endpoint around inner. It panics on invalid options —
// configurations are authored, not computed.
func Wrap(inner node.Handler, opts Options) *Endpoint {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	opts = opts.withDefaults()
	held := make(map[string]bool, len(opts.EchoTags))
	for _, tag := range opts.EchoTags {
		held[tag] = true
	}
	return &Endpoint{
		inner:    inner,
		opts:     opts,
		heldTags: held,
		nextSeq:  make(map[model.ProcID]uint64),
		seen:     make(map[model.ProcID]map[uint64]int64),
		masked:   make(map[model.ProcID]bool),
		rounds:   make(map[model.ProcID]map[uint64]*round),
	}
}

// Inner returns the wrapped handler.
func (e *Endpoint) Inner() node.Handler { return e.inner }

// ByzStats returns the layer's counters: misbehavior convictions and
// frames discarded because their sender was masked. Hosts discover this
// method structurally to surface the counters in their stats.
func (e *Endpoint) ByzStats() (detected, masked int) {
	return int(e.detected.Value()), int(e.maskedCount.Value())
}

// Masked reports whether this endpoint has convicted and masked p.
func (e *Endpoint) Masked(p model.ProcID) bool { return e.masked[p] }

// SetSpans attaches a span recorder: every conviction records a
// SpanByzDetect span (detection-grade, never sampled out). Call before the
// host starts delivering.
func (e *Endpoint) SetSpans(rec *obs.SpanRecorder) { e.spans = rec }

// SetConvict installs the masking sink: called once per conviction with
// the wrapped context and the culprit, it is where the cluster feeds the
// suspicion into the fail-stop detector (Detector.Suspect), completing the
// Byzantine-to-crash demotion. Call before the host starts delivering.
func (e *Endpoint) SetConvict(fn func(ctx node.Context, culprit model.ProcID)) { e.convict = fn }

// Context wraps a host context so that Send flows through the sealing
// layer. Injected actions (SuspectAt and friends) must wrap the context
// they are handed, or their sends would go out unsealed.
func (e *Endpoint) Context(host node.Context) node.Context {
	return &byzCtx{Context: host, e: e}
}

// byzCtx is the context the inner handler sees: everything forwards to the
// host except Send.
type byzCtx struct {
	node.Context
	e *Endpoint
}

func (c *byzCtx) Send(to model.ProcID, p node.Payload) {
	c.e.send(c.Context, to, p)
}

// resolve fixes the witness threshold once the system size is known.
func (e *Endpoint) resolve(ctx node.Context) {
	if e.witnesses > 0 {
		return
	}
	if e.opts.Witnesses > 0 {
		e.witnesses = e.opts.Witnesses
		return
	}
	e.witnesses = (ctx.N()-1)/2 + 1
}

// Init implements node.Handler.
func (e *Endpoint) Init(ctx node.Context) {
	e.resolve(ctx)
	e.inner.Init(e.Context(ctx))
}

// OnCrash implements node.CrashListener.
func (e *Endpoint) OnCrash(ctx node.Context) {
	if l, ok := e.inner.(node.CrashListener); ok {
		l.OnCrash(e.Context(ctx))
	}
}

// send seals and transmits one payload from the inner handler, assigning
// the per-link sequence number and the content-equality broadcast id.
func (e *Endpoint) send(host node.Context, to model.ProcID, p node.Payload) {
	if !e.haveLast || p.Tag != e.lastTag || p.Subject != e.lastSubject || !bytes.Equal(p.Data, e.lastData) {
		e.bid++
		e.haveLast = true
		e.lastTag = p.Tag
		e.lastSubject = p.Subject
		e.lastData = append(e.lastData[:0], p.Data...)
	}
	e.nextSeq[to]++
	body := sealBody(host.Self(), e.nextSeq[to], e.bid, p)
	host.Send(to, node.Payload{Tag: p.Tag, Subject: p.Subject, Data: body})
}

// OnTimer implements node.Handler: the layer owns no timers; everything
// forwards to the inner handler, then held frames whose gates may have
// opened are re-pumped.
func (e *Endpoint) OnTimer(ctx node.Context, name string) {
	e.inner.OnTimer(e.Context(ctx), name)
	e.pump(ctx)
}

// OnMessage implements node.Handler: sealed frames are authenticated,
// replay-checked, and either held for their witness quorum or released to
// the inner handler; echoes feed the witness records; unsealed traffic (a
// sender without the layer) passes through untouched.
func (e *Endpoint) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	if !Sealed(p.Data) {
		e.inner.OnMessage(e.Context(ctx), from, p)
		return
	}
	seq, bid, data, ok := openBody(from, p.Tag, p.Subject, p.Data)
	if !ok {
		e.convictWith(ctx, from, "bad-mac")
		return
	}
	isEcho := p.Tag == TagEcho
	if e.masked[from] && !isEcho {
		// Masked senders' protocol traffic is dead; their echoes below are
		// still counted as testimony (see the package comment).
		e.maskedCount.Add(1)
		return
	}
	sn := e.seen[from]
	if sn == nil {
		sn = make(map[uint64]int64)
		e.seen[from] = sn
	}
	now := ctx.Now()
	if first, dup := sn[seq]; dup {
		if now-first > e.opts.ReplayHorizon {
			e.convictWith(ctx, from, "replay")
		}
		// Within the horizon: a benign network duplicate.
		return
	}
	sn[seq] = now
	if isEcho {
		e.onEcho(ctx, from, p.Subject, data)
		return
	}
	inner := node.Payload{Tag: p.Tag, Subject: p.Subject, Data: data}
	if !e.heldTags[p.Tag] {
		e.inner.OnMessage(e.Context(ctx), from, inner)
		return
	}
	e.hold(ctx, from, bid, inner)
	e.pump(ctx)
}

// hold files a received held-class frame into its (origin, bid) round,
// vouching for its digest and broadcasting the echo on first receipt.
func (e *Endpoint) hold(ctx node.Context, origin model.ProcID, bid uint64, p node.Payload) {
	r := e.round(origin, bid)
	if r.released {
		// The quorum already released this broadcast; a late extra frame
		// under the same bid adds nothing.
		return
	}
	d := digestOf(p.Tag, p.Subject, p.Data)
	r.held = append(r.held, p)
	r.myDigest = d
	r.haveMine = true
	e.vouch(r, d, ctx.Self())
	if !r.echoed {
		r.echoed = true
		data := make([]byte, 16)
		binary.BigEndian.PutUint64(data[0:8], bid)
		binary.BigEndian.PutUint64(data[8:16], d)
		for q := model.ProcID(1); int(q) <= ctx.N(); q++ {
			if q == ctx.Self() || q == origin {
				continue
			}
			e.send(ctx, q, node.Payload{Tag: TagEcho, Subject: origin, Data: data})
		}
	}
}

// onEcho records one witness's testimony about (origin, bid).
func (e *Endpoint) onEcho(ctx node.Context, witness, origin model.ProcID, data []byte) {
	if len(data) != 16 || e.masked[origin] {
		return
	}
	bid := binary.BigEndian.Uint64(data[0:8])
	d := binary.BigEndian.Uint64(data[8:16])
	e.vouch(e.round(origin, bid), d, witness)
	e.pump(ctx)
}

func (e *Endpoint) round(origin model.ProcID, bid uint64) *round {
	byBid := e.rounds[origin]
	if byBid == nil {
		byBid = make(map[uint64]*round)
		e.rounds[origin] = byBid
	}
	r := byBid[bid]
	if r == nil {
		r = &round{digests: make(map[uint64]map[model.ProcID]bool)}
		byBid[bid] = r
	}
	return r
}

func (e *Endpoint) vouch(r *round, digest uint64, by model.ProcID) {
	set := r.digests[digest]
	if set == nil {
		set = make(map[model.ProcID]bool)
		r.digests[digest] = set
	}
	set[by] = true
}

// pump re-evaluates every open round in deterministic order: conflicting
// digests convict the origin of equivocation; a round whose own digest has
// reached the witness threshold releases its held frames to the inner
// handler (through the inner gate, so the §5 receive deferral keeps
// working). Releasing or convicting can change what later rounds see, so
// the scan repeats until a full pass changes nothing.
func (e *Endpoint) pump(ctx node.Context) {
	for again := true; again; {
		again = false
		for _, origin := range sortedOrigins(e.rounds) {
			if e.masked[origin] {
				continue
			}
			byBid := e.rounds[origin]
			for _, bid := range sortedBids(byBid) {
				r := byBid[bid]
				if len(r.digests) > 1 {
					// Two vouched digests for one broadcast: equivocation.
					e.convictWith(ctx, origin, "equivocation")
					again = true
					break
				}
				if r.released || !r.haveMine || len(r.digests[r.myDigest]) < e.witnesses {
					continue
				}
				if g, ok := e.inner.(node.Gate); ok && len(r.held) > 0 && !g.Accepts(origin, r.held[0]) {
					continue // retry on the next pump
				}
				r.released = true
				held := r.held
				r.held = nil
				for _, p := range held {
					e.inner.OnMessage(e.Context(ctx), origin, p)
				}
				again = true
			}
		}
	}
}

// convictWith masks the culprit: its traffic is discarded from here on,
// its held frames are dropped, the conviction is counted and traced, and
// the suspicion is fed to the masking sink (the fail-stop detector).
func (e *Endpoint) convictWith(ctx node.Context, culprit model.ProcID, reason string) {
	if e.masked[culprit] {
		return
	}
	e.masked[culprit] = true
	e.detected.Add(1)
	for _, r := range e.rounds[culprit] { //sfs:allow detmaprange summing held-frame counts is order-insensitive
		e.maskedCount.Add(int64(len(r.held)))
	}
	delete(e.rounds, culprit)
	if e.spans != nil {
		e.spans.Record(obs.Span{
			Time: ctx.Now(), Kind: obs.SpanByzDetect,
			Proc: ctx.Self(), Peer: culprit, Note: reason,
		})
	}
	if e.convict != nil {
		e.convict(e.Context(ctx), culprit)
	}
}

// Accepts implements node.Gate. Frames the Endpoint consumes itself
// (echoes, bad MACs, masked senders' traffic, duplicates, held classes)
// are always accepted; a sealed frame that would be released to the inner
// handler right now is subject to the inner gate on its unsealed form, so
// the §5 sFS2d receive deferral keeps working through the layer. Accepts
// must not mutate state: hosts call it speculatively.
func (e *Endpoint) Accepts(from model.ProcID, p node.Payload) bool {
	if !Sealed(p.Data) {
		if g, ok := e.inner.(node.Gate); ok {
			return g.Accepts(from, p)
		}
		return true
	}
	seq, _, data, ok := openBody(from, p.Tag, p.Subject, p.Data)
	if !ok || p.Tag == TagEcho || e.masked[from] || e.heldTags[p.Tag] {
		return true
	}
	if sn := e.seen[from]; sn != nil {
		if _, dup := sn[seq]; dup {
			return true // duplicate or replay: consumed internally
		}
	}
	if g, ok := e.inner.(node.Gate); ok {
		return g.Accepts(from, node.Payload{Tag: p.Tag, Subject: p.Subject, Data: data})
	}
	return true
}

// endpointSnapshot is the durable-state wire form of an Endpoint
// (internal/recovery): the masked set, the broadcast-id counter, and the
// per-link sequence counters, sorted so equal states encode
// byte-identically, plus the wrapped handler's own snapshot. Held frames,
// witness records, and the receive watermark are transient — in-flight
// evidence a crash loses, like the reliable layer's pending frames.
//
//sfs:wire
type endpointSnapshot struct {
	Masked []model.ProcID    `json:"masked,omitempty"`
	Bid    uint64            `json:"bid,omitempty"`
	Peers  []peerSeqSnapshot `json:"peers,omitempty"`
	Inner  []byte            `json:"inner,omitempty"`
}

// peerSeqSnapshot is one outgoing link's sequence counter.
//
//sfs:wire
type peerSeqSnapshot struct {
	Peer    model.ProcID `json:"peer"`
	NextSeq uint64       `json:"next_seq"`
}

// Snapshot implements node.Restarter: it encodes the state a restart must
// not regress — reusing sequence numbers or broadcast ids would make the
// restarted process's fresh frames look like replays (or collide its new
// broadcasts with remembered ones) at every peer. It does not mutate the
// endpoint.
func (e *Endpoint) Snapshot() []byte {
	snap := endpointSnapshot{Bid: e.bid}
	for p, ok := range e.masked { //sfs:allow detmaprange collecting keys for the sort below
		if ok {
			snap.Masked = append(snap.Masked, p)
		}
	}
	sort.Slice(snap.Masked, func(a, b int) bool { return snap.Masked[a] < snap.Masked[b] })
	ids := make([]model.ProcID, 0, len(e.nextSeq))
	for id := range e.nextSeq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		snap.Peers = append(snap.Peers, peerSeqSnapshot{Peer: id, NextSeq: e.nextSeq[id]})
	}
	if r, ok := e.inner.(node.Restarter); ok {
		snap.Inner = r.Snapshot()
	}
	b, err := json.Marshal(snap)
	if err != nil {
		panic(fmt.Sprintf("byz: encoding endpoint snapshot: %v", err))
	}
	return b
}

// OnRestart implements node.Restarter. A durable restart restores the
// masked set and the counters, so the reincarnation neither trusts a
// process it already convicted nor reuses sequence numbers its peers
// remember. A nil or undecodable state (amnesia) resets everything — and
// an amnesiac restart therefore reuses spent sequence numbers, which peers
// that remember the first incarnation convict as replays: the byz-layer
// echo of the reliable layer's amnesia argument (experiment E15).
func (e *Endpoint) OnRestart(ctx node.Context, state []byte) {
	e.witnesses = 0
	e.resolve(ctx)
	e.nextSeq = make(map[model.ProcID]uint64)
	e.bid = 0
	e.haveLast = false
	e.lastTag = ""
	e.lastSubject = model.None
	e.lastData = nil
	e.seen = make(map[model.ProcID]map[uint64]int64)
	e.masked = make(map[model.ProcID]bool)
	e.rounds = make(map[model.ProcID]map[uint64]*round)
	var innerState []byte
	if len(state) > 0 {
		var snap endpointSnapshot
		if err := json.Unmarshal(state, &snap); err == nil {
			e.bid = snap.Bid
			for _, p := range snap.Masked {
				e.masked[p] = true
			}
			for _, ps := range snap.Peers {
				e.nextSeq[ps.Peer] = ps.NextSeq
			}
			innerState = snap.Inner
		}
	}
	if r, ok := e.inner.(node.Restarter); ok {
		r.OnRestart(e.Context(ctx), innerState)
	} else {
		e.inner.Init(e.Context(ctx))
	}
}

// sortedOrigins returns the round table's origins, sorted.
func sortedOrigins(m map[model.ProcID]map[uint64]*round) []model.ProcID {
	out := make([]model.ProcID, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// sortedBids returns one origin's broadcast ids, sorted.
func sortedBids(m map[uint64]*round) []uint64 {
	out := make([]uint64, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Sealed reports whether data carries this layer's frame header.
func Sealed(data []byte) bool {
	return len(data) >= headerLen && data[0] == kindSealed
}

// Reseal recomputes a sealed body's MAC for a changed outer (tag, subject),
// keeping its sequence number, broadcast id, and inner data. This is the
// fault plane's equivocation primitive: a Byzantine sender signs its own
// lies (keys are public — see the package comment), so the forged variant
// authenticates and only the echo quorum can catch the split. ok is false
// when data is not a sealed body.
func Reseal(data []byte, sender model.ProcID, tag string, subject model.ProcID) ([]byte, bool) {
	if !Sealed(data) {
		return nil, false
	}
	out := append([]byte(nil), data...)
	seq := binary.BigEndian.Uint64(out[1:9])
	bid := binary.BigEndian.Uint64(out[9:17])
	binary.BigEndian.PutUint64(out[17:25], macOf(sender, seq, bid, tag, subject, out[headerLen:]))
	return out, true
}

// sealBody frames p's data under the sender's MAC.
func sealBody(sender model.ProcID, seq, bid uint64, p node.Payload) []byte {
	body := make([]byte, headerLen, headerLen+len(p.Data))
	body[0] = kindSealed
	binary.BigEndian.PutUint64(body[1:9], seq)
	binary.BigEndian.PutUint64(body[9:17], bid)
	binary.BigEndian.PutUint64(body[17:25], macOf(sender, seq, bid, p.Tag, p.Subject, p.Data))
	return append(body, p.Data...)
}

// openBody authenticates a sealed body against the claimed sender and the
// outer (tag, subject), returning the header fields and the inner payload
// bytes. ok is false for a body whose MAC does not verify.
func openBody(sender model.ProcID, tag string, subject model.ProcID, body []byte) (seq, bid uint64, data []byte, ok bool) {
	if !Sealed(body) {
		return 0, 0, nil, false
	}
	seq = binary.BigEndian.Uint64(body[1:9])
	bid = binary.BigEndian.Uint64(body[9:17])
	mac := binary.BigEndian.Uint64(body[17:25])
	data = body[headerLen:]
	if len(data) == 0 {
		data = nil
	}
	if mac != macOf(sender, seq, bid, tag, subject, data) {
		return 0, 0, nil, false
	}
	return seq, bid, data, true
}

// keySalt separates the key schedule from every other splitmix64 stream in
// the module.
const keySalt = 0x5b7a9e24c16f03d8

// keyFor derives sender p's MAC key. Keys are deterministic and public:
// the layer models integrity against third-party tampering, not secrecy.
func keyFor(p model.ProcID) uint64 {
	return mix(keySalt ^ uint64(p)*0x9e3779b97f4a7c15)
}

// macOf authenticates one frame: a splitmix64 fold over the sender's key,
// the header fields, and the outer payload identity.
func macOf(sender model.ProcID, seq, bid uint64, tag string, subject model.ProcID, data []byte) uint64 {
	h := keyFor(sender)
	h = mix(h ^ seq)
	h = mix(h ^ bid)
	h = mix(h ^ hashString(tag))
	h = mix(h ^ uint64(subject))
	return mix(h ^ hashBytes(data))
}

// digestOf is the unkeyed content digest witnesses vouch for: equal
// payloads digest equally at every receiver.
func digestOf(tag string, subject model.ProcID, data []byte) uint64 {
	h := mix(hashString(tag))
	h = mix(h ^ uint64(subject))
	return mix(h ^ hashBytes(data))
}

// hashString folds a string through the mixer, length-prefixed.
func hashString(s string) uint64 {
	h := mix(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = mix(h ^ uint64(s[i]))
	}
	return h
}

// hashBytes folds a byte slice through the mixer, length-prefixed.
func hashBytes(b []byte) uint64 {
	h := mix(uint64(len(b)))
	for _, x := range b {
		h = mix(h ^ uint64(x))
	}
	return h
}

// mix is splitmix64's output mix — the module's standard bit mixer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
