// End-to-end tests of the validation layer over the deterministic simulator
// and the fault plane's Byzantine rules. They live in the external test
// package so importing internal/netadv (which imports this package for the
// sealing primitives) does not cycle.
package byz_test

import (
	"testing"

	"failstop/internal/byz"
	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/node"
	"failstop/internal/sim"
)

// recorder is an inner handler that records every released payload.
type recorder struct {
	released []node.Payload
	from     []model.ProcID
}

func (r *recorder) Init(node.Context) {}
func (r *recorder) OnMessage(_ node.Context, from model.ProcID, p node.Payload) {
	r.released = append(r.released, p)
	r.from = append(r.from, from)
}
func (r *recorder) OnTimer(node.Context, string) {}

// harness wires n byz endpoints over a sim whose network follows the given
// plan. Convictions are recorded per (convicting process, culprit, reason).
type harness struct {
	sim       *sim.Sim
	plane     *netadv.Plane
	eps       []*byz.Endpoint
	recs      []*recorder
	convicted []conviction
}

type conviction struct {
	by, culprit model.ProcID
}

func newHarness(t *testing.T, n int, seed int64, plan netadv.Plan) *harness {
	t.Helper()
	if err := plan.Validate(n); err != nil {
		t.Fatal(err)
	}
	plane := netadv.NewPlane(plan, n, seed)
	s := sim.New(sim.Config{N: n, Seed: seed, MaxTime: 100000, Link: plane.Decide})
	h := &harness{sim: s, plane: plane, eps: make([]*byz.Endpoint, n+1), recs: make([]*recorder, n+1)}
	for p := model.ProcID(1); int(p) <= n; p++ {
		rec := &recorder{}
		ep := byz.Wrap(rec, byz.Options{Enabled: true})
		self := p
		ep.SetConvict(func(_ node.Context, culprit model.ProcID) {
			h.convicted = append(h.convicted, conviction{by: self, culprit: culprit})
		})
		h.eps[p] = ep
		h.recs[p] = rec
		s.SetHandler(p, ep)
	}
	return h
}

// broadcastAt injects a broadcast of p from proc at tick t, sealed through
// the sender's endpoint.
func (h *harness) broadcastAt(t int64, proc model.ProcID, p node.Payload) {
	ep := h.eps[proc]
	h.sim.At(t, proc, func(ctx node.Context) {
		wrapped := ep.Context(ctx)
		for q := model.ProcID(1); int(q) <= ctx.N(); q++ {
			if q != proc {
				wrapped.Send(q, p)
			}
		}
	})
}

func (h *harness) convictionsOf(culprit model.ProcID) int {
	got := 0
	for _, c := range h.convicted {
		if c.culprit == culprit {
			got++
		}
	}
	return got
}

var susp = node.Payload{Tag: "SUSP", Subject: 2, Data: []byte(`{"suspect":2}`)}

// TestHonestBroadcastReleases: over a fault-free network a held-class
// broadcast gathers its witness quorum and is released everywhere, with no
// convictions and the original payload intact.
func TestHonestBroadcastReleases(t *testing.T) {
	h := newHarness(t, 3, 1, netadv.Plan{Name: "clean"})
	h.broadcastAt(10, 1, susp)
	res := h.sim.Run()
	if res.Stop != sim.StopDrained {
		t.Fatalf("run did not drain: %v", res.Stop)
	}
	for p := 2; p <= 3; p++ {
		rec := h.recs[p]
		if len(rec.released) != 1 {
			t.Fatalf("proc %d released %d payloads, want 1", p, len(rec.released))
		}
		got := rec.released[0]
		if got.Tag != susp.Tag || got.Subject != susp.Subject || string(got.Data) != string(susp.Data) {
			t.Errorf("proc %d released %+v, want %+v", p, got, susp)
		}
		if rec.from[0] != 1 {
			t.Errorf("proc %d released from %d, want 1", p, rec.from[0])
		}
	}
	if len(h.convicted) != 0 {
		t.Errorf("honest run convicted: %v", h.convicted)
	}
	if res.ByzDetected != 0 {
		t.Errorf("ByzDetected = %d, want 0", res.ByzDetected)
	}
}

// TestNonHeldTagPassesWithoutEchoes: a tag outside EchoTags is released on
// arrival; the only traffic is the n-1 sealed frames themselves.
func TestNonHeldTagPassesWithoutEchoes(t *testing.T) {
	h := newHarness(t, 3, 1, netadv.Plan{Name: "clean"})
	h.broadcastAt(10, 1, node.Payload{Tag: "APP", Data: []byte("hello")})
	res := h.sim.Run()
	if res.Delivered != 2 {
		t.Errorf("delivered %d messages, want exactly the 2 broadcast frames (no echoes)", res.Delivered)
	}
	for p := 2; p <= 3; p++ {
		if len(h.recs[p].released) != 1 {
			t.Errorf("proc %d released %d payloads, want 1", p, len(h.recs[p].released))
		}
	}
}

// TestCorruptionConvictsBadMAC: the fault plane mutates the victim's frames
// without fixing the MAC, so every receiver convicts the victim and nothing
// forged is ever released.
func TestCorruptionConvictsBadMAC(t *testing.T) {
	h := newHarness(t, 3, 1, netadv.Plan{
		Name: "corrupt",
		Byz:  []netadv.ByzRule{{Victim: 1, Corrupt: 1}},
	})
	h.broadcastAt(10, 1, susp)
	res := h.sim.Run()
	if got := h.convictionsOf(1); got != 2 {
		t.Errorf("victim convicted by %d receivers, want 2", got)
	}
	for p := 2; p <= 3; p++ {
		if len(h.recs[p].released) != 0 {
			t.Errorf("proc %d released %d forged payloads", p, len(h.recs[p].released))
		}
	}
	if res.ByzDetected != 2 {
		t.Errorf("ByzDetected = %d, want 2", res.ByzDetected)
	}
	if c, _, _ := h.plane.ByzFates(); c == 0 {
		t.Error("plane counted no corruptions")
	}
}

// TestEquivocationConvicts: the plane reseals a different variant per
// receiver group — every frame authenticates, and only the echo quorum's
// digest conflict catches the split. No variant may be released.
func TestEquivocationConvicts(t *testing.T) {
	h := newHarness(t, 3, 1, netadv.Plan{
		Name: "equiv",
		Byz:  []netadv.ByzRule{{Victim: 1, Equivocate: [][]model.ProcID{{2}, {3}}}},
	})
	h.broadcastAt(10, 1, susp)
	h.sim.Run()
	if got := h.convictionsOf(1); got == 0 {
		t.Error("equivocation was never convicted")
	}
	for p := 2; p <= 3; p++ {
		if len(h.recs[p].released) != 0 {
			t.Errorf("proc %d released %d equivocated payloads", p, len(h.recs[p].released))
		}
	}
	if _, e, _ := h.plane.ByzFates(); e == 0 {
		t.Error("plane counted no equivocations")
	}
}

// TestReplayBeyondHorizonConvicts: a ghost copy re-injected past the replay
// horizon re-delivers a spent sequence number and convicts the sender;
// within the horizon it is absorbed as a benign duplicate.
func TestReplayBeyondHorizonConvicts(t *testing.T) {
	stale := newHarness(t, 3, 1, netadv.Plan{
		Name: "stale-replay",
		Byz:  []netadv.ByzRule{{Victim: 1, Tags: []string{"APP"}, Replay: 1, ReplayDelay: 400}},
	})
	stale.broadcastAt(10, 1, node.Payload{Tag: "APP", Data: []byte("m1")})
	stale.broadcastAt(20, 1, node.Payload{Tag: "APP", Data: []byte("m2")})
	stale.sim.Run()
	if got := stale.convictionsOf(1); got != 2 {
		t.Errorf("stale replay convicted by %d receivers, want 2", got)
	}
	if _, _, r := stale.plane.ByzFates(); r == 0 {
		t.Error("plane counted no replays")
	}

	fresh := newHarness(t, 3, 2, netadv.Plan{
		Name: "fresh-replay",
		Byz:  []netadv.ByzRule{{Victim: 1, Tags: []string{"APP"}, Replay: 1, ReplayDelay: 5}},
	})
	fresh.broadcastAt(10, 1, node.Payload{Tag: "APP", Data: []byte("m1")})
	fresh.broadcastAt(20, 1, node.Payload{Tag: "APP", Data: []byte("m2")})
	fresh.sim.Run()
	if len(fresh.convicted) != 0 {
		t.Errorf("fresh duplicate within the horizon convicted: %v", fresh.convicted)
	}
	if _, _, r := fresh.plane.ByzFates(); r == 0 {
		t.Error("plane injected no ghost copies")
	}
	for p := 2; p <= 3; p++ {
		if got := len(fresh.recs[p].released); got != 2 {
			t.Errorf("proc %d released %d payloads, want 2 (ghosts absorbed)", p, got)
		}
	}
}

// TestMaskedSenderTrafficDiscarded: after conviction the culprit's later
// frames are dropped at the layer and counted as masked.
func TestMaskedSenderTrafficDiscarded(t *testing.T) {
	h := newHarness(t, 3, 1, netadv.Plan{
		Name: "corrupt-window",
		Byz:  []netadv.ByzRule{{Victim: 1, Until: 50, Corrupt: 1}},
	})
	h.broadcastAt(10, 1, susp)
	// Past the rule's window the victim sends honestly — but it is already
	// masked everywhere, so nothing is released.
	h.broadcastAt(200, 1, node.Payload{Tag: "APP", Data: []byte("late")})
	res := h.sim.Run()
	for p := 2; p <= 3; p++ {
		if len(h.recs[p].released) != 0 {
			t.Errorf("proc %d released traffic from a masked sender", p)
		}
		if !h.eps[p].Masked(1) {
			t.Errorf("proc %d did not mask the victim", p)
		}
	}
	if res.ByzMasked == 0 {
		t.Error("no frames counted as masked")
	}
}
