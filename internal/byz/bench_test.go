package byz

import (
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

// BenchmarkSealOpen prices one authenticated frame round trip: seal a
// payload under the per-sender key and open it at the receiver. This is
// the per-message cost the interposer adds to every send and delivery.
func BenchmarkSealOpen(b *testing.B) {
	p := node.Payload{Tag: "SUSP", Subject: 3, Data: []byte(`{"suspect":3}`)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sealed := sealBody(2, uint64(i)+1, 1, p)
		if _, _, _, ok := openBody(2, p.Tag, p.Subject, sealed); !ok {
			b.Fatal("seal/open round trip failed")
		}
	}
}

// benchSink swallows deliveries; the benchmark measures the interposer,
// not the protocol above it.
type benchSink struct{ delivered int }

func (s *benchSink) Init(ctx node.Context) {}
func (s *benchSink) OnMessage(ctx node.Context, from model.ProcID, p node.Payload) {
	s.delivered++
}
func (s *benchSink) OnTimer(ctx node.Context, name string) {}

// benchCtx is a minimal host context: sends vanish, time stands still.
type benchCtx struct{ self model.ProcID }

func (c benchCtx) Self() model.ProcID                            { return c.self }
func (c benchCtx) N() int                                        { return 5 }
func (c benchCtx) Now() int64                                    { return 0 }
func (c benchCtx) Send(to model.ProcID, p node.Payload)          {}
func (c benchCtx) SetTimer(name string, delay int64)             {}
func (c benchCtx) CancelTimer(name string)                       {}
func (c benchCtx) EmitFailed(j model.ProcID)                     {}
func (c benchCtx) CrashSelf()                                    {}
func (c benchCtx) EmitInternal(tag string, subject model.ProcID) {}

// BenchmarkEndpointDeliver prices a non-held delivery through the full
// endpoint path: authenticate, replay-check, release to the inner
// handler. APP traffic is not echo-gated, so this is the common case for
// application frames under the interposer.
func BenchmarkEndpointDeliver(b *testing.B) {
	sink := &benchSink{}
	ctx := benchCtx{self: 2}
	const window = 64
	frames := make([][]byte, window)
	for i := range frames {
		frames[i] = sealBody(1, uint64(i)+1, 1, node.Payload{Tag: "APP", Data: []byte(`{"round":1}`)})
	}
	ep := Wrap(sink, Options{Enabled: true})
	ep.Init(ctx)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh endpoint every window keeps the per-link sequence
		// numbers unseen, so the duplicate watermark never short-circuits
		// the path being measured.
		if i%window == 0 {
			ep = Wrap(sink, Options{Enabled: true})
			ep.Init(ctx)
		}
		ep.OnMessage(ctx, 1, node.Payload{Tag: "APP", Data: frames[i%window]})
	}
	if sink.delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
