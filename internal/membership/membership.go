// Package membership implements the simple view service sketched in §6:
// each process's view is P minus the failures it has detected, and views
// are stamped on every application message.
//
// The paper argues that the §5 detector "could be used as the basis of a
// failure detector ... outside of a system built using a group-membership
// protocol", providing consistent failure detection over point-to-point
// communication. The consistency this package checks is
// view-monotonicity-on-contact, the direct application-level consequence of
// sFS2d: when a message stamped with the sender's view at send time is
// received, the receiver's view is a subset of (has detected at least as
// much as) that stamp. Equivalently: information about failures always
// travels at least as fast as any message from a process that knows it.
//
// Under the §5 protocol (and the cheap §6 variant) the invariant holds by
// construction; under the unilateral strawman it breaks, because silent
// detections outrun their own announcement — there is none.
package membership

import (
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
)

// Internal-event tags recorded by the membership app.
const (
	// ViolationTag marks a view-monotonicity violation observed at receive:
	// the sender's stamped view missed a failure the receiver had not
	// detected either — i.e. receiverView ⊄ senderViewAtSend.
	ViolationTag = "membership-violation"
	gossipTimer  = "membership/gossip"
)

// Service is a core.App maintaining a view and gossiping it.
type Service struct {
	// GossipInterval is the tick interval between view broadcasts.
	// 0 disables gossip.
	GossipInterval int64

	self       model.ProcID
	n          int
	out        map[model.ProcID]bool // processes removed from the view
	violations int
	gossips    int
}

var _ core.App = (*Service)(nil)

// Init implements core.App.
func (s *Service) Init(ctx node.Context, d *core.Detector) {
	s.self = ctx.Self()
	s.n = ctx.N()
	s.out = make(map[model.ProcID]bool, s.n)
	if s.GossipInterval > 0 {
		ctx.SetTimer(gossipTimer, s.GossipInterval)
	}
}

// View returns the current view as a sorted slice of live process ids.
func (s *Service) View() []model.ProcID {
	view := make([]model.ProcID, 0, s.n)
	for p := model.ProcID(1); int(p) <= s.n; p++ {
		if !s.out[p] {
			view = append(view, p)
		}
	}
	return view
}

// Violations returns the number of monotonicity violations observed.
func (s *Service) Violations() int { return s.violations }

// GossipsReceived returns the number of view messages received.
func (s *Service) GossipsReceived() int { return s.gossips }

// OnFailed implements core.App.
func (s *Service) OnFailed(ctx node.Context, d *core.Detector, j model.ProcID) {
	s.out[j] = true
}

// OnAppMessage implements core.App: receive a stamped view and check
// monotonicity — every process absent from the sender's stamp must already
// be absent from the receiver's view.
func (s *Service) OnAppMessage(ctx node.Context, d *core.Detector, from model.ProcID, data []byte) {
	if len(data) != s.n {
		return
	}
	s.gossips++
	for p := model.ProcID(1); int(p) <= s.n; p++ {
		senderHas := data[int(p)-1] == 1
		if !senderHas && !s.out[p] && p != s.self {
			// The sender had removed p when it sent this message, yet we
			// still consider p alive: information traveled slower than the
			// message — impossible under sFS2d.
			s.violations++
			ctx.EmitInternal(ViolationTag, p)
		}
	}
}

// OnTimer implements core.App: gossip the current view.
func (s *Service) OnTimer(ctx node.Context, d *core.Detector, name string) {
	if name != gossipTimer {
		return
	}
	stamp := make([]byte, s.n)
	for p := model.ProcID(1); int(p) <= s.n; p++ {
		if !s.out[p] {
			stamp[int(p)-1] = 1
		}
	}
	for p := model.ProcID(1); int(p) <= s.n; p++ {
		if p != s.self {
			d.SendApp(ctx, p, stamp)
		}
	}
	ctx.SetTimer(gossipTimer, s.GossipInterval)
}

// ObservedViolations counts monotonicity violations recorded in a history.
func ObservedViolations(h model.History) int {
	count := 0
	for _, e := range h {
		if e.Kind == model.KindInternal && e.Tag == ViolationTag {
			count++
		}
	}
	return count
}
