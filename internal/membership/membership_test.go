package membership_test

import (
	"testing"

	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/membership"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

func memCluster(n, t int, proto core.Protocol, seed, horizon int64) (*cluster.Cluster, []*membership.Service) {
	apps := make([]*membership.Service, n+1)
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 10, MaxTime: horizon},
		Det: core.Config{N: n, T: t, Protocol: proto},
		App: func(p model.ProcID) core.App {
			s := &membership.Service{GossipInterval: 20}
			apps[p] = s
			return s
		},
	})
	return c, apps
}

func TestViewsConvergeOnFailure(t *testing.T) {
	c, apps := memCluster(5, 2, core.SimulatedFailStop, 1, 2000)
	c.CrashAt(30, 5)
	c.SuspectAt(60, 1, 5)
	c.Run()
	for p := 1; p <= 4; p++ {
		view := apps[p].View()
		if len(view) != 4 {
			t.Errorf("process %d view = %v, want 4 live", p, view)
		}
		for _, q := range view {
			if q == 5 {
				t.Errorf("process %d still has 5 in view", p)
			}
		}
	}
}

func TestMonotonicityHoldsUnderSFS(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c, apps := memCluster(6, 2, core.SimulatedFailStop, seed, 3000)
		c.SuspectAt(40, 2, 1) // false suspicion mid-gossip
		c.SuspectAt(55, 3, 4)
		res := c.Run()
		if got := membership.ObservedViolations(res.History); got != 0 {
			t.Errorf("seed %d: %d monotonicity violations under sFS, want 0", seed, got)
		}
		received := 0
		for p := 1; p <= 6; p++ {
			if apps[p] != nil {
				received += apps[p].GossipsReceived()
			}
		}
		if received == 0 {
			t.Errorf("seed %d: no gossip delivered; test vacuous", seed)
		}
	}
}

func TestMonotonicityHoldsUnderCheap(t *testing.T) {
	// The cheap model keeps sFS2d (broadcast before detect + FIFO), so view
	// monotonicity survives even though sFS2b is lost.
	for seed := int64(0); seed < 10; seed++ {
		c, _ := memCluster(6, 2, core.Cheap, seed, 3000)
		c.SuspectAt(40, 2, 1)
		res := c.Run()
		if got := membership.ObservedViolations(res.History); got != 0 {
			t.Errorf("seed %d: %d violations under cheap model, want 0", seed, got)
		}
	}
}

func TestMonotonicityBreaksUnderUnilateral(t *testing.T) {
	c, _ := memCluster(4, 1, core.Unilateral, 2, 3000)
	c.SuspectAt(40, 1, 4) // 1 silently removes 4; nobody else learns
	res := c.Run()
	if got := membership.ObservedViolations(res.History); got == 0 {
		t.Error("expected monotonicity violations under unilateral detection")
	}
}

func TestViewInitiallyFull(t *testing.T) {
	c, apps := memCluster(3, 1, core.SimulatedFailStop, 1, 100)
	c.Run()
	for p := 1; p <= 3; p++ {
		if got := len(apps[p].View()); got != 3 {
			t.Errorf("process %d initial view size %d, want 3", p, got)
		}
	}
}

func TestMalformedStampIgnored(t *testing.T) {
	// A stamp of the wrong length must be ignored, not panic or count.
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 2, Seed: 1, MaxTime: 100},
		Det: core.Config{N: 2, T: 1},
		App: func(p model.ProcID) core.App {
			return &membership.Service{} // no gossip
		},
	})
	d1 := c.Detectors[1]
	c.Sim.At(5, 1, func(ctx node.Context) {
		d1.SendApp(ctx, 2, []byte{1, 2, 3, 4, 5}) // wrong length
	})
	res := c.Run()
	if got := membership.ObservedViolations(res.History); got != 0 {
		t.Errorf("malformed stamp produced %d violations", got)
	}
}
