package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"failstop/internal/model"
	"failstop/internal/obs"
)

func sampleSpans() []obs.Span {
	return []obs.Span{
		{ID: 1, Kind: obs.SpanSend, Time: 0, Proc: 1, Peer: 2, Msg: 1, Tag: "SUSP"},
		{ID: 2, Parent: 1, Kind: obs.SpanFate, Time: 0, Proc: 1, Peer: 2, Msg: 1, Note: "drop p=0.35"},
		{ID: 3, Parent: 1, Kind: obs.SpanEnqueue, Time: 0, Proc: 2, Msg: 1},
		{ID: 4, Parent: 3, Kind: obs.SpanDeliver, Time: 3, Proc: 2, Peer: 1, Msg: 1, Tag: "SUSP"},
		{ID: 5, Parent: 4, Kind: obs.SpanSuspect, Time: 3, Proc: 2, Target: 3},
		{ID: 6, Parent: 4, Kind: obs.SpanCrashConfirm, Time: 9, Proc: 2, Target: 3},
	}
}

// TestSpanRoundTrip: a v3 trace carries its spans losslessly, and the
// header records their count.
func TestSpanRoundTrip(t *testing.T) {
	h := sample()
	spans := sampleSpans()
	var buf bytes.Buffer
	hdr := Header{N: 3, T: 1, Protocol: "sfs", Seed: 42, SpanRate: 0.5}
	if err := WriteSpans(&buf, hdr, h, spans); err != nil {
		t.Fatal(err)
	}
	got, gh, gs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || got.SpanCount != len(spans) || got.SpanRate != 0.5 {
		t.Errorf("header = %+v", got)
	}
	if len(gh) != len(h) {
		t.Errorf("history length %d, want %d", len(gh), len(h))
	}
	if !reflect.DeepEqual(gs, spans) {
		t.Errorf("spans = %+v\nwant %+v", gs, spans)
	}
}

// TestWriteWithoutSpansStaysSpanFree: the common path (Write, no spans)
// must not sprout span lines or a span count.
func TestWriteWithoutSpansStaysSpanFree(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 3}, sample()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"span"`) {
		t.Errorf("span artifacts in a span-free trace:\n%s", buf.String())
	}
	hdr, _, spans, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.SpanCount != 0 || spans != nil {
		t.Errorf("span-free trace read back count=%d spans=%v", hdr.SpanCount, spans)
	}
}

// TestReadVersion2 verifies a version-2 trace (fault metadata, no spans)
// reads under the version-3 reader with nil spans.
func TestReadVersion2(t *testing.T) {
	in := `{"version":2,"n":2,"t":1,"protocol":"sfs","seed":7,"schedule":"mutual","plan":"split-brain"}` + "\n" +
		`{"seq":0,"proc":1,"kind":3}` + "\n"
	hdr, h, spans, err := ReadSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != 2 || hdr.Schedule != "mutual" || hdr.Plan != "split-brain" {
		t.Errorf("header = %+v", hdr)
	}
	if len(h) != 1 || spans != nil {
		t.Errorf("h=%v spans=%v", h, spans)
	}
}

// TestVersion1SpanLinesAreEvents: pre-v3 readers never wrote span lines, so
// a v1/v2 trace containing one is malformed input, not a silent span — the
// {"span":...} fast path must not fire below version 3.
func TestVersion1SpanLinesAreEvents(t *testing.T) {
	in := `{"version":1,"n":2}` + "\n" +
		`{"span":{"id":1,"kind":"send"}}` + "\n"
	_, _, spans, err := ReadSpans(strings.NewReader(in))
	if err == nil && len(spans) > 0 {
		t.Error("version-1 trace yielded spans")
	}
}

// TestSpanBadJSONRejected: a malformed span line fails loudly.
func TestSpanBadJSONRejected(t *testing.T) {
	in := `{"version":3,"n":2,"span_count":1}` + "\n" +
		`{"span":nope}` + "\n"
	if _, _, _, err := ReadSpans(strings.NewReader(in)); err == nil {
		t.Error("malformed span line parsed without error")
	}
	in = `{"version":3,"n":2,"span_count":1}` + "\n" +
		`{"span":null}` + "\n"
	if _, _, _, err := ReadSpans(strings.NewReader(in)); err == nil {
		t.Error("null span parsed without error")
	}
}

// TestSpanPropertyRoundTrip: arbitrary span slices survive the wire format
// bit-for-bit, whatever their field values.
func TestSpanPropertyRoundTrip(t *testing.T) {
	f := func(ids []int64, kinds []uint8, notes []string) bool {
		n := len(ids)
		if len(kinds) < n {
			n = len(kinds)
		}
		if len(notes) < n {
			n = len(notes)
		}
		if n > 64 {
			n = 64
		}
		known := []obs.SpanKind{obs.SpanSend, obs.SpanFate, obs.SpanEnqueue,
			obs.SpanDeliver, obs.SpanDrop, obs.SpanRetransmit,
			obs.SpanSuspect, obs.SpanCrashConfirm, obs.SpanRestart}
		spans := make([]obs.Span, n)
		for i := 0; i < n; i++ {
			note := notes[i]
			if !utf8Valid(note) {
				// encoding/json replaces invalid UTF-8 rather than
				// round-tripping it; that is JSON's contract, not a trace bug.
				note = ""
			}
			spans[i] = obs.Span{
				ID:     ids[i],
				Kind:   known[int(kinds[i])%len(known)],
				Proc:   model.ProcID(int(kinds[i]) % 7),
				Msg:    model.MsgID(ids[i] % 1000),
				Note:   note,
				Time:   int64(i),
				Parent: int64(i),
			}
		}
		var buf bytes.Buffer
		if err := WriteSpans(&buf, Header{N: 7}, sample(), spans); err != nil {
			return false
		}
		_, _, got, err := ReadSpans(&buf)
		if err != nil {
			return false
		}
		if len(spans) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, spans)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func utf8Valid(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}
