package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"failstop/internal/model"
	"failstop/internal/netadv"
)

func sample() model.History {
	return model.History{
		model.Send(1, 2, 1, "SUSP", 3),
		model.Recv(2, 1, 1, "SUSP", 3),
		model.Failed(2, 3),
		model.Crash(3),
		model.Internal(1, "note", model.None),
	}.Normalize()
}

func TestRoundTrip(t *testing.T) {
	h := sample()
	var buf bytes.Buffer
	hdr := Header{N: 3, T: 1, Protocol: "sfs", Seed: 42, Schedule: "mutual", Plan: "split-brain", Note: "unit"}
	if err := Write(&buf, hdr, h); err != nil {
		t.Fatal(err)
	}
	got, gh, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || got.T != 1 || got.Protocol != "sfs" || got.Seed != 42 || got.Version != FormatVersion {
		t.Errorf("header = %+v", got)
	}
	if got.Schedule != "mutual" || got.Plan != "split-brain" {
		t.Errorf("fault metadata lost: schedule=%q plan=%q", got.Schedule, got.Plan)
	}
	if len(gh) != len(h) {
		t.Fatalf("history length %d, want %d", len(gh), len(h))
	}
	for i := range h {
		if !h[i].Same(gh[i]) {
			t.Errorf("event %d: %s != %s", i, h[i], gh[i])
		}
	}
}

func TestHeaderDefaultsN(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, sample()); err != nil {
		t.Fatal(err)
	}
	hdr, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.N != 3 {
		t.Errorf("N = %d, want 3 (inferred)", hdr.N)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad version": `{"version":99}` + "\n",
		"bad event":   `{"version":1,"n":2}` + "\nnope\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := Read(strings.NewReader(in))
			if !errors.Is(err, ErrBadTrace) {
				t.Errorf("err = %v, want ErrBadTrace", err)
			}
		})
	}
}

// TestReadVersion1 verifies backward compatibility: a version-1 trace (no
// schedule/plan metadata) still reads cleanly under the version-2 reader.
func TestReadVersion1(t *testing.T) {
	in := `{"version":1,"n":2,"t":1,"protocol":"sfs","seed":7}` + "\n" +
		`{"seq":0,"proc":1,"kind":3}` + "\n"
	hdr, h, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != 1 || hdr.N != 2 || hdr.Protocol != "sfs" || hdr.Seed != 7 {
		t.Errorf("header = %+v", hdr)
	}
	if hdr.Schedule != "" || hdr.Plan != "" {
		t.Errorf("version-1 trace sprouted fault metadata: %+v", hdr)
	}
	if len(h) != 1 || !h[0].IsCrash() {
		t.Errorf("history = %v", h)
	}
}

func TestBlankLinesTolerated(t *testing.T) {
	in := `{"version":1,"n":2}` + "\n\n" + `{"seq":0,"proc":1,"kind":3}` + "\n"
	_, h, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 1 || !h[0].IsCrash() {
		t.Errorf("history = %v", h)
	}
}

func TestEmptyHistoryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{N: 2}, model.History{}); err != nil {
		t.Fatal(err)
	}
	_, h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 0 {
		t.Errorf("history = %v, want empty", h)
	}
}

// TestFaultPlanRoundTrip: the fully serialized plan survives the header, so
// a trace replays without access to the builtin registry that generated it.
func TestFaultPlanRoundTrip(t *testing.T) {
	plan := netadv.Plan{
		Name: "custom",
		Rules: []netadv.Rule{
			{From: 10, Until: 200, Cut: true, Links: netadv.LinkSet{
				Groups: [][]model.ProcID{{1, 2}, {3}},
				Pairs:  []netadv.Link{{From: 3, To: 1}},
			}},
			{Tags: []string{"SUSP"}, Drop: 0.25, Duplicate: 0.1, Reorder: 0.05, JitterMax: 7},
			// The dynamic-plan fields must survive the header too: a periodic
			// (moving) cut and a bandwidth-shaped link.
			{From: 10, Period: 100, ActiveFor: 25, Cut: true, Links: netadv.LinkSet{
				Groups: [][]model.ProcID{{2}},
			}},
			{QueueDelay: 15, Links: netadv.LinkSet{Pairs: []netadv.Link{{From: 1, To: 3}}}},
		},
		// Process-fault rules (the crash-recovery subsystem) must survive
		// too: a one-shot crash/restart pair and a bounded periodic storm.
		Procs: []netadv.ProcRule{
			{Proc: 2, CrashAt: 50, RestartAt: 120},
			{Proc: 3, CrashAt: 30, Period: 200, ActiveFor: 60, Until: 900},
		},
		// Byzantine rules must survive too: a corruptor/replayer and an
		// equivocator with its receiver groups.
		Byz: []netadv.ByzRule{
			{Victim: 2, From: 10, Tags: []string{"SUSP"}, Corrupt: 1, Replay: 0.5, ReplayDelay: 400},
			{Victim: 3, Equivocate: [][]model.ProcID{{1}, {2}}},
		},
	}
	var buf bytes.Buffer
	hdr := Header{N: 3, T: 1, Plan: plan.Name, FaultPlan: &plan}
	if err := Write(&buf, hdr, sample()); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FaultPlan == nil {
		t.Fatal("FaultPlan lost in the round trip")
	}
	if !reflect.DeepEqual(*got.FaultPlan, plan) {
		t.Errorf("FaultPlan = %+v, want %+v", *got.FaultPlan, plan)
	}
	if err := got.FaultPlan.Validate(3); err != nil {
		t.Errorf("recovered plan does not validate: %v", err)
	}

	// Headers without the field (version-2 traces written before it
	// existed, and every version-1 trace) read back as nil.
	buf.Reset()
	if err := Write(&buf, Header{N: 3, T: 1, Plan: "split-brain"}, sample()); err != nil {
		t.Fatal(err)
	}
	got, _, err = Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FaultPlan != nil {
		t.Errorf("absent fault plan read back as %+v", got.FaultPlan)
	}
}
