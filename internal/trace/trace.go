// Package trace serializes histories to and from a line-oriented JSON
// format, so that runs can be recorded by cmd/sfs-sim and re-checked
// offline by cmd/sfs-check (or exchanged with other tools).
//
// The format is one JSON object per line: a header line with metadata, then
// one line per event in history order. Streaming line-delimited JSON keeps
// large traces greppable and diffable.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"failstop/internal/model"
	"failstop/internal/netadv"
	"failstop/internal/obs"
)

// Header carries run metadata at the top of a trace file.
//
//sfs:wire
type Header struct {
	// Version identifies the trace format.
	Version int `json:"version"`
	// N is the number of processes.
	N int `json:"n"`
	// T is the failure bound the run was configured with.
	T int `json:"t,omitempty"`
	// Protocol names the detection protocol ("sfs", "cheap", "unilateral").
	Protocol string `json:"protocol,omitempty"`
	// Seed is the simulation seed.
	Seed int64 `json:"seed,omitempty"`
	// Schedule names the fault-injection schedule the run used, if any
	// (format version 2).
	Schedule string `json:"schedule,omitempty"`
	// Plan names the network fault plan the run used, if any (format
	// version 2). A trace with a plan may legitimately fail strict model
	// validation: loss, duplication, and reorder leave the reliable-channel
	// model, and this field records that context.
	Plan string `json:"plan,omitempty"`
	// FaultPlan carries the full serialized fault plan (format version 2),
	// not just its name, so a trace replays without access to the builtin
	// registry that generated it.
	FaultPlan *netadv.Plan `json:"fault_plan,omitempty"`
	// Note is free-form commentary.
	Note string `json:"note,omitempty"`
	// SpanCount is the number of lifecycle spans appended after the events
	// (format version 3). 0 means the trace carries no spans.
	SpanCount int `json:"span_count,omitempty"`
	// SpanRate is the seed-deterministic sampling rate the spans were
	// recorded at (format version 3).
	SpanRate float64 `json:"span_rate,omitempty"`
}

// FormatVersion is the current trace format version. Version 2 added the
// Schedule and Plan metadata, including the optional fully-serialized
// FaultPlan. Version 3 appends message-lifecycle spans after the event
// lines, each wrapped as {"span":{...}} so event lines stay unchanged,
// with SpanCount and SpanRate in the header. Readers accept every version
// up to and including the current one; version-1 traces simply carry no
// fault context, version-2 traces no spans.
const FormatVersion = 3

// Write streams a header and history to w (with no spans).
func Write(w io.Writer, hdr Header, h model.History) error {
	return WriteSpans(w, hdr, h, nil)
}

// spanLine wraps a span on the wire so span lines are distinguishable
// from event lines without lookahead: events never carry a "span" key.
type spanLine struct {
	Span *obs.Span `json:"span"`
}

// WriteSpans streams a header, history, and lifecycle spans to w. The
// header's SpanCount is set from spans; SpanRate is the caller's to fill.
func WriteSpans(w io.Writer, hdr Header, h model.History, spans []obs.Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr.Version = FormatVersion
	if hdr.N == 0 {
		hdr.N = h.Processes()
	}
	hdr.SpanCount = len(spans)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	for i := range h {
		if err := enc.Encode(h[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	for i := range spans {
		if err := enc.Encode(spanLine{Span: &spans[i]}); err != nil {
			return fmt.Errorf("trace: encoding span %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ErrBadTrace is wrapped by all read-side format errors.
var ErrBadTrace = errors.New("trace: malformed trace")

// Read parses a trace produced by Write and returns its header and history,
// discarding any spans. The history is normalized but NOT validated;
// callers that need model validity should call History.Validate themselves.
func Read(r io.Reader) (Header, model.History, error) {
	hdr, h, _, err := ReadSpans(r)
	return hdr, h, err
}

// ReadSpans parses a trace and returns its header, history, and lifecycle
// spans. Version 1 and 2 traces parse with nil spans; a version-3 trace's
// span lines follow its event lines, each wrapped as {"span":{...}}.
func ReadSpans(r io.Reader) (Header, model.History, []obs.Span, error) {
	var hdr Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, nil, fmt.Errorf("%w: %w", ErrBadTrace, err)
		}
		return hdr, nil, nil, fmt.Errorf("%w: empty input", ErrBadTrace)
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, nil, fmt.Errorf("%w: header: %w", ErrBadTrace, err)
	}
	if hdr.Version < 1 || hdr.Version > FormatVersion {
		return hdr, nil, nil, fmt.Errorf("%w: unsupported version %d (this reader handles 1..%d)", ErrBadTrace, hdr.Version, FormatVersion)
	}
	var h model.History
	var spans []obs.Span
	line := 1
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if hdr.Version >= 3 && bytes.HasPrefix(b, spanPrefix) {
			var sl spanLine
			if err := json.Unmarshal(b, &sl); err != nil {
				return hdr, nil, nil, fmt.Errorf("%w: line %d: %w", ErrBadTrace, line, err)
			}
			if sl.Span == nil {
				return hdr, nil, nil, fmt.Errorf("%w: line %d: span line without span object", ErrBadTrace, line)
			}
			spans = append(spans, *sl.Span)
			continue
		}
		var e model.Event
		if err := json.Unmarshal(b, &e); err != nil {
			return hdr, nil, nil, fmt.Errorf("%w: line %d: %w", ErrBadTrace, line, err)
		}
		h = append(h, e)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, nil, fmt.Errorf("%w: %w", ErrBadTrace, err)
	}
	return hdr, h.Normalize(), spans, nil
}

// spanPrefix is how a span line begins as emitted by WriteSpans
// (encoding/json renders the single-field wrapper deterministically).
var spanPrefix = []byte(`{"span":`)
