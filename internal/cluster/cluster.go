// Package cluster wires n core.Detector instances into a deterministic
// simulation: one constructor call builds the simulator, the detectors, and
// optional fd components and applications per process. It is the common
// harness used by tests, the experiment generators, and the public facade.
package cluster

import (
	"failstop/internal/byz"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/reliable"
	"failstop/internal/sim"
)

// Options configures a cluster.
type Options struct {
	// Sim configures the simulator. Sim.N is set from Det.N if zero.
	Sim sim.Config
	// Det configures every process's detector identically. Det.Topology,
	// when set, is shared by reference across all detectors (a Topology is
	// immutable after construction, so one instance serves any N).
	Det core.Config
	// FD, when non-nil, constructs the fd component for each process.
	FD func(p model.ProcID) core.Component
	// App, when non-nil, constructs the application for each process.
	App func(p model.ProcID) core.App
	// Reliable, when Enabled, interposes a reliable-delivery endpoint
	// (ack + timed retransmission, dedup, in-order release) between every
	// detector and the simulator's faulty network.
	Reliable reliable.Options
	// Byzantine, when Enabled, interposes a validation endpoint (per-sender
	// MACs, echo/witness broadcast consistency, replay watermark) between
	// every detector and the network; convictions are masked into crashes
	// by suspecting the culprit through the §5 protocol. When Reliable is
	// also enabled the interposer sits inside the reliable layer (the
	// reliable framing is outermost on the wire).
	Byzantine byz.Options
}

// Cluster is a wired simulation ready to run.
type Cluster struct {
	// Sim is the underlying simulator; use it for custom injections.
	Sim *sim.Sim
	// Detectors holds the per-process detectors, indexed 1..N (index 0 nil).
	Detectors []*core.Detector
	endpoints []*reliable.Endpoint // nil entries when the layer is off
	byzants   []*byz.Endpoint      // nil entries when the interposer is off
	n         int
}

// New builds a cluster.
func New(opts Options) *Cluster {
	n := opts.Det.N
	if opts.Sim.N == 0 {
		opts.Sim.N = n
	}
	s := sim.New(opts.Sim)
	c := &Cluster{
		Sim:       s,
		Detectors: make([]*core.Detector, n+1),
		endpoints: make([]*reliable.Endpoint, n+1),
		byzants:   make([]*byz.Endpoint, n+1),
		n:         n,
	}
	for p := model.ProcID(1); int(p) <= n; p++ {
		var fd core.Component
		if opts.FD != nil {
			fd = opts.FD(p)
		}
		var app core.App
		if opts.App != nil {
			app = opts.App(p)
		}
		d := core.NewDetector(opts.Det, fd, app)
		c.Detectors[p] = d
		var h node.Handler = d
		if opts.Byzantine.Enabled {
			bz := byz.Wrap(d, opts.Byzantine)
			bz.SetSpans(opts.Sim.Spans)
			// Masking: a conviction becomes a §5 suspicion of the culprit,
			// which crashes it on its own completed detection — the
			// Byzantine process is demoted to a crashed one.
			bz.SetConvict(func(ctx node.Context, culprit model.ProcID) {
				d.Suspect(ctx, culprit)
			})
			c.byzants[p] = bz
			h = bz
		}
		if opts.Reliable.Enabled {
			ep := reliable.Wrap(h, opts.Reliable)
			ep.SetSpans(opts.Sim.Spans)
			c.endpoints[p] = ep
			h = ep
		}
		s.SetHandler(p, h)
	}
	return c
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.n }

// SuspectAt injects a spontaneous suspicion: at virtual time t, process i
// begins the detection protocol for j (the paper's "i suspects the failure
// of j, e.g. due to a timeout"). The injected broadcast flows through i's
// reliable-delivery endpoint when the layer is enabled.
func (c *Cluster) SuspectAt(t int64, i, j model.ProcID) {
	d := c.Detectors[i]
	ep := c.endpoints[i]
	bz := c.byzants[i]
	c.Sim.At(t, i, func(ctx node.Context) {
		// Mirror the wrap order: the reliable layer is outermost, so its
		// context wraps first and the interposer's sends flow through it.
		if ep != nil {
			ctx = ep.Context(ctx)
		}
		if bz != nil {
			ctx = bz.Context(ctx)
		}
		d.Suspect(ctx, j)
	})
}

// CrashAt injects a genuine crash of p at virtual time t.
func (c *Cluster) CrashAt(t int64, p model.ProcID) {
	c.Sim.CrashAt(t, p)
}

// Run executes the simulation and returns its result.
func (c *Cluster) Run() *sim.Result { return c.Sim.Run() }

// QuorumSets aggregates the quorum snapshots of every completed detection
// across all processes, as sets, for Witness-property checking (§4,
// Definition 5).
func (c *Cluster) QuorumSets() []map[model.ProcID]bool {
	var out []map[model.ProcID]bool
	for p := 1; p <= c.n; p++ {
		for _, q := range c.Detectors[p].Quorums() {
			set := make(map[model.ProcID]bool, len(q))
			for _, m := range q {
				set[m] = true
			}
			out = append(out, set)
		}
	}
	return out
}
