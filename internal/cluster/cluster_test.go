package cluster_test

import (
	"testing"

	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/quorum"
	"failstop/internal/sim"
)

func TestNewWiresAllProcesses(t *testing.T) {
	c := cluster.New(cluster.Options{
		Det: core.Config{N: 4, T: 1},
		Sim: sim.Config{Seed: 1},
	})
	if c.N() != 4 {
		t.Errorf("N() = %d", c.N())
	}
	for p := 1; p <= 4; p++ {
		if c.Detectors[p] == nil {
			t.Errorf("detector %d missing", p)
		}
	}
	if c.Detectors[0] != nil {
		t.Error("index 0 must stay nil")
	}
	res := c.Run()
	if len(res.History) != 0 {
		t.Errorf("idle cluster produced %d events", len(res.History))
	}
}

func TestQuorumSetsAggregation(t *testing.T) {
	c := cluster.New(cluster.Options{
		Det: core.Config{N: 5, T: 2},
		Sim: sim.Config{Seed: 2, MinDelay: 1, MaxDelay: 5},
	})
	c.SuspectAt(5, 2, 1)
	c.Run()
	sets := c.QuorumSets()
	if len(sets) != 4 { // processes 2..5 each detected 1
		t.Fatalf("got %d quorum sets, want 4", len(sets))
	}
	min := quorum.MinSize(5, 2)
	for _, s := range sets {
		if len(s) < min {
			t.Errorf("quorum %v smaller than %d", s, min)
		}
	}
	if !quorum.SubfamiliesIntersect(sets, 2) {
		t.Error("quorums from one run must satisfy the witness property")
	}
}

func TestCrashAndSuspectInjection(t *testing.T) {
	c := cluster.New(cluster.Options{
		Det: core.Config{N: 5, T: 2},
		Sim: sim.Config{Seed: 3, MinDelay: 1, MaxDelay: 5},
	})
	c.CrashAt(1, 5)
	c.SuspectAt(10, 1, 5)
	res := c.Run()
	if res.History.CrashIndex(5) < 0 {
		t.Error("injected crash missing")
	}
	if !c.Detectors[1].Detected(5) {
		t.Error("injected suspicion did not lead to detection")
	}
	_ = model.History(res.History)
}
