package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"failstop/internal/model"
)

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total").Add(3)
	r.Gauge("alpha_level").Set(-2)
	r.Histogram("mid_hist").Observe(1.5)
	r.Histogram("mid_hist").Observe(2.5)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if v := snap.Value("zeta_total"); v != 3 {
		t.Errorf("zeta_total = %d, want 3", v)
	}
	if v := snap.Value("alpha_level"); v != -2 {
		t.Errorf("alpha_level = %d, want -2", v)
	}
	m, ok := snap.Get("mid_hist")
	if !ok || m.Summary == nil || m.Summary.N != 2 || m.Summary.Mean != 2.0 {
		t.Errorf("mid_hist = %+v", m)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c_total") != r.Counter("c_total") {
		t.Error("Counter did not return the same instrument twice")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge did not return the same instrument twice")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram did not return the same instrument twice")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter name as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("clash")
	r.Gauge("clash")
}

func TestRegistryDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var a, b Counter
	r.RegisterCounter("dup_total", &a)
	r.RegisterCounter("dup_total", &b)
}

func TestRegistryBadNamePanics(t *testing.T) {
	for _, name := range []string{"", "Upper", "has-dash", "_leading", "9leading", "spa ce"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(5)
	r.Histogram("z").Observe(1)
	var c Counter
	r.RegisterCounter("w", &c)
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestRegisteredInstrumentObserved(t *testing.T) {
	// The embed-and-register pattern the hot paths use: the host owns the
	// zero-value instrument, the registry only exposes it.
	r := NewRegistry()
	var sent Counter
	r.RegisterCounter("sim_sent_total", &sent)
	sent.Add(41)
	sent.Inc()
	if v := r.Snapshot().Value("sim_sent_total"); v != 42 {
		t.Errorf("sim_sent_total = %d, want 42", v)
	}
}

func TestMergeSumsAndSorts(t *testing.T) {
	a := Metrics{
		{Name: "b_total", Kind: KindCounter, Value: 2},
		{Name: "a_total", Kind: KindCounter, Value: 1},
	}
	b := Metrics{
		{Name: "b_total", Kind: KindCounter, Value: 5},
		{Name: "c_level", Kind: KindGauge, Value: 7},
	}
	got := Merge(a, b)
	want := Metrics{
		{Name: "a_total", Kind: KindCounter, Value: 1},
		{Name: "b_total", Kind: KindCounter, Value: 7},
		{Name: "c_level", Kind: KindGauge, Value: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d metrics, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Inputs must not be modified.
	if a[0].Value != 2 || b[0].Value != 5 {
		t.Error("Merge modified its inputs")
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sent_total").Add(9)
	r.Histogram("delay").Observe(3)
	snap := r.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"counter"`) {
		t.Errorf("kind not encoded as text: %s", raw)
	}
	var back Metrics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back.Value("sent_total") != 9 {
		t.Errorf("round trip = %+v", back)
	}
	m, _ := back.Get("delay")
	if m.Kind != KindHistogram || m.Summary == nil || m.Summary.N != 1 {
		t.Errorf("histogram round trip = %+v", m)
	}
}

func TestKindUnmarshalRejectsUnknown(t *testing.T) {
	var k Kind
	if err := k.UnmarshalText([]byte("exotic")); err == nil {
		t.Error("unknown kind decoded without error")
	}
	if _, err := Kind(0).MarshalText(); err == nil {
		t.Error("invalid kind encoded without error")
	}
}

func TestSpanSamplingDeterministic(t *testing.T) {
	a := NewSpanRecorder(7, 0.5)
	b := NewSpanRecorder(7, 0.5)
	sampled := 0
	for m := model.MsgID(1); m <= 1000; m++ {
		if a.Sampled(m) != b.Sampled(m) {
			t.Fatalf("msg %d: sampling differs between identical recorders", m)
		}
		if a.Sampled(m) {
			sampled++
		}
	}
	// The mix is unbiased: at rate 0.5 over 1000 messages the count should
	// land well inside (250, 750).
	if sampled < 250 || sampled > 750 {
		t.Errorf("sampled %d of 1000 at rate 0.5", sampled)
	}
	// A different seed selects a different message set.
	c := NewSpanRecorder(8, 0.5)
	same := 0
	for m := model.MsgID(1); m <= 1000; m++ {
		if a.Sampled(m) == c.Sampled(m) {
			same++
		}
	}
	if same == 1000 {
		t.Error("seed does not influence sampling")
	}
}

func TestSpanSamplingRateBounds(t *testing.T) {
	all := NewSpanRecorder(1, 1.0)
	none := NewSpanRecorder(1, 0.0)
	clampedHi := NewSpanRecorder(1, 2.5)
	clampedLo := NewSpanRecorder(1, -1)
	for m := model.MsgID(1); m <= 100; m++ {
		if !all.Sampled(m) || !clampedHi.Sampled(m) {
			t.Fatalf("msg %d not sampled at rate 1", m)
		}
		if none.Sampled(m) || clampedLo.Sampled(m) {
			t.Fatalf("msg %d sampled at rate 0", m)
		}
	}
}

func TestSpanRecorderSequentialIDs(t *testing.T) {
	r := NewSpanRecorder(1, 1)
	id1 := r.Record(Span{Kind: SpanSend, Proc: 1, Msg: 10})
	id2 := r.Record(Span{Kind: SpanDeliver, Proc: 2, Msg: 10, Parent: id1})
	if id1 != 1 || id2 != 2 {
		t.Errorf("ids = %d, %d, want 1, 2", id1, id2)
	}
	spans := r.Spans()
	if len(spans) != 2 || r.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].ID != 1 || spans[1].ID != 2 || spans[1].Parent != 1 {
		t.Errorf("spans = %+v", spans)
	}
}

func TestNilSpanRecorderSafe(t *testing.T) {
	var r *SpanRecorder
	if r.Sampled(1) {
		t.Error("nil recorder sampled a message")
	}
	if id := r.Record(Span{Kind: SpanSend}); id != 0 {
		t.Errorf("nil recorder returned id %d", id)
	}
	if r.Len() != 0 || r.Spans() != nil || r.Rate() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestSpanKindKnown(t *testing.T) {
	for _, k := range []SpanKind{SpanSend, SpanFate, SpanEnqueue, SpanDeliver,
		SpanDrop, SpanRetransmit, SpanSuspect, SpanCrashConfirm, SpanRestart} {
		if !k.Known() {
			t.Errorf("kind %q not Known", k)
		}
	}
	if SpanKind("future-kind").Known() {
		t.Error("unknown kind reported Known")
	}
}

func TestTimelineCadenceAndSnapshot(t *testing.T) {
	tl := NewTimeline(10, 0)
	if tl.Every() != 10 {
		t.Errorf("Every = %d, want 10", tl.Every())
	}
	tl.Observe("inflight", 0, 1)
	tl.Observe("inflight", 10, 3)
	tl.Observe("backlog", 0, 2)
	snap := tl.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	if snap[0].Name != "backlog" || snap[1].Name != "inflight" {
		t.Errorf("series not sorted: %q, %q", snap[0].Name, snap[1].Name)
	}
	in := snap[1]
	if in.Every != 10 || len(in.Points) != 2 || in.Points[1].Value != 3 {
		t.Errorf("inflight = %+v", in)
	}
	if mx := in.Max(); mx != 3 {
		t.Errorf("Max = %g, want 3", mx)
	}
}

func TestTimelineRingEviction(t *testing.T) {
	tl := NewTimeline(1, 4)
	for i := int64(0); i < 10; i++ {
		tl.Observe("s", i, float64(i))
	}
	snap := tl.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snap))
	}
	s := snap[0]
	if s.Dropped != 6 || len(s.Points) != 4 {
		t.Fatalf("dropped=%d points=%d, want 6 and 4", s.Dropped, len(s.Points))
	}
	for i, p := range s.Points {
		if want := float64(6 + i); p.Value != want {
			t.Errorf("point %d = %g, want %g (oldest evicted first)", i, p.Value, want)
		}
	}
}

func TestTimelineClampsEveryAndCap(t *testing.T) {
	tl := NewTimeline(0, -1)
	if tl.Every() != 1 {
		t.Errorf("Every = %d, want clamped to 1", tl.Every())
	}
	if tl.cap != DefaultTimelineCap {
		t.Errorf("cap = %d, want %d", tl.cap, DefaultTimelineCap)
	}
}

func TestNilTimelineSafe(t *testing.T) {
	var tl *Timeline
	tl.Observe("x", 0, 1)
	if tl.Snapshot() != nil || tl.Every() != 0 {
		t.Error("nil timeline not inert")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sent_total").Add(12)
	r.Gauge("inflight").Set(4)
	h := r.Histogram("delay_ticks")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sent_total counter\nsent_total 12\n",
		"# TYPE inflight gauge\ninflight 4\n",
		"# TYPE delay_ticks summary\n",
		`delay_ticks{quantile="0.5"} 2.5`,
		`delay_ticks{quantile="0.999"}`,
		"delay_ticks_sum 10\n",
		"delay_ticks_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rendering the same snapshot twice is byte-identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("two renderings of the same registry differ")
	}
}

func TestWritePrometheusEmptyHistogram(t *testing.T) {
	var b strings.Builder
	ms := Metrics{{Name: "empty_hist", Kind: KindHistogram}}
	if err := WritePrometheus(&b, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty_hist_count 0\n") {
		t.Errorf("summary-less histogram rendered as %q", b.String())
	}
}

func TestMetricsString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Histogram("b_hist").Observe(2)
	got := r.Snapshot().String()
	if got != "a_total=3\nb_hist=~2.00/1\n" {
		t.Errorf("String() = %q", got)
	}
}
