package obs

import (
	"sort"
	"sync"
)

// TimelinePoint is one timeseries sample.
//
//sfs:wire
type TimelinePoint struct {
	Time  int64   `json:"time"`
	Value float64 `json:"value"`
}

// TimelineSeries is one named series of a timeline snapshot. Dropped
// counts the oldest points evicted by the ring's capacity; Points holds
// the survivors in time order.
//
//sfs:wire
type TimelineSeries struct {
	Name    string          `json:"name"`
	Every   int64           `json:"every"`
	Dropped int             `json:"dropped,omitempty"`
	Points  []TimelinePoint `json:"points"`
}

// Max returns the largest point value of the series (0 if empty).
func (s TimelineSeries) Max() float64 {
	var mx float64
	for i, p := range s.Points {
		if i == 0 || p.Value > mx {
			mx = p.Value
		}
	}
	return mx
}

// ring is a fixed-capacity point buffer that evicts its oldest entries.
type ring struct {
	points  []TimelinePoint
	start   int
	n       int
	dropped int
}

func (r *ring) push(p TimelinePoint) {
	if r.n < len(r.points) {
		r.points[(r.start+r.n)%len(r.points)] = p
		r.n++
		return
	}
	r.points[r.start] = p
	r.start = (r.start + 1) % len(r.points)
	r.dropped++
}

func (r *ring) snapshot() ([]TimelinePoint, int) {
	out := make([]TimelinePoint, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.points[(r.start+i)%len(r.points)]
	}
	return out, r.dropped
}

// Timeline holds ring-buffered per-tick series: the host samples each
// series at a fixed virtual-time cadence (Every) and the ring keeps the
// most recent Cap points, counting what it evicts. The zero Timeline is
// not usable; construct with NewTimeline.
type Timeline struct {
	every int64
	cap   int

	mu     sync.Mutex
	series map[string]*ring
}

// DefaultTimelineCap is the per-series ring capacity when NewTimeline is
// given a non-positive one.
const DefaultTimelineCap = 4096

// NewTimeline returns a timeline sampling every `every` virtual-time
// units (minimum 1) with per-series capacity cap (DefaultTimelineCap if
// non-positive).
func NewTimeline(every int64, capacity int) *Timeline {
	if every < 1 {
		every = 1
	}
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Timeline{every: every, cap: capacity, series: map[string]*ring{}}
}

// Every returns the sampling cadence in virtual-time units.
func (t *Timeline) Every() int64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Observe appends one sample to the named series, evicting the oldest
// point if the ring is full. A no-op on a nil timeline.
func (t *Timeline) Observe(name string, time int64, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	r, ok := t.series[name]
	if !ok {
		r = &ring{points: make([]TimelinePoint, t.cap)}
		t.series[name] = r
	}
	r.push(TimelinePoint{Time: time, Value: v})
	t.mu.Unlock()
}

// Snapshot returns every series sorted by name, points in time order. A
// nil timeline snapshots to nil.
func (t *Timeline) Snapshot() []TimelineSeries {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.series))
	for n := range t.series {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TimelineSeries, 0, len(names))
	for _, n := range names {
		pts, dropped := t.series[n].snapshot()
		out = append(out, TimelineSeries{Name: n, Every: t.every, Dropped: dropped, Points: pts})
	}
	return out
}
