// Package obs is the unified observability plane: deterministic typed
// instruments (counters, gauges, histograms) behind an optional Registry
// with stable sorted-name snapshots, message-lifecycle spans with causal
// parent IDs and seed-deterministic sampling, and ring-buffered per-tick
// timeseries. Both backends (internal/sim, internal/runtime), the
// interposer stack (internal/reliable, internal/netadv), and the sweep
// engine report through it.
//
// Instruments are usable as zero values, so hosts embed them directly
// (no per-run allocation when observability is off) and register pointers
// into a Registry only when one is supplied. Snapshots are sorted by name,
// so any two snapshots of the same run are byte-identical when rendered.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"failstop/internal/stats"
)

// Kind enumerates instrument kinds. Values start at 1 so the zero Kind is
// invalid and caught by validation.
type Kind int

const (
	// KindCounter is a monotonically increasing int64.
	KindCounter Kind = iota + 1
	// KindGauge is a settable int64 level.
	KindGauge
	// KindHistogram is a sample set summarized at snapshot time.
	KindHistogram
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "invalid(" + strconv.Itoa(int(k)) + ")"
	}
}

// MarshalText encodes the kind as its name, keeping wire snapshots
// readable and stable if the enum is ever reordered.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case KindCounter, KindGauge, KindHistogram:
		return []byte(k.String()), nil
	default:
		return nil, fmt.Errorf("obs: invalid kind %d", int(k))
	}
}

// UnmarshalText decodes a kind name written by MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("obs: unknown kind %q", b)
	}
	return nil
}

// Counter is a monotonically increasing instrument. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be non-negative; this is not checked on the hot path).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable level instrument. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram collects float64 samples and summarizes them at snapshot time.
// The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Summary computes the statistical summary of the samples so far.
func (h *Histogram) Summary() stats.Summary {
	h.mu.Lock()
	xs := make([]float64, len(h.samples))
	copy(xs, h.samples)
	h.mu.Unlock()
	return stats.Summarize(xs)
}

// Metric is one named instrument reading. Counters and gauges carry Value;
// histograms carry Summary. Metric is part of the facade Report and sweep
// wire formats.
//
//sfs:wire
type Metric struct {
	Name    string         `json:"name"`
	Kind    Kind           `json:"kind"`
	Value   int64          `json:"value,omitempty"`
	Summary *stats.Summary `json:"summary,omitempty"`
}

// Metrics is a snapshot: a name-sorted list of metric readings.
type Metrics []Metric

// Sort orders the snapshot by name (the canonical rendering order).
func (ms Metrics) Sort() {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
}

// Get returns the metric with the given name, if present.
func (ms Metrics) Get(name string) (Metric, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns the value of the named counter or gauge, or 0 if absent.
func (ms Metrics) Value(name string) int64 {
	m, _ := ms.Get(name)
	return m.Value
}

// Merge combines snapshots into one name-sorted snapshot: counters and
// gauges with the same name sum; for histograms the first summary seen for
// a name wins. The inputs are not modified.
func Merge(snaps ...Metrics) Metrics {
	byName := map[string]*Metric{}
	var names []string
	for _, ms := range snaps {
		for _, m := range ms {
			if prev, ok := byName[m.Name]; ok {
				prev.Value += m.Value
				if prev.Summary == nil {
					prev.Summary = m.Summary
				}
				continue
			}
			cp := m
			byName[m.Name] = &cp
			names = append(names, m.Name)
		}
	}
	sort.Strings(names)
	out := make(Metrics, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// String renders the snapshot as one "name=value" (or "name=~mean/n" for
// histograms) pair per line, for logs and debugging.
func (ms Metrics) String() string {
	var b []byte
	for _, m := range ms {
		b = append(b, m.Name...)
		b = append(b, '=')
		if m.Kind == KindHistogram && m.Summary != nil {
			b = append(b, fmt.Sprintf("~%.2f/%d", m.Summary.Mean, m.Summary.N)...)
		} else {
			b = strconv.AppendInt(b, m.Value, 10)
		}
		b = append(b, '\n')
	}
	return string(b)
}

// entry is one registered instrument; exactly one of c/g/h is non-nil,
// matching kind.
type entry struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments. Instruments are either created by the
// registry (Counter/Gauge/Histogram get-or-create) or owned elsewhere and
// registered by pointer (RegisterCounter and friends), so hosts can embed
// zero-cost value instruments and expose them only when a registry is
// supplied. A nil *Registry is valid everywhere: lookups return fresh
// unregistered instruments and registrations are no-ops, keeping call
// sites branch-free.
type Registry struct {
	mu    sync.Mutex
	items map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: map[string]*entry{}}
}

// checkName panics unless name is lowercase snake_case: metric names are
// authored constants, so a bad one is a programming error.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			panic(fmt.Sprintf("obs: invalid metric name %q (want lowercase snake_case)", name))
		}
	}
}

func (r *Registry) get(name string, kind Kind) *entry {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.items[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	default:
		panic(fmt.Sprintf("obs: invalid kind %d", int(kind)))
	}
	r.items[name] = e
	return e
}

// Counter returns the named counter, creating it if absent. Panics if the
// name is held by another kind. On a nil registry it returns a fresh
// unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.get(name, KindCounter).c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.get(name, KindGauge).g
}

// Histogram returns the named histogram, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	return r.get(name, KindHistogram).h
}

func (r *Registry) register(name string, e *entry) {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.items[name]; ok {
		panic(fmt.Sprintf("obs: duplicate registration of metric %q", name))
	}
	r.items[name] = e
}

// RegisterCounter exposes an externally-owned counter under name. Panics
// on a duplicate name; a no-op on a nil registry.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil {
		return
	}
	r.register(name, &entry{kind: KindCounter, c: c})
}

// RegisterGauge exposes an externally-owned gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil {
		return
	}
	r.register(name, &entry{kind: KindGauge, g: g})
}

// RegisterHistogram exposes an externally-owned histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil {
		return
	}
	r.register(name, &entry{kind: KindHistogram, h: h})
}

// Snapshot reads every instrument and returns a name-sorted Metrics. A nil
// registry snapshots to nil.
func (r *Registry) Snapshot() Metrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.items))
	entries := make([]*entry, 0, len(r.items))
	for n := range r.items {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		entries = append(entries, r.items[n])
	}
	r.mu.Unlock()

	out := make(Metrics, 0, len(names))
	for i, e := range entries {
		m := Metric{Name: names[i], Kind: e.kind}
		switch e.kind {
		case KindCounter:
			m.Value = e.c.Value()
		case KindGauge:
			m.Value = e.g.Value()
		case KindHistogram:
			s := e.h.Summary()
			m.Summary = &s
		default:
			// unreachable: get/register only admit valid kinds
		}
		out = append(out, m)
	}
	return out
}
