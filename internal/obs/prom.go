package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with median/p95/p99/p999 quantiles plus _sum
// and _count. Input order is preserved, so a sorted Metrics renders
// deterministically.
func WritePrometheus(w io.Writer, ms Metrics) error {
	bw := bufio.NewWriter(w)
	for _, m := range ms {
		switch m.Kind {
		case KindCounter, KindGauge:
			typ := "counter"
			if m.Kind == KindGauge {
				typ = "gauge"
			}
			bw.WriteString("# TYPE " + m.Name + " " + typ + "\n")
			bw.WriteString(m.Name + " " + strconv.FormatInt(m.Value, 10) + "\n")
		case KindHistogram:
			bw.WriteString("# TYPE " + m.Name + " summary\n")
			if m.Summary == nil {
				bw.WriteString(m.Name + "_count 0\n")
				continue
			}
			s := m.Summary
			writeQuantile := func(q string, v float64) {
				bw.WriteString(m.Name + `{quantile="` + q + `"} ` + promFloat(v) + "\n")
			}
			writeQuantile("0.5", s.Median)
			writeQuantile("0.95", s.P95)
			writeQuantile("0.99", s.P99)
			writeQuantile("0.999", s.P999)
			bw.WriteString(m.Name + "_sum " + promFloat(s.Mean*float64(s.N)) + "\n")
			bw.WriteString(m.Name + "_count " + strconv.Itoa(s.N) + "\n")
		default:
			// skip invalid kinds rather than emit unparsable text
		}
	}
	return bw.Flush()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
