package obs

import (
	"sync"

	"failstop/internal/model"
)

// SpanKind names a step of a message's lifecycle (or a detection event
// hung off it). Kinds are strings on the wire so traces stay greppable.
type SpanKind string

// The lifecycle: a send span roots a message; a fate span records the
// fault plane's verdict; each surviving copy gets an enqueue span; the
// copy ends in a deliver or drop span. Retransmit spans hang off the
// reliable layer's resends; suspect and crash-confirm spans tie detection
// back to the delivery that caused it via their parent IDs.
const (
	SpanSend         SpanKind = "send"
	SpanFate         SpanKind = "fate"
	SpanEnqueue      SpanKind = "enqueue"
	SpanDeliver      SpanKind = "deliver"
	SpanDrop         SpanKind = "drop"
	SpanRetransmit   SpanKind = "retransmit"
	SpanSuspect      SpanKind = "suspect"
	SpanCrashConfirm SpanKind = "crash-confirm"
	// SpanRestart records a crash-recovery restart (internal/recovery):
	// the note carries the recovery mode and, under durable recovery, the
	// snapshot size restored. Detection-grade: never sampled out.
	SpanRestart SpanKind = "restart"
	// SpanByzDetect records a Byzantine-misbehavior conviction by the
	// validation layer (internal/byz): Proc is the convicting process,
	// Peer the culprit, and the note carries the reason ("bad-mac",
	// "equivocation", "replay"). Detection-grade: never sampled out.
	SpanByzDetect SpanKind = "byz-detect"
)

// Known reports whether k is a kind this package defines. Readers use it
// to validate traces without rejecting kinds added by future versions at
// parse time.
func (k SpanKind) Known() bool {
	switch k {
	case SpanSend, SpanFate, SpanEnqueue, SpanDeliver, SpanDrop,
		SpanRetransmit, SpanSuspect, SpanCrashConfirm, SpanRestart,
		SpanByzDetect:
		return true
	}
	return false
}

// Span is one lifecycle step. ID is unique and increasing within a
// recorder; Parent is the causally preceding span (0 for roots): a send
// issued from inside a message handler parents to that delivery's span,
// which is how cross-process causal chains arise.
//
//sfs:wire
type Span struct {
	ID     int64        `json:"id"`
	Parent int64        `json:"parent,omitempty"`
	Time   int64        `json:"time,omitempty"`
	Kind   SpanKind     `json:"kind"`
	Proc   model.ProcID `json:"proc,omitempty"`
	Peer   model.ProcID `json:"peer,omitempty"`
	Msg    model.MsgID  `json:"msg,omitempty"`
	Tag    string       `json:"tag,omitempty"`
	Target model.ProcID `json:"target,omitempty"`
	Note   string       `json:"note,omitempty"`
}

// SpanRecorder collects spans with sequential IDs and decides, per
// message, whether its lifecycle is sampled. Sampling is a pure function
// of (seed, message id) — not of recording order — so two runs of the same
// (spec, seed) record byte-identical span streams, and the live runtime's
// concurrent sends sample the same messages the simulator would. A nil
// recorder samples nothing and records nothing.
type SpanRecorder struct {
	seed uint64
	rate float64

	mu    sync.Mutex
	next  int64
	spans []Span
}

// NewSpanRecorder returns a recorder sampling message lifecycles at rate
// (clamped to [0,1]) under the given seed. Detection spans (suspect,
// crash-confirm) are always recorded regardless of rate.
func NewSpanRecorder(seed int64, rate float64) *SpanRecorder {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &SpanRecorder{seed: uint64(seed), rate: rate}
}

// Rate returns the sampling rate the recorder was built with.
func (r *SpanRecorder) Rate() float64 {
	if r == nil {
		return 0
	}
	return r.rate
}

// mixSpan is splitmix64's output mix, the same generator family the fault
// plane uses; one application turns (seed, msg) into an unbiased word.
func mixSpan(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether msg's lifecycle is recorded under this
// recorder's (seed, rate).
func (r *SpanRecorder) Sampled(msg model.MsgID) bool {
	if r == nil || r.rate <= 0 {
		return false
	}
	if r.rate >= 1 {
		return true
	}
	u := mixSpan(r.seed ^ mixSpan(uint64(msg)))
	return float64(u>>11)/(1<<53) < r.rate
}

// Record assigns the next span ID, stores the span, and returns the ID
// (0 on a nil recorder). The caller sets every other field, including
// Parent and Time.
func (r *SpanRecorder) Record(s Span) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.next++
	s.ID = r.next
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s.ID
}

// Len returns the number of spans recorded so far.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of the recorded spans in ID order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}
