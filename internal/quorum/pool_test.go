package quorum

import (
	"testing"

	"failstop/internal/model"
	"failstop/internal/topo"
)

func TestPoolGlobal(t *testing.T) {
	for _, top := range []*topo.Topology{nil, topo.MustNew(topo.Spec{}, 10)} {
		p := PoolOf(top, 3, 10, 3)
		if p.Partial() {
			t.Fatalf("full-mesh pool reports Partial")
		}
		if p.Size() != 10 {
			t.Errorf("Size = %d, want 10", p.Size())
		}
		if p.MinSize() != MinSize(10, 3) {
			t.Errorf("MinSize = %d, want %d", p.MinSize(), MinSize(10, 3))
		}
		if !p.Counts(3) || !p.Counts(10) || p.Counts(11) || p.Counts(0) {
			t.Error("global pool membership wrong")
		}
	}
}

func TestPoolPartial(t *testing.T) {
	top := topo.MustNew(topo.Spec{Kind: topo.KindGossip, Fanout: 3, Seed: 5}, 50)
	self := model.ProcID(7)
	p := PoolOf(top, self, 50, 3)
	if !p.Partial() {
		t.Fatal("gossip pool not Partial")
	}
	deg := top.Degree(self)
	if p.Size() != deg+1 {
		t.Errorf("Size = %d, want degree+1 = %d", p.Size(), deg+1)
	}
	if p.MinSize() != MinSize(deg+1, 3) {
		t.Errorf("MinSize = %d, want %d", p.MinSize(), MinSize(deg+1, 3))
	}
	if !p.Counts(self) {
		t.Error("self must always count")
	}
	counted := 0
	for q := model.ProcID(1); int(q) <= 50; q++ {
		if q == self {
			continue
		}
		if p.Counts(q) != top.Contains(self, q) {
			t.Errorf("Counts(%d) = %v disagrees with adjacency", q, p.Counts(q))
		}
		if p.Counts(q) {
			counted++
		}
	}
	if counted != deg {
		t.Errorf("counted %d neighbors, want %d", counted, deg)
	}
}
