package quorum

import (
	"failstop/internal/model"
	"failstop/internal/topo"
)

// Pool is one process's quorum membership: the processes whose SUSP
// testimony counts toward its detections, and the Theorem 7 minimum over
// that pool. Under the paper's complete graph the pool is all n processes
// and MinSize is the familiar n(t-1)/t + 1. Under a partial topology
// (internal/topo) the pool is the process's neighborhood plus itself, and
// quorums complete over more than m(t-1)/t of the m pool members — the
// partial-quorum reading that makes N in the 10⁴–10⁶ range simulable.
//
// The intersection guarantee is correspondingly scoped: two quorums drawn
// from the same pool intersect in a correct pool member as long as at most
// t of the pool fail, which is the Witness property the §5 safety argument
// needs for the failed-before cycles a neighborhood can witness. Crossing
// neighborhoods, detections rely on the topology staying connected — the
// same eventual-connectivity assumption FS1 already makes under lossy
// links.
type Pool struct {
	top  *topo.Topology // nil or full: the global pool
	self model.ProcID
	n    int
	min  int
}

// PoolOf resolves process self's quorum pool under topology top (nil means
// the complete graph) with n processes tolerating t failures.
func PoolOf(top *topo.Topology, self model.ProcID, n, t int) Pool {
	p := Pool{self: self, n: n}
	if top != nil && !top.IsFull() {
		p.top = top
		p.min = MinSize(top.Degree(self)+1, t)
	} else {
		p.min = MinSize(n, t)
	}
	return p
}

// Size returns the pool's member count (self included).
func (p Pool) Size() int {
	if p.top == nil {
		return p.n
	}
	return p.top.Degree(p.self) + 1
}

// MinSize returns the Theorem 7 minimum quorum size over this pool.
func (p Pool) MinSize() int { return p.min }

// Counts reports whether testimony from q counts toward this pool's
// quorums. Self always counts; under the global pool every process does.
func (p Pool) Counts(q model.ProcID) bool {
	if q == p.self {
		return true
	}
	if p.top == nil {
		return q >= 1 && int(q) <= p.n
	}
	return p.top.Contains(p.self, q)
}

// Partial reports whether the pool is a strict neighborhood rather than
// the global membership.
func (p Pool) Partial() bool { return p.top != nil }
