package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"failstop/internal/model"
)

func TestMinSizeKnownValues(t *testing.T) {
	tests := []struct {
		n, t, want int
	}{
		{1, 1, 1},
		{5, 1, 1},     // t=1: unilateral detection is safe
		{4, 2, 3},     // > 4*1/2 = 2 -> 3
		{5, 2, 3},     // > 2.5 -> 3
		{9, 3, 7},     // > 6 -> 7
		{10, 3, 7},    // > 6.67 -> 7
		{16, 4, 13},   // > 12 -> 13
		{17, 4, 13},   // > 12.75 -> 13
		{100, 10, 91}, // > 90 -> 91
		{7, 2, 4},     // > 3.5 -> 4
		{2, 2, 2},     // > 1 -> 2
	}
	for _, tt := range tests {
		if got := MinSize(tt.n, tt.t); got != tt.want {
			t.Errorf("MinSize(%d, %d) = %d, want %d", tt.n, tt.t, got, tt.want)
		}
	}
}

// Property: MinSize is the smallest integer q with q*t > n*(t-1).
func TestMinSizeIsTight(t *testing.T) {
	prop := func(nRaw, tRaw uint8) bool {
		n := int(nRaw%200) + 1
		tt := int(tRaw%20) + 1
		q := MinSize(n, tt)
		return q*tt > n*(tt-1) && (q-1)*tt <= n*(tt-1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMinSizePanics(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {-3, 2}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MinSize(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			MinSize(bad[0], bad[1])
		}()
	}
}

func TestMaxTolerable(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0},
		{2, 1},
		{4, 1}, // need n > t^2: 4 > 1 ok, 4 > 4 no
		{5, 2},
		{9, 2},
		{10, 3},
		{16, 3},
		{17, 4},
		{101, 10},
	}
	for _, tt := range tests {
		if got := MaxTolerable(tt.n); got != tt.want {
			t.Errorf("MaxTolerable(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// Property: MaxTolerable(n) is the largest t with n > t^2 (Corollary 8).
func TestMaxTolerableMatchesCorollary8(t *testing.T) {
	for n := 1; n <= 500; n++ {
		tt := MaxTolerable(n)
		if !(n > tt*tt) {
			t.Fatalf("n=%d: t=%d violates n > t^2", n, tt)
		}
		if n > (tt+1)*(tt+1) {
			t.Fatalf("n=%d: t=%d not maximal", n, tt)
		}
	}
}

// Property: Progresses(n, t) iff n > t^2 (Corollary 8, both directions).
func TestProgressesEquivalentToCorollary8(t *testing.T) {
	for n := 1; n <= 200; n++ {
		for tt := 1; tt <= 15; tt++ {
			got := Progresses(n, tt)
			want := n > tt*tt
			if got != want {
				t.Errorf("Progresses(%d, %d) = %v, want %v", n, tt, got, want)
			}
		}
	}
}

func setOf(ps ...model.ProcID) map[model.ProcID]bool {
	m := make(map[model.ProcID]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func TestWitness(t *testing.T) {
	tests := []struct {
		name    string
		quorums []map[model.ProcID]bool
		holds   bool
	}{
		{"empty family", nil, true},
		{"single", []map[model.ProcID]bool{setOf(1, 2)}, true},
		{"common witness", []map[model.ProcID]bool{setOf(1, 2, 3), setOf(3, 4), setOf(2, 3, 5)}, true},
		{"pairwise but not global", []map[model.ProcID]bool{setOf(1, 2), setOf(2, 3), setOf(3, 1)}, false},
		{"disjoint", []map[model.ProcID]bool{setOf(1), setOf(2)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w, ok := Witness(tt.quorums)
			if ok != tt.holds {
				t.Fatalf("Witness = %v, want %v", ok, tt.holds)
			}
			if ok && len(tt.quorums) > 0 {
				for i, q := range tt.quorums {
					if !q[w] {
						t.Errorf("claimed witness %d not in quorum %d", w, i)
					}
				}
			}
		})
	}
}

func TestEmptyIntersectionFamily(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{4, 2}, {9, 3}, {10, 3}, {16, 4}, {25, 5}, {7, 2}} {
		fam := EmptyIntersectionFamily(tc.n, tc.t)
		if fam == nil {
			t.Fatalf("no family for n=%d t=%d", tc.n, tc.t)
		}
		if _, ok := Witness(fam); ok {
			t.Errorf("n=%d t=%d: family has a witness, want empty intersection", tc.n, tc.t)
		}
		// Every quorum in the family must have size >= n - ceil(n/t), i.e.
		// at most MinSize-1 in the tight cases: the family demonstrates that
		// quorums of size <= n(t-1)/t cannot guarantee W.
		for i, q := range fam {
			if len(q) > tc.n*(tc.t-1)/tc.t {
				t.Errorf("n=%d t=%d: quorum %d has size %d > n(t-1)/t = %d",
					tc.n, tc.t, i, len(q), tc.n*(tc.t-1)/tc.t)
			}
		}
	}
}

func TestEmptyIntersectionFamilyDegenerate(t *testing.T) {
	if fam := EmptyIntersectionFamily(0, 3); fam != nil {
		t.Error("n=0 must yield nil")
	}
	if fam := EmptyIntersectionFamily(5, 0); fam != nil {
		t.Error("t=0 must yield nil")
	}
	// t=1: a single window excludes everyone only if y >= n, leaving an
	// empty quorum; the family trivially has empty intersection.
	fam := EmptyIntersectionFamily(5, 1)
	if fam != nil {
		if _, ok := Witness(fam); ok {
			t.Error("t=1 family must have empty intersection if returned")
		}
	}
}

// Property: any family of t quorums each of size MinSize(n,t) over 1..n has
// a nonempty intersection — the positive direction of Theorem 7, checked by
// a greedy adversarial cover: even excluding each quorum's complement
// windows cannot cover all processes.
func TestMinSizeGuaranteesWitnessAdversarially(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for tt := 2; tt <= 6; tt++ {
			q := MinSize(n, tt)
			// The adversary excludes n-q processes per quorum; t quorums can
			// exclude at most t*(n-q) processes in total. Witness is
			// guaranteed iff t*(n-q) < n.
			if tt*(n-q) >= n {
				t.Errorf("n=%d t=%d: quorums of size %d can be made witness-free", n, tt, q)
			}
		}
	}
}

func TestSubfamiliesIntersect(t *testing.T) {
	pairwise := []map[model.ProcID]bool{
		setOf(1, 2), setOf(2, 3), setOf(3, 1),
	}
	if !SubfamiliesIntersect(pairwise, 2) {
		t.Error("pairwise-intersecting family must pass t=2")
	}
	if SubfamiliesIntersect(pairwise, 3) {
		t.Error("family with empty triple intersection must fail t=3")
	}
	disjoint := []map[model.ProcID]bool{setOf(1), setOf(2)}
	if SubfamiliesIntersect(disjoint, 2) {
		t.Error("disjoint pair must fail t=2")
	}
	// Degenerate inputs.
	if !SubfamiliesIntersect(nil, 3) {
		t.Error("empty family trivially intersects")
	}
	if !SubfamiliesIntersect(disjoint, 0) {
		t.Error("t=0 trivially holds")
	}
	if !SubfamiliesIntersect(disjoint, 1) {
		t.Error("singleton subfamilies always intersect (nonempty sets)")
	}
	single := []map[model.ProcID]bool{setOf(1, 2)}
	if !SubfamiliesIntersect(single, 5) {
		t.Error("t larger than the family must clamp")
	}
}

// Property: quorums of size MinSize(n,t) always pass the t-subfamily check
// (Theorem 7, positive direction) regardless of which members they contain.
func TestQuickMinSizeFamiliesAlwaysIntersect(t *testing.T) {
	prop := func(seed int64, nRaw, tRaw uint8) bool {
		n := int(nRaw%12) + 4
		tt := int(tRaw%3) + 2
		q := MinSize(n, tt)
		if q > n {
			return true
		}
		rng := newTestRand(seed)
		fam := make([]map[model.ProcID]bool, tt+2)
		for i := range fam {
			// A random q-subset of 1..n.
			perm := rng.Perm(n)
			s := make(map[model.ProcID]bool, q)
			for _, idx := range perm[:q] {
				s[model.ProcID(idx+1)] = true
			}
			fam[i] = s
		}
		return SubfamiliesIntersect(fam, tt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
