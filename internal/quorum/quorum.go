// Package quorum implements the quorum arithmetic of §4: the Witness
// property, the minimum fixed quorum size of Theorem 7, the replication
// bound of Corollary 8, and the adversarial quorum-set family used in the
// Theorem 7 lower-bound proof.
package quorum

import (
	"fmt"
	"sort"

	"failstop/internal/model"
)

// MinSize returns the minimum fixed quorum size that guarantees the Witness
// property when up to t failures (including erroneous detections) can occur
// among n processes: the smallest integer strictly greater than n(t-1)/t
// (Theorem 7).
//
// MinSize panics if n < 1 or t < 1; t = 1 yields 1 (a single process may
// detect unilaterally, because a failed-before cycle needs at least two
// crashes).
func MinSize(n, t int) int {
	if n < 1 {
		panic(fmt.Sprintf("quorum: n = %d, must be >= 1", n))
	}
	if t < 1 {
		panic(fmt.Sprintf("quorum: t = %d, must be >= 1", t))
	}
	// Smallest integer > n(t-1)/t  ==  floor(n(t-1)/t) + 1.
	return n*(t-1)/t + 1
}

// MaxTolerable returns the largest t such that a one-round protocol using
// minimum-size quorums makes progress with n processes: by Corollary 8 this
// requires n > t², so the answer is ⌈√n⌉ - 1 computed exactly.
func MaxTolerable(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("quorum: n = %d, must be >= 1", n))
	}
	t := 0
	for (t+1)*(t+1) < n {
		t++
	}
	return t
}

// Progresses reports whether a one-round protocol with minimum quorums can
// complete detections when t of the n processes may be down: the quorum
// must be reachable from the n-t processes that remain, i.e.
// n - t >= MinSize(n, t). By Corollary 8 this is equivalent to n > t².
func Progresses(n, t int) bool {
	return n-t >= MinSize(n, t)
}

// Witness reports whether the family of quorum sets satisfies the Witness
// property W: the intersection of all quorum sets is nonempty (§4). The
// family maps each detection to the set of processes whose acknowledgements
// the detector collected.
func Witness(quorums []map[model.ProcID]bool) (model.ProcID, bool) {
	if len(quorums) == 0 {
		return model.None, true
	}
	// Intersect all sets against the first, candidates in ascending order
	// so the reported witness is the smallest common member, not whichever
	// the map yields first.
	cands := make([]model.ProcID, 0, len(quorums[0]))
	for w := range quorums[0] {
		cands = append(cands, w)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, w := range cands {
		inAll := true
		for _, q := range quorums[1:] {
			if !q[w] {
				inAll = false
				break
			}
		}
		if inAll {
			return w, true
		}
	}
	return model.None, false
}

// SubfamiliesIntersect reports whether every subfamily of at most t of the
// given quorum sets has a nonempty intersection. This is the form of the
// Witness property that Theorem 7's quorum size actually guarantees — and
// all that sFS2b needs, because a failed-before cycle involves at most t
// processes (at most t crashes occur), hence at most t quorum sets.
//
// A family may have empty global intersection while every t-subfamily
// intersects; such a family is still safe.
func SubfamiliesIntersect(quorums []map[model.ProcID]bool, t int) bool {
	if t <= 0 || len(quorums) <= 1 {
		return true
	}
	if t > len(quorums) {
		t = len(quorums)
	}
	idx := make([]int, t)
	var rec func(pos, start int) bool
	rec = func(pos, start int) bool {
		if pos == t {
			sub := make([]map[model.ProcID]bool, t)
			for i, q := range idx {
				sub[i] = quorums[q]
			}
			_, okW := Witness(sub)
			return okW
		}
		for i := start; i <= len(quorums)-(t-pos); i++ {
			idx[pos] = i
			if !rec(pos+1, i+1) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// EmptyIntersectionFamily constructs the Theorem 7 adversarial family: t
// quorum sets over processes 1..n, each of size n - ⌈n/t⌉, such that every
// process is excluded from at least one set and the intersection of the
// family is therefore empty. It returns nil if no such family exists for
// the given sizes (i.e. when the per-set exclusion windows cannot cover all
// n processes).
//
// This is the construction from the proof of Theorem 7:
// Q_1 = P - {1..y}, Q_2 = P - {y+1..2y}, ..., with y = ⌈n/t⌉.
func EmptyIntersectionFamily(n, t int) []map[model.ProcID]bool {
	if n < 1 || t < 1 {
		return nil
	}
	y := (n + t - 1) / t // ⌈n/t⌉, so that t windows of y processes cover 1..n
	if y >= n {
		// Each exclusion window swallows every process: quorums are empty,
		// and the intersection is trivially empty (only meaningful for t=1
		// or tiny n; callers treat it as "no interesting family").
		return nil
	}
	fam := make([]map[model.ProcID]bool, 0, t)
	for i := 0; i < t; i++ {
		lo, hi := i*y+1, (i+1)*y
		if hi > n {
			// The paper's final window is {n-y+1 .. n}: shifted to keep the
			// excluded set at exactly y processes, overlapping its
			// predecessor rather than shrinking.
			lo, hi = n-y+1, n
		}
		q := make(map[model.ProcID]bool, n-y)
		for p := 1; p <= n; p++ {
			if p < lo || p > hi {
				q[model.ProcID(p)] = true
			}
		}
		fam = append(fam, q)
	}
	return fam
}
