package lastfail_test

import (
	"testing"

	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/lastfail"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

func recorders(n int) (func(model.ProcID) core.App, []*lastfail.Store) {
	stores := make([]*lastfail.Store, n+1)
	return func(p model.ProcID) core.App {
		s := lastfail.NewStore(p)
		stores[p] = s
		return &lastfail.Recorder{Stable: s}
	}, stores
}

// TestSection6AnomalyUnderCheapModel reproduces the exact two-process story
// of §6: process 1 falsely detects 2's failure and then crashes; process 2
// detects 1's failure, proceeds with its work, and finally crashes. A
// recovering process 1 would wrongly conclude it was the last to fail.
func TestSection6AnomalyUnderCheapModel(t *testing.T) {
	apps, stores := recorders(2)
	delay := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if from == 1 && to == 2 {
			return 100 // "2 failed" crawls: 2 lives on for a while
		}
		return 10
	}
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 2, Seed: 1, Delay: delay},
		Det: core.Config{N: 2, T: 2, Protocol: core.Cheap},
		App: apps,
	})
	c.SuspectAt(1, 1, 2) // 1 falsely detects 2
	c.SuspectAt(5, 2, 1) // 2 detects 1
	res := c.Run()

	actual, total := lastfail.ActualLast(res.History)
	if !total {
		t.Fatal("expected a total failure")
	}
	if actual != 2 {
		t.Fatalf("actual last = %d, want 2 (the §6 story)", actual)
	}
	v := lastfail.Recover([]*lastfail.Store{stores[1], stores[2]})
	if len(v.Candidates) != 2 {
		t.Fatalf("candidates = %v, want both (the cycle)", v.Candidates)
	}
	if !lastfail.Misleading(v, actual) {
		t.Error("recovery must be misleading under the cheap model")
	}
}

// Under sFS the same double suspicion cannot complete both detections:
// recovery is never misleading.
func TestNoMisleadingRecoveryUnderSFS(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		apps, stores := recorders(5)
		c := cluster.New(cluster.Options{
			Sim: sim.Config{N: 5, Seed: seed, MinDelay: 1, MaxDelay: 20},
			Det: core.Config{N: 5, T: 2, Protocol: core.SimulatedFailStop},
			App: apps,
		})
		c.SuspectAt(1, 1, 2)
		c.SuspectAt(1, 2, 1)
		res := c.Run()
		// Crash all survivors to model the eventual total failure.
		// (Stable stores already hold their detection views.)
		actualFirst, _ := lastfail.ActualLast(res.History)
		_ = actualFirst
		for p := model.ProcID(1); p <= 5; p++ {
			if stores[p] != nil && !stores[p].Crashed {
				stores[p].Crashed = true
			}
		}
		// Ground truth: the protocol's victims crashed during the run; the
		// survivors "crash" afterwards, so any candidate naming a victim is
		// misleading. Under sFS, mutual detection is impossible, so at most
		// one of {1,2} appears in any view, and no *victim* can be a
		// candidate (it would need to have detected its own detector's
		// failure, completing a cycle).
		sl := make([]*lastfail.Store, 0, 5)
		for p := model.ProcID(1); p <= 5; p++ {
			sl = append(sl, stores[p])
		}
		v := lastfail.Recover(sl)
		for _, cand := range v.Candidates {
			if res.History.CrashIndex(cand) >= 0 {
				t.Errorf("seed %d: in-run victim %d qualifies as last-to-fail", seed, cand)
			}
		}
	}
}

// A clean sequential-failure run under sFS: detections recorded before each
// crash give a correct (or safely unknown) verdict.
func TestSequentialFailuresRecovery(t *testing.T) {
	apps, stores := recorders(10)
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: 10, Seed: 3, MinDelay: 1, MaxDelay: 5},
		Det: core.Config{N: 10, T: 3, Protocol: core.SimulatedFailStop},
		App: apps,
	})
	// Three genuine crashes, detected in sequence.
	c.CrashAt(10, 1)
	c.SuspectAt(30, 2, 1)
	c.CrashAt(200, 2)
	c.SuspectAt(230, 3, 2)
	c.CrashAt(400, 3)
	c.SuspectAt(430, 4, 3)
	res := c.Run()
	for p := model.ProcID(4); p <= 10; p++ {
		st := stores[p]
		if !st.Detected[1] || !st.Detected[2] || !st.Detected[3] {
			t.Fatalf("process %d view incomplete: %v", p, st.Detected)
		}
	}
	// Total failure: survivors die without further detections.
	for p := model.ProcID(4); p <= 10; p++ {
		stores[p].Crashed = true
	}
	sl := make([]*lastfail.Store, 0, 10)
	for p := model.ProcID(1); p <= 10; p++ {
		sl = append(sl, stores[p])
	}
	v := lastfail.Recover(sl)
	// No survivor detected the other survivors, so recovery must say
	// "unknown" — the §6 fallback of waiting for more processes — rather
	// than ever naming a wrong process.
	if v.Known {
		t.Errorf("verdict should be unknown, got %d", v.Last)
	}
	if lastfail.Misleading(v, 10) && len(v.Candidates) > 0 {
		t.Errorf("candidates %v mislead", v.Candidates)
	}
	_ = res
}

func TestRecoverPureLogic(t *testing.T) {
	mk := func(p model.ProcID, crashed bool, detected ...model.ProcID) *lastfail.Store {
		s := lastfail.NewStore(p)
		s.Crashed = crashed
		for _, d := range detected {
			s.Detected[d] = true
		}
		return s
	}
	// Unique full view: known and correct.
	v := lastfail.Recover([]*lastfail.Store{
		mk(1, true),
		mk(2, true, 1),
		mk(3, true, 1, 2),
	})
	if !v.Known || v.Last != 3 {
		t.Errorf("verdict = %+v, want Known last=3", v)
	}
	if !lastfail.Correct(v, 3) || lastfail.Misleading(v, 3) {
		t.Error("verdict must be correct and not misleading")
	}
	// Cycle: both candidates, misleading.
	v2 := lastfail.Recover([]*lastfail.Store{
		mk(1, true, 2),
		mk(2, true, 1),
	})
	if v2.Known || len(v2.Candidates) != 2 {
		t.Errorf("verdict = %+v, want two candidates", v2)
	}
	if !lastfail.Misleading(v2, 2) {
		t.Error("cyclic views must mislead")
	}
	if !lastfail.Correct(v2, 2) {
		t.Error("unknown verdicts are trivially consistent")
	}
	// Live processes are ignored.
	v3 := lastfail.Recover([]*lastfail.Store{
		mk(1, true),
		mk(2, false, 1),
	})
	if v3.Known {
		t.Errorf("live process must not be a candidate: %+v", v3)
	}
	// Nil stores tolerated.
	v4 := lastfail.Recover([]*lastfail.Store{nil, mk(2, true)})
	if !v4.Known || v4.Last != 2 {
		t.Errorf("verdict = %+v", v4)
	}
}

func TestActualLast(t *testing.T) {
	h := model.History{
		model.Crash(2),
		model.Crash(1),
	}.Normalize()
	last, total := lastfail.ActualLast(h)
	if last != 1 || !total {
		t.Errorf("ActualLast = %d,%v want 1,true", last, total)
	}
	partial := model.History{
		model.Crash(2),
		model.Internal(1, "alive", model.None),
	}.Normalize()
	if _, total := lastfail.ActualLast(partial); total {
		t.Error("partial failure reported as total")
	}
}
