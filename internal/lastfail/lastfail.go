// Package lastfail implements §6's canonical sFS2b-sensitive application:
// determining the last process to fail (Skeen, "Determining the last
// process to fail", ACM TOCS 1985).
//
// Every process records the failures it detects — its view of the
// failed-before relation — in stable storage that survives its crash.
// After a total failure, recovery examines the persisted views: the last
// process to fail is one that detected the failure of every other process
// before crashing.
//
// The paper's point (§6): if cyclic failure detection is possible (the
// cheap model), the problem is unsolvable — in the two-process anomaly,
// process 1 falsely detects 2 and crashes; 2 detects 1, works on, and
// finally crashes; a recovering 1 wrongly concludes it was last. Under sFS
// the failed-before relation is acyclic, so at most one process can have
// detected all others, and when one exists it really was the last to fail.
//
// Recovery is modeled outside the crash-no-recovery formal model, exactly
// as §6 itself does: stable storage is a Store the harness retains across
// the simulated crash.
package lastfail

import (
	"sort"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
)

// Store is one process's stable storage: it survives the crash of the
// process (the harness allocates it outside the simulation).
type Store struct {
	// Self is the owning process.
	Self model.ProcID
	// Detected records every failure detection the process executed.
	Detected map[model.ProcID]bool
	// Crashed records whether the process crashed during the run.
	Crashed bool
}

// NewStore allocates stable storage for process p.
func NewStore(p model.ProcID) *Store {
	return &Store{Self: p, Detected: make(map[model.ProcID]bool)}
}

// Recorder is the core.App that writes detections to stable storage.
type Recorder struct {
	// Stable is this process's store. Required.
	Stable *Store
}

var (
	_ core.App              = (*Recorder)(nil)
	_ core.AppCrashListener = (*Recorder)(nil)
)

// Init implements core.App.
func (r *Recorder) Init(ctx node.Context, d *core.Detector) {
	if r.Stable == nil {
		panic("lastfail: Recorder needs a Store")
	}
}

// OnFailed implements core.App: persist the detection.
func (r *Recorder) OnFailed(ctx node.Context, d *core.Detector, j model.ProcID) {
	r.Stable.Detected[j] = true
}

// OnAppMessage implements core.App (no application traffic).
func (r *Recorder) OnAppMessage(node.Context, *core.Detector, model.ProcID, []byte) {}

// OnTimer implements core.App (no timers).
func (r *Recorder) OnTimer(node.Context, *core.Detector, string) {}

// OnCrash implements core.AppCrashListener: stable storage records that the
// process went down.
func (r *Recorder) OnCrash(ctx node.Context, d *core.Detector) {
	r.Stable.Crashed = true
}

// Verdict is the outcome of recovery analysis.
type Verdict struct {
	// Known reports whether recovery could determine a unique last process
	// to fail from the persisted views.
	Known bool
	// Last is that process when Known.
	Last model.ProcID
	// Candidates lists every process whose view qualifies it as "detected
	// all other crashed processes". Under sFS there is at most one; under
	// the cheap model a cycle can produce several — the §6 anomaly.
	Candidates []model.ProcID
}

// Recover runs Skeen-style recovery over the persisted stores of a total
// failure (every process crashed): a process qualifies as last-to-fail if
// its view records the failure of every other crashed process. If some
// store shows a process that never crashed, the failure was not total and
// Recover returns an unknown verdict with no candidates — asking "who
// failed last" is premature.
func Recover(stores []*Store) Verdict {
	for _, s := range stores {
		if s != nil && !s.Crashed {
			return Verdict{}
		}
	}
	var candidates []model.ProcID
	for _, s := range stores {
		if s == nil || !s.Crashed {
			continue
		}
		all := true
		for _, o := range stores {
			if o == nil || o.Self == s.Self {
				continue
			}
			if o.Crashed && !s.Detected[o.Self] {
				all = false
				break
			}
		}
		if all {
			candidates = append(candidates, s.Self)
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] < candidates[b] })
	v := Verdict{Candidates: candidates}
	if len(candidates) == 1 {
		v.Known, v.Last = true, candidates[0]
	}
	return v
}

// ActualLast returns the process whose crash event is the last in the
// history — the ground truth a recovery verdict is judged against — and
// whether every process crashed (total failure).
func ActualLast(h model.History) (model.ProcID, bool) {
	n := h.Processes()
	last := model.None
	lastIdx := -1
	crashes := 0
	for i, e := range h {
		if e.Kind == model.KindCrash {
			crashes++
			if i > lastIdx {
				lastIdx, last = i, e.Proc
			}
		}
	}
	return last, crashes == n
}

// Correct reports whether the recovery verdict is consistent with the
// ground truth: an unknown verdict is trivially consistent (recovery must
// wait for more processes, which is §6's fallback), and a known verdict
// must name the actual last crasher.
func Correct(v Verdict, actual model.ProcID) bool {
	if !v.Known {
		return true
	}
	return v.Last == actual
}

// Misleading reports whether the persisted views would mislead an
// early-recovering process: some candidate other than the actual last
// crasher exists. This captures the §6 anomaly, where process 1 recovers
// first and wrongly concludes it failed last, without requiring the
// candidate set to be a singleton.
func Misleading(v Verdict, actual model.ProcID) bool {
	for _, c := range v.Candidates {
		if c != actual {
			return true
		}
	}
	return false
}
