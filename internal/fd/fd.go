// Package fd implements the FS1 mechanism the paper assumes "is provided by
// the underlying system": periodic heartbeats plus a timeout-based
// suspector. When process i has not heard a heartbeat from j within the
// timeout, i (perhaps erroneously) suspects j and hands the suspicion to
// the detection protocol of internal/core.
//
// Theorem 1 lives here operationally: in an asynchronous network no choice
// of timeout implements FS. A finite timeout produces false suspicions
// under adversarial delay (violating FS2 if detections were taken at face
// value); an infinite timeout never suspects and violates FS1. Experiment
// E1 sweeps exactly this trade-off.
//
// The package also provides an adaptive suspector (mean + k·stddev of
// observed inter-arrival times, a simplified accrual detector) as the kind
// of practical refinement the paper's discussion anticipates; it shifts the
// trade-off but cannot escape it.
package fd

import (
	"fmt"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
)

// TagHeartbeat marks heartbeat messages.
const TagHeartbeat = "HB"

const (
	timerBeat  = "fd/beat"
	timerCheck = "fd/check"
)

// Heartbeat is a core.Component implementing FS1: it broadcasts a heartbeat
// every Interval ticks and suspects any process from which no heartbeat has
// arrived for Timeout ticks.
type Heartbeat struct {
	// Interval between heartbeat broadcasts, in ticks. Required.
	Interval int64
	// Timeout after which a silent process is suspected, in ticks.
	// 0 disables suspicion (pure heartbeat sender: FS1 without the timeout,
	// which lets experiments demonstrate the FS1 violation directly).
	Timeout int64

	lastHeard map[model.ProcID]int64
}

var _ core.Component = (*Heartbeat)(nil)

// Init implements core.Component.
func (h *Heartbeat) Init(ctx node.Context, d *core.Detector) {
	if h.Interval <= 0 {
		panic("fd: Heartbeat.Interval must be positive")
	}
	// Monitor the detector's broadcast peers — the whole cluster under the
	// complete graph, the topology neighborhood under a partial one.
	h.lastHeard = make(map[model.ProcID]int64, d.PoolSize())
	d.ForEachPeer(func(p model.ProcID) {
		h.lastHeard[p] = ctx.Now()
	})
	ctx.SetTimer(timerBeat, h.Interval)
	if h.Timeout > 0 {
		ctx.SetTimer(timerCheck, h.checkEvery())
	}
}

// checkEvery returns the silence-check period: checking only every Timeout
// ticks can miss an entire silence window (silence can start right after a
// check and end before the next), so checks run at heartbeat granularity.
func (h *Heartbeat) checkEvery() int64 {
	if h.Interval < h.Timeout {
		return h.Interval
	}
	return h.Timeout
}

// OnMessage implements core.Component: records heartbeat arrivals.
func (h *Heartbeat) OnMessage(ctx node.Context, d *core.Detector, from model.ProcID, p node.Payload) {
	if p.Tag == TagHeartbeat {
		h.lastHeard[from] = ctx.Now()
	}
}

// OnTimer implements core.Component: broadcasts heartbeats and checks for
// silent processes.
func (h *Heartbeat) OnTimer(ctx node.Context, d *core.Detector, name string) {
	switch name {
	case timerBeat:
		d.ForEachPeer(func(p model.ProcID) {
			ctx.Send(p, node.Payload{Tag: TagHeartbeat})
		})
		ctx.SetTimer(timerBeat, h.Interval)
	case timerCheck:
		// Walk peers in PID order (ForEachPeer is ascending), not map
		// order: when several peers time out on the same check tick, the
		// order of Suspect calls orders their protocol messages, and a map
		// range would make the whole run nondeterministic.
		now := ctx.Now()
		d.ForEachPeer(func(p model.ProcID) {
			last, ok := h.lastHeard[p]
			if !ok || d.Detected(p) || d.Suspects(p) {
				return
			}
			if now-last >= h.Timeout {
				d.Suspect(ctx, p)
			}
		})
		ctx.SetTimer(timerCheck, h.checkEvery())
	}
}

// Adaptive is a core.Component implementing an adaptive timeout suspector:
// it tracks the mean and variance of heartbeat inter-arrival times per peer
// and suspects a process once its silence exceeds mean + Phi·stddev (with a
// floor of MinTimeout). This is a simplified accrual failure detector; it
// adapts to observed delay but, per Theorem 1, still cannot be a Perfect
// detector.
type Adaptive struct {
	// Interval between own heartbeat broadcasts. Required.
	Interval int64
	// Phi is the suspicion threshold in standard deviations. Default 4.
	Phi float64
	// MinTimeout floors the computed timeout. Default 2*Interval.
	MinTimeout int64

	stats     map[model.ProcID]*arrivalStats
	lastHeard map[model.ProcID]int64
}

type arrivalStats struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations (Welford)
}

func (a *arrivalStats) add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

func (a *arrivalStats) stddev() float64 {
	if a.n < 2 {
		return 0
	}
	v := a.m2 / float64(a.n-1)
	// Newton iteration is overkill; a few rounds of bisection-free sqrt.
	if v <= 0 {
		return 0
	}
	s := v
	for i := 0; i < 24; i++ {
		s = 0.5 * (s + v/s)
	}
	return s
}

var _ core.Component = (*Adaptive)(nil)

// Init implements core.Component.
func (a *Adaptive) Init(ctx node.Context, d *core.Detector) {
	if a.Interval <= 0 {
		panic("fd: Adaptive.Interval must be positive")
	}
	if a.Phi == 0 {
		a.Phi = 4
	}
	if a.MinTimeout == 0 {
		a.MinTimeout = 2 * a.Interval
	}
	a.stats = make(map[model.ProcID]*arrivalStats, d.PoolSize())
	a.lastHeard = make(map[model.ProcID]int64, d.PoolSize())
	d.ForEachPeer(func(p model.ProcID) {
		a.lastHeard[p] = ctx.Now()
		a.stats[p] = &arrivalStats{}
	})
	ctx.SetTimer(timerBeat, a.Interval)
	ctx.SetTimer(timerCheck, a.Interval)
}

// OnMessage implements core.Component.
func (a *Adaptive) OnMessage(ctx node.Context, d *core.Detector, from model.ProcID, p node.Payload) {
	if p.Tag != TagHeartbeat {
		return
	}
	now := ctx.Now()
	if last, ok := a.lastHeard[from]; ok {
		a.stats[from].add(float64(now - last))
	}
	a.lastHeard[from] = now
}

// OnTimer implements core.Component.
func (a *Adaptive) OnTimer(ctx node.Context, d *core.Detector, name string) {
	switch name {
	case timerBeat:
		d.ForEachPeer(func(p model.ProcID) {
			ctx.Send(p, node.Payload{Tag: TagHeartbeat})
		})
		ctx.SetTimer(timerBeat, a.Interval)
	case timerCheck:
		// PID order, not map order — see Heartbeat.OnTimer: simultaneous
		// timeouts must suspect in a deterministic order.
		now := ctx.Now()
		d.ForEachPeer(func(p model.ProcID) {
			last, ok := a.lastHeard[p]
			if !ok || d.Detected(p) || d.Suspects(p) {
				return
			}
			st := a.stats[p]
			limit := float64(a.MinTimeout)
			if st.n >= 2 {
				adaptive := st.mean + a.Phi*st.stddev()
				if adaptive > limit {
					limit = adaptive
				}
			}
			if float64(now-last) >= limit {
				d.Suspect(ctx, p)
			}
		})
		ctx.SetTimer(timerCheck, a.Interval)
	}
}

// Describe returns a short human-readable description of the component,
// used in experiment table headers.
func (h *Heartbeat) Describe() string {
	return fmt.Sprintf("heartbeat(interval=%d, timeout=%d)", h.Interval, h.Timeout)
}

// Describe returns a short human-readable description of the component.
func (a *Adaptive) Describe() string {
	return fmt.Sprintf("adaptive(interval=%d, phi=%.1f)", a.Interval, a.Phi)
}
