package fd_test

import (
	"testing"

	"failstop/internal/adversary"
	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/fd"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/sim"
)

func hbCluster(n, t int, hb func(model.ProcID) core.Component, simCfg sim.Config) *cluster.Cluster {
	return cluster.New(cluster.Options{
		Sim: simCfg,
		Det: core.Config{N: n, T: t, Protocol: core.SimulatedFailStop},
		FD:  hb,
	})
}

func TestHeartbeatDetectsGenuineCrash(t *testing.T) {
	c := hbCluster(5, 2,
		func(model.ProcID) core.Component { return &fd.Heartbeat{Interval: 10, Timeout: 50} },
		sim.Config{N: 5, Seed: 1, MinDelay: 1, MaxDelay: 3, MaxTime: 2000})
	c.CrashAt(100, 5)
	res := c.Run()
	for p := model.ProcID(1); p <= 4; p++ {
		if !c.Detectors[p].Detected(5) {
			t.Errorf("process %d did not detect the crash of 5", p)
		}
	}
	// FS1 holds at the horizon for the crashed process.
	ab := res.History.DropTags(core.TagSusp, fd.TagHeartbeat)
	if v := checker.FS1(ab); !v.Holds {
		t.Errorf("%s", v)
	}
	// No false detections: delays stay well under the timeout.
	for p := model.ProcID(1); p <= 4; p++ {
		for q := model.ProcID(1); q <= 4; q++ {
			if p != q && c.Detectors[p].Detected(q) {
				t.Errorf("false detection: %d detected healthy %d", p, q)
			}
		}
	}
}

// The Theorem 1 dilemma, operationally: with an adversarial delay spike
// bigger than the timeout, a healthy process is suspected and — because the
// detections must look like fail-stop — killed.
func TestHeartbeatFalseSuspicionUnderSpike(t *testing.T) {
	spike := adversary.HeartbeatSpike(1, fd.TagHeartbeat, 100, 2, 500)
	// Additionally slow protocol deliveries *to* the victim, so the
	// detectors complete their quorums before the victim receives its death
	// sentence: that ordering is what makes the detection visibly false
	// (FS2). Heartbeats to the victim stay fast, or it would start falsely
	// suspecting everyone else itself.
	delay := func(from, to model.ProcID, p node.Payload, at int64) int64 {
		if to == 1 && p.Tag == core.TagSusp {
			return 80
		}
		return spike(from, to, p, at)
	}
	c := hbCluster(5, 2,
		func(model.ProcID) core.Component { return &fd.Heartbeat{Interval: 10, Timeout: 60} },
		sim.Config{N: 5, Seed: 2, Delay: delay, MaxTime: 4000})
	res := c.Run()
	if res.History.CrashIndex(1) < 0 {
		t.Fatal("spiked process was not killed (no false suspicion?)")
	}
	// FS2 is violated on the abstract history (the detection was false)...
	ab := res.History.DropTags(core.TagSusp, fd.TagHeartbeat)
	if v := checker.FS2(ab); v.Holds {
		t.Error("expected an FS2 violation from the false suspicion")
	}
	// ...but the sFS safety conditions hold.
	for _, v := range []checker.Verdict{
		checker.SFS2b(ab), checker.SFS2c(ab), checker.SFS2d(ab),
	} {
		if !v.Holds {
			t.Errorf("%s", v)
		}
	}
}

// With no timeout (Timeout = 0) crashes are never suspected: FS1 is
// violated — the other horn of the Theorem 1 dilemma.
func TestNoTimeoutViolatesFS1(t *testing.T) {
	c := hbCluster(4, 1,
		func(model.ProcID) core.Component { return &fd.Heartbeat{Interval: 10} },
		sim.Config{N: 4, Seed: 3, MinDelay: 1, MaxDelay: 3, MaxTime: 1000})
	c.CrashAt(100, 4)
	res := c.Run()
	ab := res.History.DropTags(core.TagSusp, fd.TagHeartbeat)
	if v := checker.FS1(ab); v.Holds {
		t.Error("FS1 should be violated without timeouts")
	}
}

func TestAdaptiveDetectsCrash(t *testing.T) {
	c := hbCluster(5, 2,
		func(model.ProcID) core.Component { return &fd.Adaptive{Interval: 10, Phi: 4} },
		sim.Config{N: 5, Seed: 4, MinDelay: 1, MaxDelay: 3, MaxTime: 3000})
	c.CrashAt(300, 5)
	c.Run()
	for p := model.ProcID(1); p <= 4; p++ {
		if !c.Detectors[p].Detected(5) {
			t.Errorf("process %d did not detect the crash of 5 (adaptive)", p)
		}
	}
}

// The adaptive detector tolerates a delay spike that fools the fixed one,
// when the spike is within its learned slack... and still gets fooled by a
// larger one (Theorem 1 applies to it too).
func TestAdaptiveStillNotPerfect(t *testing.T) {
	delay := adversary.HeartbeatSpike(1, fd.TagHeartbeat, 500, 2, 2000)
	c := hbCluster(5, 2,
		func(model.ProcID) core.Component { return &fd.Adaptive{Interval: 10, Phi: 4, MinTimeout: 40} },
		sim.Config{N: 5, Seed: 5, Delay: delay, MaxTime: 8000})
	res := c.Run()
	if res.History.CrashIndex(1) < 0 {
		t.Error("a large enough spike must defeat any adaptive detector")
	}
}

// TestSimultaneousTimeoutsDeterministic pins the suspicion *order* when
// several peers time out on the same check tick: the checker must walk
// peers in PID order, not map order, or the run — and every sweep built on
// it — is nondeterministic. Two processes crash at the same instant, so
// every survivor's check timer finds both silent at once; the full history
// must come out byte-identical on every run.
func TestSimultaneousTimeoutsDeterministic(t *testing.T) {
	run := func(mk func(model.ProcID) core.Component) string {
		c := hbCluster(5, 2, mk,
			sim.Config{N: 5, Seed: 6, MinDelay: 1, MaxDelay: 3, MaxTime: 2000})
		c.CrashAt(100, 4)
		c.CrashAt(100, 5)
		return c.Run().History.String()
	}
	fixed := func(model.ProcID) core.Component { return &fd.Heartbeat{Interval: 10, Timeout: 50} }
	adaptive := func(model.ProcID) core.Component { return &fd.Adaptive{Interval: 10, Phi: 4, MinTimeout: 40} }
	baseFixed, baseAdaptive := run(fixed), run(adaptive)
	for i := 0; i < 20; i++ {
		if got := run(fixed); got != baseFixed {
			t.Fatalf("run %d: fixed-timeout history diverged (map-order suspicion?)", i)
		}
		if got := run(adaptive); got != baseAdaptive {
			t.Fatalf("run %d: adaptive history diverged (map-order suspicion?)", i)
		}
	}
}

func TestHeartbeatPanicsWithoutInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Interval = 0")
		}
	}()
	c := hbCluster(2, 1,
		func(model.ProcID) core.Component { return &fd.Heartbeat{} },
		sim.Config{N: 2, Seed: 1, MaxTime: 10})
	c.Run()
}

func TestDescribe(t *testing.T) {
	h := &fd.Heartbeat{Interval: 10, Timeout: 50}
	if h.Describe() != "heartbeat(interval=10, timeout=50)" {
		t.Errorf("Describe() = %q", h.Describe())
	}
	a := &fd.Adaptive{Interval: 10, Phi: 3}
	if a.Describe() != "adaptive(interval=10, phi=3.0)" {
		t.Errorf("Describe() = %q", a.Describe())
	}
}
