// Package checker verifies the paper's properties on recorded histories:
// the fail-stop conditions FS1/FS2 (§3.1), the simulated-fail-stop
// conditions sFS2a–sFS2d (Figure 1), the necessary Conditions 1–3 of §3.2,
// and the Witness property W of §4.
//
// Finite-horizon semantics. The paper's properties quantify over infinite
// runs; this package checks their natural finite counterparts:
//
//   - Safety properties (FS2, sFS2b, sFS2c, sFS2d, Conditions 2–3, W) are
//     checked exactly: a finite violation is a violation of every extension.
//   - Liveness properties (FS1, sFS2a, Condition 1) are checked at the end
//     of the history, which is sound when the history was run to quiescence
//     (nothing in flight can change the outcome); callers should check
//     sim.Result.Quiescent before trusting a liveness verdict.
package checker

import (
	"fmt"

	"failstop/internal/model"
	"failstop/internal/quorum"
)

// Verdict is the outcome of checking one property on one history.
type Verdict struct {
	// Property is the paper's name for the property ("FS1", "sFS2d", ...).
	Property string
	// Holds reports whether the property holds on the history.
	Holds bool
	// Detail describes the first violation found; empty when Holds.
	Detail string
}

// String renders the verdict as "FS1: ok" or "FS2: VIOLATED (detail)".
func (v Verdict) String() string {
	if v.Holds {
		return v.Property + ": ok"
	}
	return v.Property + ": VIOLATED (" + v.Detail + ")"
}

func ok(prop string) Verdict { return Verdict{Property: prop, Holds: true} }

func bad(prop, format string, args ...any) Verdict {
	return Verdict{Property: prop, Detail: fmt.Sprintf(format, args...)}
}

// FS1 checks strong completeness on the finite horizon: every process that
// is crashed when the history ends is detected by every process that is
// not. Meaningful on quiescent runs.
//
// Crash-recovery histories (internal/recovery) make the down-at-end
// distinction matter: a process that crashed but restarted is live again,
// so it neither needs detecting nor is excused from detecting the
// processes that stayed down — a restarted process is not "crashed" for
// FS1 accounting. On restart-free histories DownAtEnd equals Crashed and
// this is the paper's FS1 verbatim.
//
//	FS1: ∀r,i: r ⊨ □(CRASH_i ⇒ ∀j: ◇(CRASH_j ∨ FAILED_j(i)))
func FS1(h model.History) Verdict {
	return FS1At(h, h.Processes())
}

// FS1At is FS1 with the membership size given explicitly. FS1 infers n
// from the history, which is right when every process leaves a trace; in
// crash-recovery scenarios a process can be entirely silent — it never
// sends, detects, crashes, or restarts — and inference would silently
// drop it, together with its obligation to detect every down process
// (the property would then pass vacuously). Callers that know the true
// membership pass it here; silent processes count as live.
func FS1At(h model.History, n int) Verdict {
	down := h.DownAtEnd()
	// Walk processes in id order, not map order, so the counterexample a
	// failing run reports is the same on every execution.
	for i := model.ProcID(1); int(i) <= n; i++ {
		if !down[i] {
			continue
		}
		for j := model.ProcID(1); int(j) <= n; j++ {
			if j == i || down[j] {
				continue
			}
			if h.FailedIndex(j, i) < 0 {
				return bad("FS1", "crash_%d never detected by live process %d", i, j)
			}
		}
	}
	return ok("FS1")
}

// FS2 checks strong accuracy: no process is detected before it has crashed.
// In history terms, crash_i precedes failed_j(i) for every detection.
//
//	FS2: ∀r,i,j: r ⊨ □(FAILED_j(i) ⇒ CRASH_i)
func FS2(h model.History) Verdict {
	for _, d := range h.Detections() {
		ci := h.CrashIndex(d.Detected)
		if ci < 0 || ci > d.Index {
			return bad("FS2", "failed_%d(%d) at index %d precedes crash_%d (index %d)",
				d.Detector, d.Detected, d.Index, d.Detected, ci)
		}
	}
	return ok("FS2")
}

// Accuracy checks ground-truth accuracy against an external allow-set: every
// detection targets a process in allowed — typically the plan's scheduled
// crash victims plus its Byzantine victims. This is the Byzantine analogue
// of FS2: under an active adversary the recorded crash order races the
// detection that masked the misbehavior (the victim crashes on its own
// completed SUSP, which may serialize after other processes' failed events),
// so FS2's crash-precedes-detection reading is unachievable even when every
// conviction is correct. What must hold instead is that nobody innocent is
// ever detected.
func Accuracy(h model.History, allowed map[model.ProcID]bool) Verdict {
	for _, d := range h.Detections() {
		if !allowed[d.Detected] {
			return bad("Accuracy", "failed_%d(%d) at index %d detects a process that neither crashed by plan nor misbehaved",
				d.Detector, d.Detected, d.Index)
		}
	}
	return ok("Accuracy")
}

// SFS2a checks that every detected process eventually crashes:
//
//	sFS2a: ∀r,i,j: r ⊨ □(FAILED_i(j) ⇒ ◇CRASH_j)
//
// Meaningful on quiescent runs (the crash may be in flight otherwise).
func SFS2a(h model.History) Verdict {
	for _, d := range h.Detections() {
		if h.CrashIndex(d.Detected) < 0 {
			return bad("sFS2a", "failed_%d(%d) but %d never crashes",
				d.Detector, d.Detected, d.Detected)
		}
	}
	return ok("sFS2a")
}

// SFS2b checks that the failed-before relation is acyclic (Condition 2).
func SFS2b(h model.History) Verdict {
	fb := model.NewFailedBefore(h)
	if cyc := fb.Cycle(); cyc != nil {
		return bad("sFS2b", "failed-before cycle %v", cyc)
	}
	return ok("sFS2b")
}

// SFS2c checks that no process detects its own failure:
//
//	sFS2c: ∀r,i: r ⊨ □¬FAILED_i(i)
func SFS2c(h model.History) Verdict {
	for _, d := range h.Detections() {
		if d.Detector == d.Detected {
			return bad("sFS2c", "failed_%d(%d) at index %d", d.Detector, d.Detected, d.Index)
		}
	}
	return ok("sFS2c")
}

// SFS2d checks the contamination barrier: once i has executed failed_i(j),
// any message i subsequently sends to k is not received until k has also
// executed failed_k(j).
//
//	sFS2d: r ⊨ □[FAILED_i(j) ∧ ¬SEND_i(k,m) ⇒
//	             □((SEND_i(k,m) ∧ RECV_k(i,m)) ⇒ FAILED_k(j))]
func SFS2d(h model.History) Verdict {
	// For each process i, the set of targets detected so far while scanning.
	detectedBy := make(map[model.ProcID][]model.ProcID)
	// sends tainted by a detection: msg id -> (sender's detected set at send).
	taint := make(map[model.MsgID][]model.ProcID)
	// detection index per (i,j) for the receive-side check.
	failedIdx := make(map[[2]model.ProcID]int)

	for idx, e := range h {
		switch e.Kind {
		case model.KindFailed:
			detectedBy[e.Proc] = append(detectedBy[e.Proc], e.Target)
			failedIdx[[2]model.ProcID{e.Proc, e.Target}] = idx
		case model.KindSend:
			if ds := detectedBy[e.Proc]; len(ds) > 0 {
				cp := make([]model.ProcID, len(ds))
				copy(cp, ds)
				taint[e.Msg] = cp
			}
		case model.KindCrash, model.KindInternal:
			// No contamination flows through crashes or internal events.
		case model.KindRecv:
			for _, j := range taint[e.Msg] {
				fi, okd := failedIdx[[2]model.ProcID{e.Proc, j}]
				if !okd || fi > idx {
					return bad("sFS2d",
						"recv_%d(%d, m%d) at index %d before failed_%d(%d): message sent after sender detected %d",
						e.Proc, e.Peer, e.Msg, idx, e.Proc, j, j)
				}
			}
		}
	}
	return ok("sFS2d")
}

// Condition1 checks §3.2 Condition 1: if failed_i(j) occurs in the history
// then crash_j occurs in the history. Operationally identical to sFS2a on a
// finite horizon but reported under its own name.
func Condition1(h model.History) Verdict {
	v := SFS2a(h)
	v.Property = "Condition1"
	return v
}

// Condition2 checks §3.2 Condition 2: the failed-before relation is acyclic.
func Condition2(h model.History) Verdict {
	v := SFS2b(h)
	v.Property = "Condition2"
	return v
}

// Condition3 checks §3.2 Condition 3: there is no event e of process j such
// that failed_i(j) happens-before e.
func Condition3(h model.History) Verdict {
	hb := model.NewHB(h)
	for _, d := range h.Detections() {
		for idx := d.Index + 1; idx < len(h); idx++ {
			if h[idx].Proc != d.Detected {
				continue
			}
			if hb.Before(d.Index, idx) {
				return bad("Condition3", "failed_%d(%d) at %d happens-before %s at %d",
					d.Detector, d.Detected, d.Index, h[idx], idx)
			}
		}
	}
	return ok("Condition3")
}

// QuorumSets reconstructs, from the history alone, the quorum set Q_{i,j}
// of every completed detection (Definition 5): the detector i itself plus
// every process from which i received "j failed" (tag core SUSP) before
// executing failed_i(j). The §5 protocol merges SUSP and ACK.SUSP, so
// received suspicion messages are the acknowledgements.
func QuorumSets(h model.History, suspTag string) []map[model.ProcID]bool {
	// heard[i][j] = set of senders of "j failed" received by i so far.
	heard := make(map[model.ProcID]map[model.ProcID]map[model.ProcID]bool)
	var out []map[model.ProcID]bool
	for _, e := range h {
		switch {
		case e.Kind == model.KindRecv && e.Tag == suspTag && e.Target != model.None:
			m := heard[e.Proc]
			if m == nil {
				m = make(map[model.ProcID]map[model.ProcID]bool)
				heard[e.Proc] = m
			}
			s := m[e.Target]
			if s == nil {
				s = make(map[model.ProcID]bool)
				m[e.Target] = s
			}
			s[e.Peer] = true
		case e.Kind == model.KindFailed:
			q := map[model.ProcID]bool{e.Proc: true}
			//sfs:allow detmaprange set-to-set copy; the quorum set is consumed by membership tests only
			for sender := range heard[e.Proc][e.Target] {
				q[sender] = true
			}
			out = append(out, q)
		}
	}
	return out
}

// WitnessProperty checks §4's Witness property W on the quorum sets
// reconstructed from the history, in the form Theorem 7's quorum size
// guarantees and sFS2b requires: every subfamily of at most t quorum sets
// has a common witness (a failed-before cycle involves at most t processes,
// hence at most t quorum sets — larger subfamilies never matter).
func WitnessProperty(h model.History, suspTag string, t int) Verdict {
	sets := QuorumSets(h, suspTag)
	if !quorum.SubfamiliesIntersect(sets, t) {
		return bad("W", "some %d of the %d detections' quorum sets have empty intersection", t, len(sets))
	}
	return ok("W")
}

// SFS checks the full simulated-fail-stop specification of Figure 1:
// FS1 + sFS2a + sFS2b + sFS2c + sFS2d.
func SFS(h model.History) []Verdict {
	return []Verdict{FS1(h), SFS2a(h), SFS2b(h), SFS2c(h), SFS2d(h)}
}

// FS checks the fail-stop specification: FS1 + FS2.
func FS(h model.History) []Verdict {
	return []Verdict{FS1(h), FS2(h)}
}

// All checks every property this package knows about. The sFS and FS
// properties are checked on the abstract (model-level) history — protocol
// SUSP messages and fd heartbeats dropped per History.DropTags — while the
// Witness property needs the full trace to reconstruct quorum sets.
func All(h model.History, suspTag string, t int) []Verdict {
	abstract := h.DropTags(suspTag, "HB")
	out := []Verdict{
		FS1(abstract), FS2(abstract),
		SFS2a(abstract), SFS2b(abstract), SFS2c(abstract), SFS2d(abstract),
		Condition1(abstract), Condition2(abstract), Condition3(abstract),
		WitnessProperty(h, suspTag, t),
	}
	return out
}

// AllHold reports whether every verdict holds, and if not, the first
// failing verdict.
func AllHold(vs []Verdict) (Verdict, bool) {
	for _, v := range vs {
		if !v.Holds {
			return v, false
		}
	}
	return Verdict{}, true
}
