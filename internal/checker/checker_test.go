package checker

import (
	"strings"
	"testing"

	"failstop/internal/model"
)

func mustHold(t *testing.T, v Verdict) {
	t.Helper()
	if !v.Holds {
		t.Errorf("%s should hold: %s", v.Property, v.Detail)
	}
}

func mustViolate(t *testing.T, v Verdict) {
	t.Helper()
	if v.Holds {
		t.Errorf("%s should be violated", v.Property)
	}
	if v.Detail == "" {
		t.Errorf("%s violation must carry a detail", v.Property)
	}
}

func TestFS1(t *testing.T) {
	// 1 crashes; 2 and 3 both detect it: FS1 holds.
	good := model.History{
		model.Crash(1),
		model.Failed(2, 1),
		model.Failed(3, 1),
	}.Normalize()
	mustHold(t, FS1(good))

	// 3 never detects: FS1 violated.
	badH := model.History{
		model.Crash(1),
		model.Failed(2, 1),
		model.Internal(3, "busy", model.None),
	}.Normalize()
	mustViolate(t, FS1(badH))

	// 3 crashed too: 3 is excused from detecting 1, but live 2 must still
	// detect 3.
	excused := model.History{
		model.Crash(1),
		model.Failed(2, 1),
		model.Crash(3),
		model.Failed(2, 3),
	}.Normalize()
	mustHold(t, FS1(excused))

	// Without failed_2(3), FS1 is violated for crash_3.
	missing := model.History{
		model.Crash(1),
		model.Failed(2, 1),
		model.Crash(3),
	}.Normalize()
	mustViolate(t, FS1(missing))

	// No crashes at all: trivially holds.
	mustHold(t, FS1(model.History{model.Internal(1, "x", model.None)}))
}

// TestFS1At: explicit membership closes FS1's silent-process blind spot.
// When every live process in a crash-recovery run leaves no trace, FS1's
// inferred n drops them and the property passes vacuously; FS1At holds
// the silent bystanders to their detection obligation.
func TestFS1At(t *testing.T) {
	// Only 1 and 2 act; 1 crashes, 2 detects, and (unbeknownst to the
	// history) processes 3..5 exist but stay silent.
	silent := model.History{
		model.Crash(1),
		model.Failed(2, 1),
	}.Normalize()
	mustHold(t, FS1(silent)) // inferred n=2: vacuously fine
	mustViolate(t, FS1At(silent, 5))

	// Once the bystanders detect too, the explicit check holds.
	full := model.History{
		model.Crash(1),
		model.Failed(2, 1),
		model.Failed(3, 1),
		model.Failed(4, 1),
		model.Failed(5, 1),
	}.Normalize()
	mustHold(t, FS1At(full, 5))

	// A restarted process is live again: it is not excused from detecting,
	// and it does not need detecting.
	restarted := model.History{
		model.Crash(1),
		model.Crash(3),
		model.Restart(3),
		model.Failed(2, 1),
		model.Failed(3, 1),
	}.Normalize()
	mustHold(t, FS1At(restarted, 3))
	mustViolate(t, FS1At(restarted, 4)) // silent 4 never detected crash_1
}

func TestFS2(t *testing.T) {
	good := model.History{
		model.Crash(1),
		model.Failed(2, 1),
	}.Normalize()
	mustHold(t, FS2(good))

	// Detection precedes crash: violated.
	early := model.History{
		model.Failed(2, 1),
		model.Crash(1),
	}.Normalize()
	mustViolate(t, FS2(early))

	// Detection with no crash at all: violated.
	never := model.History{model.Failed(2, 1)}.Normalize()
	mustViolate(t, FS2(never))
}

func TestSFS2a(t *testing.T) {
	// Crash after detection is fine for sFS2a (unlike FS2).
	late := model.History{
		model.Failed(2, 1),
		model.Crash(1),
	}.Normalize()
	mustHold(t, SFS2a(late))
	mustViolate(t, SFS2a(model.History{model.Failed(2, 1)}.Normalize()))

	// Condition1 is the same check under its own name.
	v := Condition1(model.History{model.Failed(2, 1)}.Normalize())
	mustViolate(t, v)
	if v.Property != "Condition1" {
		t.Errorf("property name = %q", v.Property)
	}
}

func TestSFS2b(t *testing.T) {
	acyclic := model.History{
		model.Failed(2, 1),
		model.Crash(1),
		model.Failed(3, 2),
		model.Crash(2),
	}.Normalize()
	mustHold(t, SFS2b(acyclic))

	cyclic := model.History{
		model.Failed(1, 2),
		model.Failed(2, 1),
		model.Crash(1),
		model.Crash(2),
	}.Normalize()
	mustViolate(t, SFS2b(cyclic))
	if v := SFS2b(cyclic); !strings.Contains(v.Detail, "cycle") {
		t.Errorf("detail should mention the cycle: %q", v.Detail)
	}
	v := Condition2(cyclic)
	mustViolate(t, v)
	if v.Property != "Condition2" {
		t.Errorf("property name = %q", v.Property)
	}
}

func TestSFS2c(t *testing.T) {
	mustHold(t, SFS2c(model.History{model.Failed(2, 1)}.Normalize()))
	mustViolate(t, SFS2c(model.History{model.Failed(2, 2)}.Normalize()))
}

func TestSFS2d(t *testing.T) {
	// i=1 detects j=3, then sends m to k=2; 2 receives only after failed_2(3).
	good := model.History{
		model.Failed(1, 3),
		model.Send(1, 2, 1, "APP", model.None),
		model.Failed(2, 3),
		model.Recv(2, 1, 1, "APP", model.None),
		model.Crash(3),
	}.Normalize()
	mustHold(t, SFS2d(good))

	// 2 receives before detecting 3: violated.
	badH := model.History{
		model.Failed(1, 3),
		model.Send(1, 2, 1, "APP", model.None),
		model.Recv(2, 1, 1, "APP", model.None),
		model.Failed(2, 3),
		model.Crash(3),
	}.Normalize()
	mustViolate(t, SFS2d(badH))

	// Message sent BEFORE the detection is unconstrained.
	pre := model.History{
		model.Send(1, 2, 1, "APP", model.None),
		model.Failed(1, 3),
		model.Recv(2, 1, 1, "APP", model.None),
		model.Crash(3),
	}.Normalize()
	mustHold(t, SFS2d(pre))

	// Multiple detections: the message carries all of them.
	multi := model.History{
		model.Failed(1, 3),
		model.Failed(1, 4),
		model.Send(1, 2, 1, "APP", model.None),
		model.Failed(2, 3),
		model.Recv(2, 1, 1, "APP", model.None), // missing failed_2(4)
		model.Crash(3),
		model.Crash(4),
	}.Normalize()
	mustViolate(t, SFS2d(multi))
}

func TestCondition3(t *testing.T) {
	// failed_1(3) happens-before an event of 3 via a message chain
	// (the Lemma 4 chain): violated.
	chain := model.History{
		model.Failed(1, 3),
		model.Send(1, 2, 1, "m", model.None),
		model.Recv(2, 1, 1, "m", model.None),
		model.Send(2, 3, 2, "m", model.None),
		model.Recv(3, 2, 2, "m", model.None),
	}.Normalize()
	mustViolate(t, Condition3(chain))

	// Concurrent events of 3 after the detection index but not causally
	// after it: fine.
	concurrent := model.History{
		model.Failed(1, 3),
		model.Internal(3, "own-step", model.None),
		model.Crash(3),
	}.Normalize()
	mustHold(t, Condition3(concurrent))
}

func TestQuorumSetsReconstruction(t *testing.T) {
	// Process 2 hears "1 failed" from 3 and 4, then detects 1.
	h := model.History{
		model.Send(3, 2, 1, "SUSP", 1),
		model.Send(4, 2, 2, "SUSP", 1),
		model.Recv(2, 3, 1, "SUSP", 1),
		model.Recv(2, 4, 2, "SUSP", 1),
		model.Failed(2, 1),
		model.Crash(1),
	}.Normalize()
	sets := QuorumSets(h, "SUSP")
	if len(sets) != 1 {
		t.Fatalf("got %d quorum sets, want 1", len(sets))
	}
	q := sets[0]
	if !q[2] || !q[3] || !q[4] || len(q) != 3 {
		t.Errorf("quorum = %v, want {2,3,4}", q)
	}
	// Suspicion heard AFTER the detection must not count.
	h2 := model.History{
		model.Send(3, 2, 1, "SUSP", 1),
		model.Recv(2, 3, 1, "SUSP", 1),
		model.Failed(2, 1),
		model.Send(4, 2, 2, "SUSP", 1),
		model.Recv(2, 4, 2, "SUSP", 1),
		model.Crash(1),
	}.Normalize()
	sets2 := QuorumSets(h2, "SUSP")
	if len(sets2) != 1 || len(sets2[0]) != 2 {
		t.Errorf("quorum sets = %v, want one set of size 2", sets2)
	}
}

func TestWitnessProperty(t *testing.T) {
	// Two detections sharing witness 5.
	shared := model.History{
		model.Send(5, 1, 1, "SUSP", 2),
		model.Recv(1, 5, 1, "SUSP", 2),
		model.Failed(1, 2),
		model.Send(5, 3, 2, "SUSP", 4),
		model.Recv(3, 5, 2, "SUSP", 4),
		model.Failed(3, 4),
		model.Crash(2),
		model.Crash(4),
	}.Normalize()
	mustHold(t, WitnessProperty(shared, "SUSP", 2))

	// Disjoint quorums: violated.
	disjoint := model.History{
		model.Failed(1, 2),
		model.Failed(3, 4),
		model.Crash(2),
		model.Crash(4),
	}.Normalize()
	mustViolate(t, WitnessProperty(disjoint, "SUSP", 2))
}

func TestAggregators(t *testing.T) {
	good := model.History{
		model.Crash(1),
		model.Failed(2, 1),
	}.Normalize()
	if _, allOK := AllHold(SFS(good)); !allOK {
		t.Error("SFS must hold on the good history")
	}
	if _, allOK := AllHold(FS(good)); !allOK {
		t.Error("FS must hold on the good history")
	}
	if got := len(All(good, "SUSP", 2)); got != 10 {
		t.Errorf("All returns %d verdicts, want 10", got)
	}

	badH := model.History{
		model.Failed(2, 1), // no crash: sFS2a violated
	}.Normalize()
	v, allOK := AllHold(SFS(badH))
	if allOK {
		t.Fatal("SFS must fail")
	}
	if v.Property != "sFS2a" {
		t.Errorf("first failure = %s, want sFS2a", v.Property)
	}
}

func TestVerdictString(t *testing.T) {
	if got := ok("FS1").String(); got != "FS1: ok" {
		t.Errorf("String() = %q", got)
	}
	v := bad("FS2", "boom")
	if got := v.String(); got != "FS2: VIOLATED (boom)" {
		t.Errorf("String() = %q", got)
	}
}

// The empty history satisfies everything.
func TestEmptyHistory(t *testing.T) {
	for _, v := range All(model.History{}, "SUSP", 2) {
		mustHold(t, v)
	}
}
