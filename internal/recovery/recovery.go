// Package recovery implements the crash-recovery subsystem: environment-
// scheduled process lifetimes (crash/restart windows, including periodic
// restart storms), the recovery mode selecting what a restarted process
// remembers, and the durable-state stores that do the remembering.
//
// The paper's model is fail-stop: crash_p is final, and every Figure 1
// property is stated against that finality. Crash-recovery is the
// realistic deviation — a process can return, either with amnesia (zero
// state) or with state mediated by a persistence layer, the construction
// "You Only Live Multiple Times" (Kozhaya–Marić–Pignolet) uses to reuse
// crash-stop protocols under crash-recovery. The hosts (internal/sim and
// internal/runtime) execute Lifetimes identically: at a crash the process
// goes silent exactly like a protocol-level crash (and, under Durable, its
// handler's Snapshot is saved to the Store); at a restart the handler is
// re-initialized through node.Restarter.OnRestart with the saved snapshot
// (Durable), with nil state (Amnesia), or not at all (Off ignores
// restarts: the fail-stop world the paper assumes).
package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"failstop/internal/model"
)

// Mode selects what a restarted process remembers. The zero value is Off.
type Mode int

// Recovery modes.
const (
	// Off ignores restart schedules entirely: an environment crash is
	// terminal, exactly like the paper's fail-stop crashes.
	Off Mode = iota
	// Amnesia restarts a crashed process with zero state: the handler is
	// re-initialized from scratch (OnRestart with nil state).
	Amnesia
	// Durable saves the handler's Snapshot at crash time and hands it back
	// at restart: the persistence-mediated restart of the YOLMT
	// construction.
	Durable
)

// String names the mode as the CLIs and sweep cells spell it.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Amnesia:
		return "amnesia"
	case Durable:
		return "durable"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses a mode name ("off", "amnesia", "durable"); the empty
// string parses as Off.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "amnesia":
		return Amnesia, nil
	case "durable":
		return Durable, nil
	default:
		return Off, fmt.Errorf("recovery: unknown mode %q (want off, amnesia, or durable)", s)
	}
}

// MarshalText implements encoding.TextMarshaler: modes travel as their
// names in wire formats (sweep cells, trace headers).
func (m Mode) MarshalText() ([]byte, error) {
	switch m {
	case Off, Amnesia, Durable:
		return []byte(m.String()), nil
	default:
		return nil, fmt.Errorf("recovery: cannot marshal unknown mode %d", int(m))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *Mode) UnmarshalText(b []byte) error {
	parsed, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// Lifetime is one process's environment-scheduled crash/restart window, in
// host ticks — the normalized form of a netadv process-fault rule, shared
// by both hosts so neither depends on the plan format.
//
// One-shot (Period == 0): the process crashes at Crash and, if Restart is
// nonzero, restarts at Restart. Restart == 0 is a terminal crash.
//
// Periodic (Period > 0): a restart storm. The process crashes at
// Crash + k·Period for k = 0, 1, ... and restarts (Restart - Crash) ticks
// after each crash; Until, when nonzero, bounds the crash times. An
// unbounded storm never lets a run quiesce, so hosts require a horizon
// (sim MaxTime/MaxEvents) to execute one.
type Lifetime struct {
	// Proc is the process the window applies to.
	Proc model.ProcID
	// Crash is the (first) crash time.
	Crash int64
	// Restart is the (first) restart time; 0 means the crash is terminal.
	Restart int64
	// Period, when nonzero, repeats the window every Period ticks.
	Period int64
	// Until, when nonzero, is the last tick at which a periodic crash may
	// fire. Ignored for one-shot windows.
	Until int64
}

// Unbounded reports whether the lifetime generates crashes forever: a
// periodic window with no Until bound.
func (l Lifetime) Unbounded() bool { return l.Period > 0 && l.Until == 0 }

// Store persists per-process snapshots across restarts. Save replaces any
// prior snapshot for the process; Load returns the most recent one.
// Implementations must be safe for concurrent use: the live runtime saves
// and loads from per-process goroutines.
type Store interface {
	Save(p model.ProcID, state []byte)
	Load(p model.ProcID) ([]byte, bool)
}

// MemStore is the deterministic in-memory Store the simulator uses (and
// the default for the live runtime when no directory is configured).
type MemStore struct {
	mu    sync.Mutex
	state map[model.ProcID][]byte
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{state: make(map[model.ProcID][]byte)}
}

// Save implements Store. The snapshot is copied: callers may reuse the
// buffer.
func (s *MemStore) Save(p model.ProcID, state []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, len(state))
	copy(buf, state)
	s.state[p] = buf
}

// Load implements Store.
func (s *MemStore) Load(p model.ProcID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[p]
	if !ok {
		return nil, false
	}
	buf := make([]byte, len(st))
	copy(buf, st)
	return buf, true
}

// FileStore is a file-backed Store for the live runtime: one
// "proc-<id>.state" file per process under Dir. I/O errors are sticky and
// reported by Err — the host's restart path treats an unreadable snapshot
// as absent rather than failing the run.
type FileStore struct {
	dir string

	mu  sync.Mutex
	err error
}

// NewFileStore builds a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

func (s *FileStore) path(p model.ProcID) string {
	return filepath.Join(s.dir, fmt.Sprintf("proc-%d.state", int(p)))
}

// Save implements Store.
func (s *FileStore) Save(p model.ProcID, state []byte) {
	if err := os.WriteFile(s.path(p), state, 0o644); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

// Load implements Store.
func (s *FileStore) Load(p model.ProcID) ([]byte, bool) {
	state, err := os.ReadFile(s.path(p))
	if err != nil {
		return nil, false
	}
	return state, true
}

// Err returns the first write error the store swallowed, if any.
func (s *FileStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
