package recovery

import (
	"encoding/json"
	"testing"

	"failstop/internal/model"
)

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Off, Amnesia, Durable} {
		parsed, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if parsed != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), parsed, m)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %v: %v", m, err)
		}
		var back Mode
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != m {
			t.Fatalf("json round trip of %v = %v", m, back)
		}
	}
	if m, err := ParseMode(""); err != nil || m != Off {
		t.Fatalf("ParseMode(\"\") = %v, %v; want Off", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) did not fail")
	}
	if _, err := Mode(42).MarshalText(); err == nil {
		t.Fatal("MarshalText of unknown mode did not fail")
	}
}

func TestLifetimeUnbounded(t *testing.T) {
	cases := []struct {
		lt   Lifetime
		want bool
	}{
		{Lifetime{Crash: 10}, false},
		{Lifetime{Crash: 10, Restart: 20}, false},
		{Lifetime{Crash: 10, Restart: 20, Period: 50}, true},
		{Lifetime{Crash: 10, Restart: 20, Period: 50, Until: 500}, false},
	}
	for _, c := range cases {
		if got := c.lt.Unbounded(); got != c.want {
			t.Fatalf("Unbounded(%+v) = %v, want %v", c.lt, got, c.want)
		}
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Load(1); ok {
		t.Fatal("empty store reported a snapshot")
	}
	buf := []byte("state-v1")
	s.Save(1, buf)
	buf[0] = 'X' // the store must have copied
	got, ok := s.Load(1)
	if !ok || string(got) != "state-v1" {
		t.Fatalf("Load(1) = %q, %v; want state-v1", got, ok)
	}
	got[0] = 'Y' // mutating the loaded copy must not affect the store
	again, _ := s.Load(1)
	if string(again) != "state-v1" {
		t.Fatalf("store aliased its buffer: %q", again)
	}
	s.Save(1, []byte("state-v2"))
	if got, _ := s.Load(1); string(got) != "state-v2" {
		t.Fatalf("Save did not replace: %q", got)
	}
}

func TestFileStore(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(model.ProcID(3)); ok {
		t.Fatal("empty file store reported a snapshot")
	}
	s.Save(3, []byte("durable"))
	got, ok := s.Load(3)
	if !ok || string(got) != "durable" {
		t.Fatalf("Load(3) = %q, %v", got, ok)
	}
	s.Save(3, []byte("durable-2"))
	if got, _ := s.Load(3); string(got) != "durable-2" {
		t.Fatalf("Save did not replace: %q", got)
	}
	if s.Err() != nil {
		t.Fatalf("unexpected sticky error: %v", s.Err())
	}
}
