// Package obshttp serves a live /metrics endpoint in the Prometheus text
// exposition format, backed by any function that can snapshot an
// obs.Metrics. It exists for the live (goroutine) runtime: the simulator
// is a closed deterministic world that reports metrics in its Result, but
// a running live cluster is something an operator may want to scrape
// mid-flight. Stdlib net/http only; this is a wall-clock package (it
// binds sockets and serves real requests) and is never imported by the
// deterministic core.
package obshttp

import (
	"fmt"
	"net"
	"net/http"

	"failstop/internal/obs"
)

// Server owns one listening /metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (e.g. "127.0.0.1:0" for an ephemeral port) and serves
// GET /metrics, rendering source() as Prometheus text on every scrape.
// The source must be safe to call concurrently with the cluster running —
// obs counters are atomic, so registry and backend snapshots are.
func Start(addr string, source func() obs.Metrics) (*Server, error) {
	if source == nil {
		return nil, fmt.Errorf("obshttp: nil metrics source")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A scrape races only against atomic counter reads; an encoding
		// error here means the client hung up mid-scrape, which the next
		// scrape absorbs.
		_ = obs.WritePrometheus(w, source())
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns http.ErrServerClosed on Close; anything else means
		// the listener died, which Close also surfaces to the caller.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:43521"), for building scrape
// URLs when Start was given port 0.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight scrapes are cut off; this is a
// teardown path, not a drain.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
