package obshttp

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"failstop/internal/obs"
)

func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("scrapes_total").Add(3)
	srv, err := Start("127.0.0.1:0", reg.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	addr := srv.Addr()
	if addr == "" {
		t.Fatal("Addr empty after Start")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := "# TYPE scrapes_total counter\nscrapes_total 3\n"; string(body) != want {
		t.Errorf("body = %q, want %q", body, want)
	}

	// The source is re-snapshotted per scrape: a later increment is visible.
	reg.Counter("scrapes_total").Inc()
	resp2, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), "scrapes_total 4") {
		t.Errorf("second scrape = %q, want the incremented count", body2)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, err := Start("127.0.0.1:0", func() obs.Metrics { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Post("http://"+srv.Addr()+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: %s, want 405", resp.Status)
	}
}

func TestStartRejectsNilSource(t *testing.T) {
	if _, err := Start("127.0.0.1:0", nil); err == nil {
		t.Error("Start with a nil source did not error")
	}
}

func TestCloseStopsServing(t *testing.T) {
	srv, err := Start("127.0.0.1:0", func() obs.Metrics { return nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
}

func TestNilServerSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Error("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil server Close = %v", err)
	}
}
