package netadv

import (
	"fmt"
	"strconv"

	"failstop/internal/byz"
	"failstop/internal/model"
	"failstop/internal/node"
)

// ByzRule is one Byzantine-fault entry of a plan's timeline: it makes one
// process's outgoing traffic actively malicious — corrupted, equivocating,
// or replayed — rather than merely lossy. The victim process itself runs
// the protocol honestly; the plane forges its wire traffic, which is
// indistinguishable to every receiver from the victim being Byzantine.
//
// Like every netadv fate, Byzantine fates are seed-deterministic pure
// functions of (rule, link, per-link message index): sweeps stay
// byte-identical across worker counts and shard/merge, and the live
// runtime assigns the same fates the simulator does for each link's send
// sequence.
//
//sfs:wire
type ByzRule struct {
	// Victim is the process whose outgoing traffic the rule forges.
	Victim model.ProcID `json:"victim"`
	// From and Until bound the active window in ticks, as for Rule.
	From  int64 `json:"from,omitempty"`
	Until int64 `json:"until,omitempty"`
	// Tags restricts the rule to messages with these payload tags (e.g.
	// only the quorum protocol's "j failed" traffic). Empty = all messages.
	Tags []string `json:"tags,omitempty"`
	// Corrupt is the probability a matching message's payload is mutated
	// in place: the subject field is rotated to name a different process
	// (or, for subject-less payloads, a data byte is flipped) without
	// fixing up any authentication — under the internal/byz interposer the
	// frame then fails its MAC check.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Equivocate splits the victim's receivers into groups that see
	// different variants of each matching message: group 0 (and every
	// unlisted receiver) gets the true payload, group g gets the subject
	// rotated by g — and, for sealed frames, resealed under the victim's
	// key, so each variant authenticates and only a broadcast-consistency
	// cross-check (the interposer's echo quorum) can catch the split.
	// At least two groups; members must be distinct and exclude the victim.
	Equivocate [][]model.ProcID `json:"equivocate,omitempty"`
	// Replay is the probability that, alongside a matching message, the
	// plane re-injects the previously transmitted matching wire payload on
	// the same link as a ghost copy.
	Replay float64 `json:"replay,omitempty"`
	// ReplayDelay delays each ghost copy this many ticks beyond the host's
	// base delay. Choose it above the interposer's replay horizon to model
	// a stale replay (convicted) rather than a fresh duplicate (absorbed).
	ReplayDelay int64 `json:"replay_delay,omitempty"`
}

// noop reports whether the rule forges nothing at all.
func (b ByzRule) noop() bool {
	return b.Corrupt == 0 && len(b.Equivocate) == 0 && b.Replay == 0
}

// validateByz checks the plan's Byzantine rules; part of Plan.Validate.
func (p Plan) validateByz(n int) error {
	for i, b := range p.Byz {
		if b.Victim < 1 || int(b.Victim) > n {
			return fmt.Errorf("netadv: byz rule %d of plan %q: victim %d outside 1..%d", i, p.Name, b.Victim, n)
		}
		if b.From < 0 {
			return fmt.Errorf("netadv: byz rule %d of plan %q: negative From %d", i, p.Name, b.From)
		}
		if b.Until != 0 && b.Until <= b.From {
			return fmt.Errorf("netadv: byz rule %d of plan %q: Until %d not after From %d", i, p.Name, b.Until, b.From)
		}
		for _, pr := range [...]struct {
			name string
			v    float64
		}{{"Corrupt", b.Corrupt}, {"Replay", b.Replay}} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("netadv: byz rule %d of plan %q: %s=%v outside [0,1]", i, p.Name, pr.name, pr.v)
			}
		}
		if b.ReplayDelay < 0 {
			return fmt.Errorf("netadv: byz rule %d of plan %q: negative ReplayDelay %d", i, p.Name, b.ReplayDelay)
		}
		if b.ReplayDelay != 0 && b.Replay == 0 {
			return fmt.Errorf("netadv: byz rule %d of plan %q: ReplayDelay %d without Replay", i, p.Name, b.ReplayDelay)
		}
		if b.noop() {
			return fmt.Errorf("netadv: byz rule %d of plan %q: no effect (none of Corrupt/Equivocate/Replay set)", i, p.Name)
		}
		seenTag := make(map[string]bool, len(b.Tags))
		for _, tag := range b.Tags {
			if tag == "" {
				// Payload tags are never empty, so the entry can never match.
				return fmt.Errorf("netadv: byz rule %d of plan %q: empty tag never matches any message", i, p.Name)
			}
			if seenTag[tag] {
				return fmt.Errorf("netadv: byz rule %d of plan %q: duplicate tag %q", i, p.Name, tag)
			}
			seenTag[tag] = true
		}
		if len(b.Equivocate) == 1 {
			return fmt.Errorf("netadv: byz rule %d of plan %q: Equivocate needs at least 2 groups (one group has no one to disagree with)", i, p.Name)
		}
		seen := make(map[model.ProcID]int)
		for gi, g := range b.Equivocate {
			if len(g) == 0 {
				return fmt.Errorf("netadv: byz rule %d of plan %q: equivocation group %d is empty", i, p.Name, gi)
			}
			for _, proc := range g {
				if proc < 1 || int(proc) > n {
					return fmt.Errorf("netadv: byz rule %d of plan %q: process %d outside 1..%d", i, p.Name, proc, n)
				}
				if proc == b.Victim {
					return fmt.Errorf("netadv: byz rule %d of plan %q: victim %d cannot be its own receiver group member", i, p.Name, proc)
				}
				if prev, dup := seen[proc]; dup {
					if prev == gi {
						return fmt.Errorf("netadv: byz rule %d of plan %q: process %d listed twice in equivocation group %d", i, p.Name, proc, gi)
					}
					return fmt.Errorf("netadv: byz rule %d of plan %q: process %d in both equivocation group %d and group %d", i, p.Name, proc, prev, gi)
				}
				seen[proc] = gi
			}
		}
		// A rule whose whole window sits inside an unconditional all-link
		// Cut can never put a forged frame on the wire.
		for ri, r := range p.Rules {
			if !r.Cut || r.Period != 0 || !r.Links.Empty() {
				continue
			}
			windowCovered := r.From <= b.From && (r.Until == 0 || (b.Until != 0 && b.Until <= r.Until))
			if !windowCovered {
				continue
			}
			tagsCovered := len(r.Tags) == 0
			if !tagsCovered && len(b.Tags) > 0 {
				cut := make(map[string]bool, len(r.Tags))
				for _, t := range r.Tags {
					cut[t] = true
				}
				tagsCovered = true
				for _, t := range b.Tags {
					if !cut[t] {
						tagsCovered = false
						break
					}
				}
			}
			if tagsCovered {
				return fmt.Errorf("netadv: byz rule %d of plan %q: its window lies inside rule %d's unconditional Cut, so it can never fire", i, p.Name, ri)
			}
		}
	}
	return nil
}

// compiledByz is a ByzRule with its selectors resolved into constant-time
// lookups.
type compiledByz struct {
	ByzRule
	tags    map[string]bool
	groupOf map[model.ProcID]int // receiver -> equivocation group
}

func (cb *compiledByz) activeAt(at int64) bool {
	return at >= cb.From && (cb.Until == 0 || at < cb.Until)
}

func (cb *compiledByz) matches(from model.ProcID, tag string) bool {
	if from != cb.Victim {
		return false
	}
	return len(cb.tags) == 0 || cb.tags[tag]
}

// byzKey identifies one Byzantine rule's replay memory on one directed
// link.
type byzKey struct {
	rule int
	link Link
}

// applyByz applies the plan's Byzantine rules to one decided message,
// composing onto dec. Dropped messages put nothing on the wire, so there
// is nothing to forge or remember. Fates derive from a per-rule lazy
// stream over (seed, rule, link, index) — separate from the network rules'
// shared stream, so adding Byzantine rules to a plan never shifts the
// fates its existing rules assign.
func (pl *Plane) applyByz(dec *node.LinkDecision, from, to model.ProcID, p node.Payload, link Link, idx uint64, at int64) {
	if len(pl.byzRules) == 0 || dec.Drop {
		return
	}
	wire := p // what actually goes on the wire, mutations composed
	anyReplay := false
	for bi := range pl.byzRules {
		cb := &pl.byzRules[bi]
		if !cb.activeAt(at) || !cb.matches(from, p.Tag) {
			continue
		}
		brng := newByzStream(pl.seed, bi, link, idx)
		corruptRoll := brng.float64()
		replayRoll := brng.float64()
		delta := 1 + int(brng.uint64()%uint64(pl.n-1))
		if g, ok := cb.groupOf[to]; ok && g > 0 {
			// Equivocation: this receiver's group sees the subject rotated
			// by the group index, resealed so the variant authenticates.
			wire = equivocatePayload(wire, from, g, pl.n)
			dec.Replace = &node.Replacement{Payload: wire, Note: "equiv=g" + strconv.Itoa(g)}
			pl.cEquivocated.Inc()
		} else if cb.Corrupt > 0 && corruptRoll < cb.Corrupt {
			// Corruption: mutate without resealing — an authenticated frame
			// then fails its MAC check at the receiver.
			wire = corruptPayload(wire, delta, pl.n)
			dec.Replace = &node.Replacement{Payload: wire, Note: "corrupt"}
			pl.cCorrupted.Inc()
		}
		if cb.Replay > 0 && replayRoll < cb.Replay {
			pl.mu.Lock()
			mem, ok := pl.replayMem[byzKey{rule: bi, link: link}]
			pl.mu.Unlock()
			if ok {
				dec.Replay = &node.ReplayedCopy{Payload: mem, Delay: cb.ReplayDelay}
				pl.cReplayed.Inc()
			}
			anyReplay = true
		}
		if cb.Replay > 0 {
			anyReplay = true
		}
	}
	if !anyReplay {
		return
	}
	// Remember what actually went on the wire, per (rule, link), for the
	// rule's future replays.
	pl.mu.Lock()
	for bi := range pl.byzRules {
		cb := &pl.byzRules[bi]
		if cb.Replay > 0 && cb.activeAt(at) && cb.matches(from, p.Tag) {
			pl.replayMem[byzKey{rule: bi, link: link}] = wire
		}
	}
	pl.mu.Unlock()
}

// equivocatePayload is variant g of a broadcast payload: the subject
// rotated by g and, when the payload is sealed by the internal/byz layer
// (directly or under a reliable-layer frame), resealed under the sender's
// key — the Byzantine sender signs its own lies, so only the echo quorum's
// consistency cross-check can catch the split.
func equivocatePayload(p node.Payload, sender model.ProcID, g, n int) node.Payload {
	ns := rotateSubject(p.Subject, g, n)
	if off, ok := sealedBodyOffset(p.Data); ok {
		if resealed, ok2 := byz.Reseal(p.Data[off:], sender, p.Tag, ns); ok2 {
			data := append(append([]byte(nil), p.Data[:off]...), resealed...)
			return node.Payload{Tag: p.Tag, Subject: ns, Data: data}
		}
	}
	return node.Payload{Tag: p.Tag, Subject: ns, Data: p.Data}
}

// corruptPayload mutates one field deterministically: the subject rotates
// to name a different process; subject-less payloads get a data byte
// flipped; empty payloads get a subject forged from nothing.
func corruptPayload(p node.Payload, delta, n int) node.Payload {
	out := p
	switch {
	case p.Subject != model.None:
		out.Subject = rotateSubject(p.Subject, delta, n)
	case len(p.Data) > 0:
		data := append([]byte(nil), p.Data...)
		data[len(data)-1] ^= 0x01
		out.Data = data
	default:
		out.Subject = model.ProcID(delta)
	}
	return out
}

// rotateSubject maps s to another process id, delta steps around 1..n.
func rotateSubject(s model.ProcID, delta, n int) model.ProcID {
	return model.ProcID(((int(s)-1+delta)%n+n)%n + 1)
}

// sealedBodyOffset locates a byz-sealed body inside wire data: sealed
// directly, or sealed under the link layer's framing (node.WireBodyFn).
func sealedBodyOffset(data []byte) (off int, ok bool) {
	if byz.Sealed(data) {
		return 0, true
	}
	if node.WireBodyFn != nil {
		if off, ok := node.WireBodyFn(data); ok && byz.Sealed(data[off:]) {
			return off, true
		}
	}
	return 0, false
}

// newByzStream seeds one Byzantine rule's lazy fate stream for one message:
// a distinct salt and the rule index keep it independent of the network
// rules' shared stream and of every other Byzantine rule.
func newByzStream(seed int64, rule int, l Link, idx uint64) stream {
	const byzSalt = 0x7c3d1e9a55f20b64
	return newStream(int64(mix(uint64(seed)^byzSalt^uint64(rule)*0x9e3779b97f4a7c15)), l, idx)
}
