package netadv

import (
	"strings"
	"testing"

	"failstop/internal/byz"
	"failstop/internal/model"
	"failstop/internal/node"
)

func TestByzRuleValidate(t *testing.T) {
	valid := func(mut func(*ByzRule)) Plan {
		b := ByzRule{Victim: 1, From: 10, Until: 100, Tags: []string{"SUSP"}, Corrupt: 0.5}
		if mut != nil {
			mut(&b)
		}
		return Plan{Name: "p", Byz: []ByzRule{b}}
	}
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error; "" means valid
	}{
		{"valid corrupt", valid(nil), ""},
		{"valid equivocate", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2, 3}, {4, 5}}
		}), ""},
		{"valid replay", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Replay = 1
			b.ReplayDelay = 200
		}), ""},
		{"victim zero", valid(func(b *ByzRule) { b.Victim = 0 }), "victim 0 outside 1..5"},
		{"victim beyond n", valid(func(b *ByzRule) { b.Victim = 6 }), "victim 6 outside 1..5"},
		{"negative from", valid(func(b *ByzRule) { b.From = -1 }), "negative From"},
		{"until before from", valid(func(b *ByzRule) { b.Until = 5 }), "Until 5 not after From 10"},
		{"corrupt above one", valid(func(b *ByzRule) { b.Corrupt = 1.5 }), "outside [0,1]"},
		{"negative replay", valid(func(b *ByzRule) { b.Replay = -0.1 }), "outside [0,1]"},
		{"negative replay delay", valid(func(b *ByzRule) {
			b.Replay = 1
			b.ReplayDelay = -3
		}), "negative ReplayDelay"},
		{"replay delay without replay", valid(func(b *ByzRule) { b.ReplayDelay = 50 }), "ReplayDelay 50 without Replay"},
		{"no effect", valid(func(b *ByzRule) { b.Corrupt = 0 }), "no effect"},
		{"empty tag", valid(func(b *ByzRule) { b.Tags = []string{""} }), "empty tag never matches"},
		{"duplicate tag", valid(func(b *ByzRule) { b.Tags = []string{"SUSP", "SUSP"} }), `duplicate tag "SUSP"`},
		{"single equivocation group", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2, 3}}
		}), "at least 2 groups"},
		{"empty equivocation group", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2}, {}}
		}), "group 1 is empty"},
		{"group member outside range", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2}, {9}}
		}), "process 9 outside 1..5"},
		{"victim in own group", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2}, {1}}
		}), "cannot be its own receiver group member"},
		{"member twice in one group", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2, 2}, {3}}
		}), "listed twice in equivocation group 0"},
		{"member in two groups", valid(func(b *ByzRule) {
			b.Corrupt = 0
			b.Equivocate = [][]model.ProcID{{2}, {3, 2}}
		}), "in both equivocation group 0 and group 1"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.plan.Validate(5)
			if tt.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

// TestByzRuleInsideUnconditionalCutRejected: a Byzantine window fully
// covered by a permanent all-link cut can never put a forged frame on the
// wire, so Validate refuses the dead combination.
func TestByzRuleInsideUnconditionalCutRejected(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"window inside forever cut", Plan{Name: "dead", Rules: []Rule{
			{Cut: true},
		}, Byz: []ByzRule{
			{Victim: 1, From: 10, Corrupt: 1},
		}}, "can never fire"},
		{"window inside bounded cut", Plan{Name: "dead2", Rules: []Rule{
			{Cut: true, From: 0, Until: 500},
		}, Byz: []ByzRule{
			{Victim: 1, From: 10, Until: 100, Corrupt: 1},
		}}, "can never fire"},
		{"tagged cut covers byz tags", Plan{Name: "dead3", Rules: []Rule{
			{Cut: true, Tags: []string{"SUSP", "HB"}},
		}, Byz: []ByzRule{
			{Victim: 1, Tags: []string{"SUSP"}, Corrupt: 1},
		}}, "can never fire"},
		{"byz outlives the cut", Plan{Name: "alive", Rules: []Rule{
			{Cut: true, From: 0, Until: 100},
		}, Byz: []ByzRule{
			{Victim: 1, From: 10, Corrupt: 1},
		}}, ""},
		{"cut misses the byz tag", Plan{Name: "alive2", Rules: []Rule{
			{Cut: true, Tags: []string{"HB"}},
		}, Byz: []ByzRule{
			{Victim: 1, Tags: []string{"SUSP"}, Corrupt: 1},
		}}, ""},
		{"periodic cut leaves gaps", Plan{Name: "alive3", Rules: []Rule{
			{Cut: true, Period: 100, ActiveFor: 50},
		}, Byz: []ByzRule{
			{Victim: 1, Corrupt: 1},
		}}, ""},
		{"partial-link cut leaks", Plan{Name: "alive4", Rules: []Rule{
			{Cut: true, Links: LinkSet{Pairs: []Link{{From: 1, To: 2}}}},
		}, Byz: []ByzRule{
			{Victim: 1, Corrupt: 1},
		}}, ""},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.plan.Validate(5)
			if tt.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

// TestByzFatesDeterministic: the same plan and seed assign identical
// Byzantine fates; the fate of message k depends only on (rule, link, k).
func TestByzFatesDeterministic(t *testing.T) {
	plan := Plan{Name: "b", Byz: []ByzRule{{Victim: 1, Corrupt: 0.5, Replay: 0.5}}}
	run := func() []string {
		pl := NewPlane(plan, 5, 42)
		var fates []string
		for i := 0; i < 50; i++ {
			dec := pl.Decide(1, 2, node.Payload{Tag: "SUSP", Subject: 3}, int64(i))
			fates = append(fates, dec.Note())
		}
		return fates
	}
	a, b := run(), run()
	mutated := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d diverged across identical runs: %q vs %q", i, a[i], b[i])
		}
		if a[i] != "" {
			mutated = true
		}
	}
	if !mutated {
		t.Error("Corrupt=0.5 over 50 messages forged nothing")
	}
}

// TestByzStreamNeutral: adding Byzantine rules to a plan must not shift the
// fates its network rules assign — the Byzantine stream is separate.
func TestByzStreamNeutral(t *testing.T) {
	rules := []Rule{{Drop: 0.3, Duplicate: 0.3, JitterMax: 9}}
	bare := NewPlane(Plan{Name: "bare", Rules: rules}, 5, 7)
	withByz := NewPlane(Plan{
		Name:  "with-byz",
		Rules: rules,
		Byz:   []ByzRule{{Victim: 1, Corrupt: 1}},
	}, 5, 7)
	for i := 0; i < 200; i++ {
		a := bare.Decide(1, 2, node.Payload{Tag: "SUSP", Subject: 3}, int64(i))
		b := withByz.Decide(1, 2, node.Payload{Tag: "SUSP", Subject: 3}, int64(i))
		if a.Drop != b.Drop || a.Duplicates != b.Duplicates || a.ExtraDelay != b.ExtraDelay || a.Reorder != b.Reorder {
			t.Fatalf("message %d: network fate shifted by the byz rule: %+v vs %+v", i, a, b)
		}
	}
}

// TestByzWindowAndSelectors: outside its window, for other senders, and for
// unlisted tags the rule leaves traffic alone.
func TestByzWindowAndSelectors(t *testing.T) {
	pl := NewPlane(Plan{Name: "w", Byz: []ByzRule{
		{Victim: 1, From: 100, Until: 200, Tags: []string{"SUSP"}, Corrupt: 1},
	}}, 5, 1)
	cases := []struct {
		name   string
		from   model.ProcID
		tag    string
		at     int64
		forged bool
	}{
		{"inside window", 1, "SUSP", 150, true},
		{"before window", 1, "SUSP", 50, false},
		{"at until", 1, "SUSP", 200, false},
		{"other sender", 2, "SUSP", 150, false},
		{"other tag", 1, "HB", 150, false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			dec := pl.Decide(tt.from, 2, node.Payload{Tag: tt.tag, Subject: 3}, tt.at)
			if got := dec.Replace != nil; got != tt.forged {
				t.Errorf("forged = %v, want %v", got, tt.forged)
			}
		})
	}
}

// TestCorruptBreaksTheSeal: the corrupt mutation of a sealed frame leaves
// the MAC stale, and the equivocation variants reseal so each authenticates
// — the division of labor between MAC checks and echo quorums.
func TestCorruptBreaksTheSeal(t *testing.T) {
	seal := func(subject model.ProcID) node.Payload {
		p := node.Payload{Tag: "SUSP", Subject: subject, Data: []byte(`{"s":1}`)}
		// Reproduce the byz layer's sealing via its exported test seam: an
		// endpoint is heavyweight here, so seal through Reseal on a template
		// frame built by the layer itself.
		e := byz.Wrap(nopHandler{}, byz.Options{Enabled: true})
		ctx := &sealCtx{n: 5}
		e.Init(ctx)
		e.Context(ctx).Send(2, p)
		return node.Payload{Tag: p.Tag, Subject: p.Subject, Data: ctx.last}
	}

	corruptPl := NewPlane(Plan{Name: "c", Byz: []ByzRule{{Victim: 1, Corrupt: 1}}}, 5, 1)
	sealed := seal(3)
	dec := corruptPl.Decide(1, 2, sealed, 10)
	if dec.Replace == nil {
		t.Fatal("corrupt rule forged nothing")
	}
	if authenticates(dec.Replace.Payload) {
		t.Error("corrupted frame still authenticates; corruption must break the MAC")
	}

	equivPl := NewPlane(Plan{Name: "e", Byz: []ByzRule{
		{Victim: 1, Equivocate: [][]model.ProcID{{2}, {3}}},
	}}, 5, 1)
	dec = equivPl.Decide(1, 3, seal(3), 10)
	if dec.Replace == nil {
		t.Fatal("equivocation rule forged nothing for a group-1 receiver")
	}
	if !authenticates(dec.Replace.Payload) {
		t.Error("equivocated variant does not authenticate; the sender must sign its own lies")
	}
	if dec.Replace.Payload.Subject == sealed.Subject {
		t.Error("equivocated variant carries the original subject")
	}
}

type nopHandler struct{}

func (nopHandler) Init(node.Context)                                  {}
func (nopHandler) OnMessage(node.Context, model.ProcID, node.Payload) {}
func (nopHandler) OnTimer(node.Context, string)                       {}

// sealCtx captures the last sealed wire body an endpoint sends.
type sealCtx struct {
	n    int
	last []byte
}

func (c *sealCtx) Self() model.ProcID                  { return 1 }
func (c *sealCtx) N() int                              { return c.n }
func (c *sealCtx) Now() int64                          { return 0 }
func (c *sealCtx) Send(_ model.ProcID, p node.Payload) { c.last = p.Data }
func (c *sealCtx) SetTimer(string, int64)              {}
func (c *sealCtx) CancelTimer(string)                  {}
func (c *sealCtx) EmitFailed(model.ProcID)             {}
func (c *sealCtx) CrashSelf()                          {}
func (c *sealCtx) EmitInternal(string, model.ProcID)   {}

// authenticates checks a forged frame as receiver-side code would: a fresh
// endpoint delivers it, and the frame passes iff no conviction fires.
func authenticates(p node.Payload) bool {
	rec := &convictRec{}
	e := byz.Wrap(nopHandler{}, byz.Options{Enabled: true, EchoTags: []string{}})
	e.SetConvict(rec.convict)
	ctx := &sealCtx{n: 5}
	e.Init(ctx)
	e.OnMessage(ctx, 1, p)
	return !rec.convicted
}

type convictRec struct{ convicted bool }

func (r *convictRec) convict(node.Context, model.ProcID) { r.convicted = true }

// TestBuiltinByzantineMinority: the builtin instantiates a minority of
// forging victims across the grid, mixing equivocation+replay with plain
// corruption, and validates everywhere.
func TestBuiltinByzantineMinority(t *testing.T) {
	gen, ok := Builtin("byzantine-minority")
	if !ok {
		t.Fatal("byzantine-minority not registered")
	}
	for _, g := range []struct{ n, t int }{{2, 0}, {3, 1}, {5, 2}, {10, 3}} {
		plan := gen.Make(g.n, g.t)
		if err := plan.Validate(g.n); err != nil {
			t.Errorf("n=%d t=%d: %v", g.n, g.t, err)
		}
		want := g.t
		if want == 0 {
			want = 1
		}
		if len(plan.Byz) != want {
			t.Errorf("n=%d t=%d: %d byz rules, want %d (a minority of forgers)", g.n, g.t, len(plan.Byz), want)
		}
		for i, b := range plan.Byz {
			if b.Replay > 0 && b.ReplayDelay <= byz.DefaultReplayHorizon {
				t.Errorf("n=%d t=%d rule %d: ReplayDelay %d inside the replay horizon; the builtin must model a stale replay", g.n, g.t, i, b.ReplayDelay)
			}
		}
	}
}
