package netadv

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file is the plan-file format: a Plan serialized as one JSON object,
// the exact shape trace-v2 headers embed under "fault_plan". Plans are
// authored by hand, so reading is strict — unknown fields are errors, not
// silently ignored typos — and structural validation against a concrete
// cluster size happens separately via Plan.Validate (the reader does not
// know n). See examples/plans/ for authored examples and the README's
// "Authoring fault plans" section for the rule-field reference.

// ReadPlan parses a JSON fault plan from r. The decode is strict: unknown
// fields and trailing data are errors. The plan is syntactically parsed but
// NOT validated — callers must still run Plan.Validate(n) for their cluster
// size (NewPlane does so itself).
func ReadPlan(r io.Reader) (Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("netadv: parsing plan: %w", err)
	}
	// A second JSON value after the plan is as suspect as an unknown field;
	// a genuine read failure past the object keeps its own error.
	switch err := dec.Decode(new(json.RawMessage)); err {
	case io.EOF:
	case nil:
		return Plan{}, fmt.Errorf("netadv: trailing data after plan object")
	default:
		return Plan{}, fmt.Errorf("netadv: reading past plan object: %w", err)
	}
	if p.Empty() {
		// `null`, `{}`, and `{"rules":[]}` all decode to the zero Plan — a
		// silently fault-free network that a broken generation pipeline
		// would never notice. A fault-free cell is spelled by omitting the
		// plan, not by loading an empty one. A plan with only process-fault
		// rules ("procs") is fine: restarts are faults too.
		return Plan{}, fmt.Errorf("netadv: plan file has no rules or procs (empty, null, or missing both)")
	}
	return p, nil
}

// ReadPlanFile reads a JSON fault plan from the named file. A plan with no
// "name" field takes the file's base name (without extension), so every
// file-loaded plan has a usable identity for sweep cells and reports.
func ReadPlanFile(path string) (Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return Plan{}, fmt.Errorf("netadv: reading plan: %w", err)
	}
	defer f.Close()
	p, err := ReadPlan(f)
	if err != nil {
		return Plan{}, fmt.Errorf("%s: %w", path, err)
	}
	if p.Name == "" {
		base := filepath.Base(path)
		p.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return p, nil
}

// WritePlan writes the plan to w in the plan-file format (indented JSON,
// trailing newline) — the canonical shape ReadPlan accepts, also used by
// sfs-sim -dump-plan to turn a builtin into an editable starting point.
// An empty plan (no rules and no procs) is rejected symmetrically with
// ReadPlan: it would produce a file no reader accepts.
func WritePlan(w io.Writer, p Plan) error {
	if p.Empty() {
		return fmt.Errorf("netadv: refusing to write plan %q with no rules or procs (a fault-free network is spelled by omitting the plan)", p.Name)
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("netadv: encoding plan: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("netadv: writing plan: %w", err)
	}
	return nil
}

// Fixed wraps an already-instantiated plan (typically one loaded from a
// file) as a Generator, so it can ride the sweep engine's Plans axis next
// to the builtins. The plan is used as-is for every grid cell; Spec.Validate
// checks it against each grid point's cluster size.
func Fixed(p Plan) Generator {
	return Generator{Name: p.Name, Make: func(n, t int) Plan { return p }}
}
