package netadv

import (
	"sort"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/topo"
)

// Generator is a named built-in plan family: Make instantiates the plan for
// a concrete cluster size n and failure bound t (group membership and fault
// intensity scale with both).
type Generator struct {
	Name string
	// Make builds the plan. A nil Make (the zero Generator) means no plan.
	Make func(n, t int) Plan
}

// Builtin returns the named built-in plan generator.
func Builtin(name string) (Generator, bool) {
	for _, g := range Builtins() {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// BuiltinNames lists the built-in plan names, sorted.
func BuiltinNames() []string {
	var out []string
	for _, g := range Builtins() {
		out = append(out, g.Name)
	}
	sort.Strings(out)
	return out
}

// Builtins returns every built-in plan generator:
//
//   - "split-brain": from tick 10 the cluster splits into two halves that
//     never heal. The majority half can still assemble minimum quorums; the
//     minority half starves: its detections begin but cannot complete.
//   - "isolated-minority": from tick 10 the t highest-numbered processes
//     are cut off from everyone else (and remain connected to each other).
//   - "one-way-cut": from tick 10 the highest-numbered process is mute —
//     its outbound links are cut one-directionally (explicit Pairs) while
//     inbound delivery keeps working. It can follow every detection round
//     but contributes nothing to anyone else's quorum.
//   - "flaky-quorum": every link drops 35% of the quorum protocol's "j
//     failed" messages for the whole run, and adds up to 5 ticks of jitter —
//     detection liveness now depends on which SUSP copies survive.
//   - "healing-partition": the split-brain split, lossy, with a scheduled
//     heal at tick 200: cross-half messages sent during the cut are dropped
//     for good, so a protocol that broadcasts once (like §5) starves even
//     after the heal — unless a retransmission layer (internal/reliable)
//     runs underneath it.
//   - "buffering-partition": the same split and heal, but buffering instead
//     of lossy (Hold): cross-half messages are delivered just after the
//     heal, modeling links that queue until connectivity returns.
//   - "moving-partition": from tick 10 the cut rotates instead of sitting
//     still — each process in turn is isolated (lossy, both directions) for
//     MovingPartitionStride ticks, cycling through the whole cluster
//     forever. At any instant exactly one process is dark, so a quorum of
//     n-1 survives among the rest; what the dark process broadcast into its
//     window is lost for good. This is the adversarial-timing family of
//     Gafni & Losa's "Time Is Not a Healer": no single partition lasts, yet
//     some process is always unreachable.
//   - "region-cut": the correlated-failure workload (internal/topo). The
//     cluster is read as two regions (hier:2x1); from tick 10 until the
//     heal at tick 200 every link crossing region 1's boundary is cut —
//     the second region loses its uplink wholesale, the way a real
//     datacenter region does, while links inside each region stay clean.
//     Quorums spanning the cut starve until the heal; with partial quorums
//     over a hierarchical topology, detections inside each region proceed.
//   - "byzantine-minority": the Byzantine workload (internal/byz). From
//     tick 10 the t highest-numbered processes turn traitor on the quorum
//     protocol's "j failed" traffic: victims alternate between equivocators
//     — each matching broadcast shows the two halves of the victim's
//     receivers different subjects, resealed so both variants authenticate,
//     plus a stale replay of the previous matching frame ByzReplayDelay
//     ticks late — and corruptors, whose every matching frame is mutated
//     without resealing and fails its MAC check. With the internal/byz
//     interposer on, every victim is convicted and masked into a crash;
//     with it off, forged SUSP traffic feeds the detectors directly.
//   - "restart-storm": the crash-recovery workload (internal/recovery).
//     The two highest-numbered processes crash and restart on staggered
//     periodic windows forever: each is down for RestartStormDowntime ticks
//     out of every RestartStormPeriod. Under recovery mode "off" the first
//     window is terminal (the fail-stop reading of the storm); under
//     "amnesia" the processes return blank; under "durable" they return
//     with their snapshotted detector and reliable-layer state. The storm
//     is unbounded, so runs need a horizon (sim MaxTime).
func Builtins() []Generator {
	return []Generator{
		{Name: "split-brain", Make: func(n, t int) Plan {
			return Plan{Name: "split-brain", Rules: []Rule{
				{From: 10, Cut: true, Links: LinkSet{Groups: halves(n)}},
			}}
		}},
		{Name: "isolated-minority", Make: func(n, t int) Plan {
			return Plan{Name: "isolated-minority", Rules: []Rule{
				{From: 10, Cut: true, Links: LinkSet{Groups: [][]model.ProcID{minority(n, t)}}},
			}}
		}},
		{Name: "one-way-cut", Make: func(n, t int) Plan {
			mute := model.ProcID(n)
			pairs := make([]Link, 0, n-1)
			for p := 1; p < n; p++ {
				pairs = append(pairs, Link{From: mute, To: model.ProcID(p)})
			}
			return Plan{Name: "one-way-cut", Rules: []Rule{
				{From: 10, Cut: true, Links: LinkSet{Pairs: pairs}},
			}}
		}},
		{Name: "flaky-quorum", Make: func(n, t int) Plan {
			return Plan{Name: "flaky-quorum", Rules: []Rule{
				{Tags: []string{core.TagSusp}, Drop: 0.35, JitterMax: 5},
			}}
		}},
		{Name: "healing-partition", Make: func(n, t int) Plan {
			return Plan{Name: "healing-partition", Rules: []Rule{
				{From: 10, Until: 200, Cut: true, Links: LinkSet{Groups: halves(n)}},
			}}
		}},
		{Name: "buffering-partition", Make: func(n, t int) Plan {
			return Plan{Name: "buffering-partition", Rules: []Rule{
				{From: 10, Until: 200, Hold: true, Links: LinkSet{Groups: halves(n)}},
			}}
		}},
		{Name: "moving-partition", Make: func(n, t int) Plan {
			// One periodic rule per process: rule p isolates process p for
			// one stride, staggered so the cut hands off seamlessly and
			// wraps around every n strides.
			cycle := int64(n) * MovingPartitionStride
			rules := make([]Rule, 0, n)
			for p := 1; p <= n; p++ {
				rules = append(rules, Rule{
					From:      10 + int64(p-1)*MovingPartitionStride,
					Period:    cycle,
					ActiveFor: MovingPartitionStride,
					Cut:       true,
					Links:     LinkSet{Groups: [][]model.ProcID{{model.ProcID(p)}}},
				})
			}
			return Plan{Name: "moving-partition", Rules: rules}
		}},
		{Name: "region-cut", Make: func(n, t int) Plan {
			return Plan{
				Name: "region-cut",
				Topo: &topo.Spec{Kind: topo.KindHier, Regions: 2, Racks: 1},
				Rules: []Rule{
					{From: 10, Until: 200, Cut: true, Links: LinkSet{Regions: []int{1}}},
				},
			}
		}},
		{Name: "byzantine-minority", Make: func(n, t int) Plan {
			victims := minority(n, t)
			rules := make([]ByzRule, 0, len(victims))
			for i, v := range victims {
				if i%2 == 0 && n >= 3 {
					// Equivocator: split the victim's receivers in half and
					// show each half a different (validly resealed) subject;
					// replay the previous matching frame past any reasonable
					// replay horizon.
					rules = append(rules, ByzRule{
						Victim:      v,
						From:        10,
						Tags:        []string{core.TagSusp},
						Equivocate:  receiverHalves(n, v),
						Replay:      1,
						ReplayDelay: ByzReplayDelay,
					})
				} else {
					// Corruptor: every matching frame mutated without a
					// reseal — dead on arrival at any MAC check.
					rules = append(rules, ByzRule{
						Victim:  v,
						From:    10,
						Tags:    []string{core.TagSusp},
						Corrupt: 1,
					})
				}
			}
			return Plan{Name: "byzantine-minority", Byz: rules}
		}},
		{Name: "restart-storm", Make: func(n, t int) Plan {
			procs := []ProcRule{{
				Proc:      model.ProcID(n),
				CrashAt:   100,
				Period:    RestartStormPeriod,
				ActiveFor: RestartStormDowntime,
			}}
			if n >= 3 {
				// A second storm, staggered half a period, on the
				// next-highest process: two processes cycle through
				// downtime but never at the same phase.
				procs = append(procs, ProcRule{
					Proc:      model.ProcID(n - 1),
					CrashAt:   100 + RestartStormPeriod/2,
					Period:    RestartStormPeriod,
					ActiveFor: RestartStormDowntime,
				})
			}
			return Plan{Name: "restart-storm", Procs: procs}
		}},
	}
}

// MovingPartitionStride is how long the moving-partition builtin keeps each
// process isolated before the cut rotates on, in ticks.
const MovingPartitionStride = 60

// Restart-storm builtin timing: each stormed process crashes every
// RestartStormPeriod ticks and stays down for RestartStormDowntime of them.
const (
	RestartStormPeriod   = 400
	RestartStormDowntime = 150
)

// ByzReplayDelay is how late the byzantine-minority builtin's replayed
// frames arrive beyond the base delay, in ticks — chosen well past the
// interposer's default replay horizon (byz.DefaultReplayHorizon), so the
// ghosts register as stale replays rather than fresh duplicates.
const ByzReplayDelay = 400

// receiverHalves splits {1..n} \ {v} — the equivocating victim v's
// receivers — into two halves, lower-numbered half first.
func receiverHalves(n int, v model.ProcID) [][]model.ProcID {
	recv := make([]model.ProcID, 0, n-1)
	for p := 1; p <= n; p++ {
		if model.ProcID(p) != v {
			recv = append(recv, model.ProcID(p))
		}
	}
	half := (len(recv) + 1) / 2
	return [][]model.ProcID{recv[:half], recv[half:]}
}

// halves splits 1..n into a majority half [1..ceil(n/2)] and the rest.
func halves(n int) [][]model.ProcID {
	maj := (n + 1) / 2
	a := make([]model.ProcID, 0, maj)
	b := make([]model.ProcID, 0, n-maj)
	for p := 1; p <= n; p++ {
		if p <= maj {
			a = append(a, model.ProcID(p))
		} else {
			b = append(b, model.ProcID(p))
		}
	}
	return [][]model.ProcID{a, b}
}

// minority returns the t highest-numbered processes (at least one, at most
// n-1, so somebody is always left on the majority side).
func minority(n, t int) []model.ProcID {
	k := t
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	out := make([]model.ProcID, 0, k)
	for p := n - k + 1; p <= n; p++ {
		out = append(out, model.ProcID(p))
	}
	return out
}
