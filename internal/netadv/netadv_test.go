package netadv

import (
	"reflect"
	"testing"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
)

func TestLinkSetMatching(t *testing.T) {
	pl := NewPlane(Plan{Name: "x", Rules: []Rule{
		{Cut: true, Links: LinkSet{Groups: [][]model.ProcID{{1, 2}, {3, 4}}}},
	}}, 5, 0)
	cases := []struct {
		from, to model.ProcID
		cut      bool
	}{
		{1, 2, false}, // same group
		{3, 4, false}, // same group
		{1, 3, true},  // across groups
		{4, 2, true},  // across groups, other direction
		{1, 5, true},  // listed vs residual
		{5, 5, false}, // residual vs residual (degenerate, same group)
	}
	for _, c := range cases {
		dec := pl.Decide(c.from, c.to, node.Payload{Tag: "APP"}, 0)
		if dec.Drop != c.cut {
			t.Errorf("link %d->%d: Drop=%v, want %v", c.from, c.to, dec.Drop, c.cut)
		}
	}
}

func TestPairsMatchRegardlessOfGroups(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{Cut: true, Links: LinkSet{Pairs: []Link{{From: 1, To: 2}}}},
	}}, 3, 0)
	if !pl.Decide(1, 2, node.Payload{}, 0).Drop {
		t.Error("explicit pair 1->2 not cut")
	}
	if pl.Decide(2, 1, node.Payload{}, 0).Drop {
		t.Error("reverse direction 2->1 cut; pairs are directed")
	}
}

func TestRuleWindow(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 10, Until: 20, Cut: true},
	}}, 3, 0)
	for _, c := range []struct {
		at  int64
		cut bool
	}{{0, false}, {9, false}, {10, true}, {19, true}, {20, false}, {100, false}} {
		if got := pl.Decide(1, 2, node.Payload{}, c.at).Drop; got != c.cut {
			t.Errorf("at=%d: Drop=%v, want %v", c.at, got, c.cut)
		}
	}
}

func TestTagTargeting(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{Cut: true, Tags: []string{core.TagSusp}},
	}}, 3, 0)
	if !pl.Decide(1, 2, node.Payload{Tag: core.TagSusp}, 0).Drop {
		t.Error("SUSP message not cut")
	}
	if pl.Decide(1, 2, node.Payload{Tag: core.TagApp}, 0).Drop {
		t.Error("APP message cut despite tag targeting")
	}
}

// TestDecisionDeterminism verifies fates are a pure function of (seed,
// link, per-link message index): two planes with the same seed agree
// message for message, and a different seed diverges somewhere.
func TestDecisionDeterminism(t *testing.T) {
	plan := Plan{Rules: []Rule{{Drop: 0.3, Duplicate: 0.2, Reorder: 0.1, JitterMax: 7}}}
	a := NewPlane(plan, 4, 42)
	b := NewPlane(plan, 4, 42)
	c := NewPlane(plan, 4, 43)
	var diverged bool
	for i := 0; i < 200; i++ {
		da := a.Decide(1, 2, node.Payload{Tag: "APP"}, int64(i))
		db := b.Decide(1, 2, node.Payload{Tag: "APP"}, int64(i))
		dc := c.Decide(1, 2, node.Payload{Tag: "APP"}, int64(i))
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("message %d: same seed diverged: %+v vs %+v", i, da, db)
		}
		if !reflect.DeepEqual(da, dc) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical fates for 200 messages")
	}
}

// TestDecisionIndependentOfOtherLinks verifies one link's fates do not
// depend on traffic interleaved on other links — the property that makes
// plan semantics portable to the nondeterministic live runtime.
func TestDecisionIndependentOfOtherLinks(t *testing.T) {
	plan := Plan{Rules: []Rule{{Drop: 0.5}}}
	solo := NewPlane(plan, 4, 7)
	mixed := NewPlane(plan, 4, 7)
	var want []node.LinkDecision
	for i := 0; i < 50; i++ {
		want = append(want, solo.Decide(1, 2, node.Payload{}, int64(i)))
	}
	var got []node.LinkDecision
	for i := 0; i < 50; i++ {
		mixed.Decide(3, 4, node.Payload{}, int64(i)) // interleaved traffic
		got = append(got, mixed.Decide(1, 2, node.Payload{}, int64(i)))
		mixed.Decide(2, 3, node.Payload{}, int64(i))
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("fates on link 1->2 changed when other links carried traffic")
	}
}

func TestDropRateRoughlyHonored(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{{Drop: 0.3}}}, 2, 1)
	dropped := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if pl.Decide(1, 2, node.Payload{}, int64(i)).Drop {
			dropped++
		}
	}
	if rate := float64(dropped) / total; rate < 0.25 || rate > 0.35 {
		t.Errorf("drop rate %.3f far from configured 0.3", rate)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{From: -1}}},
		{Rules: []Rule{{From: 10, Until: 10}}},
		{Rules: []Rule{{Drop: 1.5}}},
		{Rules: []Rule{{Duplicate: -0.1}}},
		{Rules: []Rule{{JitterMax: -1}}},
		{Rules: []Rule{{Links: LinkSet{Groups: [][]model.ProcID{{0}}}}}},
		{Rules: []Rule{{Links: LinkSet{Groups: [][]model.ProcID{{6}}}}}},
		{Rules: []Rule{{Links: LinkSet{Pairs: []Link{{From: 1, To: 9}}}}}},
	}
	for i, p := range bad {
		if err := p.Validate(5); err == nil {
			t.Errorf("plan %d validated despite being invalid: %+v", i, p)
		}
	}
	ok := Plan{Rules: []Rule{
		{From: 10, Until: 200, Cut: true, Links: LinkSet{Groups: [][]model.ProcID{{1, 2}, {3}}}},
		{Drop: 0.5, Duplicate: 1, Reorder: 0.25, JitterMax: 10, Tags: []string{"APP"}},
	}}
	if err := ok.Validate(5); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestNewPlanePanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlane accepted an invalid plan")
		}
	}()
	NewPlane(Plan{Rules: []Rule{{Drop: 2}}}, 3, 0)
}

func TestBuiltinsValidateAcrossGrid(t *testing.T) {
	for _, g := range Builtins() {
		for _, nt := range [][2]int{{2, 1}, {5, 2}, {10, 3}, {15, 4}} {
			plan := g.Make(nt[0], nt[1])
			if plan.Name != g.Name {
				t.Errorf("%s: plan named %q", g.Name, plan.Name)
			}
			if err := plan.Validate(nt[0]); err != nil {
				t.Errorf("%s at n=%d t=%d: %v", g.Name, nt[0], nt[1], err)
			}
			if plan.Empty() {
				t.Errorf("%s at n=%d t=%d: empty plan", g.Name, nt[0], nt[1])
			}
		}
	}
}

func TestBuiltinLookup(t *testing.T) {
	names := BuiltinNames()
	want := []string{"buffering-partition", "flaky-quorum", "healing-partition", "isolated-minority", "one-way-cut", "split-brain"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("BuiltinNames() = %v, want %v", names, want)
	}
	for _, name := range names {
		if _, ok := Builtin(name); !ok {
			t.Errorf("Builtin(%q) not found", name)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("Builtin(nope) found")
	}
}

// TestSplitBrainSemantics spot-checks the built-in: before tick 10 all
// links deliver; after, only links within a half do.
func TestSplitBrainSemantics(t *testing.T) {
	g, _ := Builtin("split-brain")
	pl := NewPlane(g.Make(5, 2), 5, 0) // halves {1,2,3} and {4,5}
	if pl.Decide(1, 4, node.Payload{}, 5).Drop {
		t.Error("cut before tick 10")
	}
	if !pl.Decide(1, 4, node.Payload{}, 10).Drop {
		t.Error("cross-half link 1->4 not cut at tick 10")
	}
	if pl.Decide(1, 3, node.Payload{}, 10).Drop {
		t.Error("intra-half link 1->3 cut")
	}
	if pl.Decide(4, 5, node.Payload{}, 50).Drop {
		t.Error("intra-minority link 4->5 cut")
	}
}

// TestHealingPartitionHeals verifies the lossy scheduled heal: during
// [10, 200) cross-half messages are dropped for good, and after the heal
// they flow normally — recovering what was lost is the retransmission
// layer's job, not the network's.
func TestHealingPartitionHeals(t *testing.T) {
	g, _ := Builtin("healing-partition")
	pl := NewPlane(g.Make(6, 2), 6, 0)
	if !pl.Decide(1, 6, node.Payload{}, 100).Drop {
		t.Error("healing partition did not cut cross-half traffic during the window")
	}
	if pl.Decide(1, 2, node.Payload{}, 100).Drop {
		t.Error("intra-half link 1->2 cut")
	}
	after := pl.Decide(1, 6, node.Payload{}, 200)
	if after.Drop || after.ExtraDelay != 0 {
		t.Errorf("link still faulted after the heal: %+v", after)
	}
}

// TestBufferingPartitionHolds verifies the buffering variant: during
// [10, 200) cross-half messages are held (delayed past the heal, not
// dropped), and after the heal they flow normally.
func TestBufferingPartitionHolds(t *testing.T) {
	g, _ := Builtin("buffering-partition")
	pl := NewPlane(g.Make(6, 2), 6, 0)
	dec := pl.Decide(1, 6, node.Payload{}, 100)
	if dec.Drop {
		t.Error("buffering partition drops instead of holding")
	}
	if dec.ExtraDelay < 100 {
		t.Errorf("ExtraDelay = %d at tick 100; want >= 100 so delivery lands after the tick-200 heal", dec.ExtraDelay)
	}
	after := pl.Decide(1, 6, node.Payload{}, 200)
	if after.Drop || after.ExtraDelay != 0 {
		t.Errorf("link still faulted after the heal: %+v", after)
	}
}

// TestOneWayCutIsDirectional: the mute process's outbound links are cut
// from tick 10; its inbound links and everyone else's traffic still flow.
func TestOneWayCutIsDirectional(t *testing.T) {
	g, _ := Builtin("one-way-cut")
	pl := NewPlane(g.Make(5, 2), 5, 0) // process 5 is mute
	if pl.Decide(5, 1, node.Payload{}, 5).Drop {
		t.Error("cut before tick 10")
	}
	if !pl.Decide(5, 1, node.Payload{}, 10).Drop {
		t.Error("outbound link 5->1 not cut at tick 10")
	}
	if pl.Decide(1, 5, node.Payload{}, 50).Drop {
		t.Error("inbound link 1->5 cut: the plan must be one-directional")
	}
	if pl.Decide(1, 2, node.Payload{}, 50).Drop {
		t.Error("bystander link 1->2 cut")
	}
}

func TestHoldRequiresUntil(t *testing.T) {
	if err := (Plan{Rules: []Rule{{Hold: true}}}).Validate(3); err == nil {
		t.Error("Hold without Until accepted")
	}
}
