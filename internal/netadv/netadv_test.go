package netadv

import (
	"reflect"
	"strings"
	"testing"

	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/recovery"
)

func TestLinkSetMatching(t *testing.T) {
	pl := NewPlane(Plan{Name: "x", Rules: []Rule{
		{Cut: true, Links: LinkSet{Groups: [][]model.ProcID{{1, 2}, {3, 4}}}},
	}}, 5, 0)
	cases := []struct {
		from, to model.ProcID
		cut      bool
	}{
		{1, 2, false}, // same group
		{3, 4, false}, // same group
		{1, 3, true},  // across groups
		{4, 2, true},  // across groups, other direction
		{1, 5, true},  // listed vs residual
		{5, 5, false}, // residual vs residual (degenerate, same group)
	}
	for _, c := range cases {
		dec := pl.Decide(c.from, c.to, node.Payload{Tag: "APP"}, 0)
		if dec.Drop != c.cut {
			t.Errorf("link %d->%d: Drop=%v, want %v", c.from, c.to, dec.Drop, c.cut)
		}
	}
}

func TestPairsMatchRegardlessOfGroups(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{Cut: true, Links: LinkSet{Pairs: []Link{{From: 1, To: 2}}}},
	}}, 3, 0)
	if !pl.Decide(1, 2, node.Payload{}, 0).Drop {
		t.Error("explicit pair 1->2 not cut")
	}
	if pl.Decide(2, 1, node.Payload{}, 0).Drop {
		t.Error("reverse direction 2->1 cut; pairs are directed")
	}
}

func TestRuleWindow(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 10, Until: 20, Cut: true},
	}}, 3, 0)
	for _, c := range []struct {
		at  int64
		cut bool
	}{{0, false}, {9, false}, {10, true}, {19, true}, {20, false}, {100, false}} {
		if got := pl.Decide(1, 2, node.Payload{}, c.at).Drop; got != c.cut {
			t.Errorf("at=%d: Drop=%v, want %v", c.at, got, c.cut)
		}
	}
}

func TestTagTargeting(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{Cut: true, Tags: []string{core.TagSusp}},
	}}, 3, 0)
	if !pl.Decide(1, 2, node.Payload{Tag: core.TagSusp}, 0).Drop {
		t.Error("SUSP message not cut")
	}
	if pl.Decide(1, 2, node.Payload{Tag: core.TagApp}, 0).Drop {
		t.Error("APP message cut despite tag targeting")
	}
}

// TestDecisionDeterminism verifies fates are a pure function of (seed,
// link, per-link message index): two planes with the same seed agree
// message for message, and a different seed diverges somewhere.
func TestDecisionDeterminism(t *testing.T) {
	plan := Plan{Rules: []Rule{{Drop: 0.3, Duplicate: 0.2, Reorder: 0.1, JitterMax: 7}}}
	a := NewPlane(plan, 4, 42)
	b := NewPlane(plan, 4, 42)
	c := NewPlane(plan, 4, 43)
	var diverged bool
	for i := 0; i < 200; i++ {
		da := a.Decide(1, 2, node.Payload{Tag: "APP"}, int64(i))
		db := b.Decide(1, 2, node.Payload{Tag: "APP"}, int64(i))
		dc := c.Decide(1, 2, node.Payload{Tag: "APP"}, int64(i))
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("message %d: same seed diverged: %+v vs %+v", i, da, db)
		}
		if !reflect.DeepEqual(da, dc) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical fates for 200 messages")
	}
}

// TestDecisionIndependentOfOtherLinks verifies one link's fates do not
// depend on traffic interleaved on other links — the property that makes
// plan semantics portable to the nondeterministic live runtime.
func TestDecisionIndependentOfOtherLinks(t *testing.T) {
	plan := Plan{Rules: []Rule{{Drop: 0.5}}}
	solo := NewPlane(plan, 4, 7)
	mixed := NewPlane(plan, 4, 7)
	var want []node.LinkDecision
	for i := 0; i < 50; i++ {
		want = append(want, solo.Decide(1, 2, node.Payload{}, int64(i)))
	}
	var got []node.LinkDecision
	for i := 0; i < 50; i++ {
		mixed.Decide(3, 4, node.Payload{}, int64(i)) // interleaved traffic
		got = append(got, mixed.Decide(1, 2, node.Payload{}, int64(i)))
		mixed.Decide(2, 3, node.Payload{}, int64(i))
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("fates on link 1->2 changed when other links carried traffic")
	}
}

func TestDropRateRoughlyHonored(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{{Drop: 0.3}}}, 2, 1)
	dropped := 0
	const total = 2000
	for i := 0; i < total; i++ {
		if pl.Decide(1, 2, node.Payload{}, int64(i)).Drop {
			dropped++
		}
	}
	if rate := float64(dropped) / total; rate < 0.25 || rate > 0.35 {
		t.Errorf("drop rate %.3f far from configured 0.3", rate)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []struct {
		name string
		plan Plan
		want string // substring of the error
	}{
		{"negative from", Plan{Rules: []Rule{{Cut: true, From: -1}}}, "negative From"},
		{"until not after from", Plan{Rules: []Rule{{Cut: true, From: 10, Until: 10}}}, "not after"},
		{"drop above 1", Plan{Rules: []Rule{{Drop: 1.5}}}, "outside [0,1]"},
		{"negative duplicate", Plan{Rules: []Rule{{Duplicate: -0.1}}}, "outside [0,1]"},
		{"negative jitter", Plan{Rules: []Rule{{JitterMax: -1}}}, "negative JitterMax"},
		{"process 0", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{Groups: [][]model.ProcID{{0}}}}}}, "outside 1..5"},
		{"process above n", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{Groups: [][]model.ProcID{{6}}}}}}, "outside 1..5"},
		{"pair above n", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{Pairs: []Link{{From: 1, To: 9}}}}}}, "outside 1..5"},
		{"negative queue delay", Plan{Rules: []Rule{{QueueDelay: -2}}}, "negative QueueDelay"},
		{"negative period", Plan{Rules: []Rule{{Cut: true, Period: -5, ActiveFor: 1}}}, "negative Period"},
		{"period without active_for", Plan{Rules: []Rule{{Cut: true, Period: 10}}}, "ActiveFor"},
		{"active_for above period", Plan{Rules: []Rule{{Cut: true, Period: 10, ActiveFor: 11}}}, "ActiveFor"},
		{"active_for without period", Plan{Rules: []Rule{{Cut: true, ActiveFor: 5}}}, "without a Period"},
		// The three validation landmines this PR closes: each used to pass
		// Validate and silently misbehave in NewPlane/Decide.
		{"overlapping groups", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{
			Groups: [][]model.ProcID{{1, 2}, {2, 3}},
		}}}}, "in both group 0 and group 1"},
		{"duplicate within one group", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{
			Groups: [][]model.ProcID{{1, 1}, {2}},
		}}}}, "listed twice in group 0"},
		{"empty group", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{
			Groups: [][]model.ProcID{{}},
		}}}}, "group 0 is empty"},
		{"empty group next to full one", Plan{Rules: []Rule{{Cut: true, Links: LinkSet{
			Groups: [][]model.ProcID{{1, 2}, {}},
		}}}}, "group 1 is empty"},
		{"cut and hold", Plan{Rules: []Rule{{Cut: true, Hold: true, Until: 50}}}, "contradictory"},
		{"hold window never closes", Plan{Rules: []Rule{{Hold: true, Period: 100, ActiveFor: 100}}}, "never closes"},
		{"no-op rule", Plan{Rules: []Rule{{From: 10, Links: LinkSet{
			Groups: [][]model.ProcID{{1}, {2}},
		}}}}, "no effect"},
		{"fully zero rule", Plan{Rules: []Rule{{}}}, "no effect"},
	}
	for _, tt := range bad {
		err := tt.plan.Validate(5)
		if err == nil {
			t.Errorf("%s: plan validated despite being invalid: %+v", tt.name, tt.plan)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.want)
		}
	}
	ok := Plan{Rules: []Rule{
		{From: 10, Until: 200, Cut: true, Links: LinkSet{Groups: [][]model.ProcID{{1, 2}, {3}}}},
		{Drop: 0.5, Duplicate: 1, Reorder: 0.25, JitterMax: 10, Tags: []string{"APP"}},
		{From: 5, Period: 100, ActiveFor: 40, Cut: true},
		{Hold: true, Period: 50, ActiveFor: 25}, // periodic hold needs no Until
		{QueueDelay: 15, Links: LinkSet{Pairs: []Link{{From: 1, To: 2}}}},
	}}
	if err := ok.Validate(5); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestProcRuleValidate(t *testing.T) {
	bad := []struct {
		name string
		plan Plan
		want string // substring of the error
	}{
		{"proc 0", Plan{Procs: []ProcRule{{Proc: 0, CrashAt: 10}}}, "outside 1..5"},
		{"proc above n", Plan{Procs: []ProcRule{{Proc: 6, CrashAt: 10}}}, "outside 1..5"},
		{"negative crash", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: -1}}}, "negative CrashAt"},
		{"negative period", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, Period: -2}}}, "negative Period"},
		{"restart before crash", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 20, RestartAt: 10}}}, "not after CrashAt"},
		{"restart equals crash", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 20, RestartAt: 20}}}, "not after CrashAt"},
		{"active_for without period", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, ActiveFor: 10}}}, "without a Period"},
		{"until without period", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, RestartAt: 9, Until: 100}}}, "without a Period"},
		{"restart_at with period", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, RestartAt: 9, Period: 50, ActiveFor: 10}}}, "RestartAt 9 with a Period"},
		{"period without active_for", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, Period: 50}}}, "ActiveFor"},
		{"active_for fills period", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, Period: 50, ActiveFor: 50}}}, "ActiveFor"},
		{"until before first crash", Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 100, Period: 50, ActiveFor: 10, Until: 40}}}, "before the first CrashAt"},
		{"storm plus one-shot", Plan{Procs: []ProcRule{
			{Proc: 2, CrashAt: 5, Period: 50, ActiveFor: 10},
			{Proc: 2, CrashAt: 500, RestartAt: 600},
		}}, "only rule"},
		{"crash after terminal crash", Plan{Procs: []ProcRule{
			{Proc: 3, CrashAt: 10},
			{Proc: 3, CrashAt: 50, RestartAt: 60},
		}}, "terminally"},
		{"overlapping lifetimes", Plan{Procs: []ProcRule{
			{Proc: 3, CrashAt: 10, RestartAt: 50},
			{Proc: 3, CrashAt: 40, RestartAt: 90},
		}}, "overlapping"},
		{"second crash at restart tick", Plan{Procs: []ProcRule{
			{Proc: 3, CrashAt: 10, RestartAt: 50},
			{Proc: 3, CrashAt: 50, RestartAt: 90},
		}}, "overlapping"},
	}
	for _, tt := range bad {
		err := tt.plan.Validate(5)
		if err == nil {
			t.Errorf("%s: plan validated despite being invalid: %+v", tt.name, tt.plan)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.want)
		}
	}
	ok := Plan{Procs: []ProcRule{
		{Proc: 1, CrashAt: 10},                                         // terminal one-shot
		{Proc: 2, CrashAt: 0, RestartAt: 30},                           // crash at time 0 is legal
		{Proc: 3, CrashAt: 100, RestartAt: 150},                        // out of plan order vs the next rule
		{Proc: 3, CrashAt: 10, RestartAt: 40},                          // chronological order is what matters
		{Proc: 3, CrashAt: 200},                                        // terminal last lifetime
		{Proc: 4, CrashAt: 50, Period: 100, ActiveFor: 30},             // unbounded storm
		{Proc: 5, CrashAt: 50, Period: 100, ActiveFor: 99, Until: 500}, // bounded storm
	}}
	if err := ok.Validate(5); err != nil {
		t.Errorf("valid proc plan rejected: %v", err)
	}
	if !ok.UnboundedProcs() {
		t.Error("UnboundedProcs() = false with an unbounded storm present")
	}
	if bounded := (Plan{Procs: []ProcRule{{Proc: 1, CrashAt: 5, Period: 50, ActiveFor: 10, Until: 400}}}); bounded.UnboundedProcs() {
		t.Error("UnboundedProcs() = true for a bounded storm")
	}
}

func TestProcRuleLifetimes(t *testing.T) {
	p := Plan{Procs: []ProcRule{
		{Proc: 2, CrashAt: 10, RestartAt: 40},
		{Proc: 3, CrashAt: 50},
		{Proc: 4, CrashAt: 100, Period: 300, ActiveFor: 120, Until: 2000},
	}}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	got := p.Lifetimes()
	want := []recovery.Lifetime{
		{Proc: 2, Crash: 10, Restart: 40},
		{Proc: 3, Crash: 50},
		{Proc: 4, Crash: 100, Restart: 220, Period: 300, Until: 2000},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Lifetimes() = %+v, want %+v", got, want)
	}
	if lts := (Plan{Rules: []Rule{{Cut: true}}}).Lifetimes(); lts != nil {
		t.Errorf("net-only plan has lifetimes: %+v", lts)
	}
}

// TestOverlappingGroupsRejected pins the first validation bugfix end to
// end: before it, NewPlane compiled groupOf last-wins, so {1,2},{2,3}
// silently behaved as {1},{2,3} — process 2's links to 3 stopped matching.
func TestOverlappingGroupsRejected(t *testing.T) {
	p := Plan{Rules: []Rule{{Cut: true, Links: LinkSet{
		Groups: [][]model.ProcID{{1, 2}, {2, 3}},
	}}}}
	if err := p.Validate(3); err == nil {
		t.Fatal("overlapping groups validated")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPlane accepted a rule with overlapping groups")
		}
	}()
	NewPlane(p, 3, 0)
}

func TestNewPlanePanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlane accepted an invalid plan")
		}
	}()
	NewPlane(Plan{Rules: []Rule{{Drop: 2}}}, 3, 0)
}

func TestBuiltinsValidateAcrossGrid(t *testing.T) {
	for _, g := range Builtins() {
		for _, nt := range [][2]int{{2, 1}, {5, 2}, {10, 3}, {15, 4}} {
			plan := g.Make(nt[0], nt[1])
			if plan.Name != g.Name {
				t.Errorf("%s: plan named %q", g.Name, plan.Name)
			}
			if err := plan.Validate(nt[0]); err != nil {
				t.Errorf("%s at n=%d t=%d: %v", g.Name, nt[0], nt[1], err)
			}
			if plan.Empty() {
				t.Errorf("%s at n=%d t=%d: empty plan", g.Name, nt[0], nt[1])
			}
		}
	}
}

func TestBuiltinLookup(t *testing.T) {
	names := BuiltinNames()
	want := []string{"buffering-partition", "byzantine-minority", "flaky-quorum", "healing-partition", "isolated-minority", "moving-partition", "one-way-cut", "region-cut", "restart-storm", "split-brain"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("BuiltinNames() = %v, want %v", names, want)
	}
	for _, name := range names {
		if _, ok := Builtin(name); !ok {
			t.Errorf("Builtin(%q) not found", name)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("Builtin(nope) found")
	}
}

// TestSplitBrainSemantics spot-checks the built-in: before tick 10 all
// links deliver; after, only links within a half do.
func TestSplitBrainSemantics(t *testing.T) {
	g, _ := Builtin("split-brain")
	pl := NewPlane(g.Make(5, 2), 5, 0) // halves {1,2,3} and {4,5}
	if pl.Decide(1, 4, node.Payload{}, 5).Drop {
		t.Error("cut before tick 10")
	}
	if !pl.Decide(1, 4, node.Payload{}, 10).Drop {
		t.Error("cross-half link 1->4 not cut at tick 10")
	}
	if pl.Decide(1, 3, node.Payload{}, 10).Drop {
		t.Error("intra-half link 1->3 cut")
	}
	if pl.Decide(4, 5, node.Payload{}, 50).Drop {
		t.Error("intra-minority link 4->5 cut")
	}
}

// TestHealingPartitionHeals verifies the lossy scheduled heal: during
// [10, 200) cross-half messages are dropped for good, and after the heal
// they flow normally — recovering what was lost is the retransmission
// layer's job, not the network's.
func TestHealingPartitionHeals(t *testing.T) {
	g, _ := Builtin("healing-partition")
	pl := NewPlane(g.Make(6, 2), 6, 0)
	if !pl.Decide(1, 6, node.Payload{}, 100).Drop {
		t.Error("healing partition did not cut cross-half traffic during the window")
	}
	if pl.Decide(1, 2, node.Payload{}, 100).Drop {
		t.Error("intra-half link 1->2 cut")
	}
	after := pl.Decide(1, 6, node.Payload{}, 200)
	if after.Drop || after.ExtraDelay != 0 {
		t.Errorf("link still faulted after the heal: %+v", after)
	}
}

// TestBufferingPartitionHolds verifies the buffering variant: during
// [10, 200) cross-half messages are held (delayed past the heal, not
// dropped), and after the heal they flow normally.
func TestBufferingPartitionHolds(t *testing.T) {
	g, _ := Builtin("buffering-partition")
	pl := NewPlane(g.Make(6, 2), 6, 0)
	dec := pl.Decide(1, 6, node.Payload{}, 100)
	if dec.Drop {
		t.Error("buffering partition drops instead of holding")
	}
	if dec.ExtraDelay < 100 {
		t.Errorf("ExtraDelay = %d at tick 100; want >= 100 so delivery lands after the tick-200 heal", dec.ExtraDelay)
	}
	after := pl.Decide(1, 6, node.Payload{}, 200)
	if after.Drop || after.ExtraDelay != 0 {
		t.Errorf("link still faulted after the heal: %+v", after)
	}
}

// TestOneWayCutIsDirectional: the mute process's outbound links are cut
// from tick 10; its inbound links and everyone else's traffic still flow.
func TestOneWayCutIsDirectional(t *testing.T) {
	g, _ := Builtin("one-way-cut")
	pl := NewPlane(g.Make(5, 2), 5, 0) // process 5 is mute
	if pl.Decide(5, 1, node.Payload{}, 5).Drop {
		t.Error("cut before tick 10")
	}
	if !pl.Decide(5, 1, node.Payload{}, 10).Drop {
		t.Error("outbound link 5->1 not cut at tick 10")
	}
	if pl.Decide(1, 5, node.Payload{}, 50).Drop {
		t.Error("inbound link 1->5 cut: the plan must be one-directional")
	}
	if pl.Decide(1, 2, node.Payload{}, 50).Drop {
		t.Error("bystander link 1->2 cut")
	}
}

func TestHoldRequiresUntil(t *testing.T) {
	if err := (Plan{Rules: []Rule{{Hold: true}}}).Validate(3); err == nil {
		t.Error("Hold without Until accepted")
	}
}

// TestPeriodicRuleWindow: a periodic rule re-activates every Period ticks
// for ActiveFor ticks, anchored at From and clamped by Until.
func TestPeriodicRuleWindow(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 10, Period: 100, ActiveFor: 20, Until: 250, Cut: true},
	}}, 3, 0)
	for _, c := range []struct {
		at  int64
		cut bool
	}{
		{0, false}, {9, false}, // before From
		{10, true}, {29, true}, {30, false}, {109, false}, // first window
		{110, true}, {129, true}, {130, false}, // second window, one Period on
		{210, true}, {229, true}, // third window
		{250, false}, {310, false}, // Until ends the rule, periods and all
	} {
		if got := pl.Decide(1, 2, node.Payload{}, c.at).Drop; got != c.cut {
			t.Errorf("at=%d: Drop=%v, want %v", c.at, got, c.cut)
		}
	}
}

// TestPeriodicHoldReleasesAtWindowEnd: Hold under a periodic window buffers
// until the end of the *current* window, not some global heal time.
func TestPeriodicHoldReleasesAtWindowEnd(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 10, Period: 100, ActiveFor: 30, Hold: true},
	}}, 3, 0)
	// First window is [10, 40): a message sent at 25 is held 15 ticks.
	if dec := pl.Decide(1, 2, node.Payload{}, 25); dec.ExtraDelay != 15 {
		t.Errorf("ExtraDelay at 25 = %d, want 15 (release at window end 40)", dec.ExtraDelay)
	}
	// Second window is [110, 140): a message sent at 139 is held 1 tick.
	if dec := pl.Decide(1, 2, node.Payload{}, 139); dec.ExtraDelay != 1 {
		t.Errorf("ExtraDelay at 139 = %d, want 1", dec.ExtraDelay)
	}
	// Between windows nothing is held.
	if dec := pl.Decide(1, 2, node.Payload{}, 50); dec.ExtraDelay != 0 {
		t.Errorf("ExtraDelay at 50 = %d, want 0 (rule dormant)", dec.ExtraDelay)
	}
}

// TestMovingPartitionRotates: the builtin isolates exactly one process at a
// time, handing the cut off every stride and wrapping around the cluster.
func TestMovingPartitionRotates(t *testing.T) {
	g, ok := Builtin("moving-partition")
	if !ok {
		t.Fatal("moving-partition not registered")
	}
	const n = 5
	pl := NewPlane(g.Make(n, 2), n, 0)
	const k = MovingPartitionStride
	isolatedAt := func(at int64) model.ProcID {
		if at < 10 {
			return 0
		}
		return model.ProcID((at-10)/k%n + 1)
	}
	// Sample interior instants of several windows, including the wrap into
	// the second cycle, and check every directed link's fate.
	for _, at := range []int64{5, 30, 10 + k + 5, 10 + 2*k + 5, 10 + 4*k + 5, 10 + 5*k + 5, 10 + 7*k + 5} {
		iso := isolatedAt(at)
		for from := model.ProcID(1); from <= n; from++ {
			for to := model.ProcID(1); to <= n; to++ {
				if from == to {
					continue
				}
				wantCut := iso != 0 && (from == iso || to == iso)
				if got := pl.Decide(from, to, node.Payload{}, at).Drop; got != wantCut {
					t.Errorf("at=%d (isolated=%d): link %d->%d Drop=%v, want %v", at, iso, from, to, got, wantCut)
				}
			}
		}
	}
}

// TestQueueDelayShapesBacklog: each charged message occupies the link for
// QueueDelay ticks; a burst spreads out linearly and the backlog drains
// once the link goes quiet. Shaping is per link and per rule.
func TestQueueDelayShapesBacklog(t *testing.T) {
	const per = 10
	pl := NewPlane(Plan{Rules: []Rule{{QueueDelay: per}}}, 3, 0)
	// A burst of three messages at the same tick queues behind itself.
	for i, want := range []int64{0, per, 2 * per} {
		if dec := pl.Decide(1, 2, node.Payload{}, 100); dec.ExtraDelay != want {
			t.Errorf("burst message %d: ExtraDelay = %d, want %d", i, dec.ExtraDelay, want)
		}
	}
	// Another link is an independent queue.
	if dec := pl.Decide(1, 3, node.Payload{}, 100); dec.ExtraDelay != 0 {
		t.Errorf("link 1->3 inherited 1->2's backlog: ExtraDelay = %d", dec.ExtraDelay)
	}
	// The 1->2 backlog drains at 100 + 3*per; a send midway still waits.
	if dec := pl.Decide(1, 2, node.Payload{}, 100+2*per); dec.ExtraDelay != per {
		t.Errorf("mid-drain ExtraDelay = %d, want %d", dec.ExtraDelay, per)
	}
	// Long after the burst the link is idle again.
	if dec := pl.Decide(1, 2, node.Payload{}, 1000); dec.ExtraDelay != 0 {
		t.Errorf("idle link ExtraDelay = %d, want 0", dec.ExtraDelay)
	}
}

// TestQueueDelayRespectsWindowAndSelectors: a dormant or non-matching rule
// neither charges the link nor delays the message.
func TestQueueDelayRespectsWindowAndSelectors(t *testing.T) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 50, QueueDelay: 10, Links: LinkSet{Pairs: []Link{{From: 1, To: 2}}}},
	}}, 3, 0)
	// Before From: no charge.
	for i := 0; i < 3; i++ {
		if dec := pl.Decide(1, 2, node.Payload{}, 10); dec.ExtraDelay != 0 {
			t.Fatalf("shaping active before From: %+v", dec)
		}
	}
	// Unselected link: no charge.
	for i := 0; i < 3; i++ {
		if dec := pl.Decide(2, 1, node.Payload{}, 60); dec.ExtraDelay != 0 {
			t.Fatalf("shaping on unselected link: %+v", dec)
		}
	}
	// The selected link starts with an empty queue despite all that traffic.
	if dec := pl.Decide(1, 2, node.Payload{}, 60); dec.ExtraDelay != 0 {
		t.Errorf("first shaped message waited %d", dec.ExtraDelay)
	}
	if dec := pl.Decide(1, 2, node.Payload{}, 60); dec.ExtraDelay != 10 {
		t.Errorf("second shaped message waited %d, want 10", dec.ExtraDelay)
	}
}

// TestQueueDelayDeterministicAndStreamNeutral: shaping does not consume the
// splitmix64 stream, so adding a QueueDelay rule leaves every probabilistic
// fate of the other rules exactly where it was.
func TestQueueDelayDeterministicAndStreamNeutral(t *testing.T) {
	lossy := Rule{Drop: 0.3, Duplicate: 0.2, JitterMax: 5}
	bare := NewPlane(Plan{Rules: []Rule{lossy}}, 3, 42)
	shaped := NewPlane(Plan{Rules: []Rule{lossy, {QueueDelay: 7}}}, 3, 42)
	shaped2 := NewPlane(Plan{Rules: []Rule{lossy, {QueueDelay: 7}}}, 3, 42)
	for i := 0; i < 200; i++ {
		at := int64(i * 3)
		db := bare.Decide(1, 2, node.Payload{}, at)
		ds := shaped.Decide(1, 2, node.Payload{}, at)
		ds2 := shaped2.Decide(1, 2, node.Payload{}, at)
		if !reflect.DeepEqual(ds, ds2) {
			t.Fatalf("message %d: same seed diverged under shaping: %+v vs %+v", i, ds, ds2)
		}
		if db.Drop != ds.Drop || db.Duplicates != ds.Duplicates {
			t.Fatalf("message %d: shaping shifted probabilistic fates: bare %+v, shaped %+v", i, db, ds)
		}
		if ds.ExtraDelay < db.ExtraDelay {
			t.Fatalf("message %d: shaping reduced delay: bare %+v, shaped %+v", i, db, ds)
		}
	}
}
