package netadv

import (
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/topo"
)

// TestDeadRuleCompileSkipsMaps is the regression test for the eager-compile
// fix: a rule whose Until is already past when the plane is built must not
// allocate its selector lookup maps — but it must keep its rule slot, so
// the PRNG stream positions of every later rule are unshifted.
func TestDeadRuleCompileSkipsMaps(t *testing.T) {
	plan := Plan{
		Name: "dead-rule",
		Rules: []Rule{
			// Expired before the start tick below: compiles dead.
			{From: 10, Until: 50, Cut: true, Tags: []string{"SUSP"},
				Links: LinkSet{
					Groups: [][]model.ProcID{{1}, {2}},
					Pairs:  []Link{{From: 1, To: 3}},
				}},
			// Still live at the start tick.
			{From: 10, Drop: 0.5, JitterMax: 3},
		},
	}
	pl := NewPlaneAt(plan, 4, 7, 100)
	dead := &pl.rules[0]
	if !dead.dead {
		t.Fatal("expired rule did not compile dead")
	}
	if dead.groupOf != nil || dead.pairs != nil || dead.tags != nil {
		t.Errorf("dead rule allocated selector maps: groupOf=%v pairs=%v tags=%v",
			dead.groupOf, dead.pairs, dead.tags)
	}
	if pl.rules[1].dead {
		t.Error("live rule compiled dead")
	}

	// Fates must be identical to a plane built at tick 0, where the same
	// rule is compiled live but inactive at the send times: both planes
	// consume the stream identically per rule slot.
	ref := NewPlane(plan, 4, 7)
	p := node.Payload{Tag: "SUSP"}
	for i := 0; i < 200; i++ {
		at := int64(100 + i)
		got := pl.Decide(1, 2, p, at)
		want := ref.Decide(1, 2, p, at)
		if got != want {
			t.Fatalf("msg %d: dead-rule plane decided %+v, live-but-inactive plane %+v", i, got, want)
		}
	}
}

// TestRegionRackSelectors pins the correlated-failure selectors: a rule
// cutting region 1's boundary (resp. rack 3's) drops exactly the links with
// one endpoint inside. Topology: 12 processes, hier 2x2 (rack size 3), so
// region 0 = procs 1..6, region 1 = procs 7..12, rack 3 = procs 10..12.
func TestRegionRackSelectors(t *testing.T) {
	spec := &topo.Spec{Kind: topo.KindHier, Regions: 2, Racks: 2}
	regionCut := NewPlane(Plan{
		Name:  "rc",
		Topo:  spec,
		Rules: []Rule{{Cut: true, Links: LinkSet{Regions: []int{1}}}},
	}, 12, 1)
	rackCut := NewPlane(Plan{
		Name:  "kc",
		Topo:  spec,
		Rules: []Rule{{Cut: true, Links: LinkSet{Racks: []int{3}}}},
	}, 12, 1)

	cases := []struct {
		from, to             model.ProcID
		wantRegion, wantRack bool
	}{
		{1, 2, false, false},   // inside region 0, rack 0
		{1, 7, true, false},    // crosses the region boundary, not rack 3's
		{7, 1, true, false},    // and in the other direction
		{7, 8, false, false},   // inside region 1, rack 2
		{7, 10, false, true},   // inside region 1 but crosses into rack 3
		{10, 11, false, false}, // inside rack 3
		{2, 12, true, true},    // crosses both boundaries
	}
	for _, c := range cases {
		if got := regionCut.Decide(c.from, c.to, node.Payload{}, 5).Drop; got != c.wantRegion {
			t.Errorf("region cut: Decide(%d->%d).Drop = %v, want %v", c.from, c.to, got, c.wantRegion)
		}
		if got := rackCut.Decide(c.from, c.to, node.Payload{}, 5).Drop; got != c.wantRack {
			t.Errorf("rack cut: Decide(%d->%d).Drop = %v, want %v", c.from, c.to, got, c.wantRack)
		}
	}
}

func TestTopoSelectorValidation(t *testing.T) {
	cut := []Rule{{Cut: true, Links: LinkSet{Regions: []int{0}}}}
	if err := (Plan{Rules: cut}).Validate(8); err == nil {
		t.Error("region selector without Topo: want error")
	}
	hier := &topo.Spec{Kind: topo.KindHier, Regions: 2, Racks: 1}
	if err := (Plan{Topo: hier, Rules: cut}).Validate(8); err != nil {
		t.Errorf("valid region selector: %v", err)
	}
	bad := []Rule{{Cut: true, Links: LinkSet{Regions: []int{2}}}}
	if err := (Plan{Topo: hier, Rules: bad}).Validate(8); err == nil {
		t.Error("region 2 of 2: want error")
	}
	badRack := []Rule{{Cut: true, Links: LinkSet{Racks: []int{5}}}}
	if err := (Plan{Topo: hier, Rules: badRack}).Validate(8); err == nil {
		t.Error("rack 5 of 2: want error")
	}
	gossip := &topo.Spec{Kind: topo.KindGossip, Fanout: 3}
	if err := (Plan{Topo: gossip, Rules: cut}).Validate(8); err == nil {
		t.Error("gossip Topo with region selectors: want error")
	}
	if err := (Plan{Topo: &topo.Spec{Kind: topo.KindHier, Regions: 9, Racks: 9}, Rules: cut}).Validate(8); err == nil {
		t.Error("hier 9x9 over 8 procs: want error")
	}
}

// TestRegionCutBuiltin smoke-tests the builtin end to end: links crossing
// the two-region boundary are cut inside the window and heal after it.
func TestRegionCutBuiltin(t *testing.T) {
	g, ok := Builtin("region-cut")
	if !ok {
		t.Fatal("region-cut builtin missing")
	}
	plan := g.Make(6, 2) // regions: {1,2,3} and {4,5,6}
	pl := NewPlane(plan, 6, 3)
	if !pl.Decide(2, 5, node.Payload{}, 50).Drop {
		t.Error("cross-region link not cut inside the window")
	}
	if pl.Decide(2, 3, node.Payload{}, 50).Drop {
		t.Error("intra-region link cut")
	}
	if pl.Decide(2, 5, node.Payload{}, 250).Drop {
		t.Error("cross-region link still cut after the heal")
	}
	if pl.Decide(2, 5, node.Payload{}, 5).Drop {
		t.Error("cross-region link cut before the window")
	}
}
