package netadv

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

// TestBuiltinPlansRoundTripThroughFiles is the PR's round-trip property
// test: every builtin plan, serialized to the plan-file format and read
// back, is structurally identical AND decides an identical fate for every
// message of a sampled stream — so a plan exported with -dump-plan and
// re-run via -plan-file reproduces the original run byte for byte.
func TestBuiltinPlansRoundTripThroughFiles(t *testing.T) {
	const n, tt, seed = 10, 3, 77
	for _, g := range Builtins() {
		t.Run(g.Name, func(t *testing.T) {
			plan := g.Make(n, tt)
			var buf bytes.Buffer
			if err := WritePlan(&buf, plan); err != nil {
				t.Fatal(err)
			}
			got, err := ReadPlan(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, plan) {
				t.Fatalf("round trip changed the plan:\n got %+v\nwant %+v", got, plan)
			}
			orig := NewPlane(plan, n, seed)
			reread := NewPlane(got, n, seed)
			// Sample a deterministic message stream: several links, both
			// payload classes, times crossing every builtin's windows.
			for i := 0; i < 400; i++ {
				from := model.ProcID(i%n + 1)
				to := model.ProcID((i+1+i/n)%n + 1)
				if from == to {
					continue
				}
				tag := "APP"
				if i%3 == 0 {
					tag = "SUSP"
				}
				at := int64(i * 2)
				a := orig.Decide(from, to, node.Payload{Tag: tag}, at)
				b := reread.Decide(from, to, node.Payload{Tag: tag}, at)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("message %d (%d->%d at %d): fates diverged: %+v vs %+v", i, from, to, at, a, b)
				}
			}
		})
	}
}

func TestReadPlanRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty input", "", "parsing plan"},
		{"not json", "rules: []", "parsing plan"},
		{"null plan", "null", "no rules"},
		{"empty object", "{}", "no rules"},
		{"empty rules", `{"name":"x","rules":[]}`, "no rules"},
		{"unknown top-level field", `{"name":"x","ruels":[{"cut":true}]}`, "ruels"},
		{"unknown rule field", `{"rules":[{"cutt":true}]}`, "cutt"},
		{"unknown nested field", `{"rules":[{"cut":true,"links":{"groupz":[[1]]}}]}`, "groupz"},
		{"misspelled new field", `{"rules":[{"cut":true,"queue_dely":5}]}`, "queue_dely"},
		{"trailing data", `{"rules":[{"cut":true}]}{"rules":[]}`, "trailing data"},
		{"garbage after plan", `{"rules":[{"cut":true}]}]`, "reading past plan"},
		{"wrong type", `{"rules":[{"drop":"high"}]}`, "parsing plan"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadPlan(strings.NewReader(tt.in))
			if err == nil {
				t.Fatalf("malformed plan accepted: %q", tt.in)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestReadPlanParsesButDoesNotValidate: syntactically fine, semantically
// broken plans pass ReadPlan and fail Validate — the reader cannot know n,
// so lint-time validation is a separate, explicit step.
func TestReadPlanParsesButDoesNotValidate(t *testing.T) {
	p, err := ReadPlan(strings.NewReader(`{"rules":[{"cut":true,"hold":true,"until":50}]}`))
	if err != nil {
		t.Fatalf("ReadPlan rejected a syntactically valid plan: %v", err)
	}
	if err := p.Validate(5); err == nil {
		t.Error("Cut+Hold plan validated")
	}
}

func TestReadPlanFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "my-partition.json")
	body := `{"rules":[{"from":5,"cut":true,"links":{"groups":[[1,2],[3]]}}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPlanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// An unnamed plan takes the file's base name.
	if p.Name != "my-partition" {
		t.Errorf("Name = %q, want the file base name", p.Name)
	}
	if err := p.Validate(3); err != nil {
		t.Errorf("loaded plan does not validate: %v", err)
	}

	// A named plan keeps its name.
	named := filepath.Join(dir, "file.json")
	if err := os.WriteFile(named, []byte(`{"name":"custom","rules":[{"drop":0.5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if p, err = ReadPlanFile(named); err != nil || p.Name != "custom" {
		t.Errorf("ReadPlanFile = (%+v, %v), want name custom", p, err)
	}

	// Errors carry the path; missing files error.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"rules":[{"cutt":true}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlanFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("error %v does not carry the file path", err)
	}
	if _, err := ReadPlanFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file read without error")
	}
}

// TestWritePlanRejectsEmptyPlan: the writer refuses what the reader will
// never read back, so the write/read pair always round-trips.
func TestWritePlanRejectsEmptyPlan(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlan(&buf, Plan{Name: "hollow"}); err == nil || !strings.Contains(err.Error(), "no rules") {
		t.Errorf("WritePlan(empty plan) = %v, want a no-rules refusal", err)
	}
	if buf.Len() != 0 {
		t.Errorf("refused plan still wrote %q", buf.String())
	}
}

func TestFixedGenerator(t *testing.T) {
	plan := Plan{Name: "pinned", Rules: []Rule{{Drop: 0.1}}}
	g := Fixed(plan)
	if g.Name != "pinned" {
		t.Errorf("Fixed name = %q", g.Name)
	}
	// The plan is used as-is for every cluster size.
	if got := g.Make(50, 4); !reflect.DeepEqual(got, plan) {
		t.Errorf("Make(50,4) = %+v, want the pinned plan", got)
	}
}
