// Package netadv is a composable network-adversary plane: it owns per-link
// fault state over virtual time and decides, per send, whether a message is
// delivered, dropped, duplicated, delayed, or reordered.
//
// The paper's §5 quorum protocol assumes reliable FIFO channels; netadv
// makes the network itself a first-class, scriptable adversary so that the
// scenario families a delay distribution cannot reach — split-brain
// partitions, isolated minorities, flaky links, healing partitions — become
// expressible. A Plan is a declarative, seed-deterministic timeline of
// Rules; a Plane instantiates a plan for a concrete cluster and implements
// node.LinkFn, so the same plan drives both the deterministic simulator
// (internal/sim) and the live goroutine runtime (internal/runtime) with
// identical semantics.
//
// Determinism. All randomness derives from (plan seed, link, per-link
// message index) via a splitmix64 stream: the k-th message on a directed
// link receives the same fate in every run with the same seed, regardless
// of host scheduling. In the simulator this makes whole runs byte-identical
// per seed; in the live runtime it makes fates a deterministic function of
// each link's message sequence even though that sequence interleaves
// nondeterministically across links.
package netadv

import (
	"fmt"
	"sort"
	"sync"

	"failstop/internal/model"
	"failstop/internal/node"
	"failstop/internal/obs"
	"failstop/internal/recovery"
	"failstop/internal/topo"
)

// Link is one directed channel from one process to another.
//
//sfs:wire
type Link struct {
	From model.ProcID `json:"from"`
	To   model.ProcID `json:"to"`
}

// LinkSet selects directed links. The zero value selects every link.
//
//sfs:wire
type LinkSet struct {
	// Groups partitions the processes: a link matches when its endpoints
	// lie in different groups. Processes not listed in any group form one
	// implicit residual group (so a single group isolates its members from
	// everyone else while leaving the rest fully connected).
	Groups [][]model.ProcID `json:"groups,omitempty"`
	// Pairs lists explicit directed links that match regardless of Groups.
	Pairs []Link `json:"pairs,omitempty"`
	// Regions and Racks select links that cross the named region's or rack's
	// boundary under the plan's hierarchical topology (Plan.Topo): a link
	// matches when exactly one endpoint lies inside the named region/rack —
	// the correlated-failure primitive ("region 1 loses its uplink") for
	// topology-aware plans. Indices are 0-based (topo.Topology.RegionOf and
	// RackOf). Requires Plan.Topo to name a "hier" topology.
	Regions []int `json:"regions,omitempty"`
	Racks   []int `json:"racks,omitempty"`
}

// Empty reports whether the set is the zero value (match everything).
func (ls LinkSet) Empty() bool {
	return len(ls.Groups) == 0 && len(ls.Pairs) == 0 &&
		len(ls.Regions) == 0 && len(ls.Racks) == 0
}

// Rule applies network faults to matching messages while active. Fault
// effects compose: a rule may simultaneously drop with probability Drop,
// duplicate with probability Duplicate, and jitter delays; multiple active
// rules all apply to the same message.
//
//sfs:wire
type Rule struct {
	// From and Until bound the active window in ticks: the rule applies to
	// sends at time at with From <= at, and (when Until > 0) at < Until.
	// Until 0 means the rule never expires; a partition with Until set is a
	// partition with a scheduled heal.
	From  int64 `json:"from,omitempty"`
	Until int64 `json:"until,omitempty"`
	// Links selects the directed links the rule applies to. The zero value
	// applies to every link.
	Links LinkSet `json:"links,omitempty"`
	// Tags restricts the rule to messages with these payload tags (e.g.
	// only the quorum protocol's "j failed" traffic). Empty = all messages.
	Tags []string `json:"tags,omitempty"`
	// Cut drops every matching message: the lossy-partition primitive.
	// Nothing is retransmitted after a heal — a protocol that broadcasts
	// once (like §5) permanently loses what it sent into the cut.
	Cut bool `json:"cut,omitempty"`
	// Hold delays every matching message until the rule's window closes
	// (requires Until > 0 or a periodic window): the buffering-partition
	// primitive, modeling links that retransmit until connectivity returns.
	// Messages sent into the partition arrive just after the heal instead
	// of being lost.
	Hold bool `json:"hold,omitempty"`
	// Drop is the probability a matching message is discarded.
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the probability the network delivers one extra copy.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the probability the message overtakes the message queued
	// immediately ahead of it on the same link (a pairwise FIFO violation).
	Reorder float64 `json:"reorder,omitempty"`
	// JitterMax adds a uniform extra delay in [0, JitterMax] ticks to every
	// delivered copy of a matching message.
	JitterMax int64 `json:"jitter_max,omitempty"`
	// Period, when positive, makes the rule's window repeat: the rule is
	// active at time at iff From <= at (and at < Until when Until is set)
	// and (at - From) mod Period < ActiveFor. Periodic rules are the
	// rule-timeline primitive behind dynamic plans: several periodic rules
	// with staggered From offsets rotate a cut through the cluster (see the
	// moving-partition builtin and examples/plans/rolling-blackout.json).
	Period int64 `json:"period,omitempty"`
	// ActiveFor is the length of each active window within a Period, in
	// ticks. Required (0 < ActiveFor <= Period) when Period is set.
	ActiveFor int64 `json:"active_for,omitempty"`
	// QueueDelay, when positive, shapes the link's bandwidth: each matching
	// message occupies the link for QueueDelay ticks, and a message sent
	// while earlier ones still occupy it waits for that backlog to drain
	// first (its extra delay grows linearly with the link's in-flight queue
	// depth). The backlog is tracked per (rule, link) in the Plane. Every
	// matching send is charged, including messages some rule ultimately
	// drops — a lossy shaped link still spends serialization time on the
	// frames it loses.
	QueueDelay int64 `json:"queue_delay,omitempty"`
}

// noop reports whether the rule has no fault effect at all. A rule that
// matches traffic but does nothing is almost certainly an authoring typo
// (e.g. a misspelled field a strict decoder did not catch), so Validate
// rejects it.
func (r Rule) noop() bool {
	return !r.Cut && !r.Hold && r.Drop == 0 && r.Duplicate == 0 &&
		r.Reorder == 0 && r.JitterMax == 0 && r.QueueDelay == 0
}

// ProcRule is one process-fault entry of a plan's timeline: it crashes a
// process at a scheduled time and optionally restarts it later — the
// crash-recovery primitive of internal/recovery. Process faults are pure
// schedule data: the hosts (internal/sim and internal/runtime) execute
// them, not the Plane, because crashing a process is a lifecycle event,
// not a per-message fate.
//
// One-shot rules (Period == 0) crash Proc at CrashAt and, when RestartAt
// is nonzero, restart it at RestartAt; RestartAt == 0 is a terminal crash.
// Periodic rules (Period > 0) are restart storms: Proc crashes at
// CrashAt + k·Period and restarts ActiveFor ticks after each crash
// (ActiveFor is the downtime window, mirroring Rule's periodic fields);
// Until, when nonzero, bounds the crash times.
//
// What a restarted process remembers is not the plan's business: the host
// applies its configured recovery mode (off/amnesia/durable) to every
// restart the plan schedules.
//
//sfs:wire
type ProcRule struct {
	// Proc is the process the rule crashes and restarts.
	Proc model.ProcID `json:"proc"`
	// CrashAt is the (first) crash time in ticks.
	CrashAt int64 `json:"crash_at"`
	// RestartAt is the restart time for a one-shot rule; 0 means the crash
	// is terminal. Invalid with a Period (ActiveFor drives periodic
	// restarts).
	RestartAt int64 `json:"restart_at,omitempty"`
	// Period, when positive, repeats the crash every Period ticks.
	Period int64 `json:"period,omitempty"`
	// ActiveFor is the downtime after each periodic crash, in ticks.
	// Required (0 < ActiveFor < Period) when Period is set: the process
	// must come back up before its next scheduled crash.
	ActiveFor int64 `json:"active_for,omitempty"`
	// Until, when nonzero, is the last tick at which a periodic crash may
	// fire. Invalid without a Period.
	Until int64 `json:"until,omitempty"`
}

// terminal reports whether the rule leaves the process down forever.
func (r ProcRule) terminal() bool { return r.Period == 0 && r.RestartAt == 0 }

// Lifetime converts the rule into the host-facing normalized form.
func (r ProcRule) Lifetime() recovery.Lifetime {
	lt := recovery.Lifetime{Proc: r.Proc, Crash: r.CrashAt, Restart: r.RestartAt}
	if r.Period > 0 {
		lt.Restart = r.CrashAt + r.ActiveFor
		lt.Period = r.Period
		lt.Until = r.Until
	}
	return lt
}

// Plan is a declarative, seed-deterministic fault timeline for a cluster's
// network and its processes. Plans are pure data: instantiate the network
// part per run with NewPlane (the hosts execute the process part via
// Lifetimes). Plans are also the plan-file format of sfs-sim -plan-file.
//
//sfs:wire
type Plan struct {
	// Name identifies the plan in reports and trace headers.
	Name string `json:"name,omitempty"`
	// Topo, when non-nil, is the topology the plan's region/rack link
	// selectors resolve against (it must describe the same spec the cluster
	// itself runs). Required by any rule using LinkSet.Regions or Racks;
	// plans without such rules may omit it.
	Topo *topo.Spec `json:"topo,omitempty"`
	// Rules is the network fault timeline. Rules are evaluated in order on
	// every send; all active matching rules apply.
	Rules []Rule `json:"rules,omitempty"`
	// Procs is the process fault timeline: scheduled crashes and restarts,
	// executed by the hosts under their configured recovery mode.
	Procs []ProcRule `json:"procs,omitempty"`
	// Byz is the Byzantine fault timeline: per-victim payload corruption,
	// equivocation, and replay (see ByzRule).
	Byz []ByzRule `json:"byz,omitempty"`
}

// Empty reports whether the plan imposes no faults at all.
func (p Plan) Empty() bool {
	return len(p.Rules) == 0 && len(p.Procs) == 0 && len(p.Byz) == 0
}

// Lifetimes returns the plan's process-fault schedule in the normalized
// host form, in plan order.
func (p Plan) Lifetimes() []recovery.Lifetime {
	if len(p.Procs) == 0 {
		return nil
	}
	out := make([]recovery.Lifetime, len(p.Procs))
	for i, r := range p.Procs {
		out[i] = r.Lifetime()
	}
	return out
}

// UnboundedProcs reports whether any process-fault rule generates crashes
// forever (periodic with no Until): such a plan never lets a run quiesce,
// so hosts require an explicit horizon to execute it.
func (p Plan) UnboundedProcs() bool {
	for _, r := range p.Procs {
		if r.Period > 0 && r.Until == 0 {
			return true
		}
	}
	return false
}

// Validate reports the first problem with the plan for a cluster of n
// processes, or nil. Process-fault rules are checked structurally:
// restarts without a crash window, overlapping lifetimes for one process,
// and storm windows that never bring the process back are all rejected.
// One hazard is inherently dynamic and guarded by the hosts instead: a
// scheduled restart of a process the protocol itself crashed (the §5
// crash-on-own-SUSP victim) is skipped at run time — a protocol-level
// crash is terminal by definition.
func (p Plan) Validate(n int) error {
	var top *topo.Topology
	if p.Topo != nil {
		var err error
		if top, err = topo.New(*p.Topo, n); err != nil {
			return fmt.Errorf("netadv: plan %q: topology: %v", p.Name, err)
		}
		if p.Topo.Kind != topo.KindHier {
			// Plan.Topo exists to resolve region/rack selectors, and only
			// hierarchical topologies define regions and racks.
			return fmt.Errorf("netadv: plan %q: Topo kind %q has no regions or racks (only %q does)", p.Name, p.Topo.Kind, topo.KindHier)
		}
	}
	for i, r := range p.Rules {
		if r.From < 0 {
			return fmt.Errorf("netadv: rule %d of plan %q: negative From %d", i, p.Name, r.From)
		}
		if r.Until != 0 && r.Until <= r.From {
			return fmt.Errorf("netadv: rule %d of plan %q: Until %d not after From %d", i, p.Name, r.Until, r.From)
		}
		for _, pr := range [...]struct {
			name string
			v    float64
		}{{"Drop", r.Drop}, {"Duplicate", r.Duplicate}, {"Reorder", r.Reorder}} {
			if pr.v < 0 || pr.v > 1 {
				return fmt.Errorf("netadv: rule %d of plan %q: %s=%v outside [0,1]", i, p.Name, pr.name, pr.v)
			}
		}
		if r.JitterMax < 0 {
			return fmt.Errorf("netadv: rule %d of plan %q: negative JitterMax %d", i, p.Name, r.JitterMax)
		}
		if r.QueueDelay < 0 {
			return fmt.Errorf("netadv: rule %d of plan %q: negative QueueDelay %d", i, p.Name, r.QueueDelay)
		}
		if r.Period < 0 {
			return fmt.Errorf("netadv: rule %d of plan %q: negative Period %d", i, p.Name, r.Period)
		}
		if r.Period > 0 && (r.ActiveFor <= 0 || r.ActiveFor > r.Period) {
			return fmt.Errorf("netadv: rule %d of plan %q: Period %d needs ActiveFor in 1..%d, have %d", i, p.Name, r.Period, r.Period, r.ActiveFor)
		}
		if r.Period == 0 && r.ActiveFor != 0 {
			return fmt.Errorf("netadv: rule %d of plan %q: ActiveFor %d without a Period", i, p.Name, r.ActiveFor)
		}
		if r.Cut && r.Hold {
			// Decide would drop the message and then compute a hold delay for
			// a copy that no longer exists: Cut silently wins. Reject the
			// contradiction instead of picking a winner.
			return fmt.Errorf("netadv: rule %d of plan %q: Cut and Hold are contradictory (Cut loses the message, Hold promises to deliver it)", i, p.Name)
		}
		if r.Hold && r.Until == 0 && r.Period == 0 {
			return fmt.Errorf("netadv: rule %d of plan %q: Hold requires a heal time (Until > 0 or a periodic window)", i, p.Name)
		}
		if r.Hold && r.Period > 0 && r.ActiveFor >= r.Period {
			// With ActiveFor == Period the window never actually closes:
			// healAt would release held messages into the still-active hold,
			// breaking the "arrives just after the heal" guarantee.
			return fmt.Errorf("netadv: rule %d of plan %q: Hold with a periodic window needs ActiveFor < Period (a window that never closes never heals)", i, p.Name)
		}
		if r.noop() {
			return fmt.Errorf("netadv: rule %d of plan %q: no effect (none of Cut/Hold/Drop/Duplicate/Reorder/JitterMax/QueueDelay set)", i, p.Name)
		}
		seen := make(map[model.ProcID]int)
		for gi, g := range r.Links.Groups {
			if len(g) == 0 {
				// An empty group compiles to nothing: with only empty groups
				// the rule looks targeted but matches no link at all.
				return fmt.Errorf("netadv: rule %d of plan %q: group %d is empty", i, p.Name, gi)
			}
			for _, proc := range g {
				if proc < 1 || int(proc) > n {
					return fmt.Errorf("netadv: rule %d of plan %q: process %d outside 1..%d", i, p.Name, proc, n)
				}
				if prev, dup := seen[proc]; dup {
					// NewPlane compiles groupOf last-wins, which would
					// silently change the partition's shape.
					if prev == gi {
						return fmt.Errorf("netadv: rule %d of plan %q: process %d listed twice in group %d", i, p.Name, proc, gi)
					}
					return fmt.Errorf("netadv: rule %d of plan %q: process %d in both group %d and group %d", i, p.Name, proc, prev, gi)
				}
				seen[proc] = gi
			}
		}
		for _, l := range r.Links.Pairs {
			if l.From < 1 || int(l.From) > n || l.To < 1 || int(l.To) > n {
				return fmt.Errorf("netadv: rule %d of plan %q: link %d->%d outside 1..%d", i, p.Name, l.From, l.To, n)
			}
		}
		if len(r.Links.Regions) > 0 || len(r.Links.Racks) > 0 {
			if top == nil {
				return fmt.Errorf("netadv: rule %d of plan %q: region/rack selectors need the plan's Topo set", i, p.Name)
			}
			for _, reg := range r.Links.Regions {
				if reg < 0 || reg >= top.Regions() {
					return fmt.Errorf("netadv: rule %d of plan %q: region %d outside 0..%d", i, p.Name, reg, top.Regions()-1)
				}
			}
			for _, rk := range r.Links.Racks {
				if rk < 0 || rk >= top.NumRacks() {
					return fmt.Errorf("netadv: rule %d of plan %q: rack %d outside 0..%d", i, p.Name, rk, top.NumRacks()-1)
				}
			}
		}
	}
	byProc := make(map[model.ProcID][]int)
	for i, r := range p.Procs {
		if r.Proc < 1 || int(r.Proc) > n {
			return fmt.Errorf("netadv: proc rule %d of plan %q: process %d outside 1..%d", i, p.Name, r.Proc, n)
		}
		if r.CrashAt < 0 {
			return fmt.Errorf("netadv: proc rule %d of plan %q: negative CrashAt %d", i, p.Name, r.CrashAt)
		}
		if r.Period < 0 {
			return fmt.Errorf("netadv: proc rule %d of plan %q: negative Period %d", i, p.Name, r.Period)
		}
		if r.Period == 0 {
			if r.ActiveFor != 0 {
				return fmt.Errorf("netadv: proc rule %d of plan %q: ActiveFor %d without a Period", i, p.Name, r.ActiveFor)
			}
			if r.Until != 0 {
				return fmt.Errorf("netadv: proc rule %d of plan %q: Until %d without a Period (one-shot rules have nothing to bound)", i, p.Name, r.Until)
			}
			if r.RestartAt != 0 && r.RestartAt <= r.CrashAt {
				return fmt.Errorf("netadv: proc rule %d of plan %q: RestartAt %d not after CrashAt %d", i, p.Name, r.RestartAt, r.CrashAt)
			}
		} else {
			if r.RestartAt != 0 {
				return fmt.Errorf("netadv: proc rule %d of plan %q: RestartAt %d with a Period (periodic windows restart ActiveFor ticks after each crash)", i, p.Name, r.RestartAt)
			}
			if r.ActiveFor <= 0 || r.ActiveFor >= r.Period {
				return fmt.Errorf("netadv: proc rule %d of plan %q: Period %d needs ActiveFor in 1..%d, have %d (the process must restart before its next crash)", i, p.Name, r.Period, r.Period-1, r.ActiveFor)
			}
			if r.Until != 0 && r.Until < r.CrashAt {
				return fmt.Errorf("netadv: proc rule %d of plan %q: Until %d before the first CrashAt %d", i, p.Name, r.Until, r.CrashAt)
			}
		}
		byProc[r.Proc] = append(byProc[r.Proc], i)
	}
	// Cross-rule checks, per process in id order for deterministic errors.
	for proc := model.ProcID(1); int(proc) <= n; proc++ {
		idxs := byProc[proc]
		if len(idxs) < 2 {
			continue
		}
		for _, i := range idxs {
			if p.Procs[i].Period > 0 {
				return fmt.Errorf("netadv: proc rule %d of plan %q: process %d has a periodic rule and %d other rule(s); a storm must be the process's only rule", i, p.Name, proc, len(idxs)-1)
			}
		}
		// All one-shot: lifetimes must be disjoint, and only the
		// chronologically last may be terminal. Order by crash time — plan
		// order need not be chronological.
		sort.Slice(idxs, func(a, b int) bool {
			return p.Procs[idxs[a]].CrashAt < p.Procs[idxs[b]].CrashAt
		})
		for k := 1; k < len(idxs); k++ {
			prev, cur := p.Procs[idxs[k-1]], p.Procs[idxs[k]]
			if prev.terminal() {
				return fmt.Errorf("netadv: proc rule %d of plan %q: process %d crashes at %d after rule %d crashed it terminally", idxs[k], p.Name, proc, cur.CrashAt, idxs[k-1])
			}
			if cur.CrashAt <= prev.RestartAt {
				return fmt.Errorf("netadv: proc rule %d of plan %q: process %d crashes at %d while rule %d holds it down until %d (overlapping lifetimes)", idxs[k], p.Name, proc, cur.CrashAt, idxs[k-1], prev.RestartAt)
			}
		}
	}
	return p.validateByz(n)
}

// compiledRule is a Rule with its link and tag selectors resolved into
// constant-time lookups. A rule whose window was already over when the
// plane was built compiles dead: its selector maps are never allocated and
// activeAt short-circuits — but it keeps its slot in the rule list, because
// Decide's PRNG stream draws per compiled rule and removing one would shift
// the fates every later rule assigns.
type compiledRule struct {
	Rule
	dead    bool
	groupOf map[model.ProcID]int // proc -> group index; absent = residual
	pairs   map[Link]bool
	tags    map[string]bool
	top     *topo.Topology // resolves Regions/Racks selectors; nil otherwise
}

func (cr *compiledRule) activeAt(at int64) bool {
	if cr.dead || at < cr.From || (cr.Until != 0 && at >= cr.Until) {
		return false
	}
	if cr.Period > 0 {
		return (at-cr.From)%cr.Period < cr.ActiveFor
	}
	return true
}

// healAt returns when a Hold rule active at time at releases its messages:
// the end of the current periodic window, clamped by Until. Only meaningful
// when activeAt(at) holds.
func (cr *compiledRule) healAt(at int64) int64 {
	heal := cr.Until
	if cr.Period > 0 {
		end := cr.From + (at-cr.From)/cr.Period*cr.Period + cr.ActiveFor
		if heal == 0 || end < heal {
			heal = end
		}
	}
	return heal
}

func (cr *compiledRule) matches(from, to model.ProcID, tag string) bool {
	if len(cr.tags) > 0 && !cr.tags[tag] {
		return false
	}
	if cr.Links.Empty() {
		return true
	}
	if cr.pairs[Link{From: from, To: to}] {
		return true
	}
	if cr.top != nil {
		// A link crosses a region/rack boundary when exactly one endpoint
		// lies inside it.
		for _, reg := range cr.Links.Regions {
			if (cr.top.RegionOf(from) == reg) != (cr.top.RegionOf(to) == reg) {
				return true
			}
		}
		for _, rk := range cr.Links.Racks {
			if (cr.top.RackOf(from) == rk) != (cr.top.RackOf(to) == rk) {
				return true
			}
		}
	}
	if len(cr.groupOf) > 0 {
		// Unlisted processes share the residual group (index -1).
		gf, okf := cr.groupOf[from]
		gt, okt := cr.groupOf[to]
		if !okf {
			gf = -1
		}
		if !okt {
			gt = -1
		}
		if gf != gt {
			return true
		}
	}
	return false
}

// Plane is a Plan instantiated for one run of a concrete cluster: it tracks
// per-link message indices and derives every probabilistic fate from them
// and the seed. A Plane is goroutine-safe and implements node.LinkFn via
// its Decide method.
type Plane struct {
	plan     Plan
	n        int
	seed     int64
	rules    []compiledRule
	byzRules []compiledByz

	mu  sync.Mutex
	seq map[Link]uint64
	// busyUntil tracks, per (QueueDelay rule, link), the virtual time at
	// which the link's in-flight backlog drains: each charged message
	// occupies the link for QueueDelay ticks, so the current queue depth is
	// ceil((busyUntil - now) / QueueDelay).
	busyUntil map[busyKey]int64
	// replayMem remembers, per (Replay rule, link), the last matching wire
	// payload — the frame a Byzantine replay re-injects.
	replayMem map[byzKey]node.Payload

	// Fate counters, incremented once per decided message from the final
	// decision (never per rule), so composed rules do not double-count.
	cDecided    obs.Counter
	cDropped    obs.Counter
	cHeld       obs.Counter
	cDuplicated obs.Counter
	cReordered  obs.Counter
	cShapedWait obs.Counter // total extra-delay ticks assigned
	// Byzantine fate counters, registered and reported only for plans that
	// carry Byz rules (so byz-free runs keep byte-identical metrics).
	cCorrupted   obs.Counter
	cEquivocated obs.Counter
	cReplayed    obs.Counter
}

// busyKey identifies one shaping rule's queue on one directed link.
type busyKey struct {
	rule int
	link Link
}

// NewPlane instantiates plan for a cluster of n processes, deriving all
// randomness from seed. It panics if the plan does not validate — plans are
// authored, not computed, so an invalid one is a programming error.
func NewPlane(plan Plan, n int, seed int64) *Plane {
	return NewPlaneAt(plan, n, seed, 0)
}

// NewPlaneAt is NewPlane for a run whose clock starts at tick start rather
// than 0 (a resumed or sharded scenario window). Rules whose Until is
// already past at start compile dead: they keep their rule slot — the PRNG
// stream draws per compiled rule, so dropping one would shift every later
// rule's fates — but their selector lookup maps are never allocated and
// they are skipped without a window check on every send.
func NewPlaneAt(plan Plan, n int, seed, start int64) *Plane {
	if err := plan.Validate(n); err != nil {
		panic(err)
	}
	pl := &Plane{
		plan: plan, n: n, seed: seed,
		seq: make(map[Link]uint64), busyUntil: make(map[busyKey]int64),
		replayMem: make(map[byzKey]node.Payload),
	}
	var top *topo.Topology
	if plan.Topo != nil {
		top = topo.MustNew(*plan.Topo, n) // validated above
	}
	for _, r := range plan.Rules {
		cr := compiledRule{Rule: r}
		if r.Until != 0 && r.Until <= start {
			cr.dead = true
			pl.rules = append(pl.rules, cr)
			continue
		}
		if len(r.Links.Groups) > 0 {
			cr.groupOf = make(map[model.ProcID]int)
			for gi, g := range r.Links.Groups {
				for _, proc := range g {
					cr.groupOf[proc] = gi
				}
			}
		}
		if len(r.Links.Pairs) > 0 {
			cr.pairs = make(map[Link]bool, len(r.Links.Pairs))
			for _, l := range r.Links.Pairs {
				cr.pairs[l] = true
			}
		}
		if len(r.Tags) > 0 {
			cr.tags = make(map[string]bool, len(r.Tags))
			for _, t := range r.Tags {
				cr.tags[t] = true
			}
		}
		if len(r.Links.Regions) > 0 || len(r.Links.Racks) > 0 {
			cr.top = top
		}
		pl.rules = append(pl.rules, cr)
	}
	for _, b := range plan.Byz {
		cb := compiledByz{ByzRule: b}
		if len(b.Tags) > 0 {
			cb.tags = make(map[string]bool, len(b.Tags))
			for _, t := range b.Tags {
				cb.tags[t] = true
			}
		}
		if len(b.Equivocate) > 0 {
			cb.groupOf = make(map[model.ProcID]int)
			for gi, g := range b.Equivocate {
				for _, proc := range g {
					cb.groupOf[proc] = gi
				}
			}
		}
		pl.byzRules = append(pl.byzRules, cb)
	}
	return pl
}

// Plan returns the plan the plane was built from.
func (pl *Plane) Plan() Plan { return pl.plan }

// Register exposes the plane's fate counters through reg under plane_*
// names. A no-op on a nil registry.
func (pl *Plane) Register(reg *obs.Registry) {
	reg.RegisterCounter("plane_decided_total", &pl.cDecided)
	reg.RegisterCounter("plane_dropped_total", &pl.cDropped)
	reg.RegisterCounter("plane_held_ticks_total", &pl.cHeld)
	reg.RegisterCounter("plane_duplicated_total", &pl.cDuplicated)
	reg.RegisterCounter("plane_reordered_total", &pl.cReordered)
	reg.RegisterCounter("plane_extra_delay_ticks_total", &pl.cShapedWait)
	if len(pl.plan.Byz) > 0 {
		reg.RegisterCounter("plane_byz_corrupted_total", &pl.cCorrupted)
		reg.RegisterCounter("plane_byz_equivocated_total", &pl.cEquivocated)
		reg.RegisterCounter("plane_byz_replayed_total", &pl.cReplayed)
	}
}

// Metrics returns a name-sorted snapshot of the plane's fate counters.
// Byzantine counters appear only for plans that carry Byz rules.
func (pl *Plane) Metrics() obs.Metrics {
	var ms obs.Metrics
	if len(pl.plan.Byz) > 0 {
		ms = obs.Metrics{
			{Name: "plane_byz_corrupted_total", Kind: obs.KindCounter, Value: pl.cCorrupted.Value()},
			{Name: "plane_byz_equivocated_total", Kind: obs.KindCounter, Value: pl.cEquivocated.Value()},
			{Name: "plane_byz_replayed_total", Kind: obs.KindCounter, Value: pl.cReplayed.Value()},
		}
	}
	return append(ms, obs.Metrics{
		{Name: "plane_decided_total", Kind: obs.KindCounter, Value: pl.cDecided.Value()},
		{Name: "plane_dropped_total", Kind: obs.KindCounter, Value: pl.cDropped.Value()},
		{Name: "plane_duplicated_total", Kind: obs.KindCounter, Value: pl.cDuplicated.Value()},
		{Name: "plane_extra_delay_ticks_total", Kind: obs.KindCounter, Value: pl.cShapedWait.Value()},
		{Name: "plane_held_ticks_total", Kind: obs.KindCounter, Value: pl.cHeld.Value()},
		{Name: "plane_reordered_total", Kind: obs.KindCounter, Value: pl.cReordered.Value()},
	}...)
}

// ByzFates returns how many messages the plane has corrupted, equivocated,
// and replayed so far.
func (pl *Plane) ByzFates() (corrupted, equivocated, replayed int64) {
	return pl.cCorrupted.Value(), pl.cEquivocated.Value(), pl.cReplayed.Value()
}

// count tallies the final decision of one message. It reads no PRNG state,
// so observing a run cannot perturb its fates.
func (pl *Plane) count(dec node.LinkDecision, held int64) {
	pl.cDecided.Inc()
	if dec.Drop {
		pl.cDropped.Inc()
	}
	if held > 0 {
		pl.cHeld.Add(held)
	}
	if dec.Duplicates > 0 {
		pl.cDuplicated.Add(int64(dec.Duplicates))
	}
	if dec.Reorder {
		pl.cReordered.Inc()
	}
	if dec.ExtraDelay > 0 {
		pl.cShapedWait.Add(dec.ExtraDelay)
	}
}

// Decide implements node.LinkFn: the fate of the message currently being
// sent from from to to at time at.
func (pl *Plane) Decide(from, to model.ProcID, p node.Payload, at int64) node.LinkDecision {
	var dec node.LinkDecision
	// Consume the link's sequence index unconditionally — even for messages
	// no rule touches — so that a message's stream depends only on its
	// position in the link's send sequence, never on how rule windows
	// happened to line up with (wall-clock-derived) send times. This is
	// what keeps fates reproducible on the live runtime.
	link := Link{From: from, To: to}
	pl.mu.Lock()
	idx := pl.seq[link]
	pl.seq[link] = idx + 1
	pl.mu.Unlock()

	// Fast path: no rule (network or Byzantine) is active and matching.
	anyMatch := false
	for i := range pl.rules {
		if pl.rules[i].activeAt(at) && pl.rules[i].matches(from, to, p.Tag) {
			anyMatch = true
			break
		}
	}
	anyByz := false
	for i := range pl.byzRules {
		if pl.byzRules[i].activeAt(at) && pl.byzRules[i].matches(from, p.Tag) {
			anyByz = true
			break
		}
	}
	if !anyMatch && !anyByz {
		pl.count(dec, 0)
		return dec
	}

	var held int64
	if anyMatch {
		rng := newStream(pl.seed, link, idx)
		for i := range pl.rules {
			cr := &pl.rules[i]
			// Consume the stream identically whether or not the rule is
			// active, so a rule expiring does not shift the fates other rules
			// assign to later messages on the link.
			drop := rng.float64()
			dup := rng.float64()
			reord := rng.float64()
			jit := rng.uint64()
			if !cr.activeAt(at) || !cr.matches(from, to, p.Tag) {
				continue
			}
			if cr.Cut || drop < cr.Drop {
				dec.Drop = true
			}
			if cr.Hold {
				// Deliver no earlier than the heal (the end of the current
				// window): the base delay is >= 0, so pushing the extra delay
				// to (heal - at) suffices.
				if hold := cr.healAt(at) - at; hold > dec.ExtraDelay {
					dec.ExtraDelay = hold
					held = hold
				}
			}
			if dup < cr.Duplicate {
				dec.Duplicates++
			}
			if reord < cr.Reorder {
				dec.Reorder = true
			}
			if cr.JitterMax > 0 {
				dec.ExtraDelay += int64(jit % uint64(cr.JitterMax+1))
			}
			if cr.QueueDelay > 0 {
				dec.ExtraDelay += pl.shape(i, link, at, cr.QueueDelay)
			}
		}
	}
	pl.applyByz(&dec, from, to, p, link, idx, at)
	pl.count(dec, held)
	return dec
}

// shape charges one message of per ticks of link time against rule ri's
// queue on link l and returns how long the message waits for the backlog
// ahead of it to drain. The wait is a pure function of the link's send
// times, not of the PRNG stream, so shaping composes with the
// probabilistic fates without shifting them.
func (pl *Plane) shape(ri int, l Link, at, per int64) int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	k := busyKey{rule: ri, link: l}
	wait := pl.busyUntil[k] - at
	if wait < 0 {
		wait = 0
	}
	pl.busyUntil[k] = at + wait + per
	return wait
}

// stream is a tiny deterministic PRNG (splitmix64) seeded from the plane
// seed, the link, and the per-link message index. It is allocation-free and
// platform-independent, unlike math/rand, so fates are stable everywhere.
type stream struct{ x uint64 }

func newStream(seed int64, l Link, idx uint64) stream {
	x := uint64(seed)
	x = mix(x ^ uint64(l.From)*0x9e3779b97f4a7c15)
	x = mix(x ^ uint64(l.To)*0xbf58476d1ce4e5b9)
	x = mix(x ^ idx*0x94d049bb133111eb)
	return stream{x: x}
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *stream) uint64() uint64 {
	s.x = mix(s.x)
	return s.x
}

// float64 returns a uniform value in [0, 1).
func (s *stream) float64() float64 {
	return float64(s.uint64()>>11) / (1 << 53)
}
