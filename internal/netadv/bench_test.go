package netadv

import (
	"testing"

	"failstop/internal/model"
	"failstop/internal/node"
)

// BenchmarkDecideQuiet measures the fast path: no rule active or matching.
func BenchmarkDecideQuiet(b *testing.B) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 1 << 40, Cut: true}, // never active within the benchmark
	}}, 10, 1)
	p := node.Payload{Tag: "APP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Decide(1, 2, p, int64(i))
	}
}

// BenchmarkDecideFaulty measures the full decision path with a
// probabilistic multi-rule plan.
func BenchmarkDecideFaulty(b *testing.B) {
	pl := NewPlane(Plan{Rules: []Rule{
		{Drop: 0.1, JitterMax: 5},
		{Duplicate: 0.05, Reorder: 0.02},
	}}, 10, 1)
	p := node.Payload{Tag: "APP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Decide(1, 2, p, int64(i))
	}
}

// BenchmarkDecideByzQuiet prices the tax Byzantine rules levy on traffic
// they never touch: the plan carries a corruptor and an equivocator, but
// the benchmark's frames miss every selector. CI exports this (with
// BenchmarkDecideByzFaulty) as BENCH_byz.json.
func BenchmarkDecideByzQuiet(b *testing.B) {
	pl := NewPlane(Plan{Byz: []ByzRule{
		{Victim: 5, Tags: []string{"SUSP"}, Corrupt: 1},
		{Victim: 4, Tags: []string{"SUSP"}, Equivocate: [][]model.ProcID{{1, 2}, {3, 6}}},
	}}, 10, 1)
	p := node.Payload{Tag: "APP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Decide(1, 2, p, int64(i))
	}
}

// BenchmarkDecideByzFaulty measures the mutation path itself: every frame
// is the victim's, matches the rule, and gets corrupted and replayed.
func BenchmarkDecideByzFaulty(b *testing.B) {
	pl := NewPlane(Plan{Byz: []ByzRule{
		{Victim: 5, Corrupt: 1, Replay: 0.2, ReplayDelay: 50},
	}}, 10, 1)
	p := node.Payload{Tag: "SUSP", Subject: 3, Data: []byte(`{"suspect":3}`)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Decide(5, 2, p, int64(i))
	}
}

// TestByzDecideAllocBudget is the CI gate behind BENCH_byz.json: a plan
// that carries Byzantine rules may add at most 5% allocations to the
// decision path of traffic those rules never match — the fault plane's
// fast path must not pay for a feature the frame doesn't use.
func TestByzDecideAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const frames = 200
	run := func(pl *Plane) func() {
		p := node.Payload{Tag: "APP"}
		return func() {
			for i := 0; i < frames; i++ {
				pl.Decide(1, 2, p, int64(i))
			}
		}
	}
	bare := NewPlane(Plan{Rules: []Rule{{From: 1 << 40, Cut: true}}}, 10, 1)
	withByz := NewPlane(Plan{
		Rules: []Rule{{From: 1 << 40, Cut: true}},
		Byz: []ByzRule{
			{Victim: 5, Tags: []string{"SUSP"}, Corrupt: 1},
			{Victim: 4, Tags: []string{"SUSP"}, Equivocate: [][]model.ProcID{{1, 2}, {3, 6}}},
		},
	}, 10, 1)
	base := testing.AllocsPerRun(20, run(bare))
	got := testing.AllocsPerRun(20, run(withByz))
	if got > base*1.05+1 {
		t.Errorf("byz-rule plan allocates %.0f/run on unmatched traffic, bare plan %.0f/run: over the 5%% budget", got, base)
	}
}
