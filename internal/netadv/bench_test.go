package netadv

import (
	"testing"

	"failstop/internal/node"
)

// BenchmarkDecideQuiet measures the fast path: no rule active or matching.
func BenchmarkDecideQuiet(b *testing.B) {
	pl := NewPlane(Plan{Rules: []Rule{
		{From: 1 << 40, Cut: true}, // never active within the benchmark
	}}, 10, 1)
	p := node.Payload{Tag: "APP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Decide(1, 2, p, int64(i))
	}
}

// BenchmarkDecideFaulty measures the full decision path with a
// probabilistic multi-rule plan.
func BenchmarkDecideFaulty(b *testing.B) {
	pl := NewPlane(Plan{Rules: []Rule{
		{Drop: 0.1, JitterMax: 5},
		{Duplicate: 0.05, Reorder: 0.02},
	}}, 10, 1)
	p := node.Payload{Tag: "APP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Decide(1, 2, p, int64(i))
	}
}
