// Package election implements the leader-election protocol that motivates
// the paper (§1): every process keeps a local copy of the list (1, 2, ...,
// n); on failed_i(j) it removes j; the head of the list is the leader.
//
// Under fail-stop the algorithm trivially maintains "at most one leader".
// Under simulated fail-stop a global state can transiently contain two
// self-believed leaders — but, per Definition 4, no process can ever
// observe evidence of it (§3.2: "there may be more than one leader in some
// global state, but no process will be able to determine this").
//
// Making "cannot observe" precise is subtle, and instructive. A receiver
// that gets a leadership claim from a process it has already removed has
// NOT observed a contradiction: under genuine fail-stop the claim could
// have been sent before the crash and delivered late. Such stale claims are
// therefore only counted (tag StaleClaimTag), never treated as violations.
// The real checkable content of the §1 discussion is Theorem 5 itself:
// every election run under the §5 protocol is isomorphic to a fail-stop
// run (rewrite.Realizable holds on its abstract history), even when the
// omniscient trace shows two simultaneous self-believed leaders. Under the
// unilateral strawman, runs stop being FS-realizable the moment a silent
// detection occurs (Condition 1 fails: the "detected" leader never
// crashes), and dual leadership becomes permanent rather than transient —
// experiments E10 measure exactly these.
package election

import (
	"failstop/internal/core"
	"failstop/internal/model"
	"failstop/internal/node"
)

// Internal-event tags recorded by the election app.
const (
	// LeaderTag marks the internal event "this process became leader".
	LeaderTag = "leader"
	// StaleClaimTag marks the receipt of a leadership claim from a process
	// the receiver does not currently consider leader — informational, not
	// a violation (under FS the claim may simply predate the crash). Target
	// carries the claimant.
	StaleClaimTag = "election-stale-claim"
	// claimTimer drives periodic leadership claims.
	claimTimer = "election/claim"
)

// Election is a core.App running the §1 algorithm on one process.
type Election struct {
	// ClaimInterval is the tick interval between leadership claim
	// broadcasts. 0 disables claiming (pure list maintenance).
	ClaimInterval int64

	self        model.ProcID
	n           int
	removed     map[model.ProcID]bool
	leader      bool
	staleClaims int
	claimsSeen  int
}

var _ core.App = (*Election)(nil)

// Init implements core.App.
func (e *Election) Init(ctx node.Context, d *core.Detector) {
	e.self = ctx.Self()
	e.n = ctx.N()
	e.removed = make(map[model.ProcID]bool, e.n)
	e.checkLeadership(ctx)
	if e.ClaimInterval > 0 {
		ctx.SetTimer(claimTimer, e.ClaimInterval)
	}
}

// Head returns the process this replica currently believes is the leader:
// the smallest id not removed from its list.
func (e *Election) Head() model.ProcID {
	for p := model.ProcID(1); int(p) <= e.n; p++ {
		if !e.removed[p] {
			return p
		}
	}
	return model.None
}

// Leader reports whether this process currently believes it is the leader.
func (e *Election) Leader() bool { return e.leader }

// StaleClaims returns the number of leadership claims this process received
// from a claimant it did not consider leader.
func (e *Election) StaleClaims() int { return e.staleClaims }

// ClaimsSeen returns the number of leadership claims received.
func (e *Election) ClaimsSeen() int { return e.claimsSeen }

func (e *Election) checkLeadership(ctx node.Context) {
	if !e.leader && e.Head() == e.self {
		e.leader = true
		ctx.EmitInternal(LeaderTag, e.self)
	}
}

// OnFailed implements core.App: remove the detected process from the list.
func (e *Election) OnFailed(ctx node.Context, d *core.Detector, j model.ProcID) {
	e.removed[j] = true
	e.checkLeadership(ctx)
}

// OnAppMessage implements core.App: a leadership claim arrives; count it,
// and note whether the claimant matches this replica's current head.
func (e *Election) OnAppMessage(ctx node.Context, d *core.Detector, from model.ProcID, data []byte) {
	if len(data) != 1 || data[0] != claimByte {
		return
	}
	e.claimsSeen++
	if e.Head() != from {
		e.staleClaims++
		ctx.EmitInternal(StaleClaimTag, from)
	}
}

// OnTimer implements core.App: periodic leadership claims.
func (e *Election) OnTimer(ctx node.Context, d *core.Detector, name string) {
	if name != claimTimer {
		return
	}
	if e.leader {
		for p := model.ProcID(1); int(p) <= e.n; p++ {
			if p != e.self {
				d.SendApp(ctx, p, []byte{claimByte})
			}
		}
	}
	ctx.SetTimer(claimTimer, e.ClaimInterval)
}

const claimByte = 0x4C // 'L'

// LeaderIntervals extracts, from a history, the half-open intervals
// [became-leader-index, crash-index-or-end) during which each process
// believed itself leader. Used to count transient multi-leader global
// states.
func LeaderIntervals(h model.History) map[model.ProcID][2]int {
	out := make(map[model.ProcID][2]int)
	for i, e := range h {
		if e.Kind == model.KindInternal && e.Tag == LeaderTag {
			out[e.Proc] = [2]int{i, len(h)}
		}
	}
	for p, iv := range out {
		if ci := h.CrashIndex(p); ci >= 0 && ci < iv[1] {
			iv[1] = ci
			out[p] = iv
		}
	}
	return out
}

// MaxSimultaneousLeaders returns the largest number of processes that
// simultaneously believed themselves leader at any point of the history.
func MaxSimultaneousLeaders(h model.History) int {
	ivs := LeaderIntervals(h)
	max := 0
	for i := range h {
		cur := 0
		for _, iv := range ivs {
			if iv[0] <= i && i < iv[1] {
				cur++
			}
		}
		if cur > max {
			max = cur
		}
	}
	return max
}

// StaleClaims counts stale-claim events recorded in the history.
func StaleClaims(h model.History) int {
	count := 0
	for _, e := range h {
		if e.Kind == model.KindInternal && e.Tag == StaleClaimTag {
			count++
		}
	}
	return count
}
