package election_test

import (
	"testing"

	"failstop/internal/checker"
	"failstop/internal/cluster"
	"failstop/internal/core"
	"failstop/internal/election"
	"failstop/internal/model"
	"failstop/internal/rewrite"
	"failstop/internal/sim"
)

func electionCluster(n, t int, proto core.Protocol, seed int64, horizon int64) (*cluster.Cluster, []*election.Election) {
	apps := make([]*election.Election, n+1)
	c := cluster.New(cluster.Options{
		Sim: sim.Config{N: n, Seed: seed, MinDelay: 1, MaxDelay: 10, MaxTime: horizon},
		Det: core.Config{N: n, T: t, Protocol: proto},
		App: func(p model.ProcID) core.App {
			a := &election.Election{ClaimInterval: 25}
			apps[p] = a
			return a
		},
	})
	return c, apps
}

func TestInitialLeader(t *testing.T) {
	c, apps := electionCluster(5, 2, core.SimulatedFailStop, 1, 200)
	c.Run()
	if !apps[1].Leader() {
		t.Error("process 1 must start as leader")
	}
	for p := 2; p <= 5; p++ {
		if apps[p].Leader() {
			t.Errorf("process %d must not be leader", p)
		}
		if apps[p].Head() != 1 {
			t.Errorf("process %d head = %d, want 1", p, apps[p].Head())
		}
	}
}

func TestLeaderHandoffOnGenuineCrash(t *testing.T) {
	c, apps := electionCluster(5, 2, core.SimulatedFailStop, 2, 2000)
	c.CrashAt(40, 1)
	c.SuspectAt(60, 2, 1)
	res := c.Run()
	if !apps[2].Leader() {
		t.Error("process 2 must take over leadership")
	}
	for p := 3; p <= 5; p++ {
		if apps[p].Head() != 2 {
			t.Errorf("process %d head = %d, want 2", p, apps[p].Head())
		}
	}
	// A genuine-crash election run is FS-realizable.
	if !rewrite.Realizable(res.History.DropTags(core.TagSusp)) {
		t.Error("genuine-crash election run must be FS-realizable")
	}
}

// The §3.2 discussion, made mechanical: an erroneously removed leader may
// coexist with its successor in some global state, but the run remains
// isomorphic to a fail-stop run — no process can determine the difference.
func TestFalseSuspicionElectionIndistinguishable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c, apps := electionCluster(5, 2, core.SimulatedFailStop, seed, 3000)
		c.SuspectAt(50, 3, 1) // false suspicion of the leader
		res := c.Run()
		if !apps[2].Leader() {
			t.Errorf("seed %d: process 2 did not take over", seed)
		}
		// The deposed leader really crashed (sFS2a).
		if res.History.CrashIndex(1) < 0 {
			t.Errorf("seed %d: deposed leader never crashed", seed)
		}
		ab := res.History.DropTags(core.TagSusp)
		for _, v := range []checker.Verdict{
			checker.SFS2b(ab), checker.SFS2c(ab), checker.SFS2d(ab),
		} {
			if !v.Holds {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
		// Theorem 5 on the application run: an isomorphic FS run exists.
		out, _, err := rewrite.Graph(ab)
		if err != nil {
			t.Fatalf("seed %d: election run not FS-realizable: %v", seed, err)
		}
		if err := rewrite.Verify(ab, out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTransientDualLeadershipRemainsRealizable(t *testing.T) {
	// Hunt for a schedule with a transient two-leader global state; whatever
	// the schedule, the run must stay isomorphic to some FS run. (The
	// existence part is probabilistic; across this seed range it shows up.)
	sawDual := false
	for seed := int64(0); seed < 30; seed++ {
		c, _ := electionCluster(5, 2, core.SimulatedFailStop, seed, 3000)
		c.SuspectAt(50, 2, 1)
		res := c.Run()
		if election.MaxSimultaneousLeaders(res.History) >= 2 {
			sawDual = true
		}
		if !rewrite.Realizable(res.History.DropTags(core.TagSusp)) {
			t.Fatalf("seed %d: sFS election run not FS-realizable", seed)
		}
	}
	if !sawDual {
		t.Error("no schedule produced a transient dual-leader state; expected at least one")
	}
}

func TestUnilateralElectionObservablyBroken(t *testing.T) {
	// Under the unilateral strawman the deposed leader never crashes and
	// keeps claiming leadership: dual leadership is permanent and the run
	// is isomorphic to no fail-stop run (Condition 1 fails).
	c, apps := electionCluster(4, 1, core.Unilateral, 3, 3000)
	c.SuspectAt(50, 2, 1)
	c.SuspectAt(55, 3, 1)
	c.SuspectAt(60, 4, 1)
	res := c.Run()
	if res.History.CrashIndex(1) >= 0 {
		t.Fatal("unilateral detection must not crash the target")
	}
	if !apps[2].Leader() || !apps[1].Leader() {
		t.Fatal("both 1 and 2 should believe they lead")
	}
	if election.MaxSimultaneousLeaders(res.History) < 2 {
		t.Error("expected persistent dual leadership")
	}
	if rewrite.Realizable(res.History.DropTags(core.TagSusp)) {
		t.Error("unilateral election run must not be FS-realizable")
	}
	// The undead leader's claims keep arriving at processes that deposed it.
	if got := election.StaleClaims(res.History); got == 0 {
		t.Error("expected stale claims from the undead leader")
	}
}

func TestLeaderIntervals(t *testing.T) {
	h := model.History{
		model.Internal(1, election.LeaderTag, 1), // 0
		model.Crash(1),                           // 1
		model.Internal(2, election.LeaderTag, 2), // 2
	}.Normalize()
	ivs := election.LeaderIntervals(h)
	if iv := ivs[1]; iv != [2]int{0, 1} {
		t.Errorf("interval of 1 = %v", iv)
	}
	if iv := ivs[2]; iv != [2]int{2, 3} {
		t.Errorf("interval of 2 = %v", iv)
	}
	if got := election.MaxSimultaneousLeaders(h); got != 1 {
		t.Errorf("MaxSimultaneousLeaders = %d, want 1", got)
	}
	overlap := model.History{
		model.Internal(1, election.LeaderTag, 1),
		model.Internal(2, election.LeaderTag, 2),
		model.Crash(1),
	}.Normalize()
	if got := election.MaxSimultaneousLeaders(overlap); got != 2 {
		t.Errorf("MaxSimultaneousLeaders = %d, want 2", got)
	}
}

func TestClaimsAreReceived(t *testing.T) {
	c, apps := electionCluster(3, 1, core.SimulatedFailStop, 4, 500)
	c.Run()
	for p := 2; p <= 3; p++ {
		if apps[p].ClaimsSeen() == 0 {
			t.Errorf("process %d saw no leadership claims", p)
		}
	}
}
