package topo

import (
	"testing"

	"failstop/internal/model"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"full", "full"},
		{"", "full"},
		{"gossip:8", "gossip:8"},
		{"gossip:3@42", "gossip:3@42"},
		{"hier:4x8", "hier:4x8"},
		{" hier:2x2 ", "hier:2x2"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got := sp.Name(); got != c.want {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", c.in, got, c.want)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("ParseSpec(%q).Validate(): %v", c.in, err)
		}
	}
	for _, bad := range []string{"ring", "gossip", "gossip:0", "gossip:x", "hier:4", "hier:0x2", "hier:axb"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

func TestFullMesh(t *testing.T) {
	tp := MustNew(Spec{}, 6)
	if !tp.IsFull() || tp.Name() != "full" {
		t.Fatalf("zero spec: IsFull=%v Name=%q", tp.IsFull(), tp.Name())
	}
	if tp.Links() != 30 {
		t.Errorf("Links() = %d, want 30", tp.Links())
	}
	for p := model.ProcID(1); p <= 6; p++ {
		if tp.Degree(p) != 5 {
			t.Errorf("Degree(%d) = %d, want 5", p, tp.Degree(p))
		}
		peers := tp.Peers(p)
		if len(peers) != 5 {
			t.Fatalf("Peers(%d) = %v", p, peers)
		}
		for _, q := range peers {
			if q == p || !tp.Contains(p, q) {
				t.Errorf("Peers(%d) contains bad peer %d", p, q)
			}
		}
	}
}

// TestGossipDeterministicSymmetricSorted pins the gossip sampler's three
// contracts: identical adjacency for identical (spec, n), symmetry, and
// ascending per-process peer lists with no self-loops or duplicates.
func TestGossipDeterministicSymmetricSorted(t *testing.T) {
	const n, fanout = 200, 4
	sp := Spec{Kind: KindGossip, Fanout: fanout, Seed: 7}
	a := MustNew(sp, n)
	b := MustNew(sp, n)
	for p := model.ProcID(1); int(p) <= n; p++ {
		pa, pb := a.Peers(p), b.Peers(p)
		if len(pa) != len(pb) {
			t.Fatalf("proc %d: degree %d vs %d across identical builds", p, len(pa), len(pb))
		}
		if len(pa) < fanout {
			t.Errorf("proc %d: degree %d below fanout %d", p, len(pa), fanout)
		}
		for i, q := range pa {
			if q != pb[i] {
				t.Fatalf("proc %d: adjacency differs across identical builds", p)
			}
			if q == p {
				t.Errorf("proc %d: self-loop", p)
			}
			if i > 0 && pa[i-1] >= q {
				t.Errorf("proc %d: peers not strictly ascending: %v", p, pa)
			}
			if !a.Contains(q, p) {
				t.Errorf("edge %d->%d not symmetric", p, q)
			}
		}
	}
	if other := MustNew(Spec{Kind: KindGossip, Fanout: fanout, Seed: 8}, n); sameAdjacency(a, other, n) {
		t.Error("different seeds produced identical adjacency")
	}
}

func sameAdjacency(a, b *Topology, n int) bool {
	for p := model.ProcID(1); int(p) <= n; p++ {
		pa, pb := a.Peers(p), b.Peers(p)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
	}
	return true
}

// TestHierNeighborhoods pins the hierarchy graph on a hand-checkable
// shape: 12 processes over 2 regions × 2 racks (rack size 3).
//
//	rack 0: 1 2 3   rack 1: 4 5 6    (region 0, leader 1; rack leaders 1, 4)
//	rack 2: 7 8 9   rack 3: 10 11 12 (region 1, leader 7; rack leaders 7, 10)
func TestHierNeighborhoods(t *testing.T) {
	tp := MustNew(Spec{Kind: KindHier, Regions: 2, Racks: 2}, 12)
	want := map[model.ProcID][]model.ProcID{
		2:  {1, 3},        // plain rack member
		1:  {2, 3, 4, 7},  // rack leader + region leader
		4:  {1, 5, 6},     // rack leader only
		7:  {1, 8, 9, 10}, // region 1's leader
		10: {7, 11, 12},   // rack leader in region 1
		12: {10, 11},      // plain member of the last rack
	}
	for p, peers := range want {
		got := tp.Peers(p)
		if len(got) != len(peers) {
			t.Fatalf("Peers(%d) = %v, want %v", p, got, peers)
		}
		for i := range got {
			if got[i] != peers[i] {
				t.Fatalf("Peers(%d) = %v, want %v", p, got, peers)
			}
		}
		if tp.Degree(p) != len(peers) {
			t.Errorf("Degree(%d) = %d, want %d", p, tp.Degree(p), len(peers))
		}
	}
	if r := tp.RegionOf(5); r != 0 {
		t.Errorf("RegionOf(5) = %d, want 0", r)
	}
	if r := tp.RegionOf(9); r != 1 {
		t.Errorf("RegionOf(9) = %d, want 1", r)
	}
	if g := tp.RackOf(11); g != 3 {
		t.Errorf("RackOf(11) = %d, want 3", g)
	}
	if tp.Regions() != 2 || tp.NumRacks() != 4 {
		t.Errorf("Regions=%d NumRacks=%d, want 2 and 4", tp.Regions(), tp.NumRacks())
	}
	// Symmetry: Contains must agree in both directions everywhere.
	for p := model.ProcID(1); p <= 12; p++ {
		for q := model.ProcID(1); q <= 12; q++ {
			if tp.Contains(p, q) != tp.Contains(q, p) {
				t.Errorf("Contains(%d,%d) asymmetric", p, q)
			}
		}
	}
}

func TestNewRejectsMisfits(t *testing.T) {
	if _, err := New(Spec{Kind: KindGossip, Fanout: 5}, 5); err == nil {
		t.Error("gossip fanout 5 over 5 processes: want error")
	}
	if _, err := New(Spec{Kind: KindHier, Regions: 4, Racks: 4}, 9); err == nil {
		t.Error("hier 4x4 over 9 processes: want error")
	}
	if _, err := New(Spec{Kind: "ring"}, 5); err == nil {
		t.Error("unknown kind: want error")
	}
	if _, err := New(Spec{}, 0); err == nil {
		t.Error("n=0: want error")
	}
}

// TestForEachPeerAllocFree pins the virtual kinds' memory contract: full
// and hier neighborhood walks must not allocate per call.
func TestForEachPeerAllocFree(t *testing.T) {
	full := MustNew(Spec{}, 1000)
	hier := MustNew(Spec{Kind: KindHier, Regions: 4, Racks: 5}, 1000)
	sink := 0
	fn := func(q model.ProcID) { sink += int(q) }
	for name, tp := range map[string]*Topology{"full": full, "hier": hier} {
		allocs := testing.AllocsPerRun(10, func() { tp.ForEachPeer(500, fn) })
		if allocs > 0 {
			t.Errorf("%s: ForEachPeer allocates %.0f/call, want 0", name, allocs)
		}
	}
	_ = sink
}
