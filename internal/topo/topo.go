// Package topo defines communication topologies: which processes each
// process broadcasts to, and — under the partial-quorum reading of the §5
// protocol — whose SUSP testimony counts toward its quorums.
//
// The paper's construction assumes a complete graph: every process can
// send "j failed" to every other process, and a quorum is more than
// n(t-1)/t of all n processes. That reading caps a materialized simulation
// at N in the low hundreds: state, broadcast fan-out, and quorum counting
// are all Θ(N) per process, Θ(N²) per run. The quorum-family results the
// construction actually rests on (Theorem 7, and the Imbs–Raynal–Stainer
// reduction this repo implements in internal/byz) need only that any two
// quorums a process completes intersect in a correct process — a property
// of the membership pool, not of global connectivity. A Topology makes the
// pool explicit: each process runs the identical §5 protocol over its
// neighborhood, completing quorums of more than m(t-1)/t of its m pool
// members (internal/quorum.Pool).
//
// Three graph kinds:
//
//   - Full: the paper's complete graph. The zero Spec. Neighborhoods are
//     virtual (no adjacency is materialized), so Full costs O(1) memory at
//     any N.
//   - Gossip: every process samples Fanout distinct peers with a
//     seed-deterministic splitmix64 stream, and the sampled edges are
//     symmetrized (if p samples q, q also neighbors p). Expected degree is
//     just under 2·Fanout. Adjacency is materialized once per topology:
//     O(N·Fanout) memory.
//   - Hier: a rack/region hierarchy. Processes fill racks contiguously,
//     Racks racks per region, Regions regions. Every process neighbors its
//     whole rack; the lowest process of each rack (the rack leader)
//     additionally neighbors its region's other rack leaders, and the
//     lowest process of each region (the region leader) neighbors the
//     other region leaders. Neighborhoods are computed arithmetically —
//     O(1) memory at any N — which is what makes correlated region-cut
//     fault plans (netadv LinkSet.Regions/Racks) cheap to target.
//
// Determinism: a Topology is a pure function of (Spec, N). Gossip sampling
// reuses the module's splitmix64 mixer, so adjacency never depends on map
// iteration order or on the host's RNG stream.
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"failstop/internal/model"
)

// Kind names for Spec.Kind. A Spec with an empty Kind is the full mesh.
const (
	KindFull   = "full"
	KindGossip = "gossip"
	KindHier   = "hier"
)

// Spec is the declarative, wire-stable description of a topology. It is
// what plan files, sweep axes, and the -topo CLI flags carry; New resolves
// it against a concrete N.
//
//sfs:wire
type Spec struct {
	// Kind is KindFull (or ""), KindGossip, or KindHier.
	Kind string `json:"kind,omitempty"`
	// Fanout is the per-process sample count for gossip graphs. Ignored by
	// the other kinds.
	Fanout int `json:"fanout,omitempty"`
	// Seed seeds gossip peer sampling. Two gossip topologies with equal
	// (Seed, Fanout, N) have identical adjacency; 0 is a valid seed.
	Seed int64 `json:"seed,omitempty"`
	// Regions and Racks shape hierarchy graphs: Regions regions of Racks
	// racks each. Ignored by the other kinds.
	Regions int `json:"regions,omitempty"`
	Racks   int `json:"racks,omitempty"`
}

// IsFull reports whether the spec names the complete graph (the zero Spec
// does).
func (sp Spec) IsFull() bool { return sp.Kind == "" || sp.Kind == KindFull }

// Name renders the spec compactly — "full", "gossip:8", "hier:4x8" — the
// same grammar ParseSpec accepts. It is the sweep report's topology column.
func (sp Spec) Name() string {
	switch sp.Kind {
	case "", KindFull:
		return KindFull
	case KindGossip:
		name := KindGossip + ":" + strconv.Itoa(sp.Fanout)
		if sp.Seed != 0 {
			name += "@" + strconv.FormatInt(sp.Seed, 10)
		}
		return name
	case KindHier:
		return KindHier + ":" + strconv.Itoa(sp.Regions) + "x" + strconv.Itoa(sp.Racks)
	default:
		return sp.Kind
	}
}

// Validate reports the first problem with the spec, or nil.
func (sp Spec) Validate() error {
	switch sp.Kind {
	case "", KindFull:
		return nil
	case KindGossip:
		if sp.Fanout < 1 {
			return fmt.Errorf("topo: gossip needs Fanout >= 1, got %d", sp.Fanout)
		}
		return nil
	case KindHier:
		if sp.Regions < 1 || sp.Racks < 1 {
			return fmt.Errorf("topo: hier needs Regions >= 1 and Racks >= 1, got %dx%d", sp.Regions, sp.Racks)
		}
		return nil
	default:
		return fmt.Errorf("topo: unknown kind %q (want %s, %s, or %s)", sp.Kind, KindFull, KindGossip, KindHier)
	}
}

// ParseSpec parses the CLI grammar: "full", "gossip:F", "gossip:F@SEED",
// or "hier:RxK" (R regions of K racks).
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	kind, arg, _ := strings.Cut(s, ":")
	switch strings.ToLower(kind) {
	case "", KindFull:
		return Spec{}, nil
	case KindGossip:
		fan, seedStr, hasSeed := strings.Cut(arg, "@")
		f, err := strconv.Atoi(strings.TrimSpace(fan))
		if err != nil || f < 1 {
			return Spec{}, fmt.Errorf("topo: bad gossip fanout in %q (want gossip:F, F >= 1)", s)
		}
		sp := Spec{Kind: KindGossip, Fanout: f}
		if hasSeed {
			seed, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("topo: bad gossip seed in %q", s)
			}
			sp.Seed = seed
		}
		return sp, nil
	case KindHier:
		r, k, ok := strings.Cut(arg, "x")
		if !ok {
			return Spec{}, fmt.Errorf("topo: bad hier shape in %q (want hier:RxK)", s)
		}
		ri, err1 := strconv.Atoi(strings.TrimSpace(r))
		ki, err2 := strconv.Atoi(strings.TrimSpace(k))
		if err1 != nil || err2 != nil || ri < 1 || ki < 1 {
			return Spec{}, fmt.Errorf("topo: bad hier shape in %q (want hier:RxK, R and K >= 1)", s)
		}
		return Spec{Kind: KindHier, Regions: ri, Racks: ki}, nil
	default:
		return Spec{}, fmt.Errorf("topo: unknown topology %q (want full, gossip:F, or hier:RxK)", s)
	}
}

// Topology is a Spec resolved against a concrete N: the undirected
// communication graph the protocol stack broadcasts over.
type Topology struct {
	spec Spec
	n    int

	// adj is the materialized adjacency, indexed by process id, each list
	// sorted ascending. nil for the virtual kinds (full, hier).
	adj [][]model.ProcID

	// Hierarchy geometry: processes fill racks of rackSize contiguously;
	// global rack g spans [1 + g·rackSize, min(n, (g+1)·rackSize)].
	rackSize int
	numRacks int
}

// New resolves spec against n processes. It returns an error for an
// invalid spec or one that cannot shape n processes.
func New(sp Spec, n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: need n >= 1, got %d", n)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{spec: sp, n: n}
	switch sp.Kind {
	case "", KindFull:
	case KindGossip:
		if sp.Fanout > n-1 {
			return nil, fmt.Errorf("topo: gossip fanout %d needs at least %d processes, have %d", sp.Fanout, sp.Fanout+1, n)
		}
		t.adj = sampleGossip(n, sp.Fanout, sp.Seed)
	case KindHier:
		racks := sp.Regions * sp.Racks
		if racks > n {
			return nil, fmt.Errorf("topo: hier %dx%d needs at least %d processes, have %d", sp.Regions, sp.Racks, racks, n)
		}
		t.numRacks = racks
		t.rackSize = (n + racks - 1) / racks
		// Ceil division can strand trailing racks empty (e.g. n=10 over 4
		// racks of 3 fills racks 0..3 with 3,3,3,1); recompute the true
		// rack count so every rack is non-empty.
		t.numRacks = (n + t.rackSize - 1) / t.rackSize
		if t.numRacks < racks {
			return nil, fmt.Errorf("topo: hier %dx%d cannot shape %d processes evenly enough (want n >= %d or fewer racks)", sp.Regions, sp.Racks, n, racks)
		}
	}
	return t, nil
}

// MustNew is New for authored specs; it panics on error.
func MustNew(sp Spec, n int) *Topology {
	t, err := New(sp, n)
	if err != nil {
		panic(err)
	}
	return t
}

// Spec returns the spec the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// N returns the process count the topology was resolved against.
func (t *Topology) N() int { return t.n }

// Name returns the spec's compact name.
func (t *Topology) Name() string { return t.spec.Name() }

// IsFull reports whether the topology is the complete graph, in which case
// hosts may keep their existing all-pairs code paths.
func (t *Topology) IsFull() bool { return t.spec.IsFull() }

// Degree returns the number of neighbors of p.
func (t *Topology) Degree(p model.ProcID) int {
	switch t.spec.Kind {
	case "", KindFull:
		return t.n - 1
	case KindGossip:
		return len(t.adj[p])
	default:
		d := 0
		t.ForEachPeer(p, func(model.ProcID) { d++ })
		return d
	}
}

// Links returns the number of directed links in the graph: the footprint a
// fully-exercised fault plane or reliable layer would lazily materialize.
func (t *Topology) Links() int64 {
	switch t.spec.Kind {
	case "", KindFull:
		return int64(t.n) * int64(t.n-1)
	case KindGossip:
		var sum int64
		for p := 1; p <= t.n; p++ {
			sum += int64(len(t.adj[p]))
		}
		return sum
	default:
		var sum int64
		for p := 1; p <= t.n; p++ {
			sum += int64(t.Degree(model.ProcID(p)))
		}
		return sum
	}
}

// ForEachPeer calls fn for every neighbor of p, in ascending id order. It
// allocates nothing for the virtual kinds, so broadcast paths can iterate
// a million-process neighborhood without materializing it.
func (t *Topology) ForEachPeer(p model.ProcID, fn func(q model.ProcID)) {
	switch t.spec.Kind {
	case "", KindFull:
		for q := model.ProcID(1); int(q) <= t.n; q++ {
			if q != p {
				fn(q)
			}
		}
	case KindGossip:
		for _, q := range t.adj[p] {
			fn(q)
		}
	default:
		t.forEachHierPeer(p, fn)
	}
}

// Peers returns p's neighborhood as a sorted slice. For the full mesh this
// materializes n-1 ids; large-N callers should prefer ForEachPeer.
func (t *Topology) Peers(p model.ProcID) []model.ProcID {
	if t.spec.Kind == KindGossip {
		return t.adj[p]
	}
	out := make([]model.ProcID, 0, t.Degree(p))
	t.ForEachPeer(p, func(q model.ProcID) { out = append(out, q) })
	return out
}

// Contains reports whether q is a neighbor of p. The graph is undirected:
// Contains(p, q) == Contains(q, p).
func (t *Topology) Contains(p, q model.ProcID) bool {
	if p == q {
		return false
	}
	switch t.spec.Kind {
	case "", KindFull:
		return true
	case KindGossip:
		lst := t.adj[p]
		i := sort.Search(len(lst), func(i int) bool { return lst[i] >= q })
		return i < len(lst) && lst[i] == q
	default:
		if t.rackOf(p) == t.rackOf(q) {
			return true
		}
		if t.isRackLeader(p) && t.isRackLeader(q) && t.RegionOf(p) == t.RegionOf(q) {
			return true
		}
		return t.isRegionLeader(p) && t.isRegionLeader(q)
	}
}

// RegionOf returns p's region index (0-based) in a hierarchy, or -1 for
// the other kinds.
func (t *Topology) RegionOf(p model.ProcID) int {
	if t.spec.Kind != KindHier {
		return -1
	}
	return t.rackOf(p) / t.spec.Racks
}

// RackOf returns p's global rack index (0-based) in a hierarchy, or -1 for
// the other kinds.
func (t *Topology) RackOf(p model.ProcID) int {
	if t.spec.Kind != KindHier {
		return -1
	}
	return t.rackOf(p)
}

// Regions returns the number of regions (0 for non-hierarchies).
func (t *Topology) Regions() int {
	if t.spec.Kind != KindHier {
		return 0
	}
	return (t.numRacks + t.spec.Racks - 1) / t.spec.Racks
}

// NumRacks returns the number of global racks (0 for non-hierarchies).
func (t *Topology) NumRacks() int { return t.numRacks }

func (t *Topology) rackOf(p model.ProcID) int { return (int(p) - 1) / t.rackSize }

// rackBounds returns the inclusive process-id range of global rack g.
func (t *Topology) rackBounds(g int) (lo, hi model.ProcID) {
	lo = model.ProcID(1 + g*t.rackSize)
	hi = model.ProcID((g + 1) * t.rackSize)
	if int(hi) > t.n {
		hi = model.ProcID(t.n)
	}
	return lo, hi
}

// isRackLeader reports whether p is the lowest id of its rack.
func (t *Topology) isRackLeader(p model.ProcID) bool {
	return (int(p)-1)%t.rackSize == 0
}

// isRegionLeader reports whether p is the lowest id of its region: the
// leader of its region's first rack.
func (t *Topology) isRegionLeader(p model.ProcID) bool {
	return t.isRackLeader(p) && t.rackOf(p)%t.spec.Racks == 0
}

// forEachHierPeer walks p's hierarchy neighborhood in ascending id order:
// rack-mates always; sibling rack leaders for a rack leader; the other
// region leaders for a region leader. The three peer classes are disjoint
// id ranges interleaved by a three-way merge on the next candidate.
func (t *Topology) forEachHierPeer(p model.ProcID, fn func(q model.ProcID)) {
	rack := t.rackOf(p)
	lo, hi := t.rackBounds(rack)
	leader := t.isRackLeader(p)
	regionLeader := t.isRegionLeader(p)
	region := rack / t.spec.Racks

	// Rack-leader peers of a rack leader: leaders of the region's other
	// racks. Region-leader peers of a region leader: leaders of the other
	// regions. Both sets are sparse and strictly outside p's own rack, and
	// every rack-leader id in p's region precedes or follows p's whole rack
	// contiguously — so emitting "leaders below the rack, rack-mates,
	// leaders above the rack" preserves ascending order.
	emitLeaders := func(before bool) {
		if leader {
			first, last := region*t.spec.Racks, (region+1)*t.spec.Racks-1
			if last >= t.numRacks {
				last = t.numRacks - 1
			}
			for g := first; g <= last; g++ {
				if g == rack {
					continue
				}
				q, _ := t.rackBounds(g)
				if (q < lo) == before {
					fn(q)
				}
			}
		}
		if regionLeader {
			for r := 0; r*t.spec.Racks < t.numRacks; r++ {
				if r == region {
					continue
				}
				q, _ := t.rackBounds(r * t.spec.Racks)
				if (q < lo) == before {
					fn(q)
				}
			}
		}
	}
	emitLeaders(true)
	for q := lo; q <= hi; q++ {
		if q != p {
			fn(q)
		}
	}
	emitLeaders(false)
}

// sampleGossip draws each process's Fanout distinct peers from a
// splitmix64 stream over (seed, p, attempt) and symmetrizes the result.
// Sampling is rejection-based with a deterministic attempt counter, so the
// adjacency is a pure function of (seed, fanout, n).
func sampleGossip(n, fanout int, seed int64) [][]model.ProcID {
	sets := make([]map[model.ProcID]bool, n+1)
	for p := 1; p <= n; p++ {
		if sets[p] == nil {
			sets[p] = make(map[model.ProcID]bool, 2*fanout)
		}
		// Each process draws fanout distinct peers of its own; edges
		// inherited from earlier processes' draws (symmetrization) do not
		// count toward the quota, or a dense neighborhood could demand more
		// fresh peers than exist and the rejection loop would never finish.
		drawn := make(map[model.ProcID]bool, fanout)
		for attempt := uint64(0); len(drawn) < fanout; attempt++ {
			q := model.ProcID(1 + gossipDraw(seed, p, attempt)%uint64(n))
			if q == model.ProcID(p) || drawn[q] {
				continue
			}
			drawn[q] = true
			sets[p][q] = true
			if sets[q] == nil {
				sets[q] = make(map[model.ProcID]bool, 2*fanout)
			}
			sets[q][model.ProcID(p)] = true
		}
	}
	adj := make([][]model.ProcID, n+1)
	for p := 1; p <= n; p++ {
		lst := make([]model.ProcID, 0, len(sets[p]))
		for q := range sets[p] {
			lst = append(lst, q)
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		adj[p] = lst
	}
	return adj
}

// gossipSalt separates peer sampling from every other splitmix64 stream in
// the module.
const gossipSalt = 0x3fb49ac77d5e0281

// gossipDraw is one sample of process p's peer stream.
func gossipDraw(seed int64, p int, attempt uint64) uint64 {
	h := mix(uint64(seed) ^ gossipSalt)
	h = mix(h ^ uint64(p)*0x9e3779b97f4a7c15)
	return mix(h ^ attempt)
}

// mix is splitmix64's output mix — the module's standard bit mixer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
