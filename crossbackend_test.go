package failstop_test

import (
	"fmt"
	"testing"
	"time"

	"failstop"
)

// fateMatrix is the protocol-level delivery fate of a run: which (i, j)
// detections completed and which processes ended up crashed. Over a
// deterministic fault plan the matrix is a pure function of the scenario,
// so the simulated and live backends must agree on it exactly.
type fateMatrix struct {
	detected [][]bool
	crashed  []bool
}

func fatesOf(h failstop.History, n int) fateMatrix {
	m := fateMatrix{detected: make([][]bool, n+1), crashed: make([]bool, n+1)}
	for i := 1; i <= n; i++ {
		m.detected[i] = make([]bool, n+1)
		for j := 1; j <= n; j++ {
			m.detected[i][j] = h.FailedIndex(failstop.ProcID(i), failstop.ProcID(j)) >= 0
		}
		m.crashed[i] = h.CrashIndex(failstop.ProcID(i)) >= 0
	}
	return m
}

func (m fateMatrix) covers(o fateMatrix) bool {
	for i := range m.detected {
		if i == 0 {
			continue
		}
		for j, want := range o.detected[i] {
			if want && !m.detected[i][j] {
				return false
			}
		}
		if o.crashed[i] && !m.crashed[i] {
			return false
		}
	}
	return true
}

func (m fateMatrix) String() string {
	s := ""
	for i := 1; i < len(m.detected); i++ {
		for j := 1; j < len(m.detected[i]); j++ {
			if m.detected[i][j] {
				s += fmt.Sprintf("detected(%d,%d) ", i, j)
			}
		}
		if m.crashed[i] {
			s += fmt.Sprintf("crashed(%d) ", i)
		}
	}
	return s
}

// TestCrossBackendTopologyFates: the same gossip fan-out scenario under
// the same correlated region cut must reach the same protocol outcome on
// the simulated and the live (goroutine) backend — identical detection
// matrix and crash set. The overlay is seed-pinned, so both backends walk
// the same graph, and the cut is made permanent (From 0, no heal) so the
// fate of every cross-boundary message is independent of wall-clock
// scheduling — which is what lets this test run under the race detector
// without becoming timing-sensitive.
func TestCrossBackendTopologyFates(t *testing.T) {
	const n, tt = 6, 1
	tp, err := failstop.ParseTopo("gossip:3@7")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := failstop.BuiltinFaultPlan("region-cut", n, tt)
	if err != nil {
		t.Fatal(err)
	}
	// The builtin cuts from tick 10 and heals at 200; pin the cut open for
	// the whole run so backends cannot disagree about messages sent near
	// the window edges.
	plan.Rules[0].From = 0
	plan.Rules[0].Until = 0

	sim := failstop.NewCluster(failstop.Options{
		N: n, T: tt, Seed: 3, Topology: &tp, Faults: &plan,
	})
	// One suspicion per region: subjects 3 and 6 sit on opposite sides of
	// the cut, so their quorums draw on disjoint live neighborhoods.
	sim.SuspectAt(5, 2, 3)
	sim.SuspectAt(5, 5, 6)
	rep := sim.Run()
	want := fatesOf(rep.History, n)

	// Non-vacuity: the scenario must produce at least one completed
	// detection, and the cut must starve at least one relay — otherwise
	// the agreement below proves nothing about topology or the plan.
	anyDetected := false
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if want.detected[i][j] {
				anyDetected = true
			}
		}
	}
	if !anyDetected {
		t.Fatalf("simulated scenario completed no detections: %v", want)
	}
	if rep.Dropped == 0 {
		t.Fatalf("simulated scenario crossed the cut %d times, want > 0", rep.Dropped)
	}

	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: n, T: tt, Seed: 3, Topology: &tp, Faults: &plan,
		MinDelay: 50 * time.Microsecond,
		MaxDelay: 500 * time.Microsecond,
		Tick:     time.Millisecond,
	})
	lc.Start()
	lc.Suspect(2, 3)
	lc.Suspect(5, 6)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fatesOf(lc.History(), n).covers(want) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	lc.Stop()
	got := fatesOf(lc.History(), n)
	if err := lc.History().Validate(); err != nil {
		t.Fatalf("invalid live history: %v", err)
	}

	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if got.detected[i][j] != want.detected[i][j] {
				t.Errorf("backends disagree on detection (%d,%d): sim=%v live=%v",
					i, j, want.detected[i][j], got.detected[i][j])
			}
		}
		if got.crashed[i] != want.crashed[i] {
			t.Errorf("backends disagree on crash of %d: sim=%v live=%v", i, want.crashed[i], got.crashed[i])
		}
	}
	if t.Failed() {
		t.Logf("sim:  %v", want)
		t.Logf("live: %v", got)
	}
}
