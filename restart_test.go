package failstop_test

import (
	"testing"
	"time"

	"failstop"
	"failstop/internal/model"
)

// stormFate reduces a run to its backend-independent restart outcome: for
// each process, whether it ever plan-crashed and whether it ever restarted.
type stormFate struct {
	crashed   map[failstop.ProcID]bool
	restarted map[failstop.ProcID]bool
}

func historyFate(h failstop.History) stormFate {
	f := stormFate{
		crashed:   make(map[failstop.ProcID]bool),
		restarted: make(map[failstop.ProcID]bool),
	}
	for _, e := range h {
		switch {
		case e.Kind == model.KindCrash:
			f.crashed[e.Proc] = true
		case e.Kind == model.KindInternal && e.Tag == model.TagRestart:
			f.restarted[e.Proc] = true
		}
	}
	return f
}

// TestRestartStormCrossBackendFates: the restart-storm builtin drives the
// same crash/restart fates on the simulated and the live backend. Wall-clock
// scheduling makes live cycle counts timing-dependent, so agreement is on
// fates, not counts: the same set of processes plan-crashes, the same set
// restarts, every restart follows a crash (both histories validate), and
// both backends account restarts out of crashes consistently.
func TestRestartStormCrossBackendFates(t *testing.T) {
	const n, tt = 5, 2
	plan, err := failstop.BuiltinFaultPlan("restart-storm", n, tt)
	if err != nil {
		t.Fatal(err)
	}
	stormProcs := map[failstop.ProcID]bool{n: true, n - 1: true}

	c := failstop.NewCluster(failstop.Options{
		N: n, T: tt, Seed: 11, MaxTime: 2000, Faults: &plan,
		Recovery: failstop.RecoveryDurable,
	})
	rep := c.Run()
	if err := rep.History.Validate(); err != nil {
		t.Fatalf("sim history invalid: %v", err)
	}
	simFate := historyFate(rep.History)
	if rep.PlanCrashes == 0 || rep.Restarts == 0 {
		t.Fatalf("sim: PlanCrashes=%d Restarts=%d, want both > 0", rep.PlanCrashes, rep.Restarts)
	}
	if rep.Restarts != rep.Recovered {
		t.Errorf("sim: Restarts=%d but Recovered=%d; durable restarts must restore a snapshot",
			rep.Restarts, rep.Recovered)
	}

	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: n, T: tt, Seed: 11, Faults: &plan,
		Recovery: failstop.RecoveryDurable,
		MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
		Tick: 100 * time.Microsecond,
	})
	lc.Start()
	// One full storm cycle is RestartStormPeriod=400 ticks = 40ms at this
	// tick rate; 300ms of wall clock covers several cycles on both procs.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, restarts, _ := lc.RecoveryStats(); restarts >= 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	lc.Stop()
	h := lc.History()
	if err := h.Validate(); err != nil {
		t.Fatalf("live history invalid: %v", err)
	}
	liveFate := historyFate(h)
	planCrashes, restarts, recovered := lc.RecoveryStats()
	if planCrashes == 0 || restarts == 0 {
		t.Fatalf("live: planCrashes=%d restarts=%d, want both > 0", planCrashes, restarts)
	}
	if restarts != recovered {
		t.Errorf("live: restarts=%d but recovered=%d", restarts, recovered)
	}

	for _, f := range []struct {
		name string
		fate stormFate
	}{{"sim", simFate}, {"live", liveFate}} {
		for p := failstop.ProcID(1); p <= n; p++ {
			if f.fate.crashed[p] != stormProcs[p] {
				t.Errorf("%s: proc %d crashed=%v, want %v", f.name, p, f.fate.crashed[p], stormProcs[p])
			}
			if f.fate.restarted[p] != stormProcs[p] {
				t.Errorf("%s: proc %d restarted=%v, want %v", f.name, p, f.fate.restarted[p], stormProcs[p])
			}
		}
	}
}
