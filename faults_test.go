package failstop_test

import (
	"strings"
	"testing"
	"time"

	"failstop"
	"failstop/internal/model"
	"failstop/internal/netadv"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts failstop.Options
		want string // substring of the error; "" means valid
	}{
		{"too few processes", failstop.Options{N: 1}, "at least 2"},
		{"zero processes", failstop.Options{N: 0}, "at least 2"},
		{"negative t", failstop.Options{N: 5, T: -1}, "cannot be negative"},
		{"heartbeats without horizon", failstop.Options{N: 5, HeartbeatEvery: 10}, "MaxTime"},
		{"bad fault plan", failstop.Options{N: 5, Faults: &failstop.FaultPlan{
			Rules: []failstop.FaultRule{{Drop: 2}},
		}}, "outside [0,1]"},
		{"plan names unknown process", failstop.Options{N: 5, Faults: &failstop.FaultPlan{
			Rules: []failstop.FaultRule{{Cut: true, Links: failstop.LinkSet{
				Groups: [][]failstop.ProcID{{1, 9}},
			}}},
		}}, "outside 1..5"},
		{"valid minimal", failstop.Options{N: 2}, ""},
		{"valid heartbeats", failstop.Options{N: 5, HeartbeatEvery: 10, MaxTime: 1000}, ""},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.opts.Validate()
			if tt.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

func TestNewClusterPanicsOnInvalidOptions(t *testing.T) {
	for name, opts := range map[string]failstop.Options{
		"n too small":        {N: 1},
		"heartbeats forever": {N: 5, HeartbeatEvery: 7},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("NewCluster accepted invalid options")
				}
			}()
			failstop.NewCluster(opts)
		})
	}
}

func TestNewLiveClusterPanicsOnTooFewProcesses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLiveCluster accepted N=1")
		}
	}()
	failstop.NewLiveCluster(failstop.LiveOptions{N: 1})
}

func TestBuiltinFaultPlans(t *testing.T) {
	names := failstop.FaultPlanNames()
	if len(names) != 10 {
		t.Fatalf("FaultPlanNames() = %v", names)
	}
	for _, name := range names {
		plan, err := failstop.BuiltinFaultPlan(name, 10, 3)
		if err != nil {
			t.Fatalf("BuiltinFaultPlan(%s): %v", name, err)
		}
		if plan.Name != name || plan.Empty() {
			t.Errorf("plan %s: name=%q rules=%d", name, plan.Name, len(plan.Rules))
		}
	}
	if _, err := failstop.BuiltinFaultPlan("nope", 5, 2); err == nil {
		t.Error("unknown plan accepted")
	}
}

// splitBrainNow is a partition active from tick 0: majority {1,2,3} vs
// minority {4,5}. Immediate activation keeps sim and live semantics
// comparable without racing injection timing against the cut.
func splitBrainNow() *failstop.FaultPlan {
	return &failstop.FaultPlan{
		Name: "split-brain-now",
		Rules: []failstop.FaultRule{{
			Cut: true,
			Links: failstop.LinkSet{Groups: [][]failstop.ProcID{
				{1, 2, 3}, {4, 5},
			}},
		}},
	}
}

// checkSplitBrainSemantics asserts the plan semantics both backends must
// agree on for n=5, t=2 (minimum quorum 3): the majority-side detection of
// a minority member completes, the minority-side detection starves, and no
// message ever crosses the partition.
func checkSplitBrainSemantics(t *testing.T, backend string, h failstop.History, dropped int) {
	t.Helper()
	if h.FailedIndex(1, 4) < 0 {
		t.Errorf("%s: majority-side detection failed_1(4) never completed", backend)
	}
	if idx := h.FailedIndex(4, 1); idx >= 0 {
		t.Errorf("%s: minority-side detection failed_4(1) completed at %d despite quorum 3 > half size 2", backend, idx)
	}
	minority := map[failstop.ProcID]bool{4: true, 5: true}
	for _, e := range h {
		if e.Kind == model.KindRecv && minority[e.Proc] != minority[e.Peer] {
			t.Errorf("%s: message crossed the partition: %s", backend, e)
		}
	}
	if dropped == 0 {
		t.Errorf("%s: no messages dropped despite cross-partition broadcasts", backend)
	}
}

// TestFaultPlanCrossBackend is the acceptance criterion: the deterministic
// simulator and the live goroutine runtime agree on fault-plan semantics.
func TestFaultPlanCrossBackend(t *testing.T) {
	// Simulated backend.
	c := failstop.NewCluster(failstop.Options{
		N: 5, T: 2, Seed: 3, Faults: splitBrainNow(),
	})
	c.SuspectAt(20, 1, 4)
	c.SuspectAt(25, 4, 1)
	rep := c.Run()
	checkSplitBrainSemantics(t, "sim", rep.History, rep.Dropped)

	// Live backend, same plan.
	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: 5, T: 2, Seed: 3, Faults: splitBrainNow(),
		MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
		Tick: 100 * time.Microsecond,
	})
	lc.Start()
	lc.Suspect(1, 4)
	lc.Suspect(4, 1)
	deadline := time.Now().Add(2 * time.Second)
	for lc.History().FailedIndex(1, 4) < 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	lc.Stop()
	dropped, _ := lc.Stats()
	checkSplitBrainSemantics(t, "live", lc.History(), dropped)
}

// TestFaultPlanDeterministicRuns: identical options including a
// probabilistic plan reproduce byte-identical histories.
func TestFaultPlanDeterministicRuns(t *testing.T) {
	flaky, err := failstop.BuiltinFaultPlan("flaky-quorum", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() failstop.Report {
		c := failstop.NewCluster(failstop.Options{N: 10, T: 3, Seed: 11, Faults: &flaky})
		c.SuspectAt(10, 2, 1)
		return c.Run()
	}
	a, b := run(), run()
	if !a.History.IsomorphicTo(b.History) || len(a.History) != len(b.History) {
		t.Error("identical seeds produced different histories under flaky-quorum")
	}
	if a.Dropped != b.Dropped || a.Duplicated != b.Duplicated {
		t.Errorf("fault counters diverged: (%d,%d) vs (%d,%d)", a.Dropped, a.Duplicated, b.Dropped, b.Duplicated)
	}
	if a.Dropped == 0 {
		t.Error("flaky-quorum dropped nothing")
	}
}

// healingPlan instantiates the healing-partition built-in for n=5, t=2:
// halves {1,2,3} | {4,5}, lossy cut from tick 10, heal at tick 200.
func healingPlan(t *testing.T) *failstop.FaultPlan {
	t.Helper()
	plan, err := failstop.BuiltinFaultPlan("healing-partition", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &plan
}

// TestReliableHealingPartitionCrossBackend is the PR's acceptance
// criterion: under the lossy healing partition, a crash scheduled before
// the heal — suspected from the minority side, which cannot assemble the
// quorum of 3 on its own — is eventually detected by every correct process
// on both backends once the reliable-delivery layer retransmits the
// broadcast across the heal. The same scenario with the layer disabled
// starves (asserted deterministically on the simulated backend).
func TestReliableHealingPartitionCrossBackend(t *testing.T) {
	// Simulated backend, layer disabled: the once-only broadcast from 5 is
	// dropped at the cut, so no correct process ever detects the crash.
	bare := failstop.NewCluster(failstop.Options{
		N: 5, T: 2, Seed: 7, MaxTime: 3000, Faults: healingPlan(t),
	})
	bare.CrashAt(15, 1)
	bare.SuspectAt(20, 5, 1)
	bareRep := bare.Run()
	for p := failstop.ProcID(2); p <= 5; p++ {
		if idx := bareRep.History.FailedIndex(p, 1); idx >= 0 {
			t.Errorf("sim without reliable delivery: failed_%d(1) completed at %d despite the lossy cut", p, idx)
		}
	}
	if bareRep.Retransmits != 0 || bareRep.AckedDuplicates != 0 {
		t.Errorf("disabled layer reported work: retransmits=%d ackedDups=%d",
			bareRep.Retransmits, bareRep.AckedDuplicates)
	}

	// Simulated backend, layer enabled: retransmission carries the
	// suspicion across the heal and every correct process detects.
	rel := failstop.NewCluster(failstop.Options{
		N: 5, T: 2, Seed: 7, MaxTime: 3000, Faults: healingPlan(t),
		Reliable: failstop.ReliableOptions{Enabled: true},
	})
	rel.CrashAt(15, 1)
	rel.SuspectAt(20, 5, 1)
	relRep := rel.Run()
	for p := failstop.ProcID(2); p <= 5; p++ {
		if relRep.History.FailedIndex(p, 1) < 0 {
			t.Errorf("sim with reliable delivery: failed_%d(1) never completed after the heal", p)
		}
	}
	if relRep.Retransmits == 0 {
		t.Error("sim with reliable delivery recovered the detection without retransmitting")
	}

	// Live backend, layer enabled, same plan: ticks are 1ms, so the cut is
	// active [10ms, 200ms) — inject well inside it and wait for every
	// correct process to detect.
	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: 5, T: 2, Seed: 7, Faults: healingPlan(t),
		Reliable: failstop.ReliableOptions{Enabled: true},
		MinDelay: 1 * time.Millisecond, MaxDelay: 3 * time.Millisecond,
		Tick: 1 * time.Millisecond,
	})
	lc.Start()
	time.Sleep(25 * time.Millisecond) // inside the cut window
	lc.Crash(1)
	lc.Suspect(5, 1)
	deadline := time.Now().Add(5 * time.Second)
	allDetected := func(h failstop.History) bool {
		for p := failstop.ProcID(2); p <= 5; p++ {
			if h.FailedIndex(p, 1) < 0 {
				return false
			}
		}
		return true
	}
	for !allDetected(lc.History()) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	lc.Stop()
	h := lc.History()
	for p := failstop.ProcID(2); p <= 5; p++ {
		if h.FailedIndex(p, 1) < 0 {
			t.Errorf("live with reliable delivery: failed_%d(1) never completed", p)
		}
	}
	if retr, _ := lc.ReliableStats(); retr == 0 {
		t.Error("live backend detected across the heal without retransmitting")
	}
}

// checkOneWayCutSemantics asserts what both backends must agree on under
// the one-way-cut plan for n=5, t=2: process 5's outbound links are cut
// from tick 10 while inbound delivery keeps working, so a majority-side
// suspicion of 5 completes everywhere — with no message from 5 ever
// delivered, even though 5 keeps receiving the protocol's broadcasts.
func checkOneWayCutSemantics(t *testing.T, backend string, h failstop.History) {
	t.Helper()
	for p := failstop.ProcID(1); p <= 4; p++ {
		if h.FailedIndex(p, 5) < 0 {
			t.Errorf("%s: failed_%d(5) never completed despite a full quorum among 1..4", backend, p)
		}
	}
	gotInbound := false
	for _, e := range h {
		if e.Kind != model.KindRecv {
			continue
		}
		if e.Peer == 5 && e.Proc != 5 {
			t.Errorf("%s: message from the mute process delivered: %s", backend, e)
		}
		if e.Proc == 5 && e.Peer != 5 {
			gotInbound = true
		}
	}
	if !gotInbound {
		t.Errorf("%s: mute process received nothing; the cut must be one-directional", backend)
	}
}

// TestOneWayCutCrossBackend: the simulator and the live runtime agree on
// the asymmetric (directed Pairs) cut semantics.
func TestOneWayCutCrossBackend(t *testing.T) {
	plan, err := failstop.BuiltinFaultPlan("one-way-cut", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := failstop.NewCluster(failstop.Options{N: 5, T: 2, Seed: 4, Faults: &plan})
	c.SuspectAt(20, 1, 5)
	rep := c.Run()
	checkOneWayCutSemantics(t, "sim", rep.History)

	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: 5, T: 2, Seed: 4, Faults: &plan,
		MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
		Tick: 100 * time.Microsecond,
	})
	lc.Start()
	time.Sleep(5 * time.Millisecond) // past tick 10: the cut is standing
	lc.Suspect(1, 5)
	// The semantics check needs failed_p(5) for every p in 1..4, and the
	// suspicion reaches 2..4 a beat after 1's own detection completes — so
	// wait for all four, not just the suspecting process.
	allFailed := func() bool {
		h := lc.History()
		for p := failstop.ProcID(1); p <= 4; p++ {
			if h.FailedIndex(p, 5) < 0 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(2 * time.Second)
	for !allFailed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	lc.Stop()
	checkOneWayCutSemantics(t, "live", lc.History())
}

// movingIsolatedAt returns which process the moving-partition builtin (for
// n processes) isolates at tick ts, or 0 before the rotation starts.
func movingIsolatedAt(n int, ts int64) failstop.ProcID {
	if ts < 10 {
		return 0
	}
	return failstop.ProcID((ts-10)/netadv.MovingPartitionStride%int64(n) + 1)
}

// checkMovingPartitionInvariant asserts what both backends must agree on
// under moving-partition: no message sent while one of its endpoints was
// isolated is ever delivered. Send times within margin ticks of a window
// boundary are skipped — the live runtime stamps the send event and
// consults the plan on separate clock reads, so boundary ticks are fuzzy
// there (the simulator passes with margin 0).
func checkMovingPartitionInvariant(t *testing.T, backend string, n int, h failstop.History, margin int64) {
	t.Helper()
	sendTime := make(map[model.MsgID]int64)
	sender := make(map[model.MsgID]failstop.ProcID)
	for _, e := range h {
		if e.Kind == model.KindSend {
			sendTime[e.Msg] = e.Time
			sender[e.Msg] = e.Proc
		}
	}
	checked := 0
	for _, e := range h {
		if e.Kind != model.KindRecv {
			continue
		}
		ts, ok := sendTime[e.Msg]
		if !ok {
			t.Errorf("%s: receive of unknown message %d", backend, e.Msg)
			continue
		}
		iso := movingIsolatedAt(n, ts)
		if iso == 0 {
			continue
		}
		if pos := (ts - 10) % netadv.MovingPartitionStride; pos < margin || pos >= netadv.MovingPartitionStride-margin {
			continue // too close to a rotation boundary to attribute
		}
		checked++
		if sender[e.Msg] == iso || e.Proc == iso {
			t.Errorf("%s: message sent at %d delivered although process %d was isolated: %s", backend, ts, iso, e)
		}
	}
	if checked == 0 {
		t.Errorf("%s: no deliveries with attributable send times; the invariant was never exercised", backend)
	}
}

// TestMovingPartitionCrossBackend: the rotating cut behaves identically on
// the deterministic simulator and the live runtime. On the simulator the
// outcome is exact: a suspicion raised while process 4 is isolated
// assembles its quorum among the three connected live processes, process 4
// starves, and nothing ever crosses an active cut. The live runtime must
// honor the same rotation (invariant + eventual detection), with retries
// because a wall-clock injection may land in an unlucky window.
func TestMovingPartitionCrossBackend(t *testing.T) {
	const n, tt = 5, 2
	plan, err := failstop.BuiltinFaultPlan("moving-partition", n, tt)
	if err != nil {
		t.Fatal(err)
	}
	const stride = netadv.MovingPartitionStride

	// Simulated backend. Windows: 1 isolated [10,70), 2 [70,130),
	// 3 [130,190), 4 [190,250), 5 [250,310), then wrap. Crash 1 inside its
	// own window; suspect it from 2 at tick 200, while 4 is dark: the
	// broadcast and its echoes stay inside 4's window, so 2, 3, and 5
	// assemble the quorum of 3 and 4 starves.
	c := failstop.NewCluster(failstop.Options{
		N: n, T: tt, Seed: 5, MaxTime: 4000, Faults: &plan,
	})
	c.CrashAt(15, 1)
	c.SuspectAt(10+3*stride+10, 2, 1)
	rep := c.Run()
	for _, p := range []failstop.ProcID{2, 3, 5} {
		if rep.History.FailedIndex(p, 1) < 0 {
			t.Errorf("sim: failed_%d(1) never completed despite a quorum of connected processes", p)
		}
	}
	if idx := rep.History.FailedIndex(4, 1); idx >= 0 {
		t.Errorf("sim: failed_4(1) completed at %d although every voice was sent into 4's isolation window", idx)
	}
	if rep.Dropped == 0 {
		t.Error("sim: rotating cut dropped nothing")
	}
	checkMovingPartitionInvariant(t, "sim", n, rep.History, 0)

	// Live backend, same plan: 1ms ticks, so each process is dark for one
	// 60ms stride. Suspicions are re-raised from rotating suspecters until
	// one broadcast lands in a window that lets a quorum assemble — under a
	// moving (never permanent) partition detection must eventually succeed.
	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: n, T: tt, Seed: 5, Faults: &plan,
		MinDelay: 1 * time.Millisecond, MaxDelay: 3 * time.Millisecond,
		Tick: 1 * time.Millisecond,
	})
	lc.Start()
	time.Sleep(15 * time.Millisecond)
	lc.Crash(1)
	detected := func(h failstop.History) int {
		got := 0
		for p := failstop.ProcID(2); p <= n; p++ {
			if h.FailedIndex(p, 1) >= 0 {
				got++
			}
		}
		return got
	}
	deadline := time.Now().Add(8 * time.Second)
	suspecters := []failstop.ProcID{2, 3, 5, 4}
	for i := 0; detected(lc.History()) < 3 && time.Now().Before(deadline); i++ {
		lc.Suspect(suspecters[i%len(suspecters)], 1)
		pause := time.Now().Add(600 * time.Millisecond)
		for detected(lc.History()) < 3 && time.Now().Before(pause) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	lc.Stop()
	h := lc.History()
	if got := detected(h); got < 3 {
		t.Errorf("live: only %d processes detected the crash under the moving partition, want >= 3", got)
	}
	checkMovingPartitionInvariant(t, "live", n, h, 8)
}

// recvGaps collects the delivery-time gaps between consecutive receives on
// the directed link from -> to.
func recvGaps(h failstop.History, from, to failstop.ProcID) []int64 {
	var times []int64
	for _, e := range h {
		if e.Kind == model.KindRecv && e.Proc == to && e.Peer == from {
			times = append(times, e.Time)
		}
	}
	gaps := make([]int64, 0, len(times))
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	return gaps
}

// TestQueueDelayCrossBackend: bandwidth shaping spreads a burst identically
// on both backends. Process 1 raises three suspicions back to back, so its
// link to process 2 carries three SUSP broadcasts at once; with QueueDelay
// the copies must arrive at least one serialization slot apart — exactly
// one on the deterministic simulator, approximately on real clocks.
func TestQueueDelayCrossBackend(t *testing.T) {
	const delay = 40
	shaped := &failstop.FaultPlan{
		Name:  "shaped",
		Rules: []failstop.FaultRule{{QueueDelay: delay}},
	}

	// Simulated backend: base delay pinned to 1 tick, so the three SUSP
	// messages on link 1->2 arrive spaced exactly QueueDelay apart.
	c := failstop.NewCluster(failstop.Options{
		N: 5, T: 2, Seed: 9, MinDelay: 1, MaxDelay: 1, MaxTime: 4000,
		Faults: shaped,
	})
	c.SuspectAt(20, 1, 3)
	c.SuspectAt(20, 1, 4)
	c.SuspectAt(20, 1, 5)
	rep := c.Run()
	gaps := recvGaps(rep.History, 1, 2)
	if len(gaps) != 2 {
		t.Fatalf("sim: link 1->2 delivered %d messages, want 3", len(gaps)+1)
	}
	for i, g := range gaps {
		if g != delay {
			t.Errorf("sim: gap %d on link 1->2 = %d ticks, want exactly %d", i, g, delay)
		}
	}

	// Live backend, same plan: 1ms ticks. Scheduling jitter loosens the
	// bound but the serialization slots must still be visible.
	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: 5, T: 2, Seed: 9, Faults: shaped,
		MinDelay: 1 * time.Millisecond, MaxDelay: 1 * time.Millisecond,
		Tick: 1 * time.Millisecond,
	})
	lc.Start()
	lc.Suspect(1, 3)
	lc.Suspect(1, 4)
	lc.Suspect(1, 5)
	deadline := time.Now().Add(5 * time.Second)
	for len(recvGaps(lc.History(), 1, 2)) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	lc.Stop()
	gaps = recvGaps(lc.History(), 1, 2)
	if len(gaps) < 2 {
		t.Fatalf("live: link 1->2 delivered %d messages, want 3", len(gaps)+1)
	}
	for i, g := range gaps {
		if g < delay-8 {
			t.Errorf("live: gap %d on link 1->2 = %d ticks, want >= %d (shaping lost)", i, g, delay-8)
		}
	}
}

// checkByzantineSemantics asserts what both backends must agree on for the
// byzantine-minority plan at n=5, t=2 with the interposer enabled: the
// plan's victims (the corruptor 5 and the equivocator 4) are convicted by
// the honest majority, and — via the §5 masking path — demoted to crashed
// processes that some honest process completes a detection of. No honest
// process is ever convicted, so no honest detection of 1..3 may complete.
func checkByzantineSemantics(t *testing.T, backend string, h failstop.History, detected int) {
	t.Helper()
	if detected == 0 {
		t.Errorf("%s: interposer enabled under Byzantine traffic but convicted nothing", backend)
	}
	for _, victim := range []failstop.ProcID{4, 5} {
		found := false
		for _, honest := range []failstop.ProcID{1, 2, 3} {
			if h.FailedIndex(honest, victim) >= 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: Byzantine victim %d was never demoted to a detected crash", backend, victim)
		}
	}
	for _, honest := range []failstop.ProcID{1, 2, 3} {
		for _, accuser := range []failstop.ProcID{1, 2, 3, 4, 5} {
			if accuser != honest && h.FailedIndex(accuser, honest) >= 0 {
				t.Errorf("%s: honest process %d was detected as failed by %d", backend, honest, accuser)
			}
		}
	}
}

// TestByzantineCrossBackend: the deterministic simulator and the live
// goroutine runtime agree on Byzantine fate semantics. The victims' own
// SUSP broadcasts are what the plan corrupts and equivocates; with the
// validation interposer on, both backends convict exactly the victims and
// crash them out of the membership.
func TestByzantineCrossBackend(t *testing.T) {
	plan, err := failstop.BuiltinFaultPlan("byzantine-minority", 5, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated backend.
	c := failstop.NewCluster(failstop.Options{
		N: 5, T: 2, Seed: 3, MaxTime: 5000, Faults: &plan,
		Byzantine: failstop.ByzantineOptions{Enabled: true},
	})
	c.SuspectAt(20, 4, 1)
	c.SuspectAt(24, 5, 2)
	rep := c.Run()
	checkByzantineSemantics(t, "sim", rep.History, rep.ByzDetected)
	if rep.Corrupted == 0 {
		t.Error("sim: plan corrupted nothing")
	}
	if rep.Equivocated == 0 {
		t.Error("sim: plan equivocated nothing")
	}

	// Live backend, same plan and interposer.
	lc := failstop.NewLiveCluster(failstop.LiveOptions{
		N: 5, T: 2, Seed: 3, Faults: &plan,
		Byzantine: failstop.ByzantineOptions{Enabled: true},
		MinDelay:  50 * time.Microsecond, MaxDelay: 500 * time.Microsecond,
		Tick: 100 * time.Microsecond,
	})
	lc.Start()
	// The plan's rules activate at tick 10 (1ms of 100µs ticks). Let the
	// window open before injecting, as SuspectAt(20, ...) does on the
	// simulated backend — an earlier SUSP would cross the wire unmutated.
	time.Sleep(20 * time.Millisecond)
	lc.Suspect(4, 1)
	lc.Suspect(5, 2)
	deadline := time.Now().Add(5 * time.Second)
	demoted := func() bool {
		h := lc.History()
		for _, victim := range []failstop.ProcID{4, 5} {
			found := false
			for _, honest := range []failstop.ProcID{1, 2, 3} {
				if h.FailedIndex(honest, victim) >= 0 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	for !demoted() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	lc.Stop()
	detected, _ := lc.ByzStats()
	checkByzantineSemantics(t, "live", lc.History(), detected)
}
