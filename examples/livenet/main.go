// Livenet: the quickstart scenario on the real goroutine runtime instead of
// the deterministic simulator — same protocol stack, same property checks,
// real concurrency and real clocks.
//
// Run with: go run ./examples/livenet
package main

//sfs:allow detwallclock live-runtime example: the whole point is real clocks; polling the cluster is paced by a ticker against a deadline timer

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"failstop"
)

func main() {
	cluster := failstop.NewLiveCluster(failstop.LiveOptions{
		N:        5,
		T:        2,
		Seed:     1,
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 3 * time.Millisecond,
		// Serve live metrics over HTTP while the cluster runs; port 0
		// picks an ephemeral port, reported by cluster.MetricsAddr().
		Metrics:     failstop.NewMetricsRegistry(),
		MetricsAddr: "127.0.0.1:0",
	})
	cluster.Start()
	defer cluster.Stop()

	fmt.Println("live cluster of 5 goroutine-backed processes started")
	fmt.Printf("live metrics at http://%s/metrics\n", cluster.MetricsAddr())
	fmt.Println("injecting a false suspicion: process 2 suspects process 1")
	cluster.Suspect(2, 1)

	// Wait for every live process to detect the crash, polling on a ticker
	// rather than spinning on the clock, and give up after a timer-bounded
	// five seconds.
	timeout := time.NewTimer(5 * time.Second)
	defer timeout.Stop()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		h := cluster.History()
		if h.CrashIndex(1) >= 0 && allDetected(h) {
			break
		}
		select {
		case <-timeout.C:
			break wait
		case <-tick.C:
		}
	}

	// Scrape the endpoint the way Prometheus would, while the cluster is
	// still up, and show the counter lines.
	if resp, err := http.Get("http://" + cluster.MetricsAddr() + "/metrics"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Println("\nscraped /metrics:")
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if !strings.HasPrefix(line, "#") {
				fmt.Println("  " + line)
			}
		}
	}
	cluster.Stop()

	h := cluster.History()
	fmt.Printf("\nrecorded %d events; validating...\n", len(h))
	if err := h.Validate(); err != nil {
		fmt.Println("history INVALID:", err)
		return
	}
	ab := h.DropTags(failstop.DefaultSuspTag)
	fmt.Println("model-level history:")
	fmt.Print(ab)
	fmt.Println("\nsFS safety verdicts on this live (nondeterministic) schedule:")
	for _, v := range failstop.CheckSFS(ab) {
		if v.Property == "FS1" {
			continue // the live run stops at a wall-clock cutoff, not quiescence
		}
		fmt.Printf("  %s\n", v)
	}
	if _, err := failstop.RewriteToFS(ab); err == nil {
		fmt.Println("indistinguishability: isomorphic fail-stop run constructed and verified")
	} else {
		fmt.Println("indistinguishability FAILED:", err)
	}
}

func allDetected(h failstop.History) bool {
	for p := failstop.ProcID(2); p <= 5; p++ {
		if h.FailedIndex(p, 1) < 0 {
			return false
		}
	}
	return true
}
