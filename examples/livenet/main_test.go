package main

import (
	"strings"
	"testing"

	"failstop/internal/exampletest"
)

func TestLivenetRuns(t *testing.T) {
	out := exampletest.CaptureStdout(t, main)
	if !strings.Contains(out, "validating") {
		t.Fatalf("live run did not reach validation:\n%s", out)
	}
	if strings.Contains(out, "history INVALID") {
		t.Errorf("live history failed validation:\n%s", out)
	}
	if strings.Contains(out, "VIOLATED") {
		t.Errorf("an sFS safety property was violated on the live run:\n%s", out)
	}
	if !strings.Contains(out, "indistinguishability: isomorphic fail-stop run constructed and verified") {
		t.Errorf("no fail-stop witness for the live run:\n%s", out)
	}
	if !strings.Contains(out, "scraped /metrics:") || !strings.Contains(out, "net_sent_total") {
		t.Errorf("live /metrics scrape missing from output:\n%s", out)
	}
}
