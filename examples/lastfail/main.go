// Last process to fail (paper §6 / Skeen 1985): every process persists the
// failures it detects to stable storage; after a total failure, recovery
// looks for a process whose view covers everyone else.
//
// This example reproduces the paper's two-process anomaly under the cheap
// model (cyclic detection allowed): process 1 falsely detects 2 and
// crashes; 2 detects 1, works on, and finally crashes. BOTH stable stores
// then claim "I detected the other" — a recovering process 1 would wrongly
// conclude it was the last to fail. Under simulated fail-stop the cycle is
// impossible and recovery is never misled.
//
// Run with: go run ./examples/lastfail
package main

import (
	"fmt"

	"failstop"
	"failstop/internal/lastfail"
)

func run(proto failstop.Protocol, n, t int) {
	stores := make([]*lastfail.Store, n+1)
	cluster := failstop.NewCluster(failstop.Options{
		N: n, T: t, Protocol: proto, Seed: 11, MinDelay: 5, MaxDelay: 60,
		NewApp: func(p failstop.ProcID) failstop.App {
			s := lastfail.NewStore(p)
			stores[p] = s
			return &lastfail.Recorder{Stable: s}
		},
	})
	// Mutual false suspicion: the §6 story.
	cluster.SuspectAt(1, 1, 2)
	cluster.SuspectAt(5, 2, 1)
	rep := cluster.Run()

	// Everything eventually goes down (total failure); survivors' stores
	// record their crash with the views they accumulated in the run.
	for _, s := range stores[1:] {
		s.Crashed = true
	}
	actual, _ := lastfail.ActualLast(rep.History)

	fmt.Printf("--- protocol %v (n=%d) ---\n", proto, n)
	for p := 1; p <= n; p++ {
		fmt.Printf("  stable store of %d: detected %v\n", p, keys(stores[p]))
	}
	v := lastfail.Recover(stores[1:])
	fmt.Printf("  recovery candidates: %v\n", v.Candidates)
	if actual != 0 {
		fmt.Printf("  actually crashed last in the run: %d\n", actual)
	}
	switch {
	case lastfail.Misleading(v, actual):
		fmt.Println("  verdict: MISLEADING — an early recoverer would draw the wrong conclusion")
	case v.Known:
		fmt.Printf("  verdict: correct — %d failed last\n", v.Last)
	default:
		fmt.Println("  verdict: unknown — recovery must wait for more processes (the safe §6 fallback)")
	}
	fmt.Println()
}

func keys(s *lastfail.Store) []failstop.ProcID {
	var out []failstop.ProcID
	for p := failstop.ProcID(1); int(p) <= 16; p++ {
		if s.Detected[p] {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	fmt.Println("determining the last process to fail, two failure models:")
	run(failstop.Cheap, 2, 2) // the §6 anomaly
	run(failstop.SFS, 5, 2)   // acyclic detection: never misled
}
