package main

import (
	"strings"
	"testing"

	"failstop/internal/exampletest"
)

func TestLastFailRuns(t *testing.T) {
	out := exampletest.CaptureStdout(t, main)
	// The cheap-model run reproduces the §6 anomaly; the sFS run does not
	// mislead recovery.
	if !strings.Contains(out, "--- protocol cheap (n=2) ---") ||
		!strings.Contains(out, "--- protocol sfs (n=5) ---") {
		t.Fatalf("missing a protocol section:\n%s", out)
	}
	if !strings.Contains(out, "MISLEADING") {
		t.Errorf("cheap-model anomaly did not reproduce:\n%s", out)
	}
}
