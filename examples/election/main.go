// Election (paper §1): each process keeps the list (1..n), removes a
// process when it detects its failure, and treats the head as leader.
//
// This example deposes the initial leader with a FALSE suspicion under two
// failure models and contrasts them:
//
//   - under simulated fail-stop, the deposed leader is killed by the
//     protocol, the handoff is clean, and the run is isomorphic to a
//     genuine fail-stop run (internally, nothing surprising ever happened);
//   - under the unilateral strawman, the "deposed" leader never learns,
//     both leaders persist, and the run is isomorphic to NO fail-stop run.
//
// Run with: go run ./examples/election
package main

import (
	"fmt"

	"failstop"
	"failstop/internal/election"
)

func run(proto failstop.Protocol, t int) {
	apps := make([]*election.Election, 9)
	cluster := failstop.NewCluster(failstop.Options{
		N: 8, T: t, Protocol: proto, Seed: 7, MaxTime: 2000,
		NewApp: func(p failstop.ProcID) failstop.App {
			a := &election.Election{ClaimInterval: 25}
			apps[p] = a
			return a
		},
	})
	// Processes 2 and 3 falsely suspect the leader. Under sFS they drag the
	// whole cluster into one consistent view; under the unilateral model
	// each just silently edits its own list.
	cluster.SuspectAt(50, 2, 1)
	cluster.SuspectAt(55, 3, 1)
	rep := cluster.Run()

	fmt.Printf("--- protocol %v ---\n", proto)
	for p := failstop.ProcID(1); p <= 8; p++ {
		d := cluster.Detector(p)
		status := "alive"
		if d.Crashed() {
			status = "crashed"
		}
		fmt.Printf("  process %d (%s): head=%d leader=%v\n",
			p, status, apps[p].Head(), apps[p].Leader())
	}
	fmt.Printf("  max simultaneous self-believed leaders: %d\n",
		election.MaxSimultaneousLeaders(rep.History))
	fmt.Printf("  stale leadership claims observed:       %d (FS-consistent, not evidence)\n",
		election.StaleClaims(rep.History))
	if _, err := failstop.RewriteToFS(rep.Abstract); err != nil {
		fmt.Printf("  indistinguishable from fail-stop:       NO (%v)\n\n", err)
	} else {
		fmt.Printf("  indistinguishable from fail-stop:       yes (witness constructed)\n\n")
	}
}

func main() {
	fmt.Println("deposing leader 1 with a false suspicion, two failure models:")
	run(failstop.SFS, 2)
	run(failstop.Unilateral, 1)
}
