package main

import (
	"strings"
	"testing"

	"failstop/internal/exampletest"
)

func TestElectionRuns(t *testing.T) {
	out := exampletest.CaptureStdout(t, main)
	// The sFS run hands leadership over cleanly and is indistinguishable
	// from fail-stop; the unilateral run is not.
	if !strings.Contains(out, "--- protocol sfs ---") ||
		!strings.Contains(out, "--- protocol unilateral ---") {
		t.Fatalf("missing a protocol section:\n%s", out)
	}
	if !strings.Contains(out, "indistinguishable from fail-stop:       yes (witness constructed)") {
		t.Errorf("sFS run produced no fail-stop witness:\n%s", out)
	}
	if !strings.Contains(out, "indistinguishable from fail-stop:       NO") {
		t.Errorf("unilateral run unexpectedly realizable:\n%s", out)
	}
}
