// E14 chart data: the false-suspicion surface of a fixed-timeout heartbeat
// detector under message loss — rate vs. drop probability vs. timeout
// (Theorem 1's dilemma, quantified by experiment E14).
//
// The program runs the same sweeps as E14 through the sweep engine, prints
// the surface as CSV (the committed copy lives in e14.csv; the test
// asserts the two stay byte-identical), then renders it as an ASCII chart.
// For ad-hoc grids, `sfs-sweep -csv` exports the same per-cell columns —
// metric_false-suspicion, obs_*, ts_* — straight from the command line.
//
// Run with: go run ./examples/e14
package main

import (
	"fmt"
	"strings"

	"failstop/internal/netadv"
	"failstop/internal/sweep"
)

const (
	n, t  = 5, 2
	seeds = 12
)

var (
	timeouts = []int64{40, 80, 160}
	drops    = []float64{0, 0.15, 0.35}
)

func dropGen(p float64) netadv.Generator {
	name := fmt.Sprintf("drop-%.2f", p)
	return netadv.Generator{Name: name, Make: func(n, t int) netadv.Plan {
		plan := netadv.Plan{Name: name}
		if p > 0 {
			plan.Rules = []netadv.Rule{{Drop: p}}
		}
		return plan
	}}
}

func main() {
	quiet, _ := sweep.Builtin("quiet")
	gens := make([]netadv.Generator, 0, len(drops))
	for _, p := range drops {
		gens = append(gens, dropGen(p))
	}

	// rate[timeout][drop] = accusing runs out of seeds.
	rate := map[int64]map[float64]int{}
	for _, to := range timeouts {
		rep, err := sweep.Run(sweep.Spec{
			Grid:             []sweep.NT{{N: n, T: t}},
			Schedules:        []sweep.Schedule{quiet},
			Plans:            gens,
			Seeds:            sweep.SeedRange{Start: 1, Count: seeds},
			MinDelay:         1,
			MaxDelay:         3,
			MaxTime:          2000,
			HeartbeatEvery:   25,
			HeartbeatTimeout: to,
		}, sweep.Options{})
		if err != nil {
			fmt.Println("sweep failed:", err)
			return
		}
		rate[to] = map[float64]int{}
		for i, cell := range rep.Cells {
			rate[to][drops[i%len(drops)]] = cell.Metrics["false-suspicion"]
		}
	}

	fmt.Println("hb_timeout,drop,false_suspicion_runs,runs,rate")
	for _, to := range timeouts {
		for _, p := range drops {
			fs := rate[to][p]
			fmt.Printf("%d,%.2f,%d,%d,%.4f\n", to, p, fs, seeds, float64(fs)/seeds)
		}
	}

	fmt.Println()
	fmt.Println("false-suspicion rate (each # = one accusing seed of 12):")
	for _, to := range timeouts {
		for _, p := range drops {
			fmt.Printf("  timeout %3d drop %.2f |%-12s| %2d/12\n",
				to, p, strings.Repeat("#", rate[to][p]), rate[to][p])
		}
	}
	fmt.Println()
	fmt.Println("every finite timeout accuses the living under loss; raising it only trades detection speed for error rate (Theorem 1)")
}
