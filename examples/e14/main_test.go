package main

import (
	"os"
	"strings"
	"testing"

	"failstop/internal/exampletest"
)

// TestE14CSVMatchesCommitted regenerates the false-suspicion surface and
// asserts it is byte-identical to the committed e14.csv: the sweep is
// deterministic, so a mismatch means either the artifact is stale or the
// engine's determinism broke — both worth failing on.
func TestE14CSVMatchesCommitted(t *testing.T) {
	out := exampletest.CaptureStdout(t, main)
	idx := strings.Index(out, "\n\n")
	if idx < 0 {
		t.Fatalf("no CSV section in output:\n%s", out)
	}
	csv := out[:idx+1]
	committed, err := os.ReadFile("e14.csv")
	if err != nil {
		t.Fatal(err)
	}
	if csv != string(committed) {
		t.Errorf("regenerated CSV differs from committed e14.csv — rerun `go run ./examples/e14 | head -10 > examples/e14/e14.csv`\n--- regenerated\n%s\n--- committed\n%s", csv, committed)
	}
	if !strings.Contains(out, "Theorem 1") {
		t.Errorf("chart commentary missing:\n%s", out)
	}
}
