// Quickstart: a five-process cluster in which process 2 erroneously
// suspects process 1 (the paper's central scenario). The §5 protocol turns
// the false suspicion into a consistent fail-stop illusion: process 1 is
// killed (sFS2a), everyone detects it, and — per Theorem 5 — the recorded
// run is isomorphic to a genuine fail-stop run, which this program
// constructs and prints.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"failstop"
)

func main() {
	cluster := failstop.NewCluster(failstop.Options{
		N:    5, // processes 1..5
		T:    2, // tolerate up to 2 failures (including erroneous detections)
		Seed: 42,
	})

	// Nobody has crashed, but process 2's timeout fires anyway.
	cluster.SuspectAt(10, 2, 1)

	rep := cluster.Run()

	fmt.Printf("events=%d sent=%d delivered=%d quiescent=%v\n\n",
		len(rep.History), rep.Sent, rep.Delivered, rep.Quiescent)

	fmt.Println("what each process saw:")
	for p := failstop.ProcID(1); p <= 5; p++ {
		d := cluster.Detector(p)
		fmt.Printf("  process %d: crashed=%-5v detected=%v\n", p, d.Crashed(), d.DetectedSet())
	}

	fmt.Println("\nproperty verdicts (Figure 1 of the paper):")
	for _, v := range rep.Verdicts {
		fmt.Printf("  %s\n", v)
	}

	fmt.Println("\nmodel-level history (protocol traffic abstracted away):")
	fmt.Print(rep.Abstract)

	fs, err := failstop.RewriteToFS(rep.Abstract)
	if err != nil {
		fmt.Println("no fail-stop witness:", err)
		return
	}
	fmt.Println("\nTheorem 5 witness — the same per-process events, reordered so the")
	fmt.Println("crash precedes every detection (a genuine fail-stop run):")
	fmt.Print(fs)
	fmt.Println("\nno process can tell these two runs apart — that is simulated fail-stop.")
}
