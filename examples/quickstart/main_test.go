package main

import (
	"strings"
	"testing"

	"failstop/internal/exampletest"
)

func TestQuickstartRuns(t *testing.T) {
	out := exampletest.CaptureStdout(t, main)
	for _, want := range []string{
		"quiescent=true",
		"Theorem 5 witness",
		"simulated fail-stop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Errorf("a property was violated:\n%s", out)
	}
}
