// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON array on stdout, for CI to archive and diff:
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/sweep | benchjson > BENCH_sweep.json
//
// Each benchmark line becomes one object:
//
//	{"name":"SweepSerial","procs":8,"package":"failstop/internal/sweep",
//	 "iterations":1,"ns_per_op":12345678,"bytes_per_op":512,"allocs_per_op":3}
//
// bytes_per_op / allocs_per_op appear only when the benchmark reported them
// (-benchmem or b.ReportAllocs). Non-benchmark lines are skipped, except
// "pkg:"/"ok  " markers, which attribute subsequent benchmarks to their
// package.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

var (
	benchRe = regexp.MustCompile(`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	pkgRe   = regexp.MustCompile(`^pkg:\s*(\S+)`)
	okRe    = regexp.MustCompile(`^ok\s+(\S+)`)
	memRe   = regexp.MustCompile(`(\d+) B/op\s+(\d+) allocs/op`)
)

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(in io.Reader, out, errOut io.Writer) int {
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	return 0
}

// parse scans go-test output. Package attribution: "pkg:" headers (from
// -v runs) name the package ahead of its benchmarks; "ok <pkg>" trailers
// (the default) name it after, so trailing attribution back-fills any
// benchmarks still unattributed.
func parse(in io.Reader) ([]Result, error) {
	results := []Result{}
	pkg := ""
	unattributed := 0
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if m := pkgRe.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		if m := okRe.FindStringSubmatch(line); m != nil {
			for i := len(results) - unattributed; i < len(results); i++ {
				results[i].Package = m[1]
			}
			unattributed = 0
			pkg = ""
			continue
		}
		m := benchRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err1 := strconv.ParseInt(m[3], 10, 64)
		ns, err2 := strconv.ParseFloat(m[4], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("benchjson: unparsable benchmark line: %q", line)
		}
		r := Result{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		if mm := memRe.FindStringSubmatch(m[5]); mm != nil {
			b, _ := strconv.ParseInt(mm[1], 10, 64)
			a, _ := strconv.ParseInt(mm[2], 10, 64)
			r.BytesPerOp, r.AllocsPerOp = &b, &a
		}
		results = append(results, r)
		if pkg == "" {
			unattributed++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading input: %w", err)
	}
	return results, nil
}
